//===- BenchUtil.h - Shared benchmark helpers -------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source generators and configuration helpers shared by the bench
/// binaries. Each bench binary reproduces one table/figure/worked example
/// of the paper (see DESIGN.md §4 for the index).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_BENCH_BENCHUTIL_H
#define EAL_BENCH_BENCHUTIL_H

#include "driver/Pipeline.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace eal::bench {

/// The Appendix A partition sort functions (append/split/ps), without a
/// driver expression.
inline std::string sortPrelude() {
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))))
)";
}

/// A pseudo-random int list literal of length \p N (deterministic).
inline std::string literalList(unsigned N) {
  std::string Out = "[";
  unsigned V = 7;
  for (unsigned I = 0; I != N; ++I) {
    if (I != 0)
      Out += ", ";
    V = (V * 197 + 31) % 1021;
    Out += std::to_string(V);
  }
  Out += "]";
  return Out;
}

/// Partition sort applied to a literal list (the A.3.1 shape: the spine
/// is constructed at the call and can live in ps's activation record).
inline std::string sortLiteralSource(unsigned N) {
  return sortPrelude() + "in ps " + literalList(N) + "\n";
}

/// Partition sort applied to create_list N (the A.3.3 shape: the spine is
/// built by a producer function and goes to a block).
inline std::string sortProducerSource(unsigned N) {
  std::string Source = sortPrelude() +
                       R"(;
  create_list i = if i = 0 then nil
                  else cons (i * 193 mod 1021) (create_list (i - 1))
in ps (create_list )" +
                       std::to_string(N) + ")\n";
  return Source;
}

/// The §1 map/pair example scaled to a producer-built list of \p N
/// two-element rows, folded to an int so rendering stays out of the
/// measurement. Same shape bench_sec1_map_pair studies, big enough to
/// time.
inline std::string mapPairWorkloadSource(unsigned N) {
  return R"(
letrec
  pair x = if (null x) then nil
           else cons (car x) (cons (car x) nil);
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l));
  build n = if n = 0 then nil
            else cons (cons n (cons (n + 1) nil)) (build (n - 1));
  len l = if (null l) then 0 else 1 + len (cdr l);
  lenall l = if (null l) then 0 else len (car l) + lenall (cdr l)
in lenall (map pair (build )" +
         std::to_string(N) + "))\n";
}

/// Naive reverse over a literal list of length \p N (A.3.2's REV).
inline std::string reverseSource(unsigned N) {
  return std::string(R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev )") +
         literalList(N) + "\n";
}

/// Pipeline options for one optimization configuration.
inline PipelineOptions config(bool Reuse, bool Stack, bool Region,
                              size_t HeapCapacity = 4096) {
  PipelineOptions Options;
  Options.Optimize.EnableReuse = Reuse;
  Options.Optimize.EnableStack = Stack;
  Options.Optimize.EnableRegion = Region;
  Options.Run.HeapCapacity = HeapCapacity;
  return Options;
}

//===----------------------------------------------------------------------===//
// BENCH_<name>.json: the machine-readable perf trajectory
//===----------------------------------------------------------------------===//

/// One measured configuration in a bench's JSON report (schema
/// eal-bench-v1, validated by tools/check_bench_json.py).
struct BenchRecord {
  /// Configuration label, e.g. "sort_literal/n=64/stack=on".
  std::string Name;
  /// Problem size.
  uint64_t N = 0;
  /// Wall time of the whole pipeline run, in seconds.
  double WallSeconds = 0;
  /// Best-of-K execute-phase time in seconds, when the bench measured
  /// one (negative = not measured). Extra field on top of the v1
  /// schema floor; the validator tolerates it.
  double ExecuteSeconds = -1;
  /// Storage counters of the run.
  RuntimeStats Stats;
};

/// Runs the pipeline over \p Source under \p Options, timing it, and
/// appends a record to \p Records. Returns the result so sweeps can keep
/// printing their tables from it; failures are reported and recorded
/// with whatever counters accumulated.
inline PipelineResult timedRun(std::vector<BenchRecord> &Records,
                               std::string Name, uint64_t N,
                               const std::string &Source,
                               const PipelineOptions &Options) {
  auto Start = std::chrono::steady_clock::now();
  PipelineResult R = runPipeline(Source, Options);
  auto End = std::chrono::steady_clock::now();
  BenchRecord Rec;
  Rec.Name = std::move(Name);
  Rec.N = N;
  Rec.WallSeconds = std::chrono::duration<double>(End - Start).count();
  Rec.Stats = R.Stats;
  Records.push_back(std::move(Rec));
  return R;
}

/// Execute-phase µs of one finished run (-1 when the phase is absent).
inline int64_t executeMicros(const PipelineResult &R) {
  for (const auto &[Name, Micros] : R.PhaseMicros)
    if (Name == "execute")
      return Micros;
  return -1;
}

/// Runs \p Source under \p Options Reps times and returns the best
/// execute-phase time in seconds. Timer noise in this container is
/// large, so min-of-K is the stable statistic; it is also the number
/// tools/bench_diff.py prefers when gating regressions.
inline double bestExecuteSeconds(const std::string &Source,
                                 const PipelineOptions &Options,
                                 unsigned Reps) {
  int64_t Best = -1;
  for (unsigned I = 0; I != Reps; ++I) {
    PipelineResult R = runPipeline(Source, Options);
    int64_t Us = executeMicros(R);
    if (Us >= 0 && (Best < 0 || Us < Best))
      Best = Us;
  }
  return Best < 0 ? -1.0 : static_cast<double>(Best) / 1e6;
}

/// Writes BENCH_<bench>.json into the working directory: the bench's
/// counters + wall times in the schema the perf trajectory expects
/// (docs/OBSERVABILITY.md). Returns false (with a message) on I/O error.
inline bool writeBenchJson(const std::string &Bench,
                           const std::vector<BenchRecord> &Records) {
  std::string Path = "BENCH_" + Bench + ".json";
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << "bench: cannot write " << Path << "\n";
    return false;
  }
  Out << "{\n  \"schema\": \"eal-bench-v1\",\n  \"bench\": \"" << Bench
      << "\",\n  \"records\": [";
  for (size_t I = 0; I != Records.size(); ++I) {
    const BenchRecord &Rec = Records[I];
    Out << (I ? "," : "") << "\n    {\n      \"name\": \"" << Rec.Name
        << "\",\n      \"n\": " << Rec.N << ",\n      \"wall_seconds\": "
        << Rec.WallSeconds;
    if (Rec.ExecuteSeconds >= 0)
      Out << ",\n      \"execute_seconds\": " << Rec.ExecuteSeconds;
    Out << ",\n      \"counters\": " << Rec.Stats.toJson(6) << "\n    }";
  }
  Out << "\n  ]\n}\n";
  if (!Out) {
    std::cerr << "bench: write failed for " << Path << "\n";
    return false;
  }
  std::cout << "wrote " << Path << " (" << Records.size() << " records)\n";
  return true;
}

} // namespace eal::bench

#endif // EAL_BENCH_BENCHUTIL_H

//===- BenchUtil.h - Shared benchmark helpers -------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source generators and configuration helpers shared by the bench
/// binaries. Each bench binary reproduces one table/figure/worked example
/// of the paper (see DESIGN.md §4 for the index).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_BENCH_BENCHUTIL_H
#define EAL_BENCH_BENCHUTIL_H

#include "driver/Pipeline.h"

#include <string>

namespace eal::bench {

/// The Appendix A partition sort functions (append/split/ps), without a
/// driver expression.
inline std::string sortPrelude() {
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))))
)";
}

/// A pseudo-random int list literal of length \p N (deterministic).
inline std::string literalList(unsigned N) {
  std::string Out = "[";
  unsigned V = 7;
  for (unsigned I = 0; I != N; ++I) {
    if (I != 0)
      Out += ", ";
    V = (V * 197 + 31) % 1021;
    Out += std::to_string(V);
  }
  Out += "]";
  return Out;
}

/// Partition sort applied to a literal list (the A.3.1 shape: the spine
/// is constructed at the call and can live in ps's activation record).
inline std::string sortLiteralSource(unsigned N) {
  return sortPrelude() + "in ps " + literalList(N) + "\n";
}

/// Partition sort applied to create_list N (the A.3.3 shape: the spine is
/// built by a producer function and goes to a block).
inline std::string sortProducerSource(unsigned N) {
  std::string Source = sortPrelude() +
                       R"(;
  create_list i = if i = 0 then nil
                  else cons (i * 193 mod 1021) (create_list (i - 1))
in ps (create_list )" +
                       std::to_string(N) + ")\n";
  return Source;
}

/// Naive reverse over a literal list of length \p N (A.3.2's REV).
inline std::string reverseSource(unsigned N) {
  return std::string(R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev )") +
         literalList(N) + "\n";
}

/// Pipeline options for one optimization configuration.
inline PipelineOptions config(bool Reuse, bool Stack, bool Region,
                              size_t HeapCapacity = 4096) {
  PipelineOptions Options;
  Options.Optimize.EnableReuse = Reuse;
  Options.Optimize.EnableStack = Stack;
  Options.Optimize.EnableRegion = Region;
  Options.Run.HeapCapacity = HeapCapacity;
  return Options;
}

} // namespace eal::bench

#endif // EAL_BENCH_BENCHUTIL_H

//===- bench_a1_escape_table.cpp - Appendix A.1 global escape table --------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A1-G. Regenerates the global escape results the paper works
// out for the partition sort program and compares them against the
// paper's values:
//
//   G(APPEND,1) = <1,0>   G(APPEND,2) = <1,1>
//   G(SPLIT,1)  = <0,0>   G(SPLIT,2)  = <1,0>
//   G(SPLIT,3)  = <1,1>   G(SPLIT,4)  = <1,1>
//   G(PS,1)     = <1,0>
//
// The benchmark section times one full program analysis and individual
// G queries.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

struct ExpectedRow {
  const char *Fn;
  unsigned Param; // 1-based
  BasicEscape Expected;
};

const ExpectedRow Rows[] = {
    {"append", 1, BasicEscape::contained(0)},
    {"append", 2, BasicEscape::contained(1)},
    {"split", 1, BasicEscape::none()},
    {"split", 2, BasicEscape::contained(0)},
    {"split", 3, BasicEscape::contained(1)},
    {"split", 4, BasicEscape::contained(1)},
    {"ps", 1, BasicEscape::contained(0)},
};

void printTable() {
  std::cout << "=== A1-G: global escape table for partition sort ===\n";
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(sortLiteralSource(6), Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return;
  }
  std::cout << std::left << std::setw(12) << "query" << std::setw(10)
            << "paper" << std::setw(10) << "measured" << "match\n";
  bool AllMatch = true;
  for (const ExpectedRow &Row : Rows) {
    const FunctionEscape *FE =
        R.Optimized->BaseEscape.find(R.Ast->intern(Row.Fn));
    BasicEscape Got = FE->Params[Row.Param - 1].Escape;
    bool Match = Got == Row.Expected;
    AllMatch = AllMatch && Match;
    std::string Query =
        std::string("G(") + Row.Fn + "," + std::to_string(Row.Param) + ")";
    std::cout << std::left << std::setw(12) << Query << std::setw(10)
              << Row.Expected.str() << std::setw(10) << Got.str()
              << (Match ? "yes" : "NO") << '\n';
  }
  std::cout << (AllMatch ? "all rows match the paper\n\n"
                         : "MISMATCH against the paper\n\n");
}

void BM_AnalyzeProgram(benchmark::State &State) {
  std::string Source = sortLiteralSource(6);
  for (auto _ : State) {
    PipelineOptions Options;
    Options.RunProgram = false;
    Options.Optimize.EnableReuse = false;
    Options.Optimize.EnableStack = false;
    Options.Optimize.EnableRegion = false;
    PipelineResult R = runPipeline(Source, Options);
    benchmark::DoNotOptimize(R.Success);
  }
}

void BM_SingleGlobalQuery(benchmark::State &State) {
  // One G query on a pre-built analyzer (caches shared across queries, as
  // a compiler would run it).
  std::string Source = sortLiteralSource(6);
  SourceManager SM;
  SM.setBuffer(Source);
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  Parser P(SM.buffer(), Ast, Diags);
  const Expr *Root = P.parseProgram();
  TypeInference TI(Ast, Types, Diags);
  auto Typed = TI.run(Root);
  Symbol Ps = Ast.intern("ps");
  for (auto _ : State) {
    EscapeAnalyzer Analyzer(Ast, *Typed, Diags);
    auto PE = Analyzer.globalEscape(Ps, 0);
    benchmark::DoNotOptimize(PE);
  }
}

} // namespace

BENCHMARK(BM_AnalyzeProgram);
BENCHMARK(BM_SingleGlobalQuery);

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_a1_fixpoint_iterations.cpp - A.1 fixpoint convergence ---------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A1-FIX. Appendix A.1 shows the fixpoint iterates for
// APPEND, SPLIT, and PS stabilizing at the second iterate (the third
// evaluation merely confirms). This binary reports, for each G query,
// how many whole-program evaluation rounds the analyzer needed — the
// analogue of the paper's per-function iterate count — and how large the
// application cache grew.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printRounds() {
  std::cout << "=== A1-FIX: fixpoint rounds per global query ===\n"
            << "(paper: append/split/ps converge at the 2nd iterate,\n"
            << " confirmed by a 3rd; rounds below include the confirming\n"
            << " pass, so 2-4 is the expected band)\n";
  std::string Source = sortLiteralSource(6);
  SourceManager SM;
  SM.setBuffer(Source);
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  Parser P(SM.buffer(), Ast, Diags);
  const Expr *Root = P.parseProgram();
  TypeInference TI(Ast, Types, Diags);
  auto Typed = TI.run(Root);

  struct Query {
    const char *Fn;
    unsigned Param;
  };
  const Query Queries[] = {{"append", 1}, {"append", 2}, {"split", 1},
                           {"split", 2},  {"split", 3},  {"split", 4},
                           {"ps", 1}};
  std::cout << std::left << std::setw(14) << "query" << std::setw(8)
            << "rounds" << std::setw(14) << "cache size" << "values\n";
  for (const Query &Q : Queries) {
    // Fresh analyzer per query so rounds are not hidden by warm caches.
    EscapeAnalyzer Analyzer(Ast, *Typed, Diags);
    auto PE = Analyzer.globalEscape(Ast.intern(Q.Fn), Q.Param - 1);
    (void)PE;
    std::string Name =
        std::string("G(") + Q.Fn + "," + std::to_string(Q.Param) + ")";
    std::cout << std::left << std::setw(14) << Name << std::setw(8)
              << Analyzer.lastRounds() << std::setw(14)
              << Analyzer.applyCacheSize() << Analyzer.store().numValues()
              << '\n';
  }
  std::cout << '\n';

  // The appendix-style iterate trace for G(ps, 1): each materialization
  // of a letrec binding per round (compare the append^(k)/split^(k)/
  // ps^(k) derivation in A.1).
  std::cout << "iterate trace for G(ps,1):\n";
  EscapeAnalyzer Traced(Ast, *Typed, Diags);
  Traced.enableTracing();
  (void)Traced.globalEscape(Ast.intern("ps"), 0);
  std::cout << Traced.renderTrace() << '\n';
}

void BM_FixpointPerQuery(benchmark::State &State) {
  std::string Source = sortLiteralSource(6);
  SourceManager SM;
  SM.setBuffer(Source);
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  Parser P(SM.buffer(), Ast, Diags);
  const Expr *Root = P.parseProgram();
  TypeInference TI(Ast, Types, Diags);
  auto Typed = TI.run(Root);
  Symbol Fn = Ast.intern(State.range(0) == 0 ? "append" : "ps");
  unsigned Rounds = 0;
  for (auto _ : State) {
    EscapeAnalyzer Analyzer(Ast, *Typed, Diags);
    auto PE = Analyzer.globalEscape(Fn, 0);
    benchmark::DoNotOptimize(PE);
    Rounds = Analyzer.lastRounds();
  }
  State.counters["rounds"] = Rounds;
}

} // namespace

BENCHMARK(BM_FixpointPerQuery)->Arg(0)->Arg(1);

int main(int argc, char **argv) {
  printRounds();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_a2_sharing.cpp - Appendix A.2 sharing facts --------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A2. Appendix A.2 derives, from the escape table alone:
//   * the top spine of (PS e) is unshared for any e;
//   * the top spine of (SPLIT e1 e2 e3 e4) is unshared for any arguments.
// This binary regenerates both facts (Theorem 2 clause 2), plus clause-1
// refinements for known-fresh arguments, and times the derivation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "sharing/SharingAnalysis.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printSharing() {
  std::cout << "=== A2: sharing facts from escape information ===\n";
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(sortLiteralSource(6), Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return;
  }
  SharingAnalysis SA(*R.Ast, *R.Typed, R.Optimized->BaseEscape);

  struct Expected {
    const char *Fn;
    unsigned ResultSpines;
    unsigned UnsharedTop;
  };
  const Expected Rows[] = {
      {"ps", 1, 1},     // "top spine of (PS e) is not shared"
      {"split", 2, 1},  // "top spine of (SPLIT ...) is not shared"
      {"append", 1, 0}, // y escapes wholesale: nothing guaranteed
  };
  std::cout << std::left << std::setw(10) << "function" << std::setw(10)
            << "d_f" << std::setw(16) << "unshared top" << "paper\n";
  for (const Expected &Row : Rows) {
    auto SR = SA.resultSharing(R.Ast->intern(Row.Fn));
    bool Match = SR && SR->ResultSpines == Row.ResultSpines &&
                 SR->UnsharedTopSpines == Row.UnsharedTop;
    std::cout << std::left << std::setw(10) << Row.Fn << std::setw(10)
              << (SR ? SR->ResultSpines : 0) << std::setw(16)
              << (SR ? SR->UnsharedTopSpines : 0)
              << (Match ? "match" : "MISMATCH") << '\n';
  }

  // Clause 1: with fully fresh arguments append's result becomes fresh.
  unsigned FreshArgs[] = {1, 1};
  auto Refined = SA.resultSharing(R.Ast->intern("append"), FreshArgs);
  std::cout << "clause 1: append with unshared args -> top "
            << Refined->UnsharedTopSpines << " of " << Refined->ResultSpines
            << " spine(s) unshared\n\n";
}

void BM_SharingDerivation(benchmark::State &State) {
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(sortLiteralSource(6), Options);
  Symbol Ps = R.Ast->intern("ps");
  for (auto _ : State) {
    SharingAnalysis SA(*R.Ast, *R.Typed, R.Optimized->BaseEscape);
    auto SR = SA.resultSharing(Ps);
    benchmark::DoNotOptimize(SR);
  }
}

void BM_StructuralUnsharedInference(benchmark::State &State) {
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(sortLiteralSource(64), Options);
  const auto *Letrec = cast<LetrecExpr>(R.ParsedRoot);
  for (auto _ : State) {
    SharingAnalysis SA(*R.Ast, *R.Typed, R.Optimized->BaseEscape);
    unsigned U = SA.unsharedTopSpines(Letrec->body());
    benchmark::DoNotOptimize(U);
  }
}

} // namespace

BENCHMARK(BM_SharingDerivation);
BENCHMARK(BM_StructuralUnsharedInference);

int main(int argc, char **argv) {
  printSharing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_a31_stack_alloc.cpp - A.3.1 stack allocation -------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A31. "The spine of the original list [5,2,7,1,3,4] does not
// escape from PS. Thus the spine of that list can be allocated in PS's
// activation record. All the cells of the spine will disappear when PS's
// activation is removed from the stack."
//
// The workload sorts literal lists of growing size with stack allocation
// off/on. Expected shape: the input spine's cells (n of them) move from
// the garbage-collected heap into the activation arena, reducing GC
// pressure; results are identical.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printSweep() {
  std::cout << "=== A31: stack allocation of the literal input spine ===\n";
  std::cout << std::right << std::setw(6) << "n" << std::setw(12)
            << "heap(base)" << std::setw(12) << "heap(opt)" << std::setw(12)
            << "stack(opt)" << std::setw(10) << "GC(base)" << std::setw(10)
            << "GC(opt)" << std::setw(8) << "same?\n";
  std::vector<BenchRecord> Records;
  // Best-of-K execute-phase seconds ride along in each record: this is
  // the statistic bench_diff.py gates CI on, so keep K high enough to
  // shake container timer noise.
  const unsigned Reps = 5;
  for (unsigned N : {16u, 64u, 256u, 1024u}) {
    std::string Source = sortLiteralSource(N);
    PipelineResult Base =
        timedRun(Records, "sort_literal/n=" + std::to_string(N) + "/base", N,
                 Source, config(false, false, false));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Source, config(false, false, false), Reps);
    PipelineResult Opt =
        timedRun(Records, "sort_literal/n=" + std::to_string(N) + "/stack",
                 N, Source, config(false, true, false));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Source, config(false, true, false), Reps);
    if (!Base.Success || !Opt.Success) {
      std::cerr << Base.diagnostics() << Opt.diagnostics();
      return;
    }
    std::cout << std::right << std::setw(6) << N << std::setw(12)
              << Base.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.StackCellsAllocated << std::setw(10)
              << Base.Stats.GcRuns << std::setw(10) << Opt.Stats.GcRuns
              << std::setw(8)
              << (Base.RenderedValue == Opt.RenderedValue ? "yes" : "NO")
              << '\n';
  }
  std::cout << "(expected: stack(opt) = n; heap(opt) = heap(base) - n)\n\n";
  writeBenchJson("a31_stack_alloc", Records);
}

void BM_SortLiteral(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  bool Stack = State.range(1) != 0;
  std::string Source = sortLiteralSource(N);
  RuntimeStats Last;
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, config(false, Stack, false));
    benchmark::DoNotOptimize(R.RenderedValue);
    Last = R.Stats;
  }
  State.counters["heap"] = static_cast<double>(Last.HeapCellsAllocated);
  State.counters["stack"] = static_cast<double>(Last.StackCellsAllocated);
  State.counters["gc"] = static_cast<double>(Last.GcRuns);
}

} // namespace

BENCHMARK(BM_SortLiteral)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_a32_inplace_reuse.cpp - A.3.2 in-place reuse (PS') -------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A32a. "The definition of PS can be transformed into PS'
// [using APPEND'] ... Furthermore, if we know that the top spine of the
// argument of PS is unshared, then PS''." The transformed sorter
// recycles cons cells with DCONS instead of allocating.
//
// Expected shape: with reuse on, a large fraction of cell demand is
// served by DCONS (no allocation, no GC); fresh allocations and GC work
// drop accordingly; results are identical.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printSweep() {
  std::cout << "=== A32a: in-place reuse in partition sort ===\n";
  std::cout << std::right << std::setw(6) << "n" << std::setw(12)
            << "heap(base)" << std::setw(12) << "heap(opt)" << std::setw(10)
            << "dcons" << std::setw(10) << "GC(base)" << std::setw(10)
            << "GC(opt)" << std::setw(8) << "same?\n";
  for (unsigned N : {16u, 64u, 256u, 1024u}) {
    std::string Source = sortLiteralSource(N);
    PipelineResult Base = runPipeline(Source, config(false, false, false));
    PipelineResult Opt = runPipeline(Source, config(true, false, false));
    if (!Base.Success || !Opt.Success) {
      std::cerr << Base.diagnostics() << Opt.diagnostics();
      return;
    }
    std::cout << std::right << std::setw(6) << N << std::setw(12)
              << Base.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.HeapCellsAllocated << std::setw(10)
              << Opt.Stats.DconsReuses << std::setw(10) << Base.Stats.GcRuns
              << std::setw(10) << Opt.Stats.GcRuns << std::setw(8)
              << (Base.RenderedValue == Opt.RenderedValue ? "yes" : "NO")
              << '\n';
  }
  std::cout << "(expected: dcons > 0 and heap(opt) + dcons ~ heap(base))\n\n";
}

void BM_SortReuse(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  bool Reuse = State.range(1) != 0;
  std::string Source = sortLiteralSource(N);
  RuntimeStats Last;
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, config(Reuse, false, false));
    benchmark::DoNotOptimize(R.RenderedValue);
    Last = R.Stats;
  }
  State.counters["heap"] = static_cast<double>(Last.HeapCellsAllocated);
  State.counters["dcons"] = static_cast<double>(Last.DconsReuses);
  State.counters["gc_work"] = static_cast<double>(Last.CellsMarked);
}

} // namespace

BENCHMARK(BM_SortReuse)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_a32_reverse.cpp - A.3.2 naive reverse (REV') -------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A32b. "REV can be transformed into REV' which reuses cons
// cells in the top spine of its argument l, if unshared." Naive reverse
// allocates Θ(n²) cells (append copies the growing prefix every step);
// REV'+APPEND' recycle every copy in place.
//
// Expected shape: baseline heap allocations grow quadratically; with
// reuse, fresh allocations grow linearly (only the [car l] singletons)
// and the quadratic copy volume shows up as DCONS reuses instead.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printSweep() {
  std::cout << "=== A32b: naive reverse, REV' vs REV ===\n";
  std::cout << std::right << std::setw(6) << "n" << std::setw(12)
            << "heap(base)" << std::setw(12) << "heap(opt)" << std::setw(12)
            << "dcons" << std::setw(10) << "GC(base)" << std::setw(10)
            << "GC(opt)" << std::setw(8) << "same?\n";
  std::vector<BenchRecord> Records;
  for (unsigned N : {16u, 64u, 256u, 512u}) {
    std::string Source = reverseSource(N);
    PipelineResult Base =
        timedRun(Records, "reverse/n=" + std::to_string(N) + "/base", N,
                 Source, config(false, false, false));
    PipelineResult Opt =
        timedRun(Records, "reverse/n=" + std::to_string(N) + "/reuse", N,
                 Source, config(true, false, false));
    if (!Base.Success || !Opt.Success) {
      std::cerr << Base.diagnostics() << Opt.diagnostics();
      return;
    }
    std::cout << std::right << std::setw(6) << N << std::setw(12)
              << Base.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.DconsReuses << std::setw(10) << Base.Stats.GcRuns
              << std::setw(10) << Opt.Stats.GcRuns << std::setw(8)
              << (Base.RenderedValue == Opt.RenderedValue ? "yes" : "NO")
              << '\n';
  }
  std::cout << "(expected: heap(base) ~ n^2/2, heap(opt) ~ 2n, the\n"
            << " quadratic part becomes dcons reuses)\n\n";
  writeBenchJson("a32_reverse", Records);
}

void BM_Reverse(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  bool Reuse = State.range(1) != 0;
  std::string Source = reverseSource(N);
  RuntimeStats Last;
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, config(Reuse, false, false));
    benchmark::DoNotOptimize(R.RenderedValue);
    Last = R.Stats;
  }
  State.counters["heap"] = static_cast<double>(Last.HeapCellsAllocated);
  State.counters["dcons"] = static_cast<double>(Last.DconsReuses);
  State.counters["gc"] = static_cast<double>(Last.GcRuns);
}

} // namespace

BENCHMARK(BM_Reverse)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

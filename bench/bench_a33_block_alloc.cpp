//===- bench_a33_block_alloc.cpp - A.3.3 block allocation/reclamation ------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment A33. "PS (create_list i): create_list should allocate the
// spine of the list in some block of memory. The spine of the list does
// not escape from PS, so when PS is finished, the whole block of memory
// can be put back on the free list" — the Ruggieri–Murtagh local heap.
//
// Expected shape: the producer's spine cells move into region blocks;
// they are reclaimed by O(1) splices (no mark-phase traversal), so GC
// work (cells marked) drops.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

void printSweep() {
  std::cout << "=== A33: block allocation under ps (create_list n) ===\n";
  std::cout << std::right << std::setw(6) << "n" << std::setw(12)
            << "heap(base)" << std::setw(12) << "heap(opt)" << std::setw(12)
            << "region" << std::setw(12) << "bulkfrees" << std::setw(12)
            << "mark(base)" << std::setw(12) << "mark(opt)" << std::setw(8)
            << "same?\n";
  std::vector<BenchRecord> Records;
  for (unsigned N : {16u, 64u, 256u, 1024u}) {
    std::string Source = sortProducerSource(N);
    // A small heap keeps the collector honest at every size.
    PipelineResult Base =
        timedRun(Records, "sort_producer/n=" + std::to_string(N) + "/base",
                 N, Source, config(false, false, false, 2048));
    PipelineResult Opt =
        timedRun(Records, "sort_producer/n=" + std::to_string(N) + "/region",
                 N, Source, config(false, false, true, 2048));
    if (!Base.Success || !Opt.Success) {
      std::cerr << Base.diagnostics() << Opt.diagnostics();
      return;
    }
    std::cout << std::right << std::setw(6) << N << std::setw(12)
              << Base.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.HeapCellsAllocated << std::setw(12)
              << Opt.Stats.RegionCellsAllocated << std::setw(12)
              << Opt.Stats.RegionBulkFrees << std::setw(12)
              << Base.Stats.CellsMarked << std::setw(12)
              << Opt.Stats.CellsMarked << std::setw(8)
              << (Base.RenderedValue == Opt.RenderedValue ? "yes" : "NO")
              << '\n';
  }
  std::cout << "(expected: region >= n, bulk frees reclaim them without\n"
            << " traversal, mark work drops)\n\n";
  writeBenchJson("a33_block_alloc", Records);
}

void BM_SortProducer(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  bool Region = State.range(1) != 0;
  std::string Source = sortProducerSource(N);
  RuntimeStats Last;
  for (auto _ : State) {
    PipelineResult R =
        runPipeline(Source, config(false, false, Region, 2048));
    benchmark::DoNotOptimize(R.RenderedValue);
    Last = R.Stats;
  }
  State.counters["region"] = static_cast<double>(Last.RegionCellsAllocated);
  State.counters["mark_work"] = static_cast<double>(Last.CellsMarked);
  State.counters["gc"] = static_cast<double>(Last.GcRuns);
}

} // namespace

BENCHMARK(BM_SortProducer)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_analysis_scalability.cpp - analysis cost (§7) ------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment SCALE. The conclusion worries about "the computational
// complexity of finding fixpoints of higher order functions". This
// binary measures whole-program analysis time against (a) the number of
// list functions in the program and (b) the spine bound d, and reports
// the analyzer's cache sizes — the quantities that actually grow.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

/// Generates a program with \p NumFns list functions f0..f_{n-1}, where
/// f_i maps over its input and calls f_{i-1}, plus the usual append. The
/// element nesting is \p Depth (drives the spine bound d).
std::string generatedProgram(unsigned NumFns, unsigned Depth) {
  std::string Source = "letrec\n";
  Source += "  append x y = if (null x) then y\n"
            "               else cons (car x) (append (cdr x) y);\n";
  Source += "  f0 l = if (null l) then nil\n"
            "         else cons (car l) (f0 (cdr l));\n";
  for (unsigned I = 1; I != NumFns; ++I) {
    // Built by += rather than operator+ chains: GCC 12's -Wrestrict
    // misfires on the temporaries at -O2.
    std::string Prev = "f";
    Prev += std::to_string(I - 1);
    std::string Name = "f";
    Name += std::to_string(I);
    Source += "  " + Name + " l = if (null l) then nil\n";
    Source += "     else append (" + Prev + " l) (cons (car l) (" + Name +
              " (cdr l)));\n";
  }
  // Drive with a literal of the requested nesting.
  std::string Lit = "1";
  for (unsigned D = 0; D != Depth; ++D)
    Lit = "[" + Lit + "]";
  Source += "  last l = l\n";
  Source += "in f" + std::to_string(NumFns - 1) + " " + Lit + "\n";
  return Source;
}

void printScaling() {
  std::cout << "=== SCALE: analysis cost vs program size and depth ===\n";
  std::cout << std::right << std::setw(8) << "fns" << std::setw(8) << "d"
            << std::setw(10) << "nodes" << std::setw(12) << "cache"
            << std::setw(12) << "values" << std::setw(10) << "queries\n";
  for (unsigned NumFns : {2u, 4u, 8u, 16u, 32u}) {
    std::string Source = generatedProgram(NumFns, 1);
    SourceManager SM;
    SM.setBuffer(Source);
    DiagnosticEngine Diags;
    AstContext Ast;
    TypeContext Types;
    Parser P(SM.buffer(), Ast, Diags);
    const Expr *Root = P.parseProgram();
    if (!Root) {
      std::cerr << Diags.render(SM);
      return;
    }
    TypeInference TI(Ast, Types, Diags);
    auto Typed = TI.run(Root);
    if (!Typed) {
      std::cerr << Diags.render(SM);
      return;
    }
    EscapeAnalyzer Analyzer(Ast, *Typed, Diags);
    ProgramEscapeReport Report = Analyzer.analyzeProgram();
    unsigned Queries = 0;
    for (const FunctionEscape &FE : Report.Functions)
      Queries += FE.Arity;
    std::cout << std::right << std::setw(8) << NumFns << std::setw(8)
              << Typed->spineBound() << std::setw(10) << Ast.numNodes()
              << std::setw(12) << Report.ApplyCacheEntries << std::setw(12)
              << Report.DistinctValues << std::setw(10) << Queries << '\n';
  }
  std::cout << '\n';
}

void BM_AnalysisVsFunctions(benchmark::State &State) {
  unsigned NumFns = static_cast<unsigned>(State.range(0));
  std::string Source = generatedProgram(NumFns, 1);
  for (auto _ : State) {
    PipelineOptions Options;
    Options.RunProgram = false;
    Options.Optimize.EnableReuse = false;
    Options.Optimize.EnableStack = false;
    Options.Optimize.EnableRegion = false;
    PipelineResult R = runPipeline(Source, Options);
    benchmark::DoNotOptimize(R.Success);
  }
  State.counters["fns"] = NumFns;
}

void BM_AnalysisVsDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::string Source = generatedProgram(4, Depth);
  for (auto _ : State) {
    PipelineOptions Options;
    Options.RunProgram = false;
    Options.Optimize.EnableReuse = false;
    Options.Optimize.EnableStack = false;
    Options.Optimize.EnableRegion = false;
    PipelineResult R = runPipeline(Source, Options);
    benchmark::DoNotOptimize(R.Success);
  }
  State.counters["d"] = Depth;
}

} // namespace

BENCHMARK(BM_AnalysisVsFunctions)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_AnalysisVsDepth)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

int main(int argc, char **argv) {
  printScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_baseline_whole_object.cpp - vs the ESOP'90 baseline -------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment BASE. The paper's §1/§2 position it against the authors'
// earlier escape analysis ([10], ESOP'90), which treats objects as
// indivisible — "In a previous paper we described an escape analysis for
// non-list objects ... and left open the problem of performing the
// analysis in the presence of lists." This bench runs both analyses on
// the same programs and shows what spine granularity buys:
//
//  * verdicts: under whole-object analysis, a parameter whose *elements*
//    escape is wholly escaping — no protected spines, so no stack
//    allocation, no reuse, no blocks for it;
//  * storage: the optimizations enabled by each analysis, executed.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

PipelineOptions withAnalysis(EscapeAnalysisMode Mode) {
  PipelineOptions Options = config(true, true, true);
  Options.Optimize.Analysis = Mode;
  return Options;
}

void printVerdicts() {
  std::cout << "=== BASE: spine-aware (PLDI'92) vs whole-object (ESOP'90) "
               "===\n";
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(sortLiteralSource(6), Options);
  Options.Optimize.Analysis = EscapeAnalysisMode::WholeObject;
  PipelineResult B = runPipeline(sortLiteralSource(6), Options);
  if (!R.Success || !B.Success) {
    std::cerr << R.diagnostics() << B.diagnostics();
    return;
  }
  std::cout << std::left << std::setw(12) << "param" << std::setw(22)
            << "spine-aware verdict" << "whole-object verdict\n";
  for (const FunctionEscape &FE : R.Optimized->BaseEscape.Functions) {
    const FunctionEscape *BF = B.Optimized->BaseEscape.find(FE.Name);
    for (size_t I = 0; I != FE.Params.size(); ++I) {
      std::string Name = std::string(R.Ast->spelling(FE.Name)) + " #" +
                         std::to_string(I + 1);
      auto Verdict = [](const ParamEscape &PE) {
        if (!PE.escapes())
          return std::string("private");
        if (PE.protectedTopSpines() > 0)
          return std::to_string(PE.protectedTopSpines()) +
                 " spine(s) protected";
        return std::string("escapes");
      };
      std::cout << std::left << std::setw(12) << Name << std::setw(22)
                << Verdict(FE.Params[I]) << Verdict(BF->Params[I]) << '\n';
    }
  }

  std::cout << "\nstorage effect (partition sort n=256, all optimizations "
               "on):\n";
  std::cout << std::left << std::setw(16) << "analysis" << std::right
            << std::setw(10) << "heap" << std::setw(10) << "stack"
            << std::setw(10) << "region" << std::setw(10) << "dcons"
            << std::setw(8) << "GCs\n";
  for (EscapeAnalysisMode Mode :
       {EscapeAnalysisMode::SpineAware, EscapeAnalysisMode::WholeObject}) {
    PipelineResult Run =
        runPipeline(sortLiteralSource(256), withAnalysis(Mode));
    if (!Run.Success) {
      std::cerr << Run.diagnostics();
      return;
    }
    std::cout << std::left << std::setw(16)
              << (Mode == EscapeAnalysisMode::SpineAware ? "spine-aware"
                                                         : "whole-object")
              << std::right << std::setw(10) << Run.Stats.HeapCellsAllocated
              << std::setw(10) << Run.Stats.StackCellsAllocated
              << std::setw(10) << Run.Stats.RegionCellsAllocated
              << std::setw(10) << Run.Stats.DconsReuses << std::setw(8)
              << Run.Stats.GcRuns << '\n';
  }
  std::cout << "(expected: the baseline licenses nothing on partition sort\n"
            << " — elements escape, so whole lists escape — while the\n"
            << " spine-aware analysis recycles/arenas the spines)\n\n";
}

void BM_SortUnderAnalysis(benchmark::State &State) {
  EscapeAnalysisMode Mode = State.range(0) != 0
                                ? EscapeAnalysisMode::WholeObject
                                : EscapeAnalysisMode::SpineAware;
  std::string Source = sortLiteralSource(256);
  RuntimeStats Last;
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, withAnalysis(Mode));
    benchmark::DoNotOptimize(R.RenderedValue);
    Last = R.Stats;
  }
  State.counters["dcons"] = static_cast<double>(Last.DconsReuses);
  State.counters["heap"] = static_cast<double>(Last.HeapCellsAllocated);
}

} // namespace

BENCHMARK(BM_SortUnderAnalysis)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printVerdicts();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_engines.cpp - tree-walker vs bytecode VM ------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment ENGINES (an implementation ablation, not a paper table):
// compares the two execution engines on the paper's workloads — the
// Appendix A partition sort and the §1 map/pair example — with and
// without the optimizations. Both share the heap/arena machinery, so
// allocation counters are identical; only time differs.
//
// The JSON report carries two timings per row: wall_seconds (the whole
// pipeline, what BM_Engine also measures) and execute_seconds (best-of-K
// execute phase only, the number the VM work targets; parse/type/analyze
// are identical across engines). EXPERIMENTS.md §ENGINES records the
// pre-flattening VM baseline these are compared against.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lang/Parser.h"
#include "obs/Recorder.h"
#include "vm/Compiler.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

PipelineOptions engineConfig(bool UseVm, bool Optimized) {
  PipelineOptions Options =
      config(Optimized, Optimized, Optimized);
  Options.Engine =
      UseVm ? ExecutionEngine::Bytecode : ExecutionEngine::TreeWalker;
  return Options;
}

// executeMicros/bestExecuteSeconds moved to BenchUtil.h so other benches
// (bench_a31_stack_alloc) report the same best-of-K statistic.

// obs.overhead: the flight recorder's lite tier (docs/RECORDER.md) is
// always on by default, so its cost rides every number this bench
// reports. Measure it directly: the same workload with the ring enabled
// vs disabled via the setLiteEnabled kill switch, as the record pair
//   obs_overhead/map_pair/n=2000/recorder_{on,off}
// which `tools/bench_diff.py --overhead` gates at <=2%. The workload is
// sized to clear bench_diff's --min-seconds noise floor (the gate skips
// sub-floor pairs, and a skipped gate is no gate). When the recorder is
// compiled out (-DEAL_OBS_RECORDER=OFF) both configurations are
// provably the same code — every emit site folds to nothing — so one
// measurement is reported for both rows and the gated overhead is
// exactly 0%.
void measureRecorderOverhead(std::vector<BenchRecord> &Records) {
  const std::string Source = mapPairWorkloadSource(2000);
  const PipelineOptions Options = engineConfig(false, true);
  const unsigned Reps = 31;
  std::cout << "=== obs.overhead: flight-recorder lite tier ===\n";
  timedRun(Records, "obs_overhead/map_pair/n=2000/recorder_on", 2000,
           Source, Options);
  double OnSec = -1, OffSec = -1;
#if EAL_OBS_RECORDER
  size_t OnIdx = Records.size() - 1;
  timedRun(Records, "obs_overhead/map_pair/n=2000/recorder_off", 2000,
           Source, Options);
  // Container load drifts by far more than the effect being measured,
  // so neither min-of-K nor independent medians are stable here. The
  // statistic that survives is the PAIRED one: each rep measures on and
  // off back to back (drift is near-constant across one 200ms pair,
  // alternating which goes first cancels ordering bias), and the
  // overhead is the median of the per-pair on/off ratios. The JSON rows
  // carry exactly that: off = median off time, on = off scaled by the
  // median paired ratio — the number the --overhead gate must see.
  auto median = [](std::vector<double> &V) {
    if (V.empty())
      return -1.0;
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };
  std::vector<double> OffSecs, PairRatios;
  for (unsigned I = 0; I != Reps + 1; ++I) {
    double Sec[2]; // [0]=off, [1]=on
    for (bool First : {true, false}) {
      bool On = First == (I % 2 == 0);
      obs::rec::setLiteEnabled(On);
      // min-of-5 per side: preemption noise is one-sided, the min
      // clips it before the ratio is formed.
      Sec[On] = bestExecuteSeconds(Source, Options, 5);
    }
    if (I == 0 || Sec[0] <= 0 || Sec[1] <= 0)
      continue; // warmup pair: caches and the heap's lazy growth
    OffSecs.push_back(Sec[0]);
    PairRatios.push_back(Sec[1] / Sec[0]);
  }
  obs::rec::setLiteEnabled(true);
  OffSec = median(OffSecs);
  double Ratio = median(PairRatios);
  OnSec = OffSec > 0 && Ratio > 0 ? OffSec * Ratio : -1;
  Records[OnIdx].ExecuteSeconds = OnSec;
  Records.back().ExecuteSeconds = OffSec;
#else
  OnSec = OffSec = bestExecuteSeconds(Source, Options, Reps);
  Records.back().ExecuteSeconds = OnSec;
  BenchRecord Off = Records.back();
  Off.Name = "obs_overhead/map_pair/n=2000/recorder_off";
  Records.push_back(std::move(Off));
  std::cout << "recorder compiled out (EAL_OBS_RECORDER=0): both rows "
               "measure identical code\n";
#endif
  if (OnSec > 0 && OffSec > 0)
    std::cout << "recorder on " << static_cast<int64_t>(OnSec * 1e6)
              << " us, off " << static_cast<int64_t>(OffSec * 1e6)
              << " us (" << std::fixed << std::setprecision(2)
              << (100.0 * (OnSec / OffSec - 1.0)) << "% overhead)\n"
              << std::defaultfloat;
  std::cout << '\n';
}

void printComparison() {
  std::cout << "=== ENGINES: interpreter vs bytecode VM ===\n";
  {
    // Bytecode size for the sort program.
    SourceManager SM;
    SM.setBuffer(sortLiteralSource(64));
    DiagnosticEngine Diags;
    AstContext Ast;
    Parser P(SM.buffer(), Ast, Diags);
    const Expr *Root = P.parseProgram();
    auto Chunk = compileToBytecode(Ast, Root, nullptr, Diags);
    std::cout << "partition sort (n=64) compiles to "
              << Chunk->Protos.size() << " protos, "
              << Chunk->instructionCount() << " instructions\n";
  }
  std::cout << std::left << std::setw(26) << "workload" << std::right
            << std::setw(13) << "same value?" << std::setw(13)
            << "same dcons?" << std::setw(13) << "tree (us)"
            << std::setw(13) << "vm (us)" << std::setw(10) << "speedup"
            << '\n';
  struct Row {
    const char *Name;
    unsigned N;
    std::string Source;
  };
  const Row Rows[] = {
      {"sort/n=256", 256, sortLiteralSource(256)},
      {"map_pair/n=2000", 2000, mapPairWorkloadSource(2000)},
      {"reverse/n=128", 128, reverseSource(128)},
      {"sort_producer/n=256", 256, sortProducerSource(256)},
  };
  const unsigned Reps = 9;
  std::vector<BenchRecord> Records;
  for (const Row &Row : Rows) {
    PipelineResult Tree =
        timedRun(Records, std::string(Row.Name) + "/tree", Row.N,
                 Row.Source, engineConfig(false, true));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Row.Source, engineConfig(false, true), Reps);
    double TreeSec = Records.back().ExecuteSeconds;
    PipelineResult Byte =
        timedRun(Records, std::string(Row.Name) + "/vm", Row.N, Row.Source,
                 engineConfig(true, true));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Row.Source, engineConfig(true, true), Reps);
    double VmSec = Records.back().ExecuteSeconds;
    std::ostringstream Speedup;
    Speedup << std::fixed << std::setprecision(2)
            << (VmSec > 0 ? TreeSec / VmSec : 0.0) << "x";
    std::cout << std::left << std::setw(26) << Row.Name << std::right
              << std::setw(13)
              << (Tree.RenderedValue == Byte.RenderedValue ? "yes" : "NO")
              << std::setw(13)
              << (Tree.Stats.DconsReuses == Byte.Stats.DconsReuses ? "yes"
                                                                   : "NO")
              << std::setw(13) << static_cast<int64_t>(TreeSec * 1e6)
              << std::setw(13) << static_cast<int64_t>(VmSec * 1e6)
              << std::setw(10) << Speedup.str() << '\n';
  }
  std::cout << '\n';
  measureRecorderOverhead(Records);
  writeBenchJson("engines", Records);
}

void BM_Engine(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  bool Optimized = State.range(1) != 0;
  std::string Source = sortLiteralSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, Optimized));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

void BM_EngineMapPair(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  std::string Source = mapPairWorkloadSource(2000);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, true));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

void BM_EngineReverse(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  std::string Source = reverseSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, true));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_Engine)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineMapPair)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineReverse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_engines.cpp - tree-walker vs bytecode VM ------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment ENGINES (an implementation ablation, not a paper table):
// compares the two execution engines on the paper's workloads — the
// Appendix A partition sort and the §1 map/pair example — with and
// without the optimizations. Both share the heap/arena machinery, so
// allocation counters are identical; only time differs.
//
// The JSON report carries two timings per row: wall_seconds (the whole
// pipeline, what BM_Engine also measures) and execute_seconds (best-of-K
// execute phase only, the number the VM work targets; parse/type/analyze
// are identical across engines). EXPERIMENTS.md §ENGINES records the
// pre-flattening VM baseline these are compared against.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lang/Parser.h"
#include "vm/Compiler.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

PipelineOptions engineConfig(bool UseVm, bool Optimized) {
  PipelineOptions Options =
      config(Optimized, Optimized, Optimized);
  Options.Engine =
      UseVm ? ExecutionEngine::Bytecode : ExecutionEngine::TreeWalker;
  return Options;
}

// executeMicros/bestExecuteSeconds moved to BenchUtil.h so other benches
// (bench_a31_stack_alloc) report the same best-of-K statistic.

void printComparison() {
  std::cout << "=== ENGINES: interpreter vs bytecode VM ===\n";
  {
    // Bytecode size for the sort program.
    SourceManager SM;
    SM.setBuffer(sortLiteralSource(64));
    DiagnosticEngine Diags;
    AstContext Ast;
    Parser P(SM.buffer(), Ast, Diags);
    const Expr *Root = P.parseProgram();
    auto Chunk = compileToBytecode(Ast, Root, nullptr, Diags);
    std::cout << "partition sort (n=64) compiles to "
              << Chunk->Protos.size() << " protos, "
              << Chunk->instructionCount() << " instructions\n";
  }
  std::cout << std::left << std::setw(26) << "workload" << std::right
            << std::setw(13) << "same value?" << std::setw(13)
            << "same dcons?" << std::setw(13) << "tree (us)"
            << std::setw(13) << "vm (us)" << std::setw(10) << "speedup"
            << '\n';
  struct Row {
    const char *Name;
    unsigned N;
    std::string Source;
  };
  const Row Rows[] = {
      {"sort/n=256", 256, sortLiteralSource(256)},
      {"map_pair/n=2000", 2000, mapPairWorkloadSource(2000)},
      {"reverse/n=128", 128, reverseSource(128)},
      {"sort_producer/n=256", 256, sortProducerSource(256)},
  };
  const unsigned Reps = 9;
  std::vector<BenchRecord> Records;
  for (const Row &Row : Rows) {
    PipelineResult Tree =
        timedRun(Records, std::string(Row.Name) + "/tree", Row.N,
                 Row.Source, engineConfig(false, true));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Row.Source, engineConfig(false, true), Reps);
    double TreeSec = Records.back().ExecuteSeconds;
    PipelineResult Byte =
        timedRun(Records, std::string(Row.Name) + "/vm", Row.N, Row.Source,
                 engineConfig(true, true));
    Records.back().ExecuteSeconds =
        bestExecuteSeconds(Row.Source, engineConfig(true, true), Reps);
    double VmSec = Records.back().ExecuteSeconds;
    std::ostringstream Speedup;
    Speedup << std::fixed << std::setprecision(2)
            << (VmSec > 0 ? TreeSec / VmSec : 0.0) << "x";
    std::cout << std::left << std::setw(26) << Row.Name << std::right
              << std::setw(13)
              << (Tree.RenderedValue == Byte.RenderedValue ? "yes" : "NO")
              << std::setw(13)
              << (Tree.Stats.DconsReuses == Byte.Stats.DconsReuses ? "yes"
                                                                   : "NO")
              << std::setw(13) << static_cast<int64_t>(TreeSec * 1e6)
              << std::setw(13) << static_cast<int64_t>(VmSec * 1e6)
              << std::setw(10) << Speedup.str() << '\n';
  }
  std::cout << '\n';
  writeBenchJson("engines", Records);
}

void BM_Engine(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  bool Optimized = State.range(1) != 0;
  std::string Source = sortLiteralSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, Optimized));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

void BM_EngineMapPair(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  std::string Source = mapPairWorkloadSource(2000);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, true));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

void BM_EngineReverse(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  std::string Source = reverseSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, true));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_Engine)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineMapPair)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineReverse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_engines.cpp - tree-walker vs bytecode VM ------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment ENGINES (an implementation ablation, not a paper table):
// compares the two execution engines on the paper's workloads, with and
// without the optimizations. Both share the heap/arena machinery, so
// allocation counters are identical; only time differs. Also reports
// bytecode size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "lang/Parser.h"
#include "vm/Compiler.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

PipelineOptions engineConfig(bool UseVm, bool Optimized) {
  PipelineOptions Options =
      config(Optimized, Optimized, Optimized);
  Options.Engine =
      UseVm ? ExecutionEngine::Bytecode : ExecutionEngine::TreeWalker;
  return Options;
}

void printComparison() {
  std::cout << "=== ENGINES: interpreter vs bytecode VM ===\n";
  {
    // Bytecode size for the sort program.
    SourceManager SM;
    SM.setBuffer(sortLiteralSource(64));
    DiagnosticEngine Diags;
    AstContext Ast;
    Parser P(SM.buffer(), Ast, Diags);
    const Expr *Root = P.parseProgram();
    auto Chunk = compileToBytecode(Ast, Root, nullptr, Diags);
    std::cout << "partition sort (n=64) compiles to "
              << Chunk->Protos.size() << " protos, "
              << Chunk->instructionCount() << " instructions\n";
  }
  std::cout << std::left << std::setw(26) << "workload" << std::right
            << std::setw(14) << "same value?" << std::setw(14)
            << "same dcons?" << '\n';
  struct Row {
    const char *Name;
    unsigned N;
    std::string Source;
  };
  const Row Rows[] = {
      {"sort/n=256", 256, sortLiteralSource(256)},
      {"reverse/n=128", 128, reverseSource(128)},
      {"sort_producer/n=256", 256, sortProducerSource(256)},
  };
  std::vector<BenchRecord> Records;
  for (const Row &Row : Rows) {
    PipelineResult Tree =
        timedRun(Records, std::string(Row.Name) + "/tree", Row.N,
                 Row.Source, engineConfig(false, true));
    PipelineResult Byte =
        timedRun(Records, std::string(Row.Name) + "/vm", Row.N, Row.Source,
                 engineConfig(true, true));
    std::cout << std::left << std::setw(26) << Row.Name << std::right
              << std::setw(14)
              << (Tree.RenderedValue == Byte.RenderedValue ? "yes" : "NO")
              << std::setw(14)
              << (Tree.Stats.DconsReuses == Byte.Stats.DconsReuses ? "yes"
                                                                   : "NO")
              << '\n';
  }
  std::cout << '\n';
  writeBenchJson("engines", Records);
}

void BM_Engine(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  bool Optimized = State.range(1) != 0;
  std::string Source = sortLiteralSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, Optimized));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

void BM_EngineReverse(benchmark::State &State) {
  bool UseVm = State.range(0) != 0;
  std::string Source = reverseSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, engineConfig(UseVm, true));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_Engine)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineReverse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

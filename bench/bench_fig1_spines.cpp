//===- bench_fig1_spines.cpp - Figure 1: spines of a list ------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment FIG1. Figure 1 depicts the spine decomposition of a nested
// list (Definition 1): the top i-th spine is the set of cells reachable
// by car/cdr paths with exactly i−1 cars. This binary regenerates the
// decomposition for the paper's running list [[1,2],[3,4],[5,6]] and
// deeper nestings, checks it against the type-level spine count, and
// times spine traversal per depth.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "runtime/Interpreter.h"

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <vector>

using namespace eal;

namespace {

/// Counts the cells of each top spine of \p V (index 0 = top 1st spine).
std::vector<size_t> spineCellCounts(RtValue V) {
  std::vector<size_t> Counts;
  std::vector<RtValue> Level = {V};
  while (true) {
    size_t Cells = 0;
    std::vector<RtValue> Next;
    for (RtValue L : Level) {
      for (RtValue Cur = L; Cur.isCons(); Cur = Cur.cell()->Cdr) {
        ++Cells;
        if (Cur.cell()->Car.isCons())
          Next.push_back(Cur.cell()->Car);
      }
    }
    if (Cells == 0)
      break;
    Counts.push_back(Cells);
    Level = std::move(Next);
  }
  return Counts;
}

/// Builds a literal of nesting depth \p Depth with \p Width elements per
/// level, e.g. depth 2, width 3: [[1,1,1],[1,1,1],[1,1,1]].
std::string nestedLiteral(unsigned Depth, unsigned Width) {
  if (Depth == 0)
    return "1";
  std::string Inner = nestedLiteral(Depth - 1, Width);
  std::string Out = "[";
  for (unsigned I = 0; I != Width; ++I) {
    if (I != 0)
      Out += ", ";
    Out += Inner;
  }
  Out += "]";
  return Out;
}

void printFigure1() {
  std::cout << "=== FIG1: spines of [[1,2],[3,4],[5,6]] ===\n";
  PipelineResult R = runPipeline("[[1, 2], [3, 4], [5, 6]]");
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return;
  }
  std::vector<size_t> Counts = spineCellCounts(*R.Value);
  std::cout << "value: " << R.RenderedValue << "\n";
  for (size_t I = 0; I != Counts.size(); ++I)
    std::cout << "  top " << (I + 1) << (I == 0 ? "st" : "nd")
              << " spine: " << Counts[I] << " cons cells (bottom "
              << (Counts.size() - I) << (Counts.size() - I == 1 ? "st" : "nd")
              << " spine)\n";
  std::cout << "  type-level spine count d = "
            << spineCount(R.Optimized->Typed.typeOf(R.Optimized->Root))
            << " (matches: " << (Counts.size() == 2 ? "yes" : "NO") << ")\n\n";
}

void BM_SpineTraversal(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  unsigned Width = static_cast<unsigned>(State.range(1));
  PipelineResult R = runPipeline(nestedLiteral(Depth, Width));
  if (!R.Success) {
    State.SkipWithError("pipeline failed");
    return;
  }
  size_t TotalCells = 0;
  for (auto _ : State) {
    std::vector<size_t> Counts = spineCellCounts(*R.Value);
    benchmark::DoNotOptimize(Counts);
    TotalCells = 0;
    for (size_t C : Counts)
      TotalCells += C;
  }
  State.counters["spines"] = static_cast<double>(Depth);
  State.counters["cells"] = static_cast<double>(TotalCells);
}

} // namespace

BENCHMARK(BM_SpineTraversal)
    ->Args({1, 64})
    ->Args({2, 16})
    ->Args({3, 8})
    ->Args({4, 5});

int main(int argc, char **argv) {
  printFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_live_deaddata.cpp - dead-data workloads & liveness cost --------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment LIVE (an implementation ablation, not a paper table): the
// dead-data workload family behind docs/LIVENESS.md — spine-only
// consumers, computed-but-undemanded pair components, and partially
// consumed map chains. Three configurations per size:
//
//   live=off   the plain optimized pipeline (the zero-cost-when-off
//              gate: enabling the analysis in the codebase must not
//              slow this row down),
//   live=on    the liveness analysis runs but nothing consumes it
//              (its static cost on top of the same execution),
//   live=gc    the GC-prune consumer armed with a small heap, so the
//              mark phase actually skips dead cells' children.
//
// BENCH_live_deaddata.json is baselined under bench/baselines/ and
// gated by tools/bench_diff.py in CI (tools/ci.sh).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

/// The dead-data family, sized by \p N: length walks N spine cells whose
/// elements are never read, the pair's fst list is never touched at all,
/// and only a 3-cell prefix of the N-cell map chain survives.
std::string deadDataSource(unsigned N) {
  std::string N2 = std::to_string(N);
  return "letrec\n"
         "  upto n = if n = 0 then nil else cons (n mod 7) (upto (n - 1));\n"
         "  shadow n = if n = 0 then nil else cons (n + n) (shadow (n - 1));\n"
         "  length l = if (null l) then 0 else 1 + length (cdr l);\n"
         "  sum l = if (null l) then 0 else (car l) + (sum (cdr l));\n"
         "  map f l = if (null l) then nil\n"
         "            else cons (f (car l)) (map f (cdr l));\n"
         "  take n l = if n = 0 then nil else if (null l) then nil\n"
         "             else cons (car l) (take (n - 1) (cdr l))\n"
         "in (length (upto " + N2 + ")) + (sum (upto 16))\n"
         "   + (sum (take 3 (map (lambda(w). w * w) (upto " + N2 + "))))\n"
         "   + (snd (shadow " + N2 + ", 100))\n";
}

PipelineOptions liveConfig(bool Live, bool GcPrune) {
  PipelineOptions Options = config(true, true, true);
  Options.RunLive = Live || GcPrune;
  Options.LiveGcPrune = GcPrune;
  if (GcPrune)
    // Small enough that the collector runs and the prune does work.
    Options.Run.HeapCapacity = 128;
  return Options;
}

void printComparison() {
  std::cout << "=== LIVE: dead-data workloads, liveness analysis cost ===\n";
  std::cout << std::left << std::setw(26) << "workload" << std::right
            << std::setw(12) << "value" << std::setw(13) << "wall (us)"
            << std::setw(13) << "exec (us)" << std::setw(10) << "gc runs"
            << '\n';
  struct Row {
    const char *Name;
    bool Live;
    bool GcPrune;
  };
  const Row Rows[] = {
      {"dead_data/live=off", false, false},
      {"dead_data/live=on", true, false},
      {"dead_data/live=gc", false, true},
  };
  const unsigned N = 256;
  const unsigned Reps = 9;
  std::vector<BenchRecord> Records;
  std::string Source = deadDataSource(N);
  for (const Row &Row : Rows) {
    PipelineOptions Options = liveConfig(Row.Live, Row.GcPrune);
    PipelineResult R = timedRun(Records, std::string(Row.Name) + "/n=" +
                                             std::to_string(N),
                                N, Source, Options);
    Records.back().ExecuteSeconds = bestExecuteSeconds(Source, Options, Reps);
    std::cout << std::left << std::setw(26) << Row.Name << std::right
              << std::setw(12) << R.RenderedValue << std::setw(13)
              << static_cast<int64_t>(Records.back().WallSeconds * 1e6)
              << std::setw(13)
              << static_cast<int64_t>(Records.back().ExecuteSeconds * 1e6)
              << std::setw(10) << R.Stats.GcRuns << '\n';
  }
  std::cout << '\n';
  writeBenchJson("live_deaddata", Records);
}

void BM_DeadData(benchmark::State &State) {
  bool Live = State.range(0) == 1;
  bool GcPrune = State.range(0) == 2;
  std::string Source = deadDataSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, liveConfig(Live, GcPrune));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_DeadData)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_sec1_map_pair.cpp - §1 worked example --------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment SEC1. The introduction claims three analysis facts for
//   (map pair [[1,2],[3,4],[5,6]]):
//   1. pair's parameter spine does not escape pair;
//   2. map's list parameter spine does not escape map;
//   3. at this call, the top TWO spines of the second argument do not
//      escape (local test, monomorphic instance).
// It then claims the enabled optimizations. This binary checks all three
// facts and runs the example under each optimization.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

const char *mapPairSource() {
  return R"(
letrec
  pair x = if (null x) then nil
           else cons (car x) (cons (car x) nil);
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l))
in map pair [[1, 2], [3, 4], [5, 6]]
)";
}

void printProperties() {
  std::cout << "=== SEC1: map/pair analysis facts ===\n";
  SourceManager SM;
  SM.setBuffer(mapPairSource());
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  Parser P(SM.buffer(), Ast, Diags);
  const Expr *Root = P.parseProgram();
  // §1's spine counts are those of the use instance (monomorphic typing,
  // §3.1).
  TypeInference TI(Ast, Types, Diags, TypeInferenceMode::Monomorphic);
  auto Typed = TI.run(Root);
  EscapeAnalyzer Analyzer(Ast, *Typed, Diags);

  auto Pair = Analyzer.globalEscape(Ast.intern("pair"), 0);
  std::cout << "1. G(pair,1) = " << Pair->Escape.str() << ": top "
            << Pair->protectedTopSpines() << " of " << Pair->ParamSpines
            << " spine(s) protected (paper: spine does not escape -> "
            << (Pair->protectedTopSpines() >= 1 ? "match" : "MISMATCH")
            << ")\n";

  auto MapL = Analyzer.globalEscape(Ast.intern("map"), 1);
  std::cout << "2. G(map,2)  = " << MapL->Escape.str() << ": top "
            << MapL->protectedTopSpines() << " of " << MapL->ParamSpines
            << " spine(s) protected (paper: top spine does not escape -> "
            << (MapL->protectedTopSpines() >= 1 ? "match" : "MISMATCH")
            << ")\n";

  const auto *Letrec = cast<LetrecExpr>(Root);
  auto Local = Analyzer.localEscape(Letrec->body(), 1);
  std::cout << "3. L(map,2) at the call = " << Local->Escape.str()
            << ": top " << Local->protectedTopSpines() << " of "
            << Local->ParamSpines
            << " spine(s) protected (paper: top two spines -> "
            << (Local->protectedTopSpines() == 2 ? "match" : "MISMATCH")
            << ")\n\n";
}

void printOptimizedRuns() {
  std::cout << "storage behaviour of (map pair [[1,2],[3,4],[5,6]]):\n";
  struct Row {
    const char *Name;
    bool Reuse, Stack, Region;
  };
  const Row Rows[] = {
      {"baseline", false, false, false},
      {"stack allocation", false, true, false},
      {"in-place reuse", true, false, false},
  };
  for (const Row &R : Rows) {
    PipelineOptions Options = config(R.Reuse, R.Stack, R.Region);
    Options.Mode = TypeInferenceMode::Monomorphic;
    PipelineResult Result = runPipeline(mapPairSource(), Options);
    std::cout << "  " << R.Name << ": result " << Result.RenderedValue
              << ", heap " << Result.Stats.HeapCellsAllocated << ", stack "
              << Result.Stats.StackCellsAllocated << ", dcons "
              << Result.Stats.DconsReuses << '\n';
  }
  std::cout << '\n';
}

void BM_MapPairAnalysis(benchmark::State &State) {
  for (auto _ : State) {
    PipelineOptions Options;
    Options.Mode = TypeInferenceMode::Monomorphic;
    Options.RunProgram = false;
    PipelineResult R = runPipeline(mapPairSource(), Options);
    benchmark::DoNotOptimize(R.Success);
  }
}

void BM_MapPairRun(benchmark::State &State) {
  bool Optimized = State.range(0) != 0;
  for (auto _ : State) {
    PipelineOptions Options =
        config(Optimized, Optimized, Optimized);
    Options.Mode = TypeInferenceMode::Monomorphic;
    PipelineResult R = runPipeline(mapPairSource(), Options);
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_MapPairAnalysis);
BENCHMARK(BM_MapPairRun)->Arg(0)->Arg(1);

int main(int argc, char **argv) {
  printProperties();
  printOptimizedRuns();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

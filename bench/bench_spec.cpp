//===- bench_spec.cpp - speculative tier: heap savings & guard cost --------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment SPEC (an implementation ablation, not a paper table): the
// profile-hot, statically-blocked workload behind docs/SPECULATION.md --
// a keep-style function whose never-taken then-branch returns its list
// argument, forcing the conservative planner to heap-allocate the whole
// producer spine. Three configurations per size:
//
//   spec=off    the conservative optimized pipeline (every producer
//               cell goes to the GC heap),
//   spec=on     the speculative tier prunes the cold branch, guards it,
//               and region-allocates the spine (the guard holds),
//   spec=deopt  the same plan with an injected guard failure, so every
//               speculative arena migrates back to the GC heap (the
//               worst case: speculation cost without its benefit).
//
// The comparison pass enforces the tier's contract: spec=on must cut
// heap_cells_allocated by at least 20% against spec=off, or the bench
// exits nonzero. BENCH_spec.json is baselined under bench/baselines/
// and gated by tools/bench_diff.py in CI (tools/ci.sh).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

/// The speculation family, sized by \p N: build's N cons cells escape
/// conservatively because keep's (never-entered) then-branch returns the
/// list, but are region-allocatable once that branch is pruned.
std::string specColdSource(unsigned N) {
  return "letrec\n"
         "  build n = if n = 0 then nil else cons n (build (n - 1));\n"
         "  suml l = if (null l) then 0 else (car l) + (suml (cdr l));\n"
         "  keep b l = if b then l else cons (suml l) nil\n"
         "in suml (keep false (build " +
         std::to_string(N) + "))\n";
}

PipelineOptions specConfig(bool Spec, bool InjectDeopt) {
  PipelineOptions Options = config(true, true, true);
  Options.Spec.Enable = Spec || InjectDeopt;
  if (InjectDeopt)
    Options.Spec.Inject.All = true;
  return Options;
}

void printComparison() {
  std::cout << "=== SPEC: speculative tier, heap savings & deopt cost ===\n";
  std::cout << std::left << std::setw(26) << "workload" << std::right
            << std::setw(12) << "value" << std::setw(13) << "wall (us)"
            << std::setw(13) << "exec (us)" << std::setw(10) << "heap"
            << std::setw(10) << "region" << '\n';
  struct Row {
    const char *Name;
    bool Spec;
    bool InjectDeopt;
  };
  const Row Rows[] = {
      {"spec_cold/spec=off", false, false},
      {"spec_cold/spec=on", true, false},
      {"spec_cold/spec=deopt", false, true},
  };
  const unsigned N = 256;
  const unsigned Reps = 9;
  std::vector<BenchRecord> Records;
  std::string Source = specColdSource(N);
  uint64_t HeapOff = 0, HeapOn = 0;
  for (const Row &Row : Rows) {
    PipelineOptions Options = specConfig(Row.Spec, Row.InjectDeopt);
    PipelineResult R = timedRun(Records, std::string(Row.Name) + "/n=" +
                                             std::to_string(N),
                                N, Source, Options);
    Records.back().ExecuteSeconds = bestExecuteSeconds(Source, Options, Reps);
    std::cout << std::left << std::setw(26) << Row.Name << std::right
              << std::setw(12) << R.RenderedValue << std::setw(13)
              << static_cast<int64_t>(Records.back().WallSeconds * 1e6)
              << std::setw(13)
              << static_cast<int64_t>(Records.back().ExecuteSeconds * 1e6)
              << std::setw(10) << R.Stats.HeapCellsAllocated << std::setw(10)
              << R.Stats.RegionCellsAllocated << '\n';
    if (!Row.Spec && !Row.InjectDeopt)
      HeapOff = R.Stats.HeapCellsAllocated;
    if (Row.Spec && !Row.InjectDeopt)
      HeapOn = R.Stats.HeapCellsAllocated;
  }
  double Reduction =
      HeapOff == 0 ? 0.0
                   : 100.0 * static_cast<double>(HeapOff - HeapOn) /
                         static_cast<double>(HeapOff);
  std::cout << "heap_cells_allocated: " << HeapOff << " -> " << HeapOn
            << " (" << std::fixed << std::setprecision(1) << Reduction
            << "% reduction)\n\n";
  writeBenchJson("spec", Records);
  // The tier's contract (docs/SPECULATION.md): on a profile-hot,
  // statically-blocked workload, speculation must cut heap allocation
  // by at least 20%.
  if (HeapOff == 0 || HeapOn > HeapOff ||
      (HeapOff - HeapOn) * 5 < HeapOff) {
    std::cerr << "bench_spec: speculation reduced heap_cells_allocated by "
                 "less than 20% ("
              << HeapOff << " -> " << HeapOn << ")\n";
    std::exit(1);
  }
}

void BM_SpecCold(benchmark::State &State) {
  bool Spec = State.range(0) == 1;
  bool InjectDeopt = State.range(0) == 2;
  std::string Source = specColdSource(256);
  for (auto _ : State) {
    PipelineResult R = runPipeline(Source, specConfig(Spec, InjectDeopt));
    benchmark::DoNotOptimize(R.RenderedValue);
  }
}

} // namespace

BENCHMARK(BM_SpecCold)->Arg(0)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

int main(int argc, char **argv) {
  printComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

//===- bench_thm1_polymorphic_invariance.cpp - Theorem 1 --------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Experiment THM1. Theorem 1: for any two monomorphic instances f', f''
// of a polymorphic f, either both global tests yield <0,0>, or they
// yield <1,k'> and <1,k''> with s' − k' = s'' − k'' — the number of
// *protected top spines* is the invariant. This binary instantiates
// append, map, and rev at element types int, int list, and int list
// list (by driving them with suitably nested literals under monomorphic
// typing) and checks the invariant; the benchmark compares analysis cost
// across instances.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <iomanip>
#include <iostream>

using namespace eal;
using namespace eal::bench;

namespace {

/// A literal of nesting depth \p Depth (>= 1).
std::string nested(unsigned Depth) {
  if (Depth == 1)
    return "[1, 2]";
  // Built by += rather than operator+ chains: GCC 12's -Wrestrict
  // misfires on the temporaries at -O2.
  std::string S = "[";
  S += nested(Depth - 1);
  S += "]";
  return S;
}

struct InstanceResult {
  unsigned ParamSpines = 0;
  unsigned EscapingSpines = 0;
  unsigned Protected = 0;
  bool Escapes = false;
};

/// Analyzes function \p Fn (parameter \p Param) in \p Source under
/// monomorphic typing.
InstanceResult analyzeInstance(const std::string &Source, const char *Fn,
                               unsigned Param) {
  SourceManager SM;
  SM.setBuffer(Source);
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  Parser P(SM.buffer(), Ast, Diags);
  const Expr *Root = P.parseProgram();
  TypeInference TI(Ast, Types, Diags, TypeInferenceMode::Monomorphic);
  auto Typed = TI.run(Root);
  EscapeAnalyzer Analyzer(Ast, *Typed, Diags);
  auto PE = Analyzer.globalEscape(Ast.intern(Fn), Param);
  InstanceResult IR;
  if (PE) {
    IR.ParamSpines = PE->ParamSpines;
    IR.EscapingSpines = PE->escapingSpines();
    IR.Protected = PE->protectedTopSpines();
    IR.Escapes = PE->escapes();
  }
  return IR;
}

std::string appendAt(unsigned Depth) {
  return std::string(R"(
letrec append x y = if (null x) then y
                    else cons (car x) (append (cdr x) y)
in append )") +
         "[" + nested(Depth) + "]" + " [" + nested(Depth) + "]\n";
}

std::string revAt(unsigned Depth) {
  return std::string(R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev )") +
         "[" + nested(Depth) + "]\n";
}

std::string mapAt(unsigned Depth) {
  return std::string(R"(
letrec map f l = if (null l) then nil
                 else cons (f (car l)) (map f (cdr l))
in map (lambda(e). e) )") +
         "[" + nested(Depth) + "]\n";
}

void checkInvariance(const char *Label, const char *Fn, unsigned Param,
                     std::string (*SourceAt)(unsigned)) {
  std::cout << Label << ":\n";
  std::optional<unsigned> FirstProtected;
  bool Invariant = true;
  for (unsigned Depth : {1u, 2u, 3u}) {
    InstanceResult IR = analyzeInstance(SourceAt(Depth), Fn, Param);
    std::cout << "  instance s=" << IR.ParamSpines << ": "
              << (IR.Escapes
                      ? "<1," + std::to_string(IR.EscapingSpines) + ">"
                      : "<0,0>")
              << ", s-k = " << IR.Protected << '\n';
    if (!FirstProtected)
      FirstProtected = IR.Protected;
    else if (*FirstProtected != IR.Protected)
      Invariant = false;
  }
  std::cout << "  invariant holds: " << (Invariant ? "yes" : "NO") << "\n";
}

void BM_InstanceAnalysis(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::string Source = appendAt(Depth);
  for (auto _ : State) {
    InstanceResult IR = analyzeInstance(Source, "append", 0);
    benchmark::DoNotOptimize(IR);
  }
  State.counters["spines"] = Depth;
}

} // namespace

BENCHMARK(BM_InstanceAnalysis)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

int main(int argc, char **argv) {
  std::cout << "=== THM1: polymorphic invariance (s - k constant) ===\n";
  checkInvariance("append, parameter 1 (k grows with s, s-k fixed)",
                  "append", 0, appendAt);
  checkInvariance("append, parameter 2 (everything escapes)", "append", 1,
                  appendAt);
  checkInvariance("rev, parameter 1", "rev", 0, revAt);
  checkInvariance("map, parameter 2", "map", 1, mapAt);
  std::cout << '\n';
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

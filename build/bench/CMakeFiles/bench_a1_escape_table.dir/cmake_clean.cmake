file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_escape_table.dir/bench_a1_escape_table.cpp.o"
  "CMakeFiles/bench_a1_escape_table.dir/bench_a1_escape_table.cpp.o.d"
  "bench_a1_escape_table"
  "bench_a1_escape_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_escape_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_a1_escape_table.
# This may be replaced when dependencies are built.

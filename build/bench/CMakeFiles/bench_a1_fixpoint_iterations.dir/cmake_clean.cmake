file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_fixpoint_iterations.dir/bench_a1_fixpoint_iterations.cpp.o"
  "CMakeFiles/bench_a1_fixpoint_iterations.dir/bench_a1_fixpoint_iterations.cpp.o.d"
  "bench_a1_fixpoint_iterations"
  "bench_a1_fixpoint_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_fixpoint_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

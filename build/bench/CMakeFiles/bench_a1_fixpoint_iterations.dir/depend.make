# Empty dependencies file for bench_a1_fixpoint_iterations.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a2_sharing.cpp" "bench/CMakeFiles/bench_a2_sharing.dir/bench_a2_sharing.cpp.o" "gcc" "bench/CMakeFiles/bench_a2_sharing.dir/bench_a2_sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/eal_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/eal_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/eal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/eal_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sharing/CMakeFiles/eal_sharing.dir/DependInfo.cmake"
  "/root/repo/build/src/escape/CMakeFiles/eal_escape.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/eal_types.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/eal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

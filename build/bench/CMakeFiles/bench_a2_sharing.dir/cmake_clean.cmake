file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_sharing.dir/bench_a2_sharing.cpp.o"
  "CMakeFiles/bench_a2_sharing.dir/bench_a2_sharing.cpp.o.d"
  "bench_a2_sharing"
  "bench_a2_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

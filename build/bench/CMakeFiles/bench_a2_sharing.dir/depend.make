# Empty dependencies file for bench_a2_sharing.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_a31_stack_alloc.
# This may be replaced when dependencies are built.

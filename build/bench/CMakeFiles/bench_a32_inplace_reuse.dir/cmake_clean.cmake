file(REMOVE_RECURSE
  "CMakeFiles/bench_a32_inplace_reuse.dir/bench_a32_inplace_reuse.cpp.o"
  "CMakeFiles/bench_a32_inplace_reuse.dir/bench_a32_inplace_reuse.cpp.o.d"
  "bench_a32_inplace_reuse"
  "bench_a32_inplace_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a32_inplace_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_a32_inplace_reuse.
# This may be replaced when dependencies are built.

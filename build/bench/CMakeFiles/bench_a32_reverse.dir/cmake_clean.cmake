file(REMOVE_RECURSE
  "CMakeFiles/bench_a32_reverse.dir/bench_a32_reverse.cpp.o"
  "CMakeFiles/bench_a32_reverse.dir/bench_a32_reverse.cpp.o.d"
  "bench_a32_reverse"
  "bench_a32_reverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a32_reverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

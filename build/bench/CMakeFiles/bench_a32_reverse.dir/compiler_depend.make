# Empty compiler generated dependencies file for bench_a32_reverse.
# This may be replaced when dependencies are built.

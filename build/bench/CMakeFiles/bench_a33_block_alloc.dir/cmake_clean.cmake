file(REMOVE_RECURSE
  "CMakeFiles/bench_a33_block_alloc.dir/bench_a33_block_alloc.cpp.o"
  "CMakeFiles/bench_a33_block_alloc.dir/bench_a33_block_alloc.cpp.o.d"
  "bench_a33_block_alloc"
  "bench_a33_block_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a33_block_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

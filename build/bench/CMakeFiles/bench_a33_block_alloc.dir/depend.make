# Empty dependencies file for bench_a33_block_alloc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_scalability.dir/bench_analysis_scalability.cpp.o"
  "CMakeFiles/bench_analysis_scalability.dir/bench_analysis_scalability.cpp.o.d"
  "bench_analysis_scalability"
  "bench_analysis_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

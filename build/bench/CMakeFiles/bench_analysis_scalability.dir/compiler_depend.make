# Empty compiler generated dependencies file for bench_analysis_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_whole_object.dir/bench_baseline_whole_object.cpp.o"
  "CMakeFiles/bench_baseline_whole_object.dir/bench_baseline_whole_object.cpp.o.d"
  "bench_baseline_whole_object"
  "bench_baseline_whole_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_whole_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_baseline_whole_object.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_spines.dir/bench_fig1_spines.cpp.o"
  "CMakeFiles/bench_fig1_spines.dir/bench_fig1_spines.cpp.o.d"
  "bench_fig1_spines"
  "bench_fig1_spines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_spines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig1_spines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sec1_map_pair.dir/bench_sec1_map_pair.cpp.o"
  "CMakeFiles/bench_sec1_map_pair.dir/bench_sec1_map_pair.cpp.o.d"
  "bench_sec1_map_pair"
  "bench_sec1_map_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec1_map_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

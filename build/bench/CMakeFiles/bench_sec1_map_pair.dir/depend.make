# Empty dependencies file for bench_sec1_map_pair.
# This may be replaced when dependencies are built.

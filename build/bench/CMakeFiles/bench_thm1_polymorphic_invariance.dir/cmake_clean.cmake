file(REMOVE_RECURSE
  "CMakeFiles/bench_thm1_polymorphic_invariance.dir/bench_thm1_polymorphic_invariance.cpp.o"
  "CMakeFiles/bench_thm1_polymorphic_invariance.dir/bench_thm1_polymorphic_invariance.cpp.o.d"
  "bench_thm1_polymorphic_invariance"
  "bench_thm1_polymorphic_invariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm1_polymorphic_invariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

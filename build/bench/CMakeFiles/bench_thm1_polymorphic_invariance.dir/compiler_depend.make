# Empty compiler generated dependencies file for bench_thm1_polymorphic_invariance.
# This may be replaced when dependencies are built.

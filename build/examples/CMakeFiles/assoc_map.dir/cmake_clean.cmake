file(REMOVE_RECURSE
  "CMakeFiles/assoc_map.dir/assoc_map.cpp.o"
  "CMakeFiles/assoc_map.dir/assoc_map.cpp.o.d"
  "assoc_map"
  "assoc_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assoc_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

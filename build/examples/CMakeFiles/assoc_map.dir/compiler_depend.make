# Empty compiler generated dependencies file for assoc_map.
# This may be replaced when dependencies are built.

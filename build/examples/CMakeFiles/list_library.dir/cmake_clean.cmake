file(REMOVE_RECURSE
  "CMakeFiles/list_library.dir/list_library.cpp.o"
  "CMakeFiles/list_library.dir/list_library.cpp.o.d"
  "list_library"
  "list_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for list_library.
# This may be replaced when dependencies are built.

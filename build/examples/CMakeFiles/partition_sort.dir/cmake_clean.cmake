file(REMOVE_RECURSE
  "CMakeFiles/partition_sort.dir/partition_sort.cpp.o"
  "CMakeFiles/partition_sort.dir/partition_sort.cpp.o.d"
  "partition_sort"
  "partition_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

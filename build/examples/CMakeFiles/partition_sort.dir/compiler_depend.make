# Empty compiler generated dependencies file for partition_sort.
# This may be replaced when dependencies are built.

# Empty dependencies file for partition_sort.
# This may be replaced when dependencies are built.

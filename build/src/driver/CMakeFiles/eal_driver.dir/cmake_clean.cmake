file(REMOVE_RECURSE
  "CMakeFiles/eal_driver.dir/Pipeline.cpp.o"
  "CMakeFiles/eal_driver.dir/Pipeline.cpp.o.d"
  "CMakeFiles/eal_driver.dir/Stdlib.cpp.o"
  "CMakeFiles/eal_driver.dir/Stdlib.cpp.o.d"
  "libeal_driver.a"
  "libeal_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_driver.a"
)

# Empty dependencies file for eal_driver.
# This may be replaced when dependencies are built.

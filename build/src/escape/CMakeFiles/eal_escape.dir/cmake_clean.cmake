file(REMOVE_RECURSE
  "CMakeFiles/eal_escape.dir/EscapeAnalyzer.cpp.o"
  "CMakeFiles/eal_escape.dir/EscapeAnalyzer.cpp.o.d"
  "CMakeFiles/eal_escape.dir/EscapeValue.cpp.o"
  "CMakeFiles/eal_escape.dir/EscapeValue.cpp.o.d"
  "libeal_escape.a"
  "libeal_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_escape.a"
)

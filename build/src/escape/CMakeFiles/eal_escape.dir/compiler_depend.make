# Empty compiler generated dependencies file for eal_escape.
# This may be replaced when dependencies are built.

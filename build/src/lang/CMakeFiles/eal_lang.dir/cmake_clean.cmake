file(REMOVE_RECURSE
  "CMakeFiles/eal_lang.dir/Ast.cpp.o"
  "CMakeFiles/eal_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/eal_lang.dir/AstCloner.cpp.o"
  "CMakeFiles/eal_lang.dir/AstCloner.cpp.o.d"
  "CMakeFiles/eal_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/eal_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/eal_lang.dir/AstUtils.cpp.o"
  "CMakeFiles/eal_lang.dir/AstUtils.cpp.o.d"
  "CMakeFiles/eal_lang.dir/Lexer.cpp.o"
  "CMakeFiles/eal_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/eal_lang.dir/Parser.cpp.o"
  "CMakeFiles/eal_lang.dir/Parser.cpp.o.d"
  "libeal_lang.a"
  "libeal_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_lang.a"
)

# Empty dependencies file for eal_lang.
# This may be replaced when dependencies are built.

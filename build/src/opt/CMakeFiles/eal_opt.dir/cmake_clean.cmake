file(REMOVE_RECURSE
  "CMakeFiles/eal_opt.dir/AllocPlanner.cpp.o"
  "CMakeFiles/eal_opt.dir/AllocPlanner.cpp.o.d"
  "CMakeFiles/eal_opt.dir/Optimizer.cpp.o"
  "CMakeFiles/eal_opt.dir/Optimizer.cpp.o.d"
  "CMakeFiles/eal_opt.dir/ReuseTransform.cpp.o"
  "CMakeFiles/eal_opt.dir/ReuseTransform.cpp.o.d"
  "libeal_opt.a"
  "libeal_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_opt.a"
)

# Empty dependencies file for eal_opt.
# This may be replaced when dependencies are built.

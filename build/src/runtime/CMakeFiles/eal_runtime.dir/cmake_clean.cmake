file(REMOVE_RECURSE
  "CMakeFiles/eal_runtime.dir/Heap.cpp.o"
  "CMakeFiles/eal_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/eal_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/eal_runtime.dir/Interpreter.cpp.o.d"
  "CMakeFiles/eal_runtime.dir/PrimOps.cpp.o"
  "CMakeFiles/eal_runtime.dir/PrimOps.cpp.o.d"
  "CMakeFiles/eal_runtime.dir/ValuePrinter.cpp.o"
  "CMakeFiles/eal_runtime.dir/ValuePrinter.cpp.o.d"
  "libeal_runtime.a"
  "libeal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_runtime.a"
)

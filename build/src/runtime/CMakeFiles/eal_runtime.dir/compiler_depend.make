# Empty compiler generated dependencies file for eal_runtime.
# This may be replaced when dependencies are built.

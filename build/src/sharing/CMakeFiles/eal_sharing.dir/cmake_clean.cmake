file(REMOVE_RECURSE
  "CMakeFiles/eal_sharing.dir/SharingAnalysis.cpp.o"
  "CMakeFiles/eal_sharing.dir/SharingAnalysis.cpp.o.d"
  "libeal_sharing.a"
  "libeal_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_sharing.a"
)

# Empty dependencies file for eal_sharing.
# This may be replaced when dependencies are built.

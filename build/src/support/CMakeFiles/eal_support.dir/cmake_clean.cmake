file(REMOVE_RECURSE
  "CMakeFiles/eal_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/eal_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/eal_support.dir/SourceManager.cpp.o"
  "CMakeFiles/eal_support.dir/SourceManager.cpp.o.d"
  "libeal_support.a"
  "libeal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_support.a"
)

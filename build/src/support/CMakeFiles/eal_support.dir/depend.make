# Empty dependencies file for eal_support.
# This may be replaced when dependencies are built.

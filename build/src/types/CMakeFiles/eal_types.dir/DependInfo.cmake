
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/Type.cpp" "src/types/CMakeFiles/eal_types.dir/Type.cpp.o" "gcc" "src/types/CMakeFiles/eal_types.dir/Type.cpp.o.d"
  "/root/repo/src/types/TypeInference.cpp" "src/types/CMakeFiles/eal_types.dir/TypeInference.cpp.o" "gcc" "src/types/CMakeFiles/eal_types.dir/TypeInference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/eal_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/eal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/eal_types.dir/Type.cpp.o"
  "CMakeFiles/eal_types.dir/Type.cpp.o.d"
  "CMakeFiles/eal_types.dir/TypeInference.cpp.o"
  "CMakeFiles/eal_types.dir/TypeInference.cpp.o.d"
  "libeal_types.a"
  "libeal_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libeal_types.a"
)

# Empty dependencies file for eal_types.
# This may be replaced when dependencies are built.

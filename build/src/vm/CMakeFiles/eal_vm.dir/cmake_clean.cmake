file(REMOVE_RECURSE
  "CMakeFiles/eal_vm.dir/Bytecode.cpp.o"
  "CMakeFiles/eal_vm.dir/Bytecode.cpp.o.d"
  "CMakeFiles/eal_vm.dir/Compiler.cpp.o"
  "CMakeFiles/eal_vm.dir/Compiler.cpp.o.d"
  "CMakeFiles/eal_vm.dir/Vm.cpp.o"
  "CMakeFiles/eal_vm.dir/Vm.cpp.o.d"
  "libeal_vm.a"
  "libeal_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

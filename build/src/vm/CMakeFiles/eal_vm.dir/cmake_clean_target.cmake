file(REMOVE_RECURSE
  "libeal_vm.a"
)

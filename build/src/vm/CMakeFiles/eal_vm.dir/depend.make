# Empty dependencies file for eal_vm.
# This may be replaced when dependencies are built.

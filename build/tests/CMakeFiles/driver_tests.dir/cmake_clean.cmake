file(REMOVE_RECURSE
  "CMakeFiles/driver_tests.dir/driver/EndToEndTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/EndToEndTest.cpp.o.d"
  "CMakeFiles/driver_tests.dir/driver/OptionsMatrixTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/OptionsMatrixTest.cpp.o.d"
  "CMakeFiles/driver_tests.dir/driver/PipelineTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/PipelineTest.cpp.o.d"
  "CMakeFiles/driver_tests.dir/driver/StdlibTest.cpp.o"
  "CMakeFiles/driver_tests.dir/driver/StdlibTest.cpp.o.d"
  "driver_tests"
  "driver_tests.pdb"
  "driver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/escape_analyzer_tests.dir/escape/EscapeAnalyzerTest.cpp.o"
  "CMakeFiles/escape_analyzer_tests.dir/escape/EscapeAnalyzerTest.cpp.o.d"
  "CMakeFiles/escape_analyzer_tests.dir/escape/LocalContextTest.cpp.o"
  "CMakeFiles/escape_analyzer_tests.dir/escape/LocalContextTest.cpp.o.d"
  "CMakeFiles/escape_analyzer_tests.dir/escape/PairExtensionTest.cpp.o"
  "CMakeFiles/escape_analyzer_tests.dir/escape/PairExtensionTest.cpp.o.d"
  "CMakeFiles/escape_analyzer_tests.dir/escape/WholeObjectBaselineTest.cpp.o"
  "CMakeFiles/escape_analyzer_tests.dir/escape/WholeObjectBaselineTest.cpp.o.d"
  "CMakeFiles/escape_analyzer_tests.dir/escape/WorstCaseTest.cpp.o"
  "CMakeFiles/escape_analyzer_tests.dir/escape/WorstCaseTest.cpp.o.d"
  "escape_analyzer_tests"
  "escape_analyzer_tests.pdb"
  "escape_analyzer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_analyzer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for escape_analyzer_tests.
# This may be replaced when dependencies are built.

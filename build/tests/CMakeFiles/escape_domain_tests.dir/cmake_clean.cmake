file(REMOVE_RECURSE
  "CMakeFiles/escape_domain_tests.dir/escape/BasicEscapeTest.cpp.o"
  "CMakeFiles/escape_domain_tests.dir/escape/BasicEscapeTest.cpp.o.d"
  "CMakeFiles/escape_domain_tests.dir/escape/EscapeValueTest.cpp.o"
  "CMakeFiles/escape_domain_tests.dir/escape/EscapeValueTest.cpp.o.d"
  "escape_domain_tests"
  "escape_domain_tests.pdb"
  "escape_domain_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_domain_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for escape_domain_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/escape_paper_tests.dir/escape/PaperExamplesTest.cpp.o"
  "CMakeFiles/escape_paper_tests.dir/escape/PaperExamplesTest.cpp.o.d"
  "CMakeFiles/escape_paper_tests.dir/escape/PolymorphicInvarianceTest.cpp.o"
  "CMakeFiles/escape_paper_tests.dir/escape/PolymorphicInvarianceTest.cpp.o.d"
  "escape_paper_tests"
  "escape_paper_tests.pdb"
  "escape_paper_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escape_paper_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for escape_paper_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/opt_reuse_tests.dir/opt/AllocPlannerTest.cpp.o"
  "CMakeFiles/opt_reuse_tests.dir/opt/AllocPlannerTest.cpp.o.d"
  "CMakeFiles/opt_reuse_tests.dir/opt/ReuseTransformTest.cpp.o"
  "CMakeFiles/opt_reuse_tests.dir/opt/ReuseTransformTest.cpp.o.d"
  "opt_reuse_tests"
  "opt_reuse_tests.pdb"
  "opt_reuse_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_reuse_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for opt_reuse_tests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sharing_tests.dir/sharing/SharingAnalysisTest.cpp.o"
  "CMakeFiles/sharing_tests.dir/sharing/SharingAnalysisTest.cpp.o.d"
  "sharing_tests"
  "sharing_tests.pdb"
  "sharing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sharing_tests.
# This may be replaced when dependencies are built.

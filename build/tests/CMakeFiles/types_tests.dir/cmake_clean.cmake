file(REMOVE_RECURSE
  "CMakeFiles/types_tests.dir/types/TypeInferenceTest.cpp.o"
  "CMakeFiles/types_tests.dir/types/TypeInferenceTest.cpp.o.d"
  "types_tests"
  "types_tests.pdb"
  "types_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/types_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/vm_tests.dir/vm/CompilerTest.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/CompilerTest.cpp.o.d"
  "CMakeFiles/vm_tests.dir/vm/VmTest.cpp.o"
  "CMakeFiles/vm_tests.dir/vm/VmTest.cpp.o.d"
  "vm_tests"
  "vm_tests.pdb"
  "vm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

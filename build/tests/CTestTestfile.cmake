# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/escape_paper_tests[1]_include.cmake")
include("/root/repo/build/tests/sharing_tests[1]_include.cmake")
include("/root/repo/build/tests/opt_reuse_tests[1]_include.cmake")
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/driver_tests[1]_include.cmake")
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/lang_tests[1]_include.cmake")
include("/root/repo/build/tests/types_tests[1]_include.cmake")
include("/root/repo/build/tests/escape_domain_tests[1]_include.cmake")
include("/root/repo/build/tests/escape_analyzer_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/vm_tests[1]_include.cmake")
add_test(cli_report_reverse "/root/repo/build/tools/eal" "report" "/root/repo/examples/nml/reverse.nml")
set_tests_properties(cli_report_reverse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_sort_vm "/root/repo/build/tools/eal" "run" "/root/repo/examples/nml/partition_sort.nml" "--vm" "--validate")
set_tests_properties(cli_run_sort_vm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_run_stdlib "/root/repo/build/tools/eal" "run" "/root/repo/examples/nml/stats.nml" "--stdlib")
set_tests_properties(cli_run_stdlib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;32;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_analyze_mono "/root/repo/build/tools/eal" "analyze" "/root/repo/examples/nml/reverse.nml" "--mono")
set_tests_properties(cli_analyze_mono PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;34;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_whole_object_baseline "/root/repo/build/tools/eal" "run" "/root/repo/examples/nml/partition_sort.nml" "--whole-object")
set_tests_properties(cli_whole_object_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")

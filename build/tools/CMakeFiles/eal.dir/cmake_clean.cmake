file(REMOVE_RECURSE
  "CMakeFiles/eal.dir/eal.cpp.o"
  "CMakeFiles/eal.dir/eal.cpp.o.d"
  "eal"
  "eal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for eal.
# This may be replaced when dependencies are built.

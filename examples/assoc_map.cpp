//===- assoc_map.cpp - association lists (lists of pairs) -------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Exercises the tuple extension (§1: "our approach for lists could be
// applied to other data structures such as tuples") on a realistic
// workload: an association map as an `(int * int) list`, with lookup,
// insert, and bulk update. The verdicts are instructive: insert and bump
// rebuild the spine only up to the hit and SHARE the tail into the
// result, so their map parameter escapes wholesale and no in-place reuse
// is licensed — exactly the sharing hazard Theorem 2 guards against —
// while lookup and keysum leave the whole map private.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/AstPrinter.h"

#include <iostream>

int main() {
  const std::string Source = R"(
letrec
  -- lookup k m: the value bound to k, or 0 - 1 if absent.
  lookup k m = if (null m) then 0 - 1
               else if fst (car m) = k then snd (car m)
               else lookup k (cdr m);
  -- insert k v m: a new map with (k, v) bound, replacing any old binding.
  insert k v m = if (null m) then cons (k, v) nil
                 else if fst (car m) = k then cons (k, v) (cdr m)
                 else cons (car m) (insert k v (cdr m));
  -- bump k m: add 1 to k's binding (rebuilds the spine up to k).
  bump k m = if (null m) then nil
             else if fst (car m) = k
                  then cons (fst (car m), snd (car m) + 1) (cdr m)
                  else cons (car m) (bump k (cdr m));
  keysum m = if (null m) then 0 else fst (car m) + keysum (cdr m)
in lookup 2 (bump 2 (insert 3 30 (insert 2 20 (insert 1 10 nil))))
)";

  eal::PipelineOptions Options;
  eal::PipelineResult R = eal::runPipeline(Source, Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return 1;
  }

  std::cout << "=== association map over (int * int) list ===\n\n"
            << "escape analysis:\n"
            << renderEscapeReport(*R.Ast, R.Optimized->BaseEscape) << '\n';

  std::cout << "reuse versions (none: insert/bump share their tail into\n"
               "the result, so destructive reuse would corrupt the old\n"
               "map; the analysis proves it and the optimizer abstains):\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse) << '\n';

  std::cout << "transformed program:\n"
            << printExpr(*R.Ast, R.Optimized->Root) << "\n\n";

  std::cout << "result: " << R.RenderedValue << "\n"
            << "heap cells: " << R.Stats.HeapCellsAllocated
            << ", dcons reuses: " << R.Stats.DconsReuses << '\n';
  return 0;
}

//===- list_library.cpp - Escape table for a realistic list library --------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Analyzes the kind of list library the paper's introduction motivates —
// append, map, filter, reverse (naive and accumulating), take, drop,
// zip-with-add, length, sum, last — and prints, for every parameter of
// every function, the escape verdict and what storage optimizations it
// licenses.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "sharing/SharingAnalysis.h"

#include <iomanip>
#include <iostream>

int main() {
  const std::string Source = R"(
letrec
  append x y   = if (null x) then y
                 else cons (car x) (append (cdr x) y);
  map f l      = if (null l) then nil
                 else cons (f (car l)) (map f (cdr l));
  filter p l   = if (null l) then nil
                 else if p (car l) then cons (car l) (filter p (cdr l))
                 else filter p (cdr l);
  rev l        = if (null l) then nil
                 else append (rev (cdr l)) (cons (car l) nil);
  revacc l acc = if (null l) then acc
                 else revacc (cdr l) (cons (car l) acc);
  take n l     = if n = 0 then nil
                 else if (null l) then nil
                 else cons (car l) (take (n - 1) (cdr l));
  drop n l     = if n = 0 then l
                 else if (null l) then nil
                 else drop (n - 1) (cdr l);
  zipadd a b   = if (null a) then nil
                 else if (null b) then nil
                 else cons (car a + car b) (zipadd (cdr a) (cdr b));
  length l     = if (null l) then 0 else 1 + length (cdr l);
  sum l        = if (null l) then 0 else car l + sum (cdr l);
  last l       = if (null (cdr l)) then car l else last (cdr l)
in sum (zipadd (map (lambda(v). v * 2) (filter (lambda(v). v < 4) [1, 2, 3, 4, 5]))
               (take 3 (revacc (append [1, 2] [3]) nil)))
)";

  eal::PipelineOptions Options;
  eal::PipelineResult R = eal::runPipeline(Source, Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return 1;
  }

  const eal::ProgramEscapeReport &Report = R.Optimized->BaseEscape;
  eal::SharingAnalysis Sharing(*R.Ast, *R.Typed, Report);

  std::cout << std::left << std::setw(10) << "function" << std::setw(7)
            << "param" << std::setw(8) << "G(f,i)" << std::setw(11)
            << "protected" << "verdict\n";
  std::cout << std::string(72, '-') << '\n';
  for (const eal::FunctionEscape &FE : Report.Functions) {
    for (const eal::ParamEscape &PE : FE.Params) {
      std::cout << std::left << std::setw(10)
                << std::string(R.Ast->spelling(FE.Name)) << std::setw(7)
                << (PE.ParamIndex + 1) << std::setw(8) << PE.Escape.str()
                << std::setw(11) << PE.protectedTopSpines();
      if (PE.ParamSpines == 0)
        std::cout << (PE.escapes() ? "scalar/function escapes"
                                   : "nothing escapes");
      else if (!PE.escapes())
        std::cout << "whole list private: stack-allocatable";
      else if (PE.protectedTopSpines() > 0)
        std::cout << "spine reusable, elements escape";
      else
        std::cout << "escapes entirely";
      std::cout << '\n';
    }
  }

  std::cout << "\nresult-sharing facts (Theorem 2, any arguments):\n"
            << renderSharingReport(*R.Ast, *R.Typed, Report);

  std::cout << "\nreuse versions the optimizer generated:\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse);

  std::cout << "\nprogram result: " << R.RenderedValue << '\n';
  return 0;
}

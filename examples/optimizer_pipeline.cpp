//===- optimizer_pipeline.cpp - Watch the transformations happen -----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Shows the optimizer's work products as source text: the original
// program, the DCONS-transformed program (REV' and APPEND' of A.3.2),
// and the allocation plan (A.3.1/A.3.3 directives).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "lang/AstPrinter.h"
#include "opt/AllocPlanner.h"
#include "opt/ReuseTransform.h"

#include <iostream>

int main() {
  const std::string Source = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3, 4, 5]
)";

  eal::PipelineOptions Options;
  eal::PipelineResult R = eal::runPipeline(Source, Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return 1;
  }

  std::cout << "=== original program ===\n"
            << printExpr(*R.Ast, R.ParsedRoot) << "\n\n";

  std::cout << "=== after in-place reuse (compare REV' in A.3.2) ===\n"
            << printExpr(*R.Ast, R.Optimized->Root) << "\n\n";

  std::cout << "=== transformation record ===\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse) << "\n";

  std::cout << "=== allocation plan ===\n"
            << renderAllocationPlan(*R.Ast, R.Optimized->Plan) << "\n";

  std::cout << "=== run ===\nresult: " << R.RenderedValue << "\n"
            << "dcons reuses: " << R.Stats.DconsReuses
            << ", heap cells: " << R.Stats.HeapCellsAllocated << "\n";
  return 0;
}

//===- partition_sort.cpp - The Appendix A case study, end to end ----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Reproduces all of Appendix A on the partition sort program:
//   A.1  the global escape table for APPEND / SPLIT / PS,
//   A.2  the sharing facts derived from it,
//   A.3  the three optimizations — run for real, with the storage
//        counters that show each one doing its job.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/AstPrinter.h"
#include "sharing/SharingAnalysis.h"

#include <iomanip>
#include <iostream>

namespace {

std::string sortSource(unsigned N) {
  // ps (create_list N): pseudo-random input produced by a function call,
  // which is exactly the shape A.3.3 discusses.
  std::string Source = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))));
  create_list i = if i = 0 then nil
                  else cons (i * 193 mod 1021) (create_list (i - 1))
in ps (create_list )";
  Source += std::to_string(N);
  Source += ")\n";
  return Source;
}

struct ConfigRow {
  const char *Name;
  bool Reuse, Stack, Region;
};

} // namespace

int main() {
  const std::string Source = sortSource(300);

  // --- Analysis (A.1, A.2) -------------------------------------------------
  eal::PipelineOptions AnalyzeOnly;
  AnalyzeOnly.RunProgram = false;
  eal::PipelineResult A = eal::runPipeline(Source, AnalyzeOnly);
  if (!A.Success) {
    std::cerr << A.diagnostics();
    return 1;
  }
  std::cout << "=== A.1: global escape table ===\n"
            << renderEscapeReport(*A.Ast, A.Optimized->BaseEscape) << "\n";
  std::cout << "=== A.2: sharing facts ===\n"
            << renderSharingReport(*A.Ast, *A.Typed, A.Optimized->BaseEscape)
            << "\n";
  std::cout << "=== A.3.2: reuse versions generated ===\n"
            << renderReuseReport(*A.Ast, A.Optimized->Reuse) << "\n";

  // --- Execution under the optimization configurations (A.3) ---------------
  const ConfigRow Configs[] = {
      {"baseline (all heap + GC)", false, false, false},
      {"stack allocation (A.3.1)", false, true, false},
      {"in-place reuse (A.3.2)", true, false, false},
      {"block allocation (A.3.3)", false, false, true},
      {"everything", true, true, true},
  };

  std::cout << "=== A.3: storage behaviour of partition sort, n = 300 ===\n";
  std::cout << std::left << std::setw(28) << "configuration" << std::right
            << std::setw(10) << "heap" << std::setw(10) << "stack"
            << std::setw(10) << "region" << std::setw(10) << "dcons"
            << std::setw(8) << "GCs" << std::setw(12) << "GC work"
            << '\n';
  for (const ConfigRow &C : Configs) {
    eal::PipelineOptions Options;
    Options.Optimize.EnableReuse = C.Reuse;
    Options.Optimize.EnableStack = C.Stack;
    Options.Optimize.EnableRegion = C.Region;
    Options.Run.HeapCapacity = 4096; // small heap: GC pressure is visible
    eal::PipelineResult R = eal::runPipeline(Source, Options);
    if (!R.Success) {
      std::cerr << C.Name << ": " << R.diagnostics();
      return 1;
    }
    std::cout << std::left << std::setw(28) << C.Name << std::right
              << std::setw(10) << R.Stats.HeapCellsAllocated << std::setw(10)
              << R.Stats.StackCellsAllocated << std::setw(10)
              << R.Stats.RegionCellsAllocated << std::setw(10)
              << R.Stats.DconsReuses << std::setw(8) << R.Stats.GcRuns
              << std::setw(12) << R.Stats.CellsMarked << '\n';
  }

  std::cout << "\n(one sorted run checks out: ";
  eal::PipelineResult Check = eal::runPipeline(sortSource(10));
  std::cout << Check.RenderedValue << ")\n";
  return 0;
}

//===- quickstart.cpp - First contact with the eal library -----------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Analyze a small nml program, print what the escape analysis learned,
// and run it. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "sharing/SharingAnalysis.h"

#include <iostream>

int main() {
  // append copies its first argument's spine and splices the second on
  // the end — so x's spine cannot be in the result, but all of y is.
  const std::string Source = R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y)
in append [1, 2, 3] [4, 5]
)";

  std::cout << "program:\n" << Source << "\n";

  eal::PipelineOptions Options;
  eal::PipelineResult R = eal::runPipeline(Source, Options);
  if (!R.Success) {
    std::cerr << R.diagnostics();
    return 1;
  }

  // 1. What escapes? (the paper's global escape test G, §4.1)
  std::cout << "escape analysis (G, section 4.1):\n"
            << renderEscapeReport(*R.Ast, R.Optimized->BaseEscape) << "\n";

  // 2. What is unshared? (Theorem 2)
  std::cout << "sharing analysis (Theorem 2):\n"
            << renderSharingReport(*R.Ast, *R.Typed, R.Optimized->BaseEscape)
            << "\n";

  // 3. What did the optimizer do with that?
  std::cout << "in-place reuse transformation (section 6):\n"
            << renderReuseReport(*R.Ast, R.Optimized->Reuse) << "\n";

  // 4. Run it.
  std::cout << "result: " << R.RenderedValue << "\n\n";
  std::cout << "runtime statistics:\n" << R.Stats.str();
  return 0;
}

//===- CheckReport.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/CheckReport.h"

#include "support/Metrics.h"
#include "support/SourceManager.h"
#include "support/Trace.h"

#include <sstream>

using namespace eal;
using namespace eal::check;

const char *eal::check::severityName(FindingSeverity S) {
  switch (S) {
  case FindingSeverity::Note:
    return "note";
  case FindingSeverity::Warning:
    return "warning";
  case FindingSeverity::Error:
    return "error";
  }
  return "unknown";
}

void OracleReport::exportTo(obs::MetricsRegistry &Reg) const {
  Reg.counter("check.oracle.activations").add(Activations);
  Reg.counter("check.oracle.claims_checked").add(ClaimsChecked);
  Reg.counter("check.oracle.cells_tracked").add(CellsTracked);
  Reg.counter("check.oracle.heap_cells_escaped").add(HeapCellsEscaped);
  Reg.counter("check.oracle.heap_cells_unescaped").add(HeapCellsUnescaped);
  Reg.counter("check.oracle.imprecise_claims").add(ImpreciseClaims);
  Reg.counter("check.oracle.alias_exemptions").add(AliasExemptions);
  Reg.counter("check.oracle.violations").add(Violations.size());
}

size_t CheckReport::count(FindingSeverity S) const {
  size_t N = 0;
  for (const Finding &F : Findings)
    N += F.Severity == S;
  return N;
}

namespace {

void renderLoc(std::ostringstream &OS, const SourceManager &SM,
               SourceLoc Loc) {
  LineColumn LC = SM.lineColumn(Loc);
  OS << SM.name() << ':' << LC.Line << ':' << LC.Column;
}

std::string violationMessage(const OracleViolation &V, const SourceManager &SM,
                             bool WithLocs) {
  std::ostringstream OS;
  OS << "soundness violation (" << V.Kind << "): cell allocated at ";
  if (WithLocs && V.AllocLoc.isValid()) {
    LineColumn LC = SM.lineColumn(V.AllocLoc);
    OS << LC.Line << ':' << LC.Column << " (site " << V.AllocSiteId << ")";
  } else {
    OS << "site " << V.AllocSiteId;
  }
  OS << " sits on spine level " << V.SpineLevel << " of argument "
     << (V.ArgIndex + 1) << " of '" << V.Function << "' — claimed top "
     << V.ProtectedSpines
     << " spine(s) protected — yet escaped through the activation's result";
  return OS.str();
}

} // namespace

std::string CheckReport::render(const SourceManager &SM) const {
  std::ostringstream OS;
  for (const Finding &F : Findings) {
    renderLoc(OS, SM, F.Loc);
    OS << ": " << severityName(F.Severity) << ": [" << F.Code << "] "
       << F.Message << '\n';
  }
  OS << Findings.size() << " finding(s): " << count(FindingSeverity::Error)
     << " error(s), " << count(FindingSeverity::Warning) << " warning(s), "
     << count(FindingSeverity::Note) << " note(s)\n";
  if (Oracle) {
    OS << "oracle: " << Oracle->Activations << " activation(s), "
       << Oracle->ClaimsChecked << " claim(s) checked, "
       << Oracle->CellsTracked << " cell(s) tracked; escaped/unescaped heap "
       << "cells " << Oracle->HeapCellsEscaped << '/'
       << Oracle->HeapCellsUnescaped << "; imprecise claims "
       << Oracle->ImpreciseClaims << "; alias exemptions "
       << Oracle->AliasExemptions << "; violations "
       << Oracle->Violations.size() << '\n';
    for (const OracleViolation &V : Oracle->Violations) {
      renderLoc(OS, SM, V.CallLoc);
      OS << ": error: " << violationMessage(V, SM, true) << '\n';
    }
  }
  return OS.str();
}

std::string CheckReport::toJson(const SourceManager &SM,
                                const std::string &Command,
                                bool Success) const {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"schema\": \"eal-check-v1\",\n"
     << "  \"command\": " << obs::jsonQuote(Command) << ",\n"
     << "  \"file\": " << obs::jsonQuote(SM.name()) << ",\n"
     << "  \"success\": " << (Success ? "true" : "false") << ",\n"
     << "  \"findings\": [";
  for (size_t I = 0; I != Findings.size(); ++I) {
    const Finding &F = Findings[I];
    LineColumn LC = SM.lineColumn(F.Loc);
    OS << (I ? "," : "") << "\n    {\"code\": " << obs::jsonQuote(F.Code)
       << ", \"severity\": " << obs::jsonQuote(severityName(F.Severity))
       << ", \"line\": " << LC.Line << ", \"col\": " << LC.Column
       << ", \"message\": " << obs::jsonQuote(F.Message);
    if (!F.Blame.empty()) {
      OS << ", \"blame\": [";
      for (size_t J = 0; J != F.Blame.size(); ++J)
        OS << (J ? ", " : "") << F.Blame[J];
      OS << "]";
    }
    OS << "}";
  }
  OS << (Findings.empty() ? "]" : "\n  ]");
  if (Oracle) {
    OS << ",\n  \"oracle\": {\n"
       << "    \"activations\": " << Oracle->Activations << ",\n"
       << "    \"claims_checked\": " << Oracle->ClaimsChecked << ",\n"
       << "    \"cells_tracked\": " << Oracle->CellsTracked << ",\n"
       << "    \"heap_cells_escaped\": " << Oracle->HeapCellsEscaped << ",\n"
       << "    \"heap_cells_unescaped\": " << Oracle->HeapCellsUnescaped
       << ",\n"
       << "    \"imprecise_claims\": " << Oracle->ImpreciseClaims << ",\n"
       << "    \"alias_exemptions\": " << Oracle->AliasExemptions << ",\n"
       << "    \"violations\": [";
    for (size_t I = 0; I != Oracle->Violations.size(); ++I) {
      const OracleViolation &V = Oracle->Violations[I];
      LineColumn Call = SM.lineColumn(V.CallLoc);
      LineColumn Alloc = SM.lineColumn(V.AllocLoc);
      OS << (I ? "," : "") << "\n      {\"kind\": " << obs::jsonQuote(V.Kind)
         << ", \"function\": " << obs::jsonQuote(V.Function)
         << ", \"arg_index\": " << V.ArgIndex
         << ", \"protected_spines\": " << V.ProtectedSpines
         << ", \"spine_level\": " << V.SpineLevel
         << ", \"call_line\": " << Call.Line << ", \"call_col\": " << Call.Column
         << ", \"alloc_site\": " << V.AllocSiteId
         << ", \"alloc_line\": " << Alloc.Line
         << ", \"alloc_col\": " << Alloc.Column << ", \"message\": "
         << obs::jsonQuote(violationMessage(V, SM, true)) << "}";
    }
    OS << (Oracle->Violations.empty() ? "]" : "\n    ]") << "\n  }";
  }
  OS << "\n}\n";
  return OS.str();
}

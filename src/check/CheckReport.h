//===- CheckReport.h - Findings of the eal::check passes --------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result object shared by the static lint pass (Linter.h) and the
/// dynamic escape oracle (Oracle.h): a list of coded findings plus the
/// oracle's classification counters and soundness violations. Renderable
/// as human-readable text and as the `eal-check-v1` JSON schema
/// (validated by tools/check_findings_json.py, documented in
/// docs/CHECKING.md).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_CHECK_CHECKREPORT_H
#define EAL_CHECK_CHECKREPORT_H

#include "support/SourceLoc.h"

#include <optional>
#include <string>
#include <vector>

namespace eal {

class SourceManager;

namespace obs {
class MetricsRegistry;
}

namespace check {

enum class FindingSeverity { Note, Warning, Error };

/// Returns "note" / "warning" / "error".
const char *severityName(FindingSeverity S);

/// One coded diagnostic produced by a check pass.
struct Finding {
  /// Stable code, "EAL-L001" (source lints) or "EAL-O001"
  /// (optimization-blocked explanations); see docs/CHECKING.md.
  std::string Code;
  FindingSeverity Severity = FindingSeverity::Warning;
  SourceLoc Loc;
  std::string Message;
  /// Why-provenance blame chain (docs/EXPLAIN.md): fact ids into the
  /// run's ProvenanceRecorder, verdict first, fixpoint leaf last. Empty
  /// for source lints and when no recorder was attached.
  std::vector<uint32_t> Blame;
};

/// One dynamic refutation of a static no-escape verdict: a cell the
/// analysis promised would die with its activation was still reachable
/// from the activation's result.
struct OracleViolation {
  /// "protected-spine-escaped" (a per-call claim failed) or
  /// "injected-claim" (the planted-violation test hook).
  std::string Kind;
  /// The claimed callee's name spelling.
  std::string Function;
  unsigned ArgIndex = 0;        ///< 0-based
  unsigned ProtectedSpines = 0; ///< the static claim: top s−k spines
  unsigned SpineLevel = 0;      ///< 1-based level of the escaping cell
  SourceLoc CallLoc;            ///< the call whose claim was refuted
  uint32_t AllocSiteId = 0;     ///< node id of the cell's cons site
  SourceLoc AllocLoc;           ///< its source location (may be invalid)
};

/// Counters and violations of one oracle-instrumented run.
struct OracleReport {
  /// User-closure activations observed (the top-level pseudo-activation
  /// finalize() classifies is not counted).
  uint64_t Activations = 0;
  /// Per-call protected-spine claims checked at activation exits.
  uint64_t ClaimsChecked = 0;
  /// Cons cells attributed to an activation (every allocation).
  uint64_t CellsTracked = 0;
  /// Heap-class cells still reachable from their activation's result —
  /// the dynamic escapes the analysis must over-approximate.
  uint64_t HeapCellsEscaped = 0;
  /// Imprecision (static "escape"/heap, dynamic no-escape): heap-class
  /// cells that were dead or unreachable when their activation returned,
  /// i.e. the optimizer *could* have arena-allocated them.
  uint64_t HeapCellsUnescaped = 0;
  /// Imprecision at claim granularity: checks where spine level s−k+1
  /// (the first level the analysis gave up on) did not escape either.
  uint64_t ImpreciseClaims = 0;
  /// Cells exempted from a claim because aliasing routed the same value
  /// into another argument role of the call whose own claim exposes
  /// them (the `append l l` shape): escaping through that role is
  /// legitimate, so charging it against this role's protected prefix
  /// would be a false refutation.
  uint64_t AliasExemptions = 0;

  std::vector<OracleViolation> Violations;

  /// Publishes the counters as check.oracle.* metrics.
  void exportTo(obs::MetricsRegistry &Reg) const;
};

/// Everything the check passes produced for one program.
struct CheckReport {
  std::vector<Finding> Findings;
  /// Present when the dynamic oracle ran.
  std::optional<OracleReport> Oracle;

  size_t count(FindingSeverity S) const;
  bool hasViolations() const { return Oracle && !Oracle->Violations.empty(); }

  /// Human-readable rendering: one "file:line:col: severity: [CODE]
  /// message" line per finding, oracle summary and violations appended.
  std::string render(const SourceManager &SM) const;

  /// The eal-check-v1 JSON document. \p Command and \p Success describe
  /// the producing invocation (mirrors eal-stats-v1).
  std::string toJson(const SourceManager &SM, const std::string &Command,
                     bool Success) const;
};

} // namespace check
} // namespace eal

#endif // EAL_CHECK_CHECKREPORT_H

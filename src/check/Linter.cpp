//===- Linter.cpp ---------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/Linter.h"

#include "lang/AstUtils.h"
#include "types/Type.h"

#include <sstream>
#include <unordered_set>

using namespace eal;
using namespace eal::check;

//===----------------------------------------------------------------------===//
// Source lints (EAL-L001..L004)
//===----------------------------------------------------------------------===//

namespace {

/// Matches a saturated `cons e1 e2` / pair construction; fills operands.
bool isAllocApp(const Expr *E, PrimOp &Op, const Expr *&Head,
                const Expr *&Tail) {
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(E, Args);
  const auto *Prim = dyn_cast<PrimExpr>(Callee);
  if (!Prim || Args.size() != 2 ||
      (Prim->op() != PrimOp::Cons && Prim->op() != PrimOp::MkPair))
    return false;
  Op = Prim->op();
  Head = Args[0];
  Tail = Args[1];
  return true;
}

/// True when \p E can never evaluate to a function value (used to turn a
/// syntactic over-application into a lint before type inference even
/// runs).
bool resultNeverFunction(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
    return true;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    return resultNeverFunction(If->thenExpr()) &&
           resultNeverFunction(If->elseExpr());
  }
  case ExprKind::Let:
    return resultNeverFunction(cast<LetExpr>(E)->body());
  case ExprKind::Letrec:
    return resultNeverFunction(cast<LetrecExpr>(E)->body());
  case ExprKind::App: {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(E, Args);
    const auto *Prim = dyn_cast<PrimExpr>(Callee);
    if (!Prim || Args.size() != primOpArity(Prim->op()))
      return false;
    switch (Prim->op()) {
    case PrimOp::Car:
    case PrimOp::Cdr:
    case PrimOp::Fst:
    case PrimOp::Snd:
    case PrimOp::DCons:
      return false; // may extract/return a function
    default:
      return true; // arithmetic, comparisons, cons, mkpair, null, not
    }
  }
  default:
    return false;
  }
}

class SourceLinter {
public:
  SourceLinter(const AstContext &Ast, const LintOptions &Options,
               CheckReport &Out)
      : Ast(Ast), Out(Out) {
    for (const std::string &Name : Options.ExemptTopLevel)
      Exempt.insert(Name);
  }

  void run(const Expr *Root) {
    TopLevel = Root;
    walk(Root);
  }

private:
  struct Binder {
    Symbol Name;
    SourceLoc Loc;
    const char *Kind; // "parameter" / "let binding" / "letrec binding"
    bool Used = false;
    bool IsExempt = false;
    unsigned Arity = 0;          ///< letrec fn binders: syntactic arity
    const Expr *Value = nullptr; ///< letrec binding value
    /// Letrec binders only: index of the binding whose value is being
    /// walked may equal this binder's own slot — a self-reference, which
    /// does not count as a use.
    size_t SelfMark = ~size_t(0);
  };

  void finding(const char *Code, FindingSeverity Sev, SourceLoc Loc,
               std::string Message) {
    Out.Findings.push_back({Code, Sev, Loc, std::move(Message)});
  }

  Binder *lookup(Symbol Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (It->Name == Name)
        return &*It;
    return nullptr;
  }

  void pushBinder(Binder B, size_t SameScopeFrom) {
    std::string Name(Ast.spelling(B.Name));
    for (size_t I = Scopes.size(); I-- > 0;) {
      if (!(Scopes[I].Name == B.Name))
        continue;
      if (Scopes[I].IsExempt || B.IsExempt)
        break; // rebinding a prelude name is the documented idiom
      if (I >= SameScopeFrom)
        finding("EAL-L002", FindingSeverity::Warning, B.Loc,
                "duplicate " + std::string(B.Kind) + " '" + Name +
                    "' in the same scope (the first binding wins)");
      else
        finding("EAL-L002", FindingSeverity::Warning, B.Loc,
                std::string(B.Kind) + " '" + Name +
                    "' shadows an enclosing " + Scopes[I].Kind);
      break;
    }
    Scopes.push_back(std::move(B));
  }

  void popBinder() {
    const Binder &B = Scopes.back();
    if (!B.Used && !B.IsExempt)
      finding("EAL-L001", FindingSeverity::Warning, B.Loc,
              "unused " + std::string(B.Kind) + " '" +
                  std::string(Ast.spelling(B.Name)) + "'");
    Scopes.pop_back();
  }

  void checkArity(const Expr *Spine, const Expr *Callee,
                  const std::vector<const Expr *> &Args) {
    const auto *Var = dyn_cast<VarExpr>(Callee);
    if (!Var)
      return;
    Binder *B = lookup(Var->name());
    if (!B || B->Arity == 0 || Args.size() <= B->Arity || !B->Value)
      return;
    const Expr *Body = B->Value;
    for (unsigned I = 0; I != B->Arity; ++I)
      Body = cast<LambdaExpr>(Body)->body();
    if (!resultNeverFunction(Body))
      return;
    std::ostringstream OS;
    OS << "call supplies " << Args.size() << " argument(s) but '"
       << Ast.spelling(Var->name()) << "' has arity " << B->Arity
       << " and returns a non-function value";
    finding("EAL-L004", FindingSeverity::Warning, Spine->loc(), OS.str());
  }

  void walk(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Prim:
      return;
    case ExprKind::Var: {
      Binder *B = lookup(cast<VarExpr>(E)->name());
      if (B && !(B->SelfMark != ~size_t(0) && B->SelfMark == CurrentBinding))
        B->Used = true;
      return;
    }
    case ExprKind::App: {
      // Treat the whole spine at once; interior App nodes are structure.
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(E, Args);
      checkArity(E, Callee, Args);
      walk(Callee);
      for (const Expr *Arg : Args)
        walk(Arg);
      return;
    }
    case ExprKind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      pushBinder({L->param(), L->loc(), "parameter", false, false, 0, nullptr,
                  ~size_t(0)},
                 Scopes.size());
      walk(L->body());
      popBinder();
      return;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      if (const auto *B = dyn_cast<BoolLitExpr>(If->cond()))
        finding("EAL-L003", FindingSeverity::Warning, If->cond()->loc(),
                B->value()
                    ? "'if' condition is always true; the else branch is "
                      "unreachable"
                    : "'if' condition is always false; the then branch is "
                      "unreachable");
      walk(If->cond());
      walk(If->thenExpr());
      walk(If->elseExpr());
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      walk(Let->value());
      pushBinder({Let->name(), Let->loc(), "let binding", false, false, 0,
                  nullptr, ~size_t(0)},
                 Scopes.size());
      walk(Let->body());
      popBinder();
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      bool IsTop = E == TopLevel;
      size_t ScopeStart = Scopes.size();
      auto Bindings = Letrec->bindings();
      for (size_t I = 0; I != Bindings.size(); ++I) {
        const LetrecBinding &B = Bindings[I];
        Binder Entry{B.Name,
                     B.Value->loc(),
                     "letrec binding",
                     false,
                     IsTop && Exempt.count(std::string(Ast.spelling(B.Name))) >
                                  0,
                     lambdaArity(B.Value),
                     B.Value,
                     I};
        pushBinder(std::move(Entry), ScopeStart);
      }
      for (size_t I = 0; I != Bindings.size(); ++I) {
        size_t Saved = CurrentBinding;
        CurrentBinding = I;
        walk(Bindings[I].Value);
        CurrentBinding = Saved;
      }
      walk(Letrec->body());
      for (size_t I = Bindings.size(); I-- > 0;)
        popBinder();
      return;
    }
    }
  }

  const AstContext &Ast;
  CheckReport &Out;
  std::unordered_set<std::string> Exempt;
  std::vector<Binder> Scopes;
  const Expr *TopLevel = nullptr;
  /// Index (within the letrec being walked) of the binding whose value
  /// is under the cursor; ~0 outside letrec binding values.
  size_t CurrentBinding = ~size_t(0);
};

} // namespace

void eal::check::lintSource(const AstContext &Ast, const Expr *Root,
                            const LintOptions &Options, CheckReport &Out) {
  if (Root)
    SourceLinter(Ast, Options, Out).run(Root);
}

//===----------------------------------------------------------------------===//
// Optimization-blocked explanations (EAL-O001..O006)
//===----------------------------------------------------------------------===//

namespace {

class BlockedAllocExplainer {
public:
  BlockedAllocExplainer(const AstContext &Ast, const TypedProgram &Program,
                        EscapeAnalyzer &Analyzer, const AllocationPlan &Plan,
                        CheckReport &Out)
      : Ast(Ast), Program(Program), Analyzer(Analyzer), Out(Out) {
    for (const ArgArenaDirective &D : Plan.Directives)
      for (const auto &[Id, Class] : D.Sites) {
        (void)Class;
        Planned.insert(Id);
      }
    const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
    if (!Letrec)
      return;
    TopLetrec = Letrec;
    for (const LetrecBinding &B : Letrec->bindings())
      if (unsigned Arity = lambdaArity(B.Value))
        FnArities[B.Name.id()] = Arity;
  }

  void run() {
    const auto *Letrec = TopLetrec;
    if (!Letrec) {
      walk(Program.root(), Context());
      return;
    }
    for (const LetrecBinding &B : Letrec->bindings())
      walk(B.Value, Context());
    walk(Letrec->body(), Context());
  }

private:
  /// Why the cells under the cursor would (not) be protected.
  struct Context {
    enum KindT {
      None,          ///< result/let/program position: nothing protects
      Protected,     ///< argument with a positive protected prefix
      EscapesResult, ///< argument the verdict says escapes
      UnknownCallee, ///< argument of a call the local test cannot see
    } Kind = None;
    Symbol Callee;
    unsigned ArgIndex = 0;
    unsigned ProtectedSpines = 0;
    unsigned EscapingSpines = 0;
    unsigned Level = 1;    ///< spine level within the argument
    bool Detached = false; ///< left the spine (element position etc.)
  };

  void note(const Expr *Site, const char *Code, std::string Message) {
    // Desugared list literals produce many cons sites with one source
    // location and identical stories; one note carries the same weight.
    std::string Key = std::string(Code) + '@' +
                      std::to_string(Site->loc().offset()) + ':' + Message;
    if (!Emitted.insert(std::move(Key)).second)
      return;
    Out.Findings.push_back(
        {Code, FindingSeverity::Note, Site->loc(), std::move(Message)});
  }

  void explainSite(const Expr *Site, PrimOp Op, const Context &Ctx) {
    const char *What = Op == PrimOp::MkPair ? "pair cell" : "cons cell";
    std::ostringstream OS;
    switch (Ctx.Kind) {
    case Context::EscapesResult:
      OS << What << " stays on the GC heap: argument " << (Ctx.ArgIndex + 1)
         << " of '" << Ast.spelling(Ctx.Callee)
         << "' may escape via the callee's result (" << Ctx.EscapingSpines
         << " escaping spine(s), 0 protected)";
      note(Site, "EAL-O001", OS.str());
      return;
    case Context::UnknownCallee:
      OS << What << " stays on the GC heap: the surrounding call's callee "
         << "is unknown or unsaturated, so the local escape test cannot "
         << "protect the argument";
      note(Site, "EAL-O003", OS.str());
      return;
    case Context::Protected:
      if (Ctx.Detached)
        OS << What << " stays on the GC heap: it is in element position "
           << "(not on a spine the analysis grades) of argument "
           << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
           << "'";
      else if (Ctx.Level > Ctx.ProtectedSpines)
        OS << What << " stays on the GC heap: it builds spine level "
           << Ctx.Level << " of argument " << (Ctx.ArgIndex + 1) << " of '"
           << Ast.spelling(Ctx.Callee) << "', below the protected prefix "
           << "(top " << Ctx.ProtectedSpines << " spine(s))";
      else
        OS << What << " is within the protected prefix of argument "
           << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
           << "' but no directive covers it (stack/region allocation "
           << "disabled?)";
      note(Site, "EAL-O002", OS.str());
      return;
    case Context::None:
      OS << What << " stays on the GC heap: no protecting call site — it "
         << "builds a result or a locally let-bound value, so only a "
         << "caller-side region could place it";
      note(Site, "EAL-O004", OS.str());
      return;
    }
  }

  void walk(const Expr *E, Context Ctx) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Var:
    case ExprKind::Prim:
      return;
    case ExprKind::Lambda: {
      Context Inner;
      walk(cast<LambdaExpr>(E)->body(), Inner);
      return;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      walk(If->cond(), Context());
      walk(If->thenExpr(), Ctx);
      walk(If->elseExpr(), Ctx);
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      walk(Let->value(), Context());
      walk(Let->body(), Ctx);
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      for (const LetrecBinding &B : Letrec->bindings())
        walk(B.Value, Context());
      walk(Letrec->body(), Ctx);
      return;
    }
    case ExprKind::App: {
      PrimOp Op;
      const Expr *Head = nullptr, *Tail = nullptr;
      if (isAllocApp(E, Op, Head, Tail)) {
        if (!Planned.count(E->id()))
          explainSite(E, Op, Ctx);
        Context HeadCtx = Ctx;
        if (Op == PrimOp::Cons && Ctx.Kind == Context::Protected &&
            !Ctx.Detached)
          ++HeadCtx.Level;
        else
          HeadCtx.Detached = Ctx.Kind == Context::Protected;
        walk(Head, HeadCtx);
        walk(Tail, Ctx);
        return;
      }
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(E, Args);
      if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
        // cdr shares its operand's spines at the same levels; car (and
        // the pair projections) extract elements — off the spine.
        if (Prim->op() == PrimOp::Cdr && Args.size() == 1) {
          walk(Args[0], Ctx);
          return;
        }
        Context Inner = Ctx;
        Inner.Detached = Ctx.Kind == Context::Protected;
        for (const Expr *Arg : Args)
          walk(Arg, Inner.Detached ? Inner : Context());
        return;
      }
      walk(Callee, Context());
      const auto *Var = dyn_cast<VarExpr>(Callee);
      auto ArityIt = Var ? FnArities.find(Var->name().id()) : FnArities.end();
      bool KnownSaturated =
          ArityIt != FnArities.end() && ArityIt->second == Args.size();
      for (unsigned I = 0; I != Args.size(); ++I) {
        Context ArgCtx;
        if (spineCount(Program.typeOf(Args[I])) > 0) {
          if (KnownSaturated) {
            auto Local = topLevelClosed(E) ? Analyzer.localEscape(E, I)
                                           : Analyzer.localEscapeInContext(E, I);
            if (!Local)
              Local = Analyzer.globalEscape(Var->name(), I);
            ArgCtx.Callee = Var->name();
            ArgCtx.ArgIndex = I;
            if (Local && Local->protectedTopSpines() > 0) {
              ArgCtx.Kind = Context::Protected;
              ArgCtx.ProtectedSpines = Local->protectedTopSpines();
            } else {
              ArgCtx.Kind = Context::EscapesResult;
              ArgCtx.EscapingSpines = Local ? Local->escapingSpines() : 0;
            }
          } else {
            ArgCtx.Kind = Context::UnknownCallee;
          }
        }
        walk(Args[I], ArgCtx);
      }
      return;
    }
    }
  }

  bool topLevelClosed(const Expr *Call) {
    if (!TopLetrec)
      return false;
    for (Symbol Free : freeVariables(Call))
      if (!TopLetrec->findBinding(Free))
        return false;
    return true;
  }

  const AstContext &Ast;
  const TypedProgram &Program;
  EscapeAnalyzer &Analyzer;
  CheckReport &Out;
  const LetrecExpr *TopLetrec = nullptr;
  std::unordered_set<uint32_t> Planned;
  std::unordered_map<uint32_t, unsigned> FnArities;
  std::unordered_set<std::string> Emitted;
};

} // namespace

void eal::check::explainBlockedAllocations(
    const AstContext &Ast, const TypedProgram &Program,
    EscapeAnalyzer &Analyzer, const AllocationPlan &Plan,
    const ReuseTransformResult &Reuse, const ProgramEscapeReport &Escape,
    CheckReport &Out) {
  BlockedAllocExplainer(Ast, Program, Analyzer, Plan, Out).run();

  // Reuse-side explanations: protected parameters that earned no DCONS
  // version, and versions no call site could be retargeted to.
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  auto BindingLoc = [&](Symbol Fn) {
    if (Letrec)
      if (const LetrecBinding *B = Letrec->findBinding(Fn))
        return B->Value->loc();
    return SourceLoc::invalid();
  };
  std::unordered_set<uint32_t> Primed;
  for (const ReuseVersion &V : Reuse.Versions)
    Primed.insert(V.Primed.id());
  for (const FunctionEscape &F : Escape.Functions) {
    if (Primed.count(F.Name.id()))
      continue; // f' itself: its DCONS parameter escapes by design
    for (const ParamEscape &P : F.Params) {
      if (P.ParamSpines == 0 || P.protectedTopSpines() == 0)
        continue;
      bool HasVersion = false;
      for (const ReuseVersion &V : Reuse.Versions)
        HasVersion |= V.Original == F.Name && V.ParamIndex == P.ParamIndex;
      if (HasVersion)
        continue;
      std::ostringstream OS;
      OS << "in-place reuse: argument " << (P.ParamIndex + 1) << " of '"
         << Ast.spelling(F.Name) << "' has " << P.protectedTopSpines()
         << " protected top spine(s) but no DCONS version was generated "
         << "(reuse disabled, no qualifying cons site, or the argument is "
         << "used after it)";
      Out.Findings.push_back({"EAL-O005", FindingSeverity::Note,
                              BindingLoc(F.Name), OS.str()});
    }
  }
  for (const ReuseVersion &V : Reuse.Versions) {
    bool Retargeted = false;
    for (const CallRetarget &R : Reuse.Retargets)
      Retargeted |= R.To == V.Primed;
    if (Retargeted)
      continue;
    std::ostringstream OS;
    OS << "in-place reuse: '" << Ast.spelling(V.Primed)
       << "' was generated but no call of '" << Ast.spelling(V.Original)
       << "' was retargeted — Theorem 2 could not prove any actual "
       << "argument's top spine unshared (shared spine)";
    Out.Findings.push_back({"EAL-O006", FindingSeverity::Note,
                            BindingLoc(V.Original), OS.str()});
  }
}

//===- Linter.cpp ---------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/Linter.h"

#include "lang/AstUtils.h"
#include "types/Type.h"

#include <sstream>
#include <unordered_set>

using namespace eal;
using namespace eal::check;

//===----------------------------------------------------------------------===//
// Source lints (EAL-L001..L004)
//===----------------------------------------------------------------------===//

namespace {

/// True when \p E can never evaluate to a function value (used to turn a
/// syntactic over-application into a lint before type inference even
/// runs).
bool resultNeverFunction(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
    return true;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    return resultNeverFunction(If->thenExpr()) &&
           resultNeverFunction(If->elseExpr());
  }
  case ExprKind::Let:
    return resultNeverFunction(cast<LetExpr>(E)->body());
  case ExprKind::Letrec:
    return resultNeverFunction(cast<LetrecExpr>(E)->body());
  case ExprKind::App: {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(E, Args);
    const auto *Prim = dyn_cast<PrimExpr>(Callee);
    if (!Prim || Args.size() != primOpArity(Prim->op()))
      return false;
    switch (Prim->op()) {
    case PrimOp::Car:
    case PrimOp::Cdr:
    case PrimOp::Fst:
    case PrimOp::Snd:
    case PrimOp::DCons:
      return false; // may extract/return a function
    default:
      return true; // arithmetic, comparisons, cons, mkpair, null, not
    }
  }
  default:
    return false;
  }
}

class SourceLinter {
public:
  SourceLinter(const AstContext &Ast, const LintOptions &Options,
               CheckReport &Out)
      : Ast(Ast), Out(Out) {
    for (const std::string &Name : Options.ExemptTopLevel)
      Exempt.insert(Name);
  }

  void run(const Expr *Root) {
    TopLevel = Root;
    walk(Root);
  }

private:
  struct Binder {
    Symbol Name;
    SourceLoc Loc;
    const char *Kind; // "parameter" / "let binding" / "letrec binding"
    bool Used = false;
    bool IsExempt = false;
    unsigned Arity = 0;          ///< letrec fn binders: syntactic arity
    const Expr *Value = nullptr; ///< letrec binding value
    /// Letrec binders only: index of the binding whose value is being
    /// walked may equal this binder's own slot — a self-reference, which
    /// does not count as a use.
    size_t SelfMark = ~size_t(0);
  };

  void finding(const char *Code, FindingSeverity Sev, SourceLoc Loc,
               std::string Message) {
    Out.Findings.push_back({Code, Sev, Loc, std::move(Message), {}});
  }

  Binder *lookup(Symbol Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It)
      if (It->Name == Name)
        return &*It;
    return nullptr;
  }

  void pushBinder(Binder B, size_t SameScopeFrom) {
    std::string Name(Ast.spelling(B.Name));
    for (size_t I = Scopes.size(); I-- > 0;) {
      if (!(Scopes[I].Name == B.Name))
        continue;
      if (Scopes[I].IsExempt || B.IsExempt)
        break; // rebinding a prelude name is the documented idiom
      if (I >= SameScopeFrom)
        finding("EAL-L002", FindingSeverity::Warning, B.Loc,
                "duplicate " + std::string(B.Kind) + " '" + Name +
                    "' in the same scope (the first binding wins)");
      else
        finding("EAL-L002", FindingSeverity::Warning, B.Loc,
                std::string(B.Kind) + " '" + Name +
                    "' shadows an enclosing " + Scopes[I].Kind);
      break;
    }
    Scopes.push_back(std::move(B));
  }

  void popBinder() {
    const Binder &B = Scopes.back();
    if (!B.Used && !B.IsExempt)
      finding("EAL-L001", FindingSeverity::Warning, B.Loc,
              "unused " + std::string(B.Kind) + " '" +
                  std::string(Ast.spelling(B.Name)) + "'");
    Scopes.pop_back();
  }

  void checkArity(const Expr *Spine, const Expr *Callee,
                  const std::vector<const Expr *> &Args) {
    const auto *Var = dyn_cast<VarExpr>(Callee);
    if (!Var)
      return;
    Binder *B = lookup(Var->name());
    if (!B || B->Arity == 0 || Args.size() <= B->Arity || !B->Value)
      return;
    const Expr *Body = B->Value;
    for (unsigned I = 0; I != B->Arity; ++I)
      Body = cast<LambdaExpr>(Body)->body();
    if (!resultNeverFunction(Body))
      return;
    std::ostringstream OS;
    OS << "call supplies " << Args.size() << " argument(s) but '"
       << Ast.spelling(Var->name()) << "' has arity " << B->Arity
       << " and returns a non-function value";
    finding("EAL-L004", FindingSeverity::Warning, Spine->loc(), OS.str());
  }

  void walk(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Prim:
      return;
    case ExprKind::Var: {
      Binder *B = lookup(cast<VarExpr>(E)->name());
      if (B && !(B->SelfMark != ~size_t(0) && B->SelfMark == CurrentBinding))
        B->Used = true;
      return;
    }
    case ExprKind::App: {
      // Treat the whole spine at once; interior App nodes are structure.
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(E, Args);
      checkArity(E, Callee, Args);
      walk(Callee);
      for (const Expr *Arg : Args)
        walk(Arg);
      return;
    }
    case ExprKind::Lambda: {
      const auto *L = cast<LambdaExpr>(E);
      pushBinder({L->param(), L->loc(), "parameter", false, false, 0, nullptr,
                  ~size_t(0)},
                 Scopes.size());
      walk(L->body());
      popBinder();
      return;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      if (const auto *B = dyn_cast<BoolLitExpr>(If->cond()))
        finding("EAL-L003", FindingSeverity::Warning, If->cond()->loc(),
                B->value()
                    ? "'if' condition is always true; the else branch is "
                      "unreachable"
                    : "'if' condition is always false; the then branch is "
                      "unreachable");
      walk(If->cond());
      walk(If->thenExpr());
      walk(If->elseExpr());
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      walk(Let->value());
      pushBinder({Let->name(), Let->loc(), "let binding", false, false, 0,
                  nullptr, ~size_t(0)},
                 Scopes.size());
      walk(Let->body());
      popBinder();
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      bool IsTop = E == TopLevel;
      size_t ScopeStart = Scopes.size();
      auto Bindings = Letrec->bindings();
      for (size_t I = 0; I != Bindings.size(); ++I) {
        const LetrecBinding &B = Bindings[I];
        Binder Entry{B.Name,
                     B.Value->loc(),
                     "letrec binding",
                     false,
                     IsTop && Exempt.count(std::string(Ast.spelling(B.Name))) >
                                  0,
                     lambdaArity(B.Value),
                     B.Value,
                     I};
        pushBinder(std::move(Entry), ScopeStart);
      }
      for (size_t I = 0; I != Bindings.size(); ++I) {
        size_t Saved = CurrentBinding;
        CurrentBinding = I;
        walk(Bindings[I].Value);
        CurrentBinding = Saved;
      }
      walk(Letrec->body());
      for (size_t I = Bindings.size(); I-- > 0;)
        popBinder();
      return;
    }
    }
  }

  const AstContext &Ast;
  CheckReport &Out;
  std::unordered_set<std::string> Exempt;
  std::vector<Binder> Scopes;
  const Expr *TopLevel = nullptr;
  /// Index (within the letrec being walked) of the binding whose value
  /// is under the cursor; ~0 outside letrec binding values.
  size_t CurrentBinding = ~size_t(0);
};

} // namespace

void eal::check::lintSource(const AstContext &Ast, const Expr *Root,
                            const LintOptions &Options, CheckReport &Out) {
  if (Root)
    SourceLinter(Ast, Options, Out).run(Root);
}

//===----------------------------------------------------------------------===//
// Optimization-blocked explanations (EAL-O001..O006)
//===----------------------------------------------------------------------===//

void eal::check::explainBlockedAllocations(
    const AstContext &Ast, const TypedProgram &Program,
    const std::vector<explain::SiteInfo> &Sites,
    const ReuseTransformResult &Reuse, const ProgramEscapeReport &Escape,
    const explain::ProvenanceRecorder *Prov, CheckReport &Out) {
  // One note per unplanned (heap) site; the story text and code come from
  // the shared classifier vocabulary (explain::describeSite), so `eal
  // check` and `eal explain` can never tell different stories about the
  // same cell. Desugared list literals produce many cons sites with one
  // source location and identical stories; one note carries the same
  // weight, so duplicates are folded.
  std::unordered_set<std::string> Emitted;
  for (const explain::SiteInfo &SI : Sites) {
    if (SI.Storage != explain::SiteStorage::Heap)
      continue;
    const char *Code = explain::findingCode(SI.Ctx);
    std::string Message = explain::describeSite(Ast, SI.Op, SI.Ctx);
    std::string Key = std::string(Code) + '@' +
                      std::to_string(SI.Site->loc().offset()) + ':' + Message;
    if (!Emitted.insert(std::move(Key)).second)
      continue;
    Finding F{Code, FindingSeverity::Note, SI.Site->loc(),
              std::move(Message), {}};
    if (Prov)
      F.Blame = explain::blamePath(*Prov, SI.Ctx.VerdictProv);
    Out.Findings.push_back(std::move(F));
  }

  // Reuse-side explanations: protected parameters that earned no DCONS
  // version, and versions no call site could be retargeted to.
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  auto BindingLoc = [&](Symbol Fn) {
    if (Letrec)
      if (const LetrecBinding *B = Letrec->findBinding(Fn))
        return B->Value->loc();
    return SourceLoc::invalid();
  };
  std::unordered_set<uint32_t> Primed;
  for (const ReuseVersion &V : Reuse.Versions)
    Primed.insert(V.Primed.id());
  for (const FunctionEscape &F : Escape.Functions) {
    if (Primed.count(F.Name.id()))
      continue; // f' itself: its DCONS parameter escapes by design
    for (const ParamEscape &P : F.Params) {
      if (P.ParamSpines == 0 || P.protectedTopSpines() == 0)
        continue;
      bool HasVersion = false;
      for (const ReuseVersion &V : Reuse.Versions)
        HasVersion |= V.Original == F.Name && V.ParamIndex == P.ParamIndex;
      if (HasVersion)
        continue;
      std::ostringstream OS;
      OS << "in-place reuse: argument " << (P.ParamIndex + 1) << " of '"
         << Ast.spelling(F.Name) << "' has " << P.protectedTopSpines()
         << " protected top spine(s) but no DCONS version was generated "
         << "(reuse disabled, no qualifying cons site, or the argument is "
         << "used after it)";
      Finding Note{"EAL-O005", FindingSeverity::Note, BindingLoc(F.Name),
                   OS.str(), {}};
      if (Prov && P.Prov != explain::NoFact)
        Note.Blame.push_back(P.Prov);
      Out.Findings.push_back(std::move(Note));
    }
  }
  for (const ReuseVersion &V : Reuse.Versions) {
    bool Retargeted = false;
    for (const CallRetarget &R : Reuse.Retargets)
      Retargeted |= R.To == V.Primed;
    if (Retargeted)
      continue;
    std::ostringstream OS;
    OS << "in-place reuse: '" << Ast.spelling(V.Primed)
       << "' was generated but no call of '" << Ast.spelling(V.Original)
       << "' was retargeted — Theorem 2 could not prove any actual "
       << "argument's top spine unshared (shared spine)";
    Finding Note{"EAL-O006", FindingSeverity::Note, BindingLoc(V.Original),
                 OS.str(), {}};
    if (Prov && V.ProvenanceRef != explain::NoFact)
      Note.Blame.push_back(V.ProvenanceRef);
    Out.Findings.push_back(std::move(Note));
  }
}

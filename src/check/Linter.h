//===- Linter.h - Static lints over nml ASTs --------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two static passes feeding a CheckReport (codes in docs/CHECKING.md):
///
/// Source lints (on the parsed program, before any transformation):
///   EAL-L001  unused binding (letrec binding, let binding, or parameter)
///   EAL-L002  binding shadows an enclosing binding of the same name
///   EAL-L003  `if` condition is a boolean literal: one branch unreachable
///   EAL-L004  call supplies more arguments than the callee can consume
///
/// Optimization-blocked explanations (on the final program + plan): for
/// every cons/pair site left on the GC heap, a structured reason —
///   EAL-O001  the surrounding argument escapes via the callee's result
///   EAL-O002  the cell lies below the argument's protected spine prefix
///   EAL-O003  the surrounding call's callee is unknown (no local test)
///   EAL-O004  no protecting call site (result position / program body)
///   EAL-O005  in-place reuse blocked: protected argument, no DCONS site
///   EAL-O006  reuse version generated but every call's argument may
///             share its spine (no retarget)
///
/// These make the A.3 case studies auditable: `eal check` on
/// partition_sort.nml names, for each allocation, exactly which test
/// failed instead of leaving the reader to eyeball the plan.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_CHECK_LINTER_H
#define EAL_CHECK_LINTER_H

#include "check/CheckReport.h"
#include "escape/EscapeAnalyzer.h"
#include "explain/Explain.h"
#include "opt/AllocPlanner.h"
#include "opt/ReuseTransform.h"

#include <string>
#include <vector>

namespace eal::check {

struct LintOptions {
  /// Top-level binding names exempt from unused/shadow lints (the
  /// spliced stdlib prelude; programs rarely use all of it).
  std::vector<std::string> ExemptTopLevel;
};

/// Runs the source lints over the parsed (untransformed) program.
void lintSource(const AstContext &Ast, const Expr *Root,
                const LintOptions &Options, CheckReport &Out);

/// Emits one EAL-O* note per unplanned allocation site of the *final*
/// program. \p Sites is the classification of every allocation site
/// (explain::classifySites over the final program + plan); \p Program is
/// that same final program (reuse-side notes anchor to its bindings);
/// \p Reuse is the optimizer's transformation record. When \p Prov is
/// non-null each finding carries a Blame chain into its graph.
void explainBlockedAllocations(const AstContext &Ast,
                               const TypedProgram &Program,
                               const std::vector<explain::SiteInfo> &Sites,
                               const ReuseTransformResult &Reuse,
                               const ProgramEscapeReport &Escape,
                               const explain::ProvenanceRecorder *Prov,
                               CheckReport &Out);

} // namespace eal::check

#endif // EAL_CHECK_LINTER_H

//===- LiveLint.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/LiveLint.h"

#include "types/TypeInference.h"

#include <sstream>
#include <unordered_map>

using namespace eal;
using namespace eal::check;
using namespace eal::live;

namespace {

bool isExempt(const AstContext &Ast, Symbol Context,
              const LiveLintOptions &Options) {
  if (!Context.isValid())
    return false;
  std::string_view Spelling = Ast.spelling(Context);
  for (const std::string &Name : Options.ExemptContexts)
    if (Spelling == Name)
      return true;
  return false;
}

/// True when the element slot of a cons at \p Site can hold cells —
/// then a dead element field means structural garbage, not just an
/// unread scalar. Unknown types count as cell-holding (conservative:
/// report).
bool elementHoldsCells(const TypedProgram *Typed, const Expr *Site) {
  if (!Typed)
    return true;
  const Type *T = Typed->typeOf(Site);
  const auto *L = dyn_cast<ListType>(T);
  if (!L)
    return true;
  return L->element()->isList() || L->element()->isPair();
}

void addFinding(CheckReport &Out, const char *Code, FindingSeverity Severity,
                const SiteLive &S, std::string Message,
                const explain::ProvenanceRecorder *Prov) {
  Finding F;
  F.Code = Code;
  F.Severity = Severity;
  F.Loc = S.Site->loc();
  F.Message = std::move(Message);
  if (Prov && S.Fact != explain::NoFact)
    F.Blame = explain::blamePath(*Prov, S.Fact);
  Out.Findings.push_back(std::move(F));
}

std::string siteNoun(const SiteLive &S) {
  switch (S.Op) {
  case PrimOp::MkPair:
    return "pair";
  case PrimOp::DCons:
    return "reused cell";
  default:
    return "cell";
  }
}

} // namespace

void eal::check::lintLiveness(const AstContext &Ast, const LiveReport &Live,
                              const std::vector<explain::SiteInfo> &Sites,
                              const TypedProgram *Typed,
                              const explain::ProvenanceRecorder *Prov,
                              const LiveLintOptions &Options,
                              CheckReport &Out) {
  // Storage under the final plan, from the shared site classifier.
  std::unordered_map<uint32_t, explain::SiteStorage> Storage;
  for (const explain::SiteInfo &SI : Sites)
    Storage.emplace(SI.Site->id(), SI.Storage);

  for (const SiteLive &S : Live.Sites) {
    if (isExempt(Ast, S.Context, Options))
      continue;
    Demand D = S.Dem.normalized();
    bool IsList = S.Op == PrimOp::Cons || S.Op == PrimOp::DCons;

    if (D.isBottom()) {
      // Dead *code* (the enclosing function never runs — e.g. the
      // optimizer's superseded original after DCONS cloning) is not
      // dead *data*; nothing is ever allocated here.
      if (S.Unreached)
        continue;
      std::ostringstream OS;
      OS << "dead data: no field of any " << siteNoun(S)
         << " allocated here is ever read (demand " << D.str() << ")";
      addFinding(Out, "EAL-D001", FindingSeverity::Warning, S, OS.str(),
                 Prov);
      continue; // ⊥ subsumes the finer findings
    }

    // D002: a finite spine prefix is demanded; the suffix is dead
    // weight. A list notion — pairs always have depth 1.
    if (IsList && D.Depth != Demand::Inf) {
      std::ostringstream OS;
      OS << "dead spine suffix: only the first " << unsigned(D.Depth)
         << " spine cell(s) of lists built here are ever demanded (demand "
         << D.str() << ")";
      addFinding(Out, "EAL-D002", FindingSeverity::Note, S, OS.str(), Prov);
    }

    // D003: spines walked, elements never read.
    if (IsList && !D.Car && elementHoldsCells(Typed, S.Site)) {
      std::ostringstream OS;
      OS << "dead element field: spines built here are traversed but no "
            "element is ever read (demand "
         << D.str() << "); the elements are structural garbage";
      addFinding(Out, "EAL-D003", FindingSeverity::Note, S, OS.str(), Prov);
    }

    // D004: the escape analysis pinned the site to the GC heap, but
    // liveness shows a finite demand — residency protects mostly-dead
    // data. Anchored on the shared classifier's storage verdict.
    if (IsList && D.Depth != Demand::Inf) {
      auto It = Storage.find(S.Site->id());
      if (It != Storage.end() && It->second == explain::SiteStorage::Heap) {
        std::ostringstream OS;
        OS << "liveness-blocked optimization: kept on the GC heap by the "
              "escape analysis, yet only "
           << unsigned(D.Depth)
           << " spine cell(s) are ever demanded — heap residency protects "
              "data that is mostly never read";
        addFinding(Out, "EAL-D004", FindingSeverity::Note, S, OS.str(),
                   Prov);
      }
    }
  }
}

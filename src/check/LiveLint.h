//===- LiveLint.h - Dead-data lints (EAL-D) ---------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The EAL-D finding family (docs/LIVENESS.md, docs/CHECKING.md): what
/// the liveness analysis has to say about each allocation site of the
/// final program —
///
///   EAL-D001  dead allocation: demand ⊥ — no field of any cell born
///             here is ever read (this is the set the liveness oracle
///             checks dynamically)
///   EAL-D002  dead spine suffix: only the first d spine cells of the
///             lists built here are ever demanded (finite 0 < d < ∞)
///   EAL-D003  dead element field: spines are walked but no element is
///             ever read (car-demand clear); reported when the element
///             type holds cells, i.e. the garbage is structural
///   EAL-D004  liveness-blocked optimization: the escape analysis kept
///             the site on the GC heap, yet its demand is finite — the
///             heap residency protects data that is mostly never read
///
/// Storage classification reuses explain::classifySites — the same
/// SiteClassifier walk behind the EAL-O linter and the blame chains —
/// so the two finding families can never disagree about where a cell
/// lives. With a recorder attached, each finding's Blame is the
/// provenance path from the site's Liveness fact to the demanding
/// context.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_CHECK_LIVELINT_H
#define EAL_CHECK_LIVELINT_H

#include "check/CheckReport.h"
#include "explain/Explain.h"
#include "live/LiveAnalyzer.h"

#include <string>
#include <vector>

namespace eal::check {

struct LiveLintOptions {
  /// Top-level binding names whose sites are exempt (the spliced stdlib
  /// prelude: unused prelude functions would otherwise flood D001).
  std::vector<std::string> ExemptContexts;
};

/// Appends the EAL-D findings for \p Live to \p Out, in site order.
/// \p Sites (explain::classifySites over the same final program) feeds
/// the D004 storage test — pass an empty vector to skip D004. \p Typed
/// may be null (D003 then skips its element-type refinement). \p Prov
/// may be null (findings then carry no blame chains).
void lintLiveness(const AstContext &Ast, const live::LiveReport &Live,
                  const std::vector<explain::SiteInfo> &Sites,
                  const TypedProgram *Typed,
                  const explain::ProvenanceRecorder *Prov,
                  const LiveLintOptions &Options, CheckReport &Out);

} // namespace eal::check

#endif // EAL_CHECK_LIVELINT_H

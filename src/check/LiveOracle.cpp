//===- LiveOracle.cpp -----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/LiveOracle.h"

#include "obs/Recorder.h"

#include "support/SourceManager.h"

#include <sstream>
#include <string_view>
#include <vector>

using namespace eal;
using namespace eal::check;

namespace {

uint64_t reportedKey(uint32_t SiteId, const char *Kind) {
  return (static_cast<uint64_t>(SiteId) << 2) |
         (std::string_view(Kind) == "dead-site-touched"     ? 0
          : std::string_view(Kind) == "dead-site-reachable" ? 1
                                                            : 2);
}

} // namespace

std::string LiveOracleReport::render(const SourceManager &SM) const {
  std::ostringstream OS;
  OS << "liveness oracle: " << CellsTracked << " cell(s) tracked, " << Touches
     << " touch(es), " << DeadSitesClaimed << " dead-site claim(s), "
     << DeadCellsAllocated << " cell(s) born at claimed-dead sites, "
     << UntouchedLiveSites << " untouched live site(s); "
     << "violations " << Violations.size() << '\n';
  for (const LiveViolation &V : Violations) {
    OS << "  " << SM.name() << ':';
    if (V.SiteLoc.isValid()) {
      LineColumn LC = SM.lineColumn(V.SiteLoc);
      OS << LC.Line << ':' << LC.Column;
    } else {
      OS << "?:?";
    }
    OS << ": error: liveness violation (" << V.Kind << "): site " << V.SiteId
       << " was claimed dead yet its data was "
       << (V.Kind == "dead-site-reachable" ? "reachable from the result"
                                           : "read")
       << " (alloc seq " << V.AtSeq << ")\n";
  }
  return OS.str();
}

LivenessOracle::LivenessOracle(LiveClaims C) : Claims(std::move(C)) {
  Report.DeadSitesClaimed = Claims.DeadSites.size();
}

void LivenessOracle::injectDeadClaim(uint32_t SiteId) {
  Injected.insert(SiteId);
  Claims.DeadSites.insert(SiteId);
  Report.DeadSitesClaimed = Claims.DeadSites.size();
}

void LivenessOracle::refute(const char *Kind, uint32_t SiteId,
                            uint64_t AtSeq) {
  if (!Reported.insert(reportedKey(SiteId, Kind)).second)
    return;
  LiveViolation V;
  V.Kind = Kind;
  V.SiteId = SiteId;
  auto It = Claims.SiteLocs.find(SiteId);
  if (It != Claims.SiteLocs.end())
    V.SiteLoc = It->second;
  V.AtSeq = AtSeq;
  obs::rec::emit(obs::rec::RecKind::LiveRefuted, V.SiteId,
                 obs::rec::internName(V.Kind));
  Report.Violations.push_back(std::move(V));
  obs::rec::dumpNow("live-refuted");
}

void LivenessOracle::cellAllocated(const ConsCell *Cell, uint32_t SiteId) {
  (void)Cell;
  ++Report.CellsTracked;
  AllocatedSites.insert(SiteId);
  if (Claims.DeadSites.count(SiteId))
    ++Report.DeadCellsAllocated;
}

void LivenessOracle::cellTouched(const ConsCell *Cell, uint64_t NowSeq) {
  ++Report.Touches;
  // Look through the speculative-placement tag (RtValue.h): claims key
  // on the base AST site id.
  uint32_t Site = baseSiteId(Cell->SiteId);
  uint64_t &Last = LastTouch[Site];
  if (NowSeq > Last)
    Last = NowSeq;
  if (Claims.DeadSites.count(Site))
    refute(Injected.count(Site) ? "injected-claim" : "dead-site-touched",
           Site, NowSeq);
}

void LivenessOracle::finalize(const RtValue *ProgramResult) {
  // Imprecision: allocating sites the analysis left live that no field
  // read ever touched — dead in this run, missed by the claim set.
  Report.UntouchedLiveSites = 0;
  for (uint32_t Site : AllocatedSites)
    if (!Claims.DeadSites.count(Site) && !LastTouch.count(Site))
      ++Report.UntouchedLiveSites;
  if (!ProgramResult)
    return;
  // The result printer reads every cons/pair field it renders, so a
  // dead-claimed cell reachable here refutes the claim just as surely
  // as an executed car. Closures are opaque (their captures were ⊤
  // statically); cycles are possible after DCONS, hence the visited
  // set.
  std::unordered_set<const ConsCell *> Visited;
  std::vector<RtValue> Work{*ProgramResult};
  while (!Work.empty()) {
    RtValue V = Work.back();
    Work.pop_back();
    if (!V.isCons() && !V.isPair())
      continue;
    const ConsCell *Cell = V.cell();
    if (!Visited.insert(Cell).second)
      continue;
    uint32_t Site = baseSiteId(Cell->SiteId);
    if (Claims.DeadSites.count(Site))
      refute(Injected.count(Site) ? "injected-claim" : "dead-site-reachable",
             Site, Cell->AllocSeq);
    Work.push_back(Cell->Car);
    Work.push_back(Cell->Cdr);
  }
}

std::string LivenessOracle::abortReason() const {
  return "liveness oracle refuted a dead-data claim";
}

//===- LiveOracle.h - Dynamic liveness oracle -------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the liveness story, mirroring the escape oracle
/// (Oracle.h). The static analysis claims, per allocation site, that no
/// field of any cell born there is ever read (demand ⊥ — the EAL-D001
/// set). This observer rides the tree-walker's ExecutionObserver hooks
/// and refutes any claim the run contradicts:
///
///  * every car/cdr/fst/snd lands here as cellTouched; a touch of a
///    cell whose *current* SiteId is claimed dead is a hard violation.
///    DCONS re-tags the slot with the dcons site (keeping the birth
///    AllocSeq), so touch attribution follows the new incarnation —
///    exactly the analysis's view of whose data the cell now holds;
///  * at finalize, any dead-claimed cell still reachable through the
///    cons/pair graph of the program result is a violation too: the
///    result printer will read its fields. Closure environments are
///    not traversed — data captured by closures was worst-cased to ⊤
///    statically, so it can never carry a dead claim to refute.
///
/// Alongside the claims check the oracle records per-site last-touch
/// times in AllocSeq units — the dynamic ground truth `eal live
/// --live-oracle` prints next to the static demands.
///
/// Claims are a plain value type (LiveClaims) filled by the driver from
/// live::LiveReport::deadSites(), keeping eal_check free of an eal_live
/// dependency in this header's users.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_CHECK_LIVEORACLE_H
#define EAL_CHECK_LIVEORACLE_H

#include "runtime/ExecutionObserver.h"
#include "support/SourceLoc.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eal {

class SourceManager;

namespace check {

/// The static liveness claims one run is checked against.
struct LiveClaims {
  /// Sites with demand ⊥: no field of any cell born (or re-tagged)
  /// there may ever be read.
  std::unordered_set<uint32_t> DeadSites;
  /// Site id -> source location, for diagnostics (may be sparse).
  std::unordered_map<uint32_t, SourceLoc> SiteLocs;
};

/// One dynamic refutation of a static dead-data claim.
struct LiveViolation {
  /// "dead-site-touched" (a field read hit a claimed-dead site),
  /// "dead-site-reachable" (a claimed-dead cell survived into the
  /// program result), or "injected-claim" (the planted-violation test
  /// hook fired).
  std::string Kind;
  uint32_t SiteId = 0;
  SourceLoc SiteLoc;
  /// The heap's allocation stamp when the refutation was observed.
  uint64_t AtSeq = 0;
};

/// Counters and violations of one liveness-instrumented run.
struct LiveOracleReport {
  uint64_t CellsTracked = 0;       ///< allocations observed
  uint64_t Touches = 0;            ///< field reads observed
  uint64_t DeadSitesClaimed = 0;   ///< size of the claim set
  uint64_t DeadCellsAllocated = 0; ///< births at claimed-dead sites
  /// Imprecision, dual to the violations: sites the analysis left live
  /// that allocated cells yet saw no touch all run (the analysis
  /// *could* have claimed them dead; computed at finalize()).
  uint64_t UntouchedLiveSites = 0;
  std::vector<LiveViolation> Violations;

  std::string render(const SourceManager &SM) const;
};

/// The ExecutionObserver that checks dead-site claims against a run.
/// Tree-walker only, like the escape oracle: the VM's fused field-read
/// fast paths do not report touches to observers.
class LivenessOracle final : public ExecutionObserver {
public:
  explicit LivenessOracle(LiveClaims Claims);

  /// Test-only hook: plants a dead claim the analysis never made, so
  /// the suite can prove the oracle detects violations.
  void injectDeadClaim(uint32_t SiteId);

  /// Checks the program result's cons/pair graph for reachable
  /// dead-claimed cells; call once after the run completes (null for
  /// failed runs).
  void finalize(const RtValue *ProgramResult);

  const LiveOracleReport &report() const { return Report; }
  /// Per-site last field-read time, in AllocSeq units.
  const std::unordered_map<uint32_t, uint64_t> &lastTouchBySite() const {
    return LastTouch;
  }

  void cellAllocated(const ConsCell *Cell, uint32_t SiteId) override;
  void cellTouched(const ConsCell *Cell, uint64_t NowSeq) override;
  std::string abortReason() const override;

private:
  void refute(const char *Kind, uint32_t SiteId, uint64_t AtSeq);

  LiveClaims Claims;
  /// Claims added through injectDeadClaim (reported with their own
  /// violation kind so planted failures are distinguishable).
  std::unordered_set<uint32_t> Injected;
  /// Every site that allocated at least once (feeds the imprecision
  /// counter at finalize()).
  std::unordered_set<uint32_t> AllocatedSites;
  LiveOracleReport Report;
  std::unordered_map<uint32_t, uint64_t> LastTouch;
  /// One violation per (site, kind): a hot loop touching a refuted
  /// site must not flood the report.
  std::unordered_set<uint64_t> Reported;
};

} // namespace check
} // namespace eal

#endif // EAL_CHECK_LIVEORACLE_H

//===- Oracle.cpp ---------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "check/Oracle.h"

#include "lang/AstUtils.h"
#include "obs/Recorder.h"
#include "runtime/Frame.h"
#include "types/Type.h"

#include <sstream>

using namespace eal;
using namespace eal::check;

//===----------------------------------------------------------------------===//
// Claim derivation
//===----------------------------------------------------------------------===//

ClaimTable eal::check::buildClaimTable(const AstContext &Ast,
                                       const TypedProgram &Program,
                                       EscapeAnalyzer &Analyzer) {
  (void)Ast;
  ClaimTable Table;
  forEachExpr(Program.root(), [&](const Expr *E) {
    Table.NodeLocs.emplace(E->id(), E->loc());
  });

  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec)
    return Table;

  std::unordered_map<uint32_t, unsigned> FnArities;
  std::unordered_map<uint32_t, const LambdaExpr *> FnLambdas;
  for (const LetrecBinding &B : Letrec->bindings()) {
    unsigned Arity = lambdaArity(B.Value);
    if (Arity == 0)
      continue;
    FnArities[B.Name.id()] = Arity;
    FnLambdas[B.Name.id()] = cast<LambdaExpr>(B.Value);
  }

  // Same discipline as AllocPlanner::run: only top-level-closed calls may
  // use the plain local test; interior calls get the worst-case-context
  // variant, with the global test as the fallback for both.
  auto IsTopLevelClosed = [&](const Expr *Call) {
    for (Symbol Free : freeVariables(Call))
      if (!Letrec->findBinding(Free))
        return false;
    return true;
  };

  auto VisitCalls = [&](const Expr *Root) {
    forEachExpr(Root, [&](const Expr *Node) {
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(Node, Args);
      const auto *Var = dyn_cast<VarExpr>(Callee);
      if (!Var || Args.empty())
        return;
      auto ArityIt = FnArities.find(Var->name().id());
      if (ArityIt == FnArities.end() || ArityIt->second != Args.size())
        return;
      bool UseLocal = IsTopLevelClosed(Node);
      for (unsigned I = 0; I != Args.size(); ++I) {
        if (spineCount(Program.typeOf(Args[I])) == 0)
          continue;
        auto Local = UseLocal ? Analyzer.localEscape(Node, I)
                              : Analyzer.localEscapeInContext(Node, I);
        if (!Local)
          Local = Analyzer.globalEscape(Var->name(), I);
        if (!Local || Local->protectedTopSpines() == 0)
          continue;
        CallClaim C;
        C.CallAppId = Node->id();
        C.ArgIndex = I;
        C.ProtectedSpines = Local->protectedTopSpines();
        C.ParamSpines = Local->ParamSpines;
        C.Callee = Var->name();
        C.CalleeLambda = FnLambdas[Var->name().id()];
        C.CallLoc = Node->loc();
        Table.add(std::move(C));
      }
    });
  };
  for (const LetrecBinding &B : Letrec->bindings())
    VisitCalls(B.Value);
  VisitCalls(Letrec->body());

  return Table;
}

//===----------------------------------------------------------------------===//
// The oracle
//===----------------------------------------------------------------------===//

namespace {

/// Everything reachable from \p V through cons/pair cells and closure
/// environments. Iterative: result spines can be thousands of cells.
void collectReachable(RtValue V, std::unordered_set<const ConsCell *> &Cells) {
  std::vector<RtValue> Work = {V};
  std::unordered_set<const EnvFrame *> Frames;
  while (!Work.empty()) {
    RtValue Cur = Work.back();
    Work.pop_back();
    switch (Cur.kind()) {
    case RtValueKind::Int:
    case RtValueKind::Bool:
    case RtValueKind::Nil:
      break;
    case RtValueKind::Cons:
    case RtValueKind::Pair: {
      const ConsCell *Cell = Cur.cell();
      if (Cells.insert(Cell).second) {
        Work.push_back(Cell->Car);
        Work.push_back(Cell->Cdr);
      }
      break;
    }
    case RtValueKind::Closure: {
      const RtClosure *C = Cur.closure();
      for (RtValue P : C->Partial)
        Work.push_back(P);
      for (const EnvFrame *F = C->Env.get(); F; F = F->Parent.get()) {
        if (!Frames.insert(F).second)
          break;
        for (const auto &Slot : F->Slots)
          Work.push_back(Slot.second);
      }
      break;
    }
    }
  }
}

} // namespace

EscapeOracle::EscapeOracle(const AstContext &Ast, ClaimTable Table)
    : Ast(Ast), Table(std::move(Table)) {
  Stack.emplace_back(); // the top-level pseudo-activation
}

void EscapeOracle::injectClaim(CallClaim C) { Table.add(std::move(C)); }

void EscapeOracle::cellAllocated(const ConsCell *Cell, uint32_t SiteId) {
  ++Report.CellsTracked;
  LastAllocSite[Cell] = {Cell->AllocSeq, SiteId};
  Stack.back().Cells.push_back({Cell, Cell->AllocSeq, 0});
}

void EscapeOracle::snapshotSpines(RtValue Arg, unsigned MaxLevel,
                                  ClaimCheck &Out) {
  // Spine levels as in Definition 1: level L's cells are the cdr-chains
  // hanging off the cars of level L−1 (pairs are not spines; a conservative
  // cut matching the analysis' list grading).
  std::vector<RtValue> Level = {Arg};
  for (unsigned L = 1; L <= MaxLevel && !Level.empty(); ++L) {
    std::vector<RtValue> Next;
    for (RtValue Head : Level)
      for (RtValue Cur = Head; Cur.isCons(); Cur = Cur.cell()->Cdr) {
        Out.Cells.push_back({Cur.cell(), Cur.cell()->AllocSeq, L});
        if (Cur.cell()->Car.isCons())
          Next.push_back(Cur.cell()->Car);
      }
    Level = std::move(Next);
  }
}

void EscapeOracle::activationEntered(const LambdaExpr *Fn,
                                     const AppExpr *CallSite,
                                     std::span<const RtValue> Args) {
  Stack.emplace_back();
  if (!CallSite)
    return;
  auto It = Table.ByCall.find(CallSite->id());
  if (It == Table.ByCall.end())
    return;
  Activation &A = Stack.back();
  // Claims are per-argument-*role*. When aliasing routes one value into
  // several roles of the same call (e.g. `append x x`), a cell can
  // legitimately escape through a role whose claim permits it; charging
  // that against another role's protected prefix would be a false
  // refutation. Per claim, exempt cells that some other argument exposes
  // beyond its own protected prefix.
  std::vector<unsigned> RoleProtected(Args.size(), 0);
  for (const CallClaim &Claim : It->second)
    if (!(Claim.CalleeLambda && Claim.CalleeLambda != Fn) &&
        Claim.ArgIndex < Args.size())
      RoleProtected[Claim.ArgIndex] = Claim.ProtectedSpines;
  for (const CallClaim &Claim : It->second) {
    if (Claim.CalleeLambda && Claim.CalleeLambda != Fn)
      continue; // a different function value answered this call
    if (Claim.ArgIndex >= Args.size())
      continue;
    ClaimCheck CC;
    CC.Claim = &Claim;
    // One level past the protected prefix probes the claim's precision:
    // if even level s−k+1 stays local, the analysis was conservative.
    unsigned Probe = Claim.ParamSpines > Claim.ProtectedSpines ? 1 : 0;
    snapshotSpines(Args[Claim.ArgIndex], Claim.ProtectedSpines + Probe, CC);
    CC.HasProbeLevel = false;
    for (const PinnedCell &P : CC.Cells)
      CC.HasProbeLevel |= P.Level > Claim.ProtectedSpines;
    if (Args.size() > 1 && !CC.Cells.empty()) {
      std::unordered_set<const ConsCell *> OtherRoles;
      for (size_t J = 0; J != Args.size(); ++J) {
        if (J == Claim.ArgIndex)
          continue;
        std::unordered_set<const ConsCell *> Exposed;
        collectReachable(Args[J], Exposed);
        if (RoleProtected[J]) {
          // That role's own protected prefix may not escape either, so
          // it exempts nothing.
          ClaimCheck Prot;
          snapshotSpines(Args[J], RoleProtected[J], Prot);
          for (const PinnedCell &P : Prot.Cells)
            Exposed.erase(P.Cell);
        }
        OtherRoles.merge(Exposed);
      }
      if (!OtherRoles.empty()) {
        size_t Before = CC.Cells.size();
        std::erase_if(CC.Cells, [&](const PinnedCell &P) {
          return OtherRoles.count(P.Cell) != 0;
        });
        Report.AliasExemptions += Before - CC.Cells.size();
      }
    }
    A.Claims.push_back(std::move(CC));
  }
}

void EscapeOracle::recordViolation(const ClaimCheck &CC,
                                   const PinnedCell &Cell) {
  OracleViolation V;
  V.Kind = CC.Claim->CalleeLambda ? "protected-spine-escaped"
                                  : "injected-claim";
  V.Function = CC.Claim->Callee.isValid()
                   ? std::string(Ast.spelling(CC.Claim->Callee))
                   : std::string("<unknown>");
  V.ArgIndex = CC.Claim->ArgIndex;
  V.ProtectedSpines = CC.Claim->ProtectedSpines;
  V.SpineLevel = Cell.Level;
  V.CallLoc = CC.Claim->CallLoc;
  auto It = LastAllocSite.find(Cell.Cell);
  if (It != LastAllocSite.end() && It->second.first == Cell.Seq) {
    V.AllocSiteId = It->second.second;
    auto LocIt = Table.NodeLocs.find(V.AllocSiteId);
    if (LocIt != Table.NodeLocs.end())
      V.AllocLoc = LocIt->second;
  }
  // The refutation names the allocation site in the flight recording's
  // tail, then triggers a crash dump (docs/RECORDER.md).
  obs::rec::emit(obs::rec::RecKind::OracleRefuted, V.AllocSiteId,
                 obs::rec::internName(V.Kind));
  Report.Violations.push_back(std::move(V));
  obs::rec::dumpNow("oracle-refuted");
}

void EscapeOracle::classifyCells(
    const Activation &A, const std::unordered_set<const ConsCell *> &Reach) {
  for (const PinnedCell &P : A.Cells) {
    if (P.Cell->Class != CellClass::Heap)
      continue; // arena cells: ValidateArenaFrees checks those frees
    bool Alive =
        P.Cell->State == CellState::Live && P.Cell->AllocSeq == P.Seq;
    if (Alive && Reach.count(P.Cell))
      ++Report.HeapCellsEscaped;
    else
      ++Report.HeapCellsUnescaped;
  }
}

bool EscapeOracle::activationExited(const RtValue *Result) {
  Activation A = std::move(Stack.back());
  Stack.pop_back();
  ++Report.Activations;
  if (!Result)
    return true; // unwinding on an error; nothing to classify

  std::unordered_set<const ConsCell *> Reach;
  collectReachable(*Result, Reach);

  bool Violated = false;
  for (const ClaimCheck &CC : A.Claims) {
    ++Report.ClaimsChecked;
    bool ProbeEscaped = false;
    for (const PinnedCell &P : CC.Cells) {
      bool Alive =
          P.Cell->State == CellState::Live && P.Cell->AllocSeq == P.Seq;
      if (!Alive || !Reach.count(P.Cell))
        continue;
      if (P.Level <= CC.Claim->ProtectedSpines) {
        recordViolation(CC, P);
        Violated = true;
      } else {
        ProbeEscaped = true;
      }
    }
    if (CC.HasProbeLevel && !ProbeEscaped)
      ++Report.ImpreciseClaims;
  }
  classifyCells(A, Reach);
  return !Violated;
}

void EscapeOracle::finalize(const RtValue *ProgramResult) {
  // The top-level pseudo-activation never exits; classify its cells
  // against the program result. (Claims never attach to it.)
  if (Stack.empty())
    return;
  std::unordered_set<const ConsCell *> Reach;
  if (ProgramResult)
    collectReachable(*ProgramResult, Reach);
  classifyCells(Stack.front(), Reach);
  Stack.front().Cells.clear();
}

std::string EscapeOracle::abortReason() const {
  if (Report.Violations.empty())
    return ExecutionObserver::abortReason();
  const OracleViolation &V = Report.Violations.back();
  std::ostringstream OS;
  OS << "escape oracle: cell from allocation site " << V.AllocSiteId
     << " escapes through the result of '" << V.Function << "' (argument "
     << (V.ArgIndex + 1) << ", spine level " << V.SpineLevel
     << ", claimed top " << V.ProtectedSpines << " spine(s) protected)";
  return OS.str();
}

//===- Oracle.h - Dynamic escape oracle -------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the soundness story. The static analysis promises,
/// per call site, that the top s−k spines of an argument never escape the
/// callee's activation (G of §4.1 / L of §4.2); the optimizer spends that
/// promise on stack arenas, regions, and DCONS. This oracle re-derives
/// every such promise as a *claim table* over the final program — the
/// same saturated-call visitation AllocPlanner::run performs, so every
/// planner decision is covered even when a knob left the plan empty —
/// and then, riding the interpreter's ExecutionObserver hooks, checks
/// each claim against the concrete heap:
///
///  * at activation entry, the claimed spine cells of each argument are
///    snapshotted by (pointer, AllocSeq) identity;
///  * at activation exit, no snapshotted cell within the protected
///    prefix may be reachable from the result — one that is refutes the
///    analysis (a hard violation, aborting the run with a diagnostic
///    naming the allocation site);
///  * the reverse direction — heap-class cells that turned out to die
///    with their activation, and claims whose first *unprotected* level
///    did not escape either — is mere imprecision, counted and exported
///    through eal::obs metrics so precision is trackable across PRs.
///
/// Arena-class cells get their own independent check: oracle runs force
/// Interpreter::Options::ValidateArenaFrees, which verifies cell-by-cell
/// at every arena free that the optimizer's placement was safe.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_CHECK_ORACLE_H
#define EAL_CHECK_ORACLE_H

#include "check/CheckReport.h"
#include "escape/EscapeAnalyzer.h"
#include "runtime/ExecutionObserver.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eal::check {

/// One static promise: in the call `CallAppId`, the top ProtectedSpines
/// spines of argument ArgIndex do not escape Callee's activation.
struct CallClaim {
  uint32_t CallAppId = 0;
  unsigned ArgIndex = 0;        ///< 0-based
  unsigned ProtectedSpines = 0; ///< s − k > 0
  unsigned ParamSpines = 0;     ///< s (for the imprecision probe)
  /// Claimed callee, for diagnostics...
  Symbol Callee;
  /// ...and its binding's lambda: at run time the claim applies only
  /// when this exact closure body is entered (first-class function
  /// values may route the call elsewhere). Null matches any callee —
  /// used by injected test claims.
  const LambdaExpr *CalleeLambda = nullptr;
  SourceLoc CallLoc;
};

/// The per-call claims of one program, plus node-id → location so
/// violations can name allocation sites.
struct ClaimTable {
  std::unordered_map<uint32_t, std::vector<CallClaim>> ByCall;
  std::unordered_map<uint32_t, SourceLoc> NodeLocs;
  size_t Size = 0;

  void add(CallClaim C) {
    ByCall[C.CallAppId].push_back(std::move(C));
    ++Size;
  }
};

/// Derives the claim table of \p Program (the *final*, transformed
/// program — \p Analyzer must be built over the same TypedProgram). The
/// visitation and the local/global test fallback mirror
/// AllocPlanner::run, so the claims subsume every directive the planner
/// could emit.
ClaimTable buildClaimTable(const AstContext &Ast, const TypedProgram &Program,
                           EscapeAnalyzer &Analyzer);

/// The ExecutionObserver that checks a claim table against a run.
class EscapeOracle final : public ExecutionObserver {
public:
  EscapeOracle(const AstContext &Ast, ClaimTable Table);

  /// Test-only hook: plants a claim the analysis never made, so the
  /// regression suite can prove the oracle detects violations. A null
  /// CalleeLambda matches whatever closure the call enters.
  void injectClaim(CallClaim C);

  /// Classifies the cells attributed to the top-level pseudo-activation
  /// against the program result; call once after the run completes.
  void finalize(const RtValue *ProgramResult);

  const OracleReport &report() const { return Report; }

  /// Number of static claims the table holds.
  size_t claimCount() const { return Table.Size; }

  void cellAllocated(const ConsCell *Cell, uint32_t SiteId) override;
  void activationEntered(const LambdaExpr *Fn, const AppExpr *CallSite,
                         std::span<const RtValue> Args) override;
  bool activationExited(const RtValue *Result) override;
  std::string abortReason() const override;

private:
  /// A cell pinned by allocation identity (stale Seq ⇒ the cell died
  /// and its slot was recycled).
  struct PinnedCell {
    const ConsCell *Cell = nullptr;
    uint64_t Seq = 0;
    unsigned Level = 0; ///< 1-based spine level (claim snapshots only)
  };

  struct ClaimCheck {
    const CallClaim *Claim = nullptr;
    std::vector<PinnedCell> Cells;
    bool HasProbeLevel = false; ///< snapshot includes level s−k+1
  };

  struct Activation {
    std::vector<PinnedCell> Cells; ///< cells this activation allocated
    std::vector<ClaimCheck> Claims;
  };

  void snapshotSpines(RtValue Arg, unsigned MaxLevel, ClaimCheck &Out);
  void recordViolation(const ClaimCheck &CC, const PinnedCell &Cell);
  void classifyCells(const Activation &A,
                     const std::unordered_set<const ConsCell *> &Reach);

  const AstContext &Ast;
  ClaimTable Table;
  OracleReport Report;
  /// Activation stack; index 0 is the top-level pseudo-activation.
  std::vector<Activation> Stack;
  /// Latest allocation site per cell slot (overwritten on reuse).
  std::unordered_map<const ConsCell *, std::pair<uint64_t, uint32_t>>
      LastAllocSite;
};

} // namespace eal::check

#endif // EAL_CHECK_ORACLE_H

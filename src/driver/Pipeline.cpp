//===- Pipeline.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/Stdlib.h"
#include "lang/Parser.h"
#include "runtime/ValuePrinter.h"

using namespace eal;

PipelineResult eal::runPipeline(const std::string &Source,
                                const PipelineOptions &Options) {
  PipelineResult R;
  R.SM = std::make_unique<SourceManager>();
  R.Diags = std::make_unique<DiagnosticEngine>();
  R.Ast = std::make_unique<AstContext>();
  R.Types = std::make_unique<TypeContext>();

  R.SM->setBuffer(Options.IncludeStdlib ? withStdlib(Source) : Source);
  Parser P(R.SM->buffer(), *R.Ast, *R.Diags);
  R.ParsedRoot = P.parseProgram();
  if (!R.ParsedRoot)
    return R;

  TypeInference TI(*R.Ast, *R.Types, *R.Diags, Options.Mode);
  R.Typed = TI.run(R.ParsedRoot);
  if (!R.Typed)
    return R;

  OptimizerConfig OptConfig = Options.Optimize;
  OptConfig.Mode = Options.Mode;
  R.Optimized =
      optimizeProgram(*R.Ast, *R.Types, *R.Typed, *R.Diags, OptConfig);
  if (!R.Optimized)
    return R;

  if (!Options.RunProgram) {
    R.Success = !R.Diags->hasErrors();
    return R;
  }

  if (Options.Engine == ExecutionEngine::Bytecode) {
    R.Code = compileToBytecode(*R.Ast, R.Optimized->Root, &R.Optimized->Plan,
                               *R.Diags);
    if (!R.Code)
      return R;
    Vm::Options VO;
    VO.HeapCapacity = Options.Run.HeapCapacity;
    VO.AllowHeapGrowth = Options.Run.AllowHeapGrowth;
    VO.MaxSteps = Options.Run.MaxSteps;
    VO.ValidateArenaFrees = Options.Run.ValidateArenaFrees;
    R.TheVm = std::make_unique<Vm>(*R.Code, *R.Diags, VO);
    R.Value = R.TheVm->run();
    R.Stats = R.TheVm->stats();
  } else {
    R.Interp = std::make_unique<Interpreter>(*R.Ast, R.Optimized->Typed,
                                             &R.Optimized->Plan, *R.Diags,
                                             Options.Run);
    R.Value = Options.UseLargeStack ? R.Interp->runOnLargeStack()
                                    : R.Interp->run();
    R.Stats = R.Interp->stats();
  }
  if (!R.Value)
    return R;
  R.RenderedValue = renderValue(*R.Value);
  R.Success = !R.Diags->hasErrors();
  return R;
}

//===- Pipeline.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/Stdlib.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "runtime/ValuePrinter.h"
#include "support/Metrics.h"

#include <fstream>

using namespace eal;

namespace {

/// The eal-stats-v1 document (tools/check_stats_json.py-compatible shape;
/// see docs/OBSERVABILITY.md).
bool writeStatsJson(const std::string &Path, const std::string &Command,
                    const PipelineResult &R) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n"
      << "  \"schema\": \"eal-stats-v1\",\n"
      << "  \"command\": " << obs::jsonQuote(Command) << ",\n"
      << "  \"success\": " << (R.Success ? "true" : "false") << ",\n"
      << "  \"value\": " << obs::jsonQuote(R.RenderedValue) << ",\n"
      << "  \"phases_us\": {";
  for (size_t I = 0; I != R.PhaseMicros.size(); ++I)
    Out << (I ? ", " : "") << obs::jsonQuote(R.PhaseMicros[I].first) << ": "
        << R.PhaseMicros[I].second;
  Out << "},\n"
      << "  \"counters\": " << R.Stats.toJson(2) << ",\n"
      << "  \"metrics\": " << obs::globalMetrics().toJson(2) << "\n"
      << "}\n";
  return static_cast<bool>(Out);
}

void runPipelineImpl(const std::string &Source,
                     const PipelineOptions &Options, PipelineResult &R) {
  R.SM = std::make_unique<SourceManager>();
  R.Diags = std::make_unique<DiagnosticEngine>();
  R.Ast = std::make_unique<AstContext>();
  R.Types = std::make_unique<TypeContext>();

  R.SM->setBuffer(Options.IncludeStdlib ? withStdlib(Source) : Source,
                  Options.SourceName);

  // The parser lexes on the fly, so a standalone lex phase is redundant
  // work; run a counting pre-pass only when a trace is being recorded,
  // where a complete per-phase picture is worth one extra scan.
  if (obs::tracingEnabled()) {
    obs::PhaseTimer T(&R.PhaseMicros, "lex");
    DiagnosticEngine ScratchDiags;
    Lexer L(R.SM->buffer(), ScratchDiags);
    uint64_t Tokens = 0;
    while (L.next().Kind != TokenKind::EndOfFile)
      ++Tokens;
    T.span().arg("tokens", Tokens);
    T.span().arg("bytes", static_cast<uint64_t>(R.SM->buffer().size()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "parse");
    Parser P(R.SM->buffer(), *R.Ast, *R.Diags);
    R.ParsedRoot = P.parseProgram();
    T.span().arg("nodes", static_cast<uint64_t>(R.Ast->numNodes()));
  }
  if (!R.ParsedRoot)
    return;

  if (Options.RunLint || Options.RunOracle)
    R.Check.emplace();
  if (Options.RunLint) {
    obs::PhaseTimer T(&R.PhaseMicros, "lint");
    check::LintOptions LO;
    if (Options.IncludeStdlib)
      for (std::string_view Name : stdlibBindingNames())
        LO.ExemptTopLevel.emplace_back(Name);
    check::lintSource(*R.Ast, R.ParsedRoot, LO, *R.Check);
    T.span().arg("findings", static_cast<uint64_t>(R.Check->Findings.size()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "type-inference");
    TypeInference TI(*R.Ast, *R.Types, *R.Diags, Options.Mode);
    R.Typed = TI.run(R.ParsedRoot);
  }
  if (!R.Typed)
    return;

  OptimizerConfig OptConfig = Options.Optimize;
  OptConfig.Mode = Options.Mode;
  if (Options.RunLint || Options.RunExplain) {
    // One recorder spans the whole run: base/final escape analysis, the
    // sharing analysis, and the planner all write into it, and findings
    // plus blame chains index into the one graph.
    R.Prov = std::make_unique<explain::ProvenanceRecorder>();
    OptConfig.Explain = R.Prov.get();
  }
  {
    obs::PhaseTimer T(&R.PhaseMicros, "optimize");
    R.Optimized = optimizeProgram(*R.Ast, *R.Types, *R.Typed, *R.Diags,
                                  OptConfig, &R.PhaseMicros);
  }
  if (!R.Optimized)
    return;

  if (Options.RunLint || Options.RunExplain) {
    // The blocked-allocation explanations grade the *final* program: the
    // analyzer must agree with the one the planner consulted. One site
    // classification feeds both the linter's findings and the blame
    // chains, so the two can never disagree.
    obs::PhaseTimer T(&R.PhaseMicros, "explain");
    EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                            OptConfig.Analysis);
    Analyzer.attachProvenance(R.Prov.get());
    std::vector<explain::SiteInfo> Sites = explain::classifySites(
        *R.Ast, R.Optimized->Typed, Analyzer, R.Optimized->Plan);
    if (Options.RunLint)
      check::explainBlockedAllocations(*R.Ast, R.Optimized->Typed, Sites,
                                       R.Optimized->Reuse,
                                       R.Optimized->FinalEscape,
                                       R.Prov.get(), *R.Check);
    if (Options.RunExplain)
      R.Explain = explain::buildExplainReport(*R.Ast, R.Optimized->Typed,
                                              Sites, *R.Prov);
    T.span().arg("sites", static_cast<uint64_t>(Sites.size()));
    T.span().arg("facts", static_cast<uint64_t>(R.Prov->numFacts()));
  }
  if (R.Prov && obs::metricsEnabled())
    R.Prov->exportTo(obs::globalMetrics());

  if (!Options.RunProgram && !Options.RunOracle) {
    if (Options.CompileBytecode) {
      obs::PhaseTimer T(&R.PhaseMicros, "compile");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return;
    }
    R.Success = !R.Diags->hasErrors();
    return;
  }

  ExecutionEngine Engine = Options.Engine;
  Interpreter::Options RunOpts = Options.Run;
  RunOpts.Profiler = Options.Obs.Profile;
  if (Options.RunOracle) {
    obs::PhaseTimer T(&R.PhaseMicros, "claims");
    // The observer hooks live in the tree-walker, and a sound plan must
    // also survive cell-by-cell arena-free validation.
    Engine = ExecutionEngine::TreeWalker;
    RunOpts.ValidateArenaFrees = true;
    EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                            OptConfig.Analysis);
    R.Oracle = std::make_unique<check::EscapeOracle>(
        *R.Ast, check::buildClaimTable(*R.Ast, R.Optimized->Typed, Analyzer));
    RunOpts.Observer = R.Oracle.get();
    T.span().arg("claims", static_cast<uint64_t>(R.Oracle->claimCount()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "execute");
    if (Engine == ExecutionEngine::Bytecode) {
      T.span().arg("engine", "bytecode");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return;
      Vm::Options VO;
      VO.HeapCapacity = RunOpts.HeapCapacity;
      VO.AllowHeapGrowth = RunOpts.AllowHeapGrowth;
      VO.MaxSteps = RunOpts.MaxSteps;
      VO.ValidateArenaFrees = RunOpts.ValidateArenaFrees;
      VO.Profiler = RunOpts.Profiler;
      R.TheVm = std::make_unique<Vm>(*R.Code, *R.Diags, VO);
      R.Value = R.TheVm->run();
      R.Stats = R.TheVm->stats();
    } else {
      T.span().arg("engine", "tree-walker");
      R.Interp = std::make_unique<Interpreter>(*R.Ast, R.Optimized->Typed,
                                               &R.Optimized->Plan, *R.Diags,
                                               RunOpts);
      R.Value = Options.UseLargeStack ? R.Interp->runOnLargeStack()
                                      : R.Interp->run();
      R.Stats = R.Interp->stats();
    }
    T.span().arg("steps", R.Stats.Steps);
  }
  if (obs::metricsEnabled())
    R.Stats.exportTo(obs::globalMetrics());
  if (R.Oracle) {
    R.Oracle->finalize(R.Value ? &*R.Value : nullptr);
    R.Check->Oracle = R.Oracle->report();
    if (obs::metricsEnabled())
      R.Oracle->report().exportTo(obs::globalMetrics());
  }
  if (!R.Value)
    return;
  R.RenderedValue = renderValue(*R.Value);
  R.Success = !R.Diags->hasErrors();
}

} // namespace

PipelineResult eal::runPipeline(const std::string &Source,
                                const PipelineOptions &Options) {
  const ObservabilityOptions &Obs = Options.Obs;
  if (!Obs.TracePath.empty())
    obs::enableTracing();
  if (!Obs.StatsJsonPath.empty())
    obs::enableMetrics();

  PipelineResult R;
  runPipelineImpl(Source, Options, R);

  // Exports happen even on failure: a trace of a failed run is exactly
  // what one wants for debugging it.
  if (!Obs.TracePath.empty() && !obs::writeChromeTrace(Obs.TracePath))
    R.ObsExportErrors.push_back("cannot write '" + Obs.TracePath + "'");
  if (!Obs.StatsJsonPath.empty() &&
      !writeStatsJson(Obs.StatsJsonPath, Obs.Command, R))
    R.ObsExportErrors.push_back("cannot write '" + Obs.StatsJsonPath + "'");
  return R;
}

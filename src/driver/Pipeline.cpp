//===- Pipeline.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/Stdlib.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "runtime/ValuePrinter.h"

using namespace eal;

PipelineResult eal::runPipeline(const std::string &Source,
                                const PipelineOptions &Options) {
  PipelineResult R;
  R.SM = std::make_unique<SourceManager>();
  R.Diags = std::make_unique<DiagnosticEngine>();
  R.Ast = std::make_unique<AstContext>();
  R.Types = std::make_unique<TypeContext>();

  R.SM->setBuffer(Options.IncludeStdlib ? withStdlib(Source) : Source);

  // The parser lexes on the fly, so a standalone lex phase is redundant
  // work; run a counting pre-pass only when a trace is being recorded,
  // where a complete per-phase picture is worth one extra scan.
  if (obs::tracingEnabled()) {
    obs::PhaseTimer T(&R.PhaseMicros, "lex");
    DiagnosticEngine ScratchDiags;
    Lexer L(R.SM->buffer(), ScratchDiags);
    uint64_t Tokens = 0;
    while (L.next().Kind != TokenKind::EndOfFile)
      ++Tokens;
    T.span().arg("tokens", Tokens);
    T.span().arg("bytes", static_cast<uint64_t>(R.SM->buffer().size()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "parse");
    Parser P(R.SM->buffer(), *R.Ast, *R.Diags);
    R.ParsedRoot = P.parseProgram();
    T.span().arg("nodes", static_cast<uint64_t>(R.Ast->numNodes()));
  }
  if (!R.ParsedRoot)
    return R;

  if (Options.RunLint || Options.RunOracle)
    R.Check.emplace();
  if (Options.RunLint) {
    obs::PhaseTimer T(&R.PhaseMicros, "lint");
    check::LintOptions LO;
    if (Options.IncludeStdlib)
      for (std::string_view Name : stdlibBindingNames())
        LO.ExemptTopLevel.emplace_back(Name);
    check::lintSource(*R.Ast, R.ParsedRoot, LO, *R.Check);
    T.span().arg("findings", static_cast<uint64_t>(R.Check->Findings.size()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "type-inference");
    TypeInference TI(*R.Ast, *R.Types, *R.Diags, Options.Mode);
    R.Typed = TI.run(R.ParsedRoot);
  }
  if (!R.Typed)
    return R;

  OptimizerConfig OptConfig = Options.Optimize;
  OptConfig.Mode = Options.Mode;
  {
    obs::PhaseTimer T(&R.PhaseMicros, "optimize");
    R.Optimized = optimizeProgram(*R.Ast, *R.Types, *R.Typed, *R.Diags,
                                  OptConfig, &R.PhaseMicros);
  }
  if (!R.Optimized)
    return R;

  if (Options.RunLint) {
    // The blocked-allocation explanations grade the *final* program: the
    // analyzer must agree with the one the planner consulted.
    obs::PhaseTimer T(&R.PhaseMicros, "explain");
    EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                            OptConfig.Analysis);
    check::explainBlockedAllocations(*R.Ast, R.Optimized->Typed, Analyzer,
                                     R.Optimized->Plan, R.Optimized->Reuse,
                                     R.Optimized->FinalEscape, *R.Check);
  }

  if (!Options.RunProgram && !Options.RunOracle) {
    if (Options.CompileBytecode) {
      obs::PhaseTimer T(&R.PhaseMicros, "compile");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return R;
    }
    R.Success = !R.Diags->hasErrors();
    return R;
  }

  ExecutionEngine Engine = Options.Engine;
  Interpreter::Options RunOpts = Options.Run;
  if (Options.RunOracle) {
    obs::PhaseTimer T(&R.PhaseMicros, "claims");
    // The observer hooks live in the tree-walker, and a sound plan must
    // also survive cell-by-cell arena-free validation.
    Engine = ExecutionEngine::TreeWalker;
    RunOpts.ValidateArenaFrees = true;
    EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                            OptConfig.Analysis);
    R.Oracle = std::make_unique<check::EscapeOracle>(
        *R.Ast, check::buildClaimTable(*R.Ast, R.Optimized->Typed, Analyzer));
    RunOpts.Observer = R.Oracle.get();
    T.span().arg("claims", static_cast<uint64_t>(R.Oracle->claimCount()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "execute");
    if (Engine == ExecutionEngine::Bytecode) {
      T.span().arg("engine", "bytecode");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return R;
      Vm::Options VO;
      VO.HeapCapacity = RunOpts.HeapCapacity;
      VO.AllowHeapGrowth = RunOpts.AllowHeapGrowth;
      VO.MaxSteps = RunOpts.MaxSteps;
      VO.ValidateArenaFrees = RunOpts.ValidateArenaFrees;
      R.TheVm = std::make_unique<Vm>(*R.Code, *R.Diags, VO);
      R.Value = R.TheVm->run();
      R.Stats = R.TheVm->stats();
    } else {
      T.span().arg("engine", "tree-walker");
      R.Interp = std::make_unique<Interpreter>(*R.Ast, R.Optimized->Typed,
                                               &R.Optimized->Plan, *R.Diags,
                                               RunOpts);
      R.Value = Options.UseLargeStack ? R.Interp->runOnLargeStack()
                                      : R.Interp->run();
      R.Stats = R.Interp->stats();
    }
    T.span().arg("steps", R.Stats.Steps);
  }
  if (obs::metricsEnabled())
    R.Stats.exportTo(obs::globalMetrics());
  if (R.Oracle) {
    R.Oracle->finalize(R.Value ? &*R.Value : nullptr);
    R.Check->Oracle = R.Oracle->report();
    if (obs::metricsEnabled())
      R.Oracle->report().exportTo(obs::globalMetrics());
  }
  if (!R.Value)
    return R;
  R.RenderedValue = renderValue(*R.Value);
  R.Success = !R.Diags->hasErrors();
  return R;
}

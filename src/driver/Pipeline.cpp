//===- Pipeline.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "check/LiveLint.h"
#include "obs/Recorder.h"
#include "driver/Stdlib.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "prof/Profiler.h"
#include "runtime/ValuePrinter.h"
#include "spec/SpecPlanner.h"
#include "support/Metrics.h"

#include <fstream>

using namespace eal;

namespace {

/// Fans every observer hook out to two observers, so the escape oracle
/// and the liveness oracle (or a caller-supplied observer and either
/// oracle) can ride the same run.
class FanOutObserver final : public ExecutionObserver {
public:
  FanOutObserver(ExecutionObserver *A, ExecutionObserver *B) : A(A), B(B) {}

  void cellAllocated(const ConsCell *Cell, uint32_t SiteId) override {
    A->cellAllocated(Cell, SiteId);
    B->cellAllocated(Cell, SiteId);
  }
  void cellTouched(const ConsCell *Cell, uint64_t NowSeq) override {
    A->cellTouched(Cell, NowSeq);
    B->cellTouched(Cell, NowSeq);
  }
  void activationEntered(const LambdaExpr *Fn, const AppExpr *CallSite,
                         std::span<const RtValue> Args) override {
    A->activationEntered(Fn, CallSite, Args);
    B->activationEntered(Fn, CallSite, Args);
  }
  bool activationExited(const RtValue *Result) override {
    // Both sides must see every exit (strict bracketing) even when the
    // first one aborts.
    bool KeepA = A->activationExited(Result);
    bool KeepB = B->activationExited(Result);
    Aborted = !KeepA ? A : !KeepB ? B : nullptr;
    return KeepA && KeepB;
  }
  std::string abortReason() const override {
    return Aborted ? Aborted->abortReason() : ExecutionObserver::abortReason();
  }

private:
  ExecutionObserver *A;
  ExecutionObserver *B;
  ExecutionObserver *Aborted = nullptr;
};

/// The eal-stats-v1 document (tools/check_stats_json.py-compatible shape;
/// see docs/OBSERVABILITY.md).
bool writeStatsJson(const std::string &Path, const std::string &Command,
                    const PipelineResult &R) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << "{\n"
      << "  \"schema\": \"eal-stats-v1\",\n"
      << "  \"command\": " << obs::jsonQuote(Command) << ",\n"
      << "  \"success\": " << (R.Success ? "true" : "false") << ",\n"
      << "  \"value\": " << obs::jsonQuote(R.RenderedValue) << ",\n"
      << "  \"phases_us\": {";
  for (size_t I = 0; I != R.PhaseMicros.size(); ++I)
    Out << (I ? ", " : "") << obs::jsonQuote(R.PhaseMicros[I].first) << ": "
        << R.PhaseMicros[I].second;
  Out << "},\n"
      << "  \"counters\": " << R.Stats.toJson(2) << ",\n"
      << "  \"metrics\": " << obs::globalMetrics().toJson(2) << "\n"
      << "}\n";
  return static_cast<bool>(Out);
}

void runPipelineImpl(const std::string &Source,
                     const PipelineOptions &Options, PipelineResult &R) {
  R.SM = std::make_unique<SourceManager>();
  R.Diags = std::make_unique<DiagnosticEngine>();
  R.Ast = std::make_unique<AstContext>();
  R.Types = std::make_unique<TypeContext>();

  R.SM->setBuffer(Options.IncludeStdlib ? withStdlib(Source) : Source,
                  Options.SourceName);

  // The parser lexes on the fly, so a standalone lex phase is redundant
  // work; run a counting pre-pass only when a trace is being recorded,
  // where a complete per-phase picture is worth one extra scan.
  if (obs::tracingEnabled()) {
    obs::rec::PhaseScope T(&R.PhaseMicros, "lex");
    DiagnosticEngine ScratchDiags;
    Lexer L(R.SM->buffer(), ScratchDiags);
    uint64_t Tokens = 0;
    while (L.next().Kind != TokenKind::EndOfFile)
      ++Tokens;
    T.span().arg("tokens", Tokens);
    T.span().arg("bytes", static_cast<uint64_t>(R.SM->buffer().size()));
  }

  {
    obs::rec::PhaseScope T(&R.PhaseMicros, "parse");
    Parser P(R.SM->buffer(), *R.Ast, *R.Diags);
    R.ParsedRoot = P.parseProgram();
    T.span().arg("nodes", static_cast<uint64_t>(R.Ast->numNodes()));
  }
  if (!R.ParsedRoot)
    return;

  // The liveness oracle checks the analysis's claims, so it implies the
  // analysis.
  const bool RunLive = Options.RunLive || Options.RunLiveOracle;

  if (Options.RunLint || Options.RunOracle || RunLive)
    R.Check.emplace();
  if (Options.RunLint) {
    obs::rec::PhaseScope T(&R.PhaseMicros, "lint");
    check::LintOptions LO;
    if (Options.IncludeStdlib)
      for (std::string_view Name : stdlibBindingNames())
        LO.ExemptTopLevel.emplace_back(Name);
    check::lintSource(*R.Ast, R.ParsedRoot, LO, *R.Check);
    T.span().arg("findings", static_cast<uint64_t>(R.Check->Findings.size()));
  }

  {
    obs::rec::PhaseScope T(&R.PhaseMicros, "type-inference");
    TypeInference TI(*R.Ast, *R.Types, *R.Diags, Options.Mode);
    R.Typed = TI.run(R.ParsedRoot);
  }
  if (!R.Typed)
    return;

  OptimizerConfig OptConfig = Options.Optimize;
  OptConfig.Mode = Options.Mode;
  if (Options.RunLint || Options.RunExplain || RunLive) {
    // One recorder spans the whole run: base/final escape analysis, the
    // sharing analysis, the planner, and the liveness analysis all
    // write into it, and findings plus blame chains index into the one
    // graph.
    R.Prov = std::make_unique<explain::ProvenanceRecorder>();
    OptConfig.Explain = R.Prov.get();
  }
  {
    obs::rec::PhaseScope T(&R.PhaseMicros, "optimize");
    R.Optimized = optimizeProgram(*R.Ast, *R.Types, *R.Typed, *R.Diags,
                                  OptConfig, &R.PhaseMicros);
  }
  if (!R.Optimized)
    return;

  // One site classification per run: the EAL-O explanations, the blame
  // chains, and the EAL-D storage test (D004) must all grade the same
  // final program the planner consulted, so they can never disagree.
  std::vector<explain::SiteInfo> ClassifiedSites;
  bool HaveSites = false;
  auto classifySitesOnce = [&]() -> const std::vector<explain::SiteInfo> & {
    if (!HaveSites) {
      EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                              OptConfig.Analysis);
      if (R.Prov)
        Analyzer.attachProvenance(R.Prov.get());
      ClassifiedSites = explain::classifySites(*R.Ast, R.Optimized->Typed,
                                               Analyzer, R.Optimized->Plan);
      HaveSites = true;
    }
    return ClassifiedSites;
  };

  if (Options.RunLint || Options.RunExplain) {
    // The blocked-allocation explanations grade the *final* program: the
    // analyzer must agree with the one the planner consulted.
    obs::rec::PhaseScope T(&R.PhaseMicros, "explain");
    const std::vector<explain::SiteInfo> &Sites = classifySitesOnce();
    if (Options.RunLint)
      check::explainBlockedAllocations(*R.Ast, R.Optimized->Typed, Sites,
                                       R.Optimized->Reuse,
                                       R.Optimized->FinalEscape,
                                       R.Prov.get(), *R.Check);
    if (Options.RunExplain)
      R.Explain = explain::buildExplainReport(*R.Ast, R.Optimized->Typed,
                                              Sites, *R.Prov);
    T.span().arg("sites", static_cast<uint64_t>(Sites.size()));
    T.span().arg("facts", static_cast<uint64_t>(R.Prov->numFacts()));
  }

  if (RunLive) {
    // Backward heap-liveness over the same final program the engines
    // execute, so site ids line up with the runtime's ConsCell::SiteId
    // tags. Strictly observational: nothing downstream consults the
    // report unless LiveGcPrune arms the GC consumer.
    obs::rec::PhaseScope T(&R.PhaseMicros, "liveness");
    live::LiveAnalyzer LA(*R.Ast, R.Optimized->Root, &R.Optimized->Typed);
    if (R.Prov)
      LA.attachProvenance(R.Prov.get());
    R.Live = LA.run();
    check::LiveLintOptions LLO;
    if (Options.IncludeStdlib)
      for (std::string_view Name : stdlibBindingNames())
        LLO.ExemptContexts.emplace_back(Name);
    check::lintLiveness(*R.Ast, *R.Live, classifySitesOnce(),
                        &R.Optimized->Typed, R.Prov.get(), LLO, *R.Check);
    T.span().arg("rounds", static_cast<uint64_t>(R.Live->Rounds));
    T.span().arg("sites", static_cast<uint64_t>(R.Live->Sites.size()));
    T.span().arg("dead", static_cast<uint64_t>(R.Live->deadSiteCount()));
  }
  if (R.Prov && obs::metricsEnabled())
    R.Prov->exportTo(obs::globalMetrics());

  if (!Options.RunProgram && !Options.RunOracle && !Options.RunLiveOracle) {
    if (Options.CompileBytecode) {
      obs::rec::PhaseScope T(&R.PhaseMicros, "compile");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return;
    }
    R.Success = !R.Diags->hasErrors();
    return;
  }

  ExecutionEngine Engine = Options.Engine;
  Interpreter::Options RunOpts = Options.Run;
  RunOpts.Profiler = Options.Obs.Profile;

  if (Options.Spec.Enable) {
    // Profiling pre-run (tree-walker: the branch hooks live there). nml
    // is deterministic and takes no input, so this run's branch counts
    // and per-site allocation counts are exact for the run below — the
    // price of the tier is running the program twice. Scratch
    // diagnostics: a pre-run failure (fuel, heap) just disables
    // speculation; the real run will surface the error itself.
    spec::BranchProfile Branches;
    prof::Profiler PreProfile;
    std::optional<RtValue> PreValue;
    {
      obs::rec::PhaseScope T(&R.PhaseMicros, "spec-profile");
      DiagnosticEngine PreDiags;
      Interpreter::Options PreOpts = Options.Run;
      PreOpts.Observer = nullptr;
      PreOpts.Profiler = &PreProfile;
      PreOpts.Spec = &Branches;
      Interpreter Pre(*R.Ast, R.Optimized->Typed, &R.Optimized->Plan,
                      PreDiags, PreOpts);
      PreValue = Options.UseLargeStack ? Pre.runOnLargeStack() : Pre.run();
      T.span().arg("branches",
                   static_cast<uint64_t>(Branches.numBranchesSeen()));
    }
    if (PreValue) {
      obs::rec::PhaseScope T(&R.PhaseMicros, "spec-plan");
      spec::SpecPlannerOptions SPO;
      SPO.ColdMaxEntries = Options.Spec.ColdMaxEntries;
      SPO.HotMinAllocs = Options.Spec.HotMinAllocs;
      SPO.MaxGuards = Options.Spec.MaxGuards;
      SPO.Mode = Options.Mode;
      SPO.Analysis = OptConfig.Analysis;
      SPO.EnableStack = OptConfig.EnableStack;
      SPO.EnableRegion = OptConfig.EnableRegion;
      SPO.Prov = R.Prov.get();
      R.SpecPlan = spec::planSpeculation(*R.Ast, R.Optimized->Root,
                                         R.Optimized->Plan, Branches,
                                         PreProfile, SPO);
      if (R.SpecPlan->anySpeculation()) {
        R.SpecRT = std::make_unique<spec::SpecRuntime>(*R.SpecPlan,
                                                       Options.Spec.Inject);
        RunOpts.Spec = R.SpecRT.get();
      }
      T.span().arg("speculations",
                   static_cast<uint64_t>(R.SpecPlan->Specs.size()));
    }
  }
  // The plan the engines execute: merged (conservative + guarded
  // speculative directives) when the spec tier planned anything.
  const AllocationPlan *ExecPlan =
      R.SpecPlan ? &R.SpecPlan->Merged : &R.Optimized->Plan;

  if (Options.RunOracle) {
    obs::rec::PhaseScope T(&R.PhaseMicros, "claims");
    // The observer hooks live in the tree-walker, and a sound plan must
    // also survive cell-by-cell arena-free validation.
    Engine = ExecutionEngine::TreeWalker;
    RunOpts.ValidateArenaFrees = true;
    EscapeAnalyzer Analyzer(*R.Ast, R.Optimized->Typed, *R.Diags, 512,
                            OptConfig.Analysis);
    R.Oracle = std::make_unique<check::EscapeOracle>(
        *R.Ast, check::buildClaimTable(*R.Ast, R.Optimized->Typed, Analyzer));
    RunOpts.Observer = R.Oracle.get();
    T.span().arg("claims", static_cast<uint64_t>(R.Oracle->claimCount()));
  }
  if (Options.RunLiveOracle) {
    obs::rec::PhaseScope T(&R.PhaseMicros, "live-claims");
    // Touch hooks live in the tree-walker (the VM's fused field reads
    // bypass observers).
    Engine = ExecutionEngine::TreeWalker;
    check::LiveClaims Claims;
    Claims.DeadSites = R.Live->deadSites();
    for (const live::SiteLive &S : R.Live->Sites)
      Claims.SiteLocs.emplace(S.Site->id(), S.Site->loc());
    R.LiveOracle = std::make_unique<check::LivenessOracle>(std::move(Claims));
    if (RunOpts.Observer) {
      R.FanOut = std::make_unique<FanOutObserver>(RunOpts.Observer,
                                                  R.LiveOracle.get());
      RunOpts.Observer = R.FanOut.get();
    } else {
      RunOpts.Observer = R.LiveOracle.get();
    }
    T.span().arg("dead_claims", R.LiveOracle->report().DeadSitesClaimed);
  }
  if (Options.LiveGcPrune && R.Live)
    R.LiveDeadSites = std::make_unique<std::unordered_set<uint32_t>>(
        R.Live->deadSites());

  {
    obs::rec::PhaseScope T(&R.PhaseMicros, "execute");
    if (Engine == ExecutionEngine::Bytecode) {
      T.span().arg("engine", "bytecode");
      R.Code = compileToBytecode(
          *R.Ast, R.Optimized->Root, ExecPlan, *R.Diags,
          R.SpecRT ? &R.SpecPlan->GuardsByBranch : nullptr);
      if (!R.Code)
        return;
      Vm::Options VO;
      VO.HeapCapacity = RunOpts.HeapCapacity;
      VO.AllowHeapGrowth = RunOpts.AllowHeapGrowth;
      VO.MaxSteps = RunOpts.MaxSteps;
      VO.ValidateArenaFrees = RunOpts.ValidateArenaFrees;
      VO.Profiler = RunOpts.Profiler;
      VO.Spec = RunOpts.Spec;
      R.TheVm = std::make_unique<Vm>(*R.Code, *R.Diags, VO);
      if (R.LiveDeadSites)
        R.TheVm->heap().setDeadSites(R.LiveDeadSites.get());
      if (R.SpecRT)
        R.SpecRT->setHeap(&R.TheVm->heap());
      R.Value = R.TheVm->run();
      R.Stats = R.TheVm->stats();
    } else {
      T.span().arg("engine", "tree-walker");
      R.Interp = std::make_unique<Interpreter>(*R.Ast, R.Optimized->Typed,
                                               ExecPlan, *R.Diags, RunOpts);
      if (R.LiveDeadSites)
        R.Interp->heap().setDeadSites(R.LiveDeadSites.get());
      if (R.SpecRT)
        R.SpecRT->setHeap(&R.Interp->heap());
      R.Value = Options.UseLargeStack ? R.Interp->runOnLargeStack()
                                      : R.Interp->run();
      R.Stats = R.Interp->stats();
    }
    T.span().arg("steps", R.Stats.Steps);
  }
  if (obs::metricsEnabled())
    R.Stats.exportTo(obs::globalMetrics());
  if (R.SpecRT && obs::metricsEnabled())
    R.SpecRT->exportTo(obs::globalMetrics());
  if (R.Oracle) {
    R.Oracle->finalize(R.Value ? &*R.Value : nullptr);
    R.Check->Oracle = R.Oracle->report();
    if (obs::metricsEnabled())
      R.Oracle->report().exportTo(obs::globalMetrics());
  }
  if (R.LiveOracle)
    R.LiveOracle->finalize(R.Value ? &*R.Value : nullptr);
  if (!R.Value)
    return;
  R.RenderedValue = renderValue(*R.Value);
  R.Success = !R.Diags->hasErrors();
}

} // namespace

PipelineResult eal::runPipeline(const std::string &Source,
                                const PipelineOptions &Options) {
  const ObservabilityOptions &Obs = Options.Obs;
  if (!Obs.TracePath.empty())
    obs::enableTracing();
  if (!Obs.StatsJsonPath.empty())
    obs::enableMetrics();

  PipelineResult R;

  // Flight-recorder wiring (docs/RECORDER.md). Arm the crash dump
  // before anything can fail, then start the stream: startStream purges
  // the rings, so the recording holds exactly this run's events.
  if (!Obs.RecDumpPath.empty())
    obs::rec::setDumpPath(Obs.RecDumpPath, Obs.Command);
  bool Streaming = false;
  if (!Obs.RecordPath.empty()) {
    obs::rec::StreamOptions SO;
    SO.Path = Obs.RecordPath;
    SO.Binary = Obs.RecordBinary;
    SO.Command = Obs.Command;
    std::string Err;
    if (obs::rec::startStream(SO, &Err))
      Streaming = true;
    else
      R.ObsExportErrors.push_back(Err);
  }
  if (obs::rec::on())
    obs::rec::emit(obs::rec::RecKind::RunBegin,
                   obs::rec::internName(Obs.Command),
                   obs::rec::internName(Options.Engine ==
                                                ExecutionEngine::Bytecode
                                            ? "bytecode"
                                            : "tree-walker"));

  runPipelineImpl(Source, Options, R);

  obs::rec::emit(obs::rec::RecKind::RunEnd, R.Success ? 1 : 0);
  if (obs::rec::on())
    R.Stats.forEachField([](const char *Key, const char *, uint64_t V) {
      obs::rec::finalCounter(Key, V);
    });

  // Exports happen even on failure: a trace of a failed run is exactly
  // what one wants for debugging it. Spans still open at this point (a
  // phase aborted mid-flight) are flushed as complete events first so
  // neither export silently drops them; the flush count is itself
  // exported as the obs.export.dropped_spans counter.
  if (!Obs.TracePath.empty() || !Obs.StatsJsonPath.empty())
    obs::flushOpenSpans();
  if (!Obs.TracePath.empty() && !obs::writeChromeTrace(Obs.TracePath))
    R.ObsExportErrors.push_back("cannot write '" + Obs.TracePath + "'");
  if (!Obs.StatsJsonPath.empty() &&
      !writeStatsJson(Obs.StatsJsonPath, Obs.Command, R))
    R.ObsExportErrors.push_back("cannot write '" + Obs.StatsJsonPath + "'");

  // A failed pipeline is itself a dump trigger (after the final
  // counters so they reach the dump footer); stop the stream last so
  // its footer sees everything, then disarm.
  if (!R.Success)
    obs::rec::dumpNow("run-failed");
  if (Streaming) {
    std::string Err;
    if (!obs::rec::stopStream(&Err))
      R.ObsExportErrors.push_back(Err);
  }
  if (!Obs.RecDumpPath.empty())
    obs::rec::clearDumpPath();
  return R;
}

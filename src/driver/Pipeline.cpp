//===- Pipeline.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "driver/Stdlib.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "runtime/ValuePrinter.h"

using namespace eal;

PipelineResult eal::runPipeline(const std::string &Source,
                                const PipelineOptions &Options) {
  PipelineResult R;
  R.SM = std::make_unique<SourceManager>();
  R.Diags = std::make_unique<DiagnosticEngine>();
  R.Ast = std::make_unique<AstContext>();
  R.Types = std::make_unique<TypeContext>();

  R.SM->setBuffer(Options.IncludeStdlib ? withStdlib(Source) : Source);

  // The parser lexes on the fly, so a standalone lex phase is redundant
  // work; run a counting pre-pass only when a trace is being recorded,
  // where a complete per-phase picture is worth one extra scan.
  if (obs::tracingEnabled()) {
    obs::PhaseTimer T(&R.PhaseMicros, "lex");
    DiagnosticEngine ScratchDiags;
    Lexer L(R.SM->buffer(), ScratchDiags);
    uint64_t Tokens = 0;
    while (L.next().Kind != TokenKind::EndOfFile)
      ++Tokens;
    T.span().arg("tokens", Tokens);
    T.span().arg("bytes", static_cast<uint64_t>(R.SM->buffer().size()));
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "parse");
    Parser P(R.SM->buffer(), *R.Ast, *R.Diags);
    R.ParsedRoot = P.parseProgram();
    T.span().arg("nodes", static_cast<uint64_t>(R.Ast->numNodes()));
  }
  if (!R.ParsedRoot)
    return R;

  {
    obs::PhaseTimer T(&R.PhaseMicros, "type-inference");
    TypeInference TI(*R.Ast, *R.Types, *R.Diags, Options.Mode);
    R.Typed = TI.run(R.ParsedRoot);
  }
  if (!R.Typed)
    return R;

  {
    obs::PhaseTimer T(&R.PhaseMicros, "optimize");
    OptimizerConfig OptConfig = Options.Optimize;
    OptConfig.Mode = Options.Mode;
    R.Optimized = optimizeProgram(*R.Ast, *R.Types, *R.Typed, *R.Diags,
                                  OptConfig, &R.PhaseMicros);
  }
  if (!R.Optimized)
    return R;

  if (!Options.RunProgram) {
    R.Success = !R.Diags->hasErrors();
    return R;
  }

  {
    obs::PhaseTimer T(&R.PhaseMicros, "execute");
    if (Options.Engine == ExecutionEngine::Bytecode) {
      T.span().arg("engine", "bytecode");
      R.Code = compileToBytecode(*R.Ast, R.Optimized->Root,
                                 &R.Optimized->Plan, *R.Diags);
      if (!R.Code)
        return R;
      Vm::Options VO;
      VO.HeapCapacity = Options.Run.HeapCapacity;
      VO.AllowHeapGrowth = Options.Run.AllowHeapGrowth;
      VO.MaxSteps = Options.Run.MaxSteps;
      VO.ValidateArenaFrees = Options.Run.ValidateArenaFrees;
      R.TheVm = std::make_unique<Vm>(*R.Code, *R.Diags, VO);
      R.Value = R.TheVm->run();
      R.Stats = R.TheVm->stats();
    } else {
      T.span().arg("engine", "tree-walker");
      R.Interp = std::make_unique<Interpreter>(*R.Ast, R.Optimized->Typed,
                                               &R.Optimized->Plan, *R.Diags,
                                               Options.Run);
      R.Value = Options.UseLargeStack ? R.Interp->runOnLargeStack()
                                      : R.Interp->run();
      R.Stats = R.Interp->stats();
    }
    T.span().arg("steps", R.Stats.Steps);
  }
  if (obs::metricsEnabled())
    R.Stats.exportTo(obs::globalMetrics());
  if (!R.Value)
    return R;
  R.RenderedValue = renderValue(*R.Value);
  R.Success = !R.Diags->hasErrors();
  return R;
}

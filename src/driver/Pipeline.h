//===- Pipeline.h - Source-to-result driver ---------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call public API: nml source text in; parse, type inference,
/// escape analysis, sharing analysis, optimization, and (optionally)
/// execution out. Examples, tests, and benchmarks are all built on this.
///
/// Typical use:
/// \code
///   eal::PipelineOptions Options;
///   eal::PipelineResult R = eal::runPipeline(Source, Options);
///   if (!R.Success) { /* consult R.diagnostics() */ }
///   std::cout << R.RenderedValue << "\n" << R.Stats.str();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef EAL_DRIVER_PIPELINE_H
#define EAL_DRIVER_PIPELINE_H

#include "check/Linter.h"
#include "check/LiveOracle.h"
#include "check/Oracle.h"
#include "explain/Explain.h"
#include "live/LiveAnalyzer.h"
#include "opt/Optimizer.h"
#include "runtime/Interpreter.h"
#include "spec/SpecReport.h"
#include "vm/Compiler.h"
#include "vm/Vm.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/Trace.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace eal {

namespace prof {
class Profiler;
}

/// Which engine executes the final program.
enum class ExecutionEngine {
  /// The recursive tree-walking interpreter (default).
  TreeWalker,
  /// The bytecode compiler + iterative stack VM (no C++-stack recursion).
  Bytecode,
};

/// Observability routing (docs/OBSERVABILITY.md), honored uniformly by
/// every pipeline entry regardless of which subcommand drives it. The
/// pipeline enables the corresponding obs:: subsystems up front and
/// exports on the way out — including on early-failure paths, since a
/// trace of a failed run is exactly what one wants for debugging it.
/// Export failures land in PipelineResult::ObsExportErrors rather than
/// flipping Success (the run itself may have been fine).
struct ObservabilityOptions {
  /// Record phase spans, fixpoint iterates, GC and arena events, and
  /// write a Chrome trace_event JSON file here. Empty disables tracing.
  std::string TracePath;
  /// Write runtime counters + the metrics registry as an eal-stats-v1
  /// JSON document here. Empty disables metrics.
  std::string StatsJsonPath;
  /// Command name embedded in exported documents ("run", "check", ...).
  std::string Command = "pipeline";
  /// Stream the flight-recorder event feed into this eal-rec-v1 file
  /// (docs/RECORDER.md): NDJSON lines by default, raw binary records
  /// when RecordBinary is set. Streaming enables the per-cell detail
  /// tier for the duration of the run. Empty disables streaming (the
  /// always-on flight buffers keep running either way).
  std::string RecordPath;
  bool RecordBinary = false;
  /// Arm the flight recorder to dump its retained event window here on
  /// the first failure trigger (oracle refutation, liveness refutation,
  /// spec deopt, failed run, SIGABRT). Empty leaves dumping disarmed.
  std::string RecDumpPath;
  /// Allocation-site & hot-path profiler (docs/PROFILING.md), not
  /// owned; routed into whichever engine executes the program. Null
  /// disables profiling.
  prof::Profiler *Profile = nullptr;
};

/// Pipeline configuration.
struct PipelineOptions {
  /// Type discipline (§3.1 monomorphic vs §5 polymorphic).
  TypeInferenceMode Mode = TypeInferenceMode::Polymorphic;
  /// Display name of the source buffer (diagnostics, exported reports).
  std::string SourceName = "<input>";
  /// Splice the standard prelude (src/driver/Stdlib.h) into the program.
  bool IncludeStdlib = false;
  /// Which optimizations to apply.
  OptimizerConfig Optimize;
  /// Whether to execute the final program.
  bool RunProgram = true;
  /// Compile the optimized program to bytecode even when it is not run
  /// on the Bytecode engine (so `eal disasm` and tools can inspect
  /// PipelineResult::Code without executing).
  bool CompileBytecode = false;
  /// Which engine runs it.
  ExecutionEngine Engine = ExecutionEngine::TreeWalker;
  /// Interpreter knobs (heap size, fuel, arena validation).
  Interpreter::Options Run;
  /// Execute on a dedicated big-stack thread (deep recursion needs it).
  bool UseLargeStack = true;
  /// Run the static lints and, once optimization finishes, the
  /// per-allocation "why is this still on the GC heap" explanations.
  /// Findings land in PipelineResult::Check.
  bool RunLint = false;
  /// Record why-provenance through the whole pipeline and build blame
  /// chains for every allocation site (docs/EXPLAIN.md). The report
  /// lands in PipelineResult::Explain; RunLint alone also attaches the
  /// recorder so findings carry Blame arrays, but builds no chains.
  bool RunExplain = false;
  /// Cross-check every static escape claim against the concrete run
  /// (eal::check dynamic oracle). Forces the tree-walker engine (the
  /// observer hooks live there) and arena-free validation; implies the
  /// program is executed. A refuted claim aborts the run with an error.
  bool RunOracle = false;
  /// Run the backward heap-liveness analysis (src/live) over the final
  /// program: per-function demand summaries, per-site demands, and the
  /// EAL-D dead-data findings (appended to PipelineResult::Check). The
  /// report lands in PipelineResult::Live. Observation-only — the plan
  /// and the executed program are untouched, so enabling it cannot
  /// change a program's output.
  bool RunLive = false;
  /// Cross-check every EAL-D001 dead-site claim against the concrete
  /// run (check::LivenessOracle): a field read or result-reachability
  /// of a claimed-dead cell is a violation. Implies RunLive and program
  /// execution; forces the tree-walker engine (the touch hooks live
  /// there). Violations land in PipelineResult::LiveOracle — they do
  /// not abort the run; callers decide.
  bool RunLiveOracle = false;
  /// Arm the one liveness *consumer* that changes runtime behaviour:
  /// the GC consults the dead-site set during marking and skips the
  /// children of claimed-dead cells (Heap::setDeadSites). Requires
  /// RunLive; off by default so the analysis stays observation-only
  /// unless explicitly requested.
  bool LiveGcPrune = false;
  /// The speculative tier (docs/SPECULATION.md). When enabled and the
  /// program is executed, the pipeline first runs a profiling pre-run on
  /// the tree-walker (nml is deterministic with no input, so the pre-run
  /// *is* the real run), then plans guarded speculative directives for
  /// profile-cold branches and executes the merged plan with a
  /// spec::SpecRuntime attached. Requires execution; ignored for
  /// plan-only invocations.
  struct SpeculationOptions {
    bool Enable = false;
    /// Deterministic guard-failure injection (--spec-inject-deopt).
    spec::SpecInjection Inject;
    /// Planner knobs (SpecPlannerOptions mirrors).
    uint64_t ColdMaxEntries = 0;
    uint64_t HotMinAllocs = 8;
    unsigned MaxGuards = 16;
  };
  SpeculationOptions Spec;
  /// Tracing / stats export / profiler routing.
  ObservabilityOptions Obs;
};

/// Everything one pipeline run produces. Owns all contexts, so reports,
/// AST pointers, and the result value stay valid for its lifetime.
struct PipelineResult {
  bool Success = false;

  std::unique_ptr<SourceManager> SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<AstContext> Ast;
  std::unique_ptr<TypeContext> Types;

  /// The parsed (original) program.
  const Expr *ParsedRoot = nullptr;
  /// Types of the original program.
  std::optional<TypedProgram> Typed;
  /// Analysis + transformation output (valid once parsing/typing
  /// succeeded).
  std::optional<OptimizedProgram> Optimized;

  /// The speculative plan (present iff Spec.Enable and the profiling
  /// pre-run succeeded; may hold zero speculations). Declared before
  /// the engines: they hold pointers into Merged, so it must outlive
  /// them (members destroy in reverse order).
  std::optional<spec::SpecPlan> SpecPlan;
  /// The speculative runtime attached to the executing engine (present
  /// iff SpecPlan has at least one speculation).
  std::unique_ptr<spec::SpecRuntime> SpecRT;

  /// The engine (kept alive so Value remains valid) and its result.
  std::unique_ptr<Interpreter> Interp;
  std::optional<Chunk> Code;    ///< bytecode (Bytecode engine only)
  std::unique_ptr<Vm> TheVm;    ///< the VM (Bytecode engine only)
  std::optional<RtValue> Value;
  std::string RenderedValue;
  RuntimeStats Stats;

  /// Lint findings and/or the oracle cross-check report (present iff
  /// RunLint or RunOracle was set).
  std::optional<check::CheckReport> Check;
  /// The why-provenance graph (present iff RunLint or RunExplain was
  /// set; the analyses recorded into it during optimization).
  std::unique_ptr<explain::ProvenanceRecorder> Prov;
  /// Blame chains for every allocation site of the final program
  /// (present iff RunExplain was set; references *Prov).
  std::optional<explain::ExplainReport> Explain;
  /// The live oracle (kept so tests can inspect it; its report is also
  /// copied into Check->Oracle).
  std::unique_ptr<check::EscapeOracle> Oracle;
  /// The liveness analysis report (present iff RunLive / RunLiveOracle
  /// was set).
  std::optional<live::LiveReport> Live;
  /// The dynamic liveness oracle (present iff RunLiveOracle was set;
  /// kept alive so callers can read its report and last-touch map).
  std::unique_ptr<check::LivenessOracle> LiveOracle;
  /// Observer fan-out when both dynamic oracles (or a caller-supplied
  /// observer and an oracle) ride one run.
  std::unique_ptr<ExecutionObserver> FanOut;
  /// The dead-site set handed to the heap under LiveGcPrune (the heap
  /// borrows it, so it must outlive the engine).
  std::unique_ptr<std::unordered_set<uint32_t>> LiveDeadSites;

  /// Wall time of each pipeline phase in run order, as {name, µs}. The
  /// "lex" entry appears only when tracing is enabled (a counting
  /// pre-pass; parsing lexes on the fly); "escape"/"sharing"/"plan"
  /// entries come from inside the "optimize" phase and overlap it.
  obs::PhaseTimer::PhaseTimes PhaseMicros;

  /// Failures of the ObservabilityOptions exports ("cannot write
  /// 'x.json'"); does not affect Success.
  std::vector<std::string> ObsExportErrors;

  /// Rendered diagnostics (empty when clean).
  std::string diagnostics() const {
    return Diags && SM ? Diags->render(*SM) : std::string();
  }
};

/// Runs the pipeline over \p Source.
PipelineResult runPipeline(const std::string &Source,
                           const PipelineOptions &Options = PipelineOptions());

} // namespace eal

#endif // EAL_DRIVER_PIPELINE_H

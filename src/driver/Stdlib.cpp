//===- Stdlib.cpp ---------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Stdlib.h"

#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <set>
#include <sstream>
#include <vector>

using namespace eal;

namespace {

/// One stdlib binding: name plus full binding text.
struct StdBinding {
  const char *Name;
  const char *Text;
};

const StdBinding Bindings[] = {
    {"append", "append x y = if (null x) then y\n"
               "             else cons (car x) (append (cdr x) y)"},
    {"map", "map f l = if (null l) then nil\n"
            "          else cons (f (car l)) (map f (cdr l))"},
    {"filter", "filter p l = if (null l) then nil\n"
               "             else if p (car l)\n"
               "                  then cons (car l) (filter p (cdr l))\n"
               "                  else filter p (cdr l)"},
    {"foldr", "foldr f z l = if (null l) then z\n"
              "              else f (car l) (foldr f z (cdr l))"},
    {"foldl", "foldl f z l = if (null l) then z\n"
              "              else foldl f (f z (car l)) (cdr l)"},
    {"length", "length l = if (null l) then 0 else 1 + length (cdr l)"},
    {"sum", "sum l = if (null l) then 0 else car l + sum (cdr l)"},
    {"reverse", "reverse l = letrec revgo acc r = if (null r) then acc\n"
                "                   else revgo (cons (car r) acc) (cdr r)\n"
                "            in revgo nil l"},
    {"take", "take n l = if n = 0 then nil else if (null l) then nil\n"
             "           else cons (car l) (take (n - 1) (cdr l))"},
    {"drop", "drop n l = if n = 0 then l else if (null l) then nil\n"
             "           else drop (n - 1) (cdr l)"},
    {"nth", "nth n l = if n = 0 then car l else nth (n - 1) (cdr l)"},
    {"last", "last l = if (null (cdr l)) then car l else last (cdr l)"},
    {"snoc", "snoc l v = if (null l) then cons v nil\n"
             "           else cons (car l) (snoc (cdr l) v)"},
    {"zip", "zip a b = if (null a) then nil else if (null b) then nil\n"
            "          else cons (car a, car b) (zip (cdr a) (cdr b))"},
    {"unzipfst", "unzipfst l = if (null l) then nil\n"
                 "             else cons (fst (car l)) (unzipfst (cdr l))"},
    {"unzipsnd", "unzipsnd l = if (null l) then nil\n"
                 "             else cons (snd (car l)) (unzipsnd (cdr l))"},
    {"range", "range a b = if b <= a then nil\n"
              "            else cons a (range (a + 1) b)"},
    {"repeatv", "repeatv n v = if n = 0 then nil\n"
                "              else cons v (repeatv (n - 1) v)"},
    {"all", "all p l = if (null l) then true\n"
            "          else if p (car l) then all p (cdr l) else false"},
    {"any", "any p l = if (null l) then false\n"
            "          else if p (car l) then true else any p (cdr l)"},
    {"member", "member v l = if (null l) then false\n"
               "             else if car l = v then true\n"
               "             else member v (cdr l)"},
    {"insertsorted", "insertsorted v l = if (null l) then cons v nil\n"
                     "       else if v <= car l then cons v l\n"
                     "       else cons (car l) (insertsorted v (cdr l))"},
    {"isort", "isort l = if (null l) then nil\n"
              "          else insertsorted (car l) (isort (cdr l))"},
    {"maximum", "maximum l = if (null (cdr l)) then car l\n"
                "            else if car l > maximum (cdr l)\n"
                "                 then car l else maximum (cdr l)"},
};

/// Top-level binding names of `letrec ... in ...` source (the same
/// prescan discipline the parser uses).
std::set<std::string> topLevelNames(const std::string &Source,
                                    bool &StartsWithLetrec,
                                    size_t &LetrecEnd) {
  std::set<std::string> Names;
  StartsWithLetrec = false;
  LetrecEnd = 0;
  DiagnosticEngine Diags;
  Lexer Lex(Source, Diags);
  Token First = Lex.next();
  if (!First.is(TokenKind::KwLetrec))
    return Names;
  StartsWithLetrec = true;
  LetrecEnd = First.Range.End.offset();
  bool AtBindingStart = true;
  unsigned Depth = 0;
  for (;;) {
    Token Tok = Lex.next();
    if (Tok.is(TokenKind::EndOfFile) || Tok.is(TokenKind::Error))
      break;
    if (Tok.is(TokenKind::KwLetrec) || Tok.is(TokenKind::KwLet))
      ++Depth;
    if (Tok.is(TokenKind::KwIn)) {
      if (Depth == 0)
        break;
      --Depth;
    }
    if (AtBindingStart && Depth == 0 && Tok.is(TokenKind::Identifier))
      Names.emplace(Tok.Spelling);
    AtBindingStart = Depth == 0 && Tok.is(TokenKind::Semicolon);
  }
  return Names;
}

} // namespace

const char *eal::stdlibBindings() {
  static const std::string Joined = [] {
    std::ostringstream OS;
    bool FirstBinding = true;
    for (const StdBinding &B : Bindings) {
      if (!FirstBinding)
        OS << ";\n  ";
      FirstBinding = false;
      OS << B.Text;
    }
    return OS.str();
  }();
  return Joined.c_str();
}

std::vector<std::string_view> eal::stdlibBindingNames() {
  std::vector<std::string_view> Names;
  for (const StdBinding &B : Bindings)
    Names.emplace_back(B.Name);
  return Names;
}

std::string eal::withStdlib(const std::string &UserSource) {
  bool StartsWithLetrec = false;
  size_t LetrecEnd = 0;
  std::set<std::string> UserNames =
      topLevelNames(UserSource, StartsWithLetrec, LetrecEnd);

  std::ostringstream Prelude;
  bool FirstBinding = true;
  for (const StdBinding &B : Bindings) {
    if (UserNames.count(B.Name))
      continue; // the user's definition wins
    if (!FirstBinding)
      Prelude << ";\n  ";
    FirstBinding = false;
    Prelude << B.Text;
  }
  std::string PreludeText = Prelude.str();
  if (PreludeText.empty())
    return UserSource;

  if (StartsWithLetrec)
    // letrec <stdlib>; <user bindings> in <body>
    return "letrec\n  " + PreludeText + ";\n" +
           UserSource.substr(LetrecEnd);
  return "letrec\n  " + PreludeText + "\nin " + UserSource;
}

//===- Stdlib.h - the nml standard prelude ----------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A standard prelude of list functions — the vocabulary the paper's
/// introduction motivates (append, map, reduce, length, ...). Programs
/// run through the pipeline with `IncludeStdlib` get these bindings
/// spliced into their top-level letrec; unused bindings cost nothing at
/// run time (closures are built once) and the analyzer reports on all of
/// them, which the stdlib example and bench use.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_DRIVER_STDLIB_H
#define EAL_DRIVER_STDLIB_H

#include <string>
#include <string_view>
#include <vector>

namespace eal {

/// Returns the prelude's letrec bindings (no `letrec`/`in`, ends without
/// a trailing semicolon) so they can be spliced ahead of user bindings.
const char *stdlibBindings();

/// The names the prelude binds, in splice order. The linter exempts them
/// from unused-binding diagnostics (a program rarely uses the whole
/// prelude) when the pipeline splices the stdlib.
std::vector<std::string_view> stdlibBindingNames();

/// Wraps \p UserSource with the prelude: if the user program is
/// `letrec B in e`, produces `letrec <stdlib>; B in e`; otherwise
/// produces `letrec <stdlib> in <UserSource>`. Purely textual (the
/// result is reparsed), so user bindings shadow stdlib names naturally.
std::string withStdlib(const std::string &UserSource);

} // namespace eal

#endif // EAL_DRIVER_STDLIB_H

//===- BasicEscape.h - The basic escape domain B_e --------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The basic escape domain B_e of §3.2/§3.4: the chain
///
///   ⟨0,0⟩ ⊑ ⟨1,0⟩ ⊑ ⟨1,1⟩ ⊑ ... ⊑ ⟨1,d⟩
///
/// where d is the per-program spine bound. ⟨0,0⟩ means no part of the
/// interesting object may be contained in a value; ⟨1,i⟩ means the bottom
/// i spines of the interesting object may be contained (i = 0 for an
/// indivisible, non-list interesting object).
///
/// The `sub^s` operator implements the abstract semantics of car^s: when a
/// list with s spines contains exactly the bottom s spines of the
/// interesting object, taking its car strips the top one.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_ESCAPE_BASICESCAPE_H
#define EAL_ESCAPE_BASICESCAPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace eal {

/// An element of B_e. The representation packs the pair ⟨contained, i⟩.
class BasicEscape {
public:
  /// Constructs ⟨0,0⟩.
  constexpr BasicEscape() = default;

  /// Returns ⟨0,0⟩: no part of the interesting object is contained.
  static constexpr BasicEscape none() { return BasicEscape(); }

  /// Returns ⟨1,i⟩: the bottom \p Spines spines of the interesting object
  /// may be contained.
  static constexpr BasicEscape contained(unsigned Spines) {
    BasicEscape B;
    B.IsContained = true;
    B.NumSpines = static_cast<uint8_t>(Spines);
    return B;
  }

  /// True for ⟨1,i⟩, false for ⟨0,0⟩.
  bool isContained() const { return IsContained; }

  /// The i of ⟨1,i⟩ (0 for ⟨0,0⟩).
  unsigned spines() const { return NumSpines; }

  /// Least upper bound in the chain.
  friend BasicEscape join(BasicEscape A, BasicEscape B) {
    if (!A.IsContained)
      return B;
    if (!B.IsContained)
      return A;
    return contained(A.NumSpines > B.NumSpines ? A.NumSpines : B.NumSpines);
  }

  /// Partial (here: total) order of the chain.
  friend bool operator<=(BasicEscape A, BasicEscape B) {
    if (!A.IsContained)
      return true;
    return B.IsContained && A.NumSpines <= B.NumSpines;
  }

  friend bool operator==(BasicEscape A, BasicEscape B) {
    return A.IsContained == B.IsContained && A.NumSpines == B.NumSpines;
  }
  friend bool operator!=(BasicEscape A, BasicEscape B) { return !(A == B); }

  /// The abstract effect of car^s (§3.4) on the ground component: if this
  /// value records exactly ⟨1,s⟩ — the s-th bottom spine of the
  /// interesting object is part of the list's top spine — car strips one
  /// spine; otherwise the value is unchanged. s may not be smaller than
  /// the recorded spine count (a list with s spines cannot contain a list
  /// with more).
  BasicEscape sub(unsigned S) const {
    assert(S >= 1 && "car is only applied to lists");
    if (!IsContained || NumSpines != S)
      return *this;
    return contained(NumSpines - 1);
  }

  /// Renders "⟨0,0⟩" or "⟨1,i⟩" (ASCII variant "<0,0>").
  std::string str() const {
    return std::string("<") + (IsContained ? "1" : "0") + "," +
           std::to_string(NumSpines) + ">";
  }

  /// A small integer encoding, usable as a hash and total order.
  unsigned encoding() const {
    return IsContained ? 1u + NumSpines : 0u;
  }

private:
  bool IsContained = false;
  uint8_t NumSpines = 0;
};

} // namespace eal

#endif // EAL_ESCAPE_BASICESCAPE_H

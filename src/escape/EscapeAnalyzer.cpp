//===- EscapeAnalyzer.cpp -------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeAnalyzer.h"

#include "lang/AstUtils.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>
#include <sstream>

using namespace eal;

EscapeAnalyzer::EscapeAnalyzer(const AstContext &Ast,
                               const TypedProgram &Program,
                               DiagnosticEngine &Diags, unsigned MaxRounds,
                               EscapeAnalysisMode Mode)
    : Ast(Ast), Program(Program), Diags(Diags), MaxRounds(MaxRounds),
      Mode(Mode) {
  // When a trace is being recorded, the per-binding iterates (the
  // append^(k) tables of Appendix A.1) are part of what it should show.
  if (obs::tracingEnabled())
    Tracing = true;
}

unsigned EscapeAnalyzer::modeSpineCount(const Type *T) const {
  return Mode == EscapeAnalysisMode::WholeObject ? 0 : spineCount(T);
}

void EscapeAnalyzer::attachProvenance(explain::ProvenanceRecorder *P) {
  Prov = P;
  if (P) {
    ProvBindingNs = P->allocNamespace();
    ProvApplyNs = P->allocNamespace();
    ProvGlobalNs = P->allocNamespace();
    ProvLocalNs = P->allocNamespace();
  }
}

//===----------------------------------------------------------------------===//
// Fixpoint driver
//===----------------------------------------------------------------------===//

ValueId EscapeAnalyzer::runToFixpoint(const std::function<ValueId()> &Root) {
  ValueId Result = Store.bottom();
  LastRounds = 0;
  if (Tracing)
    RoundChanges.clear();
  do {
    Changed = false;
    ChangedThisRound = 0;
    ++CurrentRound;
    ++LastRounds;
    if (LastRounds > MaxRounds) {
      HitLimit = true;
      Diags.error(SourceLoc::invalid(),
                  "escape analysis exceeded " + std::to_string(MaxRounds) +
                      " fixpoint rounds; result is conservative");
      break;
    }
    Result = Root();
    // Convergence telemetry: how many cache entries moved up the lattice
    // this round (the final, stable round records 0).
    if (Tracing) {
      RoundChanges.push_back(ChangedThisRound);
      if (obs::tracingEnabled())
        obs::instant("fixpoint.round", "fixpoint",
                     {{"round", std::to_string(LastRounds)},
                      {"changed_vars", std::to_string(ChangedThisRound)}});
    }
  } while (Changed);
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry &Reg = obs::globalMetrics();
    Reg.counter("escape.queries").add(1);
    Reg.histogram("escape.fixpoint.rounds_per_query").record(LastRounds);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Environments and letrec bindings
//===----------------------------------------------------------------------===//

const std::vector<Symbol> &EscapeAnalyzer::freeVarsOf(const Expr *E) {
  auto It = FreeVarCache.find(E->id());
  if (It != FreeVarCache.end())
    return It->second;
  return FreeVarCache.emplace(E->id(), freeVariables(E)).first->second;
}

EnvId EscapeAnalyzer::letrecBodyEnv(LetrecInstId Inst) {
  const LetrecInst &LI = Store.letrecInst(Inst);
  EnvId Env = LI.Outer;
  auto Bindings = LI.Node->bindings();
  for (uint32_t I = 0; I != Bindings.size(); ++I) {
    EnvBinding B;
    B.Name = Bindings[I].Name;
    B.Kind = EnvBindingKind::LetrecRef;
    B.Inst = Inst;
    B.Index = I;
    Env = Store.extend(Env, B);
  }
  return Env;
}

ValueId EscapeAnalyzer::materializeBinding(LetrecInstId Inst, uint32_t Index) {
  uint64_t Key = (static_cast<uint64_t>(Inst) << 32) | Index;
  CacheEntry &Entry = BindingCache[Key];
  uint32_t PF = explain::NoFact;
  if (Prov) {
    PF = Prov->lookup(explain::FactKind::Binding, ProvBindingNs, Key);
    if (PF == explain::NoFact) {
      const LetrecBinding &B = Store.letrecInst(Inst).Node->bindings()[Index];
      PF = Prov->create(explain::FactKind::Binding, ProvBindingNs, Key,
                        std::string(Ast.spelling(B.Name)),
                        "letrec-fix (§3.5)", B.Value->loc());
    }
    Prov->read(PF);
  }
  if (Entry.InProgress || Entry.Round == CurrentRound)
    return Entry.Val;
  Entry.Round = CurrentRound;
  Entry.InProgress = true;
  if (Prov)
    Prov->open(PF);
  const LetrecInst &LI = Store.letrecInst(Inst);
  ValueId New = eval(LI.Node->bindings()[Index].Value, letrecBodyEnv(Inst));
  New = Store.joinValues(Entry.Val, New);
  bool BindingChanged = New != Entry.Val;
  if (BindingChanged) {
    Entry.Val = New;
    Changed = true;
    ++ChangedThisRound;
    if (Prov)
      Prov->raise(PF, LastRounds, Store.str(New));
  }
  if (Prov) {
    Prov->result(PF, Store.str(Entry.Val));
    Prov->close(PF);
  }
  Entry.InProgress = false;
  if (Tracing) {
    FixpointTraceEntry TE;
    TE.Binding = LI.Node->bindings()[Index].Name;
    TE.Round = LastRounds;
    TE.Value = Store.str(Entry.Val);
    TE.Changed = BindingChanged;
    if (obs::tracingEnabled())
      obs::instant("fixpoint.iterate", "fixpoint",
                   {{"binding",
                     obs::jsonQuote(Ast.spelling(TE.Binding))},
                    {"round", std::to_string(TE.Round)},
                    {"value", obs::jsonQuote(TE.Value)},
                    {"changed", TE.Changed ? "true" : "false"}});
    Trace.push_back(std::move(TE));
  }
  return Entry.Val;
}

std::string EscapeAnalyzer::renderTrace() const {
  std::ostringstream OS;
  for (const FixpointTraceEntry &TE : Trace)
    OS << Ast.spelling(TE.Binding) << "^(" << TE.Round
       << ") = " << TE.Value << (TE.Changed ? "  (changed)" : "  (stable)")
       << '\n';
  return OS.str();
}

ValueId EscapeAnalyzer::resolveBinding(const EnvBinding &Binding) {
  if (Binding.Kind == EnvBindingKind::Value)
    return Binding.Val;
  return materializeBinding(Binding.Inst, Binding.Index);
}

EnvId EscapeAnalyzer::topEnv() {
  if (CachedTopEnv)
    return *CachedTopEnv;
  EnvId Env = Store.emptyEnv();
  if (const auto *Letrec = dyn_cast<LetrecExpr>(Program.root())) {
    LetrecInstId Inst = Store.internLetrecInst(Letrec, Store.emptyEnv());
    Env = letrecBodyEnv(Inst);
  }
  CachedTopEnv = Env;
  return Env;
}

//===----------------------------------------------------------------------===//
// Abstract evaluation (the E of §3.4)
//===----------------------------------------------------------------------===//

BasicEscape EscapeAnalyzer::closureGround(const LambdaExpr *Lambda,
                                          EnvId Env) {
  // V = ⟨0,0⟩ ⊔ ⨆_{z ∈ F} (env z)₍₁₎ where F is the set of free
  // identifiers of the lambda.
  BasicEscape V = BasicEscape::none();
  for (Symbol Name : freeVarsOf(Lambda)) {
    const EnvBinding *B = Store.lookup(Env, Name);
    if (!B)
      continue; // unbound: only possible in ill-typed fragments
    V = join(V, Store.ground(resolveBinding(*B)));
  }
  return V;
}

ValueId EscapeAnalyzer::eval(const Expr *E, EnvId Env) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
    // C[c] = ⟨⟨0,0⟩, err⟩; nil is ⊥ of its element domain.
    return Store.bottom();

  case ExprKind::Var: {
    const auto *Var = cast<VarExpr>(E);
    const EnvBinding *B = Store.lookup(Env, Var->name());
    if (!B) {
      Diags.error(E->loc(), "escape analysis: unbound identifier '" +
                                std::string(Ast.spelling(Var->name())) + "'");
      return Store.bottom();
    }
    return resolveBinding(*B);
  }

  case ExprKind::Prim: {
    const auto *Prim = cast<PrimExpr>(E);
    // Whole-object mode erases spine grading: car behaves like cdr
    // (identity), encoded as car^0.
    unsigned CarSpines = 0;
    if (Prim->op() == PrimOp::Car &&
        Mode == EscapeAnalysisMode::SpineAware)
      CarSpines = Program.carSpine(E);
    return Store.makePrim(Prim->op(), CarSpines);
  }

  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    ValueId Fn = eval(App->fn(), Env);
    ValueId Arg = eval(App->arg(), Env);
    return apply(Fn, Arg);
  }

  case ExprKind::Lambda: {
    const auto *Lambda = cast<LambdaExpr>(E);
    BasicEscape V = closureGround(Lambda, Env);
    EnvId Restricted = Store.restrict(Env, freeVarsOf(Lambda));
    return Store.makeClosure(V, Lambda, Restricted);
  }

  case ExprKind::If: {
    // Both branches may be taken at compile time: join them (§3.4). The
    // condition is boolean and contributes nothing to the result.
    const auto *If = cast<IfExpr>(E);
    (void)eval(If->cond(), Env);
    ValueId Then = eval(If->thenExpr(), Env);
    ValueId Else = eval(If->elseExpr(), Env);
    return Store.joinValues(Then, Else);
  }

  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    ValueId Value = eval(Let->value(), Env);
    EnvBinding B;
    B.Name = Let->name();
    B.Kind = EnvBindingKind::Value;
    B.Val = Value;
    return eval(Let->body(), Store.extend(Env, B));
  }

  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    EnvId Outer = Store.restrict(Env, freeVarsOf(Letrec));
    LetrecInstId Inst = Store.internLetrecInst(Letrec, Outer);
    return eval(Letrec->body(), letrecBodyEnv(Inst));
  }
  }
  assert(false && "unhandled expression kind");
  return Store.bottom();
}

ValueId EscapeAnalyzer::apply(ValueId Fn, ValueId Arg) {
  const EscapeValue &Value = Store.value(Fn);
  // err applied: the standard semantics would be stuck, so ⊥ is safe.
  ValueId Result = Store.bottom();
  // Copy the atom list: applying atoms may intern new values and
  // invalidate the reference.
  std::vector<FnAtomId> Atoms = Value.Fns;
  for (FnAtomId Atom : Atoms)
    Result = Store.joinValues(Result, applyAtom(Atom, Arg));
  return Result;
}

ValueId EscapeAnalyzer::applyAtom(FnAtomId AtomId, ValueId Arg) {
  FnAtom Atom = Store.atom(AtomId); // copy: interning may reallocate
  switch (Atom.Kind) {
  case FnAtomKind::Prim:
    return applyPrim(Atom, Arg);
  case FnAtomKind::Worst:
    return applyWorst(Atom, Arg);
  case FnAtomKind::Pair:
    // Pairs are data, not functions; applying one is ill-typed and can
    // only arise transiently through joins. Bottom is safe (stuck).
    return Store.bottom();
  case FnAtomKind::Closure: {
    if (ApplyDepth >= MaxApplyDepth) {
      // A chain this deep means every level was a fresh (closure, arg)
      // cache key — a recursive function rebuilding a function argument
      // at each call. Widen the closure to W^τ ⊔ its captured ground
      // (Definition 2): above anything the closure's body can compute,
      // so the result is sound, and no new closures get interned, which
      // restores the finiteness the fixpoint termination argument needs.
      FnAtom W;
      W.Kind = FnAtomKind::Worst;
      W.WorstType = Program.typeOf(Atom.Lambda);
      W.WorstAcc = closureGround(Atom.Lambda, Atom.Env);
      ++Widenings;
      if (obs::metricsEnabled())
        obs::globalMetrics().counter("escape.apply.widenings").add(1);
      return applyWorst(W, Arg);
    }
    uint64_t Key = (static_cast<uint64_t>(AtomId) << 32) | Arg;
    CacheEntry &Entry = ApplyCache[Key];
    uint32_t PF = explain::NoFact;
    if (Prov) {
      PF = Prov->lookup(explain::FactKind::Apply, ProvApplyNs, Key);
      if (PF == explain::NoFact)
        PF = Prov->create(explain::FactKind::Apply, ProvApplyNs, Key,
                          "apply λ" +
                              std::string(Ast.spelling(Atom.Lambda->param())) +
                              " to " + Store.str(Arg),
                          "closure-apply (§3.4)", Atom.Lambda->loc());
      Prov->read(PF);
    }
    if (Entry.InProgress || Entry.Round == CurrentRound)
      return Entry.Val;
    Entry.Round = CurrentRound;
    Entry.InProgress = true;
    if (Prov)
      Prov->open(PF);
    EnvBinding B;
    B.Name = Atom.Lambda->param();
    B.Kind = EnvBindingKind::Value;
    B.Val = Arg;
    ++ApplyDepth;
    ValueId New = eval(Atom.Lambda->body(), Store.extend(Atom.Env, B));
    --ApplyDepth;
    New = Store.joinValues(Entry.Val, New);
    if (New != Entry.Val) {
      Entry.Val = New;
      Changed = true;
      ++ChangedThisRound;
      if (Prov)
        Prov->raise(PF, LastRounds, Store.str(New));
    }
    if (Prov) {
      Prov->result(PF, Store.str(Entry.Val));
      Prov->close(PF);
    }
    Entry.InProgress = false;
    return Entry.Val;
  }
  }
  assert(false && "unhandled atom kind");
  return Store.bottom();
}

ValueId EscapeAnalyzer::applyPrim(const FnAtom &Atom, ValueId Arg) {
  unsigned Arity = primOpArity(Atom.Op);
  unsigned Have = static_cast<unsigned>(Atom.Partial.size());
  assert(Have < Arity && "over-applied primitive");

  if (Have + 1 < Arity) {
    // Partial application: ⟨⊔ grounds of consumed args, continuation⟩
    // (C[cons] x = ⟨x₍₁₎, λy. x ⊔ y⟩ and likewise for +, -, =, dcons).
    FnAtom Next = Atom;
    Next.Partial.push_back(Arg);
    BasicEscape Ground = BasicEscape::none();
    for (ValueId V : Next.Partial)
      Ground = join(Ground, Store.ground(V));
    return Store.makeValue(Ground, {Store.internAtom(std::move(Next))});
  }

  // Fully applied.
  switch (Atom.Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod:
  case PrimOp::Eq:
  case PrimOp::Ne:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge:
  case PrimOp::Not:
  case PrimOp::Null:
    // Scalar result: contains no part of any interesting object.
    return Store.bottom();
  case PrimOp::Cons:
    // C[cons] = ⟨⟨0,0⟩, λx.⟨x₍₁₎, λy. x ⊔ y⟩⟩ (§3.4).
    return Store.joinValues(Atom.Partial[0], Arg);
  case PrimOp::Car: {
    // C[car^s] = sub^s: strips one spine when the argument's top spine is
    // the s-th bottom spine of the interesting object; the function
    // component is kept (z₍₂₎ unchanged). car^0 (whole-object baseline)
    // is the identity.
    if (Atom.CarSpines == 0)
      return Arg;
    const EscapeValue &Z = Store.value(Arg);
    return Store.makeValue(Z.Ground.sub(Atom.CarSpines), Z.Fns);
  }
  case PrimOp::Cdr:
    // D_e^{τ list} = D_e^τ: the abstract cdr is the identity.
    return Arg;
  case PrimOp::DCons:
    // dcons p b c returns the (reused) cell of p holding b and c: the
    // result may contain parts of all three.
    return Store.joinValues(Atom.Partial[0],
                            Store.joinValues(Atom.Partial[1], Arg));
  case PrimOp::MkPair:
    // Pairs keep their components precisely (the §1 tuple extension):
    // ground is the join (both are contained), components are projectable.
    return Store.makePairValue(Atom.Partial[0], Arg);
  case PrimOp::Fst:
  case PrimOp::Snd: {
    // Project pair atoms precisely. The ground component needs care: a
    // pair built by mkpair carries exactly the join of its components'
    // grounds, so projecting may *drop* the other component's
    // contribution — but only when the atoms fully account for the
    // value's ground. Any excess (an unknown pair such as a worst-case
    // result, or a re-grounded local-test value) is kept conservatively.
    // Non-pair atoms are kept too: sound when joins mix provenance.
    const EscapeValue Z = Store.value(Arg); // copy: interning below
    BasicEscape Accounted = BasicEscape::none();
    std::vector<FnAtomId> Kept;
    ValueId R = Store.bottom();
    for (FnAtomId AtomId : Z.Fns) {
      const FnAtom &A = Store.atom(AtomId);
      if (A.Kind == FnAtomKind::Pair) {
        Accounted = join(Accounted, join(Store.ground(A.Partial[0]),
                                         Store.ground(A.Partial[1])));
        R = Store.joinValues(R,
                             A.Partial[Atom.Op == PrimOp::Fst ? 0 : 1]);
      } else {
        Kept.push_back(AtomId);
      }
    }
    BasicEscape Residue =
        Z.Ground <= Accounted ? BasicEscape::none() : Z.Ground;
    return Store.joinValues(R, Store.makeValue(Residue, std::move(Kept)));
  }
  }
  assert(false && "unhandled primitive");
  return Store.bottom();
}

ValueId EscapeAnalyzer::applyWorst(const FnAtom &Atom, ValueId Arg) {
  // W^τ = λx1.⟨x1₍₁₎, λx2.⟨x1₍₁₎ ⊔ x2₍₁₎, ...⟩⟩ (Definition 2): every
  // argument's ground escapes into the result at every stage.
  const auto *Fun = cast<FunType>(Atom.WorstType);
  BasicEscape Acc = join(Atom.WorstAcc, Store.ground(Arg));
  // The continuation carries the worst-case atoms of the result type:
  // function cores keep accepting arguments; pairs contribute both
  // components (so a closure hidden in a returned tuple stays
  // applicable).
  std::vector<FnAtomId> Next;
  Store.collectWorstAtoms(Fun->result(), Acc, Next);
  return Store.makeValue(Acc, std::move(Next));
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

ValueId EscapeAnalyzer::evaluate(const Expr *E) {
  return runToFixpoint([&] { return eval(E, topEnv()); });
}

std::vector<const Type *> EscapeAnalyzer::paramTypes(const Type *FnType,
                                                     unsigned Arity) {
  std::vector<const Type *> Params;
  const Type *T = FnType;
  for (unsigned I = 0; I != Arity; ++I) {
    const auto *Fun = cast<FunType>(T);
    Params.push_back(Fun->param());
    T = Fun->result();
  }
  return Params;
}

ValueId EscapeAnalyzer::worstArg(BasicEscape Ground, const Type *T) {
  return Store.makeWorst(Ground, T);
}

std::optional<ParamEscape> EscapeAnalyzer::globalEscape(Symbol Fn,
                                                        unsigned ParamIndex) {
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec)
    return std::nullopt;
  auto Bindings = Letrec->bindings();
  uint32_t Index = 0;
  const LetrecBinding *Binding = nullptr;
  for (uint32_t I = 0; I != Bindings.size(); ++I)
    if (Bindings[I].Name == Fn) {
      Binding = &Bindings[I];
      Index = I;
      break;
    }
  if (!Binding)
    return std::nullopt;
  unsigned Arity = lambdaArity(Binding->Value);
  if (ParamIndex >= Arity)
    return std::nullopt;

  std::vector<const Type *> Params =
      paramTypes(Program.typeOf(Binding->Value), Arity);
  unsigned InterestingSpines = modeSpineCount(Params[ParamIndex]);

  LetrecInstId TopInst = Store.internLetrecInst(Letrec, Store.emptyEnv());
  uint32_t QF = explain::NoFact;
  if (Prov) {
    uint64_t Key = (static_cast<uint64_t>(Fn.id()) << 32) | ParamIndex;
    QF = Prov->lookup(explain::FactKind::Query, ProvGlobalNs, Key);
    if (QF == explain::NoFact)
      QF = Prov->create(explain::FactKind::Query, ProvGlobalNs, Key,
                        "G(" + std::string(Ast.spelling(Fn)) + ", " +
                            std::to_string(ParamIndex + 1) + ")",
                        "global escape test G (§4.1)", Binding->Value->loc());
    Prov->read(QF);
    Prov->open(QF);
  }
  ValueId Result = runToFixpoint([&] {
    ValueId F = materializeBinding(TopInst, Index);
    for (unsigned J = 0; J != Arity; ++J) {
      BasicEscape Ground = J == ParamIndex
                               ? BasicEscape::contained(InterestingSpines)
                               : BasicEscape::none();
      F = apply(F, worstArg(Ground, Params[J]));
    }
    return F;
  });

  ParamEscape PE;
  PE.Prov = QF;
  PE.Function = Fn;
  PE.ParamIndex = ParamIndex;
  PE.ParamType = Params[ParamIndex];
  PE.ParamSpines = InterestingSpines;
  PE.Escape = Store.ground(Result);
  if (Mode == EscapeAnalysisMode::WholeObject) {
    // All-or-nothing over the real structure: either every spine escapes
    // or none does.
    PE.ParamSpines = spineCount(Params[ParamIndex]);
    PE.Escape = PE.Escape.isContained()
                    ? BasicEscape::contained(PE.ParamSpines)
                    : BasicEscape::none();
  }
  if (Prov) {
    Prov->result(QF, PE.Escape.str());
    Prov->close(QF);
  }
  return PE;
}

std::optional<ParamEscape> EscapeAnalyzer::localEscape(const Expr *CallSite,
                                                       unsigned ParamIndex) {
  return localEscapeUnder(CallSite, ParamIndex, topEnv());
}

std::optional<ParamEscape>
EscapeAnalyzer::localEscapeInContext(const Expr *CallSite,
                                     unsigned ParamIndex) {
  // Bind enclosing (non-top-level) free variables to ⟨⟨0,0⟩, W^τ⟩.
  EnvId Env = topEnv();
  for (Symbol Free : freeVariables(CallSite)) {
    if (Store.lookup(Env, Free))
      continue;
    // Recover the variable's type from an occurrence. If the same name
    // is also *bound* somewhere inside the call, an occurrence we find
    // might be the shadowed one with a different type; give up then
    // (callers fall back to the global test).
    bool Rebound = false;
    forEachExpr(CallSite, [&](const Expr *E) {
      if (const auto *Lambda = dyn_cast<LambdaExpr>(E))
        Rebound = Rebound || Lambda->param() == Free;
      else if (const auto *Let = dyn_cast<LetExpr>(E))
        Rebound = Rebound || Let->name() == Free;
      else if (const auto *Letrec = dyn_cast<LetrecExpr>(E))
        Rebound = Rebound || Letrec->findBinding(Free) != nullptr;
    });
    if (Rebound)
      return std::nullopt;
    const Type *VarType = nullptr;
    forEachExpr(CallSite, [&](const Expr *E) {
      if (VarType)
        return;
      const auto *Var = dyn_cast<VarExpr>(E);
      if (Var && Var->name() == Free)
        VarType = Program.typeOf(E);
    });
    if (!VarType)
      return std::nullopt;
    EnvBinding B;
    B.Name = Free;
    B.Kind = EnvBindingKind::Value;
    B.Val = Store.makeWorst(BasicEscape::none(), VarType);
    Env = Store.extend(Env, B);
  }
  return localEscapeUnder(CallSite, ParamIndex, Env);
}

std::optional<ParamEscape>
EscapeAnalyzer::localEscapeUnder(const Expr *CallSite, unsigned ParamIndex,
                                 EnvId Env) {
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(CallSite, Args);
  if (Args.empty() || ParamIndex >= Args.size())
    return std::nullopt;

  unsigned InterestingSpines =
      modeSpineCount(Program.typeOf(Args[ParamIndex]));

  Symbol CalleeName;
  if (const auto *Var = dyn_cast<VarExpr>(Callee))
    CalleeName = Var->name();

  uint32_t QF = explain::NoFact;
  if (Prov) {
    uint64_t Key = (static_cast<uint64_t>(CallSite->id()) << 32) | ParamIndex;
    QF = Prov->lookup(explain::FactKind::Query, ProvLocalNs, Key);
    if (QF == explain::NoFact)
      QF = Prov->create(explain::FactKind::Query, ProvLocalNs, Key,
                        "L(" +
                            (CalleeName.isValid()
                                 ? std::string(Ast.spelling(CalleeName))
                                 : std::string("<fn>")) +
                            ", " + std::to_string(ParamIndex + 1) + ")",
                        "local escape test L (§4.2)", CallSite->loc());
    Prov->read(QF);
    Prov->open(QF);
  }

  ValueId Result = runToFixpoint([&] {
    ValueId F = eval(Callee, Env);
    for (unsigned J = 0; J != Args.size(); ++J) {
      // z_j = ⟨j == i ? ⟨1,s_i⟩ : ⟨0,0⟩, (E[e_j] env)₍₂₎⟩ (§4.2).
      ValueId ArgValue = eval(Args[J], Env);
      BasicEscape Ground = J == ParamIndex
                               ? BasicEscape::contained(InterestingSpines)
                               : BasicEscape::none();
      F = apply(F, Store.withGround(ArgValue, Ground));
    }
    return F;
  });

  ParamEscape PE;
  PE.Prov = QF;
  PE.Function = CalleeName;
  PE.ParamIndex = ParamIndex;
  PE.ParamType = Program.typeOf(Args[ParamIndex]);
  PE.ParamSpines = InterestingSpines;
  PE.Escape = Store.ground(Result);
  if (Mode == EscapeAnalysisMode::WholeObject) {
    PE.ParamSpines = spineCount(PE.ParamType);
    PE.Escape = PE.Escape.isContained()
                    ? BasicEscape::contained(PE.ParamSpines)
                    : BasicEscape::none();
  }
  if (Prov) {
    Prov->result(QF, PE.Escape.str());
    Prov->close(QF);
  }
  return PE;
}

ProgramEscapeReport EscapeAnalyzer::analyzeProgram() {
  obs::Span ProgramSpan("escape.analyzeProgram", "escape");
  ProgramEscapeReport Report;
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec)
    return Report;
  unsigned TotalRounds = 0;
  for (const LetrecBinding &Binding : Letrec->bindings()) {
    unsigned Arity = lambdaArity(Binding.Value);
    if (Arity == 0)
      continue; // not a function binding
    obs::Span FnSpan("escape.function", "escape");
    size_t TraceBase = Trace.size();
    FunctionEscape FE;
    FE.Name = Binding.Name;
    FE.FunctionType = Program.typeOf(Binding.Value);
    FE.Arity = Arity;
    const Type *ResultType = FE.FunctionType;
    for (unsigned I = 0; I != Arity; ++I)
      ResultType = cast<FunType>(ResultType)->result();
    FE.ResultSpines = spineCount(ResultType);
    unsigned FnRounds = 0;
    for (unsigned I = 0; I != Arity; ++I) {
      std::optional<ParamEscape> PE = globalEscape(Binding.Name, I);
      assert(PE && "binding disappeared mid-analysis");
      FE.Params.push_back(*PE);
      TotalRounds += LastRounds;
      FnRounds += LastRounds;
    }
    if (FnSpan.active()) {
      // The change set is the number of binding iterates that actually
      // moved up the lattice while this function's queries ran.
      uint64_t ChangedIterates = 0;
      for (size_t I = TraceBase; I != Trace.size(); ++I)
        if (Trace[I].Changed)
          ++ChangedIterates;
      FnSpan.arg("function", Ast.spelling(Binding.Name));
      FnSpan.arg("rounds", static_cast<uint64_t>(FnRounds));
      FnSpan.arg("changed_iterates", ChangedIterates);
      FnSpan.arg("apply_cache_entries",
                 static_cast<uint64_t>(ApplyCache.size()));
      FnSpan.arg("distinct_values",
                 static_cast<uint64_t>(Store.numValues()));
    }
    Report.Functions.push_back(std::move(FE));
  }
  Report.FixpointRounds = TotalRounds;
  Report.ApplyCacheEntries = ApplyCache.size();
  Report.DistinctValues = Store.numValues();
  if (ProgramSpan.active()) {
    ProgramSpan.arg("functions",
                    static_cast<uint64_t>(Report.Functions.size()));
    ProgramSpan.arg("fixpoint_rounds",
                    static_cast<uint64_t>(Report.FixpointRounds));
    ProgramSpan.arg("apply_cache_entries",
                    static_cast<uint64_t>(Report.ApplyCacheEntries));
    ProgramSpan.arg("distinct_values",
                    static_cast<uint64_t>(Report.DistinctValues));
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Report rendering
//===----------------------------------------------------------------------===//

std::string eal::renderEscapeReport(const AstContext &Ast,
                                    const ProgramEscapeReport &Report) {
  std::ostringstream OS;
  for (const FunctionEscape &FE : Report.Functions) {
    OS << Ast.spelling(FE.Name) << " : " << typeName(FE.FunctionType) << '\n';
    for (const ParamEscape &PE : FE.Params) {
      OS << "  G(" << Ast.spelling(FE.Name) << ", " << (PE.ParamIndex + 1)
         << ") = " << PE.Escape.str() << "  -- ";
      if (!PE.escapes()) {
        OS << "no part of parameter " << (PE.ParamIndex + 1) << " escapes";
      } else if (PE.ParamSpines == 0) {
        OS << "parameter " << (PE.ParamIndex + 1) << " may escape";
      } else {
        OS << "bottom " << PE.escapingSpines() << " of " << PE.ParamSpines
           << " spine(s) may escape; top " << PE.protectedTopSpines()
           << " spine(s) never escape";
      }
      OS << '\n';
    }
  }
  return OS.str();
}

//===- EscapeAnalyzer.h - Abstract escape interpreter -----------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract escape semantics of §3.4, evaluated by a memoizing
/// fixpoint interpreter, plus the global escape test G (§4.1) and local
/// escape test L (§4.2).
///
/// Evaluation strategy: applications of closures are memoized in a cache
/// keyed by (closure atom, argument value). A cache miss starts from ⊥,
/// which breaks recursive cycles; the whole query is then re-evaluated in
/// rounds until no cache entry changes. All abstract operators are
/// monotone and the value space reachable from a program is finite, so the
/// iteration terminates (§3.5); an iteration budget guards against bugs.
///
/// One program shape escapes that finiteness argument: a recursive
/// function that *rebuilds* a function argument at every call
/// (`g (cdr l) (compose f h)`) manufactures a strictly growing chain of
/// distinct closures, so each recursive application is a fresh cache key
/// and the ⊥-seeded cycle brake never engages. A depth budget on nested
/// closure applications detects the runaway chain and widens the closure
/// to its worst-case function W^τ (Definition 2) joined with its captured
/// ground — above anything the closure can do, so the result stays sound,
/// merely conservative (see wideningCount()).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_ESCAPE_ESCAPEANALYZER_H
#define EAL_ESCAPE_ESCAPEANALYZER_H

#include "escape/EscapeValue.h"
#include "explain/Provenance.h"
#include "types/TypeInference.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace eal {

class DiagnosticEngine;

/// The outcome of one escape test on one parameter.
struct ParamEscape {
  Symbol Function;
  unsigned ParamIndex = 0; ///< 0-based
  const Type *ParamType = nullptr;
  /// Spine count s_i of the parameter's type.
  unsigned ParamSpines = 0;
  /// The test result: ⟨0,0⟩ or ⟨1,k⟩.
  BasicEscape Escape;
  /// Why-provenance: the Query fact this verdict was derived under, when
  /// a recorder was attached (explain::NoFact otherwise).
  uint32_t Prov = explain::NoFact;

  /// True if any part of the parameter may escape.
  bool escapes() const { return Escape.isContained(); }

  /// The k of ⟨1,k⟩: how many bottom spines may escape (0 both for
  /// non-escaping parameters and for escaping non-list parameters).
  unsigned escapingSpines() const { return Escape.spines(); }

  /// The polymorphically invariant quantity s_i − k: how many top spines
  /// can never escape (they may be stack allocated or reused). For an
  /// escaping non-list parameter this is 0; for a non-escaping parameter
  /// it is the full spine count.
  unsigned protectedTopSpines() const {
    if (!Escape.isContained())
      return ParamSpines;
    return ParamSpines - Escape.spines();
  }
};

/// Global escape results for one function.
struct FunctionEscape {
  Symbol Name;
  const Type *FunctionType = nullptr;
  unsigned Arity = 0;
  /// Spine count of the (fully applied) result type.
  unsigned ResultSpines = 0;
  std::vector<ParamEscape> Params;
};

/// Global escape results for a whole program, plus analysis statistics.
struct ProgramEscapeReport {
  std::vector<FunctionEscape> Functions;
  unsigned FixpointRounds = 0;
  size_t ApplyCacheEntries = 0;
  size_t DistinctValues = 0;

  const FunctionEscape *find(Symbol Name) const {
    for (const FunctionEscape &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// One recorded fixpoint iterate of a letrec binding (the append^(k) of
/// Appendix A.1).
struct FixpointTraceEntry {
  Symbol Binding;
  unsigned Round = 0;
  /// Rendered value after this round ("<1,0>", "<0,0>+fn(1)", ...).
  std::string Value;
  bool Changed = false;
};

/// Analysis granularity.
enum class EscapeAnalysisMode {
  /// The paper's contribution: lists graded per spine (car^s strips).
  SpineAware,
  /// The baseline of the authors' earlier work (ESOP'90, the paper's
  /// reference [10]): objects are indivisible — if any part of a list
  /// may escape, the whole list escapes. Implemented by treating every
  /// type as spineless (car is the identity, s_i = 0), which is exactly
  /// what the paper's abstract domain degenerates to at d = 0.
  WholeObject,
};

/// Evaluates the abstract escape semantics over one typed program and
/// answers escape queries.
class EscapeAnalyzer {
public:
  /// \p MaxRounds bounds the outer fixpoint iteration; exceeding it is
  /// reported as an error and answered conservatively.
  EscapeAnalyzer(const AstContext &Ast, const TypedProgram &Program,
                 DiagnosticEngine &Diags, unsigned MaxRounds = 512,
                 EscapeAnalysisMode Mode = EscapeAnalysisMode::SpineAware);

  //===--- Queries --------------------------------------------------------==//

  /// The global escape test G(f, i) (§4.1): how much of the (0-based)
  /// \p ParamIndex-th parameter of top-level function \p Fn may escape in
  /// *any* application. Returns nullopt if \p Fn is not a top-level
  /// binding or has fewer parameters.
  std::optional<ParamEscape> globalEscape(Symbol Fn, unsigned ParamIndex);

  /// The local escape test L(f, i, e1...en) (§4.2) for the application
  /// expression \p CallSite (which must be an application spine located
  /// in the top-level scope). Arguments' function components come from
  /// the actual argument expressions, so the result is at least as
  /// precise as the global test.
  std::optional<ParamEscape> localEscape(const Expr *CallSite,
                                         unsigned ParamIndex);

  /// The local test for a call site *inside* a function body: free
  /// variables that are not top-level bindings (the enclosing function's
  /// parameters and lets) are bound to ⟨⟨0,0⟩, W^τ⟩ — they are not the
  /// interesting object, and their behaviour is worst-cased, which is
  /// exactly the env_e discipline of §4.2. Sound in any context; at
  /// least as precise as the global test on the callee.
  std::optional<ParamEscape> localEscapeInContext(const Expr *CallSite,
                                                  unsigned ParamIndex);

  /// Runs the global test on every parameter of every top-level function
  /// binding.
  ProgramEscapeReport analyzeProgram();

  /// Evaluates \p E in the top-level environment and returns its value.
  /// Exposed for tests and for clients composing custom queries.
  ValueId evaluate(const Expr *E);

  //===--- Introspection ---------------------------------------------------==//

  const ValueStore &store() const { return Store; }
  /// Rounds taken by the most recent query's fixpoint loop.
  unsigned lastRounds() const { return LastRounds; }
  /// Total closure-application cache entries discovered so far.
  size_t applyCacheSize() const { return ApplyCache.size(); }
  /// True if some query exceeded the round budget (results are then
  /// conservative).
  bool hitIterationLimit() const { return HitLimit; }

  /// Number of closure applications widened to W^τ because nested
  /// application depth exceeded the budget (higher-order recursion
  /// building ever-larger closures). Zero on every paper program; a
  /// positive count means the analysis stayed sound by worst-casing the
  /// runaway chain.
  unsigned wideningCount() const { return Widenings; }

  /// Enables recording of per-binding fixpoint iterates (Appendix A.1
  /// style); call before queries.
  void enableTracing() { Tracing = true; }
  const std::vector<FixpointTraceEntry> &trace() const { return Trace; }
  /// Renders the recorded trace as "name^(k) = value" lines.
  std::string renderTrace() const;

  /// Per-round counts of cache entries that moved up the lattice during
  /// the most recent query (recorded while tracing is enabled; one entry
  /// per fixpoint round, the final stable round counting 0).
  const std::vector<unsigned> &roundChanges() const { return RoundChanges; }

  /// Attaches a why-provenance recorder (docs/EXPLAIN.md): subsequent
  /// queries record Binding/Apply/Query facts and their derivation
  /// edges, and fill ParamEscape::Prov. Null detaches. The recorder must
  /// outlive the analyzer.
  void attachProvenance(explain::ProvenanceRecorder *P);
  explain::ProvenanceRecorder *provenance() const { return Prov; }

private:
  //===--- Abstract evaluation ---------------------------------------------==//

  ValueId eval(const Expr *E, EnvId Env);
  ValueId apply(ValueId Fn, ValueId Arg);
  ValueId applyAtom(FnAtomId Atom, ValueId Arg);
  ValueId applyPrim(const FnAtom &Atom, ValueId Arg);
  ValueId applyWorst(const FnAtom &Atom, ValueId Arg);

  /// Value of binding #Index of \p Inst (memoized, ⊥-seeded).
  ValueId materializeBinding(LetrecInstId Inst, uint32_t Index);

  /// Resolves an environment binding to a value.
  ValueId resolveBinding(const EnvBinding &Binding);

  /// The environment inside \p Inst's letrec: outer env plus letrec
  /// references for every binding.
  EnvId letrecBodyEnv(LetrecInstId Inst);

  /// Shared implementation of the two local tests.
  std::optional<ParamEscape> localEscapeUnder(const Expr *CallSite,
                                              unsigned ParamIndex, EnvId Env);

  /// Ground join of the free variables of \p Lambda (the V of §3.4).
  BasicEscape closureGround(const LambdaExpr *Lambda, EnvId Env);

  /// Cached free-variable sets per node.
  const std::vector<Symbol> &freeVarsOf(const Expr *E);

  /// Runs \p Root to fixpoint (monotone rounds until no cache changes).
  ValueId runToFixpoint(const std::function<ValueId()> &Root);

  /// The top-level environment (letrec bindings if the program root is a
  /// letrec, empty otherwise) and its instantiation id, built on demand.
  EnvId topEnv();

  /// Builds the worst-case argument value y_j for a parameter of type
  /// \p T: ⟨\p Ground, W^τ⟩.
  ValueId worstArg(BasicEscape Ground, const Type *T);

  /// Splits an n-ary function type into parameter types.
  std::vector<const Type *> paramTypes(const Type *FnType, unsigned Arity);

  struct CacheEntry {
    ValueId Val = 0; // bottom
    unsigned Round = 0;
    bool InProgress = false;
  };

  /// Spine count of \p T under the current analysis mode.
  unsigned modeSpineCount(const Type *T) const;

  const AstContext &Ast;
  const TypedProgram &Program;
  DiagnosticEngine &Diags;
  unsigned MaxRounds;
  EscapeAnalysisMode Mode;

  ValueStore Store;
  /// (closure atom, arg) -> result, ⊥-seeded.
  std::unordered_map<uint64_t, CacheEntry> ApplyCache;
  /// (letrec inst, binding index) -> value, ⊥-seeded.
  std::unordered_map<uint64_t, CacheEntry> BindingCache;
  std::unordered_map<uint32_t, std::vector<Symbol>> FreeVarCache;

  /// Nesting depth of in-flight closure applications, and the budget
  /// past which applyAtom widens instead of evaluating the body. The
  /// budget bounds C++ recursion, not fixpoint rounds: only a chain of
  /// *distinct* (closure, argument) keys can nest this deep, and any
  /// program whose abstract closures are finitely many stays far below
  /// it (Appendix A tops out below ten).
  unsigned ApplyDepth = 0;
  static constexpr unsigned MaxApplyDepth = 128;
  unsigned Widenings = 0;

  unsigned CurrentRound = 0;
  bool Changed = false;
  /// Cache entries raised in the round being evaluated (convergence
  /// telemetry; see runToFixpoint).
  unsigned ChangedThisRound = 0;
  bool Tracing = false;
  std::vector<FixpointTraceEntry> Trace;
  std::vector<unsigned> RoundChanges;
  unsigned LastRounds = 0;
  bool HitLimit = false;

  /// Why-provenance recorder (null: record nothing) and the namespaces
  /// keeping this analyzer's cache keys apart from other attachees'.
  explain::ProvenanceRecorder *Prov = nullptr;
  uint32_t ProvBindingNs = 0;
  uint32_t ProvApplyNs = 0;
  uint32_t ProvGlobalNs = 0;
  uint32_t ProvLocalNs = 0;

  std::optional<EnvId> CachedTopEnv;
};

/// Renders \p Report as the paper's Appendix-A style table (one line per
/// parameter: function, parameter, type, G result, interpretation).
std::string renderEscapeReport(const AstContext &Ast,
                               const ProgramEscapeReport &Report);

} // namespace eal

#endif // EAL_ESCAPE_ESCAPEANALYZER_H

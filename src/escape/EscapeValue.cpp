//===- EscapeValue.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeValue.h"

#include "types/Type.h"

#include <algorithm>
#include <cassert>

using namespace eal;

const Type *eal::stripListTypes(const Type *T) {
  while (const auto *List = dyn_cast<ListType>(T))
    T = List->element();
  return T;
}

ValueStore::ValueStore() {
  // Intern the bottom value and empty environment at fixed ids.
  BottomId = makeValue(BasicEscape::none(), {});
  assert(BottomId == 0 && "bottom must be the first value");
  EmptyEnvId = internEnv(EnvData());
  assert(EmptyEnvId == 0 && "empty env must be the first environment");
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

size_t ValueStore::hashAtom(const FnAtom &Atom) const {
  size_t Seed = hashValues(static_cast<unsigned>(Atom.Kind),
                           static_cast<unsigned>(Atom.Op), Atom.CarSpines,
                           static_cast<const void *>(Atom.Lambda),
                           static_cast<uint32_t>(Atom.Env),
                           static_cast<const void *>(Atom.WorstType),
                           Atom.WorstAcc.encoding());
  for (ValueId V : Atom.Partial)
    hashCombine(Seed, V);
  return Seed;
}

size_t ValueStore::hashValue(const EscapeValue &Value) const {
  size_t Seed = hashValues(Value.Ground.encoding());
  for (FnAtomId A : Value.Fns)
    hashCombine(Seed, A);
  return Seed;
}

size_t ValueStore::hashEnv(const EnvData &Data) const {
  size_t Seed = 0x9e37;
  for (const EnvBinding &B : Data.Bindings) {
    hashCombine(Seed, B.Name.id());
    hashCombine(Seed, static_cast<unsigned>(B.Kind));
    hashCombine(Seed, B.Val);
    hashCombine(Seed, B.Inst);
    hashCombine(Seed, B.Index);
  }
  return Seed;
}

//===----------------------------------------------------------------------===//
// Values
//===----------------------------------------------------------------------===//

ValueId ValueStore::makeValue(BasicEscape Ground, std::vector<FnAtomId> Fns) {
  std::sort(Fns.begin(), Fns.end());
  Fns.erase(std::unique(Fns.begin(), Fns.end()), Fns.end());
  EscapeValue Value{Ground, std::move(Fns)};
  size_t Hash = hashValue(Value);
  auto [Begin, End] = ValueTable.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (Values[It->second] == Value)
      return It->second;
  ValueId Id = static_cast<ValueId>(Values.size());
  Values.push_back(std::move(Value));
  ValueTable.emplace(Hash, Id);
  return Id;
}

ValueId ValueStore::joinValues(ValueId A, ValueId B) {
  if (A == B)
    return A;
  const EscapeValue &VA = Values[A];
  const EscapeValue &VB = Values[B];
  std::vector<FnAtomId> Fns = VA.Fns;
  Fns.insert(Fns.end(), VB.Fns.begin(), VB.Fns.end());
  return makeValue(join(VA.Ground, VB.Ground), std::move(Fns));
}

ValueId ValueStore::withGround(ValueId V, BasicEscape Ground) {
  const EscapeValue &Value = Values[V];
  if (Value.Ground == Ground)
    return V;
  return makeValue(Ground, Value.Fns);
}

//===----------------------------------------------------------------------===//
// Atoms
//===----------------------------------------------------------------------===//

FnAtomId ValueStore::internAtom(FnAtom Atom) {
  size_t Hash = hashAtom(Atom);
  auto [Begin, End] = AtomTable.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (Atoms[It->second] == Atom)
      return It->second;
  FnAtomId Id = static_cast<FnAtomId>(Atoms.size());
  Atoms.push_back(std::move(Atom));
  AtomTable.emplace(Hash, Id);
  return Id;
}

ValueId ValueStore::makePrim(PrimOp Op, unsigned CarSpines) {
  // car^0 is the whole-object baseline's identity car; spine-aware
  // analyses always annotate car with s >= 1.
  FnAtom Atom;
  Atom.Kind = FnAtomKind::Prim;
  Atom.Op = Op;
  Atom.CarSpines = CarSpines;
  return makeValue(BasicEscape::none(), {internAtom(std::move(Atom))});
}

ValueId ValueStore::makeClosure(BasicEscape Ground, const LambdaExpr *Lambda,
                                EnvId Env) {
  FnAtom Atom;
  Atom.Kind = FnAtomKind::Closure;
  Atom.Lambda = Lambda;
  Atom.Env = Env;
  return makeValue(Ground, {internAtom(std::move(Atom))});
}

void ValueStore::collectWorstAtoms(const Type *T, BasicEscape Acc,
                                   std::vector<FnAtomId> &Out) {
  const Type *Core = stripListTypes(T);
  if (Core->isFun()) {
    FnAtom Atom;
    Atom.Kind = FnAtomKind::Worst;
    Atom.WorstType = Core;
    Atom.WorstAcc = Acc;
    Out.push_back(internAtom(std::move(Atom)));
    return;
  }
  if (const auto *Pair = dyn_cast<PairType>(Core)) {
    collectWorstAtoms(Pair->first(), Acc, Out);
    collectWorstAtoms(Pair->second(), Acc, Out);
  }
}

ValueId ValueStore::makeWorst(BasicEscape Ground, const Type *T) {
  std::vector<FnAtomId> Atoms;
  collectWorstAtoms(T, BasicEscape::none(), Atoms);
  return makeValue(Ground, std::move(Atoms));
}

ValueId ValueStore::makePairValue(ValueId First, ValueId Second) {
  FnAtom Atom;
  Atom.Kind = FnAtomKind::Pair;
  Atom.Partial = {First, Second};
  return makeValue(join(ground(First), ground(Second)),
                   {internAtom(std::move(Atom))});
}

//===----------------------------------------------------------------------===//
// Environments
//===----------------------------------------------------------------------===//

EnvId ValueStore::internEnv(EnvData Data) {
  size_t Hash = hashEnv(Data);
  auto [Begin, End] = EnvTable.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (Envs[It->second] == Data)
      return It->second;
  EnvId Id = static_cast<EnvId>(Envs.size());
  Envs.push_back(std::move(Data));
  EnvTable.emplace(Hash, Id);
  return Id;
}

EnvId ValueStore::extend(EnvId Env, EnvBinding Binding) {
  EnvData Data = Envs[Env];
  auto It = std::lower_bound(
      Data.Bindings.begin(), Data.Bindings.end(), Binding,
      [](const EnvBinding &A, const EnvBinding &B) { return A.Name < B.Name; });
  if (It != Data.Bindings.end() && It->Name == Binding.Name)
    *It = Binding; // shadowing overrides
  else
    Data.Bindings.insert(It, Binding);
  return internEnv(std::move(Data));
}

EnvId ValueStore::restrict(EnvId Env, std::span<const Symbol> Names) {
  const EnvData &Data = Envs[Env];
  EnvData Out;
  for (const EnvBinding &B : Data.Bindings)
    if (std::find(Names.begin(), Names.end(), B.Name) != Names.end())
      Out.Bindings.push_back(B);
  return internEnv(std::move(Out));
}

const EnvBinding *ValueStore::lookup(EnvId Env, Symbol Name) const {
  const EnvData &Data = Envs[Env];
  auto It = std::lower_bound(
      Data.Bindings.begin(), Data.Bindings.end(), Name,
      [](const EnvBinding &B, Symbol N) { return B.Name < N; });
  if (It != Data.Bindings.end() && It->Name == Name)
    return &*It;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Letrec instantiations
//===----------------------------------------------------------------------===//

LetrecInstId ValueStore::internLetrecInst(const LetrecExpr *Node,
                                          EnvId Outer) {
  LetrecInst Inst{Node, Outer};
  size_t Hash =
      hashValues(static_cast<const void *>(Node), static_cast<uint32_t>(Outer));
  auto [Begin, End] = InstTable.equal_range(Hash);
  for (auto It = Begin; It != End; ++It)
    if (Insts[It->second] == Inst)
      return It->second;
  LetrecInstId Id = static_cast<LetrecInstId>(Insts.size());
  Insts.push_back(Inst);
  InstTable.emplace(Hash, Id);
  return Id;
}

//===----------------------------------------------------------------------===//
// Debugging
//===----------------------------------------------------------------------===//

std::string ValueStore::str(ValueId V) const {
  const EscapeValue &Value = Values[V];
  std::string Out = Value.Ground.str();
  if (!Value.Fns.empty())
    Out += "+fn(" + std::to_string(Value.Fns.size()) + ")";
  return Out;
}

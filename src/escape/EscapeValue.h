//===- EscapeValue.h - Hash-consed abstract escape values -------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Representation of the abstract escape domain D_e (§3.4). A value has
/// two components: a ground component in B_e, and a function component.
/// The function component is represented as a *set of atoms*, because the
/// abstract semantics joins values (at `cons` and at `if`), and the join
/// of two function values is kept symbolic: applying a join applies every
/// atom and joins the results. The atom forms are:
///
///  * Prim    — a (possibly partially applied) primitive;
///  * Closure — `lambda(x).e` with its captured environment, restricted
///              to the lambda's free variables;
///  * Worst   — the worst-case escape function W^τ of Definition 2, with
///              the ground escapes accumulated so far.
///
/// The empty atom set is `err` (a function that is never applied; applying
/// it yields ⊥ — safe, because the standard semantics would be stuck).
///
/// Environments bind names either to values or to *letrec references*
/// (binding #k of a letrec instantiation). Representing recursive
/// bindings by reference rather than by unfolded closures is what keeps
/// the value space finite so the fixpoint iteration terminates.
///
/// Values, atoms, environments, and letrec instantiations are all
/// hash-consed: equal objects get equal 32-bit ids, so the analyzer's
/// caches can key on integers and value equality is O(1).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_ESCAPE_ESCAPEVALUE_H
#define EAL_ESCAPE_ESCAPEVALUE_H

#include "escape/BasicEscape.h"
#include "lang/Ast.h"
#include "support/Hashing.h"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace eal {

class Type;

/// Index of a hash-consed escape value.
using ValueId = uint32_t;
/// Index of a hash-consed function atom.
using FnAtomId = uint32_t;
/// Index of a hash-consed environment.
using EnvId = uint32_t;
/// Index of a hash-consed letrec instantiation (letrec node + outer env).
using LetrecInstId = uint32_t;

/// Kinds of function atoms.
enum class FnAtomKind : uint8_t {
  Prim,
  Closure,
  Worst,
  /// A constructed pair: Partial = {first, second}. Not applicable as a
  /// function; fst/snd project its components precisely.
  Pair,
};

/// One function atom. Plain aggregate; interned by ValueStore.
struct FnAtom {
  FnAtomKind Kind = FnAtomKind::Prim;

  // Prim
  PrimOp Op = PrimOp::Add;
  /// For car atoms: the s of car^s (spine count of the argument type).
  unsigned CarSpines = 0;
  /// Arguments consumed so far by a partially applied primitive.
  std::vector<ValueId> Partial;

  // Closure
  const LambdaExpr *Lambda = nullptr;
  EnvId Env = 0;

  // Worst
  /// The remaining function type of W^τ (always a FunType).
  const Type *WorstType = nullptr;
  /// Ground escapes of the arguments consumed so far.
  BasicEscape WorstAcc;

  friend bool operator==(const FnAtom &A, const FnAtom &B) {
    return A.Kind == B.Kind && A.Op == B.Op && A.CarSpines == B.CarSpines &&
           A.Partial == B.Partial && A.Lambda == B.Lambda && A.Env == B.Env &&
           A.WorstType == B.WorstType && A.WorstAcc == B.WorstAcc;
  }
};

/// One abstract escape value: ground component + atom set (sorted,
/// deduplicated).
struct EscapeValue {
  BasicEscape Ground;
  std::vector<FnAtomId> Fns;

  friend bool operator==(const EscapeValue &A, const EscapeValue &B) {
    return A.Ground == B.Ground && A.Fns == B.Fns;
  }
};

/// How an environment entry is bound.
enum class EnvBindingKind : uint8_t {
  /// An ordinary value.
  Value,
  /// Binding #Index of letrec instantiation #Inst, materialized lazily.
  LetrecRef,
};

/// One environment entry.
struct EnvBinding {
  Symbol Name;
  EnvBindingKind Kind = EnvBindingKind::Value;
  ValueId Val = 0;
  LetrecInstId Inst = 0;
  uint32_t Index = 0;

  friend bool operator==(const EnvBinding &A, const EnvBinding &B) {
    return A.Name == B.Name && A.Kind == B.Kind && A.Val == B.Val &&
           A.Inst == B.Inst && A.Index == B.Index;
  }
};

/// An environment: bindings sorted by symbol id (innermost shadowing is
/// resolved at extension time, so each name appears once).
struct EnvData {
  std::vector<EnvBinding> Bindings;

  friend bool operator==(const EnvData &A, const EnvData &B) {
    return A.Bindings == B.Bindings;
  }
};

/// A letrec instantiation: the syntactic letrec plus the (restricted)
/// environment it closed over.
struct LetrecInst {
  const LetrecExpr *Node = nullptr;
  EnvId Outer = 0;

  friend bool operator==(const LetrecInst &A, const LetrecInst &B) {
    return A.Node == B.Node && A.Outer == B.Outer;
  }
};

/// Owns and interns all escape values, atoms, environments, and letrec
/// instantiations of one analysis.
class ValueStore {
public:
  ValueStore();

  //===--- Values --------------------------------------------------------===//

  /// The bottom value ⟨⟨0,0⟩, err⟩ (also the value of nil and of all
  /// data constants).
  ValueId bottom() const { return BottomId; }

  /// Interns a value with ground \p Ground and atom set \p Fns (need not
  /// be sorted; duplicates are removed).
  ValueId makeValue(BasicEscape Ground, std::vector<FnAtomId> Fns);

  /// Interns a ground-only value ⟨\p Ground, err⟩.
  ValueId makeGround(BasicEscape Ground) { return makeValue(Ground, {}); }

  /// The join of two values: grounds join in B_e, atom sets union.
  ValueId joinValues(ValueId A, ValueId B);

  /// Returns \p V with its ground component replaced (atom set kept).
  /// Used by the local escape test, which re-grounds argument values.
  ValueId withGround(ValueId V, BasicEscape Ground);

  const EscapeValue &value(ValueId Id) const { return Values[Id]; }
  BasicEscape ground(ValueId Id) const { return Values[Id].Ground; }
  size_t numValues() const { return Values.size(); }

  //===--- Atoms ---------------------------------------------------------===//

  FnAtomId internAtom(FnAtom Atom);
  const FnAtom &atom(FnAtomId Id) const { return Atoms[Id]; }
  size_t numAtoms() const { return Atoms.size(); }

  /// A fresh (unapplied) primitive value. \p CarSpines supplies the s of
  /// car^s and is required for Car.
  ValueId makePrim(PrimOp Op, unsigned CarSpines = 0);

  /// A closure value ⟨\p Ground, λ⟩ for \p Lambda under \p Env. \p Ground
  /// is the V of §3.4 (join of the free variables' grounds).
  ValueId makeClosure(BasicEscape Ground, const LambdaExpr *Lambda, EnvId Env);

  /// The worst-case value ⟨\p Ground, W^τ⟩ for a parameter of type \p T
  /// (Definition 2). List constructors are stripped (W^{τ list} = W^τ)
  /// and pairs contribute the worst-case atoms of *both* components (the
  /// product analog of the paper's list rule); if no function type
  /// remains the atom set is empty (W = err).
  ValueId makeWorst(BasicEscape Ground, const Type *T);

  /// Appends the worst-case atoms for \p T (with accumulated ground
  /// \p Acc) to \p Out; used by makeWorst and by worst-case application.
  void collectWorstAtoms(const Type *T, BasicEscape Acc,
                         std::vector<FnAtomId> &Out);

  /// A pair value ⟨ga ⊔ gb, pair(a, b)⟩.
  ValueId makePairValue(ValueId First, ValueId Second);

  //===--- Environments --------------------------------------------------===//

  /// The empty environment.
  EnvId emptyEnv() const { return EmptyEnvId; }

  /// Returns \p Env extended/overridden with \p Binding.
  EnvId extend(EnvId Env, EnvBinding Binding);

  /// Restricts \p Env to \p Names (missing names are simply absent).
  EnvId restrict(EnvId Env, std::span<const Symbol> Names);

  /// Looks up \p Name, or nullptr if unbound.
  const EnvBinding *lookup(EnvId Env, Symbol Name) const;

  const EnvData &env(EnvId Id) const { return Envs[Id]; }
  size_t numEnvs() const { return Envs.size(); }

  //===--- Letrec instantiations -----------------------------------------===//

  LetrecInstId internLetrecInst(const LetrecExpr *Node, EnvId Outer);
  const LetrecInst &letrecInst(LetrecInstId Id) const { return Insts[Id]; }
  size_t numLetrecInsts() const { return Insts.size(); }

  //===--- Debugging -----------------------------------------------------===//

  /// Renders \p V as, e.g., "<1,1>" or "<0,0>+fn" (ground plus a marker
  /// when the function component is not err).
  std::string str(ValueId V) const;

private:
  EnvId internEnv(EnvData Data);

  size_t hashAtom(const FnAtom &Atom) const;
  size_t hashValue(const EscapeValue &Value) const;
  size_t hashEnv(const EnvData &Data) const;

  std::vector<EscapeValue> Values;
  std::vector<FnAtom> Atoms;
  std::vector<EnvData> Envs;
  std::vector<LetrecInst> Insts;

  std::unordered_multimap<size_t, ValueId> ValueTable;
  std::unordered_multimap<size_t, FnAtomId> AtomTable;
  std::unordered_multimap<size_t, EnvId> EnvTable;
  std::unordered_multimap<size_t, LetrecInstId> InstTable;

  ValueId BottomId = 0;
  EnvId EmptyEnvId = 0;
};

/// Strips list constructors: the abstract list domain collapses to the
/// element domain (D_e^{τ list} = D_e^τ, §3.4), and W^{τ list} = W^τ
/// (Definition 2).
const Type *stripListTypes(const Type *T);

} // namespace eal

#endif // EAL_ESCAPE_ESCAPEVALUE_H

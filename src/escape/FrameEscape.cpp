//===- FrameEscape.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "escape/FrameEscape.h"

using namespace eal;

namespace {

/// One visible binding with the binder that owns it and the lambda
/// nesting depth at which the binder's scope opened. A reference from a
/// strictly deeper lambda level crosses a closure boundary.
struct Binding {
  Symbol Name;
  const Expr *Owner;
  unsigned LambdaLevel;
};

class Walker {
public:
  explicit Walker(FrameEscapeInfo &Info) : Info(Info) {}

  void visit(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Prim:
      return;
    case ExprKind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      for (auto It = Env.rbegin(); It != Env.rend(); ++It)
        if (It->Name == Name) {
          if (It->LambdaLevel < Level)
            mark(It->Owner);
          return;
        }
      // Unbound: the bytecode compiler diagnoses it.
      return;
    }
    case ExprKind::App: {
      const auto *App = cast<AppExpr>(E);
      visit(App->fn());
      visit(App->arg());
      return;
    }
    case ExprKind::Lambda:
      visitChain(E);
      return;
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      visit(If->cond());
      visit(If->thenExpr());
      visit(If->elseExpr());
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      visit(Let->value());
      Env.push_back({Let->name(), E, Level});
      visit(Let->body());
      Env.pop_back();
      finishBinder(E);
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      size_t Mark = Env.size();
      for (const LetrecBinding &B : Letrec->bindings())
        Env.push_back({B.Name, E, Level});
      for (const LetrecBinding &B : Letrec->bindings())
        visit(B.Value);
      visit(Letrec->body());
      Env.resize(Mark);
      finishBinder(E);
      return;
    }
    }
  }

private:
  /// Consumes a whole lambda chain at once, mirroring the compiler's
  /// n-ary protos: all chain parameters share one scope owned by the
  /// chain head, and the chain opens exactly one lambda level.
  void visitChain(const Expr *E) {
    size_t Mark = Env.size();
    ++Level;
    const Expr *Body = E;
    while (const auto *Lambda = dyn_cast<LambdaExpr>(Body)) {
      Env.push_back({Lambda->param(), E, Level});
      Body = Lambda->body();
    }
    visit(Body);
    Env.resize(Mark);
    --Level;
    finishBinder(E);
  }

  void mark(const Expr *Owner) {
    uint32_t Id = Owner->id();
    if (Id >= Info.Captured.size())
      Info.Captured.resize(Id + 1, false);
    Info.Captured[Id] = true;
  }

  void finishBinder(const Expr *Owner) {
    if (Info.frameEscapes(Owner))
      ++Info.CapturedScopes;
    else
      ++Info.FlattenableScopes;
  }

  FrameEscapeInfo &Info;
  std::vector<Binding> Env;
  unsigned Level = 0;
};

} // namespace

FrameEscapeInfo eal::analyzeFrameEscapes(const AstContext &Ast,
                                         const Expr *Root) {
  FrameEscapeInfo Info;
  Info.Captured.resize(Ast.numNodes(), false);
  Walker W(Info);
  W.visit(Root);
  return Info;
}

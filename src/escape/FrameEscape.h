//===- FrameEscape.h - Do environment frames escape? ------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A second runtime consumer of escape information, in the spirit of the
/// paper's allocation optimizations: instead of asking whether *list
/// cells* outlive an activation, this pass asks whether an activation's
/// *environment frame* does. A binder's frame escapes exactly when some
/// binding it introduces is referenced from inside a closure created
/// within its scope — then the frame must live on the heap, chained for
/// the captured reference. When no binding is captured, the bytecode
/// compiler flattens the scope onto the VM's value stack and the
/// activation allocates no `EnvFrame` at all.
///
/// The test is purely syntactic (a free-variable check graded by lambda
/// nesting depth) and exact up to shadowing: a variable reference that
/// crosses at least one lambda boundary on its way to its binder marks
/// that binder captured. Everything else is flattenable.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_ESCAPE_FRAMEESCAPE_H
#define EAL_ESCAPE_FRAMEESCAPE_H

#include "lang/Ast.h"

#include <vector>

namespace eal {

/// Frame-escape facts for every binder in one program.
struct FrameEscapeInfo {
  /// Indexed by binder node id — the head `LambdaExpr` of a lambda
  /// chain, a `LetExpr`, or a `LetrecExpr`. True if a nested closure
  /// captures one of the binder's bindings, so the activation's frame
  /// must outlive it on the heap.
  std::vector<bool> Captured;

  /// Binders whose scope can live on the value stack.
  unsigned FlattenableScopes = 0;
  /// Binders whose frame is captured and stays heap-allocated.
  unsigned CapturedScopes = 0;

  /// Does \p Binder's environment frame escape its activation?
  bool frameEscapes(const Expr *Binder) const {
    return Binder->id() < Captured.size() && Captured[Binder->id()];
  }
};

/// Computes frame-escape facts for \p Root (the final program the
/// bytecode compiler sees, after any reuse transformation).
FrameEscapeInfo analyzeFrameEscapes(const AstContext &Ast, const Expr *Root);

} // namespace eal

#endif // EAL_ESCAPE_FRAMEESCAPE_H

//===- Explain.cpp --------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "explain/Explain.h"

#include "lang/AstUtils.h"
#include "support/SourceManager.h"
#include "support/Trace.h"
#include "types/Type.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace eal;
using namespace eal::explain;

const char *explain::siteStorageName(SiteStorage S) {
  switch (S) {
  case SiteStorage::Heap:
    return "heap";
  case SiteStorage::Stack:
    return "stack";
  case SiteStorage::Region:
    return "region";
  }
  return "heap";
}

//===----------------------------------------------------------------------===//
// Site classification (the linter's walk, verbatim)
//===----------------------------------------------------------------------===//

namespace {

/// Matches a saturated `cons e1 e2` / pair construction; fills operands.
bool isAllocApp(const Expr *E, PrimOp &Op, const Expr *&Head,
                const Expr *&Tail) {
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(E, Args);
  const auto *Prim = dyn_cast<PrimExpr>(Callee);
  if (!Prim || Args.size() != 2 ||
      (Prim->op() != PrimOp::Cons && Prim->op() != PrimOp::MkPair))
    return false;
  Op = Prim->op();
  Head = Args[0];
  Tail = Args[1];
  return true;
}

/// Walks the final program with the same context propagation as the EAL-O
/// linter pass and records a SiteInfo for *every* allocation site.
class SiteClassifier {
public:
  SiteClassifier(const TypedProgram &Program, EscapeAnalyzer &Analyzer,
                 const AllocationPlan &Plan, std::vector<SiteInfo> &Out)
      : Program(Program), Analyzer(Analyzer), Out(Out) {
    for (const ArgArenaDirective &D : Plan.Directives)
      for (const auto &[Id, Class] : D.Sites)
        Planned.emplace(Id, PlannedSite{Class, D.ProvenanceRef, D.Callee});
    const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
    if (!Letrec)
      return;
    TopLetrec = Letrec;
    for (const LetrecBinding &B : Letrec->bindings())
      if (unsigned Arity = lambdaArity(B.Value))
        FnArities[B.Name.id()] = Arity;
  }

  void run() {
    const auto *Letrec = TopLetrec;
    if (!Letrec) {
      walk(Program.root(), SiteContext());
      return;
    }
    for (const LetrecBinding &B : Letrec->bindings())
      walk(B.Value, SiteContext());
    walk(Letrec->body(), SiteContext());
  }

private:
  void record(const Expr *Site, PrimOp Op, const SiteContext &Ctx) {
    SiteInfo SI;
    SI.Site = Site;
    SI.Op = Op;
    SI.Ctx = Ctx;
    auto It = Planned.find(Site->id());
    if (It != Planned.end()) {
      SI.Storage = It->second.Class == ArenaSiteClass::Stack
                       ? SiteStorage::Stack
                       : SiteStorage::Region;
      SI.PlanProv = It->second.Prov;
      SI.PlanOwner = It->second.Owner;
    }
    Out.push_back(SI);
  }

  void walk(const Expr *E, SiteContext Ctx) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Var:
    case ExprKind::Prim:
      return;
    case ExprKind::Lambda: {
      SiteContext Inner;
      walk(cast<LambdaExpr>(E)->body(), Inner);
      return;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      walk(If->cond(), SiteContext());
      walk(If->thenExpr(), Ctx);
      walk(If->elseExpr(), Ctx);
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      walk(Let->value(), SiteContext());
      walk(Let->body(), Ctx);
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      for (const LetrecBinding &B : Letrec->bindings())
        walk(B.Value, SiteContext());
      walk(Letrec->body(), Ctx);
      return;
    }
    case ExprKind::App: {
      PrimOp Op;
      const Expr *Head = nullptr, *Tail = nullptr;
      if (isAllocApp(E, Op, Head, Tail)) {
        record(E, Op, Ctx);
        SiteContext HeadCtx = Ctx;
        if (Op == PrimOp::Cons && Ctx.Kind == SiteContext::Protected &&
            !Ctx.Detached)
          ++HeadCtx.Level;
        else
          HeadCtx.Detached = Ctx.Kind == SiteContext::Protected;
        walk(Head, HeadCtx);
        walk(Tail, Ctx);
        return;
      }
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(E, Args);
      if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
        // cdr shares its operand's spines at the same levels; car (and
        // the pair projections) extract elements — off the spine.
        if (Prim->op() == PrimOp::Cdr && Args.size() == 1) {
          walk(Args[0], Ctx);
          return;
        }
        SiteContext Inner = Ctx;
        Inner.Detached = Ctx.Kind == SiteContext::Protected;
        for (const Expr *Arg : Args)
          walk(Arg, Inner.Detached ? Inner : SiteContext());
        return;
      }
      walk(Callee, SiteContext());
      const auto *Var = dyn_cast<VarExpr>(Callee);
      auto ArityIt = Var ? FnArities.find(Var->name().id()) : FnArities.end();
      bool KnownSaturated =
          ArityIt != FnArities.end() && ArityIt->second == Args.size();
      for (unsigned I = 0; I != Args.size(); ++I) {
        SiteContext ArgCtx;
        if (spineCount(Program.typeOf(Args[I])) > 0) {
          if (KnownSaturated) {
            auto Local = topLevelClosed(E)
                             ? Analyzer.localEscape(E, I)
                             : Analyzer.localEscapeInContext(E, I);
            if (!Local)
              Local = Analyzer.globalEscape(Var->name(), I);
            ArgCtx.Callee = Var->name();
            ArgCtx.ArgIndex = I;
            ArgCtx.CallLoc = E->loc();
            if (Local)
              ArgCtx.VerdictProv = Local->Prov;
            if (Local && Local->protectedTopSpines() > 0) {
              ArgCtx.Kind = SiteContext::Protected;
              ArgCtx.ProtectedSpines = Local->protectedTopSpines();
            } else {
              ArgCtx.Kind = SiteContext::EscapesResult;
              ArgCtx.EscapingSpines = Local ? Local->escapingSpines() : 0;
            }
          } else {
            ArgCtx.Kind = SiteContext::UnknownCallee;
            ArgCtx.CallLoc = E->loc();
          }
        }
        walk(Args[I], ArgCtx);
      }
      return;
    }
    }
  }

  bool topLevelClosed(const Expr *Call) {
    if (!TopLetrec)
      return false;
    for (Symbol Free : freeVariables(Call))
      if (!TopLetrec->findBinding(Free))
        return false;
    return true;
  }

  const TypedProgram &Program;
  EscapeAnalyzer &Analyzer;
  std::vector<SiteInfo> &Out;
  const LetrecExpr *TopLetrec = nullptr;
  /// One covering directive per planned site.
  struct PlannedSite {
    ArenaSiteClass Class;
    uint32_t Prov;
    Symbol Owner;
  };
  std::unordered_map<uint32_t, PlannedSite> Planned;
  std::unordered_map<uint32_t, unsigned> FnArities;
};

} // namespace

std::vector<SiteInfo> explain::classifySites(const AstContext &Ast,
                                             const TypedProgram &Program,
                                             EscapeAnalyzer &Analyzer,
                                             const AllocationPlan &Plan) {
  (void)Ast;
  std::vector<SiteInfo> Sites;
  SiteClassifier(Program, Analyzer, Plan, Sites).run();
  return Sites;
}

//===----------------------------------------------------------------------===//
// Finding text (shared with the linter; must not diverge)
//===----------------------------------------------------------------------===//

std::string explain::describeSite(const AstContext &Ast, PrimOp Op,
                                  const SiteContext &Ctx) {
  const char *What = Op == PrimOp::MkPair ? "pair cell" : "cons cell";
  std::ostringstream OS;
  switch (Ctx.Kind) {
  case SiteContext::EscapesResult:
    OS << What << " stays on the GC heap: argument " << (Ctx.ArgIndex + 1)
       << " of '" << Ast.spelling(Ctx.Callee)
       << "' may escape via the callee's result (" << Ctx.EscapingSpines
       << " escaping spine(s), 0 protected)";
    break;
  case SiteContext::UnknownCallee:
    OS << What << " stays on the GC heap: the surrounding call's callee "
       << "is unknown or unsaturated, so the local escape test cannot "
       << "protect the argument";
    break;
  case SiteContext::Protected:
    if (Ctx.Detached)
      OS << What << " stays on the GC heap: it is in element position "
         << "(not on a spine the analysis grades) of argument "
         << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
         << "'";
    else if (Ctx.Level > Ctx.ProtectedSpines)
      OS << What << " stays on the GC heap: it builds spine level "
         << Ctx.Level << " of argument " << (Ctx.ArgIndex + 1) << " of '"
         << Ast.spelling(Ctx.Callee) << "', below the protected prefix "
         << "(top " << Ctx.ProtectedSpines << " spine(s))";
    else
      OS << What << " is within the protected prefix of argument "
         << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
         << "' but no directive covers it (stack/region allocation "
         << "disabled?)";
    break;
  case SiteContext::None:
    OS << What << " stays on the GC heap: no protecting call site — it "
       << "builds a result or a locally let-bound value, so only a "
       << "caller-side region could place it";
    break;
  }
  return OS.str();
}

const char *explain::findingCode(const SiteContext &Ctx) {
  switch (Ctx.Kind) {
  case SiteContext::EscapesResult:
    return "EAL-O001";
  case SiteContext::UnknownCallee:
    return "EAL-O003";
  case SiteContext::Protected:
    return "EAL-O002";
  case SiteContext::None:
    return "EAL-O004";
  }
  return "EAL-O004";
}

//===----------------------------------------------------------------------===//
// Blame paths
//===----------------------------------------------------------------------===//

std::vector<uint32_t> explain::blamePath(const ProvenanceRecorder &P,
                                         uint32_t From) {
  std::vector<uint32_t> Path;
  if (From == NoFact || From >= P.numFacts())
    return Path;

  std::unordered_map<uint32_t, uint32_t> Parent;
  std::deque<uint32_t> Queue{From};
  Parent.emplace(From, NoFact);
  uint32_t Target = NoFact, FirstLeaf = NoFact;
  while (!Queue.empty()) {
    uint32_t F = Queue.front();
    Queue.pop_front();
    const Fact &Node = P.fact(F);
    if (Node.Kind == FactKind::Binding) {
      Target = F;
      break;
    }
    if (Node.Deps.empty() && FirstLeaf == NoFact)
      FirstLeaf = F;
    for (uint32_t Dep : Node.Deps)
      if (Parent.emplace(Dep, F).second)
        Queue.push_back(Dep);
  }
  if (Target == NoFact)
    Target = FirstLeaf == NoFact ? From : FirstLeaf;

  for (uint32_t F = Target; F != NoFact; F = Parent[F])
    Path.push_back(F);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

//===----------------------------------------------------------------------===//
// Chain construction
//===----------------------------------------------------------------------===//

namespace {

const char *stepTitleFor(FactKind K) {
  switch (K) {
  case FactKind::Binding:
    return "fixpoint derivation";
  case FactKind::Apply:
    return "closure application";
  case FactKind::Query:
    return "escape verdict";
  case FactKind::Sharing:
    return "sharing derivation";
  case FactKind::Decision:
    return "decision";
  case FactKind::Finding:
    return "finding";
  case FactKind::Liveness:
    return "liveness derivation";
  case FactKind::Speculation:
    return "speculative re-classification";
  }
  return "fact";
}

BlameStep stepForFact(const ProvenanceRecorder &P, uint32_t F) {
  const Fact &Node = P.fact(F);
  BlameStep S;
  S.Title = stepTitleFor(Node.Kind);
  S.Detail = Node.Label;
  if (!Node.Result.empty())
    S.Detail += " = " + Node.Result;
  if (!Node.Equation.empty())
    S.Detail += " [" + Node.Equation + "]";
  S.Loc = Node.Loc;
  S.FactRef = F;
  return S;
}

/// The terminal step: the program point that decided the storage class.
BlameStep terminalStep(const AstContext &Ast, const SiteInfo &SI) {
  const SiteContext &Ctx = SI.Ctx;
  BlameStep S;
  S.Loc = Ctx.CallLoc.isValid() ? Ctx.CallLoc : SI.Site->loc();
  std::ostringstream OS;
  if (SI.Storage == SiteStorage::Stack) {
    S.Title = "stack allocation";
    OS << "cells live in the activation record of '"
       << Ast.spelling(SI.PlanOwner) << "' and die when it is popped (A.3.1)";
    S.Detail = OS.str();
    return S;
  }
  if (SI.Storage == SiteStorage::Region) {
    S.Title = "region allocation";
    OS << "cells fill a block owned by the activation of '"
       << Ast.spelling(SI.PlanOwner)
       << "'; the whole block is freed when it returns (A.3.3)";
    S.Detail = OS.str();
    return S;
  }
  switch (Ctx.Kind) {
  case SiteContext::EscapesResult:
    S.Title = "escaping return";
    OS << "the result of '" << Ast.spelling(Ctx.Callee) << "' carries "
       << (Ctx.EscapingSpines ? Ctx.EscapingSpines : 1u)
       << " spine(s) of argument " << (Ctx.ArgIndex + 1)
       << " back to the caller, so its cells must outlive the activation";
    break;
  case SiteContext::UnknownCallee:
    S.Title = "unknown callee";
    OS << "the surrounding call's callee is unknown or unsaturated; no "
       << "per-call directive can be issued";
    break;
  case SiteContext::Protected:
    if (Ctx.Detached) {
      S.Title = "off-spine element";
      OS << "the cell sits in element position; the analysis grades only "
         << "spines, so no verdict covers it";
    } else if (Ctx.Level > Ctx.ProtectedSpines) {
      S.Title = "below protected prefix";
      OS << "spine level " << Ctx.Level << " lies below the protected "
         << "prefix (top " << Ctx.ProtectedSpines << " spine(s) of argument "
         << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
         << "')";
    } else {
      S.Title = "disabled optimization";
      OS << "the cell is within the protected prefix of argument "
         << (Ctx.ArgIndex + 1) << " of '" << Ast.spelling(Ctx.Callee)
         << "' but no directive covers it";
    }
    break;
  case SiteContext::None:
    S.Title = "no protecting call";
    OS << "the cell builds a result or a locally let-bound value; only a "
       << "caller-side region could place it";
    break;
  }
  S.Detail = OS.str();
  return S;
}

std::string locString(const SourceManager &SM, SourceLoc Loc) {
  LineColumn LC = SM.lineColumn(Loc);
  std::ostringstream OS;
  OS << SM.name() << ':' << LC.Line << ':' << LC.Column;
  return OS.str();
}

} // namespace

ExplainReport explain::buildExplainReport(const AstContext &Ast,
                                          const TypedProgram &Program,
                                          const std::vector<SiteInfo> &Sites,
                                          const ProvenanceRecorder &Recorder) {
  (void)Program;
  ExplainReport R;
  R.Recorder = &Recorder;
  R.Chains.reserve(Sites.size());
  for (const SiteInfo &SI : Sites) {
    BlameChain C;
    C.SiteId = SI.Site->id();
    C.SiteLoc = SI.Site->loc();
    C.Op = SI.Op;
    C.Storage = SI.Storage;
    const char *What = SI.Op == PrimOp::MkPair ? "pair cell" : "cons cell";

    uint32_t Start =
        SI.Storage == SiteStorage::Heap ? SI.Ctx.VerdictProv : SI.PlanProv;
    C.Facts = blamePath(Recorder, Start);

    BlameStep Site;
    Site.Title = "allocation site";
    Site.Detail = std::string(What) + " allocated here; storage class: " +
                  siteStorageName(SI.Storage);
    Site.Loc = SI.Site->loc();
    C.Steps.push_back(std::move(Site));

    if (SI.Storage == SiteStorage::Heap) {
      C.Code = findingCode(SI.Ctx);
      BlameStep Why;
      Why.Title = "blocked optimization";
      Why.Detail = "[" + C.Code + "] " + describeSite(Ast, SI.Op, SI.Ctx);
      Why.Loc = SI.Ctx.CallLoc.isValid() ? SI.Ctx.CallLoc : SI.Site->loc();
      C.Steps.push_back(std::move(Why));
      for (uint32_t F : C.Facts)
        C.Steps.push_back(stepForFact(Recorder, F));
    } else {
      // Planned sites: the blame path starts at the directive fact; its
      // derivation (verdict, fixpoint) follows.
      for (uint32_t F : C.Facts)
        C.Steps.push_back(stepForFact(Recorder, F));
    }
    C.Steps.push_back(terminalStep(Ast, SI));
    R.Chains.push_back(std::move(C));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::vector<const BlameChain *>
ExplainReport::chainsAt(const SourceManager &SM, LineColumn LC) const {
  std::vector<const BlameChain *> Exact, OnLine;
  for (const BlameChain &C : Chains) {
    LineColumn Here = SM.lineColumn(C.SiteLoc);
    if (Here.Line != LC.Line)
      continue;
    OnLine.push_back(&C);
    if (LC.Column != 0 && Here.Column == LC.Column)
      Exact.push_back(&C);
  }
  return Exact.empty() ? OnLine : Exact;
}

std::string ExplainReport::renderText(const SourceManager &SM) const {
  std::ostringstream OS;
  bool First = true;
  for (const BlameChain &C : Chains) {
    if (!First)
      OS << '\n';
    First = false;
    OS << locString(SM, C.SiteLoc) << ": "
       << (C.Op == PrimOp::MkPair ? "pair cell" : "cons cell") << " -> "
       << siteStorageName(C.Storage);
    if (!C.Code.empty())
      OS << " [" << C.Code << "]";
    OS << '\n';
    for (size_t I = 0; I != C.Steps.size(); ++I) {
      const BlameStep &S = C.Steps[I];
      OS << "  " << (I + 1) << ". " << S.Title << ": " << S.Detail;
      if (S.Loc.isValid())
        OS << " (at " << locString(SM, S.Loc) << ')';
      OS << '\n';
      // Fixpoint facts carry their Appendix-A iterates; print them as the
      // derivation's inner lines.
      if (Recorder && S.FactRef != NoFact) {
        const Fact &F = Recorder->fact(S.FactRef);
        if (F.Kind == FactKind::Binding)
          for (const RaiseEvent &E : F.Raises)
            OS << "       " << F.Label << "^(" << E.Round
               << ") = " << E.Value << '\n';
      }
    }
  }
  return OS.str();
}

std::string ExplainReport::toJson(const SourceManager &SM,
                                  const std::string &Command,
                                  bool Success) const {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"schema\": \"eal-explain-v1\",\n"
     << "  \"command\": " << obs::jsonQuote(Command) << ",\n"
     << "  \"file\": " << obs::jsonQuote(SM.name()) << ",\n"
     << "  \"success\": " << (Success ? "true" : "false") << ",\n";
  OS << "  \"graph\": {\"facts\": " << (Recorder ? Recorder->numFacts() : 0)
     << ", \"edges\": " << (Recorder ? Recorder->numEdges() : 0)
     << ", \"raises\": " << (Recorder ? Recorder->numRaises() : 0)
     << ", \"max_depth\": " << (Recorder ? Recorder->maxDepth() : 0)
     << "},\n";

  OS << "  \"chains\": [";
  for (size_t I = 0; I != Chains.size(); ++I) {
    const BlameChain &C = Chains[I];
    LineColumn LC = SM.lineColumn(C.SiteLoc);
    OS << (I ? ",\n" : "\n") << "    {\"site\": {\"id\": " << C.SiteId
       << ", \"line\": " << LC.Line << ", \"col\": " << LC.Column
       << ", \"prim\": "
       << obs::jsonQuote(C.Op == PrimOp::MkPair ? "mkpair" : "cons")
       << ", \"storage\": " << obs::jsonQuote(siteStorageName(C.Storage))
       << ", \"code\": ";
    if (C.Code.empty())
      OS << "null";
    else
      OS << obs::jsonQuote(C.Code);
    OS << "},\n     \"steps\": [";
    for (size_t J = 0; J != C.Steps.size(); ++J) {
      const BlameStep &S = C.Steps[J];
      LineColumn SL = SM.lineColumn(S.Loc);
      OS << (J ? ",\n       " : "\n       ") << "{\"title\": "
         << obs::jsonQuote(S.Title) << ", \"detail\": "
         << obs::jsonQuote(S.Detail) << ", \"line\": " << SL.Line
         << ", \"col\": " << SL.Column << ", \"fact\": ";
      if (S.FactRef == NoFact)
        OS << "null";
      else
        OS << S.FactRef;
      OS << "}";
    }
    OS << "\n     ],\n     \"facts\": [";
    for (size_t J = 0; J != C.Facts.size(); ++J)
      OS << (J ? ", " : "") << C.Facts[J];
    OS << "]}";
  }
  OS << "\n  ],\n";

  OS << "  \"facts\": [";
  size_t NumFacts = Recorder ? Recorder->numFacts() : 0;
  for (size_t I = 0; I != NumFacts; ++I) {
    const Fact &F = Recorder->fact(static_cast<uint32_t>(I));
    LineColumn LC = SM.lineColumn(F.Loc);
    OS << (I ? ",\n" : "\n") << "    {\"id\": " << I << ", \"kind\": "
       << obs::jsonQuote(factKindName(F.Kind)) << ", \"label\": "
       << obs::jsonQuote(F.Label) << ", \"equation\": "
       << obs::jsonQuote(F.Equation) << ", \"line\": " << LC.Line
       << ", \"col\": " << LC.Column << ", \"result\": "
       << obs::jsonQuote(F.Result) << ",\n     \"deps\": [";
    for (size_t J = 0; J != F.Deps.size(); ++J)
      OS << (J ? ", " : "") << F.Deps[J];
    OS << "], \"raises\": [";
    for (size_t J = 0; J != F.Raises.size(); ++J) {
      const RaiseEvent &E = F.Raises[J];
      OS << (J ? ", " : "") << "{\"round\": " << E.Round << ", \"value\": "
         << obs::jsonQuote(E.Value) << ", \"deps\": [";
      for (size_t K = 0; K != E.Deps.size(); ++K)
        OS << (K ? ", " : "") << E.Deps[K];
      OS << "]}";
    }
    OS << "]}";
  }
  OS << "\n  ]\n}\n";
  return OS.str();
}

std::string ExplainReport::toDot() const {
  std::unordered_set<uint32_t> OnChain;
  for (const BlameChain &C : Chains)
    for (uint32_t F : C.Facts)
      OnChain.insert(F);

  auto Quote = [](std::string_view S) {
    std::string Out;
    Out.reserve(S.size());
    for (char Ch : S) {
      if (Ch == '"' || Ch == '\\')
        Out += '\\';
      Out += Ch == '\n' ? ' ' : Ch;
    }
    return Out;
  };

  std::ostringstream OS;
  OS << "digraph provenance {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n";
  size_t NumFacts = Recorder ? Recorder->numFacts() : 0;
  for (size_t I = 0; I != NumFacts; ++I) {
    const Fact &F = Recorder->fact(static_cast<uint32_t>(I));
    OS << "  f" << I << " [label=\"" << factKindName(F.Kind) << ": "
       << Quote(F.Label);
    if (!F.Result.empty())
      OS << "\\n= " << Quote(F.Result);
    OS << '"';
    if (OnChain.count(static_cast<uint32_t>(I)))
      OS << ", penwidth=2, color=red";
    OS << "];\n";
  }
  for (size_t I = 0; I != NumFacts; ++I) {
    const Fact &F = Recorder->fact(static_cast<uint32_t>(I));
    for (uint32_t Dep : F.Deps)
      OS << "  f" << I << " -> f" << Dep << ";\n";
  }
  OS << "}\n";
  return OS.str();
}

//===- Explain.h - Blame chains from provenance graphs ----------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a ProvenanceRecorder's fact graph into *blame chains*: for every
/// cons/pair allocation site of the final program, a minimal derivation
/// from the site to the program point that decides its storage — the
/// escaping return that forces heap residency, or the escape verdict that
/// justified a stack/region directive (docs/EXPLAIN.md).
///
/// The site classifier walks the final program exactly like the EAL-O
/// linter pass (same context propagation, same verdict queries), so the
/// linter itself is built on it: one walk yields both the findings and
/// the chains, and the two can never disagree about why a cell stayed on
/// the GC heap.
///
/// Renderable as human-readable text (`eal explain`), as the
/// eal-explain-v1 JSON schema (validated by tools/check_explain_json.py),
/// and as a Graphviz DOT graph.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_EXPLAIN_EXPLAIN_H
#define EAL_EXPLAIN_EXPLAIN_H

#include "escape/EscapeAnalyzer.h"
#include "explain/Provenance.h"
#include "opt/AllocPlanner.h"

#include <string>
#include <vector>

namespace eal {

class SourceManager;

namespace explain {

/// Where a site's cells live under the final allocation plan.
enum class SiteStorage : uint8_t { Heap, Stack, Region };

/// Returns "heap" / "stack" / "region".
const char *siteStorageName(SiteStorage S);

/// Why the cells at a site would (not) be protected: the verdict of the
/// escape test on the surrounding argument position, plus where the site
/// sits relative to the argument's graded spines.
struct SiteContext {
  enum KindT {
    None,          ///< result/let/program position: nothing protects
    Protected,     ///< argument with a positive protected prefix
    EscapesResult, ///< argument the verdict says escapes
    UnknownCallee, ///< argument of a call the local test cannot see
  } Kind = None;
  Symbol Callee;
  unsigned ArgIndex = 0;
  unsigned ProtectedSpines = 0;
  unsigned EscapingSpines = 0;
  unsigned Level = 1;    ///< spine level within the argument
  bool Detached = false; ///< left the spine (element position etc.)
  /// The Query fact the verdict was derived under (NoFact when the
  /// analyzer had no recorder attached).
  uint32_t VerdictProv = NoFact;
  /// The call application that established this context.
  SourceLoc CallLoc;
};

/// One classified allocation site of the final program.
struct SiteInfo {
  const Expr *Site = nullptr;
  PrimOp Op = PrimOp::Cons;
  SiteStorage Storage = SiteStorage::Heap;
  SiteContext Ctx;
  /// Planned sites: the covering directive's Decision fact (NoFact when
  /// the planner had no recorder attached, or for heap sites).
  uint32_t PlanProv = NoFact;
  /// Planned sites: the callee whose activation owns the arena, straight
  /// from the directive. Ctx.Callee cannot stand in for it: the classifier
  /// walk may reach a planned site through a context that never entered a
  /// protecting call (Ctx.Kind == None, Callee invalid).
  Symbol PlanOwner;
};

/// Walks the final program (every top-level binding body, then the
/// program body) and classifies every cons/mkpair site: its storage under
/// \p Plan and the escape-test context of its position. \p Analyzer must
/// wrap the same program; verdicts are queried through it, so a recorder
/// attached to it yields VerdictProv anchors.
std::vector<SiteInfo> classifySites(const AstContext &Ast,
                                    const TypedProgram &Program,
                                    EscapeAnalyzer &Analyzer,
                                    const AllocationPlan &Plan);

/// The linter/explain note text for \p Site's classification — the EAL-O
/// story of why the cell stays on the GC heap (heap sites only; shared by
/// the linter and the chain builder so they can never diverge).
std::string describeSite(const AstContext &Ast, PrimOp Op,
                         const SiteContext &Ctx);

/// The finding code describeSite's story carries: "EAL-O001" (escapes via
/// result), "EAL-O002" (below/at the protected prefix), "EAL-O003"
/// (unknown callee), "EAL-O004" (no protecting call site).
const char *findingCode(const SiteContext &Ctx);

/// Shortest dependency path (BFS over Deps edges) from \p From to a
/// fixpoint Binding fact — the leaf that actually decided the verdict.
/// Falls back to the path to the nearest dependency-free fact when no
/// Binding is reachable; returns {From} for a lone fact and {} for
/// NoFact.
std::vector<uint32_t> blamePath(const ProvenanceRecorder &P, uint32_t From);

/// One step of a rendered blame chain.
struct BlameStep {
  std::string Title;  ///< "allocation site", "escape verdict", ...
  std::string Detail; ///< human-readable story for this step
  SourceLoc Loc;
  uint32_t FactRef = NoFact; ///< the graph fact this step renders, if any
};

/// The derivation for one allocation site: from the site to the program
/// point deciding its storage.
struct BlameChain {
  uint32_t SiteId = 0; ///< AST node id of the allocation application
  SourceLoc SiteLoc;
  PrimOp Op = PrimOp::Cons;
  SiteStorage Storage = SiteStorage::Heap;
  /// EAL-O code for heap sites (matches the linter's note); empty for
  /// planned (stack/region) sites.
  std::string Code;
  std::vector<BlameStep> Steps;
  /// The blame path: fact ids from the verdict down to the fixpoint leaf.
  std::vector<uint32_t> Facts;
};

/// Chains for every site, plus the graph they index into.
struct ExplainReport {
  /// The recorder the chains reference (not owned; must outlive this).
  const ProvenanceRecorder *Recorder = nullptr;
  std::vector<BlameChain> Chains;

  /// Chains whose site covers \p LC (the `--at=line:col` filter): exact
  /// position match first; when nothing matches exactly, every chain on
  /// that line.
  std::vector<const BlameChain *> chainsAt(const SourceManager &SM,
                                           LineColumn LC) const;

  /// Human-readable rendering: one indented step list per chain.
  std::string renderText(const SourceManager &SM) const;
  /// The eal-explain-v1 JSON document. \p Command and \p Success describe
  /// the producing invocation (mirrors eal-check-v1).
  std::string toJson(const SourceManager &SM, const std::string &Command,
                     bool Success) const;
  /// The provenance graph as Graphviz DOT (chain facts highlighted).
  std::string toDot() const;
};

/// Builds the chains for \p Sites against \p Recorder's graph.
ExplainReport buildExplainReport(const AstContext &Ast,
                                 const TypedProgram &Program,
                                 const std::vector<SiteInfo> &Sites,
                                 const ProvenanceRecorder &Recorder);

} // namespace explain
} // namespace eal

#endif // EAL_EXPLAIN_EXPLAIN_H

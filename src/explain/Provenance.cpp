//===- Provenance.cpp -----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "explain/Provenance.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace eal;
using namespace eal::explain;

const char *eal::explain::factKindName(FactKind K) {
  switch (K) {
  case FactKind::Binding:
    return "binding";
  case FactKind::Apply:
    return "apply";
  case FactKind::Query:
    return "query";
  case FactKind::Sharing:
    return "sharing";
  case FactKind::Decision:
    return "decision";
  case FactKind::Finding:
    return "finding";
  case FactKind::Liveness:
    return "liveness";
  case FactKind::Speculation:
    return "speculation";
  }
  return "unknown";
}

static uint64_t indexKey(FactKind K, uint32_t Ns) {
  return (static_cast<uint64_t>(K) << 32) | Ns;
}

uint32_t ProvenanceRecorder::lookup(FactKind K, uint32_t Ns,
                                    uint64_t Key) const {
  auto Outer = Index.find(indexKey(K, Ns));
  if (Outer == Index.end())
    return NoFact;
  auto Inner = Outer->second.find(Key);
  return Inner == Outer->second.end() ? NoFact : Inner->second;
}

uint32_t ProvenanceRecorder::create(FactKind K, uint32_t Ns, uint64_t Key,
                                    std::string Label, std::string Equation,
                                    SourceLoc Loc) {
  uint32_t Id = fresh(K, std::move(Label), std::move(Equation), Loc);
  bool Inserted = Index[indexKey(K, Ns)].emplace(Key, Id).second;
  assert(Inserted && "provenance key created twice");
  (void)Inserted;
  return Id;
}

uint32_t ProvenanceRecorder::fresh(FactKind K, std::string Label,
                                   std::string Equation, SourceLoc Loc) {
  Fact F;
  F.Kind = K;
  F.Label = std::move(Label);
  F.Equation = std::move(Equation);
  F.Loc = Loc;
  Facts.push_back(std::move(F));
  return static_cast<uint32_t>(Facts.size() - 1);
}

void ProvenanceRecorder::open(uint32_t F) {
  assert(F < Facts.size() && "opening unknown fact");
  Stack.push_back(Frame{F, {}});
}

void ProvenanceRecorder::close(uint32_t F) {
  assert(!Stack.empty() && Stack.back().FactId == F &&
         "provenance frames must nest");
  (void)F;
  Frame Top = std::move(Stack.back());
  Stack.pop_back();
  Fact &Fct = Facts[Top.FactId];
  for (uint32_t Dep : Top.Reads)
    addDep(Fct, Dep);
}

void ProvenanceRecorder::read(uint32_t F) {
  if (F == NoFact || Stack.empty())
    return;
  Frame &Top = Stack.back();
  if (Top.FactId == F)
    return; // a recursive self-read carries no information
  if (std::find(Top.Reads.begin(), Top.Reads.end(), F) == Top.Reads.end())
    Top.Reads.push_back(F);
}

void ProvenanceRecorder::raise(uint32_t F, unsigned Round,
                               std::string Value) {
  assert(!Stack.empty() && Stack.back().FactId == F &&
         "raise outside the fact's own frame");
  RaiseEvent E;
  E.Round = Round;
  E.Value = std::move(Value);
  E.Deps = Stack.back().Reads;
  Fact &Fct = Facts[F];
  for (uint32_t Dep : E.Deps)
    addDep(Fct, Dep);
  Fct.Raises.push_back(std::move(E));
  ++RaiseCount;
}

void ProvenanceRecorder::result(uint32_t F, std::string Value) {
  Facts[F].Result = std::move(Value);
}

void ProvenanceRecorder::depend(uint32_t From, uint32_t To) {
  if (From == NoFact || To == NoFact || From == To)
    return;
  addDep(Facts[From], To);
}

void ProvenanceRecorder::addDep(Fact &F, uint32_t Dep) {
  if (std::find(F.Deps.begin(), F.Deps.end(), Dep) != F.Deps.end())
    return;
  F.Deps.push_back(Dep);
  ++EdgeCount;
}

unsigned ProvenanceRecorder::depthOf(uint32_t F, std::vector<uint8_t> &State,
                                     std::vector<unsigned> &Memo) const {
  if (State[F] == 2)
    return Memo[F];
  if (State[F] == 1)
    return 0; // back edge of a recursive derivation: cut the cycle
  State[F] = 1;
  unsigned Best = 0;
  for (uint32_t Dep : Facts[F].Deps)
    Best = std::max(Best, depthOf(Dep, State, Memo));
  State[F] = 2;
  Memo[F] = Best + 1;
  return Memo[F];
}

unsigned ProvenanceRecorder::maxDepth() const {
  std::vector<uint8_t> State(Facts.size(), 0);
  std::vector<unsigned> Memo(Facts.size(), 0);
  unsigned Best = 0;
  for (uint32_t F = 0; F != Facts.size(); ++F)
    Best = std::max(Best, depthOf(F, State, Memo));
  return Best;
}

void ProvenanceRecorder::exportTo(obs::MetricsRegistry &Reg) const {
  Reg.counter("explain.facts").max(numFacts());
  Reg.counter("explain.edges").max(numEdges());
  Reg.counter("explain.raises").max(numRaises());
  Reg.counter("explain.max_depth").max(maxDepth());
}

//===- Provenance.h - Why-provenance for escape facts -----------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recorder for *why*-provenance of analysis facts (docs/EXPLAIN.md).
/// Every lattice join that raises a cached escape value, every escape
/// query, every Theorem 2 sharing derivation, and every optimizer
/// decision can register a Fact; edges between facts say which prior
/// facts were consumed to derive each one. The resulting graph is what
/// `eal explain` walks to print blame chains from an allocation site to
/// the program point that forces heap residency.
///
/// Cost discipline (same as eal::obs): producers hold a
/// `ProvenanceRecorder *` that is null unless explanation was requested,
/// and guard every recording site with one pointer test. With the
/// recorder detached there is zero provenance allocation.
///
/// Recording protocol, mirroring a memoizing fixpoint evaluator:
///
///   uint32_t F = P->lookup(Kind, Ns, Key);       // hot path: no strings
///   if (F == NoFact)
///     F = P->create(Kind, Ns, Key, label, eq, loc);
///   P->read(F);            // the innermost open fact consumed F
///   if (cache hit) return; // reads alone still build edges
///   P->open(F);
///   ... evaluate; nested lookups call read() into F's frame ...
///   if (value moved up the lattice)
///     P->raise(F, Round, renderedValue);         // snapshots frame reads
///   P->result(F, renderedValue);
///   P->close(F);
///
/// Keys are caller-chosen 64-bit cache keys; a namespace (allocated per
/// attached analysis with allocNamespace()) keeps the key spaces of
/// independent analyzers — e.g. the optimizer's base and final escape
/// passes — from colliding.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_EXPLAIN_PROVENANCE_H
#define EAL_EXPLAIN_PROVENANCE_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace eal {

namespace obs {
class MetricsRegistry;
}

namespace explain {

/// Sentinel fact id: "no provenance recorded".
constexpr uint32_t NoFact = ~0u;

/// What kind of derivation a fact stands for.
enum class FactKind : uint8_t {
  Binding,  ///< a letrec binding's fixpoint iterate (append^(k), A.1)
  Apply,    ///< one (closure, argument) apply-cache entry (§3.4)
  Query,    ///< a top-level escape test: G (§4.1) or L (§4.2)
  Sharing,  ///< a Theorem 2 sharing derivation
  Decision, ///< an optimizer decision (arena directive, reuse version)
  Finding,  ///< a check finding anchored into the graph
  Liveness, ///< a heap-liveness fact: a summary or site demand (eal::live)
  /// A speculative re-classification (src/spec): the spec planner bet
  /// that a profile-cold branch never runs, re-ran the escape analysis
  /// on the branch-pruned program, and planted a guarded arena
  /// directive. Depends on the guarded Decision fact and cites the
  /// profile evidence in its label (docs/SPECULATION.md).
  Speculation,
};

/// Returns "binding" / "apply" / "query" / "sharing" / "decision" /
/// "finding" / "liveness" / "speculation".
const char *factKindName(FactKind K);

/// One lattice raise of a fact: the fixpoint round it happened in, the
/// rendered value after the join, and the facts consumed computing it.
struct RaiseEvent {
  unsigned Round = 0;
  std::string Value;
  std::vector<uint32_t> Deps;
};

/// One node of the provenance graph.
struct Fact {
  FactKind Kind = FactKind::Binding;
  /// Display name: "append", "G(append, 2)", "apply(<1,1>)", ...
  std::string Label;
  /// The equation/rule applied: "letrec-fix (§3.5)", "G (§4.1)", ...
  std::string Equation;
  SourceLoc Loc;
  /// Final rendered value (set by result()).
  std::string Result;
  std::vector<RaiseEvent> Raises;
  /// Union of every fact ever consumed while deriving this one.
  std::vector<uint32_t> Deps;
};

/// Records facts and their derivation edges. Not thread-safe (analyses
/// are single-threaded).
class ProvenanceRecorder {
public:
  /// Allocates a fresh namespace for one attached analysis.
  uint32_t allocNamespace() { return ++LastNamespace; }

  /// Finds the fact previously created under (Kind, Ns, Key); NoFact if
  /// none. Allocation-free: safe on cache-hit hot paths.
  uint32_t lookup(FactKind K, uint32_t Ns, uint64_t Key) const;

  /// Creates (and indexes) a fact under (Kind, Ns, Key). The key must
  /// not already be present.
  uint32_t create(FactKind K, uint32_t Ns, uint64_t Key, std::string Label,
                  std::string Equation, SourceLoc Loc);

  /// Creates an unkeyed fact (optimizer decisions, findings).
  uint32_t fresh(FactKind K, std::string Label, std::string Equation,
                 SourceLoc Loc);

  /// Pushes \p F as the innermost open fact: nested read()s accrue to it.
  void open(uint32_t F);
  /// Pops \p F (must be the innermost open fact) and folds its remaining
  /// reads into its dependency set.
  void close(uint32_t F);
  /// Records that the innermost open fact consumed \p F. No-op with no
  /// open fact, for self-reads, and for NoFact.
  void read(uint32_t F);
  /// Records a lattice raise of the innermost open fact \p F, capturing
  /// the reads of its frame so far as the raise's dependencies.
  void raise(uint32_t F, unsigned Round, std::string Value);
  /// Sets the final rendered value of \p F.
  void result(uint32_t F, std::string Value);
  /// Adds an explicit derivation edge From -> To ("From consumed To").
  void depend(uint32_t From, uint32_t To);

  const std::vector<Fact> &facts() const { return Facts; }
  const Fact &fact(uint32_t F) const { return Facts[F]; }
  size_t numFacts() const { return Facts.size(); }
  size_t numEdges() const { return EdgeCount; }
  size_t numRaises() const { return RaiseCount; }
  /// Length of the longest acyclic dependency chain (1 for a lone fact;
  /// 0 for an empty graph). Cycles — mutually recursive bindings — are
  /// cut at the back edge.
  unsigned maxDepth() const;

  /// Publishes graph size/depth as explain.* counters.
  void exportTo(obs::MetricsRegistry &Reg) const;

private:
  struct Frame {
    uint32_t FactId = NoFact;
    std::vector<uint32_t> Reads;
  };

  void addDep(Fact &F, uint32_t Dep);
  unsigned depthOf(uint32_t F, std::vector<uint8_t> &State,
                   std::vector<unsigned> &Memo) const;

  std::vector<Fact> Facts;
  std::vector<Frame> Stack;
  /// (Kind<<32 | Ns) -> Key -> fact id.
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint32_t>> Index;
  uint32_t LastNamespace = 0;
  size_t EdgeCount = 0;
  size_t RaiseCount = 0;
};

} // namespace explain
} // namespace eal

#endif // EAL_EXPLAIN_PROVENANCE_H

//===- Ast.cpp ------------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace eal;

std::string_view eal::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::Add:
    return "+";
  case PrimOp::Sub:
    return "-";
  case PrimOp::Mul:
    return "*";
  case PrimOp::Div:
    return "div";
  case PrimOp::Mod:
    return "mod";
  case PrimOp::Eq:
    return "=";
  case PrimOp::Ne:
    return "<>";
  case PrimOp::Lt:
    return "<";
  case PrimOp::Le:
    return "<=";
  case PrimOp::Gt:
    return ">";
  case PrimOp::Ge:
    return ">=";
  case PrimOp::Not:
    return "not";
  case PrimOp::Cons:
    return "cons";
  case PrimOp::Car:
    return "car";
  case PrimOp::Cdr:
    return "cdr";
  case PrimOp::Null:
    return "null";
  case PrimOp::DCons:
    return "dcons";
  case PrimOp::MkPair:
    return "pair";
  case PrimOp::Fst:
    return "fst";
  case PrimOp::Snd:
    return "snd";
  }
  return "<unknown prim>";
}

unsigned eal::primOpArity(PrimOp Op) {
  switch (Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod:
  case PrimOp::Eq:
  case PrimOp::Ne:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge:
  case PrimOp::Cons:
  case PrimOp::MkPair:
    return 2;
  case PrimOp::Not:
  case PrimOp::Car:
  case PrimOp::Cdr:
  case PrimOp::Null:
  case PrimOp::Fst:
  case PrimOp::Snd:
    return 1;
  case PrimOp::DCons:
    return 3;
  }
  return 0;
}

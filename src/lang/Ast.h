//===- Ast.h - nml abstract syntax ------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nml abstract syntax, following §3.1 of the paper:
///
///   e ::= c | x | e1 e2 | lambda(x).e | if e1 then e2 else e3
///       | letrec x1 = e1; ... xn = en in e
///
/// Constants (Con) cover integers, booleans, nil, and the primitive
/// functions (+, -, =, <, cons, car, cdr, null, ...). We additionally keep
/// a non-recursive `let` node (sugar the paper elides) and the destructive
/// `DCONS` primitive of §6, which the optimizer introduces.
///
/// Nodes are arena-allocated, immutable after construction, and carry a
/// unique id used to key side tables (types, spine annotations,
/// allocation-site annotations).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_AST_H
#define EAL_LANG_AST_H

#include "support/Arena.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace eal {

class AstContext;

/// Discriminator for the Expr hierarchy.
enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  NilLit,
  Var,
  Prim,
  App,
  Lambda,
  If,
  Let,
  Letrec,
};

/// The primitive functions of nml (the function-valued members of Con).
enum class PrimOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  Not,
  Cons,
  Car,
  Cdr,
  Null,
  /// Destructive cons (§6): `dcons p b c` overwrites cell p with (b, c)
  /// and returns it. Never written by users; introduced by the in-place
  /// reuse transformation.
  DCons,
  /// Pair construction and projection (the §1 tuple extension).
  MkPair,
  Fst,
  Snd,
};

/// Returns the surface spelling of \p Op ("cons", "+", ...).
std::string_view primOpName(PrimOp Op);

/// Returns the number of curried arguments \p Op consumes.
unsigned primOpArity(PrimOp Op);

/// Base class of all nml expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceRange range() const { return Range; }
  SourceLoc loc() const { return Range.Begin; }

  /// Unique, dense id within the owning AstContext; usable as a vector
  /// index for side tables.
  uint32_t id() const { return Id; }

protected:
  Expr(ExprKind Kind, SourceRange Range, uint32_t Id)
      : Kind(Kind), Range(Range), Id(Id) {}

private:
  ExprKind Kind;
  SourceRange Range;
  uint32_t Id;
};

/// An integer constant.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceRange Range, uint32_t Id, int64_t Value)
      : Expr(ExprKind::IntLit, Range, Id), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// A boolean constant.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(SourceRange Range, uint32_t Id, bool Value)
      : Expr(ExprKind::BoolLit, Range, Id), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

private:
  bool Value;
};

/// The empty list `nil`.
class NilLitExpr : public Expr {
public:
  NilLitExpr(SourceRange Range, uint32_t Id)
      : Expr(ExprKind::NilLit, Range, Id) {}

  static bool classof(const Expr *E) { return E->kind() == ExprKind::NilLit; }
};

/// A variable reference.
class VarExpr : public Expr {
public:
  VarExpr(SourceRange Range, uint32_t Id, Symbol Name)
      : Expr(ExprKind::Var, Range, Id), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  Symbol Name;
};

/// A reference to a primitive function.
class PrimExpr : public Expr {
public:
  PrimExpr(SourceRange Range, uint32_t Id, PrimOp Op)
      : Expr(ExprKind::Prim, Range, Id), Op(Op) {}

  PrimOp op() const { return Op; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim; }

private:
  PrimOp Op;
};

/// A (curried) application `e1 e2`.
class AppExpr : public Expr {
public:
  AppExpr(SourceRange Range, uint32_t Id, const Expr *Fn, const Expr *Arg)
      : Expr(ExprKind::App, Range, Id), Fn(Fn), Arg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

/// `lambda(x). e`.
class LambdaExpr : public Expr {
public:
  LambdaExpr(SourceRange Range, uint32_t Id, Symbol Param, const Expr *Body)
      : Expr(ExprKind::Lambda, Range, Id), Param(Param), Body(Body) {}

  Symbol param() const { return Param; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lambda; }

private:
  Symbol Param;
  const Expr *Body;
};

/// `if e1 then e2 else e3`.
class IfExpr : public Expr {
public:
  IfExpr(SourceRange Range, uint32_t Id, const Expr *Cond, const Expr *Then,
         const Expr *Else)
      : Expr(ExprKind::If, Range, Id), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const Expr *thenExpr() const { return Then; }
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }

private:
  const Expr *Cond;
  const Expr *Then;
  const Expr *Else;
};

/// Non-recursive `let x = e1 in e2`.
class LetExpr : public Expr {
public:
  LetExpr(SourceRange Range, uint32_t Id, Symbol Name, const Expr *Value,
          const Expr *Body)
      : Expr(ExprKind::Let, Range, Id), Name(Name), Value(Value), Body(Body) {}

  Symbol name() const { return Name; }
  const Expr *value() const { return Value; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }

private:
  Symbol Name;
  const Expr *Value;
  const Expr *Body;
};

/// One binding `x = e` of a letrec.
struct LetrecBinding {
  Symbol Name;
  const Expr *Value = nullptr;
  SourceLoc NameLoc;
};

/// `letrec x1 = e1; ... xn = en in e`. All bindings are in scope in every
/// ei and in the body.
class LetrecExpr : public Expr {
public:
  LetrecExpr(SourceRange Range, uint32_t Id, const LetrecBinding *Bindings,
             size_t NumBindings, const Expr *Body)
      : Expr(ExprKind::Letrec, Range, Id), Bindings(Bindings),
        NumBindings(NumBindings), Body(Body) {}

  std::span<const LetrecBinding> bindings() const {
    return {Bindings, NumBindings};
  }
  const Expr *body() const { return Body; }

  /// Returns the binding for \p Name, or null if absent.
  const LetrecBinding *findBinding(Symbol Name) const {
    for (const LetrecBinding &B : bindings())
      if (B.Name == Name)
        return &B;
    return nullptr;
  }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Letrec; }

private:
  const LetrecBinding *Bindings;
  size_t NumBindings;
  const Expr *Body;
};

/// Owns the memory, identifier table, and node ids of one nml program
/// (plus any transformed variants of it).
class AstContext {
public:
  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

  Symbol intern(std::string_view Spelling) {
    return Interner.intern(Spelling);
  }
  std::string_view spelling(Symbol Sym) const {
    return Interner.spelling(Sym);
  }

  /// Number of nodes created so far; node ids are < this bound.
  uint32_t numNodes() const { return NextId; }

  const IntLitExpr *createIntLit(SourceRange R, int64_t Value) {
    return Mem.create<IntLitExpr>(R, NextId++, Value);
  }
  const BoolLitExpr *createBoolLit(SourceRange R, bool Value) {
    return Mem.create<BoolLitExpr>(R, NextId++, Value);
  }
  const NilLitExpr *createNilLit(SourceRange R) {
    return Mem.create<NilLitExpr>(R, NextId++);
  }
  const VarExpr *createVar(SourceRange R, Symbol Name) {
    return Mem.create<VarExpr>(R, NextId++, Name);
  }
  const PrimExpr *createPrim(SourceRange R, PrimOp Op) {
    return Mem.create<PrimExpr>(R, NextId++, Op);
  }
  const AppExpr *createApp(SourceRange R, const Expr *Fn, const Expr *Arg) {
    return Mem.create<AppExpr>(R, NextId++, Fn, Arg);
  }
  const LambdaExpr *createLambda(SourceRange R, Symbol Param,
                                 const Expr *Body) {
    return Mem.create<LambdaExpr>(R, NextId++, Param, Body);
  }
  const IfExpr *createIf(SourceRange R, const Expr *Cond, const Expr *Then,
                         const Expr *Else) {
    return Mem.create<IfExpr>(R, NextId++, Cond, Then, Else);
  }
  const LetExpr *createLet(SourceRange R, Symbol Name, const Expr *Value,
                           const Expr *Body) {
    return Mem.create<LetExpr>(R, NextId++, Name, Value, Body);
  }
  const LetrecExpr *createLetrec(SourceRange R,
                                 const std::vector<LetrecBinding> &Bindings,
                                 const Expr *Body) {
    const LetrecBinding *Copy =
        Mem.copyArray(Bindings.data(), Bindings.size());
    return Mem.create<LetrecExpr>(R, NextId++, Copy, Bindings.size(), Body);
  }

  /// Builds `((Fn A1) A2) ...` with synthesized ranges.
  const Expr *createAppChain(SourceRange R, const Expr *Fn,
                             std::span<const Expr *const> Args) {
    const Expr *Result = Fn;
    for (const Expr *Arg : Args)
      Result = createApp(R, Result, Arg);
    return Result;
  }

private:
  Arena Mem;
  StringInterner Interner;
  uint32_t NextId = 0;
};

} // namespace eal

#endif // EAL_LANG_AST_H

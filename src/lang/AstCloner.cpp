//===- AstCloner.cpp ------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/AstCloner.h"

#include <cassert>
#include <vector>

using namespace eal;

const Expr *AstCloner::clone(const Expr *E) {
  assert(E && "cloning a null expression");
  if (const Expr *Replacement = rewrite(E))
    return Replacement;
  return cloneDefault(E);
}

const Expr *AstCloner::cloneDefault(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Ctx.createIntLit(E->range(), cast<IntLitExpr>(E)->value());
  case ExprKind::BoolLit:
    return Ctx.createBoolLit(E->range(), cast<BoolLitExpr>(E)->value());
  case ExprKind::NilLit:
    return Ctx.createNilLit(E->range());
  case ExprKind::Var:
    return Ctx.createVar(E->range(), cast<VarExpr>(E)->name());
  case ExprKind::Prim:
    return Ctx.createPrim(E->range(), cast<PrimExpr>(E)->op());
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    return Ctx.createApp(E->range(), clone(App->fn()), clone(App->arg()));
  }
  case ExprKind::Lambda: {
    const auto *Lambda = cast<LambdaExpr>(E);
    return Ctx.createLambda(E->range(), Lambda->param(),
                            clone(Lambda->body()));
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    return Ctx.createIf(E->range(), clone(If->cond()), clone(If->thenExpr()),
                        clone(If->elseExpr()));
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    return Ctx.createLet(E->range(), Let->name(), clone(Let->value()),
                         clone(Let->body()));
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    std::vector<LetrecBinding> Bindings;
    for (const LetrecBinding &B : Letrec->bindings()) {
      LetrecBinding NB = B;
      NB.Value = clone(B.Value);
      Bindings.push_back(NB);
    }
    return Ctx.createLetrec(E->range(), Bindings, clone(Letrec->body()));
  }
  }
  assert(false && "unhandled expression kind");
  return nullptr;
}

//===- AstCloner.h - Deep AST cloning with rewrite hooks --------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-copies nml ASTs, giving every node a fresh id. Transformations
/// (the DCONS rewrite of §6, call-site retargeting) subclass AstCloner and
/// override rewrite() to replace selected subtrees.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_ASTCLONER_H
#define EAL_LANG_ASTCLONER_H

#include "lang/Ast.h"

namespace eal {

/// Clones expressions into an AstContext (typically the same one the
/// source came from; node ids stay unique either way).
class AstCloner {
public:
  explicit AstCloner(AstContext &Ctx) : Ctx(Ctx) {}
  virtual ~AstCloner() = default;

  /// Returns a deep copy of \p E with rewrite() applied at every node.
  const Expr *clone(const Expr *E);

protected:
  /// Override point. Return a replacement for \p E (built with cloneDefault
  /// / clone on subtrees as needed), or null to clone \p E structurally.
  virtual const Expr *rewrite(const Expr *E) {
    (void)E;
    return nullptr;
  }

  /// Structural clone of \p E (children via clone()).
  const Expr *cloneDefault(const Expr *E);

  AstContext &Ctx;
};

} // namespace eal

#endif // EAL_LANG_ASTCLONER_H

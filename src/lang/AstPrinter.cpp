//===- AstPrinter.cpp -----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "lang/Ast.h"

#include <cassert>
#include <sstream>
#include <vector>

using namespace eal;

namespace {

/// Binding strength used to decide parenthesization. Higher is tighter.
enum Precedence : unsigned {
  PrecExpr = 0,       // if / lambda / let / letrec
  PrecRelational = 1, // = <> < <= > >=
  PrecCons = 2,       // ::
  PrecAdditive = 3,   // + -
  PrecMult = 4,       // * div mod
  PrecApp = 5,        // juxtaposition
  PrecPrimary = 6,
};

/// Returns the infix precedence of \p Op, or PrecApp if \p Op has no infix
/// form (cons is special-cased separately).
Precedence infixPrecedence(PrimOp Op) {
  switch (Op) {
  case PrimOp::Eq:
  case PrimOp::Ne:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge:
    return PrecRelational;
  case PrimOp::Add:
  case PrimOp::Sub:
    return PrecAdditive;
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod:
    return PrecMult;
  default:
    return PrecApp;
  }
}

bool hasInfixForm(PrimOp Op) { return infixPrecedence(Op) != PrecApp; }

/// True for primitives whose name is a parsable identifier.
bool hasNamedForm(PrimOp Op) {
  switch (Op) {
  case PrimOp::Cons:
  case PrimOp::Car:
  case PrimOp::Cdr:
  case PrimOp::Null:
  case PrimOp::Not:
  case PrimOp::DCons:
  case PrimOp::MkPair:
  case PrimOp::Fst:
  case PrimOp::Snd:
    return true;
  default:
    return false;
  }
}

class PrinterImpl {
public:
  PrinterImpl(const AstContext &Ctx, const PrintOptions &Options)
      : Ctx(Ctx), Options(Options) {}

  std::string run(const Expr *Root) {
    print(Root, PrecExpr);
    return OS.str();
  }

private:
  void print(const Expr *E, unsigned MinPrec);
  void printApp(const AppExpr *App, unsigned MinPrec);
  void printParenthesized(const Expr *E, unsigned Prec, unsigned MinPrec,
                          auto PrintBody);
  /// If \p E is a cons-literal chain `cons a (cons b ... nil)`, collects
  /// the elements and returns true.
  bool collectListLiteral(const Expr *E, std::vector<const Expr *> &Out);
  void newline() {
    OS << '\n';
    for (unsigned I = 0; I != Indent * Options.IndentWidth; ++I)
      OS << ' ';
  }

  const AstContext &Ctx;
  const PrintOptions &Options;
  std::ostringstream OS;
  unsigned Indent = 0;
};

void PrinterImpl::printParenthesized(const Expr *E, unsigned Prec,
                                     unsigned MinPrec, auto PrintBody) {
  (void)E;
  bool Paren = Prec < MinPrec;
  if (Paren)
    OS << '(';
  PrintBody();
  if (Paren)
    OS << ')';
}

bool PrinterImpl::collectListLiteral(const Expr *E,
                                     std::vector<const Expr *> &Out) {
  const Expr *Cur = E;
  for (;;) {
    if (isa<NilLitExpr>(Cur))
      return true;
    const auto *Outer = dyn_cast<AppExpr>(Cur);
    if (!Outer)
      return false;
    const auto *Inner = dyn_cast<AppExpr>(Outer->fn());
    if (!Inner)
      return false;
    const auto *Prim = dyn_cast<PrimExpr>(Inner->fn());
    if (!Prim || Prim->op() != PrimOp::Cons)
      return false;
    Out.push_back(Inner->arg());
    Cur = Outer->arg();
  }
}

void PrinterImpl::printApp(const AppExpr *App, unsigned MinPrec) {
  // Try sugar: list literal.
  std::vector<const Expr *> Elements;
  if (collectListLiteral(App, Elements)) {
    OS << '[';
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I != 0)
        OS << ", ";
      print(Elements[I], PrecExpr);
    }
    OS << ']';
    return;
  }

  // Try sugar: fully applied infix operator (including '::').
  if (const auto *Inner = dyn_cast<AppExpr>(App->fn())) {
    if (const auto *Prim = dyn_cast<PrimExpr>(Inner->fn())) {
      if (hasInfixForm(Prim->op())) {
        unsigned Prec = infixPrecedence(Prim->op());
        printParenthesized(App, Prec, MinPrec, [&] {
          // Relational is non-associative, additive/mult are
          // left-associative: the left operand may be at the same level
          // for left-assoc operators.
          unsigned LhsMin =
              Prec == PrecRelational ? Prec + 1 : Prec;
          print(Inner->arg(), LhsMin);
          OS << ' ' << primOpName(Prim->op()) << ' ';
          print(App->arg(), Prec + 1);
        });
        return;
      }
      if (Prim->op() == PrimOp::Cons) {
        printParenthesized(App, PrecCons, MinPrec, [&] {
          print(Inner->arg(), PrecCons + 1);
          OS << " :: ";
          print(App->arg(), PrecCons); // right associative
        });
        return;
      }
      if (Prim->op() == PrimOp::MkPair) {
        // Tuple sugar: always self-delimiting.
        OS << '(';
        print(Inner->arg(), PrecExpr);
        OS << ", ";
        print(App->arg(), PrecExpr);
        OS << ')';
        return;
      }
    }
  }

  printParenthesized(App, PrecApp, MinPrec, [&] {
    print(App->fn(), PrecApp);
    OS << ' ';
    print(App->arg(), PrecApp + 1);
  });
}

void PrinterImpl::print(const Expr *E, unsigned MinPrec) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    OS << cast<IntLitExpr>(E)->value();
    return;
  case ExprKind::BoolLit:
    OS << (cast<BoolLitExpr>(E)->value() ? "true" : "false");
    return;
  case ExprKind::NilLit:
    OS << "nil";
    return;
  case ExprKind::Var:
    OS << Ctx.spelling(cast<VarExpr>(E)->name());
    return;
  case ExprKind::Prim: {
    PrimOp Op = cast<PrimExpr>(E)->op();
    if (hasNamedForm(Op)) {
      OS << primOpName(Op);
      return;
    }
    // Operators have no standalone surface form; print an eta-expansion
    // so the output stays re-parsable.
    OS << "(lambda(opa opb). opa " << primOpName(Op) << " opb)";
    return;
  }
  case ExprKind::App:
    printApp(cast<AppExpr>(E), MinPrec);
    return;
  case ExprKind::Lambda: {
    const auto *Lambda = cast<LambdaExpr>(E);
    printParenthesized(E, PrecExpr, MinPrec, [&] {
      OS << "lambda(" << Ctx.spelling(Lambda->param()) << "). ";
      print(Lambda->body(), PrecExpr);
    });
    return;
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    printParenthesized(E, PrecExpr, MinPrec, [&] {
      OS << "if ";
      print(If->cond(), PrecExpr);
      OS << " then ";
      print(If->thenExpr(), PrecExpr);
      OS << " else ";
      print(If->elseExpr(), PrecExpr);
    });
    return;
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    printParenthesized(E, PrecExpr, MinPrec, [&] {
      OS << "let " << Ctx.spelling(Let->name()) << " = ";
      print(Let->value(), PrecExpr);
      OS << " in ";
      print(Let->body(), PrecExpr);
    });
    return;
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    printParenthesized(E, PrecExpr, MinPrec, [&] {
      OS << "letrec";
      ++Indent;
      bool First = true;
      for (const LetrecBinding &B : Letrec->bindings()) {
        if (!First)
          OS << ';';
        First = false;
        if (Options.Multiline)
          newline();
        else
          OS << ' ';
        OS << Ctx.spelling(B.Name);
        // Uncurry leading lambdas into parameter syntax.
        const Expr *Value = B.Value;
        while (const auto *Lambda = dyn_cast<LambdaExpr>(Value)) {
          OS << ' ' << Ctx.spelling(Lambda->param());
          Value = Lambda->body();
        }
        OS << " = ";
        print(Value, PrecExpr);
      }
      --Indent;
      if (Options.Multiline)
        newline();
      else
        OS << ' ';
      OS << "in ";
      print(Letrec->body(), PrecExpr);
    });
    return;
  }
  }
  assert(false && "unhandled expression kind");
}

} // namespace

std::string eal::printExpr(const AstContext &Ctx, const Expr *Root,
                           const PrintOptions &Options) {
  assert(Root && "printing a null expression");
  return PrinterImpl(Ctx, Options).run(Root);
}

//===- AstPrinter.h - nml pretty printer ------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints an nml AST back to (re-parsable) surface syntax. Used by the
/// optimizer examples to show the DCONS-transformed programs, and by
/// round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_ASTPRINTER_H
#define EAL_LANG_ASTPRINTER_H

#include <string>

namespace eal {

class AstContext;
class Expr;

/// Options controlling pretty-printing.
struct PrintOptions {
  /// When true, letrec bindings are printed one per line with indentation;
  /// otherwise everything is printed on one line.
  bool Multiline = true;
  /// Indentation width for multiline output.
  unsigned IndentWidth = 2;
};

/// Renders \p Root as surface syntax. The result re-parses to an
/// alpha-equivalent AST (infix sugar is re-introduced where possible).
std::string printExpr(const AstContext &Ctx, const Expr *Root,
                      const PrintOptions &Options = PrintOptions());

} // namespace eal

#endif // EAL_LANG_ASTPRINTER_H

//===- AstUtils.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/AstUtils.h"

#include <algorithm>
#include <cassert>

using namespace eal;

namespace {

/// Accumulates free variables with a scope stack of bound names.
class FreeVarCollector {
public:
  std::vector<Symbol> Result;

  void visit(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
    case ExprKind::Prim:
      return;
    case ExprKind::Var: {
      Symbol Name = cast<VarExpr>(E)->name();
      if (isBound(Name))
        return;
      if (std::find(Result.begin(), Result.end(), Name) == Result.end())
        Result.push_back(Name);
      return;
    }
    case ExprKind::App: {
      const auto *App = cast<AppExpr>(E);
      visit(App->fn());
      visit(App->arg());
      return;
    }
    case ExprKind::Lambda: {
      const auto *Lambda = cast<LambdaExpr>(E);
      Bound.push_back(Lambda->param());
      visit(Lambda->body());
      Bound.pop_back();
      return;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      visit(If->cond());
      visit(If->thenExpr());
      visit(If->elseExpr());
      return;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      visit(Let->value());
      Bound.push_back(Let->name());
      visit(Let->body());
      Bound.pop_back();
      return;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      size_t Mark = Bound.size();
      for (const LetrecBinding &B : Letrec->bindings())
        Bound.push_back(B.Name);
      for (const LetrecBinding &B : Letrec->bindings())
        visit(B.Value);
      visit(Letrec->body());
      Bound.resize(Mark);
      return;
    }
    }
    assert(false && "unhandled expression kind");
  }

private:
  bool isBound(Symbol Name) const {
    return std::find(Bound.begin(), Bound.end(), Name) != Bound.end();
  }

  std::vector<Symbol> Bound;
};

} // namespace

std::vector<Symbol> eal::freeVariables(const Expr *E) {
  assert(E && "free variables of a null expression");
  FreeVarCollector Collector;
  Collector.visit(E);
  return std::move(Collector.Result);
}

void eal::forEachExpr(const Expr *E,
                      const std::function<void(const Expr *)> &Visit) {
  assert(E && "traversing a null expression");
  Visit(E);
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
  case ExprKind::Var:
  case ExprKind::Prim:
    return;
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    forEachExpr(App->fn(), Visit);
    forEachExpr(App->arg(), Visit);
    return;
  }
  case ExprKind::Lambda:
    forEachExpr(cast<LambdaExpr>(E)->body(), Visit);
    return;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    forEachExpr(If->cond(), Visit);
    forEachExpr(If->thenExpr(), Visit);
    forEachExpr(If->elseExpr(), Visit);
    return;
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    forEachExpr(Let->value(), Visit);
    forEachExpr(Let->body(), Visit);
    return;
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    for (const LetrecBinding &B : Letrec->bindings())
      forEachExpr(B.Value, Visit);
    forEachExpr(Letrec->body(), Visit);
    return;
  }
  }
  assert(false && "unhandled expression kind");
}

size_t eal::countNodes(const Expr *E) {
  size_t Count = 0;
  forEachExpr(E, [&Count](const Expr *) { ++Count; });
  return Count;
}

const Expr *eal::uncurryCall(const Expr *E,
                             std::vector<const Expr *> &Args) {
  Args.clear();
  const Expr *Cur = E;
  while (const auto *App = dyn_cast<AppExpr>(Cur)) {
    Args.push_back(App->arg());
    Cur = App->fn();
  }
  std::reverse(Args.begin(), Args.end());
  return Cur;
}

unsigned eal::lambdaArity(const Expr *E) {
  unsigned Arity = 0;
  while (const auto *Lambda = dyn_cast<LambdaExpr>(E)) {
    ++Arity;
    E = Lambda->body();
  }
  return Arity;
}

//===- AstUtils.h - AST traversal helpers -----------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free-variable computation and generic traversal over nml ASTs. The
/// escape semantics of lambda needs the free identifiers of each lambda
/// (the set F in §3.4); the optimizer needs last-use information.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_ASTUTILS_H
#define EAL_LANG_ASTUTILS_H

#include "lang/Ast.h"

#include <functional>
#include <vector>

namespace eal {

/// Returns the free variables of \p E in first-occurrence order,
/// deduplicated. Primitives are constants, not variables.
std::vector<Symbol> freeVariables(const Expr *E);

/// Calls \p Visit on \p E and every descendant, preorder.
void forEachExpr(const Expr *E, const std::function<void(const Expr *)> &Visit);

/// Counts the nodes of \p E (a cheap size metric for scalability benches).
size_t countNodes(const Expr *E);

/// If \p E is an application spine `f a1 ... an`, returns the callee and
/// fills \p Args (empty Args and E itself otherwise).
const Expr *uncurryCall(const Expr *E, std::vector<const Expr *> &Args);

/// Counts the leading lambda binders of \p E (its syntactic arity).
unsigned lambdaArity(const Expr *E);

} // namespace eal

#endif // EAL_LANG_ASTUTILS_H

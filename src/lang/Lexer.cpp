//===- Lexer.cpp ----------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Diagnostics.h"

#include <cctype>
#include <string>

using namespace eal;

const char *eal::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwLetrec:
    return "'letrec'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwLambda:
    return "'lambda'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwNil:
    return "'nil'";
  case TokenKind::KwDiv:
    return "'div'";
  case TokenKind::KwMod:
    return "'mod'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::NotEqual:
    return "'<>'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::ColonColon:
    return "'::'";
  }
  return "unknown token";
}

bool Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    // '--' line comment.
    if (C == '-' && peek(1) == '-') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    // '(* ... *)' nested block comment.
    if (C == '(' && peek(1) == '*') {
      size_t Begin = Pos;
      Pos += 2;
      unsigned Depth = 1;
      while (!atEnd() && Depth != 0) {
        if (peek() == '(' && peek(1) == '*') {
          Pos += 2;
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          Pos += 2;
          --Depth;
        } else {
          ++Pos;
        }
      }
      if (Depth != 0) {
        Diags.error(SourceLoc(static_cast<uint32_t>(Begin)),
                    "unterminated block comment");
        return false;
      }
      continue;
    }
    break;
  }
  return true;
}

Token Lexer::makeToken(TokenKind Kind, size_t Begin) const {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Range = SourceRange(SourceLoc(static_cast<uint32_t>(Begin)),
                          SourceLoc(static_cast<uint32_t>(Pos)));
  Tok.Spelling = Buffer.substr(Begin, Pos - Begin);
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(size_t Begin) {
  while (!atEnd() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
          peek() == '\''))
    ++Pos;
  Token Tok = makeToken(TokenKind::Identifier, Begin);
  struct Keyword {
    std::string_view Spelling;
    TokenKind Kind;
  };
  static constexpr Keyword Keywords[] = {
      {"letrec", TokenKind::KwLetrec}, {"let", TokenKind::KwLet},
      {"in", TokenKind::KwIn},         {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},     {"else", TokenKind::KwElse},
      {"lambda", TokenKind::KwLambda}, {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"nil", TokenKind::KwNil},
      {"div", TokenKind::KwDiv},       {"mod", TokenKind::KwMod},
  };
  for (const Keyword &KW : Keywords)
    if (Tok.Spelling == KW.Spelling) {
      Tok.Kind = KW.Kind;
      break;
    }
  return Tok;
}

Token Lexer::lexNumber(size_t Begin) {
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  Token Tok = makeToken(TokenKind::IntLiteral, Begin);
  int64_t Value = 0;
  bool Overflow = false;
  for (char C : Tok.Spelling) {
    if (Value > (INT64_MAX - (C - '0')) / 10) {
      Overflow = true;
      break;
    }
    Value = Value * 10 + (C - '0');
  }
  if (Overflow) {
    Diags.error(Tok.loc(), "integer literal '" + std::string(Tok.Spelling) +
                               "' is too large");
    Tok.Kind = TokenKind::Error;
    return Tok;
  }
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::next() {
  if (!skipTrivia())
    return makeToken(TokenKind::Error, Pos);
  size_t Begin = Pos;
  if (atEnd())
    return makeToken(TokenKind::EndOfFile, Begin);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Begin);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Begin);

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Begin);
  case ')':
    return makeToken(TokenKind::RParen, Begin);
  case '[':
    return makeToken(TokenKind::LBracket, Begin);
  case ']':
    return makeToken(TokenKind::RBracket, Begin);
  case ',':
    return makeToken(TokenKind::Comma, Begin);
  case ';':
    return makeToken(TokenKind::Semicolon, Begin);
  case '.':
    return makeToken(TokenKind::Dot, Begin);
  case '=':
    return makeToken(TokenKind::Equal, Begin);
  case '+':
    return makeToken(TokenKind::Plus, Begin);
  case '-':
    return makeToken(TokenKind::Minus, Begin);
  case '*':
    return makeToken(TokenKind::Star, Begin);
  case '<':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokenKind::LessEqual, Begin);
    }
    if (peek() == '>') {
      ++Pos;
      return makeToken(TokenKind::NotEqual, Begin);
    }
    return makeToken(TokenKind::Less, Begin);
  case '>':
    if (peek() == '=') {
      ++Pos;
      return makeToken(TokenKind::GreaterEqual, Begin);
    }
    return makeToken(TokenKind::Greater, Begin);
  case ':':
    if (peek() == ':') {
      ++Pos;
      return makeToken(TokenKind::ColonColon, Begin);
    }
    break;
  default:
    break;
  }
  Diags.error(SourceLoc(static_cast<uint32_t>(Begin)),
              std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Begin);
}

//===- Lexer.h - nml lexer --------------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer for nml. Supports `--` line comments and nested
/// `(* ... *)` block comments.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_LEXER_H
#define EAL_LANG_LEXER_H

#include "lang/Token.h"

#include <string_view>

namespace eal {

class DiagnosticEngine;

/// Produces Tokens from a source buffer one at a time.
class Lexer {
public:
  /// Lexes \p Buffer, reporting malformed input to \p Diags. The buffer
  /// must outlive the lexer and all tokens it produces.
  Lexer(std::string_view Buffer, DiagnosticEngine &Diags)
      : Buffer(Buffer), Diags(Diags) {}

  /// Lexes and returns the next token; returns EndOfFile forever once the
  /// buffer is exhausted.
  Token next();

private:
  bool atEnd() const { return Pos >= Buffer.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Buffer.size() ? Buffer[Pos + Ahead] : '\0';
  }
  char advance() { return Buffer[Pos++]; }

  /// Skips whitespace and comments; returns false on an unterminated block
  /// comment (after reporting it).
  bool skipTrivia();

  Token makeToken(TokenKind Kind, size_t Begin) const;
  Token lexIdentifierOrKeyword(size_t Begin);
  Token lexNumber(size_t Begin);

  std::string_view Buffer;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace eal

#endif // EAL_LANG_LEXER_H

//===- Parser.cpp ---------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <cassert>
#include <string>

using namespace eal;

Parser::Parser(std::string_view Buffer, AstContext &Ctx,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {
  Lexer Lex(Buffer, Diags);
  for (;;) {
    Token Tok = Lex.next();
    Tokens.push_back(Tok);
    if (Tok.is(TokenKind::EndOfFile) || Tok.is(TokenKind::Error))
      break;
  }
  // Guarantee the stream ends with EndOfFile so lookahead is always safe.
  if (!Tokens.back().is(TokenKind::EndOfFile)) {
    Token Eof;
    Eof.Kind = TokenKind::EndOfFile;
    Eof.Range = Tokens.back().Range;
    Tokens.push_back(Eof);
  }
}

SourceRange Parser::rangeFrom(SourceLoc Begin) const {
  SourceLoc End = Pos > 0 ? Tokens[Pos - 1].Range.End : Begin;
  return SourceRange(Begin, End);
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (peek().is(Kind)) {
    consume();
    return true;
  }
  Diags.error(peek().loc(), std::string("expected ") + tokenKindName(Kind) +
                                " " + Context + ", found " +
                                tokenKindName(peek().Kind));
  return false;
}

const Expr *Parser::parseProgram() {
  const Expr *Root = parseExpr();
  if (!Root)
    return nullptr;
  if (!peek().is(TokenKind::EndOfFile)) {
    Diags.error(peek().loc(), std::string("expected end of input, found ") +
                                  tokenKindName(peek().Kind));
    return nullptr;
  }
  return Root;
}

const Expr *Parser::parseExpr() {
  switch (peek().Kind) {
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwLambda:
    return parseLambda();
  case TokenKind::KwLet:
    return parseLet();
  case TokenKind::KwLetrec:
    return parseLetrec();
  default:
    return parseRelational();
  }
}

const Expr *Parser::parseIf() {
  SourceLoc Begin = peek().loc();
  consume(); // 'if'
  const Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::KwThen, "after if condition"))
    return nullptr;
  const Expr *Then = parseExpr();
  if (!Then || !expect(TokenKind::KwElse, "after then branch"))
    return nullptr;
  const Expr *Else = parseExpr();
  if (!Else)
    return nullptr;
  return Ctx.createIf(rangeFrom(Begin), Cond, Then, Else);
}

const Expr *Parser::parseLambda() {
  SourceLoc Begin = peek().loc();
  consume(); // 'lambda'
  if (!expect(TokenKind::LParen, "after 'lambda'"))
    return nullptr;
  std::vector<Symbol> Params;
  while (peek().is(TokenKind::Identifier)) {
    Params.push_back(Ctx.intern(consume().Spelling));
    if (peek().is(TokenKind::Comma))
      consume(); // optional comma between parameters
  }
  if (Params.empty()) {
    Diags.error(peek().loc(), "expected parameter name after 'lambda('");
    return nullptr;
  }
  if (!expect(TokenKind::RParen, "after lambda parameters") ||
      !expect(TokenKind::Dot, "after lambda parameter list"))
    return nullptr;

  for (Symbol Param : Params)
    ScopeStack.push_back(Param);
  const Expr *Body = parseExpr();
  ScopeStack.resize(ScopeStack.size() - Params.size());
  if (!Body)
    return nullptr;

  const Expr *Result = Body;
  for (auto It = Params.rbegin(); It != Params.rend(); ++It)
    Result = Ctx.createLambda(rangeFrom(Begin), *It, Result);
  return Result;
}

const Expr *Parser::parseLet() {
  SourceLoc Begin = peek().loc();
  consume(); // 'let'
  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().loc(), "expected identifier after 'let'");
    return nullptr;
  }
  Symbol Name = Ctx.intern(consume().Spelling);
  std::vector<Symbol> Params;
  while (peek().is(TokenKind::Identifier))
    Params.push_back(Ctx.intern(consume().Spelling));
  if (!expect(TokenKind::Equal, "in let binding"))
    return nullptr;

  for (Symbol Param : Params)
    ScopeStack.push_back(Param);
  const Expr *Value = parseExpr();
  ScopeStack.resize(ScopeStack.size() - Params.size());
  if (!Value)
    return nullptr;
  for (auto It = Params.rbegin(); It != Params.rend(); ++It)
    Value = Ctx.createLambda(Value->range(), *It, Value);

  if (!expect(TokenKind::KwIn, "after let binding"))
    return nullptr;
  ScopeStack.push_back(Name);
  const Expr *Body = parseExpr();
  ScopeStack.pop_back();
  if (!Body)
    return nullptr;
  return Ctx.createLet(rangeFrom(Begin), Name, Value, Body);
}

std::optional<LetrecBinding> Parser::parseBinding() {
  if (!peek().is(TokenKind::Identifier)) {
    Diags.error(peek().loc(), "expected identifier in letrec binding");
    return std::nullopt;
  }
  Token NameTok = consume();
  Symbol Name = Ctx.intern(NameTok.Spelling);
  std::vector<Symbol> Params;
  while (peek().is(TokenKind::Identifier))
    Params.push_back(Ctx.intern(consume().Spelling));
  if (!expect(TokenKind::Equal, "in letrec binding"))
    return std::nullopt;

  for (Symbol Param : Params)
    ScopeStack.push_back(Param);
  const Expr *Value = parseExpr();
  ScopeStack.resize(ScopeStack.size() - Params.size());
  if (!Value)
    return std::nullopt;
  for (auto It = Params.rbegin(); It != Params.rend(); ++It)
    Value = Ctx.createLambda(Value->range(), *It, Value);

  LetrecBinding Binding;
  Binding.Name = Name;
  Binding.Value = Value;
  Binding.NameLoc = NameTok.loc();
  return Binding;
}

const Expr *Parser::parseLetrec() {
  SourceLoc Begin = peek().loc();
  consume(); // 'letrec'

  // All letrec-bound names are in scope in every binding body, so scan
  // ahead for the binding names first. A binding name is an identifier
  // that follows 'letrec' or ';'.
  std::vector<Symbol> Names;
  {
    size_t Scan = Pos;
    bool AtBindingStart = true;
    unsigned Depth = 0;
    while (Scan < Tokens.size()) {
      const Token &Tok = Tokens[Scan];
      if (Tok.is(TokenKind::EndOfFile))
        break;
      if (Tok.is(TokenKind::KwLetrec) || Tok.is(TokenKind::KwLet))
        ++Depth; // nested let/letrec: its 'in' is not ours
      if (Tok.is(TokenKind::KwIn)) {
        if (Depth == 0)
          break;
        --Depth;
      }
      if (AtBindingStart && Depth == 0 && Tok.is(TokenKind::Identifier))
        Names.push_back(Ctx.intern(Tok.Spelling));
      AtBindingStart = Depth == 0 && Tok.is(TokenKind::Semicolon);
      ++Scan;
    }
  }
  for (Symbol Name : Names)
    ScopeStack.push_back(Name);

  std::vector<LetrecBinding> Bindings;
  bool Ok = true;
  for (;;) {
    std::optional<LetrecBinding> Binding = parseBinding();
    if (!Binding) {
      Ok = false;
      break;
    }
    Bindings.push_back(*Binding);
    if (peek().is(TokenKind::Semicolon)) {
      consume();
      if (peek().is(TokenKind::KwIn))
        break; // trailing ';'
      continue;
    }
    break;
  }
  if (Ok)
    Ok = expect(TokenKind::KwIn, "after letrec bindings");
  const Expr *Body = Ok ? parseExpr() : nullptr;
  ScopeStack.resize(ScopeStack.size() - Names.size());
  if (!Body)
    return nullptr;

  // Reject duplicate binding names: the escape environment would silently
  // drop one of them otherwise.
  for (size_t I = 0; I != Bindings.size(); ++I)
    for (size_t J = I + 1; J != Bindings.size(); ++J)
      if (Bindings[I].Name == Bindings[J].Name) {
        Diags.error(Bindings[J].NameLoc,
                    "duplicate letrec binding '" +
                        std::string(Ctx.spelling(Bindings[J].Name)) + "'");
        return nullptr;
      }

  return Ctx.createLetrec(rangeFrom(Begin), Bindings, Body);
}

const Expr *Parser::parseRelational() {
  SourceLoc Begin = peek().loc();
  const Expr *Lhs = parseCons();
  if (!Lhs)
    return nullptr;
  PrimOp Op;
  switch (peek().Kind) {
  case TokenKind::Equal:
    Op = PrimOp::Eq;
    break;
  case TokenKind::NotEqual:
    Op = PrimOp::Ne;
    break;
  case TokenKind::Less:
    Op = PrimOp::Lt;
    break;
  case TokenKind::LessEqual:
    Op = PrimOp::Le;
    break;
  case TokenKind::Greater:
    Op = PrimOp::Gt;
    break;
  case TokenKind::GreaterEqual:
    Op = PrimOp::Ge;
    break;
  default:
    return Lhs;
  }
  Token OpTok = consume();
  const Expr *Rhs = parseCons();
  if (!Rhs)
    return nullptr;
  const Expr *Prim = Ctx.createPrim(SourceRange(OpTok.loc()), Op);
  const Expr *Args[] = {Lhs, Rhs};
  return Ctx.createAppChain(rangeFrom(Begin), Prim, Args);
}

const Expr *Parser::parseCons() {
  SourceLoc Begin = peek().loc();
  const Expr *Head = parseAdditive();
  if (!Head)
    return nullptr;
  if (!peek().is(TokenKind::ColonColon))
    return Head;
  Token OpTok = consume();
  const Expr *Tail = parseCons(); // right associative
  if (!Tail)
    return nullptr;
  const Expr *Prim = Ctx.createPrim(SourceRange(OpTok.loc()), PrimOp::Cons);
  const Expr *Args[] = {Head, Tail};
  return Ctx.createAppChain(rangeFrom(Begin), Prim, Args);
}

const Expr *Parser::parseAdditive() {
  SourceLoc Begin = peek().loc();
  const Expr *Lhs = parseMultiplicative();
  if (!Lhs)
    return nullptr;
  while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
    Token OpTok = consume();
    PrimOp Op = OpTok.is(TokenKind::Plus) ? PrimOp::Add : PrimOp::Sub;
    const Expr *Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    const Expr *Prim = Ctx.createPrim(SourceRange(OpTok.loc()), Op);
    const Expr *Args[] = {Lhs, Rhs};
    Lhs = Ctx.createAppChain(rangeFrom(Begin), Prim, Args);
  }
  return Lhs;
}

const Expr *Parser::parseMultiplicative() {
  SourceLoc Begin = peek().loc();
  const Expr *Lhs = parseApplication();
  if (!Lhs)
    return nullptr;
  for (;;) {
    PrimOp Op;
    switch (peek().Kind) {
    case TokenKind::Star:
      Op = PrimOp::Mul;
      break;
    case TokenKind::KwDiv:
      Op = PrimOp::Div;
      break;
    case TokenKind::KwMod:
      Op = PrimOp::Mod;
      break;
    default:
      return Lhs;
    }
    Token OpTok = consume();
    const Expr *Rhs = parseApplication();
    if (!Rhs)
      return nullptr;
    const Expr *Prim = Ctx.createPrim(SourceRange(OpTok.loc()), Op);
    const Expr *Args[] = {Lhs, Rhs};
    Lhs = Ctx.createAppChain(rangeFrom(Begin), Prim, Args);
  }
}

bool Parser::startsPrimary(const Token &Tok) const {
  switch (Tok.Kind) {
  case TokenKind::IntLiteral:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
  case TokenKind::KwNil:
  case TokenKind::Identifier:
  case TokenKind::LParen:
  case TokenKind::LBracket:
    return true;
  default:
    return false;
  }
}

const Expr *Parser::parseApplication() {
  SourceLoc Begin = peek().loc();
  const Expr *Fn = parsePrimary();
  if (!Fn)
    return nullptr;
  while (startsPrimary(peek())) {
    const Expr *Arg = parsePrimary();
    if (!Arg)
      return nullptr;
    Fn = Ctx.createApp(rangeFrom(Begin), Fn, Arg);
  }
  return Fn;
}

const Expr *Parser::resolveIdentifier(const Token &Tok) {
  Symbol Name = Ctx.intern(Tok.Spelling);
  bool Bound = std::find(ScopeStack.rbegin(), ScopeStack.rend(), Name) !=
               ScopeStack.rend();
  if (!Bound) {
    struct PrimName {
      std::string_view Spelling;
      PrimOp Op;
    };
    static constexpr PrimName PrimNames[] = {
        {"cons", PrimOp::Cons}, {"car", PrimOp::Car},
        {"cdr", PrimOp::Cdr},   {"null", PrimOp::Null},
        {"not", PrimOp::Not},   {"dcons", PrimOp::DCons},
        {"pair", PrimOp::MkPair}, {"fst", PrimOp::Fst},
        {"snd", PrimOp::Snd},
    };
    for (const PrimName &P : PrimNames)
      if (Tok.Spelling == P.Spelling)
        return Ctx.createPrim(Tok.Range, P.Op);
  }
  return Ctx.createVar(Tok.Range, Name);
}

const Expr *Parser::parsePrimary() {
  Token Tok = peek();
  switch (Tok.Kind) {
  case TokenKind::IntLiteral:
    consume();
    return Ctx.createIntLit(Tok.Range, Tok.IntValue);
  case TokenKind::KwTrue:
    consume();
    return Ctx.createBoolLit(Tok.Range, true);
  case TokenKind::KwFalse:
    consume();
    return Ctx.createBoolLit(Tok.Range, false);
  case TokenKind::KwNil:
    consume();
    return Ctx.createNilLit(Tok.Range);
  case TokenKind::Identifier:
    consume();
    return resolveIdentifier(Tok);
  case TokenKind::LParen: {
    SourceLoc Begin = Tok.loc();
    consume();
    const Expr *Inner = parseExpr();
    if (!Inner)
      return nullptr;
    // Tuple syntax: (a, b, c) is sugar for pair a (pair b c).
    std::vector<const Expr *> Elements = {Inner};
    while (peek().is(TokenKind::Comma)) {
      consume();
      const Expr *Next = parseExpr();
      if (!Next)
        return nullptr;
      Elements.push_back(Next);
    }
    if (!expect(TokenKind::RParen, "to close '('"))
      return nullptr;
    if (Elements.size() == 1)
      return Inner;
    SourceRange Range = rangeFrom(Begin);
    const Expr *Result = Elements.back();
    for (size_t I = Elements.size() - 1; I-- != 0;) {
      const Expr *Prim = Ctx.createPrim(Range, PrimOp::MkPair);
      const Expr *Args[] = {Elements[I], Result};
      Result = Ctx.createAppChain(Range, Prim, Args);
    }
    return Result;
  }
  case TokenKind::LBracket: {
    SourceLoc Begin = Tok.loc();
    consume();
    std::vector<const Expr *> Elements;
    if (!peek().is(TokenKind::RBracket)) {
      for (;;) {
        const Expr *Element = parseExpr();
        if (!Element)
          return nullptr;
        Elements.push_back(Element);
        if (!peek().is(TokenKind::Comma))
          break;
        consume();
      }
    }
    if (!expect(TokenKind::RBracket, "to close list literal"))
      return nullptr;
    // [a, b] desugars to cons a (cons b nil).
    SourceRange Range = rangeFrom(Begin);
    const Expr *Result = Ctx.createNilLit(Range);
    for (auto It = Elements.rbegin(); It != Elements.rend(); ++It) {
      const Expr *Prim = Ctx.createPrim(Range, PrimOp::Cons);
      const Expr *Args[] = {*It, Result};
      Result = Ctx.createAppChain(Range, Prim, Args);
    }
    return Result;
  }
  default:
    Diags.error(Tok.loc(), std::string("expected an expression, found ") +
                               tokenKindName(Tok.Kind));
    return nullptr;
  }
}

//===- Parser.h - nml parser ------------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for nml. The accepted grammar (binding looser
/// to tighter):
///
///   program   := expr
///   expr      := 'if' expr 'then' expr 'else' expr
///              | 'lambda' '(' ident+ ')' '.' expr
///              | 'let' ident ident* '=' expr 'in' expr
///              | 'letrec' binding (';' binding)* ';'? 'in' expr
///              | relational
///   binding   := ident ident* '=' expr
///   relational:= cons (('='|'<>'|'<'|'<='|'>'|'>=') cons)?    [nonassoc]
///   cons      := additive ('::' cons)?                        [right]
///   additive  := multiplicative (('+'|'-') multiplicative)*   [left]
///   multiplicative := application (('*'|'div'|'mod') application)*
///   application    := primary primary*                        [left]
///   primary   := int | 'true' | 'false' | 'nil' | ident
///              | '(' expr ')' | '[' (expr (',' expr)*)? ']'
///
/// `f x y = e` bindings are sugar for `f = lambda(x).lambda(y).e`;
/// `[a, b]` is sugar for `cons a (cons b nil)`; `a :: b` for `cons a b`;
/// infix arithmetic/comparison for applications of the corresponding
/// primitive. Identifiers that are not lexically bound and spell a
/// primitive name (cons, car, cdr, null, not, dcons) resolve to that
/// primitive. There is no unary minus; write `0 - x`.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_PARSER_H
#define EAL_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"

#include <optional>
#include <string_view>
#include <vector>

namespace eal {

class DiagnosticEngine;

/// Parses one nml program from a source buffer into an AstContext.
class Parser {
public:
  Parser(std::string_view Buffer, AstContext &Ctx, DiagnosticEngine &Diags);

  /// Parses a whole program (a single expression followed by end of
  /// input). Returns null after reporting a diagnostic on malformed input.
  const Expr *parseProgram();

  /// Parses a single expression without requiring end of input; used by
  /// tests and by tools embedding fragments.
  const Expr *parseExpr();

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &peekAhead(size_t N) const {
    size_t Index = Pos + N < Tokens.size() ? Pos + N : Tokens.size() - 1;
    return Tokens[Index];
  }
  Token consume() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }
  bool expect(TokenKind Kind, const char *Context);

  const Expr *parseIf();
  const Expr *parseLambda();
  const Expr *parseLet();
  const Expr *parseLetrec();
  std::optional<LetrecBinding> parseBinding();
  const Expr *parseRelational();
  const Expr *parseCons();
  const Expr *parseAdditive();
  const Expr *parseMultiplicative();
  const Expr *parseApplication();
  const Expr *parsePrimary();
  bool startsPrimary(const Token &Tok) const;

  /// Resolves an identifier to a variable or primitive reference.
  const Expr *resolveIdentifier(const Token &Tok);

  SourceRange rangeFrom(SourceLoc Begin) const;

  std::vector<Token> Tokens;
  size_t Pos = 0;
  AstContext &Ctx;
  DiagnosticEngine &Diags;
  /// Lexically bound names, for shadow-aware primitive resolution.
  std::vector<Symbol> ScopeStack;
};

} // namespace eal

#endif // EAL_LANG_PARSER_H

//===- Token.h - nml tokens -------------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the nml lexer.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LANG_TOKEN_H
#define EAL_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string_view>

namespace eal {

/// The kinds of nml tokens.
enum class TokenKind : uint8_t {
  EndOfFile,
  Error,

  Identifier,
  IntLiteral,

  // Keywords.
  KwLetrec,
  KwLet,
  KwIn,
  KwIf,
  KwThen,
  KwElse,
  KwLambda,
  KwTrue,
  KwFalse,
  KwNil,
  KwDiv,
  KwMod,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Dot,
  Equal,        ///< '=' (binding separator and equality primitive)
  NotEqual,     ///< '<>'
  Less,         ///< '<'
  LessEqual,    ///< '<='
  Greater,      ///< '>'
  GreaterEqual, ///< '>='
  Plus,         ///< '+'
  Minus,        ///< '-'
  Star,         ///< '*'
  ColonColon,   ///< '::' (infix cons)
};

/// Returns a stable human-readable name for \p Kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token: kind, source range, and (for identifiers/literals) the
/// spelled text and decoded value.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceRange Range;
  std::string_view Spelling;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
  SourceLoc loc() const { return Range.Begin; }
};

} // namespace eal

#endif // EAL_LANG_TOKEN_H

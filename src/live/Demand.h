//===- Demand.h - The heap-liveness demand lattice --------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract domain of the backward heap-liveness analysis
/// (docs/LIVENESS.md): *how much of a list/pair value a strict context
/// may read*. Where the escape domain of §3.3 grades how far a value
/// flows, a Demand grades how far a consumer reaches into it:
///
///   ⟨Depth, Car, Snd⟩
///
///  * Depth — the number of top-spine cells whose fields may be touched
///    (a `car`/`cdr`/`fst`/`snd` read). 0 means no cell of the value is
///    ever read: the allocation is dead data. Finite depths saturate at
///    DepthCap; Inf means the whole spine may be traversed.
///  * Car — whether element fields (`car` of a cons, `fst` of a pair)
///    may be read. With Car clear, the spine cells themselves may be
///    walked (length-style consumers) while every element is dead.
///  * Snd — whether `snd` of a pair may be read. Lists thread their tail
///    demand through Depth instead, so Snd is only ever set by `snd`.
///
/// The lattice is the product order: join is pointwise max/or, bottom
/// ⟨0,·,·⟩ is "dead", top ⟨∞,car,snd⟩ is full demand. Normalization
/// keeps one canonical dead element (Depth 0 clears both flags) so the
/// memo table of per-function summaries stays small: at most
/// (DepthCap + 2) · 4 distinct demands per function.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LIVE_DEMAND_H
#define EAL_LIVE_DEMAND_H

#include <cstdint>
#include <string>

namespace eal::live {

/// One point of the demand lattice; trivially copyable, 4 bytes.
struct Demand {
  /// Depth value meaning "the whole spine".
  static constexpr uint8_t Inf = 255;
  /// Finite depths saturate here: any deeper finite demand becomes Inf.
  /// Matches the escape analyzer's practical spine grading (k ≤ d is
  /// tiny in real programs); keeps the summary space finite.
  static constexpr uint8_t DepthCap = 4;

  uint8_t Depth = 0;
  bool Car = false;
  bool Snd = false;

  static Demand bottom() { return {}; }
  static Demand top() { return {Inf, true, true}; }
  /// Spine-only demand of \p Depth (a length-style consumer).
  static Demand spine(uint8_t Depth) {
    return Demand{Depth, false, false}.normalized();
  }

  bool isBottom() const { return Depth == 0; }
  bool isTop() const { return Depth == Inf && Car && Snd; }

  /// Canonical form: dead values carry no field flags; finite depths
  /// beyond DepthCap saturate to Inf.
  Demand normalized() const {
    Demand D = *this;
    if (D.Depth == 0) {
      D.Car = D.Snd = false;
    } else if (D.Depth != Inf && D.Depth > DepthCap) {
      D.Depth = Inf;
    }
    return D;
  }

  /// Pointwise least upper bound (Inf is numerically maximal).
  static Demand join(Demand A, Demand B) {
    return Demand{static_cast<uint8_t>(A.Depth > B.Depth ? A.Depth : B.Depth),
                  A.Car || B.Car, A.Snd || B.Snd}
        .normalized();
  }

  /// Demand on the tail argument of a `cons` whose cell is demanded at
  /// *this: one spine level is consumed by the new cell. Dead stays
  /// dead; Inf stays Inf.
  Demand tail() const {
    if (Depth == 0 || Depth == Inf)
      return normalized();
    return Demand{static_cast<uint8_t>(Depth - 1), Car, Snd}.normalized();
  }

  /// Demand on `x` given demand *this on `cdr x`: the read touches one
  /// cell, then the context reaches Depth further. This is where a
  /// spine-recursive consumer's demand climbs to Inf (via DepthCap).
  Demand viaCdr() const {
    if (Depth == Inf)
      return normalized();
    return Demand{static_cast<uint8_t>(Depth + 1), Car, Snd}.normalized();
  }

  friend bool operator==(Demand A, Demand B) {
    return A.Depth == B.Depth && A.Car == B.Car && A.Snd == B.Snd;
  }
  friend bool operator!=(Demand A, Demand B) { return !(A == B); }

  /// Dense 10-bit key for memo tables (normalized form assumed).
  uint16_t encode() const {
    return static_cast<uint16_t>(Depth << 2 | (Car ? 2 : 0) | (Snd ? 1 : 0));
  }

  /// "dead", "<2>", "<inf,car>", "<1,car,snd>", ...
  std::string str() const {
    Demand D = normalized();
    if (D.isBottom())
      return "dead";
    std::string S = "<";
    S += D.Depth == Inf ? std::string("inf") : std::to_string(unsigned(D.Depth));
    if (D.Car)
      S += ",car";
    if (D.Snd)
      S += ",snd";
    S += ">";
    return S;
  }
};

} // namespace eal::live

#endif // EAL_LIVE_DEMAND_H

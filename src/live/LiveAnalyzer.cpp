//===- LiveAnalyzer.cpp ---------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "live/LiveAnalyzer.h"

#include "explain/Provenance.h"
#include "lang/AstUtils.h"
#include "support/SourceManager.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>

using namespace eal;
using namespace eal::live;

namespace {

bool isAllocOp(PrimOp Op) {
  return Op == PrimOp::Cons || Op == PrimOp::MkPair || Op == PrimOp::DCons;
}

} // namespace

//===----------------------------------------------------------------------===//
// The analyzer
//===----------------------------------------------------------------------===//

class LiveAnalyzer::Impl {
public:
  Impl(const AstContext &Ast, const Expr *Root, const TypedProgram *Typed,
       unsigned MaxRounds)
      : Ast(Ast), Root(Root), Typed(Typed), MaxRounds(MaxRounds) {
    collectTops();
    enumerateSites();
  }

  const AstContext &Ast;
  const Expr *Root;
  const TypedProgram *Typed; // reporting refinement only; may be null
  unsigned MaxRounds;

  explain::ProvenanceRecorder *Prov = nullptr;
  uint32_t Ns = 0;
  uint32_t RootFact = explain::NoFact;
  bool FactsCreated = false;

  /// One top-level (letrec-chain) binding.
  struct TopEntry {
    Symbol Name;
    const Expr *Value = nullptr;
    SourceLoc Loc;
    bool IsLambda = false;
    bool Ambiguous = false; ///< name bound more than once in the chain
    unsigned Arity = 0;
    std::vector<Symbol> Params; ///< leading binders, for lambdas
    const Expr *Body = nullptr; ///< value stripped of leading binders
  };
  std::vector<TopEntry> TopOrder;
  std::unordered_map<Symbol, size_t> Tops; ///< name -> canonical (last) index
  const Expr *ProgramBody = nullptr;

  /// One memoized summary: parameter demands of (binding, result demand).
  struct Entry {
    Symbol Fn;
    Demand Dem;
    std::vector<Demand> Params;
    unsigned Round = 0;
    bool InProgress = false;
    uint32_t Fact = explain::NoFact;
  };
  /// unique_ptr: recursive computeEntry inserts while holding references.
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> Summaries;

  /// Bindings that escaped into first-class use: all params ⊤.
  std::unordered_set<Symbol> Worst;
  /// Accumulated demand on non-lambda top-level bindings.
  std::unordered_map<Symbol, Demand> TopDemand;

  struct SiteRec {
    const Expr *Site = nullptr;
    PrimOp Op = PrimOp::Cons;
    Symbol Context;
    Demand Dem;
    uint32_t Fact = explain::NoFact;
  };
  /// Ordered by node id so every iteration (facts, report, JSON) is
  /// deterministic.
  std::map<uint32_t, SiteRec> Sites;

  bool Changed = false;
  unsigned CurRound = 0;
  bool LimitHit = false;

  /// Innermost liveness fact on whose behalf we are walking (summary
  /// being computed, or the program-result root).
  uint32_t CurFact = explain::NoFact;

  /// Lexical scope for lambda/let binders: name + accumulated demand,
  /// innermost last. Linear scans; nml scopes are tiny.
  std::vector<std::pair<Symbol, Demand>> Locals;

  //===--- Setup ----------------------------------------------------------==//

  void collectTops() {
    const Expr *E = Root;
    while (const auto *LR = dyn_cast<LetrecExpr>(E)) {
      for (const LetrecBinding &B : LR->bindings()) {
        TopEntry T;
        T.Name = B.Name;
        T.Value = B.Value;
        T.Loc = B.NameLoc.isValid() ? B.NameLoc : B.Value->loc();
        T.IsLambda = isa<LambdaExpr>(B.Value);
        if (T.IsLambda) {
          T.Arity = lambdaArity(B.Value);
          const Expr *V = B.Value;
          while (const auto *L = dyn_cast<LambdaExpr>(V)) {
            T.Params.push_back(L->param());
            V = L->body();
          }
          T.Body = V;
        }
        auto It = Tops.find(B.Name);
        if (It != Tops.end()) {
          // Re-bound name: summaries could conflate the two bodies.
          // Mark both ambiguous; calls fall back to the unknown-callee
          // rule and both values are walked under ⊤.
          TopOrder[It->second].Ambiguous = true;
          T.Ambiguous = true;
        }
        TopOrder.push_back(std::move(T));
        Tops[B.Name] = TopOrder.size() - 1;
      }
      E = LR->body();
    }
    ProgramBody = E;
  }

  void enumerateSites() {
    // A PrimExpr that heads a saturated spine is not a first-class use.
    std::unordered_set<uint32_t> SaturatedHeads;
    auto Scan = [&](const Expr *E, Symbol Ctx) {
      forEachExpr(E, [&](const Expr *N) {
        if (const auto *App = dyn_cast<AppExpr>(N)) {
          std::vector<const Expr *> Args;
          const Expr *Callee = uncurryCall(App, Args);
          if (const auto *P = dyn_cast<PrimExpr>(Callee))
            if (Args.size() == primOpArity(P->op())) {
              SaturatedHeads.insert(P->id());
              if (isAllocOp(P->op()))
                Sites.emplace(App->id(), SiteRec{App, P->op(), Ctx, {},
                                                 explain::NoFact});
            }
        }
      });
      forEachExpr(E, [&](const Expr *N) {
        if (const auto *P = dyn_cast<PrimExpr>(N))
          if (isAllocOp(P->op()) && !SaturatedHeads.count(P->id()))
            // First-class cons/mkpair: the engines tag cells allocated
            // through the prim closure with the PrimExpr's node id.
            Sites.emplace(P->id(),
                          SiteRec{P, P->op(), Ctx, {}, explain::NoFact});
      });
    };
    for (const TopEntry &T : TopOrder)
      Scan(T.Value, T.Name);
    Scan(ProgramBody, Symbol::invalid());
  }

  void createFacts() {
    if (!Prov || FactsCreated)
      return;
    FactsCreated = true;
    Ns = Prov->allocNamespace();
    RootFact = Prov->fresh(explain::FactKind::Liveness, "program result",
                           "live-root: printed result fully demanded",
                           Root->loc());
    Prov->result(RootFact, Demand::top().str());
    for (auto &[Id, S] : Sites) {
      std::string Label = std::string("demand(") +
                          std::string(primOpName(S.Op)) + " @" +
                          std::to_string(Id) + ")";
      S.Fact = Prov->create(explain::FactKind::Liveness, Ns, Id,
                            std::move(Label), "site-demand (join over uses)",
                            S.Site->loc());
    }
  }

  //===--- Lattice bookkeeping --------------------------------------------==//

  void note(bool Raised) { Changed = Changed || Raised; }

  void joinSite(uint32_t Id, Demand D) {
    auto It = Sites.find(Id);
    if (It == Sites.end())
      return;
    Demand J = Demand::join(It->second.Dem, D);
    if (J != It->second.Dem) {
      It->second.Dem = J;
      Changed = true;
      if (Prov && It->second.Fact != explain::NoFact &&
          CurFact != explain::NoFact)
        Prov->depend(It->second.Fact, CurFact);
    }
  }

  void joinTop(Symbol Name, Demand D) {
    Demand &Cur = TopDemand[Name]; // default ⊥
    Demand J = Demand::join(Cur, D);
    if (J != Cur) {
      Cur = J;
      Changed = true;
    }
  }

  void markWorst(Symbol Name) {
    if (Worst.insert(Name).second)
      Changed = true;
  }

  /// Joins \p D into the innermost local binding of \p Name. Returns
  /// false if no local scope binds it.
  bool joinLocal(Symbol Name, Demand D) {
    for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
      if (It->first == Name) {
        It->second = Demand::join(It->second, D);
        return true;
      }
    return false;
  }

  bool isLocal(Symbol Name) const {
    for (auto It = Locals.rbegin(); It != Locals.rend(); ++It)
      if (It->first == Name)
        return true;
    return false;
  }

  //===--- Summaries ------------------------------------------------------==//

  static uint64_t summaryKey(Symbol Fn, Demand D) {
    return (1ULL << 48) | (static_cast<uint64_t>(Fn.id()) << 16) | D.encode();
  }

  std::string renderParams(const TopEntry &T, const std::vector<Demand> &Ps) {
    std::string S;
    for (size_t I = 0; I != Ps.size(); ++I) {
      if (I)
        S += ", ";
      S += std::string(Ast.spelling(T.Params[I])) + ":" + Ps[I].str();
    }
    return S.empty() ? std::string("()") : S;
  }

  /// The call-site query: parameter demands of \p Fn under result
  /// demand \p D. Worst-cased bindings answer ⊤ everywhere but their
  /// body is still walked (under ⊤) so their sites accrue demand.
  std::vector<Demand> summaryFor(Symbol Fn, Demand D) {
    auto It = Tops.find(Fn);
    if (It == Tops.end())
      return {};
    const TopEntry &T = TopOrder[It->second];
    if (!T.IsLambda || T.Ambiguous)
      return std::vector<Demand>(T.Arity, Demand::top());
    if (Worst.count(Fn)) {
      computeEntry(Fn, Demand::top());
      return std::vector<Demand>(T.Arity, Demand::top());
    }
    return computeEntry(Fn, D);
  }

  std::vector<Demand> computeEntry(Symbol Fn, Demand D) {
    D = D.normalized();
    const TopEntry &T = TopOrder[Tops.at(Fn)];
    uint64_t Key = summaryKey(Fn, D);
    auto [It, IsNew] = Summaries.try_emplace(Key);
    if (IsNew) {
      It->second = std::make_unique<Entry>();
      Entry &Fresh = *It->second;
      Fresh.Fn = Fn;
      Fresh.Dem = D;
      Fresh.Params.assign(T.Arity, Demand::bottom());
      if (Prov) {
        std::string Label =
            std::string("live ") + std::string(Ast.spelling(Fn)) + " @ " +
            D.str();
        Fresh.Fact =
            Prov->create(explain::FactKind::Liveness, Ns, Key,
                         std::move(Label), "live-summary (backward)", T.Loc);
      }
    }
    Entry *E = It->second.get();
    if (Prov && E->Fact != explain::NoFact)
      Prov->read(E->Fact);
    // Recursive self-reference and once-per-round recomputation both
    // answer the current (under-)approximation; the outer round loop
    // re-runs until nothing rises (the §3.5 memoized fixpoint shape).
    if (E->InProgress || E->Round == CurRound)
      return E->Params;
    E->InProgress = true;
    E->Round = CurRound;
    if (Prov && E->Fact != explain::NoFact)
      Prov->open(E->Fact);

    size_t Base = Locals.size();
    for (Symbol P : T.Params)
      Locals.emplace_back(P, Demand::bottom());
    uint32_t SavedFact = CurFact;
    CurFact = E->Fact;
    walk(T.Body, D);
    CurFact = SavedFact;
    std::vector<Demand> Collected(T.Arity);
    for (size_t I = 0; I != T.Arity; ++I)
      Collected[I] = Locals[Base + I].second;
    Locals.resize(Base);

    bool Raised = false;
    for (size_t I = 0; I != T.Arity; ++I) {
      Demand J = Demand::join(E->Params[I], Collected[I]);
      if (J != E->Params[I]) {
        E->Params[I] = J;
        Raised = true;
      }
    }
    if (Raised)
      Changed = true;
    if (Prov && E->Fact != explain::NoFact) {
      std::string Rendered = renderParams(T, E->Params);
      if (Raised)
        Prov->raise(E->Fact, CurRound, Rendered);
      Prov->result(E->Fact, std::move(Rendered));
      Prov->close(E->Fact);
    }
    E->InProgress = false;
    return E->Params;
  }

  //===--- The backward walk ----------------------------------------------==//

  /// Transfer for one saturated primitive application. \p SiteId is the
  /// outermost App node id — exactly what the engines tag cells with.
  void primCall(PrimOp Op, uint32_t SiteId, std::span<const Expr *const> Args,
                Demand D) {
    switch (Op) {
    case PrimOp::Cons:
      joinSite(SiteId, D);
      walk(Args[0], D.Depth > 0 && D.Car ? Demand::top() : Demand::bottom());
      walk(Args[1], D.tail());
      return;
    case PrimOp::MkPair:
      joinSite(SiteId, D);
      walk(Args[0], D.Depth > 0 && D.Car ? Demand::top() : Demand::bottom());
      walk(Args[1], D.Depth > 0 && D.Snd ? Demand::top() : Demand::bottom());
      return;
    case PrimOp::DCons:
      // The overwrite reads nothing from the reused cell: p itself is
      // dead data as far as field reads go. The new incarnation's
      // demand is the dcons site's.
      joinSite(SiteId, D);
      walk(Args[0], Demand::bottom());
      walk(Args[1], D.Depth > 0 && D.Car ? Demand::top() : Demand::bottom());
      walk(Args[2], D.tail());
      return;
    case PrimOp::Car:
    case PrimOp::Fst:
      // Strict: the field read executes whether or not the element is
      // used, so this is unconditionally a depth-1, car-field touch.
      // The element value's own demand is soaked up by the ⊤-element
      // rule at whichever cons/mkpair stored it.
      walk(Args[0], Demand{1, true, false});
      return;
    case PrimOp::Snd:
      walk(Args[0], Demand{1, false, true});
      return;
    case PrimOp::Cdr:
      // One cell touched, then the context reaches D.Depth further.
      walk(Args[0], D.viaCdr());
      return;
    case PrimOp::Null:
      // A tag test, not a field read (the runtime oracle agrees).
      walk(Args[0], Demand::bottom());
      return;
    default:
      // Arithmetic / comparison / not: scalar consumers.
      for (const Expr *A : Args)
        walk(A, Demand::bottom());
      return;
    }
  }

  /// Analyzes \p E under result demand \p D. Always descends: in a
  /// strict language a subterm's evaluation (and its field reads)
  /// happens even when its value is dead.
  void walk(const Expr *E, Demand D) {
    D = D.normalized();
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::BoolLit:
    case ExprKind::NilLit:
      return;
    case ExprKind::Prim: {
      const auto *P = cast<PrimExpr>(E);
      // First-class allocator: cells allocated through the resulting
      // prim closure carry this node's id; demand unknowable — ⊤.
      if (isAllocOp(P->op()))
        joinSite(P->id(), Demand::top());
      return;
    }
    case ExprKind::Var: {
      const auto *V = cast<VarExpr>(E);
      if (joinLocal(V->name(), D))
        return;
      auto It = Tops.find(V->name());
      if (It != Tops.end()) {
        const TopEntry &T = TopOrder[It->second];
        if (T.IsLambda)
          // First-class use of a function binding (argument position,
          // stored in data, returned): callers are invisible — worst.
          markWorst(V->name());
        else
          joinTop(V->name(), D);
      }
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      walk(I->cond(), Demand::bottom());
      walk(I->thenExpr(), D);
      walk(I->elseExpr(), D);
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      Locals.emplace_back(L->name(), Demand::bottom());
      walk(L->body(), D);
      Demand VD = Locals.back().second;
      Locals.pop_back();
      walk(L->value(), VD);
      return;
    }
    case ExprKind::Lambda: {
      // A closure value: application contexts are unknown, so the body
      // is analyzed under ⊤ and argument demands are accounted at the
      // (unknown-callee) apply sites. Free variables accrue demand to
      // the enclosing scopes — the captured data really is reachable
      // for as long as the closure is.
      const auto *L = cast<LambdaExpr>(E);
      Locals.emplace_back(L->param(), Demand::bottom());
      walk(L->body(), Demand::top());
      Locals.pop_back();
      return;
    }
    case ExprKind::Letrec: {
      // A nested letrec (the top-level chain is unwrapped before the
      // walk): conservative — every binding value under ⊤, calls to
      // its names resolve as unknown callees.
      const auto *LR = cast<LetrecExpr>(E);
      size_t Base = Locals.size();
      for (const LetrecBinding &B : LR->bindings())
        Locals.emplace_back(B.Name, Demand::bottom());
      walk(LR->body(), D);
      for (const LetrecBinding &B : LR->bindings())
        walk(B.Value, Demand::top());
      Locals.resize(Base);
      return;
    }
    case ExprKind::App: {
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(E, Args);
      if (const auto *P = dyn_cast<PrimExpr>(Callee)) {
        if (Args.size() == primOpArity(P->op())) {
          primCall(P->op(), E->id(), Args, D);
          return;
        }
        // Partial primitive application: walk the prim (tags its
        // first-class site ⊤) and the args under ⊤.
        walk(P, Demand::top());
        for (const Expr *A : Args)
          walk(A, Demand::top());
        return;
      }
      if (const auto *V = dyn_cast<VarExpr>(Callee);
          V && !isLocal(V->name())) {
        auto It = Tops.find(V->name());
        if (It != Tops.end() && TopOrder[It->second].IsLambda &&
            !TopOrder[It->second].Ambiguous) {
          const TopEntry &T = TopOrder[It->second];
          if (Args.size() == T.Arity) {
            std::vector<Demand> Ps = summaryFor(V->name(), D);
            for (size_t I = 0; I != Args.size(); ++I)
              walk(Args[I], Ps[I]);
            return;
          }
          // Partial or over-application: the (possibly intermediate)
          // closure escapes the summary machinery.
          markWorst(V->name());
          for (const Expr *A : Args)
            walk(A, Demand::top());
          return;
        }
      }
      // Unknown callee (closure-valued expression, local binding,
      // ambiguous name): everything ⊤.
      walk(Callee, Demand::top());
      for (const Expr *A : Args)
        walk(A, Demand::top());
      return;
    }
    }
  }

  //===--- Rounds ---------------------------------------------------------==//

  void pass() {
    // Consumers before producers: the program body demands the result
    // (⊤), then binding values under their accumulated demand, newest
    // first.
    uint32_t SavedFact = CurFact;
    CurFact = RootFact;
    walk(ProgramBody, Demand::top());
    for (size_t I = TopOrder.size(); I-- > 0;) {
      const TopEntry &T = TopOrder[I];
      bool Canonical = Tops.at(T.Name) == I;
      if (!T.IsLambda) {
        Demand D = Demand::bottom();
        if (Canonical) {
          auto It = TopDemand.find(T.Name);
          if (It != TopDemand.end())
            D = It->second;
        } else {
          D = Demand::top(); // shadowed duplicate: be conservative
        }
        walk(T.Value, D);
        continue;
      }
      if (!Canonical || T.Ambiguous) {
        walk(T.Value, Demand::top()); // Lambda case: body under ⊤
        continue;
      }
      if (Worst.count(T.Name))
        computeEntry(T.Name, Demand::top());
      // Non-worst lambdas are walked on demand, via call-site
      // summaries. Never-called ones never run: their sites stay ⊥,
      // vacuously safe.
    }
    CurFact = SavedFact;
  }

  bool iterate() {
    do {
      Changed = false;
      ++CurRound;
      pass();
    } while (Changed && CurRound < MaxRounds);
    LimitHit = LimitHit || Changed;
    return !Changed;
  }

  //===--- Drivers --------------------------------------------------------==//

  LiveReport run() {
    createFacts();
    iterate();
    if (LimitHit)
      // Did not converge (round budget): forcing every site live keeps
      // the dead-site claims sound.
      for (auto &[Id, S] : Sites)
        joinSite(Id, Demand::top());

    LiveReport R;
    R.Rounds = CurRound;
    R.SummaryEntries = Summaries.size();
    R.IterationLimitHit = LimitHit;
    for (size_t I = 0; I != TopOrder.size(); ++I) {
      const TopEntry &T = TopOrder[I];
      if (!T.IsLambda || Tops.at(T.Name) != I)
        continue;
      FunctionLive F;
      F.Name = T.Name;
      F.Loc = T.Loc;
      F.Arity = T.Arity;
      F.ParamNames = T.Params;
      F.WorstCased = Worst.count(T.Name) || T.Ambiguous;
      if (F.WorstCased) {
        F.Params.assign(T.Arity, Demand::top());
      } else {
        // Join over every analyzed result demand (⊤ dominates when the
        // function was called from a fully demanded context). A
        // never-called function reports all-⊥.
        F.Params.assign(T.Arity, Demand::bottom());
        for (const auto &[Key, E] : Summaries) {
          if (E->Fn != T.Name)
            continue;
          for (size_t P = 0; P != T.Arity; ++P)
            F.Params[P] = Demand::join(F.Params[P], E->Params[P]);
        }
      }
      R.Functions.push_back(std::move(F));
    }
    // Sites inside a function that was never analyzed (no summary, not
    // worst-cased, unambiguous) sit in code the program can never run:
    // their ⊥ is dead *code*, which the dead-data lint must not claim
    // credit for.
    std::unordered_set<uint32_t> Analyzed;
    for (const auto &[Key, E] : Summaries)
      Analyzed.insert(E->Fn.id());
    auto unreached = [&](Symbol Ctx) {
      if (!Ctx.isValid())
        return false; // program body always runs
      auto It = Tops.find(Ctx);
      if (It == Tops.end())
        return false;
      const TopEntry &T = TopOrder[It->second];
      if (!T.IsLambda || T.Ambiguous || Worst.count(Ctx))
        return false;
      return !Analyzed.count(Ctx.id());
    };
    for (const auto &[Id, S] : Sites)
      R.Sites.push_back(SiteLive{S.Site, S.Op, S.Dem, S.Context, S.Fact,
                                 unreached(S.Context)});
    if (Prov)
      for (const auto &[Id, S] : Sites)
        Prov->result(S.Fact, S.Dem.str());
    return R;
  }

  std::vector<Demand> functionDemand(Symbol Fn, Demand Result) {
    auto It = Tops.find(Fn);
    if (It == Tops.end() || !TopOrder[It->second].IsLambda)
      return {};
    createFacts();
    std::vector<Demand> Ps;
    do {
      Changed = false;
      ++CurRound;
      Ps = summaryFor(Fn, Result);
    } while (Changed && CurRound < MaxRounds);
    LimitHit = LimitHit || Changed;
    if (LimitHit)
      return std::vector<Demand>(TopOrder[It->second].Arity, Demand::top());
    return Ps;
  }
};

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

LiveAnalyzer::LiveAnalyzer(const AstContext &Ast, const Expr *Root,
                           const TypedProgram *Typed, unsigned MaxRounds)
    : TheImpl(std::make_unique<Impl>(Ast, Root, Typed, MaxRounds)) {}

LiveAnalyzer::~LiveAnalyzer() = default;

void LiveAnalyzer::attachProvenance(explain::ProvenanceRecorder *P) {
  TheImpl->Prov = P;
}

LiveReport LiveAnalyzer::run() { return TheImpl->run(); }

std::vector<Demand> LiveAnalyzer::functionDemand(Symbol Fn, Demand Result) {
  return TheImpl->functionDemand(Fn, Result);
}

//===----------------------------------------------------------------------===//
// LiveReport
//===----------------------------------------------------------------------===//

const FunctionLive *LiveReport::find(Symbol Name) const {
  for (const FunctionLive &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const SiteLive *LiveReport::findSite(uint32_t Id) const {
  for (const SiteLive &S : Sites)
    if (S.Site->id() == Id)
      return &S;
  return nullptr;
}

std::unordered_set<uint32_t> LiveReport::deadSites() const {
  std::unordered_set<uint32_t> Dead;
  for (const SiteLive &S : Sites)
    if (S.Dem.isBottom())
      Dead.insert(S.Site->id());
  return Dead;
}

size_t LiveReport::deadSiteCount() const {
  size_t N = 0;
  for (const SiteLive &S : Sites)
    N += S.Dem.isBottom();
  return N;
}

namespace {

void renderSiteLoc(std::ostringstream &OS, const SourceManager &SM,
                   const SiteLive &S) {
  LineColumn LC = SM.lineColumn(S.Site->loc());
  OS << LC.Line << ':' << LC.Column;
}

} // namespace

std::string LiveReport::render(const AstContext &Ast,
                               const SourceManager &SM) const {
  std::ostringstream OS;
  OS << "liveness: " << Rounds << " round(s), " << SummaryEntries
     << " summary entrie(s), " << Sites.size() << " allocation site(s), "
     << deadSiteCount() << " dead\n";
  if (IterationLimitHit)
    OS << "  (round budget exhausted; demands forced to top)\n";
  for (const FunctionLive &F : Functions) {
    OS << "function " << Ast.spelling(F.Name) << '/' << F.Arity << ':';
    if (F.WorstCased)
      OS << " (worst-cased: escapes into first-class use)";
    OS << '\n';
    for (size_t I = 0; I != F.Params.size(); ++I)
      OS << "  " << Ast.spelling(F.ParamNames[I]) << " -> "
         << F.Params[I].str() << '\n';
  }
  for (const SiteLive &S : Sites) {
    OS << "site " << S.Site->id() << " (" << primOpName(S.Op) << ") at ";
    renderSiteLoc(OS, SM, S);
    OS << " in "
       << (S.Context.isValid() ? Ast.spelling(S.Context) : "<program>")
       << ": " << S.Dem.str();
    if (S.Dem.isBottom())
      OS << (S.Unreached ? "  [dead code]" : "  [dead data]");
    OS << '\n';
  }
  return OS.str();
}

namespace {

/// JSON depth encoding: Inf -> -1.
int jsonDepth(Demand D) { return D.Depth == Demand::Inf ? -1 : D.Depth; }

void demandJson(std::ostringstream &OS, Demand D) {
  OS << "\"depth\": " << jsonDepth(D) << ", \"car\": "
     << (D.Car ? "true" : "false") << ", \"snd\": "
     << (D.Snd ? "true" : "false") << ", \"rendered\": "
     << obs::jsonQuote(D.str());
}

} // namespace

std::string LiveReport::toJson(const AstContext &Ast, const SourceManager &SM,
                               const std::string &Command,
                               bool Success) const {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"schema\": \"eal-live-v1\",\n"
     << "  \"command\": " << obs::jsonQuote(Command) << ",\n"
     << "  \"file\": " << obs::jsonQuote(SM.name()) << ",\n"
     << "  \"success\": " << (Success ? "true" : "false") << ",\n"
     << "  \"summary\": {\"rounds\": " << Rounds
     << ", \"summaries\": " << SummaryEntries
     << ", \"functions\": " << Functions.size()
     << ", \"sites\": " << Sites.size()
     << ", \"dead_sites\": " << deadSiteCount() << ", \"converged\": "
     << (IterationLimitHit ? "false" : "true") << "},\n"
     << "  \"functions\": [";
  for (size_t I = 0; I != Functions.size(); ++I) {
    const FunctionLive &F = Functions[I];
    LineColumn LC = SM.lineColumn(F.Loc);
    OS << (I ? "," : "") << "\n    {\"name\": "
       << obs::jsonQuote(std::string(Ast.spelling(F.Name)))
       << ", \"line\": " << LC.Line << ", \"col\": " << LC.Column
       << ", \"arity\": " << F.Arity << ", \"worst\": "
       << (F.WorstCased ? "true" : "false") << ", \"params\": [";
    for (size_t P = 0; P != F.Params.size(); ++P) {
      OS << (P ? ", " : "") << "{\"index\": " << P << ", \"name\": "
         << obs::jsonQuote(std::string(Ast.spelling(F.ParamNames[P])))
         << ", ";
      demandJson(OS, F.Params[P]);
      OS << "}";
    }
    OS << "]}";
  }
  OS << (Functions.empty() ? "]" : "\n  ]") << ",\n  \"sites\": [";
  for (size_t I = 0; I != Sites.size(); ++I) {
    const SiteLive &S = Sites[I];
    LineColumn LC = SM.lineColumn(S.Site->loc());
    OS << (I ? "," : "") << "\n    {\"id\": " << S.Site->id()
       << ", \"op\": " << obs::jsonQuote(std::string(primOpName(S.Op)))
       << ", \"context\": "
       << obs::jsonQuote(S.Context.isValid()
                             ? std::string(Ast.spelling(S.Context))
                             : std::string(""))
       << ", \"line\": " << LC.Line << ", \"col\": " << LC.Column << ", ";
    demandJson(OS, S.Dem);
    OS << ", \"dead\": " << (S.Dem.isBottom() ? "true" : "false")
       << ", \"unreached\": " << (S.Unreached ? "true" : "false") << "}";
  }
  OS << (Sites.empty() ? "]" : "\n  ]") << "\n}\n";
  return OS.str();
}

//===- LiveAnalyzer.h - Interprocedural heap-liveness analysis --*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `eal::live`: a backward, interprocedural liveness analysis over the
/// demand lattice of Demand.h (docs/LIVENESS.md). Where the escape
/// analyzer answers "how far does this value *flow*", the liveness
/// analyzer answers the dual question: "how much of this value does any
/// consumer ever *read*". An allocation whose joined demand is ⊥ builds
/// dead data — cells no `car`/`cdr`/`fst`/`snd` will ever touch.
///
/// Structure mirrors the escape analyzer's memoized fixpoint (§3.5):
/// per-function summaries keyed by (binding, result demand) are seeded
/// at ⊥ and recomputed in monotone rounds until nothing rises. Theorem 1
/// (polymorphic invariance, §5) is what justifies summarizing a binding
/// once per *demand* rather than once per type instance: liveness, like
/// escape behaviour, is invariant under the type instantiations a
/// polymorphic function takes on.
///
/// The language is strict, so evaluation of a subterm happens even when
/// its value is dead; the transfer rules therefore always descend into
/// subexpressions — a `car x` executed for effect still touches `x`'s
/// head cell — and demand ⊥ means "the *result* is never read", not
/// "the expression never runs". Higher-order escapes (a binding used
/// first-class, partial application) conservatively worst-case the
/// function: every parameter demanded ⊤.
///
/// Results: a per-site demand map (join over every consuming context),
/// per-function summaries under ⊤, and the `eal-live-v1` JSON document
/// (validated by tools/check_live_json.py). With a ProvenanceRecorder
/// attached, every summary and site demand becomes a Liveness fact whose
/// dependency edges name the demanding context — the blame chains behind
/// the EAL-D findings (docs/EXPLAIN.md).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_LIVE_LIVEANALYZER_H
#define EAL_LIVE_LIVEANALYZER_H

#include "lang/Ast.h"
#include "live/Demand.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace eal {

class SourceManager;
class TypedProgram;

namespace explain {
class ProvenanceRecorder;
}

namespace live {

/// The liveness summary of one top-level binding: what each parameter's
/// demand is when the function's *result* is fully demanded (⊤). The
/// paper-facing invariant (docs/LIVENESS.md): append x y under result
/// demand ⟨d,e⟩ yields x ↦ ⟨∞,e⟩ (strict evaluation walks all of x
/// regardless of d) and y ↦ ⟨d,e⟩.
struct FunctionLive {
  Symbol Name;
  SourceLoc Loc;
  unsigned Arity = 0;
  std::vector<Symbol> ParamNames;
  /// Parameter demands in binder order: the join over every analyzed
  /// result demand (⊤ dominates when the function is called from a
  /// fully demanded context; a never-called function reports all-⊥).
  std::vector<Demand> Params;
  /// The binding escaped into first-class use (argument position,
  /// partial/over-application, shadowed duplicate): summaries are ⊤.
  bool WorstCased = false;
};

/// One cons/mkpair/dcons allocation site of the analyzed program with
/// its joined demand. Site ids match the runtime's ConsCell::SiteId
/// tagging: the outermost App node of a saturated primitive spine, or
/// the PrimExpr node for a first-class primitive.
struct SiteLive {
  const Expr *Site = nullptr;
  PrimOp Op = PrimOp::Cons;
  /// Join of the demands of every context the site's value reaches.
  /// ⊥ = dead data: no field of any cell born here is ever read.
  Demand Dem;
  /// Enclosing top-level binding (invalid symbol = program body).
  Symbol Context;
  /// Liveness provenance fact for this site (explain::NoFact when no
  /// recorder was attached).
  uint32_t Fact = ~0u;
  /// The enclosing function can never run (never called and never used
  /// first-class — e.g. the optimizer's superseded original after DCONS
  /// cloning): Dem is ⊥ because the site is dead *code*, not dead data.
  /// The ⊥ claim is vacuously safe (the runtime never allocates here),
  /// but the dead-data lint (EAL-D001) skips these.
  bool Unreached = false;
};

/// Everything one liveness run produced.
struct LiveReport {
  std::vector<FunctionLive> Functions;
  /// Every allocation site of the program, in node-id order. Sites in
  /// never-demanded *and never-called* code are ⊥ too (the runtime
  /// never allocates there, so the claim is vacuously safe).
  std::vector<SiteLive> Sites;
  unsigned Rounds = 0;
  size_t SummaryEntries = 0;
  /// The round budget ran out before the fixpoint settled; remaining
  /// demands were forced to ⊤ (sound, never wrongly dead).
  bool IterationLimitHit = false;

  const FunctionLive *find(Symbol Name) const;
  const SiteLive *findSite(uint32_t Id) const;
  /// Site ids with demand ⊥ — the D001 set the oracle checks and the
  /// (gated) GC prune consumes.
  std::unordered_set<uint32_t> deadSites() const;
  size_t deadSiteCount() const;

  /// Human-readable rendering (the `eal live` default output).
  std::string render(const AstContext &Ast, const SourceManager &SM) const;
  /// The eal-live-v1 JSON document (tools/check_live_json.py). Inf
  /// depths are encoded as -1. \p Command and \p Success mirror the
  /// other eal-*-v1 schemas.
  std::string toJson(const AstContext &Ast, const SourceManager &SM,
                     const std::string &Command, bool Success) const;
};

/// Runs the analysis. One instance wraps one program; functionDemand()
/// may be queried repeatedly (golden tests drive it directly) and run()
/// computes the whole-program report under root demand ⊤.
class LiveAnalyzer {
public:
  /// \p Typed may be null; when present it only refines reporting
  /// (element types in the rendered report) — the analysis itself is
  /// type-agnostic, which is exactly the Theorem 1 stance.
  LiveAnalyzer(const AstContext &Ast, const Expr *Root,
               const TypedProgram *Typed = nullptr, unsigned MaxRounds = 64);
  ~LiveAnalyzer();

  /// Attach before run()/functionDemand() to record Liveness facts.
  void attachProvenance(explain::ProvenanceRecorder *P);

  /// Whole-program analysis under root demand ⊤ (the printed result is
  /// fully demanded).
  LiveReport run();

  /// The summary query: demand on each parameter of top-level binding
  /// \p Fn given result demand \p Result. Iterates the memo table to
  /// its fixpoint. Returns an empty vector for unknown bindings.
  std::vector<Demand> functionDemand(Symbol Fn, Demand Result);

private:
  class Impl;
  std::unique_ptr<Impl> TheImpl;
};

} // namespace live
} // namespace eal

#endif // EAL_LIVE_LIVEANALYZER_H

//===- EventRing.h - Lock-free SPSC event ring ------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-producer / single-consumer ring of RecEvents. Exactly one
/// thread pushes (the execution thread that owns the ring, see the ring
/// pool in Recorder.cpp) and at most one thread pops (the streaming
/// drain). Two producer entry points:
///
///  - pushOverwrite (flight mode, the always-on default): when full,
///    reclaim the oldest slot and count the casualty in dropped().
///    Never blocks — this is the path whose cost the obs.overhead
///    bench gates.
///
///  - tryPush (streaming mode): refuse instead of overwrite when full.
///    The emitter loops tryPush/yield while a stream is active, so no
///    event is lost; it re-reads the streaming flag each iteration and
///    falls back to pushOverwrite when the stream stops, so a producer
///    can never be stranded spinning (Recorder.cpp).
///
/// Head/Tail are monotonically increasing sequence numbers; the slot is
/// `seq & (Capacity - 1)`. The Head store's release publishes the slot
/// write; the consumer's acquire load pairs with it. Tail moves by CAS
/// on both sides because flight-mode overwrite and a concurrent drain
/// contend for the same oldest slot.
///
/// Slots are stored as four relaxed-atomic words, not a plain struct:
/// snapshot() runs while a producer may be mid-write (a crash dump
/// never waits), so slot accesses must be data-race-free for TSan
/// (tests/obs/RecorderStressTest.cpp). A snapshot can therefore see a
/// torn event at the write frontier — acceptable for forensics, and
/// impossible on the pop() path, where the Head/Tail protocol keeps
/// producer and consumer off the same slot.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OBS_EVENTRING_H
#define EAL_OBS_EVENTRING_H

#include "obs/RecEvent.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

namespace eal::obs::rec {

class EventRing {
public:
  /// \p CapacityPow2 must be a power of two (asserted).
  explicit EventRing(size_t CapacityPow2 = DefaultCapacity)
      : Slots(CapacityPow2), Mask(CapacityPow2 - 1) {
    assert(CapacityPow2 != 0 && (CapacityPow2 & Mask) == 0 &&
           "ring capacity must be a power of two");
  }

  static constexpr size_t DefaultCapacity = 8192;

  size_t capacity() const { return Slots.size(); }

  /// Flight-mode push: overwrites the oldest event when full.
  void pushOverwrite(const RecEvent &Ev) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t T = Tail.load(std::memory_order_acquire);
      if (H - T < Slots.size())
        break;
      // Reclaim the oldest slot. CAS because a drain may be popping it
      // concurrently; whoever wins, one slot frees up.
      if (Tail.compare_exchange_weak(T, T + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        DroppedCount.fetch_add(1, std::memory_order_relaxed);
    }
    store(H & Mask, Ev);
    Head.store(H + 1, std::memory_order_release);
  }

  /// Streaming push: returns false instead of overwriting when full.
  bool tryPush(const RecEvent &Ev) {
    uint64_t H = Head.load(std::memory_order_relaxed);
    uint64_t T = Tail.load(std::memory_order_acquire);
    if (H - T >= Slots.size())
      return false;
    store(H & Mask, Ev);
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops the oldest event into \p Out. Returns false on
  /// an empty ring.
  bool pop(RecEvent &Out) {
    for (;;) {
      uint64_t T = Tail.load(std::memory_order_acquire);
      if (T == Head.load(std::memory_order_acquire))
        return false;
      Out = load(T & Mask);
      // CAS instead of a plain store: a flight-mode producer may steal
      // this same slot to overwrite it. Losing the race just means the
      // event we copied was dropped; retry with the new Tail.
      if (Tail.compare_exchange_weak(T, T + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        return true;
    }
  }

  /// Appends the current contents to \p Out, oldest first, without
  /// consuming. Best-effort (see file comment): used by flight dumps.
  void snapshot(std::vector<RecEvent> &Out) const {
    uint64_t T = Tail.load(std::memory_order_acquire);
    uint64_t H = Head.load(std::memory_order_acquire);
    for (uint64_t S = T; S != H; ++S)
      Out.push_back(load(S & Mask));
  }

  /// Events overwritten in flight mode since construction.
  uint64_t dropped() const {
    return DroppedCount.load(std::memory_order_relaxed);
  }

  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

private:
  /// One event as relaxed-atomic words (see file comment). W3 packs
  /// C | Kind<<32 | Tid<<48.
  struct Slot {
    std::atomic<uint64_t> W0{0}, W1{0}, W2{0}, W3{0};
  };

  void store(size_t I, const RecEvent &Ev) {
    Slot &S = Slots[I];
    S.W0.store(Ev.TimeUs, std::memory_order_relaxed);
    S.W1.store(Ev.A, std::memory_order_relaxed);
    S.W2.store(Ev.B, std::memory_order_relaxed);
    S.W3.store(static_cast<uint64_t>(Ev.C) |
                   (static_cast<uint64_t>(Ev.Kind) << 32) |
                   (static_cast<uint64_t>(Ev.Tid) << 48),
               std::memory_order_relaxed);
  }

  RecEvent load(size_t I) const {
    const Slot &S = Slots[I];
    RecEvent Ev;
    Ev.TimeUs = S.W0.load(std::memory_order_relaxed);
    Ev.A = S.W1.load(std::memory_order_relaxed);
    Ev.B = S.W2.load(std::memory_order_relaxed);
    uint64_t W3 = S.W3.load(std::memory_order_relaxed);
    Ev.C = static_cast<uint32_t>(W3);
    Ev.Kind = static_cast<uint16_t>(W3 >> 32);
    Ev.Tid = static_cast<uint16_t>(W3 >> 48);
    return Ev;
  }

  std::vector<Slot> Slots;
  size_t Mask;
  /// Next sequence number to write (producer-owned).
  std::atomic<uint64_t> Head{0};
  /// Oldest live sequence number (consumer-advanced; flight-mode
  /// producers advance it too, via CAS, to overwrite).
  std::atomic<uint64_t> Tail{0};
  std::atomic<uint64_t> DroppedCount{0};
};

} // namespace eal::obs::rec

#endif // EAL_OBS_EVENTRING_H

//===- RecEvent.h - Compact flight-recorder events --------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary of the flight recorder (docs/RECORDER.md). One
/// event is a fixed 32-byte POD: a kind, a ring id, a timestamp on the
/// obs trace clock, and three raw payload words whose meaning depends on
/// the kind. Strings never travel in events — names (commands, phases,
/// deopt causes, dump triggers) are interned to small ids and the table
/// is written once per recording (see Recorder.h).
///
/// Payload conventions (timeline + rec2trace.py decode these):
///
///   RunBegin       A=name(command)      B=name(engine)
///   RunEnd         A=success(0/1)
///   PhaseBegin/End A=name(phase)
///   GcBegin        A=live heap cells    B=capacity
///   GcEnd          A=cells marked       B=cells swept      C=live after
///   HeapGrow       A=new capacity
///   ArenaOpen      A=arena handle
///   ArenaFree      A=stack cells        B=region cells     C=handle
///   CellBirth      A=AllocSeq           B=SiteId           C=class
///   CellDeath      A=AllocSeq           B=SiteId           C=class|reason<<8
///   CellDcons      A=AllocSeq           B=new SiteId       C=old SiteId
///   CellTouch      A=AllocSeq           B=SiteId
///   CellMigrate    A=AllocSeq           B=base SiteId      C=old class
///                  (the cell's class becomes Heap)
///   SpecDeopt      A=name(cause)        B=cells migrated   C=injected site
///   OracleRefuted  A=allocation SiteId  B=name(violation kind)
///   LiveRefuted    A=claimed-dead SiteId B=name(violation kind)
///   DumpTrigger    A=name(trigger)
///
/// `class` is CellClass's underlying value (0 heap, 1 stack, 2 region);
/// `reason` in CellDeath is 0 for a GC sweep, 1 for an arena free.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OBS_RECEVENT_H
#define EAL_OBS_RECEVENT_H

#include <cstddef>
#include <cstdint>

namespace eal::obs::rec {

/// Event kinds. Stable order: the kind table is serialized by index into
/// every eal-rec-v1 header, so readers match by name, not value.
enum class RecKind : uint16_t {
  None = 0,
  RunBegin,
  RunEnd,
  PhaseBegin,
  PhaseEnd,
  GcBegin,
  GcEnd,
  HeapGrow,
  ArenaOpen,
  ArenaFree,
  CellBirth,
  CellDeath,
  CellDcons,
  CellTouch,
  CellMigrate,
  SpecDeopt,
  OracleRefuted,
  LiveRefuted,
  DumpTrigger,
  NumKinds,
};

/// The serialized name of \p K ("cell.birth", "gc.end", ...).
const char *kindName(RecKind K);

/// CellDeath reasons (low byte above the class in payload C).
inline constexpr uint32_t DeathBySweep = 0;
inline constexpr uint32_t DeathByArenaFree = 1;

/// Packs a CellDeath C payload.
inline constexpr uint32_t deathPayload(uint8_t Class, uint32_t Reason) {
  return static_cast<uint32_t>(Class) | (Reason << 8);
}

/// One recorded event. Trivially copyable; the binary recording format
/// is this struct verbatim (host byte order, in practice little-endian).
struct RecEvent {
  /// Microseconds on the obs::nowMicros() process clock.
  uint64_t TimeUs = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  uint32_t C = 0;
  uint16_t Kind = 0;
  /// Ring id the event was produced into (stable per ring, not per OS
  /// thread: rings are pooled across short-lived execution threads).
  uint16_t Tid = 0;
};

static_assert(sizeof(RecEvent) == 32, "events must stay compact");

} // namespace eal::obs::rec

#endif // EAL_OBS_RECEVENT_H

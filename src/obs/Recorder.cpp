//===- Recorder.cpp - Ring pool, drain thread, eal-rec-v1 writer ----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Layout of this file:
//   - the ring pool: one EventRing per concurrently-emitting thread,
//     acquired on first emit and released (for reuse) at thread exit so
//     256 sequential big-stack execution threads share one ring;
//   - the string interner feeding 16-bit name ids into events;
//   - the eal-rec-v1 writer (NDJSON and binary, docs/RECORDER.md);
//   - the streaming drain thread (--record=FILE);
//   - the crash-dump path (setDumpPath/dumpNow + SIGABRT hook).
//
// Lock order: DumpM before M before RecentM. The emit fast path takes
// no lock at all (thread-local ring handle + lock-free push).
//
//===----------------------------------------------------------------------===//

#include "obs/Recorder.h"

#include "obs/EventRing.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace eal;
using namespace eal::obs;
using namespace eal::obs::rec;

std::atomic<bool> rec::detail::LiteOn{true};
std::atomic<bool> rec::detail::CellsOn{false};

const char *rec::kindName(RecKind K) {
  static const char *const Names[] = {
      "none",        "run.begin",  "run.end",      "phase.begin",
      "phase.end",   "gc.begin",   "gc.end",       "heap.grow",
      "arena.open",  "arena.free", "cell.birth",   "cell.death",
      "cell.dcons",  "cell.touch", "cell.migrate", "spec.deopt",
      "oracle.refuted", "live.refuted", "dump.trigger",
  };
  static_assert(sizeof(Names) / sizeof(Names[0]) ==
                    static_cast<size_t>(RecKind::NumKinds),
                "kind name table out of sync");
  size_t I = static_cast<size_t>(K);
  return I < static_cast<size_t>(RecKind::NumKinds) ? Names[I] : "invalid";
}

namespace {

/// A pooled ring: Tid is the ring's identity in recordings (stable
/// across producer-thread reuse), InUse is the pool claim flag.
struct ThreadRing {
  EventRing Ring;
  uint16_t Tid = 0;
  std::atomic<bool> InUse{false};
};

constexpr size_t RecentWindow = EventRing::DefaultCapacity;
constexpr uint16_t SentinelKind = 0xFFFF;

struct RecState {
  /// Guards the ring registry, interner, counters, and stream
  /// start/stop. Never taken on the emit path.
  std::mutex M;
  std::vector<std::unique_ptr<ThreadRing>> Rings;

  // Interner (ids 0/1 reserved, see Recorder.h).
  std::vector<std::string> Names{"<none>", "<overflow>"};
  std::unordered_map<std::string, uint16_t> NameIds;

  // Final counters for the footer (insertion-ordered, last write wins).
  std::vector<std::pair<std::string, uint64_t>> Counters;

  // Streaming drain.
  std::atomic<bool> StreamingOn{false};
  std::atomic<bool> DrainStop{false};
  std::thread Drain;
  std::ofstream Out;
  bool Binary = false;
  bool DetailStream = false;
  std::string StreamCommand;
  /// Ring drop counters are cumulative for the life of the process;
  /// the stream footer reports drops during *this* stream, so start
  /// snapshots the total and stop subtracts it.
  uint64_t StreamDroppedBase = 0;

  /// Tail window of already-drained events, so a dump fired while
  /// streaming still has history (the rings have been emptied).
  std::mutex RecentM;
  std::deque<RecEvent> Recent;

  // Crash dump.
  std::mutex DumpM;
  std::string DumpPath;
  std::string DumpTriggerName;
  std::string DumpCommand = "run";
  std::atomic<bool> DumpArmed{false};
  std::atomic<bool> DumpedFlag{false};
  bool AbortHooked = false;
};

/// Leaked on purpose: producer threads release their ring from a
/// thread_local destructor, which can run after static destructors.
RecState &state() {
  static RecState *S = new RecState;
  return *S;
}

//===----------------------------------------------------------------------===//
// Ring pool
//===----------------------------------------------------------------------===//

struct RingHandle {
  ThreadRing *TR = nullptr;
  ~RingHandle() {
    if (TR)
      TR->InUse.store(false, std::memory_order_release);
  }
};

thread_local RingHandle TlsRing;

ThreadRing *myRing() {
  if (TlsRing.TR)
    return TlsRing.TR;
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  for (auto &R : S.Rings) {
    bool Free = false;
    if (R->InUse.compare_exchange_strong(Free, true,
                                         std::memory_order_acq_rel)) {
      TlsRing.TR = R.get();
      return TlsRing.TR;
    }
  }
  if (S.Rings.size() > 0xFFFF)
    return nullptr; // ring-id space exhausted; drop this thread's events
  S.Rings.push_back(std::make_unique<ThreadRing>());
  ThreadRing *TR = S.Rings.back().get();
  TR->Tid = static_cast<uint16_t>(S.Rings.size() - 1);
  TR->InUse.store(true, std::memory_order_release);
  TlsRing.TR = TR;
  return TR;
}

/// Raw ring pointers, for iteration without holding M (the registry
/// only grows; ThreadRing addresses are stable).
std::vector<ThreadRing *> ringPointers(RecState &S) {
  std::lock_guard<std::mutex> Lock(S.M);
  std::vector<ThreadRing *> Out;
  Out.reserve(S.Rings.size());
  for (auto &R : S.Rings)
    Out.push_back(R.get());
  return Out;
}

} // namespace

void rec::detail::emitSlow(RecKind K, uint64_t A, uint64_t B, uint32_t C) {
  ThreadRing *TR = myRing();
  if (!TR)
    return;
  RecEvent Ev;
  Ev.TimeUs = static_cast<uint64_t>(nowMicros());
  Ev.A = A;
  Ev.B = B;
  Ev.C = C;
  Ev.Kind = static_cast<uint16_t>(K);
  Ev.Tid = TR->Tid;
  RecState &S = state();
  // While a stream is live, never lose an event: wait for the drain.
  // The flag is re-read every iteration so a producer stuck on a full
  // ring falls back to flight overwrite the moment the stream stops.
  for (;;) {
    if (!S.StreamingOn.load(std::memory_order_acquire)) {
      TR->Ring.pushOverwrite(Ev);
      return;
    }
    if (TR->Ring.tryPush(Ev))
      return;
    std::this_thread::yield();
  }
}

//===----------------------------------------------------------------------===//
// Interner
//===----------------------------------------------------------------------===//

namespace {

uint16_t internLocked(RecState &S, std::string_view Name) {
  auto It = S.NameIds.find(std::string(Name));
  if (It != S.NameIds.end())
    return It->second;
  if (S.Names.size() > 0xFFFE)
    return 1; // "<overflow>"
  uint16_t Id = static_cast<uint16_t>(S.Names.size());
  S.Names.emplace_back(Name);
  S.NameIds.emplace(S.Names.back(), Id);
  return Id;
}

} // namespace

uint16_t rec::internName(std::string_view Name) {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return internLocked(S, Name);
}

std::string rec::lookupName(uint16_t Id) {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return Id < S.Names.size() ? S.Names[Id] : std::string("<unknown>");
}

size_t rec::internedNameCount() {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return S.Names.size();
}

void rec::setLiteEnabled(bool On) {
  detail::LiteOn.store(On, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// eal-rec-v1 writer
//===----------------------------------------------------------------------===//

namespace {

void writeHeader(std::ostream &OS, const char *Mode, bool Binary, bool Detail,
                 const std::string &Command) {
  OS << "{\"schema\":\"eal-rec-v1\",\"format\":\""
     << (Binary ? "binary" : "ndjson") << "\",\"mode\":\"" << Mode
     << "\",\"command\":" << jsonQuote(Command)
     << ",\"detail\":" << (Detail ? "true" : "false")
     << ",\"epoch_us\":" << nowMicros() << ",\"kinds\":[";
  for (size_t I = 0; I != static_cast<size_t>(RecKind::NumKinds); ++I) {
    if (I)
      OS << ',';
    OS << jsonQuote(kindName(static_cast<RecKind>(I)));
  }
  OS << "]}\n";
}

void writeEventNdjson(std::ostream &OS, const RecEvent &Ev) {
  OS << "{\"t\":" << Ev.TimeUs << ",\"tid\":" << Ev.Tid << ",\"k\":" << Ev.Kind
     << ",\"a\":" << Ev.A << ",\"b\":" << Ev.B << ",\"c\":" << Ev.C << "}\n";
}

void writeEventBinary(std::ostream &OS, const RecEvent &Ev) {
  OS.write(reinterpret_cast<const char *>(&Ev), sizeof(RecEvent));
}

/// Caller holds S.M (the footer snapshots the interner and counters).
void writeFooterLocked(std::ostream &OS, RecState &S, uint64_t Dropped,
                       std::string_view Trigger) {
  OS << "{\"footer\":true,\"names\":[";
  for (size_t I = 0; I != S.Names.size(); ++I) {
    if (I)
      OS << ',';
    OS << jsonQuote(S.Names[I]);
  }
  OS << "],\"counters\":{";
  bool First = true;
  for (size_t I = 0; I != S.Counters.size(); ++I) {
    // Last write wins: skip keys overwritten later in the list.
    bool Stale = false;
    for (size_t J = I + 1; J != S.Counters.size() && !Stale; ++J)
      Stale = S.Counters[J].first == S.Counters[I].first;
    if (Stale)
      continue;
    if (!First)
      OS << ',';
    First = false;
    OS << jsonQuote(S.Counters[I].first) << ':' << S.Counters[I].second;
  }
  OS << "},\"dropped\":" << Dropped << ",\"trigger\":" << jsonQuote(Trigger)
     << "}\n";
}

uint64_t totalDropped(const std::vector<ThreadRing *> &Rings) {
  uint64_t N = 0;
  for (ThreadRing *R : Rings)
    N += R->Ring.dropped();
  return N;
}

//===----------------------------------------------------------------------===//
// Streaming drain
//===----------------------------------------------------------------------===//

/// Pops everything currently in the rings, writes it (time-sorted
/// within the batch), and appends it to the Recent window. Returns the
/// batch size.
size_t drainOnce(RecState &S, std::vector<RecEvent> &Batch) {
  Batch.clear();
  RecEvent Ev;
  for (ThreadRing *R : ringPointers(S))
    while (R->Ring.pop(Ev))
      Batch.push_back(Ev);
  if (Batch.empty())
    return 0;
  std::stable_sort(Batch.begin(), Batch.end(),
                   [](const RecEvent &A, const RecEvent &B) {
                     return A.TimeUs < B.TimeUs;
                   });
  for (const RecEvent &E : Batch)
    S.Binary ? writeEventBinary(S.Out, E) : writeEventNdjson(S.Out, E);
  S.Out.flush(); // live consumers tail this file
  {
    std::lock_guard<std::mutex> Lock(S.RecentM);
    S.Recent.insert(S.Recent.end(), Batch.begin(), Batch.end());
    while (S.Recent.size() > RecentWindow)
      S.Recent.pop_front();
  }
  return Batch.size();
}

void drainLoop(RecState &S) {
  std::vector<RecEvent> Batch;
  Batch.reserve(1024);
  for (;;) {
    if (drainOnce(S, Batch) != 0)
      continue;
    if (S.DrainStop.load(std::memory_order_acquire)) {
      // One more sweep wins the race against producers that pushed
      // between our last pass and the stop flag.
      if (drainOnce(S, Batch) == 0)
        return;
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

} // namespace

bool rec::startStream(const StreamOptions &Opts, std::string *Err) {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.StreamingOn.load(std::memory_order_acquire)) {
    if (Err)
      *Err = "recorder: already streaming";
    return false;
  }
  S.Out.open(Opts.Path, Opts.Binary
                            ? (std::ios::out | std::ios::trunc |
                               std::ios::binary)
                            : (std::ios::out | std::ios::trunc));
  if (!S.Out) {
    if (Err)
      *Err = "recorder: cannot open " + Opts.Path;
    return false;
  }
  // A stream is a fresh recording: discard flight history left over
  // from earlier (unrecorded) runs in this process, so the file holds
  // exactly this run's events and timelines reconcile exactly.
  RecEvent Scratch;
  for (auto &R : S.Rings)
    while (R->Ring.pop(Scratch))
      ;
  {
    std::lock_guard<std::mutex> RLock(S.RecentM);
    S.Recent.clear();
  }
  S.Binary = Opts.Binary;
  S.DetailStream = Opts.Detail;
  S.StreamCommand = Opts.Command;
  S.StreamDroppedBase = 0;
  for (auto &R : S.Rings)
    S.StreamDroppedBase += R->Ring.dropped();
  S.Counters.clear();
  writeHeader(S.Out, "stream", S.Binary, S.DetailStream, S.StreamCommand);
  S.DrainStop.store(false, std::memory_order_release);
  S.StreamingOn.store(true, std::memory_order_release);
#if EAL_OBS_RECORDER
  if (Opts.Detail)
    detail::CellsOn.store(true, std::memory_order_relaxed);
#endif
  S.Drain = std::thread([&S] { drainLoop(S); });
  return true;
}

bool rec::stopStream(std::string *Err) {
  RecState &S = state();
  if (!S.StreamingOn.load(std::memory_order_acquire))
    return true;
  detail::CellsOn.store(false, std::memory_order_relaxed);
  S.DrainStop.store(true, std::memory_order_release);
  if (S.Drain.joinable())
    S.Drain.join();
  S.StreamingOn.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(S.M);
  if (S.Binary) {
    RecEvent Sentinel;
    Sentinel.Kind = SentinelKind;
    writeEventBinary(S.Out, Sentinel);
  }
  std::vector<ThreadRing *> Rings;
  Rings.reserve(S.Rings.size());
  for (auto &R : S.Rings)
    Rings.push_back(R.get());
  writeFooterLocked(S.Out, S, totalDropped(Rings) - S.StreamDroppedBase, "");
  S.Out.close();
  if (!S.Out) {
    if (Err)
      *Err = "recorder: write failed closing stream";
    return false;
  }
  return true;
}

bool rec::streaming() {
  return state().StreamingOn.load(std::memory_order_acquire);
}

//===----------------------------------------------------------------------===//
// Crash dumps
//===----------------------------------------------------------------------===//

namespace {

extern "C" void recAbortHandler(int) {
  // Best effort: every lock on this path is try_lock, so a signal that
  // lands while a recorder lock is held skips the dump rather than
  // deadlocking. (ofstream is not async-signal-safe either; this trades
  // strict safety for forensics on what is already a fatal path.)
  rec::dumpNow("sigabrt");
  std::signal(SIGABRT, SIG_DFL);
}

} // namespace

void rec::setDumpPath(std::string Path, std::string Command) {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.DumpPath = std::move(Path);
  S.DumpCommand = std::move(Command);
  S.DumpTriggerName.clear();
  S.Counters.clear();
  S.DumpedFlag.store(false, std::memory_order_release);
  S.DumpArmed.store(!S.DumpPath.empty(), std::memory_order_release);
  if (S.DumpArmed.load(std::memory_order_relaxed) && !S.AbortHooked) {
    std::signal(SIGABRT, recAbortHandler);
    S.AbortHooked = true;
  }
}

void rec::clearDumpPath() {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.DumpArmed.store(false, std::memory_order_release);
  S.DumpPath.clear();
  if (S.AbortHooked) {
    std::signal(SIGABRT, SIG_DFL);
    S.AbortHooked = false;
  }
}

bool rec::dumpNow(std::string_view Trigger) {
  RecState &S = state();
  if (!S.DumpArmed.load(std::memory_order_acquire) ||
      S.DumpedFlag.load(std::memory_order_acquire))
    return false;
  std::unique_lock<std::mutex> DumpLock(S.DumpM, std::try_to_lock);
  if (!DumpLock.owns_lock())
    return false;
  std::unique_lock<std::mutex> Lock(S.M, std::try_to_lock);
  if (!Lock.owns_lock())
    return false;
  if (S.DumpedFlag.load(std::memory_order_relaxed) || S.DumpPath.empty())
    return false;

  // Collect: the Recent window (events the drain already consumed)
  // plus whatever is still sitting in the rings.
  std::vector<RecEvent> Events;
  if (S.StreamingOn.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> RLock(S.RecentM);
    Events.assign(S.Recent.begin(), S.Recent.end());
  }
  for (auto &R : S.Rings)
    R->Ring.snapshot(Events);
  std::stable_sort(Events.begin(), Events.end(),
                   [](const RecEvent &A, const RecEvent &B) {
                     return A.TimeUs < B.TimeUs;
                   });
  // The drain may have moved an event ring->Recent between the two
  // collection passes above; drop exact duplicates.
  Events.erase(std::unique(Events.begin(), Events.end(),
                           [](const RecEvent &A, const RecEvent &B) {
                             return A.TimeUs == B.TimeUs && A.Tid == B.Tid &&
                                    A.Kind == B.Kind && A.A == B.A &&
                                    A.B == B.B && A.C == B.C;
                           }),
               Events.end());

  RecEvent Mark;
  Mark.TimeUs = static_cast<uint64_t>(nowMicros());
  Mark.Kind = static_cast<uint16_t>(RecKind::DumpTrigger);
  Mark.A = internLocked(S, Trigger);
  Events.push_back(Mark);

  std::ofstream OS(S.DumpPath, std::ios::out | std::ios::trunc);
  if (!OS)
    return false;
  writeHeader(OS, "flight", /*Binary=*/false, S.DetailStream, S.DumpCommand);
  for (const RecEvent &E : Events)
    writeEventNdjson(OS, E);
  std::vector<ThreadRing *> Rings;
  Rings.reserve(S.Rings.size());
  for (auto &R : S.Rings)
    Rings.push_back(R.get());
  writeFooterLocked(OS, S, totalDropped(Rings), Trigger);
  OS.close();
  S.DumpTriggerName.assign(Trigger.data(), Trigger.size());
  S.DumpedFlag.store(true, std::memory_order_release);
  return static_cast<bool>(OS);
}

std::string rec::lastDumpTrigger() {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  return S.DumpTriggerName;
}

void rec::finalCounter(std::string_view Key, uint64_t Value) {
  RecState &S = state();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Counters.emplace_back(std::string(Key), Value);
}

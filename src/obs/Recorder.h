//===- Recorder.h - Always-on flight recorder + streaming drain -*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder (docs/RECORDER.md): runtime subsystems emit
/// compact RecEvents into per-thread lock-free rings (EventRing.h), and
/// three consumers read them back out:
///
///  - the always-on flight buffer: each ring retains its last N events;
///    dumpNow() writes them as an `eal-rec-v1` file when something goes
///    wrong (oracle refutation, liveness refutation, spec deopt,
///    SIGABRT, failed pipeline) — first trigger wins;
///  - the streaming drain (`--record=FILE`): a background thread tails
///    every ring losslessly into an NDJSON or binary file a live
///    consumer can follow;
///  - `eal timeline` (Timeline.h): replays a recording into heap
///    occupancy curves, cell lifetime ribbons, and phase/GC bands.
///
/// Two event tiers keep the always-on cost near zero (the obs.overhead
/// bench gates it at <= 2%):
///
///  - lite (`on()`): run/phase boundaries, GC cycles, heap growth,
///    arena frees, deopts, oracle verdicts — O(dozens) per run;
///  - detail (`cells()`): per-cell births/deaths/touches/DCONS re-tags/
///    deopt migrations — O(allocations), enabled only while a detail
///    stream is active.
///
/// Compiling with -DEAL_OBS_RECORDER=OFF turns both predicates into
/// `constexpr false`, so every emit site is dead-code-eliminated (the
/// 0%-compiled-out guarantee); the drain/dump/timeline machinery still
/// builds, it just sees no events.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OBS_RECORDER_H
#define EAL_OBS_RECORDER_H

#include "obs/RecEvent.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// The build defines EAL_OBS_RECORDER to 1/0 (CMake option, default ON).
#ifndef EAL_OBS_RECORDER
#define EAL_OBS_RECORDER 1
#endif

namespace eal::obs::rec {

namespace detail {
extern std::atomic<bool> LiteOn;  ///< master switch (bench kill switch)
extern std::atomic<bool> CellsOn; ///< detail tier; set by startStream
/// Stamps time + ring id and pushes into the calling thread's ring.
void emitSlow(RecKind K, uint64_t A, uint64_t B, uint32_t C);
} // namespace detail

#if EAL_OBS_RECORDER
/// True when lite events are being recorded (the always-on default).
inline bool on() { return detail::LiteOn.load(std::memory_order_relaxed); }
/// True when per-cell detail events are wanted; check this (not just
/// on()) before assembling a cell event on an allocation-rate path.
inline bool cells() {
  return detail::CellsOn.load(std::memory_order_relaxed) &&
         detail::LiteOn.load(std::memory_order_relaxed);
}
#else
constexpr bool on() { return false; }
constexpr bool cells() { return false; }
#endif

/// Records one event (no-op unless on(); a single relaxed load when
/// idle). Payload word meanings are per-kind, see RecEvent.h.
inline void emit(RecKind K, uint64_t A = 0, uint64_t B = 0, uint32_t C = 0) {
  if (on())
    detail::emitSlow(K, A, B, C);
}

/// Interns \p S into the recording's name table; stable for the life of
/// the process. Id 0 is "<none>"; when the 16-bit table fills, further
/// names collapse to id 1 ("<overflow>").
uint16_t internName(std::string_view S);
/// The interned name for \p Id ("<none>" / "<overflow>" for 0/1;
/// "<unknown>" for an id never handed out). Testing/timeline aid.
std::string lookupName(uint16_t Id);
/// Number of distinct names interned so far (including the 2 reserved).
size_t internedNameCount();

/// Master kill switch (default enabled). The obs.overhead bench flips
/// this to measure recorder-on vs recorder-off in one binary; it is not
/// a user-facing toggle.
void setLiteEnabled(bool On);

//===----------------------------------------------------------------------===//
// Streaming drain (--record=FILE)
//===----------------------------------------------------------------------===//

struct StreamOptions {
  std::string Path;
  bool Binary = false; ///< raw RecEvent records instead of NDJSON lines
  bool Detail = true;  ///< also record the per-cell tier
  std::string Command = "run"; ///< header metadata
};

/// Starts the background drain tailing every ring into Opts.Path.
/// Returns false (with *Err set) on I/O failure or if already streaming.
bool startStream(const StreamOptions &Opts, std::string *Err);
/// Final drain + footer (name table, final counters, drop count).
/// Returns false on I/O failure. No-op (true) when not streaming.
bool stopStream(std::string *Err);
bool streaming();

//===----------------------------------------------------------------------===//
// Crash dumps
//===----------------------------------------------------------------------===//

/// Arms dumping: the first dumpNow() after this writes the flight
/// buffers to \p Path as eal-rec-v1 NDJSON. Also installs a SIGABRT
/// handler (best effort: the handler only dumps if no recorder lock is
/// held at signal time). Re-arming resets the first-trigger-wins latch
/// and the finalCounter() set. \p Command is header metadata.
void setDumpPath(std::string Path, std::string Command = "run");
void clearDumpPath();
/// Writes the dump if armed and not already dumped; returns true iff a
/// file was written. \p Trigger names the cause ("spec-deopt",
/// "oracle-refuted", ...) in the footer and a trailing DumpTrigger
/// event.
bool dumpNow(std::string_view Trigger);
/// Trigger of the dump written since the last setDumpPath, or "".
std::string lastDumpTrigger();

/// Attaches a final counter (RuntimeStats totals, export drop counts)
/// to the footer of the stream file and any later dump. Keys repeat
/// last-write-wins.
void finalCounter(std::string_view Key, uint64_t Value);

//===----------------------------------------------------------------------===//
// PhaseScope
//===----------------------------------------------------------------------===//

/// Drop-in replacement for obs::PhaseTimer at pipeline stages: same
/// wall-time + trace-span + metrics behavior, plus PhaseBegin/PhaseEnd
/// recorder events so timelines get phase bands even when tracing is
/// off.
class PhaseScope {
public:
  PhaseScope(obs::PhaseTimer::PhaseTimes *Out, const char *Name,
             const char *Category = "pipeline")
      : Timer(Out, Name, Category) {
    if (on()) {
      NameId = internName(Name);
      emit(RecKind::PhaseBegin, NameId);
    }
  }
  ~PhaseScope() {
    if (NameId)
      emit(RecKind::PhaseEnd, NameId);
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

  obs::Span &span() { return Timer.span(); }

private:
  obs::PhaseTimer Timer;
  uint16_t NameId = 0;
};

} // namespace eal::obs::rec

#endif // EAL_OBS_RECORDER_H

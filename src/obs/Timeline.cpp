//===- Timeline.cpp - eal-rec-v1 reader + heap-timeline replay ------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Layout: a dependency-free mini JSON parser (the recorder's NDJSON
// lines are flat and small; header/footer carry nested arrays/objects),
// the eal-rec-v1 loader (NDJSON and binary framing), the replay state
// machine, and the text/JSON renderers.
//
//===----------------------------------------------------------------------===//

#include "obs/Timeline.h"

#include "support/Trace.h" // jsonQuote

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

using namespace eal;
using namespace eal::obs;
using namespace eal::obs::rec;

const char *rec::tlClassName(uint8_t Class) {
  switch (Class) {
  case TlHeap:
    return "heap";
  case TlStack:
    return "stack";
  case TlRegion:
    return "region";
  }
  return "invalid";
}

//===----------------------------------------------------------------------===//
// Mini JSON parser
//===----------------------------------------------------------------------===//

namespace {

struct JValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj } T = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JValue> A;
  std::vector<std::pair<std::string, JValue>> O;

  const JValue *field(const char *Key) const {
    for (const auto &[K, V] : O)
      if (K == Key)
        return &V;
    return nullptr;
  }
  /// Timestamps/counters fit in a double's 53-bit mantissa with room to
  /// spare (micros since process start, cell counts).
  uint64_t asU64() const { return N <= 0 ? 0 : static_cast<uint64_t>(N); }
};

class JParser {
public:
  /// \p Text must be NUL-terminated (strtod); std::string guarantees it.
  explicit JParser(const std::string &Text)
      : P(Text.c_str()), E(Text.c_str() + Text.size()) {}

  bool parse(JValue &Out) {
    if (!value(Out))
      return false;
    skipWs();
    return P == E;
  }

private:
  const char *P, *E;

  void skipWs() {
    while (P != E && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *S) {
    size_t L = std::strlen(S);
    if (static_cast<size_t>(E - P) < L || std::strncmp(P, S, L) != 0)
      return false;
    P += L;
    return true;
  }
  bool value(JValue &V) {
    skipWs();
    if (P == E)
      return false;
    switch (*P) {
    case '{':
      return object(V);
    case '[':
      return array(V);
    case '"':
      V.T = JValue::Str;
      return string(V.S);
    case 't':
      V.T = JValue::Bool;
      V.B = true;
      return lit("true");
    case 'f':
      V.T = JValue::Bool;
      V.B = false;
      return lit("false");
    case 'n':
      V.T = JValue::Null;
      return lit("null");
    default:
      return number(V);
    }
  }
  bool number(JValue &V) {
    char *End = nullptr;
    V.N = std::strtod(P, &End);
    if (End == P || End > E)
      return false;
    V.T = JValue::Num;
    P = End;
    return true;
  }
  bool string(std::string &S) {
    ++P; // opening quote
    S.clear();
    while (P != E && *P != '"') {
      if (*P != '\\') {
        S.push_back(*P++);
        continue;
      }
      if (++P == E)
        return false;
      switch (*P++) {
      case '"':
        S.push_back('"');
        break;
      case '\\':
        S.push_back('\\');
        break;
      case '/':
        S.push_back('/');
        break;
      case 'n':
        S.push_back('\n');
        break;
      case 'r':
        S.push_back('\r');
        break;
      case 't':
        S.push_back('\t');
        break;
      case 'b':
        S.push_back('\b');
        break;
      case 'f':
        S.push_back('\f');
        break;
      case 'u': {
        if (E - P < 4)
          return false;
        char Buf[5] = {P[0], P[1], P[2], P[3], 0};
        long Code = std::strtol(Buf, nullptr, 16);
        P += 4;
        // The recorder only escapes control bytes; decode the Latin-1
        // range and substitute '?' beyond it (good enough for names).
        S.push_back(Code < 0x100 ? static_cast<char>(Code) : '?');
        break;
      }
      default:
        return false;
      }
    }
    if (P == E)
      return false;
    ++P; // closing quote
    return true;
  }
  bool object(JValue &V) {
    V.T = JValue::Obj;
    ++P;
    skipWs();
    if (P != E && *P == '}') {
      ++P;
      return true;
    }
    for (;;) {
      skipWs();
      if (P == E || *P != '"')
        return false;
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (P == E || *P != ':')
        return false;
      ++P;
      JValue Val;
      if (!value(Val))
        return false;
      V.O.emplace_back(std::move(Key), std::move(Val));
      skipWs();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array(JValue &V) {
    V.T = JValue::Arr;
    ++P;
    skipWs();
    if (P != E && *P == ']') {
      ++P;
      return true;
    }
    for (;;) {
      JValue Val;
      if (!value(Val))
        return false;
      V.A.push_back(std::move(Val));
      skipWs();
      if (P == E)
        return false;
      if (*P == ',') {
        ++P;
        continue;
      }
      if (*P == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Loader
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

} // namespace

bool Timeline::load(const std::string &Path, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, "timeline: cannot open " + Path);

  std::string Line;
  if (!std::getline(In, Line))
    return fail(Err, "timeline: empty recording " + Path);
  JValue Header;
  if (!JParser(Line).parse(Header) || Header.T != JValue::Obj)
    return fail(Err, "timeline: malformed header line");
  const JValue *Schema = Header.field("schema");
  if (!Schema || Schema->S != "eal-rec-v1")
    return fail(Err, "timeline: not an eal-rec-v1 recording");
  if (const JValue *V = Header.field("format"))
    Format = V->S;
  if (const JValue *V = Header.field("mode"))
    Mode = V->S;
  if (const JValue *V = Header.field("command"))
    Command = V->S;
  if (const JValue *V = Header.field("detail"))
    Detail = V->B;

  // Kinds are matched by name: a recording from a build with a
  // different kind set still replays, unknown kinds are skipped.
  std::vector<RecKind> KindMap;
  if (const JValue *Kinds = Header.field("kinds")) {
    for (const JValue &KV : Kinds->A) {
      RecKind Mapped = RecKind::None;
      for (size_t I = 0; I != static_cast<size_t>(RecKind::NumKinds); ++I)
        if (KV.S == kindName(static_cast<RecKind>(I))) {
          Mapped = static_cast<RecKind>(I);
          break;
        }
      KindMap.push_back(Mapped);
    }
  }

  std::vector<RecEvent> Events;
  JValue Footer;
  bool SawFooter = false;
  if (Format == "binary") {
    RecEvent Ev;
    for (;;) {
      if (!In.read(reinterpret_cast<char *>(&Ev), sizeof(RecEvent)))
        return fail(Err, "timeline: truncated binary recording");
      if (Ev.Kind == 0xFFFF) // sentinel: footer line follows
        break;
      Events.push_back(Ev);
    }
    if (!std::getline(In, Line))
      return fail(Err, "timeline: missing footer after sentinel");
    if (!JParser(Line).parse(Footer) || !Footer.field("footer"))
      return fail(Err, "timeline: malformed footer line");
    SawFooter = true;
  } else {
    size_t LineNo = 1;
    while (std::getline(In, Line)) {
      ++LineNo;
      if (Line.empty())
        continue;
      JValue V;
      if (!JParser(Line).parse(V) || V.T != JValue::Obj)
        return fail(Err,
                    "timeline: malformed line " + std::to_string(LineNo));
      if (V.field("footer")) {
        Footer = std::move(V);
        SawFooter = true;
        break;
      }
      RecEvent Ev;
      if (const JValue *F = V.field("t"))
        Ev.TimeUs = F->asU64();
      if (const JValue *F = V.field("tid"))
        Ev.Tid = static_cast<uint16_t>(F->asU64());
      if (const JValue *F = V.field("k"))
        Ev.Kind = static_cast<uint16_t>(F->asU64());
      if (const JValue *F = V.field("a"))
        Ev.A = F->asU64();
      if (const JValue *F = V.field("b"))
        Ev.B = F->asU64();
      if (const JValue *F = V.field("c"))
        Ev.C = static_cast<uint32_t>(F->asU64());
      Events.push_back(Ev);
    }
  }
  if (!SawFooter)
    return fail(Err, "timeline: recording has no footer (truncated?)");

  if (const JValue *V = Footer.field("names"))
    for (const JValue &NV : V->A)
      Names.push_back(NV.S);
  if (const JValue *V = Footer.field("counters"))
    for (const auto &[K, CV] : V->O)
      Counters[K] = CV.asU64();
  if (const JValue *V = Footer.field("dropped"))
    Dropped = V->asU64();
  if (const JValue *V = Footer.field("trigger"))
    Trigger = V->S;

  // Remap file-local kind ids to ours, dropping unknowns.
  for (RecEvent &Ev : Events)
    Ev.Kind = Ev.Kind < KindMap.size()
                  ? static_cast<uint16_t>(KindMap[Ev.Kind])
                  : static_cast<uint16_t>(RecKind::None);

  replay(Events);
  return true;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

void Timeline::replay(const std::vector<RecEvent> &Events) {
  EventCount = Events.size();
  if (!Events.empty()) {
    FirstUs = Events.front().TimeUs;
    LastUs = Events.back().TimeUs;
  }

  std::unordered_map<uint64_t, size_t> RibbonBySeq; // AllocSeq -> index
  // Open phases per ring id (innermost last).
  std::unordered_map<uint16_t, std::vector<size_t>> OpenPhases;
  size_t OpenGc = SIZE_MAX;
  int64_t Live[NumTlClasses] = {0, 0, 0};

  auto Point = [&](uint64_t T) {
    if (!Curve.empty() && Curve.back().TimeUs == T) {
      for (size_t I = 0; I != NumTlClasses; ++I)
        Curve.back().Live[I] = Live[I];
      return;
    }
    OccupancyPoint P;
    P.TimeUs = T;
    for (size_t I = 0; I != NumTlClasses; ++I)
      P.Live[I] = Live[I];
    Curve.push_back(P);
  };
  auto Bump = [&](uint8_t Class, int64_t Delta, uint64_t T) {
    if (Class >= NumTlClasses)
      return;
    Live[Class] += Delta;
    if (Live[Class] > PeakLive[Class])
      PeakLive[Class] = Live[Class];
    Point(T);
  };
  auto SiteBump = [&](uint32_t SiteId, uint64_t T) -> SiteOccupancy & {
    SiteOccupancy &S = Sites[SiteId];
    if (S.Live > S.PeakLive) {
      S.PeakLive = S.Live;
      S.PeakUs = T;
    }
    return S;
  };
  auto AddMarker = [&](const RecEvent &Ev, std::string Label) {
    Marker M;
    M.TimeUs = Ev.TimeUs;
    M.Kind = static_cast<RecKind>(Ev.Kind);
    M.Label = std::move(Label);
    M.A = Ev.A;
    M.B = Ev.B;
    M.C = Ev.C;
    Markers.push_back(std::move(M));
  };

  for (const RecEvent &Ev : Events) {
    switch (static_cast<RecKind>(Ev.Kind)) {
    case RecKind::RunBegin:
      AddMarker(Ev, name(Ev.A) + "/" + name(Ev.B));
      break;
    case RecKind::RunEnd:
      AddMarker(Ev, Ev.A ? "ok" : "failed");
      break;
    case RecKind::PhaseBegin: {
      PhaseBand B;
      B.Name = name(Ev.A);
      B.BeginUs = Ev.TimeUs;
      OpenPhases[Ev.Tid].push_back(Phases.size());
      Phases.push_back(std::move(B));
      break;
    }
    case RecKind::PhaseEnd: {
      auto &Stack = OpenPhases[Ev.Tid];
      // Close the innermost open phase with this name (phases nest).
      for (size_t I = Stack.size(); I-- > 0;)
        if (Phases[Stack[I]].Name == name(Ev.A)) {
          Phases[Stack[I]].EndUs = Ev.TimeUs;
          Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(I));
          break;
        }
      break;
    }
    case RecKind::GcBegin: {
      GcBand B;
      B.BeginUs = Ev.TimeUs;
      B.LiveBefore = Ev.A;
      B.Capacity = Ev.B;
      OpenGc = GcBands.size();
      GcBands.push_back(B);
      break;
    }
    case RecKind::GcEnd:
      ++GcRuns;
      if (OpenGc != SIZE_MAX) {
        GcBand &B = GcBands[OpenGc];
        B.EndUs = Ev.TimeUs;
        B.Marked = Ev.A;
        B.Swept = Ev.B;
        B.LiveAfter = Ev.C;
        OpenGc = SIZE_MAX;
      }
      break;
    case RecKind::HeapGrow:
      ++HeapGrowths;
      break;
    case RecKind::ArenaOpen:
      ++ArenaOpens;
      break;
    case RecKind::ArenaFree:
      ++ArenaFrees;
      ArenaStackCellsFreed += Ev.A;
      ArenaRegionCellsFreed += Ev.B;
      break;
    case RecKind::CellBirth: {
      uint8_t Class = static_cast<uint8_t>(Ev.C);
      if (Class < NumTlClasses)
        ++BirthsByClass[Class];
      Bump(Class, +1, Ev.TimeUs);
      uint32_t Site = static_cast<uint32_t>(Ev.B);
      SiteOccupancy &S = Sites[Site];
      if (Class < NumTlClasses)
        ++S.Births[Class];
      ++S.Live;
      SiteBump(Site, Ev.TimeUs);
      CellRibbon R;
      R.Seq = Ev.A;
      R.BirthUs = Ev.TimeUs;
      R.BirthSite = R.FinalSite = Site;
      R.BirthClass = R.FinalClass = Class;
      RibbonBySeq[Ev.A] = Ribbons.size();
      Ribbons.push_back(R);
      break;
    }
    case RecKind::CellDeath: {
      uint8_t Class = static_cast<uint8_t>(Ev.C & 0xFF);
      uint32_t Reason = Ev.C >> 8;
      if (Reason == DeathBySweep)
        ++SweepDeaths;
      else if (Class < NumTlClasses)
        ++ArenaDeathsByClass[Class];
      Bump(Class, -1, Ev.TimeUs);
      uint32_t Site = static_cast<uint32_t>(Ev.B);
      SiteOccupancy &S = Sites[Site];
      if (Class < NumTlClasses)
        ++S.Deaths[Class];
      --S.Live;
      auto It = RibbonBySeq.find(Ev.A);
      if (It == RibbonBySeq.end()) {
        ++UnmatchedDeaths; // born before the recording started
        break;
      }
      CellRibbon &R = Ribbons[It->second];
      R.DeathUs = Ev.TimeUs;
      R.DeathReason = static_cast<uint8_t>(Reason);
      R.FinalSite = Site;
      break;
    }
    case RecKind::CellDcons: {
      ++DconsTotal;
      uint32_t NewSite = static_cast<uint32_t>(Ev.B);
      ++Sites[NewSite].Dcons;
      auto It = RibbonBySeq.find(Ev.A);
      if (It != RibbonBySeq.end()) {
        CellRibbon &R = Ribbons[It->second];
        R.FinalSite = NewSite;
        ++R.DconsCount;
      }
      break;
    }
    case RecKind::CellTouch: {
      auto It = RibbonBySeq.find(Ev.A);
      if (It != RibbonBySeq.end()) {
        CellRibbon &R = Ribbons[It->second];
        if (!R.FirstTouchUs)
          R.FirstTouchUs = Ev.TimeUs;
        R.LastTouchUs = Ev.TimeUs;
      }
      break;
    }
    case RecKind::CellMigrate: {
      ++Migrations;
      uint8_t OldClass = static_cast<uint8_t>(Ev.C);
      Bump(OldClass, -1, Ev.TimeUs);
      Bump(TlHeap, +1, Ev.TimeUs);
      auto It = RibbonBySeq.find(Ev.A);
      if (It != RibbonBySeq.end()) {
        CellRibbon &R = Ribbons[It->second];
        R.FinalClass = TlHeap;
        R.Migrated = true;
      }
      break;
    }
    case RecKind::SpecDeopt:
      AddMarker(Ev, name(Ev.A));
      break;
    case RecKind::OracleRefuted:
    case RecKind::LiveRefuted:
      AddMarker(Ev, name(Ev.B));
      break;
    case RecKind::DumpTrigger:
      AddMarker(Ev, name(Ev.A));
      break;
    case RecKind::None:
    case RecKind::NumKinds:
      break;
    }
  }

  // Compact the curve to the cap by striding (keeping the last point).
  if (Curve.size() > MaxCurvePoints) {
    std::vector<OccupancyPoint> Kept;
    Kept.reserve(MaxCurvePoints);
    size_t Stride = (Curve.size() + MaxCurvePoints - 1) / MaxCurvePoints;
    for (size_t I = 0; I < Curve.size(); I += Stride)
      Kept.push_back(Curve[I]);
    if (Kept.back().TimeUs != Curve.back().TimeUs)
      Kept.push_back(Curve.back());
    Curve = std::move(Kept);
  }
}

std::string Timeline::name(uint64_t Id) const {
  return Id < Names.size() ? Names[static_cast<size_t>(Id)]
                           : "<unknown:" + std::to_string(Id) + ">";
}

//===----------------------------------------------------------------------===//
// Reconciliation
//===----------------------------------------------------------------------===//

bool Timeline::reconciles(std::string *Why) const {
  if (Counters.empty())
    return true; // nothing to reconcile against (e.g. mid-run dump)
  bool Ok = true;
  auto Check = [&](const char *Key, uint64_t Replayed, bool Applicable) {
    if (!Applicable)
      return;
    auto It = Counters.find(Key);
    if (It == Counters.end() || It->second == Replayed)
      return;
    Ok = false;
    if (Why) {
      *Why += std::string(Why->empty() ? "" : "; ") + Key + ": counter " +
              std::to_string(It->second) + " != replayed " +
              std::to_string(Replayed);
    }
  };
  // A flight dump is a partial window by design: only a complete stream
  // can replay the whole run.
  bool Full = Mode == "stream";
  Check("gc_runs", GcRuns, Full);
  Check("heap_growths", HeapGrowths, Full);
  Check("stack_cells_freed", ArenaStackCellsFreed, Full);
  Check("region_cells_freed", ArenaRegionCellsFreed, Full);
  // The per-cell tier adds the exact birth/death/reuse accounting.
  Check("heap_cells_allocated", BirthsByClass[TlHeap], Full && Detail);
  Check("stack_cells_allocated", BirthsByClass[TlStack], Full && Detail);
  Check("region_cells_allocated", BirthsByClass[TlRegion], Full && Detail);
  Check("dcons_reuses", DconsTotal, Full && Detail);
  Check("cells_swept", SweepDeaths, Full && Detail);
  Check("stack_cells_freed", ArenaDeathsByClass[TlStack], Full && Detail);
  Check("region_cells_freed", ArenaDeathsByClass[TlRegion], Full && Detail);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

namespace {

std::string siteLabel(uint32_t SiteId) {
  // Matches the runtime's speculative-site tagging (RtValue.h): the
  // high bit marks a cell allocated under a speculative plan.
  constexpr uint32_t SpecSiteBit = 0x80000000u;
  if (SiteId & SpecSiteBit)
    return "spec:" + std::to_string(SiteId & ~SpecSiteBit);
  return std::to_string(SiteId);
}

} // namespace

std::string Timeline::renderText() const {
  std::ostringstream OS;
  OS << "recording: mode=" << Mode << " format=" << Format
     << " command=" << Command << " detail=" << (Detail ? "yes" : "no")
     << " events=" << EventCount << " span=" << FirstUs << ".." << LastUs
     << "us dropped=" << Dropped;
  if (!Trigger.empty())
    OS << " trigger=" << Trigger;
  OS << "\n";

  OS << "births: heap=" << BirthsByClass[TlHeap]
     << " stack=" << BirthsByClass[TlStack]
     << " region=" << BirthsByClass[TlRegion]
     << "  deaths: swept=" << SweepDeaths
     << " arena-stack=" << ArenaDeathsByClass[TlStack]
     << " arena-region=" << ArenaDeathsByClass[TlRegion];
  if (UnmatchedDeaths)
    OS << " (" << UnmatchedDeaths << " unmatched)";
  OS << "\n";
  OS << "dcons re-tags: " << DconsTotal << "  migrations: " << Migrations
     << "  gc cycles: " << GcRuns << "  heap growths: " << HeapGrowths
     << "  arenas: " << ArenaOpens << " opened, " << ArenaFrees << " freed ("
     << ArenaStackCellsFreed << " stack + " << ArenaRegionCellsFreed
     << " region cells)\n";
  OS << "peak live: heap=" << PeakLive[TlHeap]
     << " stack=" << PeakLive[TlStack] << " region=" << PeakLive[TlRegion]
     << "\n";

  if (!Phases.empty()) {
    OS << "phases:";
    for (const PhaseBand &B : Phases) {
      OS << " " << B.Name << "=";
      if (B.EndUs)
        OS << (B.EndUs - B.BeginUs) << "us";
      else
        OS << "open";
    }
    OS << "\n";
  }
  for (const GcBand &B : GcBands)
    OS << "gc band: " << B.BeginUs << ".." << B.EndUs << "us live "
       << B.LiveBefore << "/" << B.Capacity << " -> marked " << B.Marked
       << ", swept " << B.Swept << ", live " << B.LiveAfter << "\n";

  // Top sites by total births.
  std::vector<std::pair<uint32_t, const SiteOccupancy *>> Top;
  for (const auto &[Site, S] : Sites)
    Top.emplace_back(Site, &S);
  std::stable_sort(Top.begin(), Top.end(), [](const auto &A, const auto &B) {
    uint64_t BA = A.second->Births[0] + A.second->Births[1] +
                  A.second->Births[2];
    uint64_t BB = B.second->Births[0] + B.second->Births[1] +
                  B.second->Births[2];
    return BA > BB;
  });
  size_t Shown = 0;
  for (const auto &[Site, S] : Top) {
    if (Shown++ == 8)
      break;
    OS << "site " << siteLabel(Site) << ": births h/s/r " << S->Births[TlHeap]
       << "/" << S->Births[TlStack] << "/" << S->Births[TlRegion]
       << " deaths " << (S->Deaths[0] + S->Deaths[1] + S->Deaths[2])
       << " dcons " << S->Dcons << " peak " << S->PeakLive << "@"
       << S->PeakUs << "us live " << S->Live << "\n";
  }

  for (const Marker &M : Markers)
    OS << "marker @" << M.TimeUs << "us "
       << kindName(M.Kind) << " " << M.Label
       << (M.Kind == RecKind::OracleRefuted ||
                   M.Kind == RecKind::LiveRefuted
               ? " site " + siteLabel(static_cast<uint32_t>(M.A))
               : "")
       << "\n";

  if (Detail) {
    size_t Untouched = 0, Alive = 0;
    for (const CellRibbon &R : Ribbons) {
      if (!R.FirstTouchUs)
        ++Untouched;
      if (!R.DeathUs)
        ++Alive;
    }
    OS << "ribbons: " << Ribbons.size() << " cells (" << Untouched
       << " never touched, " << Alive << " alive at end)\n";
  }

  std::string Why;
  bool Ok = reconciles(&Why);
  OS << "counters reconcile: " << (Ok ? "yes" : "NO") << "\n";
  if (!Ok)
    OS << "  " << Why << "\n";
  return OS.str();
}

std::string Timeline::toJson() const {
  std::ostringstream OS;
  std::string Why;
  bool Ok = reconciles(&Why);
  OS << "{\"schema\":\"eal-timeline-v1\",\"mode\":" << jsonQuote(Mode)
     << ",\"format\":" << jsonQuote(Format)
     << ",\"command\":" << jsonQuote(Command)
     << ",\"detail\":" << (Detail ? "true" : "false")
     << ",\"trigger\":" << jsonQuote(Trigger) << ",\"events\":" << EventCount
     << ",\"first_us\":" << FirstUs << ",\"last_us\":" << LastUs
     << ",\"dropped\":" << Dropped
     << ",\"births\":{\"heap\":" << BirthsByClass[TlHeap]
     << ",\"stack\":" << BirthsByClass[TlStack]
     << ",\"region\":" << BirthsByClass[TlRegion] << "}"
     << ",\"deaths\":{\"swept\":" << SweepDeaths
     << ",\"arena_stack\":" << ArenaDeathsByClass[TlStack]
     << ",\"arena_region\":" << ArenaDeathsByClass[TlRegion]
     << ",\"unmatched\":" << UnmatchedDeaths << "}"
     << ",\"dcons\":" << DconsTotal << ",\"migrations\":" << Migrations
     << ",\"gc_runs\":" << GcRuns << ",\"heap_growths\":" << HeapGrowths
     << ",\"arena_opens\":" << ArenaOpens << ",\"arena_frees\":" << ArenaFrees
     << ",\"peak\":{\"heap\":" << PeakLive[TlHeap]
     << ",\"stack\":" << PeakLive[TlStack]
     << ",\"region\":" << PeakLive[TlRegion] << "}"
     << ",\"reconciles\":" << (Ok ? "true" : "false")
     << ",\"mismatches\":" << jsonQuote(Why);

  OS << ",\"sites\":[";
  bool First = true;
  for (const auto &[Site, S] : Sites) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"site\":" << (Site & 0x7FFFFFFFu)
       << ",\"spec\":" << ((Site & 0x80000000u) ? "true" : "false")
       << ",\"births\":[" << S.Births[0] << ',' << S.Births[1] << ','
       << S.Births[2] << "],\"deaths\":[" << S.Deaths[0] << ',' << S.Deaths[1]
       << ',' << S.Deaths[2] << "],\"dcons\":" << S.Dcons
       << ",\"live\":" << S.Live << ",\"peak\":" << S.PeakLive
       << ",\"peak_us\":" << S.PeakUs << "}";
  }
  OS << "]";

  OS << ",\"curve\":[";
  for (size_t I = 0; I != Curve.size(); ++I) {
    if (I)
      OS << ',';
    OS << '[' << Curve[I].TimeUs << ',' << Curve[I].Live[0] << ','
       << Curve[I].Live[1] << ',' << Curve[I].Live[2] << ']';
  }
  OS << "]";

  OS << ",\"phases\":[";
  for (size_t I = 0; I != Phases.size(); ++I) {
    if (I)
      OS << ',';
    OS << "{\"name\":" << jsonQuote(Phases[I].Name)
       << ",\"begin_us\":" << Phases[I].BeginUs
       << ",\"end_us\":" << Phases[I].EndUs << "}";
  }
  OS << "]";

  OS << ",\"gc\":[";
  for (size_t I = 0; I != GcBands.size(); ++I) {
    const GcBand &B = GcBands[I];
    if (I)
      OS << ',';
    OS << "{\"begin_us\":" << B.BeginUs << ",\"end_us\":" << B.EndUs
       << ",\"live_before\":" << B.LiveBefore
       << ",\"capacity\":" << B.Capacity << ",\"marked\":" << B.Marked
       << ",\"swept\":" << B.Swept << ",\"live_after\":" << B.LiveAfter
       << "}";
  }
  OS << "]";

  OS << ",\"markers\":[";
  for (size_t I = 0; I != Markers.size(); ++I) {
    const Marker &M = Markers[I];
    if (I)
      OS << ',';
    OS << "{\"t\":" << M.TimeUs
       << ",\"kind\":" << jsonQuote(kindName(M.Kind))
       << ",\"label\":" << jsonQuote(M.Label) << ",\"a\":" << M.A
       << ",\"b\":" << M.B << ",\"c\":" << M.C << "}";
  }
  OS << "]";

  OS << ",\"ribbons\":[";
  size_t N = std::min(Ribbons.size(), MaxJsonRibbons);
  for (size_t I = 0; I != N; ++I) {
    const CellRibbon &R = Ribbons[I];
    if (I)
      OS << ',';
    OS << "{\"seq\":" << R.Seq << ",\"birth_us\":" << R.BirthUs
       << ",\"first_touch_us\":" << R.FirstTouchUs
       << ",\"last_touch_us\":" << R.LastTouchUs
       << ",\"death_us\":" << R.DeathUs
       << ",\"site\":" << (R.BirthSite & 0x7FFFFFFFu)
       << ",\"final_site\":" << (R.FinalSite & 0x7FFFFFFFu)
       << ",\"class\":" << jsonQuote(tlClassName(R.BirthClass))
       << ",\"final_class\":" << jsonQuote(tlClassName(R.FinalClass))
       << ",\"dcons\":" << R.DconsCount
       << ",\"migrated\":" << (R.Migrated ? "true" : "false");
    if (R.DeathUs)
      OS << ",\"death_reason\":"
         << jsonQuote(R.DeathReason == DeathBySweep ? "sweep" : "arena");
    OS << "}";
  }
  OS << "],\"ribbons_total\":" << Ribbons.size();

  OS << ",\"counters\":{";
  First = true;
  for (const auto &[K, V] : Counters) {
    if (!First)
      OS << ',';
    First = false;
    OS << jsonQuote(K) << ':' << V;
  }
  OS << "}}\n";
  return OS.str();
}

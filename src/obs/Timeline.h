//===- Timeline.h - Replay a recording into heap timelines ------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `eal timeline`: loads an eal-rec-v1 recording (NDJSON or binary,
/// stream or flight dump — see docs/RECORDER.md) and replays it into:
///
///  - heap-occupancy curves: live cell counts by storage class over
///    time, plus per-allocation-site birth/death/peak totals;
///  - cell lifetime ribbons: birth AllocSeq -> first/last touch ->
///    death, following DCONS re-tags and deopt migrations;
///  - phase bands (pipeline stages) and GC bands (mark/sweep cycles);
///  - a reconciliation verdict: with a detail stream of a complete
///    run, the replayed totals must equal the RuntimeStats counters
///    the run itself reported in the recording footer — the
///    differential tests hold this across every example and seed.
///
/// Exported as text (renderText) and JSON (toJson, `eal-timeline-v1`);
/// tools/rec2trace.py converts recordings to Chrome trace format
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OBS_TIMELINE_H
#define EAL_OBS_TIMELINE_H

#include "obs/RecEvent.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eal::obs::rec {

/// Storage classes as recorded in event payloads (CellClass values).
enum TlClass : uint8_t { TlHeap = 0, TlStack = 1, TlRegion = 2 };
inline constexpr size_t NumTlClasses = 3;
const char *tlClassName(uint8_t Class);

/// One cell's lifetime ribbon.
struct CellRibbon {
  uint64_t Seq = 0; ///< AllocSeq: cell identity for the whole run
  uint64_t BirthUs = 0;
  uint64_t FirstTouchUs = 0; ///< 0 = never touched
  uint64_t LastTouchUs = 0;
  uint64_t DeathUs = 0; ///< 0 = alive at end of recording
  uint32_t BirthSite = 0;
  uint32_t FinalSite = 0; ///< differs from BirthSite after DCONS re-tags
  uint32_t DconsCount = 0;
  uint8_t BirthClass = TlHeap;
  uint8_t FinalClass = TlHeap; ///< TlHeap after a deopt migration
  uint8_t DeathReason = 0xFF;  ///< DeathBySweep/DeathByArenaFree; 0xFF alive
  bool Migrated = false;
};

/// A pipeline phase interval (from PhaseBegin/PhaseEnd pairs).
struct PhaseBand {
  std::string Name;
  uint64_t BeginUs = 0;
  uint64_t EndUs = 0; ///< 0 = still open when the recording ended
};

/// One GC cycle (GcBegin/GcEnd pair).
struct GcBand {
  uint64_t BeginUs = 0;
  uint64_t EndUs = 0;
  uint64_t LiveBefore = 0;
  uint64_t Capacity = 0;
  uint64_t Marked = 0;
  uint64_t Swept = 0;
  uint64_t LiveAfter = 0;
};

/// Per-allocation-site occupancy totals.
struct SiteOccupancy {
  uint64_t Births[NumTlClasses] = {0, 0, 0};
  uint64_t Deaths[NumTlClasses] = {0, 0, 0};
  uint64_t Dcons = 0;
  int64_t Live = 0; ///< at end of recording
  int64_t PeakLive = 0;
  uint64_t PeakUs = 0;
};

/// One point on the occupancy curve (recorded whenever a class count
/// changes; downsampled past MaxCurvePoints).
struct OccupancyPoint {
  uint64_t TimeUs = 0;
  int64_t Live[NumTlClasses] = {0, 0, 0};
};

/// A notable point event (deopt, refutation, dump trigger, run
/// boundary) with its interned names resolved.
struct Marker {
  uint64_t TimeUs = 0;
  RecKind Kind = RecKind::None;
  std::string Label; ///< resolved cause/trigger/command name
  uint64_t A = 0, B = 0;
  uint32_t C = 0;
};

class Timeline {
public:
  /// Loads and replays \p Path. Returns false with *Err set on I/O,
  /// format, or schema errors.
  bool load(const std::string &Path, std::string *Err);

  // Recording metadata (header/footer).
  std::string Mode;    ///< "stream" or "flight"
  std::string Format;  ///< "ndjson" or "binary"
  std::string Command; ///< pipeline command that produced it
  bool Detail = false; ///< per-cell tier was recorded
  std::string Trigger; ///< dump trigger ("" for a clean stream)
  uint64_t Dropped = 0;
  std::vector<std::string> Names; ///< interned-name table
  std::map<std::string, uint64_t> Counters; ///< final RuntimeStats

  // Replay results.
  size_t EventCount = 0;
  uint64_t FirstUs = 0, LastUs = 0;
  uint64_t BirthsByClass[NumTlClasses] = {0, 0, 0};
  uint64_t SweepDeaths = 0;
  uint64_t ArenaDeathsByClass[NumTlClasses] = {0, 0, 0};
  uint64_t DconsTotal = 0;
  uint64_t Migrations = 0;
  uint64_t GcRuns = 0;
  uint64_t HeapGrowths = 0;
  uint64_t ArenaOpens = 0;
  uint64_t ArenaFrees = 0;
  uint64_t ArenaStackCellsFreed = 0;  ///< summed from ArenaFree events
  uint64_t ArenaRegionCellsFreed = 0;
  /// Deaths/touches whose birth predates the recording (flight dumps).
  uint64_t UnmatchedDeaths = 0;
  int64_t PeakLive[NumTlClasses] = {0, 0, 0};
  std::map<uint32_t, SiteOccupancy> Sites;
  std::vector<OccupancyPoint> Curve;
  std::vector<CellRibbon> Ribbons; ///< by birth order (AllocSeq asc)
  std::vector<PhaseBand> Phases;
  std::vector<GcBand> GcBands;
  std::vector<Marker> Markers;

  /// Caps Curve (stride-compacted) and the number of ribbons kept in
  /// toJson(); replay totals are never capped.
  size_t MaxCurvePoints = 16384;
  size_t MaxJsonRibbons = 4096;

  /// With detail + footer counters present: do the replayed totals
  /// equal the run's own RuntimeStats? Appends any mismatch to *Why.
  /// True (vacuously) when the recording carries no counters or no
  /// detail tier — flight dumps are partial by design.
  bool reconciles(std::string *Why = nullptr) const;

  /// Human-readable report (the `eal timeline` stdout).
  std::string renderText() const;
  /// eal-timeline-v1 JSON document.
  std::string toJson() const;

  /// Resolves an interned id against the footer name table.
  std::string name(uint64_t Id) const;

private:
  void replay(const std::vector<RecEvent> &Events);
};

} // namespace eal::obs::rec

#endif // EAL_OBS_TIMELINE_H

//===- AllocPlanner.cpp ---------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/AllocPlanner.h"

#include "lang/AstUtils.h"

#include <iterator>
#include <sstream>

using namespace eal;

namespace {

/// Matches `cons e1 e2`; fills operands.
bool isConsApp(const Expr *E, const Expr *&Head, const Expr *&Tail) {
  const auto *Outer = dyn_cast<AppExpr>(E);
  if (!Outer)
    return false;
  const auto *Inner = dyn_cast<AppExpr>(Outer->fn());
  if (!Inner)
    return false;
  const auto *Prim = dyn_cast<PrimExpr>(Inner->fn());
  if (!Prim || Prim->op() != PrimOp::Cons)
    return false;
  Head = Inner->arg();
  Tail = Outer->arg();
  return true;
}

} // namespace

void AllocPlanner::attribute(const Expr *E, unsigned Level, unsigned MaxLevel,
                             ArenaSiteClass Class, ArgArenaDirective &Out) {
  if (Level > MaxLevel)
    return;
  switch (E->kind()) {
  case ExprKind::NilLit:
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::Var:
  case ExprKind::Prim:
  case ExprKind::Lambda:
    return;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    attribute(If->thenExpr(), Level, MaxLevel, Class, Out);
    attribute(If->elseExpr(), Level, MaxLevel, Class, Out);
    return;
  }
  case ExprKind::Let:
    attribute(cast<LetExpr>(E)->body(), Level, MaxLevel, Class, Out);
    return;
  case ExprKind::Letrec:
    attribute(cast<LetrecExpr>(E)->body(), Level, MaxLevel, Class, Out);
    return;
  case ExprKind::App: {
    const Expr *Head = nullptr, *Tail = nullptr;
    if (isConsApp(E, Head, Tail)) {
      Out.Sites.emplace(E->id(), Class);
      attribute(Head, Level + 1, MaxLevel, Class, Out);
      attribute(Tail, Level, MaxLevel, Class, Out);
      return;
    }
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(E, Args);
    if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
      // cdr shares its operand's spines at the same levels; the dropped
      // head cell becomes garbage immediately, so arena-placing it is
      // safe. car extracts an element: unattributable, stop.
      if (Prim->op() == PrimOp::Cdr && Args.size() == 1)
        attribute(Args[0], Level, MaxLevel, Class, Out);
      return;
    }
    if (Options.EnableRegion) {
      if (const auto *Var = dyn_cast<VarExpr>(Callee)) {
        auto ArityIt = FnArities.find(Var->name().id());
        if (ArityIt != FnArities.end() && ArityIt->second == Args.size())
          attributeCallee(Var->name(), Level, MaxLevel, Out);
      }
    }
    return;
  }
  }
}

void AllocPlanner::attributeCallee(Symbol Fn, unsigned Level,
                                   unsigned MaxLevel,
                                   ArgArenaDirective &Out) {
  if (Level > MaxLevel)
    return;
  uint64_t Key = (static_cast<uint64_t>(Fn.id()) << 8) | Level;
  if (!VisitedCallees.insert(Key).second)
    return;
  auto It = FnBodies.find(Fn.id());
  if (It == FnBodies.end())
    return;
  // The producer's result feeds this spine level: its spine-building
  // sites are the ones reachable in result position.
  attribute(It->second, Level, MaxLevel, ArenaSiteClass::Region, Out);
}

AllocationPlan AllocPlanner::run() {
  AllocationPlan Plan;
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec)
    return Plan;

  for (const LetrecBinding &B : Letrec->bindings()) {
    unsigned Arity = lambdaArity(B.Value);
    if (Arity == 0)
      continue;
    FnArities[B.Name.id()] = Arity;
    const Expr *Body = B.Value;
    for (unsigned I = 0; I != Arity; ++I)
      Body = cast<LambdaExpr>(Body)->body();
    FnBodies[B.Name.id()] = Body;
  }

  // Only calls whose free variables are all top-level bindings can use
  // the local escape test (its arguments are evaluated in the top-level
  // environment); other calls fall back to the global test, which is
  // sound for any context.
  auto IsTopLevelClosed = [&](const Expr *Call) {
    for (Symbol Free : freeVariables(Call))
      if (!Letrec->findBinding(Free))
        return false;
    return true;
  };

  // Visit every saturated call of a top-level function, in every binding
  // body and the program body.
  auto VisitCalls = [&](const Expr *Root) {
    forEachExpr(Root, [&](const Expr *Node) {
      std::vector<const Expr *> Args;
      const Expr *Callee = uncurryCall(Node, Args);
      const auto *Var = dyn_cast<VarExpr>(Callee);
      if (!Var || Args.empty())
        return;
      auto ArityIt = FnArities.find(Var->name().id());
      if (ArityIt == FnArities.end() || ArityIt->second != Args.size())
        return;
      bool UseLocal = IsTopLevelClosed(Node);
      for (unsigned I = 0; I != Args.size(); ++I) {
        if (spineCount(Program.typeOf(Args[I])) == 0)
          continue;
        // Top-level-closed calls get the plain local test; interior
        // calls get the worst-case-context variant, falling back to the
        // global test when that gives up.
        auto Local = UseLocal ? Analyzer.localEscape(Node, I)
                              : Analyzer.localEscapeInContext(Node, I);
        if (!Local)
          Local = Analyzer.globalEscape(Var->name(), I);
        if (!Local || Local->protectedTopSpines() == 0)
          continue;
        ArgArenaDirective D;
        D.CallAppId = Node->id();
        D.ArgIndex = I;
        D.Callee = Var->name();
        D.ProtectedSpines = Local->protectedTopSpines();
        attribute(Args[I], 1, D.ProtectedSpines, ArenaSiteClass::Stack, D);
        VisitedCallees.clear();
        if (D.Sites.empty())
          continue;
        if (!Options.EnableStack) {
          // Drop argument-local (stack) sites when disabled.
          for (auto It = D.Sites.begin(); It != D.Sites.end();)
            It = It->second == ArenaSiteClass::Stack ? D.Sites.erase(It)
                                                     : std::next(It);
          if (D.Sites.empty())
            continue;
        }
        if (Options.Prov) {
          unsigned NumStack = 0, NumRegion = 0;
          for (const auto &[Id, Class] : D.Sites)
            (Class == ArenaSiteClass::Stack ? NumStack : NumRegion) += 1;
          uint32_t DF = Options.Prov->fresh(
              explain::FactKind::Decision,
              "arena directive: argument " + std::to_string(I + 1) +
                  " of '" + std::string(Ast.spelling(Var->name())) + "'",
              "stack/region allocation (A.3.1/A.3.3)", Node->loc());
          Options.Prov->depend(DF, Local->Prov);
          Options.Prov->result(
              DF, "top " + std::to_string(D.ProtectedSpines) +
                      " spine(s) protected; " + std::to_string(NumStack) +
                      " stack site(s), " + std::to_string(NumRegion) +
                      " region site(s)");
          D.ProvenanceRef = DF;
        }
        Plan.Directives.push_back(std::move(D));
      }
    });
  };
  for (const LetrecBinding &B : Letrec->bindings())
    VisitCalls(B.Value);
  VisitCalls(Letrec->body());

  Plan.index();
  return Plan;
}

std::string eal::renderAllocationPlan(const AstContext &Ast,
                                      const AllocationPlan &Plan) {
  std::ostringstream OS;
  for (const ArgArenaDirective &D : Plan.Directives) {
    unsigned NumStack = 0, NumRegion = 0;
    for (const auto &[Id, Class] : D.Sites)
      (Class == ArenaSiteClass::Stack ? NumStack : NumRegion) += 1;
    OS << "call of " << Ast.spelling(D.Callee) << " (node " << D.CallAppId
       << "), argument " << (D.ArgIndex + 1) << ": top " << D.ProtectedSpines
       << " spine(s) protected; " << NumStack << " stack site(s), "
       << NumRegion << " region site(s)\n";
  }
  return OS.str();
}

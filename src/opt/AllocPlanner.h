//===- AllocPlanner.h - Stack/region allocation planning --------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plans the two allocation optimizations of §1/A.3.1/A.3.3:
///
///  * Stack allocation: at a call (f ... e_i ...) where the local escape
///    test shows the top p spines of e_i never escape f, cons cells that
///    build those spines may live in f's activation record and die when
///    it is popped. Sites lexically inside the argument expression
///    (literals, cons chains) are classified Stack.
///
///  * Block (region) allocation: when the argument is produced by a
///    function call (the paper's `PS (create_list i)`), the producer's
///    spine-building cons sites are classified Region: they allocate into
///    a block owned by f's activation, and the whole block returns to the
///    free list — without traversing the list — when f returns
///    (Ruggieri–Murtagh's "local heap").
///
/// Both classes share one mechanism: a per-(call, argument) directive
/// instructs the interpreter to evaluate that argument with an arena
/// active; only the cons sites listed in the directive allocate from it.
/// Spine attribution descends through cons tails (same spine level), cons
/// heads (one level deeper), if/let, cdr, and saturated calls to
/// top-level functions (into their spine-tail positions), and stops at
/// variables and car (unattributable).
///
/// A parameter that a reuse (DCONS) version consumes is never planned
/// here: the DCONS abstract semantics makes it escape, so its protected
/// spine count is 0 — the two optimizations are automatically exclusive,
/// as the paper requires.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OPT_ALLOCPLANNER_H
#define EAL_OPT_ALLOCPLANNER_H

#include "escape/EscapeAnalyzer.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eal {

/// Why a site was placed in an arena (reporting and statistics).
enum class ArenaSiteClass : uint8_t {
  /// Lexically inside the argument expression (stack allocation).
  Stack,
  /// Inside a producer function's body (block/region allocation).
  Region,
};

/// One planned arena: evaluate argument \p ArgIndex of call \p CallAppId
/// with an arena owned by the callee's activation; the listed cons sites
/// allocate from it.
struct ArgArenaDirective {
  /// Node id of the outermost AppExpr of the call spine.
  uint32_t CallAppId = 0;
  unsigned ArgIndex = 0;
  Symbol Callee;
  /// How many top spines of the argument are protected (never escape the
  /// callee) per the local escape test.
  unsigned ProtectedSpines = 0;
  /// Cons sites (PrimExpr-rooted App node ids) allowed to allocate from
  /// the arena, with their classification.
  std::unordered_map<uint32_t, ArenaSiteClass> Sites;

  /// Why-provenance: the Decision fact recorded for this directive,
  /// citing the escape verdict that justified it (explain::NoFact when
  /// no recorder was attached).
  uint32_t ProvenanceRef = explain::NoFact;

  /// -1 for conservative directives (the planner's own output). A
  /// non-negative value marks a *speculative* directive added by the
  /// spec tier (src/spec, docs/SPECULATION.md): the value indexes the
  /// speculation whose guard protects it, the engines consult
  /// SpecHooks::directiveArmed before honoring it, and cells it places
  /// carry SpecSiteBit so a deopt can find and migrate them.
  int32_t SpecIndex = -1;

  bool hasStackSites() const {
    for (const auto &[Id, Class] : Sites)
      if (Class == ArenaSiteClass::Stack)
        return true;
    return false;
  }
  bool hasRegionSites() const {
    for (const auto &[Id, Class] : Sites)
      if (Class == ArenaSiteClass::Region)
        return true;
    return false;
  }
};

/// The whole program's allocation plan.
struct AllocationPlan {
  std::vector<ArgArenaDirective> Directives;

  /// Directives indexed by call node id (a call can have several, one per
  /// argument).
  std::unordered_map<uint32_t, std::vector<const ArgArenaDirective *>>
      ByCall;

  void index() {
    ByCall.clear();
    for (const ArgArenaDirective &D : Directives)
      ByCall[D.CallAppId].push_back(&D);
  }
};

/// Options controlling what the planner emits.
struct AllocPlannerOptions {
  bool EnableStack = true;
  bool EnableRegion = true;
  /// Why-provenance recorder; when non-null every directive records a
  /// Decision fact depending on its escape verdict (observation only:
  /// the plan itself is byte-identical either way).
  explain::ProvenanceRecorder *Prov = nullptr;
};

/// Computes an AllocationPlan for a typed program, using per-call local
/// escape tests from \p Analyzer (which must wrap the same program).
class AllocPlanner {
public:
  AllocPlanner(const AstContext &Ast, const TypedProgram &Program,
               EscapeAnalyzer &Analyzer,
               AllocPlannerOptions Options = AllocPlannerOptions())
      : Ast(Ast), Program(Program), Analyzer(Analyzer), Options(Options) {}

  AllocationPlan run();

private:
  /// Attributes cons sites that build the top \p MaxLevel spines of \p E,
  /// starting at \p Level. \p Class labels argument-local vs callee sites.
  void attribute(const Expr *E, unsigned Level, unsigned MaxLevel,
                 ArenaSiteClass Class, ArgArenaDirective &Out);

  /// Attributes spine-building sites inside the body of the top-level
  /// function \p Fn whose result feeds spine level \p Level.
  void attributeCallee(Symbol Fn, unsigned Level, unsigned MaxLevel,
                       ArgArenaDirective &Out);

  const AstContext &Ast;
  const TypedProgram &Program;
  EscapeAnalyzer &Analyzer;
  AllocPlannerOptions Options;

  /// Innermost bodies of top-level bindings, by symbol id.
  std::unordered_map<uint32_t, const Expr *> FnBodies;
  std::unordered_map<uint32_t, unsigned> FnArities;
  /// (fn symbol id, level) pairs already attributed, to cut recursion.
  std::unordered_set<uint64_t> VisitedCallees;
};

/// Renders the plan (one line per directive) for reports and examples.
std::string renderAllocationPlan(const AstContext &Ast,
                                 const AllocationPlan &Plan);

} // namespace eal

#endif // EAL_OPT_ALLOCPLANNER_H

//===- Optimizer.cpp ------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "lang/AstUtils.h"
#include "support/Diagnostics.h"
#include "support/Metrics.h"

using namespace eal;

namespace {

/// Records Decision facts for the §6 reuse transformation: one per
/// generated version f' (citing the escape verdict that protected the
/// reused parameter) and one per retargeted call site (citing its
/// version's fact). Runs as a post-pass so the transform itself stays
/// provenance-free.
void recordReuseProvenance(const AstContext &Ast, const TypedProgram &Program,
                           const ProgramEscapeReport &BaseEscape,
                           ReuseTransformResult &Reuse,
                           explain::ProvenanceRecorder &Prov) {
  if (!Reuse.changedAnything())
    return;
  // The transform records node ids in the *original* AST; map them back
  // to source positions for the facts.
  std::unordered_map<uint32_t, SourceLoc> Locs;
  forEachExpr(Program.root(),
              [&](const Expr *E) { Locs.emplace(E->id(), E->loc()); });
  auto LocOf = [&](uint32_t Id) {
    auto It = Locs.find(Id);
    return It == Locs.end() ? SourceLoc::invalid() : It->second;
  };

  std::unordered_map<uint32_t, uint32_t> VersionFacts; // primed sym -> fact
  for (ReuseVersion &V : Reuse.Versions) {
    SourceLoc Loc = V.DconsSites.empty() ? SourceLoc::invalid()
                                         : LocOf(V.DconsSites.front());
    uint32_t VF = Prov.fresh(
        explain::FactKind::Decision,
        "reuse version " + std::string(Ast.spelling(V.Primed)) + " of " +
            std::string(Ast.spelling(V.Original)) + " (parameter " +
            std::to_string(V.ParamIndex + 1) + ")",
        "in-place reuse via DCONS (§6/A.3.2)", Loc);
    if (const FunctionEscape *FE = BaseEscape.find(V.Original))
      if (V.ParamIndex < FE->Params.size())
        Prov.depend(VF, FE->Params[V.ParamIndex].Prov);
    Prov.result(VF, std::to_string(V.DconsSites.size()) +
                        " cons site(s) rewritten to DCONS");
    V.ProvenanceRef = VF;
    VersionFacts.emplace(V.Primed.id(), VF);
  }

  for (CallRetarget &R : Reuse.Retargets) {
    uint32_t RF = Prov.fresh(
        explain::FactKind::Decision,
        "retarget call " + std::string(Ast.spelling(R.From)) + " -> " +
            std::string(Ast.spelling(R.To)),
        "Theorem 2 reuse budget >= 1 (§6)", LocOf(R.CalleeVarId));
    auto It = VersionFacts.find(R.To.id());
    if (It != VersionFacts.end())
      Prov.depend(RF, It->second);
    Prov.result(RF, R.InPrimedBody ? "recursive site inside primed body"
                                   : "call site in base program");
    R.ProvenanceRef = RF;
  }
}

/// Publishes the optimizer's decision counts: how many reuse versions /
/// DCONS sites the transformation produced and how many arena directives
/// (with their stack/region site split) the planner emitted.
void recordDecisions(const OptimizedProgram &Out) {
  uint64_t DconsSites = 0;
  for (const ReuseVersion &V : Out.Reuse.Versions)
    DconsSites += V.DconsSites.size();
  uint64_t StackSites = 0, RegionSites = 0;
  for (const ArgArenaDirective &D : Out.Plan.Directives)
    for (const auto &[Id, Class] : D.Sites)
      (Class == ArenaSiteClass::Stack ? StackSites : RegionSites) += 1;

  if (obs::metricsEnabled()) {
    obs::MetricsRegistry &Reg = obs::globalMetrics();
    Reg.counter("opt.reuse.versions").add(Out.Reuse.Versions.size());
    Reg.counter("opt.reuse.dcons_sites").add(DconsSites);
    Reg.counter("opt.reuse.retargets").add(Out.Reuse.Retargets.size());
    Reg.counter("opt.plan.directives").add(Out.Plan.Directives.size());
    Reg.counter("opt.plan.stack_sites").add(StackSites);
    Reg.counter("opt.plan.region_sites").add(RegionSites);
    Reg.counter("escape.fixpoint_rounds").add(Out.BaseEscape.FixpointRounds);
    Reg.counter("escape.apply_cache_entries")
        .max(Out.BaseEscape.ApplyCacheEntries);
    Reg.counter("escape.distinct_values").max(Out.BaseEscape.DistinctValues);
  }
  if (obs::tracingEnabled())
    obs::instant("opt.decisions", "opt",
                 {{"reuse_versions",
                   std::to_string(Out.Reuse.Versions.size())},
                  {"dcons_sites", std::to_string(DconsSites)},
                  {"retargets", std::to_string(Out.Reuse.Retargets.size())},
                  {"plan_directives",
                   std::to_string(Out.Plan.Directives.size())},
                  {"stack_sites", std::to_string(StackSites)},
                  {"region_sites", std::to_string(RegionSites)}});
}

} // namespace

std::optional<OptimizedProgram>
eal::optimizeProgram(AstContext &Ast, TypeContext &Types,
                     const TypedProgram &Program, DiagnosticEngine &Diags,
                     const OptimizerConfig &Config,
                     obs::PhaseTimer::PhaseTimes *PhaseMicrosOut) {
  OptimizedProgram Out;

  // Phase 1: analyze the original program.
  {
    obs::PhaseTimer T(PhaseMicrosOut, "escape");
    EscapeAnalyzer BaseAnalyzer(Ast, Program, Diags, 512, Config.Analysis);
    if (Config.Explain)
      BaseAnalyzer.attachProvenance(Config.Explain);
    Out.BaseEscape = BaseAnalyzer.analyzeProgram();
    T.span().arg("functions",
                 static_cast<uint64_t>(Out.BaseEscape.Functions.size()));
    T.span().arg("fixpoint_rounds",
                 static_cast<uint64_t>(Out.BaseEscape.FixpointRounds));
  }

  // Phase 2: in-place reuse (sharing analysis feeds the transformation).
  const Expr *FinalRoot = Program.root();
  if (Config.EnableReuse) {
    obs::PhaseTimer T(PhaseMicrosOut, "sharing");
    SharingAnalysis Sharing(Ast, Program, Out.BaseEscape);
    if (Config.Explain)
      Sharing.attachProvenance(Config.Explain);
    ReuseTransform Transform(Ast, Program, Out.BaseEscape, Sharing);
    if (auto Result = Transform.run()) {
      Out.Reuse = std::move(*Result);
      FinalRoot = Out.Reuse.NewRoot;
    }
    if (Config.Explain)
      recordReuseProvenance(Ast, Program, Out.BaseEscape, Out.Reuse,
                            *Config.Explain);
    T.span().arg("reuse_versions",
                 static_cast<uint64_t>(Out.Reuse.Versions.size()));
  } else if (obs::tracingEnabled()) {
    // With reuse off nothing consumes sharing facts, but a traced run
    // still reports the phase: derive the clause-2 facts the transform
    // would have used (same convention as the pipeline's lex span).
    obs::PhaseTimer T(PhaseMicrosOut, "sharing");
    SharingAnalysis Sharing(Ast, Program, Out.BaseEscape);
    uint64_t Facts = 0;
    for (const FunctionEscape &F : Out.BaseEscape.Functions)
      if (Sharing.resultSharing(F.Name))
        ++Facts;
    T.span().arg("facts", Facts);
    T.span().arg("reuse", std::string_view("off"));
  }

  // Phase 3: re-type and re-analyze the final program. (When reuse did
  // nothing the AST is unchanged, but re-inference is cheap and keeps the
  // invariant that Out.Typed covers Out.Root.)
  Out.Root = FinalRoot;
  {
    obs::PhaseTimer T(PhaseMicrosOut, "retype");
    TypeInference TI(Ast, Types, Diags, Config.Mode);
    std::optional<TypedProgram> Retyped = TI.run(FinalRoot);
    if (!Retyped) {
      Diags.error(SourceLoc::invalid(),
                  "internal error: transformed program failed to typecheck");
      return std::nullopt;
    }
    Out.Typed = std::move(*Retyped);
  }

  EscapeAnalyzer FinalAnalyzer(Ast, Out.Typed, Diags, 512, Config.Analysis);
  if (Config.Explain)
    FinalAnalyzer.attachProvenance(Config.Explain);
  Out.FinalEscape = FinalAnalyzer.analyzeProgram();

  // Phase 4: allocation planning on the final program.
  if (Config.EnableStack || Config.EnableRegion) {
    obs::PhaseTimer T(PhaseMicrosOut, "plan");
    AllocPlannerOptions PO;
    PO.EnableStack = Config.EnableStack;
    PO.EnableRegion = Config.EnableRegion;
    PO.Prov = Config.Explain;
    AllocPlanner Planner(Ast, Out.Typed, FinalAnalyzer, PO);
    Out.Plan = Planner.run();
    T.span().arg("directives",
                 static_cast<uint64_t>(Out.Plan.Directives.size()));
  }

  if (obs::enabled())
    recordDecisions(Out);
  return Out;
}

//===- Optimizer.cpp ------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/Optimizer.h"

#include "support/Diagnostics.h"

using namespace eal;

std::optional<OptimizedProgram>
eal::optimizeProgram(AstContext &Ast, TypeContext &Types,
                     const TypedProgram &Program, DiagnosticEngine &Diags,
                     const OptimizerConfig &Config) {
  OptimizedProgram Out;

  // Phase 1: analyze the original program.
  EscapeAnalyzer BaseAnalyzer(Ast, Program, Diags, 512, Config.Analysis);
  Out.BaseEscape = BaseAnalyzer.analyzeProgram();

  // Phase 2: in-place reuse.
  const Expr *FinalRoot = Program.root();
  if (Config.EnableReuse) {
    SharingAnalysis Sharing(Ast, Program, Out.BaseEscape);
    ReuseTransform Transform(Ast, Program, Out.BaseEscape, Sharing);
    if (auto Result = Transform.run()) {
      Out.Reuse = std::move(*Result);
      FinalRoot = Out.Reuse.NewRoot;
    }
  }

  // Phase 3: re-type and re-analyze the final program. (When reuse did
  // nothing the AST is unchanged, but re-inference is cheap and keeps the
  // invariant that Out.Typed covers Out.Root.)
  Out.Root = FinalRoot;
  TypeInference TI(Ast, Types, Diags, Config.Mode);
  std::optional<TypedProgram> Retyped = TI.run(FinalRoot);
  if (!Retyped) {
    Diags.error(SourceLoc::invalid(),
                "internal error: transformed program failed to typecheck");
    return std::nullopt;
  }
  Out.Typed = std::move(*Retyped);

  EscapeAnalyzer FinalAnalyzer(Ast, Out.Typed, Diags, 512, Config.Analysis);
  Out.FinalEscape = FinalAnalyzer.analyzeProgram();

  // Phase 4: allocation planning on the final program.
  if (Config.EnableStack || Config.EnableRegion) {
    AllocPlannerOptions PO;
    PO.EnableStack = Config.EnableStack;
    PO.EnableRegion = Config.EnableRegion;
    AllocPlanner Planner(Ast, Out.Typed, FinalAnalyzer, PO);
    Out.Plan = Planner.run();
  }
  return Out;
}

//===- Optimizer.h - Analysis-driven optimization pipeline ------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the complete optimization pipeline of §6/Appendix A.3 over a
/// typed program:
///
///   1. global escape analysis (§4.1) and sharing analysis (Theorem 2);
///   2. the in-place reuse transformation (DCONS, A.3.2), if enabled;
///   3. re-inference and re-analysis of the transformed program;
///   4. stack/region allocation planning (A.3.1/A.3.3), if enabled.
///
/// The output carries everything the runtime needs: the final AST, its
/// typed program, and the allocation plan, plus the analysis reports for
/// display.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OPT_OPTIMIZER_H
#define EAL_OPT_OPTIMIZER_H

#include "opt/AllocPlanner.h"
#include "opt/ReuseTransform.h"
#include "support/Trace.h"

#include <memory>
#include <optional>

namespace eal {

class DiagnosticEngine;

/// Which optimizations to apply.
struct OptimizerConfig {
  bool EnableReuse = true;
  bool EnableStack = true;
  bool EnableRegion = true;
  /// Inference mode for re-typing the transformed program.
  TypeInferenceMode Mode = TypeInferenceMode::Polymorphic;
  /// Analysis granularity: the paper's spine-aware analysis or the
  /// ESOP'90 whole-object baseline (ablation).
  EscapeAnalysisMode Analysis = EscapeAnalysisMode::SpineAware;
  /// Why-provenance recorder (docs/EXPLAIN.md), not owned. When non-null
  /// the escape analyzers, the sharing analysis, and the planner record
  /// their derivations, and reuse versions / plan directives carry
  /// ProvenanceRef anchors. Observation-only: optimization decisions are
  /// byte-identical with or without it.
  explain::ProvenanceRecorder *Explain = nullptr;
};

/// Everything the pipeline produces.
struct OptimizedProgram {
  /// The final AST (transformed, or the original root if reuse was
  /// disabled / found nothing).
  const Expr *Root = nullptr;
  /// Types for the final AST.
  TypedProgram Typed;
  /// Escape report for the *original* program (what the paper tabulates).
  ProgramEscapeReport BaseEscape;
  /// Escape report for the final program (drives the allocation plan).
  ProgramEscapeReport FinalEscape;
  /// Record of the reuse transformation (empty if disabled).
  ReuseTransformResult Reuse;
  /// Arena directives for the runtime.
  AllocationPlan Plan;
};

/// Runs the pipeline. Returns nullopt after reporting diagnostics if the
/// transformed program fails to re-typecheck (an internal error).
/// \p PhaseMicrosOut, when non-null, receives {phase, µs} wall times for
/// the internal phases (escape, sharing, retype, plan).
std::optional<OptimizedProgram>
optimizeProgram(AstContext &Ast, TypeContext &Types,
                const TypedProgram &Program, DiagnosticEngine &Diags,
                const OptimizerConfig &Config = OptimizerConfig(),
                obs::PhaseTimer::PhaseTimes *PhaseMicrosOut = nullptr);

} // namespace eal

#endif // EAL_OPT_OPTIMIZER_H

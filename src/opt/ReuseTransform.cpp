//===- ReuseTransform.cpp -------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "opt/ReuseTransform.h"

#include "lang/AstCloner.h"
#include "lang/AstUtils.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

using namespace eal;

namespace {

/// True if \p E is a saturated cons application `cons e1 e2`; fills the
/// operands.
bool isConsApp(const Expr *E, const Expr *&Head, const Expr *&Tail) {
  const auto *Outer = dyn_cast<AppExpr>(E);
  if (!Outer)
    return false;
  const auto *Inner = dyn_cast<AppExpr>(Outer->fn());
  if (!Inner)
    return false;
  const auto *Prim = dyn_cast<PrimExpr>(Inner->fn());
  if (!Prim || Prim->op() != PrimOp::Cons)
    return false;
  Head = Inner->arg();
  Tail = Outer->arg();
  return true;
}

/// True if \p E is exactly `null x` for the variable \p X.
bool isNullTestOf(const Expr *E, Symbol X) {
  const auto *App = dyn_cast<AppExpr>(E);
  if (!App)
    return false;
  const auto *Prim = dyn_cast<PrimExpr>(App->fn());
  if (!Prim || Prim->op() != PrimOp::Null)
    return false;
  const auto *Var = dyn_cast<VarExpr>(App->arg());
  return Var && Var->name() == X;
}

/// True if \p X occurs free in \p E.
bool usesVar(const Expr *E, Symbol X) {
  std::vector<Symbol> Free = freeVariables(E);
  return std::find(Free.begin(), Free.end(), X) != Free.end();
}

/// True if any lambda nested inside \p E captures \p X (makes evaluation
/// order reasoning about X unsound).
bool lambdaCaptures(const Expr *E, Symbol X) {
  bool Captured = false;
  forEachExpr(E, [&](const Expr *Node) {
    if (Captured || !isa<LambdaExpr>(Node))
      return;
    if (usesVar(Node, X))
      Captured = true;
  });
  return Captured;
}

/// If \p E is exactly cdr^j (Var X), returns j.
std::optional<unsigned> cdrDepthOf(const Expr *E, Symbol X) {
  unsigned Depth = 0;
  for (;;) {
    if (const auto *Var = dyn_cast<VarExpr>(E))
      return Var->name() == X ? std::optional<unsigned>(Depth)
                              : std::nullopt;
    const auto *App = dyn_cast<AppExpr>(E);
    if (!App)
      return std::nullopt;
    const auto *Prim = dyn_cast<PrimExpr>(App->fn());
    if (!Prim || Prim->op() != PrimOp::Cdr)
      return std::nullopt;
    ++Depth;
    E = App->arg();
  }
}

/// Whether evaluating \p E may touch cells at index >= \p K (0-based) of
/// the list bound to \p X. A consumer of cdr^K X destroys exactly those
/// cells, so later evaluation is safe iff it stays below depth K:
/// car (cdr^j X) and dcons (cdr^j X) _ _ touch cell j (safe for j < K);
/// null (cdr^j X) touches cells < j only (safe for j <= K); a bare
/// cdr^j X whose value flows elsewhere may be walked arbitrarily deep.
bool usesBeyond(const Expr *E, Symbol X, unsigned K) {
  if (!usesVar(E, X))
    return false;
  std::vector<const Expr *> Args;
  const Expr *Callee = uncurryCall(E, Args);
  if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
    if (Prim->op() == PrimOp::Car && Args.size() == 1)
      if (auto J = cdrDepthOf(Args[0], X))
        return *J >= K;
    if (Prim->op() == PrimOp::Null && Args.size() == 1)
      if (auto J = cdrDepthOf(Args[0], X))
        return *J > K;
    if (Prim->op() == PrimOp::DCons && Args.size() == 3)
      if (auto J = cdrDepthOf(Args[0], X))
        return *J >= K || usesBeyond(Args[1], X, K) ||
               usesBeyond(Args[2], X, K);
  }
  if (cdrDepthOf(E, X))
    return true; // the pointer escapes this context: unknown depth
  switch (E->kind()) {
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    return usesBeyond(App->fn(), X, K) || usesBeyond(App->arg(), X, K);
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    return usesBeyond(If->cond(), X, K) || usesBeyond(If->thenExpr(), X, K) ||
           usesBeyond(If->elseExpr(), X, K);
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    return usesBeyond(Let->value(), X, K) ||
           usesBeyond(Let->body(), X, K); // usesVar gate handles shadowing
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    for (const LetrecBinding &B : Letrec->bindings())
      if (usesBeyond(B.Value, X, K))
        return true;
    return usesBeyond(Letrec->body(), X, K);
  }
  case ExprKind::Lambda:
    return true; // captured and deferred: unknown depth and time
  default:
    return true; // a Var X occurrence we could not classify
  }
}

} // namespace

class ReuseTransform::Impl {
public:
  Impl(AstContext &Ast, const TypedProgram &Program,
       const ProgramEscapeReport &Escape, const SharingAnalysis &Sharing)
      : Ast(Ast), Program(Program), Escape(Escape), Sharing(Sharing) {}

  std::optional<ReuseTransformResult> run();

private:
  //===--- Candidate discovery ---------------------------------------------==//

  /// Collects cons sites in \p E where \p X is known non-nil. \p NonNil is
  /// the dominating fact at entry.
  void collectNonNilConses(const Expr *E, Symbol X, bool NonNil,
                           std::vector<const Expr *> &Out);

  /// Whether evaluation after \p Target completes (within \p Root) may
  /// touch cells at index >= \p K of the list bound to \p X. K = 0 means
  /// any use of X at all. Returns nullopt if Target does not occur in
  /// Root.
  std::optional<bool> usesAfter(const Expr *Root, const Expr *Target,
                                Symbol X, unsigned K = 0);

  /// Picks at most one qualifying cons per execution path, preferring the
  /// latest in evaluation order.
  std::vector<const Expr *>
  selectPerPath(const Expr *E,
                const std::unordered_set<const Expr *> &Qualifying);

  //===--- Rewriting ---------------------------------------------------------==//

  /// Computes call retargets within \p Body. \p Assume carries the
  /// primed-body sharing assumption (or null for base bodies). A retarget
  /// justified *only* by the assumption consumes (part of) the assumed
  /// variable \p AssumedVar itself, so it is additionally required to be
  /// the last use of that variable in the evaluation order of
  /// \p EvalScope — otherwise a later read would see destroyed cells.
  void computeRetargets(const Expr *Body, bool InPrimed,
                        const std::unordered_map<uint32_t, unsigned> *Assume,
                        Symbol AssumedVar, const Expr *EvalScope,
                        ReuseTransformResult &Result);

  AstContext &Ast;
  const TypedProgram &Program;
  const ProgramEscapeReport &Escape;
  const SharingAnalysis &Sharing;

  /// Primed name per (function symbol id, param index).
  std::unordered_map<uint64_t, Symbol> PrimedNames;
  /// Arity per top-level function name id.
  std::unordered_map<uint32_t, unsigned> Arities;
};

void ReuseTransform::Impl::collectNonNilConses(const Expr *E, Symbol X,
                                               bool NonNil,
                                               std::vector<const Expr *> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
  case ExprKind::Var:
  case ExprKind::Prim:
    return;
  case ExprKind::App: {
    const Expr *Head = nullptr, *Tail = nullptr;
    if (NonNil && isConsApp(E, Head, Tail))
      Out.push_back(E);
    const auto *App = cast<AppExpr>(E);
    collectNonNilConses(App->fn(), X, NonNil, Out);
    collectNonNilConses(App->arg(), X, NonNil, Out);
    return;
  }
  case ExprKind::Lambda:
    // Deferred evaluation: facts do not carry over, and candidates inside
    // are disqualified later anyway (usesAfter is conservative there).
    collectNonNilConses(cast<LambdaExpr>(E)->body(), X, false, Out);
    return;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    collectNonNilConses(If->cond(), X, NonNil, Out);
    if (isNullTestOf(If->cond(), X)) {
      // then: X is nil; else: X is non-nil.
      collectNonNilConses(If->thenExpr(), X, false, Out);
      collectNonNilConses(If->elseExpr(), X, true, Out);
      return;
    }
    collectNonNilConses(If->thenExpr(), X, NonNil, Out);
    collectNonNilConses(If->elseExpr(), X, NonNil, Out);
    return;
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    collectNonNilConses(Let->value(), X, NonNil, Out);
    // Shadowing kills the fact (and any further candidates for X).
    collectNonNilConses(Let->body(), X, Let->name() != X && NonNil, Out);
    return;
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    bool Shadowed = Letrec->findBinding(X) != nullptr;
    for (const LetrecBinding &B : Letrec->bindings())
      collectNonNilConses(B.Value, X, false, Out);
    collectNonNilConses(Letrec->body(), X, !Shadowed && NonNil, Out);
    return;
  }
  }
  assert(false && "unhandled expression kind");
}

std::optional<bool> ReuseTransform::Impl::usesAfter(const Expr *Root,
                                                    const Expr *Target,
                                                    Symbol X, unsigned K) {
  if (Root == Target)
    return false;
  switch (Root->kind()) {
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
  case ExprKind::NilLit:
  case ExprKind::Var:
  case ExprKind::Prim:
    return std::nullopt;
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(Root);
    if (auto In = usesAfter(App->fn(), Target, X, K))
      return *In || usesBeyond(App->arg(), X, K); // arg evaluates after fn
    if (auto In = usesAfter(App->arg(), Target, X, K))
      return *In; // the application itself cannot reference X (no capture)
    return std::nullopt;
  }
  case ExprKind::Lambda:
    if (auto In = usesAfter(cast<LambdaExpr>(Root)->body(), Target, X, K)) {
      (void)In;
      return true; // deferred body: evaluation order unknown
    }
    return std::nullopt;
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(Root);
    if (auto In = usesAfter(If->cond(), Target, X, K))
      return *In || usesBeyond(If->thenExpr(), X, K) ||
             usesBeyond(If->elseExpr(), X, K);
    if (auto In = usesAfter(If->thenExpr(), Target, X, K))
      return *In;
    if (auto In = usesAfter(If->elseExpr(), Target, X, K))
      return *In;
    return std::nullopt;
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(Root);
    if (auto In = usesAfter(Let->value(), Target, X, K))
      return *In ||
             (Let->name() != X && usesBeyond(Let->body(), X, K));
    if (auto In = usesAfter(Let->body(), Target, X, K))
      return *In;
    return std::nullopt;
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(Root);
    auto Bindings = Letrec->bindings();
    bool Shadowed = Letrec->findBinding(X) != nullptr;
    for (size_t I = 0; I != Bindings.size(); ++I) {
      if (auto In = usesAfter(Bindings[I].Value, Target, X, K)) {
        bool After = *In;
        for (size_t J = I + 1; J != Bindings.size(); ++J)
          After = After || (!Shadowed && usesBeyond(Bindings[J].Value, X, K));
        After = After || (!Shadowed && usesBeyond(Letrec->body(), X, K));
        return After;
      }
    }
    if (auto In = usesAfter(Letrec->body(), Target, X, K))
      return *In;
    return std::nullopt;
  }
  }
  assert(false && "unhandled expression kind");
  return std::nullopt;
}

std::vector<const Expr *> ReuseTransform::Impl::selectPerPath(
    const Expr *E, const std::unordered_set<const Expr *> &Qualifying) {
  // Outermost qualifying cons wins its whole path.
  if (Qualifying.count(E))
    return {E};
  switch (E->kind()) {
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    // Prefer the later-evaluated operand (the argument).
    std::vector<const Expr *> Sel = selectPerPath(App->arg(), Qualifying);
    if (!Sel.empty())
      return Sel;
    return selectPerPath(App->fn(), Qualifying);
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    // Branches are exclusive paths: one selection each is fine. Skip the
    // condition (it evaluates before either branch; selecting in both
    // would double-reuse).
    std::vector<const Expr *> Sel = selectPerPath(If->thenExpr(), Qualifying);
    std::vector<const Expr *> Else = selectPerPath(If->elseExpr(), Qualifying);
    Sel.insert(Sel.end(), Else.begin(), Else.end());
    return Sel;
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    std::vector<const Expr *> Sel = selectPerPath(Let->body(), Qualifying);
    if (!Sel.empty())
      return Sel;
    return selectPerPath(Let->value(), Qualifying);
  }
  case ExprKind::Letrec:
    return selectPerPath(cast<LetrecExpr>(E)->body(), Qualifying);
  default:
    return {};
  }
}

void ReuseTransform::Impl::computeRetargets(
    const Expr *Body, bool InPrimed,
    const std::unordered_map<uint32_t, unsigned> *Assume, Symbol AssumedVar,
    const Expr *EvalScope, ReuseTransformResult &Result) {
  forEachExpr(Body, [&](const Expr *Node) {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(Node, Args);
    const auto *Var = dyn_cast<VarExpr>(Callee);
    if (!Var || Args.empty())
      return;
    auto ArityIt = Arities.find(Var->name().id());
    if (ArityIt == Arities.end() || ArityIt->second != Args.size())
      return; // not a saturated top-level call
    // Find a version of this callee whose reuse budget the actual
    // argument satisfies.
    for (unsigned I = 0; I != Args.size(); ++I) {
      auto It = PrimedNames.find(
          (static_cast<uint64_t>(Var->name().id()) << 32) | I);
      if (It == PrimedNames.end())
        continue;
      // A budget derived without assumptions means the argument is a
      // fresh structure per evaluation: consuming it is always safe. A
      // budget that *needs* the unshared-parameter assumption consumes
      // the assumed variable's own cells, so this call must be the last
      // use of that variable in evaluation order.
      unsigned Budget =
          Sharing.reusableTopSpines(Var->name(), I, Args[I], nullptr);
      if (Budget == 0 && Assume) {
        if (Sharing.reusableTopSpines(Var->name(), I, Args[I], Assume) ==
            0)
          continue;
        // The consumer destroys cells at depth >= K of the assumed
        // variable, where the argument is cdr^K of it (K = 0 when the
        // derivation is anything more complex).
        unsigned Depth = cdrDepthOf(Args[I], AssumedVar).value_or(0);
        std::optional<bool> After =
            usesAfter(EvalScope, Node, AssumedVar, Depth);
        if (!After || *After)
          continue; // cells the consumer destroys are read later: unsafe
      } else if (Budget == 0) {
        continue;
      }
      CallRetarget RT;
      RT.CalleeVarId = Var->id();
      RT.From = Var->name();
      RT.To = It->second;
      RT.InPrimedBody = InPrimed;
      Result.Retargets.push_back(RT);
      return; // one retarget per call
    }
  });
}

namespace {

/// Clones a body applying DCONS rewrites and callee retargets.
class ReuseCloner : public AstCloner {
public:
  ReuseCloner(AstContext &Ctx, Symbol X,
              const std::unordered_set<const Expr *> &DconsSites,
              const std::unordered_map<uint32_t, Symbol> &Retargets)
      : AstCloner(Ctx), X(X), DconsSites(DconsSites), Retargets(Retargets) {}

protected:
  const Expr *rewrite(const Expr *E) override {
    if (DconsSites.count(E)) {
      const Expr *Head = nullptr, *Tail = nullptr;
      bool IsCons = isConsApp(E, Head, Tail);
      assert(IsCons && "dcons site is not a cons");
      (void)IsCons;
      const Expr *Prim = Ctx.createPrim(E->range(), PrimOp::DCons);
      const Expr *Args[] = {Ctx.createVar(E->range(), X), clone(Head),
                            clone(Tail)};
      return Ctx.createAppChain(E->range(), Prim, Args);
    }
    if (const auto *Var = dyn_cast<VarExpr>(E)) {
      auto It = Retargets.find(Var->id());
      if (It != Retargets.end())
        return Ctx.createVar(E->range(), It->second);
    }
    return nullptr;
  }

private:
  Symbol X;
  const std::unordered_set<const Expr *> &DconsSites;
  const std::unordered_map<uint32_t, Symbol> &Retargets;
};

} // namespace

std::optional<ReuseTransformResult> ReuseTransform::Impl::run() {
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec)
    return std::nullopt;

  ReuseTransformResult Result;

  for (const FunctionEscape &FE : Escape.Functions)
    Arities[FE.Name.id()] = FE.Arity;

  // Pass 1: discover reuse versions.
  struct VersionPlan {
    const LetrecBinding *Binding = nullptr;
    unsigned ParamIndex = 0;
    Symbol X;
    const Expr *InnerBody = nullptr;
    std::unordered_set<const Expr *> Sites;
  };
  std::vector<VersionPlan> Plans;

  for (const LetrecBinding &B : Letrec->bindings()) {
    const FunctionEscape *FE = Escape.find(B.Name);
    if (!FE)
      continue;
    // Peel all parameters first: f x1 ... xn = e is an n-ary function, and
    // primed versions are only ever called saturated, so evaluation-order
    // reasoning runs over the innermost body with every parameter bound.
    std::vector<Symbol> Params;
    const Expr *Body = B.Value;
    for (unsigned I = 0; I != FE->Arity; ++I) {
      const auto *Lambda = cast<LambdaExpr>(Body);
      Params.push_back(Lambda->param());
      Body = Lambda->body();
    }
    unsigned Primes = 0;
    for (unsigned I = 0; I != FE->Arity; ++I) {
      Symbol X = Params[I];
      const ParamEscape &PE = FE->Params[I];
      if (PE.ParamSpines == 0 || PE.protectedTopSpines() == 0)
        continue;
      // A later parameter shadowing X would confuse the rewrite; X
      // captured by a nested lambda defeats evaluation-order reasoning.
      if (std::count(Params.begin(), Params.end(), X) != 1)
        continue;
      if (lambdaCaptures(Body, X))
        continue;
      std::vector<const Expr *> Candidates;
      collectNonNilConses(Body, X, /*NonNil=*/false, Candidates);
      std::unordered_set<const Expr *> Qualifying;
      for (const Expr *Cand : Candidates) {
        // dcons is typed a list → a → a list → a list: the reused cell
        // must come from a list of the same element type as the cons it
        // replaces (cells are uniform at run time, but nml is typed).
        if (Program.typeOf(Cand) != PE.ParamType)
          continue;
        auto After = usesAfter(Body, Cand, X);
        if (After && !*After)
          Qualifying.insert(Cand);
      }
      if (Qualifying.empty())
        continue;
      std::vector<const Expr *> Selected = selectPerPath(Body, Qualifying);
      if (Selected.empty())
        continue;

      VersionPlan Plan;
      Plan.Binding = &B;
      Plan.ParamIndex = I;
      Plan.X = X;
      Plan.InnerBody = Body;
      Plan.Sites.insert(Selected.begin(), Selected.end());
      Plans.push_back(std::move(Plan));

      std::string Primed(Ast.spelling(B.Name));
      Primed.append(Primes + 1, '\'');
      ++Primes;
      Symbol PrimedSym = Ast.intern(Primed);
      PrimedNames[(static_cast<uint64_t>(B.Name.id()) << 32) | I] = PrimedSym;

      ReuseVersion RV;
      RV.Original = B.Name;
      RV.Primed = PrimedSym;
      RV.ParamIndex = I;
      for (const Expr *Site : Selected)
        RV.DconsSites.push_back(Site->id());
      std::sort(RV.DconsSites.begin(), RV.DconsSites.end());
      Result.Versions.push_back(std::move(RV));
    }
  }

  // Pass 2: compute call retargets. Base bodies use plain sharing facts;
  // each primed body additionally assumes its reused parameter's top
  // spine is unshared (the caller guarantees it).
  for (const LetrecBinding &B : Letrec->bindings())
    computeRetargets(B.Value, /*InPrimed=*/false, nullptr, Symbol::invalid(),
                     nullptr, Result);
  computeRetargets(Letrec->body(), /*InPrimed=*/false, nullptr,
                   Symbol::invalid(), nullptr, Result);

  struct PrimedRetargets {
    std::unordered_map<uint32_t, Symbol> Map;
  };
  std::vector<PrimedRetargets> PerPlan(Plans.size());

  std::unordered_map<uint32_t, Symbol> BaseRetargets;
  for (const CallRetarget &RT : Result.Retargets)
    BaseRetargets[RT.CalleeVarId] = RT.To;

  for (size_t P = 0; P != Plans.size(); ++P) {
    const VersionPlan &Plan = Plans[P];
    std::unordered_map<uint32_t, unsigned> Assume{{Plan.X.id(), 1}};
    ReuseTransformResult Local;
    computeRetargets(Plan.Binding->Value, /*InPrimed=*/true, &Assume, Plan.X,
                     Plan.InnerBody, Local);
    for (const CallRetarget &RT : Local.Retargets) {
      PerPlan[P].Map[RT.CalleeVarId] = RT.To;
      Result.Retargets.push_back(RT);
    }
  }

  // Pass 3: build the transformed program.
  std::unordered_set<const Expr *> NoSites;
  std::vector<LetrecBinding> NewBindings;
  for (const LetrecBinding &B : Letrec->bindings()) {
    LetrecBinding NB = B;
    ReuseCloner Cloner(Ast, Symbol::invalid(), NoSites, BaseRetargets);
    NB.Value = Cloner.clone(B.Value);
    NewBindings.push_back(NB);
  }
  for (size_t P = 0; P != Plans.size(); ++P) {
    const VersionPlan &Plan = Plans[P];
    const ReuseVersion &RV = Result.Versions[P];
    ReuseCloner Cloner(Ast, Plan.X, Plan.Sites, PerPlan[P].Map);
    LetrecBinding NB;
    NB.Name = RV.Primed;
    NB.NameLoc = Plan.Binding->NameLoc;
    NB.Value = Cloner.clone(Plan.Binding->Value);
    NewBindings.push_back(NB);
  }
  ReuseCloner BodyCloner(Ast, Symbol::invalid(), NoSites, BaseRetargets);
  const Expr *NewBody = BodyCloner.clone(Letrec->body());
  Result.NewRoot = Ast.createLetrec(Letrec->range(), NewBindings, NewBody);
  return Result;
}

std::optional<ReuseTransformResult> ReuseTransform::run() {
  Impl TheImpl(Ast, Program, Escape, Sharing);
  return TheImpl.run();
}

std::string eal::renderReuseReport(const AstContext &Ast,
                                   const ReuseTransformResult &Result) {
  std::ostringstream OS;
  for (const ReuseVersion &RV : Result.Versions)
    OS << "version " << Ast.spelling(RV.Primed) << ": reuses parameter "
       << (RV.ParamIndex + 1) << " of " << Ast.spelling(RV.Original) << " at "
       << RV.DconsSites.size() << " cons site(s)\n";
  for (const CallRetarget &RT : Result.Retargets)
    OS << "call retarget: " << Ast.spelling(RT.From) << " -> "
       << Ast.spelling(RT.To)
       << (RT.InPrimedBody ? " (inside reuse version)" : "") << "\n";
  return OS.str();
}

//===- ReuseTransform.h - In-place reuse via DCONS (§6) ---------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-place reuse optimization of §6 / A.3.2. For a top-level function
/// f whose i-th (list) parameter x has a non-escaping top spine, a new
/// version f' is generated in which a qualifying `cons e1 e2` becomes
/// `DCONS x e1 e2`, destructively reusing the head cell of x. A cons
/// qualifies when:
///
///  * x is known non-nil at the site (the site is dominated by the else
///    branch of an `if (null x)` test), so the head cell exists;
///  * x is never captured by a nested lambda, and no reference to x is
///    evaluated after the cons (the paper's "no further use of x_i after
///    the evaluation of (cons e1 e2)"), so overwriting is unobservable;
///  * at most one reuse per execution path (one activation owns one dead
///    head cell).
///
/// Call sites are then retargeted from f to f' wherever Theorem 2 proves
/// the actual argument's top spine unshared (the reuse budget
/// min{u_i, d_i − esc_i} of §6 is at least 1). Inside f' itself, x's top
/// spine is unshared by construction (callers guarantee it), which is what
/// lets APPEND' and REV' recurse into themselves, exactly as in A.3.2.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_OPT_REUSETRANSFORM_H
#define EAL_OPT_REUSETRANSFORM_H

#include "sharing/SharingAnalysis.h"

#include <optional>
#include <string>
#include <vector>

namespace eal {

/// One generated reuse version f' of a function f.
struct ReuseVersion {
  Symbol Original;
  Symbol Primed;
  unsigned ParamIndex = 0; ///< 0-based parameter whose cells are reused
  /// Node ids (in the *original* AST) of the cons applications rewritten
  /// to DCONS in the primed body.
  std::vector<uint32_t> DconsSites;
  /// Why-provenance: the Decision fact recorded for this version, citing
  /// the G verdict that protected the reused parameter (explain::NoFact
  /// when no recorder was attached).
  uint32_t ProvenanceRef = explain::NoFact;
};

/// One call-site retargeting f -> f'.
struct CallRetarget {
  /// Node id (in the original AST) of the callee VarExpr occurrence.
  uint32_t CalleeVarId = 0;
  Symbol From;
  Symbol To;
  /// Whether the site is inside a primed body (true) or the base program.
  bool InPrimedBody = false;
  /// Why-provenance: the Decision fact recorded for this retargeting
  /// (explain::NoFact when no recorder was attached).
  uint32_t ProvenanceRef = explain::NoFact;
};

/// The transformed program plus a record of what was done.
struct ReuseTransformResult {
  const Expr *NewRoot = nullptr;
  std::vector<ReuseVersion> Versions;
  std::vector<CallRetarget> Retargets;

  bool changedAnything() const {
    return !Versions.empty() || !Retargets.empty();
  }
};

/// Runs the §6 transformation over a typed program.
class ReuseTransform {
public:
  ReuseTransform(AstContext &Ast, const TypedProgram &Program,
                 const ProgramEscapeReport &Escape,
                 const SharingAnalysis &Sharing)
      : Ast(Ast), Program(Program), Escape(Escape), Sharing(Sharing) {}

  /// Returns the transformed program, or nullopt when the root is not a
  /// letrec (nothing to transform). The result's NewRoot is always valid;
  /// if no opportunity exists it is a plain clone.
  std::optional<ReuseTransformResult> run();

private:
  class Impl;

  AstContext &Ast;
  const TypedProgram &Program;
  const ProgramEscapeReport &Escape;
  const SharingAnalysis &Sharing;
};

/// Renders the transformation record (versions generated, sites rewritten,
/// calls retargeted) for reports and examples.
std::string renderReuseReport(const AstContext &Ast,
                              const ReuseTransformResult &Result);

} // namespace eal

#endif // EAL_OPT_REUSETRANSFORM_H

//===- ProfileReport.cpp --------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "prof/ProfileReport.h"

#include "lang/AstUtils.h"
#include "support/Casting.h"
#include "support/SourceManager.h"
#include "support/Trace.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

using namespace eal;
using namespace eal::prof;

namespace {

bool isAllocPrim(PrimOp Op) {
  return Op == PrimOp::Cons || Op == PrimOp::MkPair || Op == PrimOp::DCons;
}

const char *allocPrimName(PrimOp Op) {
  switch (Op) {
  case PrimOp::Cons:
    return "cons";
  case PrimOp::MkPair:
    return "pair";
  case PrimOp::DCons:
    return "dcons";
  default:
    return "?";
  }
}

/// "file:line:col" (or "file:?" for synthesized locations).
std::string renderLoc(const SourceManager &SM, SourceLoc Loc) {
  LineColumn LC = SM.lineColumn(Loc);
  std::ostringstream OS;
  OS << SM.name() << ':';
  if (LC.Line)
    OS << LC.Line << ':' << LC.Column;
  else
    OS << '?';
  return OS.str();
}

} // namespace

ProfileReport::ProfileReport(const AstContext &Ast, const SourceManager &SM,
                             const Expr *FinalRoot,
                             const AllocationPlan &Plan,
                             const ReuseTransformResult &Reuse,
                             const std::vector<check::Finding> *Findings,
                             std::vector<EngineProfile> Engines)
    : Ast(Ast), SM(SM), Root(FinalRoot), Plan(Plan), Reuse(Reuse),
      Findings(Findings), Engines(std::move(Engines)) {
  // Frame-name tables for the tree walker: a lambda that is the
  // (curried) body of a let/letrec binding is named after the binding;
  // anything else falls back to its source location.
  forEachExpr(Root, [&](const Expr *E) {
    if (const auto *L = dyn_cast<LambdaExpr>(E))
      Lambdas.emplace(L->id(), L);
    auto NameChain = [&](Symbol Name, const Expr *Value) {
      std::string Spelling(this->Ast.spelling(Name));
      const Expr *B = Value;
      while (const auto *L = dyn_cast<LambdaExpr>(B)) {
        TreeFrameNames.emplace(L->id(), Spelling);
        B = L->body();
      }
    };
    if (const auto *LR = dyn_cast<LetrecExpr>(E)) {
      for (const LetrecBinding &B : LR->bindings())
        NameChain(B.Name, B.Value);
    } else if (const auto *LE = dyn_cast<LetExpr>(E)) {
      NameChain(LE->name(), LE->value());
    }
  });
  buildSiteTable();
}

void ProfileReport::buildSiteTable() {
  // Pass 1: App nodes in callee position are interior to a spine — the
  // site id of a saturated `cons e1 e2` is its *outermost* App node
  // (matching the compiler and the interpreter's evalCallSpine).
  std::unordered_set<uint32_t> InnerApps;
  forEachExpr(Root, [&](const Expr *E) {
    if (const auto *A = dyn_cast<AppExpr>(E))
      if (isa<AppExpr>(A->fn()))
        InnerApps.insert(A->fn()->id());
  });

  // Pass 2: saturated direct cons/pair/dcons spines.
  std::unordered_set<uint32_t> SpineCallees;
  forEachExpr(Root, [&](const Expr *E) {
    const auto *A = dyn_cast<AppExpr>(E);
    if (!A || InnerApps.count(A->id()))
      return;
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(A, Args);
    const auto *P = dyn_cast<PrimExpr>(Callee);
    if (!P || !isAllocPrim(P->op()) || Args.size() != primOpArity(P->op()))
      return;
    SpineCallees.insert(P->id());
    Site S;
    S.Id = A->id();
    S.Loc = A->loc();
    S.Op = P->op();
    SiteTable.push_back(std::move(S));
  });

  // Pass 3: cons/pair occurrences used as *values* (partially applied or
  // passed around). Cells allocated through such a closure are tagged
  // with the PrimExpr's own node id (PrimNodeId / Chunk::PrimRef::Site).
  forEachExpr(Root, [&](const Expr *E) {
    const auto *P = dyn_cast<PrimExpr>(E);
    if (!P || !isAllocPrim(P->op()) || SpineCallees.count(P->id()))
      return;
    Site S;
    S.Id = P->id();
    S.Loc = P->loc();
    S.Op = P->op();
    S.PrimValue = true;
    SiteTable.push_back(std::move(S));
  });

  for (Site &S : SiteTable)
    S.Planned = plannedFor(S.Id, S.Op, S.Loc, S.Why, S.Prov);

  // Deterministic order: source position, then id (synthesized last).
  std::sort(SiteTable.begin(), SiteTable.end(),
            [](const Site &A, const Site &B) {
              if (A.Loc != B.Loc)
                return A.Loc < B.Loc;
              return A.Id < B.Id;
            });
}

std::string ProfileReport::plannedFor(uint32_t Id, PrimOp Op, SourceLoc Loc,
                                      std::string &Why,
                                      uint32_t &Prov) const {
  if (Op == PrimOp::DCons) {
    std::ostringstream OS;
    OS << "cons rewritten to DCONS by the in-place reuse transformation "
          "(§6): overwrites the dead head cell of a parameter whose top "
          "spine the analysis proved unshared";
    if (!Reuse.Versions.empty()) {
      OS << "; reuse versions:";
      for (const ReuseVersion &V : Reuse.Versions)
        OS << " " << Ast.spelling(V.Primed) << " (param "
           << (V.ParamIndex + 1) << " of " << Ast.spelling(V.Original)
           << ")";
      Prov = Reuse.Versions.front().ProvenanceRef;
    }
    Why = OS.str();
    return "reuse";
  }

  for (const ArgArenaDirective &D : Plan.Directives) {
    auto It = D.Sites.find(Id);
    if (It == D.Sites.end())
      continue;
    std::ostringstream OS;
    bool IsStack = It->second == ArenaSiteClass::Stack;
    OS << (IsStack
               ? "stack-allocated (A.3.1): builds the top "
               : "region-allocated (A.3.3): producer output feeding the top ")
       << D.ProtectedSpines << " spine(s) of argument " << (D.ArgIndex + 1)
       << " of '" << Ast.spelling(D.Callee)
       << "', which never escape its activation"
       << (IsStack ? "" : "; the whole block is bulk-freed on return");
    Why = OS.str();
    Prov = D.ProvenanceRef;
    return IsStack ? "stack" : "region";
  }

  // GC heap: quote the linter's EAL-O explanation when one points at
  // this site.
  if (Findings)
    for (const check::Finding &F : *Findings)
      if (F.Loc == Loc && F.Code.size() > 5 && F.Code.compare(0, 5, "EAL-O") == 0) {
        Why = "[" + F.Code + "] " + F.Message;
        if (!F.Blame.empty())
          Prov = F.Blame.front();
        return "heap";
      }
  Why = "not claimed by any optimization";
  return "heap";
}

std::string ProfileReport::frameName(const EngineProfile &E,
                                     uint32_t Key) const {
  if (Key == StackTree::RootKey)
    return "<root>";
  if (!E.FrameNames.empty()) {
    if (Key < E.FrameNames.size() && !E.FrameNames[Key].empty())
      return E.FrameNames[Key];
    return "proto" + std::to_string(Key);
  }
  auto It = TreeFrameNames.find(Key);
  if (It != TreeFrameNames.end())
    return It->second;
  auto L = Lambdas.find(Key);
  if (L != Lambdas.end()) {
    LineColumn LC = SM.lineColumn(L->second->loc());
    return "lambda@" + std::to_string(LC.Line) + ":" +
           std::to_string(LC.Column);
  }
  return "frame" + std::to_string(Key);
}

std::string ProfileReport::folded() const {
  std::string Out;
  for (const EngineProfile &E : Engines) {
    if (!E.P)
      continue;
    Out += E.P->stacks().folded(
        [&](uint32_t Key) { return frameName(E, Key); }, E.Name);
  }
  return Out;
}

std::string ProfileReport::toJson() const {
  std::ostringstream OS;
  bool AllOk = true;
  for (const EngineProfile &E : Engines)
    AllOk = AllOk && E.Success;

  OS << "{\n"
     << "  \"schema\": \"eal-profile-v1\",\n"
     << "  \"program\": " << obs::jsonQuote(SM.name()) << ",\n"
     << "  \"success\": " << (AllOk ? "true" : "false") << ",\n"
     << "  \"sites\": [";
  for (size_t I = 0; I != SiteTable.size(); ++I) {
    const Site &S = SiteTable[I];
    LineColumn LC = SM.lineColumn(S.Loc);
    OS << (I ? "," : "") << "\n    {\"id\": " << S.Id
       << ", \"line\": " << LC.Line << ", \"col\": " << LC.Column
       << ", \"prim\": " << obs::jsonQuote(allocPrimName(S.Op))
       << ", \"prim_value\": " << (S.PrimValue ? "true" : "false")
       << ", \"planned\": " << obs::jsonQuote(S.Planned)
       << ", \"why\": " << obs::jsonQuote(S.Why)
       << ", \"provenance_ref\": ";
    if (S.Prov == explain::NoFact)
      OS << "null";
    else
      OS << S.Prov;
    OS << ",\n     \"engines\": {";
    bool FirstEngine = true;
    for (const EngineProfile &E : Engines) {
      if (!E.P)
        continue;
      const SiteCounters *SC = E.P->site(S.Id);
      OS << (FirstEngine ? "" : ", ") << obs::jsonQuote(E.Name) << ": {";
      FirstEngine = false;
      if (SC) {
        // Incarnations born at the site (fresh allocations + DCONS
        // re-tags) minus the ones whose fields were ever demanded: the
        // dynamic dead-cell count the liveness analysis predicts
        // statically (docs/LIVENESS.md).
        uint64_t Born = SC->totalAllocs() + SC->Reuses;
        uint64_t Dead = Born > SC->FirstTouches ? Born - SC->FirstTouches : 0;
        OS << "\"allocs_heap\": " << SC->Allocs[0]
           << ", \"allocs_stack\": " << SC->Allocs[1]
           << ", \"allocs_region\": " << SC->Allocs[2]
           << ", \"deaths_heap\": " << SC->Deaths[0]
           << ", \"deaths_stack\": " << SC->Deaths[1]
           << ", \"deaths_region\": " << SC->Deaths[2]
           << ", \"reuses\": " << SC->Reuses
           << ", \"overwritten\": " << SC->Overwritten
           << ", \"first_touches\": " << SC->FirstTouches
           << ", \"dead_cells\": " << Dead
           << ", \"lifetime\": " << SC->Lifetime.toJson();
      } else {
        OS << "\"allocs_heap\": 0, \"allocs_stack\": 0, "
              "\"allocs_region\": 0, \"deaths_heap\": 0, "
              "\"deaths_stack\": 0, \"deaths_region\": 0, "
              "\"reuses\": 0, \"overwritten\": 0, \"first_touches\": 0, "
              "\"dead_cells\": 0, \"lifetime\": null";
      }
      OS << "}";
    }
    OS << "}}";
  }
  OS << (SiteTable.empty() ? "]" : "\n  ]") << ",\n";

  OS << "  \"reuse_versions\": [";
  for (size_t I = 0; I != Reuse.Versions.size(); ++I) {
    const ReuseVersion &V = Reuse.Versions[I];
    OS << (I ? "," : "") << "\n    {\"original\": "
       << obs::jsonQuote(std::string(Ast.spelling(V.Original)))
       << ", \"primed\": "
       << obs::jsonQuote(std::string(Ast.spelling(V.Primed)))
       << ", \"param_index\": " << V.ParamIndex
       << ", \"dcons_sites\": " << V.DconsSites.size() << "}";
  }
  OS << (Reuse.Versions.empty() ? "]" : "\n  ]") << ",\n";

  OS << "  \"engines\": [";
  for (size_t EI = 0; EI != Engines.size(); ++EI) {
    const EngineProfile &E = Engines[EI];
    OS << (EI ? "," : "") << "\n    {\"name\": " << obs::jsonQuote(E.Name)
       << ", \"success\": " << (E.Success ? "true" : "false");
    if (!E.P) {
      OS << "}";
      continue;
    }
    const Profiler &P = *E.P;
    OS << ", \"steps\": " << P.clock()
       << ", \"stack_nodes\": " << P.stacks().nodeCount()
       << ", \"stack_total_weight\": " << P.stacks().totalWeight();

    // Hot frames: one entry per distinct key, ordered by self weight.
    struct Frame {
      std::string Name;
      uint64_t Calls;
      uint64_t Self;
    };
    std::vector<Frame> Hot;
    for (const auto &[Key, Calls] : P.calls())
      Hot.push_back({frameName(E, Key), Calls, P.stacks().selfWeight(Key)});
    std::sort(Hot.begin(), Hot.end(), [](const Frame &A, const Frame &B) {
      if (A.Self != B.Self)
        return A.Self > B.Self;
      return A.Name < B.Name;
    });
    if (Hot.size() > 32)
      Hot.resize(32);
    OS << ", \"frames\": [";
    for (size_t I = 0; I != Hot.size(); ++I)
      OS << (I ? "," : "") << "\n      {\"name\": "
         << obs::jsonQuote(Hot[I].Name) << ", \"calls\": " << Hot[I].Calls
         << ", \"self\": " << Hot[I].Self << "}";
    OS << (Hot.empty() ? "]" : "\n    ]");

    if (P.vmProfile()) {
      OS << ", \"opcodes\": {";
      bool First = true;
      const std::vector<uint64_t> &Ops = P.opcodeCounts();
      for (size_t I = 0; I != Ops.size(); ++I) {
        if (!Ops[I])
          continue;
        std::string Name = I < E.OpcodeNames.size() && !E.OpcodeNames[I].empty()
                               ? E.OpcodeNames[I]
                               : "op" + std::to_string(I);
        OS << (First ? "" : ", ") << obs::jsonQuote(Name) << ": " << Ops[I];
        First = false;
      }
      OS << "}, \"protos\": [";
      const std::vector<uint64_t> &PI = P.protoInstrs();
      for (size_t I = 0; I != PI.size(); ++I)
        OS << (I ? "," : "") << "\n      {\"name\": "
           << obs::jsonQuote(frameName(E, static_cast<uint32_t>(I)))
           << ", \"instrs\": " << PI[I] << "}";
      OS << (PI.empty() ? "]" : "\n    ]");
    }
    OS << "}";
  }
  OS << (Engines.empty() ? "]" : "\n  ]") << "\n}\n";
  return OS.str();
}

std::string ProfileReport::renderSummary() const {
  std::ostringstream OS;
  OS << "profile: " << SM.name() << "\n";
  OS << SiteTable.size() << " allocation site(s)\n";
  for (const Site &S : SiteTable) {
    OS << "  " << renderLoc(SM, S.Loc) << ": " << allocPrimName(S.Op)
       << (S.PrimValue ? " (as value)" : "") << " -> " << S.Planned;
    for (const EngineProfile &E : Engines) {
      if (!E.P)
        continue;
      const SiteCounters *SC = E.P->site(S.Id);
      uint64_t Allocs = SC ? SC->totalAllocs() : 0;
      uint64_t Reuses = SC ? SC->Reuses : 0;
      uint64_t Born = Allocs + Reuses;
      uint64_t Touched = SC ? SC->FirstTouches : 0;
      uint64_t Dead = Born > Touched ? Born - Touched : 0;
      OS << "  [" << E.Name << ": " << Allocs << " alloc(s)";
      if (Reuses)
        OS << ", " << Reuses << " reuse(s)";
      if (Dead)
        OS << ", " << Dead << '/' << Born << " never touched";
      OS << "]";
    }
    OS << "\n    " << S.Why << "\n";
  }
  for (const EngineProfile &E : Engines) {
    if (!E.P)
      continue;
    const Profiler &P = *E.P;
    OS << "engine " << E.Name << ": " << P.clock() << " step(s), "
       << P.stacks().nodeCount() << " stack node(s)";
    // Hottest frame by self weight.
    std::string HotName;
    uint64_t HotSelf = 0;
    for (const auto &[Key, Calls] : P.calls()) {
      (void)Calls;
      uint64_t Self = P.stacks().selfWeight(Key);
      if (Self > HotSelf) {
        HotSelf = Self;
        HotName = frameName(E, Key);
      }
    }
    if (HotSelf)
      OS << "; hottest frame " << HotName << " (" << HotSelf
         << " self step(s))";
    OS << "\n";
  }
  return OS.str();
}

//===- ProfileReport.h - eal-profile-v1 report builder ----------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Joins the raw uint32-keyed data of one or two Profiler runs (tree
/// walker and/or VM) with the static world — the final AST, the
/// allocation plan, the reuse transformation record, and the EAL-O
/// "why is this still on the GC heap" lint findings — into:
///
///  * the `eal-profile-v1` JSON document (validated by
///    tools/check_profile_json.py): every static cons/pair/dcons site
///    with its file:line:col, the storage class the optimizer planned
///    for it, why, and what each engine actually observed there;
///  * collapsed stacks (`folded` format) for flamegraph tooling;
///  * a human-readable summary for the terminal.
///
/// Lives in its own library (eal_prof_report) because resolving site and
/// frame keys needs the AST/plan/check layers the hot-path profiler must
/// not depend on. VM-specific names (proto names, opcode names) are
/// passed in as plain strings so this library stays independent of
/// eal_vm.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_PROF_PROFILEREPORT_H
#define EAL_PROF_PROFILEREPORT_H

#include "check/CheckReport.h"
#include "explain/Provenance.h"
#include "lang/Ast.h"
#include "opt/AllocPlanner.h"
#include "opt/ReuseTransform.h"
#include "prof/Profiler.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace eal {

class SourceManager;

namespace prof {

/// One engine's run, as handed to the report builder.
struct EngineProfile {
  /// Display name, by convention "tree" or "vm" (becomes the root frame
  /// of that engine's folded stacks and its key in the JSON).
  std::string Name;
  const Profiler *P = nullptr;
  /// Whether the run completed successfully.
  bool Success = false;
  /// VM only: frame key (proto index) -> proto name; empty for the tree
  /// walker, whose keys are lambda node ids resolved against the AST.
  std::vector<std::string> FrameNames;
  /// VM only: opcode index -> mnemonic, for the per-opcode counters.
  std::vector<std::string> OpcodeNames;
};

/// The joined static+dynamic profile of one program.
class ProfileReport {
public:
  /// \p FinalRoot is the optimized program the engines actually ran
  /// (OptimizedProgram::Root); \p Findings may be null (no lint run).
  /// All referenced objects must outlive the report.
  ProfileReport(const AstContext &Ast, const SourceManager &SM,
                const Expr *FinalRoot, const AllocationPlan &Plan,
                const ReuseTransformResult &Reuse,
                const std::vector<check::Finding> *Findings,
                std::vector<EngineProfile> Engines);

  /// One static allocation site of the final program.
  struct Site {
    uint32_t Id = 0;
    SourceLoc Loc;
    PrimOp Op = PrimOp::Cons; ///< Cons, MkPair, or DCons
    /// True for a primitive-as-value occurrence (cells allocated through
    /// the prim closure, no saturated call spine in the source).
    bool PrimValue = false;
    /// "stack" | "region" | "reuse" | "heap" — the optimizer's verdict.
    std::string Planned;
    /// Why the optimizer claimed (or could not claim) the site.
    std::string Why;
    /// Why-provenance anchor (docs/EXPLAIN.md): the fact behind the
    /// verdict — the directive/version Decision fact, or the heap
    /// finding's blame head (explain::NoFact when no recorder ran).
    uint32_t Prov = explain::NoFact;
  };

  const std::vector<Site> &sites() const { return SiteTable; }
  const std::vector<EngineProfile> &engines() const { return Engines; }

  /// Resolves one stack-tree frame key of \p E to a display name
  /// ("ps", "proto 3 'split'", "lambda@4:11", "<main>").
  std::string frameName(const EngineProfile &E, uint32_t Key) const;

  /// The eal-profile-v1 JSON document.
  std::string toJson() const;
  /// Collapsed stacks for all engines, each line prefixed with the
  /// engine name as the root frame.
  std::string folded() const;
  /// Human-readable terminal summary.
  std::string renderSummary() const;

private:
  void buildSiteTable();
  std::string plannedFor(uint32_t Id, PrimOp Op, SourceLoc Loc,
                         std::string &Why, uint32_t &Prov) const;

  const AstContext &Ast;
  const SourceManager &SM;
  const Expr *Root;
  const AllocationPlan &Plan;
  const ReuseTransformResult &Reuse;
  const std::vector<check::Finding> *Findings;
  std::vector<EngineProfile> Engines;

  std::vector<Site> SiteTable;
  /// Tree-walker frame keys: lambda node id -> binding spelling (for
  /// lambdas that are (curried) bodies of let/letrec bindings).
  std::unordered_map<uint32_t, std::string> TreeFrameNames;
  /// Every lambda of the final program, for the location fallback.
  std::unordered_map<uint32_t, const LambdaExpr *> Lambdas;
};

} // namespace prof
} // namespace eal

#endif // EAL_PROF_PROFILEREPORT_H

//===- Profiler.cpp - Allocation-site & hot-path profiler ------- C++ -*-===//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "prof/Profiler.h"

#include <cassert>

namespace eal::prof {

const char *storageName(Storage S) {
  switch (S) {
  case Storage::Heap:
    return "heap";
  case Storage::Stack:
    return "stack";
  case Storage::Region:
    return "region";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// StackTree
//===----------------------------------------------------------------------===//

StackTree::StackTree() {
  Nodes.push_back(Node{RootKey, 0, 0, {}});
}

uint32_t StackTree::childOf(uint32_t NodeIdx, uint32_t Key) {
  auto It = Nodes[NodeIdx].Children.find(Key);
  if (It != Nodes[NodeIdx].Children.end())
    return It->second;
  uint32_t New = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(Node{Key, NodeIdx, 0, {}});
  Nodes[NodeIdx].Children.emplace(Key, New);
  return New;
}

void StackTree::push(uint32_t Key) { Cur = childOf(Cur, Key); }

void StackTree::replace(uint32_t Key) {
  // Replacing the root would corrupt the tree; a tail call with an empty
  // activation stack cannot happen in either engine, but stay safe.
  if (Cur == 0) {
    push(Key);
    return;
  }
  Cur = childOf(Nodes[Cur].Parent, Key);
}

void StackTree::pop() {
  if (Cur != 0)
    Cur = Nodes[Cur].Parent;
}

void StackTree::attribute(uint64_t Now) {
  if (Now > Last) {
    Nodes[Cur].Self += Now - Last;
    Last = Now;
  }
}

void StackTree::finish(uint64_t Now) {
  attribute(Now);
  Cur = 0;
}

size_t StackTree::depth() const {
  size_t D = 0;
  for (uint32_t N = Cur; N != 0; N = Nodes[N].Parent)
    ++D;
  return D;
}

uint64_t StackTree::totalWeight() const {
  uint64_t W = 0;
  for (const Node &N : Nodes)
    W += N.Self;
  return W;
}

uint64_t StackTree::selfWeight(uint32_t Key) const {
  uint64_t W = 0;
  for (const Node &N : Nodes)
    if (N.Key == Key)
      W += N.Self;
  return W;
}

std::string
StackTree::folded(const std::function<std::string(uint32_t)> &Resolve,
                  const std::string &Prefix) const {
  // Build each node's frame path root-to-leaf; emit one line per node
  // with self weight. Deterministic order: node index (creation order).
  std::string Out;
  std::vector<std::string> Paths(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    if (I == 0) {
      Paths[I] = Prefix;
    } else {
      Paths[I] = Paths[N.Parent];
      Paths[I] += ';';
      Paths[I] += Resolve(N.Key);
    }
    if (N.Self != 0) {
      Out += Paths[I];
      Out += ' ';
      Out += std::to_string(N.Self);
      Out += '\n';
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

const SiteCounters *Profiler::site(uint32_t Id) const {
  auto It = Sites.find(Id);
  return It == Sites.end() ? nullptr : &It->second;
}

void Profiler::beginVm(size_t NumProtos, size_t NumOpcodes) {
  OpcodeCounts.assign(NumOpcodes, 0);
  ProtoInstrs.assign(NumProtos, 0);
}

} // namespace eal::prof

//===- Profiler.h - Allocation-site & hot-path profiler ---------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `eal::prof` profiler: the evidence layer behind the optimizer's
/// claims. Two views of one run:
///
///  * **Allocation sites.** Every cons cell carries the node id of its
///    static allocation site (ConsCell::SiteId); the heap reports each
///    birth with its storage class and each death — GC sweep, arena
///    free, or DCONS overwrite — with its lifetime measured in
///    allocation-sequence distance. Per site the profiler keeps counts
///    bucketed by storage class plus a lifetime histogram, so a report
///    can say *which source cons* produced the garbage and whether the
///    planner's stack/region/reuse claims actually fired.
///
///  * **Hot path.** An exact (not sampled) calling-context tree for
///    either engine, weighted by interpreter steps / VM instructions,
///    exportable as collapsed stacks (the `folded` flamegraph format);
///    for the VM additionally exact per-opcode and per-proto dispatch
///    counters.
///
/// The profiler is deliberately ignorant of the runtime and the AST:
/// keys are plain uint32 ids (AST node ids in the tree-walker, proto
/// indices in the VM) and callers resolve them to names at export time.
/// That keeps the dependency arrow pointing the right way — the heap and
/// both engines link against this, the report builder links against the
/// world.
///
/// Cost discipline (same as eal::obs): every producer site is guarded by
/// one profiler-pointer null check, so runs without a profiler attached
/// pay one predictable branch.
///
/// One caveat worth stating once: a DCONS overwrite re-tags the cell
/// with the dcons site but does *not* restamp ConsCell::AllocSeq (the
/// dynamic escape oracle uses the stamp as allocation identity), so the
/// lifetime recorded at the cell's final death spans from the original
/// allocation.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_PROF_PROFILER_H
#define EAL_PROF_PROFILER_H

#include "support/Metrics.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace eal::prof {

/// Storage class of one allocation, as the profiler buckets it. Mirrors
/// the runtime's CellClass (same order, same values); kept separate so
/// the runtime can depend on the profiler and not vice versa.
enum class Storage : uint8_t { Heap = 0, Stack = 1, Region = 2 };
constexpr unsigned NumStorageClasses = 3;

/// Returns "heap" / "stack" / "region".
const char *storageName(Storage S);

/// Site id of allocations with no static site (engine-internal cells,
/// tests poking the heap directly). Never collides with an AST node id.
constexpr uint32_t NoSite = 0xFFFFFFFFu;

/// What one static allocation site did at runtime.
struct SiteCounters {
  /// Births by storage class.
  uint64_t Allocs[NumStorageClasses] = {};
  /// Deaths by storage class (GC sweep for heap, arena free for
  /// stack/region). Cells still live at end of run die nowhere.
  uint64_t Deaths[NumStorageClasses] = {};
  /// DCONS re-incarnations credited to this site (it is the dcons site).
  uint64_t Reuses = 0;
  /// Cells born at this site later consumed in place by a DCONS.
  uint64_t Overwritten = 0;
  /// Allocations whose fields were demanded at least once (car/cdr/fst/
  /// snd) while tagged with this site. totalAllocs() - FirstTouches is
  /// the site's dead-cell count; the report derives the dead fraction
  /// from it (docs/LIVENESS.md). A DCONS re-tag moves future touch
  /// attribution to the dcons site, matching the liveness analysis's
  /// view of whose data the cell now holds.
  uint64_t FirstTouches = 0;
  /// Cells deopt-migrated from a speculative arena to the GC heap
  /// (docs/SPECULATION.md). A migrated cell's birth stays in Allocs under
  /// its original storage class; its eventual death is a heap death.
  uint64_t Migrated = 0;
  /// Allocation-sequence distance from birth to death (all death kinds).
  obs::Histogram Lifetime;

  uint64_t totalAllocs() const {
    return Allocs[0] + Allocs[1] + Allocs[2];
  }
  uint64_t totalDeaths() const {
    return Deaths[0] + Deaths[1] + Deaths[2];
  }
};

/// An exact calling-context tree with an incremental cursor: push /
/// replace / pop mirror the engine's activation stack, and attribute()
/// charges elapsed weight (steps, instructions) to the node the cursor
/// is on. Keys are caller-defined uint32 ids; RootKey is reserved for
/// the synthetic root (top-level evaluation outside any activation).
class StackTree {
public:
  static constexpr uint32_t RootKey = 0xFFFFFFFFu;

  StackTree();

  void push(uint32_t Key);
  /// Tail call: the current node's frame is replaced, so the new key
  /// becomes a *sibling* (child of the current node's parent), exactly
  /// matching the engine's O(1)-frame semantics.
  void replace(uint32_t Key);
  void pop();
  /// Charges Now - (last attributed clock) to the current node.
  void attribute(uint64_t Now);
  /// attribute(Now), then unwind the cursor to the root (end of run or
  /// abandoned frames after a runtime error).
  void finish(uint64_t Now);

  size_t depth() const;
  size_t nodeCount() const { return Nodes.size(); }
  uint64_t totalWeight() const;
  /// Self weight accumulated on nodes keyed \p Key (summed over all
  /// contexts).
  uint64_t selfWeight(uint32_t Key) const;

  /// Collapsed-stack export: one "root;a;b;c weight" line per node with
  /// non-zero self weight, names resolved by \p Resolve, every line
  /// prefixed with \p Prefix (typically the engine name). This is the
  /// `folded` format of standard flamegraph tooling.
  std::string folded(const std::function<std::string(uint32_t)> &Resolve,
                     const std::string &Prefix) const;

private:
  struct Node {
    uint32_t Key;
    uint32_t Parent; ///< index into Nodes; root points at itself
    uint64_t Self = 0;
    std::unordered_map<uint32_t, uint32_t> Children; ///< key -> node index
  };

  uint32_t childOf(uint32_t NodeIdx, uint32_t Key);

  std::vector<Node> Nodes;
  uint32_t Cur = 0;
  uint64_t Last = 0;
};

/// One engine run's profile. Attach via Interpreter::Options::Profiler or
/// Vm::Options::Profiler (which also hands it to the Heap); one Profiler
/// instance profiles one run of one engine.
class Profiler {
public:
  //===--- Allocation sites (fed by Heap and the DCONS hooks) ------------==//

  void siteAlloc(uint32_t Site, Storage S) {
    ++Sites[Site].Allocs[static_cast<unsigned>(S)];
  }
  void siteDeath(uint32_t Site, Storage S, uint64_t Lifetime) {
    SiteCounters &SC = Sites[Site];
    ++SC.Deaths[static_cast<unsigned>(S)];
    SC.Lifetime.record(Lifetime);
  }
  /// DCONS overwrote a cell born at \p OldSite; the reuse is credited to
  /// \p NewSite (the dcons site) and the overwritten allocation's
  /// lifetime recorded against the old one.
  void siteReuse(uint32_t NewSite, uint32_t OldSite, uint64_t Lifetime) {
    ++Sites[NewSite].Reuses;
    SiteCounters &Old = Sites[OldSite];
    ++Old.Overwritten;
    Old.Lifetime.record(Lifetime);
  }
  /// First demand on a cell currently tagged with \p Site.
  void siteFirstTouch(uint32_t Site) { ++Sites[Site].FirstTouches; }
  /// A cell born at \p Site was deopt-migrated from a speculative arena
  /// to the GC heap (Heap::migrateArenaToHeap).
  void siteMigrated(uint32_t Site) { ++Sites[Site].Migrated; }

  const std::unordered_map<uint32_t, SiteCounters> &sites() const {
    return Sites;
  }
  /// Looks a site up without creating it (null when never seen).
  const SiteCounters *site(uint32_t Id) const;

  //===--- Hot path: activation transitions ------------------------------==//
  //
  // The tree-walker advances the clock explicitly (its weight unit is
  // RuntimeStats::Steps); the VM advances it one tick per dispatched
  // instruction via countVmStep.

  void clockTo(uint64_t Now) { Ticks = Now; }
  uint64_t clock() const { return Ticks; }

  void framePushed(uint32_t Key) {
    Tree.attribute(Ticks);
    Tree.push(Key);
    ++CallsByKey[Key];
  }
  void frameReplaced(uint32_t Key) {
    Tree.attribute(Ticks);
    Tree.replace(Key);
    ++CallsByKey[Key];
  }
  void framePopped() {
    Tree.attribute(Ticks);
    Tree.pop();
  }
  /// End of run: attribute the tail and unwind (frames abandoned by a
  /// runtime error included).
  void finish() { Tree.finish(Ticks); }

  const StackTree &stacks() const { return Tree; }
  const std::unordered_map<uint32_t, uint64_t> &calls() const {
    return CallsByKey;
  }

  //===--- Hot path: VM dispatch counters --------------------------------==//

  /// Sizes the exact per-opcode / per-proto tables; call once before the
  /// VM run (the VM constructor does).
  void beginVm(size_t NumProtos, size_t NumOpcodes);
  bool vmProfile() const { return !OpcodeCounts.empty(); }

  void countVmStep(uint8_t Op, uint32_t ProtoIdx) {
    ++Ticks;
    ++OpcodeCounts[Op];
    ++ProtoInstrs[ProtoIdx];
  }

  const std::vector<uint64_t> &opcodeCounts() const { return OpcodeCounts; }
  const std::vector<uint64_t> &protoInstrs() const { return ProtoInstrs; }

private:
  std::unordered_map<uint32_t, SiteCounters> Sites;

  StackTree Tree;
  uint64_t Ticks = 0;
  std::unordered_map<uint32_t, uint64_t> CallsByKey;

  std::vector<uint64_t> OpcodeCounts; ///< sized by beginVm (VM runs only)
  std::vector<uint64_t> ProtoInstrs;
};

} // namespace eal::prof

#endif // EAL_PROF_PROFILER_H

//===- ExecutionObserver.h - Interpreter instrumentation hooks --*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Callbacks the tree-walking interpreter exposes to dynamic checkers.
/// The interface lives in the runtime (not in eal::check) so the
/// interpreter never depends on a particular checker; the dynamic escape
/// oracle (src/check/Oracle.h) is the one production implementation.
///
/// The interpreter guarantees strict bracketing: every activationEntered
/// is matched by exactly one activationExited (with a null result when
/// the body's evaluation failed), in LIFO order. Both hooks fire while
/// the activation's frame is still a GC root, so values passed to the
/// observer cannot be swept during the callback.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_EXECUTIONOBSERVER_H
#define EAL_RUNTIME_EXECUTIONOBSERVER_H

#include "runtime/RtValue.h"

#include <span>
#include <string>

namespace eal {

class AppExpr;
class LambdaExpr;

/// Observes allocations and user-closure activations during one
/// Interpreter run. All hooks default to no-ops.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver() = default;

  /// \p Cell just came off the free list for static cons site \p SiteId
  /// (the AppExpr id of the cons/pair application, or the PrimExpr id
  /// when a primitive *value* allocated it). The cell's Class and
  /// AllocSeq fields are already final.
  virtual void cellAllocated(const ConsCell *Cell, uint32_t SiteId) {
    (void)Cell;
    (void)SiteId;
  }

  /// A field of \p Cell was demanded: car/cdr on a cons, fst/snd on a
  /// pair. \p NowSeq is the heap's current allocation stamp, so the
  /// liveness oracle (src/check/LiveOracle.h) can record per-cell
  /// last-touch times in AllocSeq units. A null/tag test (null p) is
  /// *not* a touch, and neither is a DCONS overwrite: liveness counts
  /// reads of the data, not existence checks or recycling.
  virtual void cellTouched(const ConsCell *Cell, uint64_t NowSeq) {
    (void)Cell;
    (void)NowSeq;
  }

  /// A user-closure body is about to be evaluated. \p CallSite is the
  /// outermost AppExpr of the originating call spine when \p Fn was the
  /// spine's direct callee (the case static per-call verdicts attach
  /// to), null for activations reached through returned closures or
  /// partial applications. \p Args are the argument values this
  /// activation consumed, in parameter order.
  virtual void activationEntered(const LambdaExpr *Fn, const AppExpr *CallSite,
                                 std::span<const RtValue> Args) {
    (void)Fn;
    (void)CallSite;
    (void)Args;
  }

  /// The matching activation finished. \p Result is its value, or null
  /// when the body's evaluation failed and the interpreter is
  /// unwinding. Fires *before* the activation's arenas are reclaimed,
  /// so arena-class cells are still inspectable. Returning false aborts
  /// evaluation; the interpreter reports abortReason() as a diagnostic.
  virtual bool activationExited(const RtValue *Result) {
    (void)Result;
    return true;
  }

  /// The diagnostic message used when activationExited returns false.
  virtual std::string abortReason() const {
    return "execution observer aborted evaluation";
  }
};

} // namespace eal

#endif // EAL_RUNTIME_EXECUTIONOBSERVER_H

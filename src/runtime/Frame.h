//===- Frame.h - environment frames and closures ----------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Environment frames and function values, shared by the tree-walking
/// interpreter and the bytecode VM. Frames are reference-counted; letrec
/// frames form closure cycles and are reclaimed by their owning engine.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_FRAME_H
#define EAL_RUNTIME_FRAME_H

#include "lang/Ast.h"
#include "runtime/RtValue.h"

#include <memory>
#include <utility>
#include <vector>

namespace eal {

/// One lexical environment frame.
struct EnvFrame {
  std::shared_ptr<EnvFrame> Parent;
  std::vector<std::pair<Symbol, RtValue>> Slots;
  /// Mark epoch for GC tracing (avoids revisiting shared frames).
  uint64_t MarkEpoch = 0;

  RtValue *find(Symbol Name) {
    for (auto &Slot : Slots)
      if (Slot.first == Name)
        return &Slot.second;
    return nullptr;
  }
};

using EnvPtr = std::shared_ptr<EnvFrame>;

/// A runtime function value: a user closure (interpreter: Lambda set;
/// VM: ProtoIdx >= 0) or a (possibly partially applied) primitive.
struct RtClosure {
  const LambdaExpr *Lambda = nullptr;
  /// Compiled-code closures reference a proto of the running chunk.
  int32_t ProtoIdx = -1;
  EnvPtr Env;

  bool IsPrim = false;
  PrimOp Op = PrimOp::Add;
  /// Static node id of the prim occurrence (cons sites key allocation
  /// decisions; 0 when the primitive travelled as a value).
  uint32_t PrimNodeId = 0;
  std::vector<RtValue> Partial;
};

} // namespace eal

#endif // EAL_RUNTIME_FRAME_H

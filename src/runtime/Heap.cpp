//===- Heap.cpp -----------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "obs/Recorder.h"
#include "prof/Profiler.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>

using namespace eal;

namespace {

/// CellClass -> profiler storage class (same order by construction).
prof::Storage storageOf(CellClass Class) {
  return static_cast<prof::Storage>(Class);
}

} // namespace

//===----------------------------------------------------------------------===//
// Marker
//===----------------------------------------------------------------------===//

void Marker::value(RtValue V) {
  Work.push_back(V);
  drain();
}

void Marker::drain() {
  while (!Work.empty()) {
    RtValue V = Work.back();
    Work.pop_back();
    if (V.isCons() || V.isPair()) {
      ConsCell *Cell = V.cell();
      if (Cell->Mark)
        continue;
      Cell->Mark = true;
      ++H.Stats.CellsMarked;
      // Dead-site prune (setDeadSites): the cell itself survives — it
      // is reachable — but the analysis claims no one will ever demand
      // its fields, so nothing reachable only through them needs to.
      if (H.DeadSites && H.DeadSites->count(baseSiteId(Cell->SiteId)))
          [[unlikely]] {
        ++H.PrunedDeadCells;
        continue;
      }
      Work.push_back(Cell->Car);
      Work.push_back(Cell->Cdr);
      continue;
    }
    if (V.isClosure() && H.TraceClosure) {
      // The tracer may call value() reentrantly; that is fine, the
      // worklist absorbs it.
      H.TraceClosure(V.closure(), *this);
    }
  }
}

//===----------------------------------------------------------------------===//
// Pool management
//===----------------------------------------------------------------------===//

Heap::Heap(RuntimeStats &Stats) : Heap(Stats, Options()) {}

Heap::Heap(RuntimeStats &Stats, Options Opts) : Stats(Stats), Opts(Opts) {
  growPool(Opts.InitialCapacity);
}

void Heap::growPool(size_t MinCells) {
  size_t Size = MinCells == 0 ? 1024 : MinCells;
  auto Slab = std::make_unique<ConsCell[]>(Size);
  for (size_t I = 0; I != Size; ++I) {
    Slab[I].State = CellState::Free;
    Slab[I].Next = FreeList;
    FreeList = &Slab[I];
  }
  Slabs.push_back(std::move(Slab));
  SlabSizes.push_back(Size);
  Capacity += Size;
}

ConsCell *Heap::popFree(CellClass Class, uint32_t SiteId) {
  ConsCell *Cell = FreeList;
  if (!Cell)
    return nullptr;
  FreeList = Cell->Next;
  Cell->Car = RtValue::makeNil();
  Cell->Cdr = RtValue::makeNil();
  Cell->Next = nullptr;
  Cell->AllocSeq = ++NextAllocSeq;
  Cell->SiteId = SiteId;
  Cell->Class = Class;
  Cell->State = CellState::Live;
  Cell->Mark = false;
  Cell->Touched = false;
  return Cell;
}

ConsCell *Heap::allocateHeap(uint32_t SiteId) {
  ConsCell *Cell = popFree(CellClass::Heap, SiteId);
  if (!Cell) {
    collect();
    // Grow if the collection recovered too little to make progress.
    size_t FreeCells = 0;
    for (ConsCell *F = FreeList; F && FreeCells < Capacity; F = F->Next)
      ++FreeCells;
    if (FreeCells <
        static_cast<size_t>(static_cast<double>(Capacity) *
                            Opts.GrowthTrigger)) {
      if (Opts.AllowGrowth) {
        growPool(Capacity); // double
        ++Stats.HeapGrowths;
        obs::rec::emit(obs::rec::RecKind::HeapGrow, Capacity);
      } else if (FreeCells == 0) {
        return nullptr;
      }
    }
    Cell = popFree(CellClass::Heap, SiteId);
    if (!Cell)
      return nullptr;
  }
  ++Stats.HeapCellsAllocated;
  ++LiveHeap;
  if (LiveHeap > Stats.PeakLiveHeapCells)
    Stats.PeakLiveHeapCells = LiveHeap;
  if (Prof) [[unlikely]]
    Prof->siteAlloc(SiteId, prof::Storage::Heap);
  if (obs::rec::cells()) [[unlikely]]
    obs::rec::emit(obs::rec::RecKind::CellBirth, Cell->AllocSeq, Cell->SiteId,
                   static_cast<uint32_t>(CellClass::Heap));
  return Cell;
}

//===----------------------------------------------------------------------===//
// Arenas
//===----------------------------------------------------------------------===//

size_t Heap::createArena() {
  size_t Handle;
  if (!FreeArenaSlots.empty()) {
    Handle = FreeArenaSlots.back();
    FreeArenaSlots.pop_back();
    Arenas[Handle] = CellArena();
  } else {
    Handle = Arenas.size();
    Arenas.emplace_back();
  }
  Arenas[Handle].Live = true;
  obs::rec::emit(obs::rec::RecKind::ArenaOpen, Handle);
  return Handle;
}

ConsCell *Heap::allocateInArena(size_t Handle, CellClass Class,
                                uint32_t SiteId, bool Speculative) {
  assert(Handle < Arenas.size() && Arenas[Handle].Live && "stale arena");
  assert(Class != CellClass::Heap && "heap cells do not live in arenas");
  ConsCell *Cell =
      popFree(Class, Speculative ? SiteId | SpecSiteBit : SiteId);
  if (!Cell) {
    // Arena cells are never collected, so collection cannot help unless
    // heap garbage exists; try it, then grow.
    collect();
    Cell = popFree(Class, SiteId);
    if (!Cell) {
      if (!Opts.AllowGrowth)
        return nullptr;
      growPool(Capacity);
      ++Stats.HeapGrowths;
      obs::rec::emit(obs::rec::RecKind::HeapGrow, Capacity);
      Cell = popFree(Class, SiteId);
      if (!Cell)
        return nullptr;
    }
  }
  CellArena &A = Arenas[Handle];
  Cell->Next = nullptr;
  if (A.Tail) {
    A.Tail->Next = Cell;
    A.Tail = Cell;
  } else {
    A.Head = A.Tail = Cell;
  }
  ++A.Count;
  if (Class == CellClass::Stack) {
    ++A.StackCells;
    ++Stats.StackCellsAllocated;
  } else {
    ++A.RegionCells;
    ++Stats.RegionCellsAllocated;
  }
  if (Prof) [[unlikely]]
    Prof->siteAlloc(SiteId, storageOf(Class));
  if (obs::rec::cells()) [[unlikely]]
    obs::rec::emit(obs::rec::RecKind::CellBirth, Cell->AllocSeq, Cell->SiteId,
                   static_cast<uint32_t>(Class));
  return Cell;
}

void Heap::profileArenaDeaths(const CellArena &A) {
  // The one place profiling gives up freeArena's O(1): each cell's site
  // and age are per-cell facts, so the chain must be walked. Only runs
  // with a profiler attached.
  for (ConsCell *Cell = A.Head; Cell; Cell = Cell->Next)
    Prof->siteDeath(baseSiteId(Cell->SiteId), storageOf(Cell->Class),
                    NextAllocSeq - Cell->AllocSeq);
}

void Heap::freeArena(size_t Handle) {
  assert(Handle < Arenas.size() && Arenas[Handle].Live && "stale arena");
  CellArena &A = Arenas[Handle];
  if (Prof) [[unlikely]]
    profileArenaDeaths(A);
  if (obs::rec::cells()) [[unlikely]] {
    // Per-cell deaths cost the same walk profiling does; only the
    // detail tier pays it. Must precede the splice below.
    for (ConsCell *Cell = A.Head; Cell; Cell = Cell->Next)
      obs::rec::emit(obs::rec::RecKind::CellDeath, Cell->AllocSeq,
                     Cell->SiteId,
                     obs::rec::deathPayload(
                         static_cast<uint8_t>(Cell->Class),
                         obs::rec::DeathByArenaFree));
  }
  if (A.Head) {
    // O(1) block reclamation: splice the whole chain onto the free list
    // without visiting the list structure. Cells are re-initialized on
    // reallocation, so their stale contents are harmless.
    A.Tail->Next = FreeList;
    FreeList = A.Head;
  }
  if (A.StackCells) {
    ++Stats.StackArenaFrees;
    Stats.StackCellsFreed += A.StackCells;
  }
  if (A.RegionCells) {
    ++Stats.RegionBulkFrees;
    Stats.RegionCellsFreed += A.RegionCells;
  }
  if (A.StackCells || A.RegionCells)
    obs::rec::emit(obs::rec::RecKind::ArenaFree, A.StackCells, A.RegionCells,
                   static_cast<uint32_t>(Handle));
  if (obs::enabled()) [[unlikely]] {
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry &Reg = obs::globalMetrics();
      if (A.StackCells)
        Reg.histogram("heap.arena.stack_cells_per_free")
            .record(A.StackCells);
      if (A.RegionCells)
        Reg.histogram("heap.arena.region_cells_per_free")
            .record(A.RegionCells);
    }
    if (obs::streamEnabled()) {
      if (A.StackCells)
        obs::instant("stack.arena_free", "arena",
                     {{"cells", std::to_string(A.StackCells)}});
      if (A.RegionCells)
        obs::instant("region.bulk_free", "arena",
                     {{"cells", std::to_string(A.RegionCells)}});
    }
  }
  A = CellArena();
  FreeArenaSlots.push_back(Handle);
}

size_t Heap::migrateArenaToHeap(size_t Handle) {
  assert(Handle < Arenas.size() && Arenas[Handle].Live && "stale arena");
  CellArena &A = Arenas[Handle];
  size_t Migrated = A.Count;
  const bool RecCells = obs::rec::cells();
  ConsCell *Cell = A.Head;
  while (Cell) {
    ConsCell *Next = Cell->Next;
    if (RecCells) [[unlikely]]
      obs::rec::emit(obs::rec::RecKind::CellMigrate, Cell->AllocSeq,
                     baseSiteId(Cell->SiteId),
                     static_cast<uint32_t>(Cell->Class));
    // The cell becomes an ordinary GC-heap resident: Next is a free-list/
    // arena-chain link and heap cells use neither. AllocSeq is preserved
    // — the oracle's (pointer, stamp) identity must survive deopt.
    Cell->Next = nullptr;
    Cell->Class = CellClass::Heap;
    Cell->SiteId = baseSiteId(Cell->SiteId);
    ++LiveHeap;
    if (LiveHeap > Stats.PeakLiveHeapCells)
      Stats.PeakLiveHeapCells = LiveHeap;
    if (Prof) [[unlikely]]
      Prof->siteMigrated(Cell->SiteId);
    Cell = Next;
  }
  // Empty the chain: the owning activation still frees this arena on
  // exit, and that free must reclaim nothing (the conditional counters
  // in freeArena then stay untouched too).
  A.Head = A.Tail = nullptr;
  A.Count = A.StackCells = A.RegionCells = 0;
  return Migrated;
}

bool Heap::arenaIsReachable(size_t Handle) {
  assert(Handle < Arenas.size() && Arenas[Handle].Live && "stale arena");
  if (!Roots)
    return false;
  // Mark from roots, then check whether any cell of this arena is marked.
  // Statistics are not charged for validation runs.
  uint64_t SavedMarked = Stats.CellsMarked;
  markPhase(/*IncludeArenas=*/true, /*ExcludeHandle=*/Handle);
  bool Reachable = false;
  for (ConsCell *Cell = Arenas[Handle].Head; Cell; Cell = Cell->Next)
    if (Cell->Mark) {
      Reachable = true;
      break;
    }
  clearMarks();
  Stats.CellsMarked = SavedMarked;
  return Reachable;
}

//===----------------------------------------------------------------------===//
// Collection
//===----------------------------------------------------------------------===//

void Heap::markPhase(bool IncludeArenas, size_t ExcludeHandle) {
  Marker M(*this);
  if (Roots)
    Roots(M);
  if (!IncludeArenas)
    return;
  // Cells in live arenas are alive by construction until their activation
  // pops; anything they reference must survive.
  for (size_t H = 0; H != Arenas.size(); ++H) {
    if (H == ExcludeHandle)
      continue;
    const CellArena &A = Arenas[H];
    if (!A.Live)
      continue;
    for (ConsCell *Cell = A.Head; Cell; Cell = Cell->Next) {
      Cell->Mark = true;
      if (DeadSites && DeadSites->count(baseSiteId(Cell->SiteId)))
          [[unlikely]] {
        ++PrunedDeadCells;
        continue;
      }
      M.value(Cell->Car);
      M.value(Cell->Cdr);
    }
  }
}

void Heap::clearMarks() {
  for (size_t S = 0; S != Slabs.size(); ++S)
    for (size_t I = 0; I != SlabSizes[S]; ++I)
      Slabs[S][I].Mark = false;
}

void Heap::collect() {
  ++Stats.GcRuns;
  // Capture before-counters so the GC events can report this run's work.
  const bool Obs = obs::enabled() || obs::rec::on();
  const uint64_t MarkedBefore = Obs ? Stats.CellsMarked : 0;
  const uint64_t SweptBefore = Obs ? Stats.CellsSwept : 0;
  const int64_t StartUs = Obs ? obs::nowMicros() : 0;
  const bool RecCells = obs::rec::cells();
  obs::rec::emit(obs::rec::RecKind::GcBegin, LiveHeap, Capacity);

  markPhase(/*IncludeArenas=*/true, /*ExcludeHandle=*/SIZE_MAX);
  // Sweep: only heap-class cells are individually reclaimed.
  for (size_t S = 0; S != Slabs.size(); ++S) {
    for (size_t I = 0; I != SlabSizes[S]; ++I) {
      ConsCell &Cell = Slabs[S][I];
      ++Stats.CellsScannedBySweep;
      if (Cell.State == CellState::Live && Cell.Class == CellClass::Heap &&
          !Cell.Mark) {
        if (Prof) [[unlikely]]
          Prof->siteDeath(baseSiteId(Cell.SiteId), prof::Storage::Heap,
                          NextAllocSeq - Cell.AllocSeq);
        if (RecCells) [[unlikely]]
          obs::rec::emit(obs::rec::RecKind::CellDeath, Cell.AllocSeq,
                         Cell.SiteId,
                         obs::rec::deathPayload(
                             static_cast<uint8_t>(CellClass::Heap),
                             obs::rec::DeathBySweep));
        Cell.State = CellState::Free;
        Cell.Car = RtValue::makeNil();
        Cell.Cdr = RtValue::makeNil();
        Cell.Next = FreeList;
        FreeList = &Cell;
        ++Stats.CellsSwept;
        assert(LiveHeap > 0 && "sweep underflow");
        --LiveHeap;
      }
      Cell.Mark = false;
    }
  }

  if (Obs) [[unlikely]] {
    const int64_t PauseUs = obs::nowMicros() - StartUs;
    const uint64_t Marked = Stats.CellsMarked - MarkedBefore;
    const uint64_t Swept = Stats.CellsSwept - SweptBefore;
    obs::rec::emit(obs::rec::RecKind::GcEnd, Marked, Swept,
                   static_cast<uint32_t>(LiveHeap));
    if (obs::metricsEnabled()) {
      obs::MetricsRegistry &Reg = obs::globalMetrics();
      Reg.histogram("heap.gc.pause_us")
          .record(static_cast<uint64_t>(PauseUs));
      Reg.histogram("heap.gc.swept_cells_per_run").record(Swept);
    }
    if (obs::streamEnabled()) {
      // Aggregate-initialized in place: GCC 12's -Wmaybe-uninitialized
      // misfires on member-by-member assignment at -O2.
      obs::TraceEvent E{"gc.collect",
                        "gc",
                        'X',
                        StartUs,
                        PauseUs,
                        0,
                        0,
                        {{"marked", std::to_string(Marked)},
                         {"swept", std::to_string(Swept)},
                         {"live", std::to_string(LiveHeap)},
                         {"capacity", std::to_string(Capacity)}}};
      obs::record(std::move(E));
    }
  }
}

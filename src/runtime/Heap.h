//===- Heap.h - Cons-cell heap with mark-sweep GC and arenas ----*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The storage manager the optimizations act on. Cons cells come from a
/// slab pool with a free list. Heap-class cells are reclaimed by
/// mark-sweep collection; Stack- and Region-class cells live in *arenas*
/// owned by activations and are reclaimed wholesale:
///
///  * a Stack arena models allocation in an activation record (A.3.1);
///  * a Region models the Ruggieri–Murtagh "local heap" (A.3.3): the
///    whole block is spliced back onto the free list in O(1), with no
///    traversal of the list structure.
///
/// The mark phase traverses cons cells itself; closures (whose
/// environments the heap knows nothing about) are traced through a
/// callback installed by the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_HEAP_H
#define EAL_RUNTIME_HEAP_H

#include "runtime/RtValue.h"
#include "runtime/RuntimeStats.h"

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

namespace eal {

namespace prof {
class Profiler;
}

/// Marks values during collection. Cons-cell traversal is iterative (long
/// spines must not overflow the C++ stack); closures are delegated to the
/// interpreter-installed tracer.
class Marker {
public:
  /// Marks \p V and everything reachable from it.
  void value(RtValue V);

private:
  friend class Heap;
  explicit Marker(class Heap &H) : H(H) {}
  void drain();

  Heap &H;
  std::vector<RtValue> Work;
};

/// A chain of cells owned by one activation.
class CellArena {
public:
  bool empty() const { return Head == nullptr; }
  size_t cellCount() const { return Count; }

private:
  friend class Heap;
  ConsCell *Head = nullptr;
  ConsCell *Tail = nullptr;
  size_t Count = 0;
  size_t StackCells = 0;
  size_t RegionCells = 0;
  bool Live = false;
};

/// The cell pool, free list, garbage collector, and arena registry.
class Heap {
public:
  struct Options {
    /// Initial pool size in cells.
    size_t InitialCapacity = 1 << 14;
    /// Whether the pool may grow when collection frees too little; when
    /// false, exhaustion makes allocation return null.
    bool AllowGrowth = true;
    /// Grow when a collection frees less than this fraction of capacity.
    double GrowthTrigger = 0.2;
  };

  /// Scans the interpreter's roots, marking each root value.
  using RootScanner = std::function<void(Marker &)>;
  /// Traces one closure's environment (marking the values it captures).
  using ClosureTracer = std::function<void(const RtClosure *, Marker &)>;

  explicit Heap(RuntimeStats &Stats);
  Heap(RuntimeStats &Stats, Options Opts);

  void setRootScanner(RootScanner Scanner) { Roots = std::move(Scanner); }
  void setClosureTracer(ClosureTracer Tracer) {
    TraceClosure = std::move(Tracer);
  }

  /// Attaches the allocation-site profiler (null detaches). While set,
  /// every birth and death (sweep, arena free) is reported with its
  /// ConsCell::SiteId and storage class.
  void setProfiler(prof::Profiler *P) { Prof = P; }

  /// The next AllocSeq stamp to be issued; `allocSeq() - Cell.AllocSeq`
  /// is a cell's age in allocations (the profiler's lifetime unit).
  uint64_t allocSeq() const { return NextAllocSeq; }

  /// Installs the liveness analysis's dead-site set (null detaches).
  /// While set, the mark phase treats a cell whose SiteId is in the set
  /// as a leaf: the cell itself stays live (it is still reachable), but
  /// its fields are not traced, so data only reachable through
  /// never-demanded allocations is reclaimed (docs/LIVENESS.md). Safe
  /// even if the analysis were wrong about reads-after-prune: slabs are
  /// never returned to the allocator and swept cells are reset to nil.
  /// The set is not owned and must outlive the heap's use of it.
  void setDeadSites(const std::unordered_set<uint32_t> *Sites) {
    DeadSites = Sites;
  }

  /// Cells whose children the mark phase skipped because their SiteId
  /// was claimed dead (`setDeadSites`). Kept out of RuntimeStats so the
  /// default-off feature cannot perturb counter-parity or bench JSON.
  uint64_t prunedDeadCells() const { return PrunedDeadCells; }

  /// Allocates a garbage-collected heap cell, collecting (and possibly
  /// growing) as needed. Returns null only when growth is disabled and
  /// everything is live. \p SiteId tags the cell's static allocation
  /// site for profiling.
  ConsCell *allocateHeap(uint32_t SiteId = 0xFFFFFFFFu);

  //===--- Arenas ----------------------------------------------------------==//

  /// Opens a new arena. The handle stays valid until freeArena.
  size_t createArena();

  /// Allocates a cell of \p Class (Stack or Region) into arena \p Handle.
  /// \p Speculative tags the cell with SpecSiteBit: it was placed by a
  /// speculative directive (src/spec) and may be migrated to the GC heap
  /// by migrateArenaToHeap if the speculation's guard fails.
  ConsCell *allocateInArena(size_t Handle, CellClass Class,
                            uint32_t SiteId = 0xFFFFFFFFu,
                            bool Speculative = false);

  /// The deopt path (docs/SPECULATION.md): re-homes every cell of the
  /// still-live arena \p Handle onto the GC heap. Each cell keeps its
  /// AllocSeq — the (pointer, stamp) identity the dynamic oracle tracks —
  /// while its storage class becomes Heap and its SiteId is re-tagged to
  /// the base site (SpecSiteBit cleared), so profiler and oracle
  /// attribution stay exact. The arena's chain is emptied: the owning
  /// activation's eventual freeArena reclaims nothing, and the migrated
  /// cells live on until mark-sweep proves them dead. Returns the number
  /// of cells migrated.
  size_t migrateArenaToHeap(size_t Handle);

  /// Reclaims the whole arena: its chain is spliced onto the free list
  /// without visiting the list structure. Statistics record stack and
  /// region cells separately.
  void freeArena(size_t Handle);

  /// Debug validation: true if any cell of arena \p Handle is reachable
  /// from the current roots *excluding* arena chains themselves. Used to
  /// detect unsafe allocation plans before freeing.
  bool arenaIsReachable(size_t Handle);

  //===--- Collection -------------------------------------------------------==//

  /// Runs a full mark-sweep collection.
  void collect();

  size_t liveHeapCells() const { return LiveHeap; }
  size_t capacity() const { return Capacity; }

private:
  friend class Marker;

  void growPool(size_t MinCells);
  void markPhase(bool IncludeArenas, size_t ExcludeHandle);
  void clearMarks();

  RuntimeStats &Stats;
  Options Opts;
  RootScanner Roots;
  ClosureTracer TraceClosure;
  prof::Profiler *Prof = nullptr;
  const std::unordered_set<uint32_t> *DeadSites = nullptr;
  uint64_t PrunedDeadCells = 0;

  std::vector<std::unique_ptr<ConsCell[]>> Slabs;
  std::vector<size_t> SlabSizes;
  ConsCell *FreeList = nullptr;
  size_t Capacity = 0;
  size_t LiveHeap = 0;
  /// Source of ConsCell::AllocSeq stamps (see RtValue.h).
  uint64_t NextAllocSeq = 0;

  std::vector<CellArena> Arenas;
  std::vector<size_t> FreeArenaSlots;

  /// Pops a cell off the free list (null if empty) and initializes it.
  ConsCell *popFree(CellClass Class, uint32_t SiteId);

  /// Reports every cell of \p A to the profiler as dead (called before
  /// the O(1) splice in freeArena, and only when a profiler is set).
  void profileArenaDeaths(const CellArena &A);
};

} // namespace eal

#endif // EAL_RUNTIME_HEAP_H

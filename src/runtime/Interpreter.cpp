//===- Interpreter.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "prof/Profiler.h"
#include "runtime/ExecutionObserver.h"
#include "runtime/PrimOps.h"
#include "runtime/SpecHooks.h"
#include "runtime/ValuePrinter.h"

#include "lang/AstUtils.h"
#include "obs/Recorder.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <cassert>
#include <pthread.h>
#include <sstream>

using namespace eal;

namespace {

/// Restores the shadow stack to its entry size (rooted temporaries).
class ShadowGuard {
public:
  ShadowGuard(std::vector<RtValue> &Stack) : Stack(Stack), Mark(Stack.size()) {}
  ~ShadowGuard() { Stack.resize(Mark); }
  void push(RtValue V) { Stack.push_back(V); }

private:
  std::vector<RtValue> &Stack;
  size_t Mark;
};

/// Keeps an environment frame registered as a GC root.
class FrameGuard {
public:
  FrameGuard(std::vector<EnvFrame *> &Frames, EnvFrame *Frame)
      : Frames(Frames) {
    Frames.push_back(Frame);
  }
  ~FrameGuard() { Frames.pop_back(); }

private:
  std::vector<EnvFrame *> &Frames;
};

} // namespace

Interpreter::Interpreter(const AstContext &Ast, const TypedProgram &Program,
                         const AllocationPlan *Plan, DiagnosticEngine &Diags)
    : Interpreter(Ast, Program, Plan, Diags, Options()) {}

Interpreter::Interpreter(const AstContext &Ast, const TypedProgram &Program,
                         const AllocationPlan *Plan, DiagnosticEngine &Diags,
                         Options Opts)
    : Ast(Ast), Program(Program), Plan(Plan), Diags(Diags), Opts(Opts),
      TheHeap(Stats, Heap::Options{Opts.HeapCapacity, Opts.AllowHeapGrowth,
                                   0.2}) {
  TheHeap.setRootScanner([this](Marker &M) {
    ++MarkEpoch;
    for (RtValue V : ShadowStack)
      M.value(V);
    for (EnvFrame *Frame : ActiveFrames) {
      for (EnvFrame *F = Frame; F && F->MarkEpoch != MarkEpoch;
           F = F->Parent.get()) {
        F->MarkEpoch = MarkEpoch;
        for (auto &Slot : F->Slots)
          M.value(Slot.second);
      }
    }
  });
  TheHeap.setClosureTracer([this](const RtClosure *C, Marker &M) {
    for (RtValue V : C->Partial)
      M.value(V);
    for (EnvFrame *F = C->Env.get(); F && F->MarkEpoch != MarkEpoch;
         F = F->Parent.get()) {
      F->MarkEpoch = MarkEpoch;
      for (auto &Slot : F->Slots)
        M.value(Slot.second);
    }
  });
  TheHeap.setProfiler(Opts.Profiler);
}

Interpreter::~Interpreter() {
  // Letrec frames participate in reference cycles with their closures;
  // break them explicitly so the shared_ptr graph tears down.
  for (const EnvPtr &Frame : LetrecFrames)
    Frame->Slots.clear();
  for (const std::unique_ptr<RtClosure> &C : Closures)
    C->Env.reset();
}

bool Interpreter::error(SourceLoc Loc, std::string Message) {
  if (!Failed)
    Diags.error(Loc, std::move(Message));
  Failed = true;
  return false;
}

bool Interpreter::fuel(const Expr *E) {
  if (++Stats.Steps <= Opts.MaxSteps)
    return true;
  return error(E->loc(), "evaluation exceeded the step budget");
}

RtClosure *Interpreter::newClosure() {
  Closures.push_back(std::make_unique<RtClosure>());
  ++Stats.ClosuresCreated;
  return Closures.back().get();
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

ConsCell *Interpreter::allocateConsCell(uint32_t SiteId) {
  auto Observed = [&](ConsCell *Cell) {
    if (Cell && Opts.Observer)
      Opts.Observer->cellAllocated(Cell, SiteId);
    return Cell;
  };
  // Innermost active arena claiming this site wins (tightest lifetime).
  for (auto It = ArenaStack.rbegin(); It != ArenaStack.rend(); ++It) {
    auto SiteIt = It->Directive->Sites.find(SiteId);
    if (SiteIt == It->Directive->Sites.end())
      continue;
    CellClass Class = SiteIt->second == ArenaSiteClass::Stack
                          ? CellClass::Stack
                          : CellClass::Region;
    return Observed(TheHeap.allocateInArena(It->Handle, Class, SiteId,
                                            It->Directive->SpecIndex >= 0));
  }
  return Observed(TheHeap.allocateHeap(SiteId));
}

//===----------------------------------------------------------------------===//
// Primitives
//===----------------------------------------------------------------------===//

std::optional<RtValue>
Interpreter::evalPrimCall(PrimOp Op, uint32_t SiteId,
                          const std::vector<RtValue> &Args) {
  PrimOpsHooks Hooks;
  Hooks.AllocateCell = [this](uint32_t Site) { return allocateConsCell(Site); };
  Hooks.Error = [this](const std::string &Message) {
    error(SourceLoc::invalid(), Message);
  };
  Hooks.Stats = &Stats;
  if (prof::Profiler *Prof = Opts.Profiler) [[unlikely]]
    Hooks.CellReused = [this, Prof](const ConsCell *Cell, uint32_t Site) {
      Prof->siteReuse(Site, baseSiteId(Cell->SiteId),
                      TheHeap.allocSeq() - Cell->AllocSeq);
    };
  if (Opts.Profiler || Opts.Observer) [[unlikely]]
    Hooks.CellTouched = [this](ConsCell *Cell) {
      if (!Cell->Touched) {
        Cell->Touched = true;
        if (prof::Profiler *Prof = Opts.Profiler)
          Prof->siteFirstTouch(baseSiteId(Cell->SiteId));
        if (obs::rec::cells()) [[unlikely]]
          obs::rec::emit(obs::rec::RecKind::CellTouch, Cell->AllocSeq,
                         Cell->SiteId);
      }
      if (Opts.Observer)
        Opts.Observer->cellTouched(Cell, TheHeap.allocSeq());
    };
  return evalSaturatedPrim(Op, SiteId, Args, Hooks);
}

//===----------------------------------------------------------------------===//
// Application
//===----------------------------------------------------------------------===//

std::optional<RtValue>
Interpreter::applyPrim(RtClosure &Prim, const std::vector<RtValue> &Args,
                       size_t First, size_t &Consumed) {
  unsigned Arity = primOpArity(Prim.Op);
  size_t Have = Prim.Partial.size();
  size_t Avail = Args.size() - First;
  assert(Have < Arity && "over-applied primitive closure");
  if (Have + Avail < Arity) {
    // Still partial: new primitive closure accumulating the arguments.
    RtClosure *C = newClosure();
    C->IsPrim = true;
    C->Op = Prim.Op;
    C->PrimNodeId = Prim.PrimNodeId;
    C->Partial = Prim.Partial;
    C->Partial.insert(C->Partial.end(), Args.begin() + First, Args.end());
    Consumed = Avail;
    return RtValue::makeClosure(C);
  }
  std::vector<RtValue> Full = Prim.Partial;
  size_t Need = Arity - Have;
  Full.insert(Full.end(), Args.begin() + First, Args.begin() + First + Need);
  Consumed = Need;
  // Cells allocated through a primitive *value* have no static call site;
  // they go to the heap (SiteId of the prim occurrence never appears in
  // any directive).
  return evalPrimCall(Prim.Op, Prim.PrimNodeId, Full);
}

std::optional<RtValue>
Interpreter::applyValues(RtValue Callee, const std::vector<RtValue> &Args,
                         std::vector<size_t> &&Arenas, const AppExpr *Call) {
  // Rooting discipline: slot Base holds the current callee/result; slot
  // Base+1+i holds argument i until it is consumed. A consumed argument's
  // slot is cleared — it is then reachable only through the activation
  // frame, which matches the semantic lifetime the escape analysis
  // reasons about (and is what makes arena-free validation precise).
  ShadowGuard Rooted(ShadowStack);
  size_t Base = ShadowStack.size();
  Rooted.push(Callee);
  for (RtValue A : Args)
    Rooted.push(A);
  auto ClearConsumed = [&](size_t UpTo) {
    for (size_t I = 0; I != UpTo; ++I)
      ShadowStack[Base + 1 + I] = RtValue::makeNil();
  };
  bool ArenasFreed = Arenas.empty();
  auto FreeArenas = [&](RtValue *Result) {
    if (ArenasFreed)
      return true;
    ArenasFreed = true;
    ShadowGuard ResultRoot(ShadowStack);
    if (Result)
      ResultRoot.push(*Result);
    for (size_t Handle : Arenas) {
      // The spec runtime sees every close first: this is where injected
      // guard failures fire, migrating the speculative cells out before
      // the (then-empty) arena is spliced away.
      if (Opts.Spec) [[unlikely]]
        Opts.Spec->arenaClosing(static_cast<uint32_t>(Handle));
      if (Opts.ValidateArenaFrees && TheHeap.arenaIsReachable(Handle))
        return error(SourceLoc::invalid(),
                     "allocation plan error: arena cell still reachable "
                     "when its activation returned");
      TheHeap.freeArena(Handle);
    }
    return true;
  };

  RtValue Current = Callee;
  size_t Idx = 0;
  // The observer's per-call claims attach only to the activation of the
  // spine's direct callee, i.e. the first applied closure.
  bool DirectCallee = true;
  while (Idx < Args.size()) {
    if (!Current.isClosure()) {
      FreeArenas(nullptr);
      error(SourceLoc::invalid(), "applied a non-function value");
      return std::nullopt;
    }
    RtClosure *C = Current.closure();
    ++Stats.Applications;

    if (C->IsPrim) {
      size_t Consumed = 0;
      std::optional<RtValue> R = applyPrim(*C, Args, Idx, Consumed);
      if (!R) {
        FreeArenas(nullptr);
        return std::nullopt;
      }
      Idx += Consumed;
      Current = *R;
      ShadowStack[Base] = Current;
      ClearConsumed(Idx);
      DirectCallee = false;
      continue;
    }

    // User closure: bind as many leading parameters as arguments remain.
    EnvPtr Frame = std::make_shared<EnvFrame>();
    Frame->Parent = C->Env;
    const Expr *Body = C->Lambda;
    size_t FirstArg = Idx;
    while (const auto *L = dyn_cast<LambdaExpr>(Body)) {
      if (Idx == Args.size())
        break;
      Frame->Slots.emplace_back(L->param(), Args[Idx++]);
      Body = L->body();
    }
    if (isa<LambdaExpr>(Body)) {
      // Arguments exhausted mid-chain: the result is a closure.
      RtClosure *Partial = newClosure();
      Partial->Lambda = cast<LambdaExpr>(Body);
      Partial->Env = Frame;
      Current = RtValue::makeClosure(Partial);
      ShadowStack[Base] = Current;
      ClearConsumed(Idx);
      DirectCallee = false;
      continue;
    }

    // Evaluate the body; arenas (if any) belong to this first activation
    // and die when it returns. Consumed arguments live on only through
    // the frame.
    ClearConsumed(Idx);
    ShadowStack[Base] = RtValue::makeNil(); // callee consumed too
    ExecutionObserver *Obs = Opts.Observer;
    std::optional<RtValue> R;
    {
      FrameGuard Active(ActiveFrames, Frame.get());
      if (Obs)
        Obs->activationEntered(C->Lambda, DirectCallee ? Call : nullptr,
                               std::span<const RtValue>(Args).subspan(
                                   FirstArg, Idx - FirstArg));
      if (prof::Profiler *Prof = Opts.Profiler) [[unlikely]] {
        // The tree-walker's hot-path clock is Stats.Steps (fuel ticks).
        Prof->clockTo(Stats.Steps);
        Prof->framePushed(C->Lambda->id());
      }
      R = eval(Body, Frame);
      if (prof::Profiler *Prof = Opts.Profiler) [[unlikely]] {
        Prof->clockTo(Stats.Steps);
        Prof->framePopped();
      }
      // The exit hook runs before FreeArenas so arena cells are still
      // inspectable, and inside the FrameGuard so the frame roots them.
      if (Obs && !Obs->activationExited(R ? &*R : nullptr) && R) {
        error(Call ? Call->loc() : SourceLoc::invalid(), Obs->abortReason());
        R = std::nullopt;
      }
    }
    if (!R) {
      FreeArenas(nullptr);
      return std::nullopt;
    }
    if (!FreeArenas(&*R))
      return std::nullopt;
    Current = *R;
    ShadowStack[Base] = Current;
    DirectCallee = false;
  }
  if (!FreeArenas(&Current))
    return std::nullopt;
  return Current;
}

std::optional<RtValue> Interpreter::evalCallSpine(const AppExpr *Call,
                                                  const EnvPtr &Env) {
  std::vector<const Expr *> ArgExprs;
  const Expr *CalleeExpr = uncurryCall(Call, ArgExprs);

  size_t ShadowMark = ShadowStack.size();
  ShadowGuard Rooted(ShadowStack);

  // Fast path: a saturated direct primitive application needs no closure.
  if (const auto *Prim = dyn_cast<PrimExpr>(CalleeExpr)) {
    if (ArgExprs.size() == primOpArity(Prim->op())) {
      std::vector<RtValue> Args;
      Args.reserve(ArgExprs.size());
      for (const Expr *ArgExpr : ArgExprs) {
        std::optional<RtValue> V = eval(ArgExpr, Env);
        if (!V)
          return std::nullopt;
        Rooted.push(*V);
        Args.push_back(*V);
      }
      // The cons site id is the outermost App node of the spine.
      return evalPrimCall(Prim->op(), Call->id(), Args);
    }
  }

  std::optional<RtValue> CalleeVal = eval(CalleeExpr, Env);
  if (!CalleeVal)
    return std::nullopt;
  Rooted.push(*CalleeVal);

  // Arena directives for this call, if any.
  const std::vector<const ArgArenaDirective *> *Directives = nullptr;
  if (Plan) {
    auto It = Plan->ByCall.find(Call->id());
    if (It != Plan->ByCall.end())
      Directives = &It->second;
  }

  std::vector<RtValue> Args;
  std::vector<size_t> Arenas;
  Args.reserve(ArgExprs.size());
  for (size_t I = 0; I != ArgExprs.size(); ++I) {
    const ArgArenaDirective *D = nullptr;
    if (Directives)
      for (const ArgArenaDirective *Cand : *Directives)
        if (Cand->ArgIndex == I) {
          D = Cand;
          break;
        }
    // A speculative directive is honored only while its guard holds;
    // once disarmed (deopt) the argument evaluates plain, exactly as
    // under the conservative plan.
    if (D && D->SpecIndex >= 0 &&
        (!Opts.Spec || !Opts.Spec->directiveArmed(D->SpecIndex)))
      D = nullptr;
    std::optional<RtValue> V;
    if (D) {
      size_t Handle = TheHeap.createArena();
      if (D->SpecIndex >= 0) [[unlikely]]
        Opts.Spec->arenaOpened(D->SpecIndex, static_cast<uint32_t>(Handle));
      ArenaStack.push_back(ActiveArena{D, Handle});
      V = eval(ArgExprs[I], Env);
      ArenaStack.pop_back();
      Arenas.push_back(Handle);
    } else {
      V = eval(ArgExprs[I], Env);
    }
    if (!V) {
      for (size_t Handle : Arenas) {
        if (Opts.Spec) [[unlikely]]
          Opts.Spec->arenaClosing(static_cast<uint32_t>(Handle));
        TheHeap.freeArena(Handle);
      }
      return std::nullopt;
    }
    Rooted.push(*V);
    Args.push_back(*V);
  }

  // Hand rooting over to applyValues (which re-roots callee and args
  // immediately and releases each as it is consumed). Nothing can
  // allocate between this resize and the re-rooting.
  ShadowStack.resize(ShadowMark);
  return applyValues(*CalleeVal, Args, std::move(Arenas), Call);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

std::optional<RtValue> Interpreter::eval(const Expr *E, const EnvPtr &Env) {
  if (!fuel(E))
    return std::nullopt;
  switch (E->kind()) {
  case ExprKind::IntLit:
    return RtValue::makeInt(cast<IntLitExpr>(E)->value());
  case ExprKind::BoolLit:
    return RtValue::makeBool(cast<BoolLitExpr>(E)->value());
  case ExprKind::NilLit:
    return RtValue::makeNil();
  case ExprKind::Var: {
    Symbol Name = cast<VarExpr>(E)->name();
    for (EnvFrame *F = Env.get(); F; F = F->Parent.get())
      if (RtValue *Slot = F->find(Name))
        return *Slot;
    error(E->loc(), "unbound identifier '" +
                        std::string(Ast.spelling(Name)) + "' at run time");
    return std::nullopt;
  }
  case ExprKind::Prim: {
    const auto *Prim = cast<PrimExpr>(E);
    RtClosure *C = newClosure();
    C->IsPrim = true;
    C->Op = Prim->op();
    C->PrimNodeId = E->id();
    return RtValue::makeClosure(C);
  }
  case ExprKind::App:
    return evalCallSpine(cast<AppExpr>(E), Env);
  case ExprKind::Lambda: {
    RtClosure *C = newClosure();
    C->Lambda = cast<LambdaExpr>(E);
    C->Env = Env;
    return RtValue::makeClosure(C);
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    std::optional<RtValue> Cond = eval(If->cond(), Env);
    if (!Cond)
      return std::nullopt;
    if (!Cond->isBool()) {
      error(If->cond()->loc(), "if condition is not a boolean");
      return std::nullopt;
    }
    const Expr *Chosen = Cond->boolValue() ? If->thenExpr() : If->elseExpr();
    // Branch-entry report: the spec tier's profile counter during the
    // pre-run, its deopt guard during the speculative run.
    if (Opts.Spec) [[unlikely]]
      Opts.Spec->branchEntered(Chosen->id());
    return eval(Chosen, Env);
  }
  case ExprKind::Let: {
    const auto *Let = cast<LetExpr>(E);
    std::optional<RtValue> V = eval(Let->value(), Env);
    if (!V)
      return std::nullopt;
    EnvPtr Frame = std::make_shared<EnvFrame>();
    Frame->Parent = Env;
    Frame->Slots.emplace_back(Let->name(), *V);
    FrameGuard Active(ActiveFrames, Frame.get());
    return eval(Let->body(), Frame);
  }
  case ExprKind::Letrec: {
    const auto *Letrec = cast<LetrecExpr>(E);
    EnvPtr Frame = std::make_shared<EnvFrame>();
    Frame->Parent = Env;
    LetrecFrames.push_back(Frame);
    for (const LetrecBinding &B : Letrec->bindings())
      Frame->Slots.emplace_back(B.Name, RtValue::makeNil());
    FrameGuard Active(ActiveFrames, Frame.get());
    auto Bindings = Letrec->bindings();
    for (size_t I = 0; I != Bindings.size(); ++I) {
      std::optional<RtValue> V = eval(Bindings[I].Value, Frame);
      if (!V)
        return std::nullopt;
      Frame->Slots[I].second = *V;
    }
    return eval(Letrec->body(), Frame);
  }
  }
  assert(false && "unhandled expression kind");
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

std::optional<RtValue> Interpreter::run() {
  obs::Span S("interp.run", "runtime");
  Failed = false;
  EnvPtr Root = std::make_shared<EnvFrame>();
  FrameGuard Active(ActiveFrames, Root.get());
  std::optional<RtValue> Result = eval(Program.root(), Root);
  if (prof::Profiler *Prof = Opts.Profiler) {
    Prof->clockTo(Stats.Steps);
    Prof->finish();
  }
  if (S.active()) {
    S.arg("steps", Stats.Steps);
    S.arg("applications", Stats.Applications);
    S.arg("heap_cells", Stats.HeapCellsAllocated);
  }
  if (Failed)
    return std::nullopt;
  return Result;
}

std::optional<RtValue>
Interpreter::callBinding(Symbol Fn, std::span<const Expr *const> Args,
                         std::vector<RtValue> *ArgValues) {
  Failed = false;
  const auto *Letrec = dyn_cast<LetrecExpr>(Program.root());
  if (!Letrec) {
    error(SourceLoc::invalid(), "callBinding requires a letrec program");
    return std::nullopt;
  }
  EnvPtr Root = std::make_shared<EnvFrame>();
  FrameGuard ActiveRoot(ActiveFrames, Root.get());

  // Build the letrec frame (mirrors the Letrec case of eval()).
  EnvPtr Frame = std::make_shared<EnvFrame>();
  Frame->Parent = Root;
  LetrecFrames.push_back(Frame);
  for (const LetrecBinding &B : Letrec->bindings())
    Frame->Slots.emplace_back(B.Name, RtValue::makeNil());
  FrameGuard Active(ActiveFrames, Frame.get());
  auto Bindings = Letrec->bindings();
  for (size_t I = 0; I != Bindings.size(); ++I) {
    std::optional<RtValue> V = eval(Bindings[I].Value, Frame);
    if (!V)
      return std::nullopt;
    Frame->Slots[I].second = *V;
  }

  RtValue *FnSlot = Frame->find(Fn);
  if (!FnSlot) {
    error(SourceLoc::invalid(), "callBinding: no such binding");
    return std::nullopt;
  }

  ShadowGuard Rooted(ShadowStack);
  std::vector<RtValue> Values;
  for (const Expr *Arg : Args) {
    std::optional<RtValue> V = eval(Arg, Frame);
    if (!V)
      return std::nullopt;
    Rooted.push(*V);
    Values.push_back(*V);
  }
  if (ArgValues)
    *ArgValues = Values;
  std::optional<RtValue> Result =
      applyValues(*FnSlot, Values, std::vector<size_t>(), nullptr);
  if (prof::Profiler *Prof = Opts.Profiler) {
    Prof->clockTo(Stats.Steps);
    Prof->finish();
  }
  if (Failed)
    return std::nullopt;
  return Result;
}

namespace {

struct ThreadRun {
  Interpreter *I;
  std::optional<RtValue> Result;
};

void *runTrampoline(void *Arg) {
  auto *TR = static_cast<ThreadRun *>(Arg);
  TR->Result = TR->I->run();
  return nullptr;
}

} // namespace

#if defined(__SANITIZE_ADDRESS__)
#define EAL_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define EAL_UNDER_ASAN 1
#endif
#endif

std::optional<RtValue> Interpreter::runOnLargeStack(size_t StackBytes) {
#ifdef EAL_UNDER_ASAN
  // ASan redzones inflate the recursive eval frames severalfold; the
  // stack budget has to grow with them or deep-recursion workloads that
  // fit comfortably in an uninstrumented build overflow here.
  StackBytes *= 4;
#endif
  pthread_attr_t Attr;
  if (pthread_attr_init(&Attr) != 0)
    return run();
  pthread_attr_setstacksize(&Attr, StackBytes);
  ThreadRun TR{this, std::nullopt};
  pthread_t Thread;
  if (pthread_create(&Thread, &Attr, runTrampoline, &TR) != 0) {
    pthread_attr_destroy(&Attr);
    return run();
  }
  pthread_join(Thread, nullptr);
  pthread_attr_destroy(&Attr);
  return TR.Result;
}

//===----------------------------------------------------------------------===//
// Value rendering
//===----------------------------------------------------------------------===//

std::string Interpreter::render(RtValue V, size_t MaxElements) const {
  return renderValue(V, MaxElements);
}

std::vector<int64_t> Interpreter::toIntVector(RtValue V) {
  return valueToIntVector(V);
}

//===- Interpreter.h - The nml abstract machine -----------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A strict, environment-based evaluator for nml over the managed heap of
/// Heap.h — the stack-and-heap, aliasing implementation model the escape
/// semantics abstracts (§3.3). It executes the optimizations:
///
///  * cons sites covered by an ArgArenaDirective allocate into an arena
///    owned by the callee's activation and reclaimed when it returns;
///  * DCONS overwrites the head cell of its first operand in place.
///
/// The interpreter reports runtime errors (car of nil, division by zero,
/// fuel exhaustion) through the diagnostic engine and returns nullopt.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_INTERPRETER_H
#define EAL_RUNTIME_INTERPRETER_H

#include "lang/Ast.h"
#include "opt/AllocPlanner.h"
#include "runtime/Frame.h"
#include "runtime/Heap.h"
#include "runtime/RtValue.h"
#include "runtime/RuntimeStats.h"
#include "types/TypeInference.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace eal {

class DiagnosticEngine;
class ExecutionObserver;
class SpecHooks;

/// Evaluates one typed program.
class Interpreter {
public:
  struct Options {
    /// Initial heap capacity in cells.
    size_t HeapCapacity = 1 << 14;
    bool AllowHeapGrowth = true;
    /// Evaluation-step budget (guards against runaway programs).
    uint64_t MaxSteps = 1'000'000'000;
    /// Verify at every arena free that no arena cell is still reachable
    /// (catches unsafe allocation plans; expensive).
    bool ValidateArenaFrees = false;
    /// Instrumentation hooks (allocation + activation events), not
    /// owned; see runtime/ExecutionObserver.h. Null disables them.
    ExecutionObserver *Observer = nullptr;
    /// Allocation-site & hot-path profiler (prof/Profiler.h), not owned.
    /// Null disables profiling; independent of Observer, so the dynamic
    /// oracle and the profiler can run together.
    prof::Profiler *Profiler = nullptr;
    /// Speculative-tier hooks (runtime/SpecHooks.h), not owned. While
    /// set, every entered if-branch is reported, speculative directives
    /// (SpecIndex >= 0) are honored only while directiveArmed says so,
    /// and every arena open/close is announced so the spec runtime can
    /// track speculative arenas and run the deopt protocol. Null
    /// disables the tier entirely.
    SpecHooks *Spec = nullptr;
  };

  /// \p Plan may be null (everything heap-allocated, no reuse semantics
  /// change — DCONS still executes destructively if present in the AST).
  Interpreter(const AstContext &Ast, const TypedProgram &Program,
              const AllocationPlan *Plan, DiagnosticEngine &Diags);
  Interpreter(const AstContext &Ast, const TypedProgram &Program,
              const AllocationPlan *Plan, DiagnosticEngine &Diags,
              Options Opts);
  ~Interpreter();

  /// Evaluates the program root. Returns nullopt after a diagnostic on
  /// runtime errors.
  std::optional<RtValue> run();

  /// Like run(), but on a dedicated thread with \p StackBytes of stack —
  /// deep nml recursion (long lists) needs more than the default.
  std::optional<RtValue> runOnLargeStack(size_t StackBytes = 512u << 20);

  /// Oracle support: with a top-level-letrec program, evaluates the
  /// bindings, then applies binding \p Fn to \p Args (evaluated in the
  /// top-level environment). When \p ArgValues is non-null it receives
  /// the evaluated argument values, so tests can tag their cells and
  /// check reachability from the result against the escape analysis.
  std::optional<RtValue> callBinding(Symbol Fn,
                                     std::span<const Expr *const> Args,
                                     std::vector<RtValue> *ArgValues);

  const RuntimeStats &stats() const { return Stats; }
  RuntimeStats &stats() { return Stats; }
  Heap &heap() { return TheHeap; }

  /// Renders a value: "42", "true", "[1, 2, 3]", "<fun>". Cyclic or very
  /// long structures are truncated with "...".
  std::string render(RtValue V, size_t MaxElements = 64) const;

  /// Flattens an int list value into a vector (empty on mismatch).
  static std::vector<int64_t> toIntVector(RtValue V);

private:
  std::optional<RtValue> eval(const Expr *E, const EnvPtr &Env);
  std::optional<RtValue> evalCallSpine(const AppExpr *Call,
                                       const EnvPtr &Env);
  /// \p Call is the originating call spine (for the observer's per-call
  /// hooks), null when the application has no source call site.
  std::optional<RtValue> applyValues(RtValue Callee,
                                     const std::vector<RtValue> &Args,
                                     std::vector<size_t> &&Arenas,
                                     const AppExpr *Call);
  std::optional<RtValue> applyPrim(RtClosure &Prim,
                                   const std::vector<RtValue> &Args,
                                   size_t First, size_t &Consumed);
  std::optional<RtValue> evalPrimCall(PrimOp Op, uint32_t SiteId,
                                      const std::vector<RtValue> &Args);

  /// Allocates the cell for cons site \p SiteId (consulting the active
  /// arena stack) or a plain heap cell when SiteId has no directive.
  ConsCell *allocateConsCell(uint32_t SiteId);

  RtClosure *newClosure();
  bool error(SourceLoc Loc, std::string Message);
  bool fuel(const Expr *E);

  const AstContext &Ast;
  const TypedProgram &Program;
  const AllocationPlan *Plan;
  DiagnosticEngine &Diags;
  Options Opts;
  RuntimeStats Stats;
  Heap TheHeap;

  /// GC roots: in-flight values and active environments.
  std::vector<RtValue> ShadowStack;
  std::vector<EnvFrame *> ActiveFrames;

  /// Arenas active for the argument currently being evaluated.
  struct ActiveArena {
    const ArgArenaDirective *Directive;
    size_t Handle;
  };
  std::vector<ActiveArena> ArenaStack;

  /// All closures (owned; small count, never individually freed).
  std::vector<std::unique_ptr<RtClosure>> Closures;
  /// Letrec frames kept alive to the end (closure cycles).
  std::vector<EnvPtr> LetrecFrames;

  uint64_t MarkEpoch = 0;
  bool Failed = false;
};

} // namespace eal

#endif // EAL_RUNTIME_INTERPRETER_H

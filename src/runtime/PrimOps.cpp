//===- PrimOps.cpp --------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/PrimOps.h"

#include "obs/Recorder.h"

#include <cassert>

using namespace eal;

namespace {

/// First-touch recording for the no-hook engines: when neither a
/// profiler nor an observer installed CellTouched, the Touched flag is
/// otherwise never flipped, so the recorder flips it here (the flag
/// feeds only first-touch attribution; program results are unaffected).
void recordTouch(ConsCell *Cell) {
  if (obs::rec::cells() && !Cell->Touched) [[unlikely]] {
    Cell->Touched = true;
    obs::rec::emit(obs::rec::RecKind::CellTouch, Cell->AllocSeq,
                   Cell->SiteId);
  }
}

} // namespace

std::optional<RtValue>
eal::evalSaturatedPrim(PrimOp Op, uint32_t SiteId,
                       std::span<const RtValue> Args,
                       const PrimOpsHooks &Hooks) {
  assert(Args.size() == primOpArity(Op) && "wrong arity");
  auto TypeError = [&]() -> std::optional<RtValue> {
    Hooks.Error(std::string("runtime type error applying '") +
                std::string(primOpName(Op)) + "'");
    return std::nullopt;
  };

  switch (Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod: {
    if (!Args[0].isInt() || !Args[1].isInt())
      return TypeError();
    int64_t A = Args[0].intValue(), B = Args[1].intValue();
    switch (Op) {
    case PrimOp::Add:
      return RtValue::makeInt(A + B);
    case PrimOp::Sub:
      return RtValue::makeInt(A - B);
    case PrimOp::Mul:
      return RtValue::makeInt(A * B);
    case PrimOp::Div:
    case PrimOp::Mod:
      if (B == 0) {
        Hooks.Error("division by zero");
        return std::nullopt;
      }
      return RtValue::makeInt(Op == PrimOp::Div ? A / B : A % B);
    default:
      break;
    }
    return TypeError();
  }
  case PrimOp::Eq:
  case PrimOp::Ne:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge: {
    if (!Args[0].isInt() || !Args[1].isInt())
      return TypeError();
    int64_t A = Args[0].intValue(), B = Args[1].intValue();
    bool R = false;
    switch (Op) {
    case PrimOp::Eq:
      R = A == B;
      break;
    case PrimOp::Ne:
      R = A != B;
      break;
    case PrimOp::Lt:
      R = A < B;
      break;
    case PrimOp::Le:
      R = A <= B;
      break;
    case PrimOp::Gt:
      R = A > B;
      break;
    case PrimOp::Ge:
      R = A >= B;
      break;
    default:
      break;
    }
    return RtValue::makeBool(R);
  }
  case PrimOp::Not:
    if (!Args[0].isBool())
      return TypeError();
    return RtValue::makeBool(!Args[0].boolValue());
  case PrimOp::Null:
    if (Args[0].isNil())
      return RtValue::makeBool(true);
    if (Args[0].isCons())
      return RtValue::makeBool(false);
    return TypeError();
  case PrimOp::Car:
  case PrimOp::Cdr:
    if (Args[0].isNil()) {
      Hooks.Error(std::string(Op == PrimOp::Car ? "car" : "cdr") +
                  " applied to the empty list");
      return std::nullopt;
    }
    if (!Args[0].isCons())
      return TypeError();
    if (Hooks.CellTouched) [[unlikely]]
      Hooks.CellTouched(Args[0].cell());
    else
      recordTouch(Args[0].cell());
    return Op == PrimOp::Car ? Args[0].cell()->Car : Args[0].cell()->Cdr;
  case PrimOp::Cons: {
    ConsCell *Cell = Hooks.AllocateCell(SiteId);
    if (!Cell) {
      Hooks.Error("out of heap cells");
      return std::nullopt;
    }
    Cell->Car = Args[0];
    Cell->Cdr = Args[1];
    return RtValue::makeCons(Cell);
  }
  case PrimOp::MkPair: {
    ConsCell *Cell = Hooks.AllocateCell(SiteId);
    if (!Cell) {
      Hooks.Error("out of heap cells");
      return std::nullopt;
    }
    Cell->Car = Args[0];
    Cell->Cdr = Args[1];
    return RtValue::makePair(Cell);
  }
  case PrimOp::Fst:
  case PrimOp::Snd:
    if (!Args[0].isPair())
      return TypeError();
    if (Hooks.CellTouched) [[unlikely]]
      Hooks.CellTouched(Args[0].cell());
    else
      recordTouch(Args[0].cell());
    return Op == PrimOp::Fst ? Args[0].cell()->Car : Args[0].cell()->Cdr;
  case PrimOp::DCons: {
    // dcons p b c: reuse p's head cell in place (§6). The analysis
    // guarantees p is non-nil and dead.
    if (Args[0].isNil()) {
      Hooks.Error("dcons applied to the empty list");
      return std::nullopt;
    }
    if (!Args[0].isCons())
      return TypeError();
    ConsCell *Cell = Args[0].cell();
    if (Hooks.CellReused) [[unlikely]]
      Hooks.CellReused(Cell, SiteId);
    if (obs::rec::cells()) [[unlikely]] // before the re-tag: C = old site
      obs::rec::emit(obs::rec::RecKind::CellDcons, Cell->AllocSeq, SiteId,
                     Cell->SiteId);
    // The overwrite re-tags the slot with the dcons site while keeping
    // the birth AllocSeq: from here on, touch attribution follows the
    // *new* site (the cell now holds that site's data), but (pointer,
    // stamp) still identifies the original allocation. Unconditional so
    // the liveness oracle sees the same identity with or without a
    // profiler attached.
    Cell->SiteId = SiteId;
    Cell->Touched = false;
    Cell->Car = Args[1];
    Cell->Cdr = Args[2];
    if (Hooks.Stats)
      ++Hooks.Stats->DconsReuses;
    return RtValue::makeCons(Cell);
  }
  }
  return TypeError();
}

//===- PrimOps.h - shared primitive evaluation ------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluation of saturated nml primitives over runtime values, shared by
/// the tree-walking interpreter and the bytecode VM. Allocation and
/// error reporting are callbacks so each engine supplies its own
/// allocation-site/arena logic and diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_PRIMOPS_H
#define EAL_RUNTIME_PRIMOPS_H

#include "lang/Ast.h"
#include "runtime/RtValue.h"
#include "runtime/RuntimeStats.h"

#include <functional>
#include <optional>
#include <span>
#include <string>

namespace eal {

/// Engine hooks for primitive evaluation.
struct PrimOpsHooks {
  /// Allocates the cell for cons/pair site \p SiteId (null on OOM).
  std::function<ConsCell *(uint32_t SiteId)> AllocateCell;
  /// Reports a runtime error (message in LLVM diagnostic style).
  std::function<void(const std::string &)> Error;
  /// Counters to charge (DconsReuses).
  RuntimeStats *Stats = nullptr;
  /// Profiling hook, set only while a prof::Profiler is attached: DCONS
  /// is about to overwrite \p Cell in place on behalf of site \p SiteId.
  /// Called before the overwrite so the hook can read the cell's old
  /// site tag; the engine re-tags Cell->SiteId afterwards.
  std::function<void(const ConsCell *Cell, uint32_t SiteId)> CellReused;
  /// Liveness hook, set only while a profiler or execution observer is
  /// attached: a field of \p Cell is being demanded (car/cdr/fst/snd).
  /// Fires before the field value is returned. Tag tests (null) and the
  /// DCONS overwrite are not touches (docs/LIVENESS.md).
  std::function<void(ConsCell *Cell)> CellTouched;
};

/// Applies the saturated primitive \p Op to \p Args (exactly
/// primOpArity(Op) of them, already evaluated left to right). \p SiteId
/// identifies the static allocation site for cons/pair. Returns nullopt
/// after calling Hooks.Error on faults (car of nil, division by zero,
/// runtime type errors, out of cells).
std::optional<RtValue> evalSaturatedPrim(PrimOp Op, uint32_t SiteId,
                                         std::span<const RtValue> Args,
                                         const PrimOpsHooks &Hooks);

} // namespace eal

#endif // EAL_RUNTIME_PRIMOPS_H

//===- RtValue.h - Runtime values -------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values of the nml abstract machine: integers, booleans, nil,
/// cons cells, and closures. The machine follows the implementation model
/// the paper analyzes (§3.3): aggregates are aliased, not copied, and
/// cons cells live in an explicitly managed heap.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_RTVALUE_H
#define EAL_RUNTIME_RTVALUE_H

#include <cassert>
#include <cstdint>

namespace eal {

class LambdaExpr;
struct ConsCell;
struct RtClosure;

/// Discriminator for runtime values.
enum class RtValueKind : uint8_t {
  Int,
  Bool,
  Nil,
  Cons,
  /// A pair cell (the tuple extension); shares the ConsCell layout:
  /// Car = first component, Cdr = second.
  Pair,
  Closure,
};

/// One runtime value. Trivially copyable; cons cells and closures are
/// referenced, never embedded.
class RtValue {
public:
  RtValue() : Kind(RtValueKind::Nil), Cell(nullptr) {}

  static RtValue makeInt(int64_t V) {
    RtValue R;
    R.Kind = RtValueKind::Int;
    R.Int = V;
    return R;
  }
  static RtValue makeBool(bool V) {
    RtValue R;
    R.Kind = RtValueKind::Bool;
    R.Int = V ? 1 : 0;
    return R;
  }
  static RtValue makeNil() { return RtValue(); }
  static RtValue makeCons(ConsCell *C) {
    assert(C && "null cons cell");
    RtValue R;
    R.Kind = RtValueKind::Cons;
    R.Cell = C;
    return R;
  }
  static RtValue makePair(ConsCell *C) {
    assert(C && "null pair cell");
    RtValue R;
    R.Kind = RtValueKind::Pair;
    R.Cell = C;
    return R;
  }
  static RtValue makeClosure(RtClosure *C) {
    assert(C && "null closure");
    RtValue R;
    R.Kind = RtValueKind::Closure;
    R.Closure = C;
    return R;
  }

  RtValueKind kind() const { return Kind; }
  bool isInt() const { return Kind == RtValueKind::Int; }
  bool isBool() const { return Kind == RtValueKind::Bool; }
  bool isNil() const { return Kind == RtValueKind::Nil; }
  bool isCons() const { return Kind == RtValueKind::Cons; }
  bool isPair() const { return Kind == RtValueKind::Pair; }
  bool isClosure() const { return Kind == RtValueKind::Closure; }

  int64_t intValue() const {
    assert(isInt() && "not an int");
    return Int;
  }
  bool boolValue() const {
    assert(isBool() && "not a bool");
    return Int != 0;
  }
  ConsCell *cell() const {
    assert((isCons() || isPair()) && "not a cell value");
    return Cell;
  }
  RtClosure *closure() const {
    assert(isClosure() && "not a closure");
    return Closure;
  }

private:
  RtValueKind Kind;
  union {
    int64_t Int;
    ConsCell *Cell;
    RtClosure *Closure;
  };
};

/// Where a cell was allocated (drives reclamation and statistics).
enum class CellClass : uint8_t {
  /// Garbage-collected heap cell.
  Heap,
  /// Activation-record arena cell (A.3.1): dies when the owning
  /// activation is popped.
  Stack,
  /// Region ("local heap", A.3.3) cell: bulk-returned to the free list,
  /// without traversal, when the owning activation is popped.
  Region,
};

/// Allocation state of a cell.
enum class CellState : uint8_t {
  Free,
  Live,
};

/// High bit of ConsCell::SiteId: set when the cell was placed by a
/// *speculative* arena directive (src/spec). Everything that attributes
/// by site — the profiler, the oracles, GC dead-site pruning — must look
/// through it via baseSiteId(); deopt migration clears it when it
/// re-tags the cell as a plain GC-heap resident (docs/SPECULATION.md).
/// AST node ids stay far below 2^31, so the bit cannot collide with a
/// real site, and prof::NoSite (all ones) already has it set.
inline constexpr uint32_t SpecSiteBit = 0x80000000u;

/// The allocation-site id with the speculative-placement bit removed;
/// NoSite (0xFFFFFFFF) passes through unchanged.
inline constexpr uint32_t baseSiteId(uint32_t SiteId) {
  return SiteId == 0xFFFFFFFFu ? SiteId : SiteId & ~SpecSiteBit;
}

/// One cons cell.
struct ConsCell {
  RtValue Car;
  RtValue Cdr;
  /// Next cell in the free list or in an arena chain (a cell is on at
  /// most one of those at a time).
  ConsCell *Next = nullptr;
  /// Monotone allocation stamp, rewritten each time the cell comes off
  /// the free list. A (pointer, stamp) pair therefore identifies one
  /// *allocation*, not one slot: a recorded pair whose stamp no longer
  /// matches means the cell died and the slot was recycled. The dynamic
  /// escape oracle (eal::check) relies on this to classify cells after
  /// GC or arena reclamation has reused them.
  uint64_t AllocSeq = 0;
  /// Static allocation site (AST node id of the cons/pair application),
  /// or prof::NoSite for cells with no source site. Fits in the struct's
  /// existing padding; read by the eal::prof allocation-site profiler at
  /// death/reuse time. A DCONS overwrite re-tags this with the dcons
  /// site while leaving AllocSeq alone (see prof/Profiler.h).
  uint32_t SiteId = 0xFFFFFFFFu;
  CellClass Class = CellClass::Heap;
  CellState State = CellState::Free;
  bool Mark = false;
  /// Whether any field of this allocation has been demanded (read by
  /// car/cdr/fst/snd) since it came off the free list. Cleared on
  /// allocation, set on first touch; eal::prof derives per-site
  /// dead-cell fractions from it and eal::live's dynamic oracle uses it
  /// to refute dead-site claims. Fits in the struct's remaining padding
  /// byte, so the cell stays at its previous size.
  bool Touched = false;
};

} // namespace eal

#endif // EAL_RUNTIME_RTVALUE_H

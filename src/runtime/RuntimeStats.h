//===- RuntimeStats.h - Allocation and GC counters --------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the benchmarks report. They quantify exactly the effects the
/// paper claims for its optimizations: fewer garbage-collected cells
/// (stack allocation), cells recycled with no allocation at all (DCONS),
/// and whole blocks reclaimed without traversing the list (regions).
///
/// This struct is the typed hot-path view of the runtime's metrics: the
/// heap and engines bump plain fields with no indirection, and the
/// counters flow into the obs::MetricsRegistry (support/Metrics.h) at
/// phase boundaries via exportTo(). forEachField() is the single source
/// of truth for names, so str(), toJson(), and exportTo() can never
/// disagree about what exists.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_RUNTIMESTATS_H
#define EAL_RUNTIME_RUNTIMESTATS_H

#include "support/Metrics.h"

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace eal {

/// All runtime counters for one program run.
struct RuntimeStats {
  // Allocation, by class.
  uint64_t HeapCellsAllocated = 0;
  uint64_t StackCellsAllocated = 0;
  uint64_t RegionCellsAllocated = 0;
  /// Cells recycled in place by DCONS (no allocation performed).
  uint64_t DconsReuses = 0;

  // Garbage collection.
  uint64_t GcRuns = 0;
  /// Cells visited during mark phases (the traversal work the paper's
  /// block reclamation avoids).
  uint64_t CellsMarked = 0;
  /// Heap cells reclaimed by sweeps.
  uint64_t CellsSwept = 0;
  /// Cells scanned by sweeps (mark-phase + sweep-phase work ≈ GC cost).
  uint64_t CellsScannedBySweep = 0;
  /// Times the heap had to grow because a collection freed too little.
  uint64_t HeapGrowths = 0;

  // Arena reclamation.
  /// Activation arenas discarded wholesale (stack allocation).
  uint64_t StackArenaFrees = 0;
  uint64_t StackCellsFreed = 0;
  /// Region blocks spliced back to the free list in O(1).
  uint64_t RegionBulkFrees = 0;
  uint64_t RegionCellsFreed = 0;

  // Interpreter.
  uint64_t Steps = 0;
  uint64_t Applications = 0;
  uint64_t ClosuresCreated = 0;
  uint64_t PeakLiveHeapCells = 0;
  /// VM only: high-water mark of the call-frame stack. Tail calls reuse
  /// the caller's frame, so deep tail recursion keeps this flat.
  uint64_t PeakCallFrames = 0;

  uint64_t totalCellsAllocated() const {
    return HeapCellsAllocated + StackCellsAllocated + RegionCellsAllocated;
  }

  /// Invokes \p Fn(JsonKey, HumanLabel, Value) for every counter,
  /// including the derived total. The one place the field list lives.
  template <class FnT> void forEachField(FnT &&Fn) const {
    Fn("heap_cells_allocated", "heap cells allocated", HeapCellsAllocated);
    Fn("stack_cells_allocated", "stack cells allocated", StackCellsAllocated);
    Fn("region_cells_allocated", "region cells allocated",
       RegionCellsAllocated);
    Fn("total_cells_allocated", "total cells allocated",
       totalCellsAllocated());
    Fn("dcons_reuses", "dcons reuses", DconsReuses);
    Fn("gc_runs", "gc runs", GcRuns);
    Fn("cells_marked", "cells marked (gc work)", CellsMarked);
    Fn("cells_swept", "cells swept", CellsSwept);
    Fn("sweep_scan_work", "sweep scan work", CellsScannedBySweep);
    Fn("heap_growths", "heap growths", HeapGrowths);
    Fn("stack_arena_frees", "stack arena frees", StackArenaFrees);
    Fn("stack_cells_freed", "stack cells freed", StackCellsFreed);
    Fn("region_bulk_frees", "region bulk frees", RegionBulkFrees);
    Fn("region_cells_freed", "region cells freed", RegionCellsFreed);
    Fn("peak_live_heap_cells", "peak live heap cells", PeakLiveHeapCells);
    Fn("steps", "steps", Steps);
    Fn("applications", "applications", Applications);
    Fn("closures_created", "closures created", ClosuresCreated);
    Fn("peak_call_frames", "peak call frames", PeakCallFrames);
  }

  /// Renders all counters, one "name = value" per line. Includes the
  /// derived total so human-readable dumps match what benches compare.
  std::string str() const {
    std::ostringstream OS;
    forEachField([&OS](const char *, const char *Label, uint64_t Value) {
      OS << std::left << std::setw(24) << Label << "= " << Value << '\n';
    });
    return OS.str();
  }

  /// Renders all counters as a flat JSON object (snake_case keys), used
  /// by `eal --stats-json` and the BENCH_*.json records.
  std::string toJson(unsigned Indent = 0) const {
    std::string Pad(Indent, ' ');
    std::string Pad2(Indent + 2, ' ');
    std::ostringstream OS;
    OS << "{";
    bool First = true;
    forEachField([&](const char *Key, const char *, uint64_t Value) {
      OS << (First ? "\n" : ",\n") << Pad2 << '"' << Key << "\": " << Value;
      First = false;
    });
    OS << '\n' << Pad << '}';
    return OS.str();
  }

  /// Exports every counter into \p Reg under \p Prefix (the registry
  /// view that absorbs this struct).
  void exportTo(obs::MetricsRegistry &Reg,
                const std::string &Prefix = "runtime.") const {
    forEachField([&](const char *Key, const char *, uint64_t Value) {
      Reg.counter(Prefix + Key).set(Value);
    });
  }
};

} // namespace eal

#endif // EAL_RUNTIME_RUNTIMESTATS_H

//===- RuntimeStats.h - Allocation and GC counters --------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the benchmarks report. They quantify exactly the effects the
/// paper claims for its optimizations: fewer garbage-collected cells
/// (stack allocation), cells recycled with no allocation at all (DCONS),
/// and whole blocks reclaimed without traversing the list (regions).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_RUNTIMESTATS_H
#define EAL_RUNTIME_RUNTIMESTATS_H

#include <cstdint>
#include <sstream>
#include <string>

namespace eal {

/// All runtime counters for one program run.
struct RuntimeStats {
  // Allocation, by class.
  uint64_t HeapCellsAllocated = 0;
  uint64_t StackCellsAllocated = 0;
  uint64_t RegionCellsAllocated = 0;
  /// Cells recycled in place by DCONS (no allocation performed).
  uint64_t DconsReuses = 0;

  // Garbage collection.
  uint64_t GcRuns = 0;
  /// Cells visited during mark phases (the traversal work the paper's
  /// block reclamation avoids).
  uint64_t CellsMarked = 0;
  /// Heap cells reclaimed by sweeps.
  uint64_t CellsSwept = 0;
  /// Cells scanned by sweeps (mark-phase + sweep-phase work ≈ GC cost).
  uint64_t CellsScannedBySweep = 0;
  /// Times the heap had to grow because a collection freed too little.
  uint64_t HeapGrowths = 0;

  // Arena reclamation.
  /// Activation arenas discarded wholesale (stack allocation).
  uint64_t StackArenaFrees = 0;
  uint64_t StackCellsFreed = 0;
  /// Region blocks spliced back to the free list in O(1).
  uint64_t RegionBulkFrees = 0;
  uint64_t RegionCellsFreed = 0;

  // Interpreter.
  uint64_t Steps = 0;
  uint64_t Applications = 0;
  uint64_t ClosuresCreated = 0;
  uint64_t PeakLiveHeapCells = 0;

  uint64_t totalCellsAllocated() const {
    return HeapCellsAllocated + StackCellsAllocated + RegionCellsAllocated;
  }

  /// Renders all counters, one "name = value" per line.
  std::string str() const {
    std::ostringstream OS;
    OS << "heap cells allocated    = " << HeapCellsAllocated << '\n'
       << "stack cells allocated   = " << StackCellsAllocated << '\n'
       << "region cells allocated  = " << RegionCellsAllocated << '\n'
       << "dcons reuses            = " << DconsReuses << '\n'
       << "gc runs                 = " << GcRuns << '\n'
       << "cells marked (gc work)  = " << CellsMarked << '\n'
       << "cells swept             = " << CellsSwept << '\n'
       << "sweep scan work         = " << CellsScannedBySweep << '\n'
       << "heap growths            = " << HeapGrowths << '\n'
       << "stack arena frees       = " << StackArenaFrees << '\n'
       << "stack cells freed       = " << StackCellsFreed << '\n'
       << "region bulk frees       = " << RegionBulkFrees << '\n'
       << "region cells freed      = " << RegionCellsFreed << '\n'
       << "peak live heap cells    = " << PeakLiveHeapCells << '\n'
       << "steps                   = " << Steps << '\n'
       << "applications            = " << Applications << '\n'
       << "closures created        = " << ClosuresCreated << '\n';
    return OS.str();
  }
};

} // namespace eal

#endif // EAL_RUNTIME_RUNTIMESTATS_H

//===- SpecHooks.h - Speculative-tier runtime hooks -------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The narrow interface through which both execution engines talk to the
/// speculative tier (src/spec, docs/SPECULATION.md) without depending on
/// it. Two implementations exist:
///
///  * spec::BranchProfile counts if-branch entries during the profiling
///    pre-run that justifies speculation;
///  * spec::SpecRuntime arms/disarms speculative directives, tracks the
///    live speculative arenas, and runs the deopt protocol (migrate the
///    speculative cells to the GC heap, fall back to the conservative
///    plan) when a guard fires or a failure is injected.
///
/// Every hook defaults to a no-op so implementations override only what
/// they observe. Engines hold a nullable pointer: a null hook costs one
/// branch per call site and nothing else.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_SPECHOOKS_H
#define EAL_RUNTIME_SPECHOOKS_H

#include <cstdint>

namespace eal {

class SpecHooks {
public:
  virtual ~SpecHooks() = default;

  /// Control entered the given branch expression of an `if`. The
  /// tree-walker reports every branch; the VM reports only guarded
  /// branches (via the guard.spec opcode, which calls guardReached
  /// directly). A speculative runtime deopts here when the branch is
  /// one a speculation assumed cold.
  virtual void branchEntered(uint32_t BranchExprId) { (void)BranchExprId; }

  /// A guard.spec opcode fired: the VM entered the pruned branch guard
  /// \p GuardIndex materializes.
  virtual void guardReached(uint32_t GuardIndex) { (void)GuardIndex; }

  /// Whether the speculative directive with the given SpecIndex is
  /// still armed (its guard has not failed). Disarmed directives
  /// allocate on the GC heap like the conservative plan would.
  virtual bool directiveArmed(int32_t SpecIndex) {
    (void)SpecIndex;
    return false;
  }

  /// An arena backing the armed speculative directive \p SpecIndex was
  /// created with handle \p Handle.
  virtual void arenaOpened(int32_t SpecIndex, uint32_t Handle) {
    (void)SpecIndex;
    (void)Handle;
  }

  /// Called by the engines immediately before *any* arena free in a
  /// speculation-enabled run. Handles the runtime never saw in
  /// arenaOpened are not speculative and must be ignored. This is where
  /// deterministic guard-failure injection (--spec-inject-deopt) fires.
  virtual void arenaClosing(uint32_t Handle) { (void)Handle; }
};

} // namespace eal

#endif // EAL_RUNTIME_SPECHOOKS_H

//===- ValuePrinter.cpp ---------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "runtime/ValuePrinter.h"

#include <sstream>

using namespace eal;

std::string eal::renderValue(RtValue V, size_t MaxElements) {
  std::ostringstream OS;
  switch (V.kind()) {
  case RtValueKind::Int:
    OS << V.intValue();
    break;
  case RtValueKind::Bool:
    OS << (V.boolValue() ? "true" : "false");
    break;
  case RtValueKind::Nil:
    OS << "[]";
    break;
  case RtValueKind::Closure:
    OS << "<fun>";
    break;
  case RtValueKind::Pair:
    OS << '(' << renderValue(V.cell()->Car, MaxElements) << ", "
       << renderValue(V.cell()->Cdr, MaxElements) << ')';
    break;
  case RtValueKind::Cons: {
    OS << '[';
    RtValue Cur = V;
    size_t N = 0;
    while (Cur.isCons()) {
      if (N++ != 0)
        OS << ", ";
      if (N > MaxElements) {
        OS << "...";
        break;
      }
      OS << renderValue(Cur.cell()->Car, MaxElements);
      Cur = Cur.cell()->Cdr;
    }
    if (!Cur.isCons() && !Cur.isNil())
      OS << " . " << renderValue(Cur, MaxElements);
    OS << ']';
    break;
  }
  }
  return OS.str();
}

std::vector<int64_t> eal::valueToIntVector(RtValue V) {
  std::vector<int64_t> Out;
  while (V.isCons()) {
    RtValue Head = V.cell()->Car;
    if (!Head.isInt())
      return {};
    Out.push_back(Head.intValue());
    V = V.cell()->Cdr;
  }
  return Out;
}

//===- ValuePrinter.h - rendering runtime values -----------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rendering and conversion of runtime values, shared by both execution
/// engines, tests, and tools.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_RUNTIME_VALUEPRINTER_H
#define EAL_RUNTIME_VALUEPRINTER_H

#include "runtime/RtValue.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eal {

/// Renders \p V: "42", "true", "[1, 2, 3]", "(1, [2])", "<fun>". Long
/// structures are truncated with "...".
std::string renderValue(RtValue V, size_t MaxElements = 64);

/// Flattens an int list value into a vector (empty on mismatch).
std::vector<int64_t> valueToIntVector(RtValue V);

} // namespace eal

#endif // EAL_RUNTIME_VALUEPRINTER_H

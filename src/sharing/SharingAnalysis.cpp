//===- SharingAnalysis.cpp ------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "sharing/SharingAnalysis.h"

#include "lang/AstUtils.h"

#include <algorithm>
#include <sstream>

using namespace eal;

std::optional<SharingResult> SharingAnalysis::resultSharing(Symbol Fn) const {
  const FunctionEscape *FE = Report.find(Fn);
  if (!FE)
    return std::nullopt;
  // Clause 2: u_i = 0 for every argument, so min{esc_i, d_i − 0} = esc_i
  // (esc_i ≤ d_i always).
  std::vector<unsigned> Zero(FE->Arity, 0);
  return resultSharing(Fn, Zero);
}

std::optional<SharingResult>
SharingAnalysis::resultSharing(Symbol Fn,
                               std::span<const unsigned> ArgUnshared) const {
  const FunctionEscape *FE = Report.find(Fn);
  if (!FE || ArgUnshared.size() != FE->Arity)
    return std::nullopt;
  unsigned MaxSharedEscape = 0;
  for (unsigned I = 0; I != FE->Arity; ++I) {
    const ParamEscape &PE = FE->Params[I];
    unsigned D = PE.ParamSpines;
    unsigned U = std::min(ArgUnshared[I], D);
    // The spines of e_i that may be shared number d_i − u_i; of those,
    // at most esc_i can escape into the result.
    unsigned SharedEscaping = std::min(escapingSpines(PE), D - U);
    MaxSharedEscape = std::max(MaxSharedEscape, SharedEscaping);
  }
  SharingResult SR;
  SR.Function = Fn;
  SR.ResultSpines = FE->ResultSpines;
  SR.UnsharedTopSpines =
      FE->ResultSpines >= MaxSharedEscape ? FE->ResultSpines - MaxSharedEscape
                                          : 0;
  if (Prov) {
    // One fact per (function, argument-sharing vector): the clause-2
    // derivation (all u_i = 0) and every clause-1 instantiation get
    // their own node, each citing the G facts it consumed.
    uint64_t Key = Fn.id();
    for (unsigned U : ArgUnshared)
      Key = Key * 1000003u + U + 1;
    uint32_t SF = Prov->lookup(explain::FactKind::Sharing, ProvNs, Key);
    if (SF == explain::NoFact) {
      SF = Prov->create(explain::FactKind::Sharing, ProvNs, Key,
                        "unshared(" + std::string(Ast.spelling(Fn)) +
                            " result)",
                        "Theorem 2: d_f − max_i{min{esc_i, d_i − u_i}}",
                        SourceLoc::invalid());
      for (const ParamEscape &PE : FE->Params)
        Prov->depend(SF, PE.Prov);
      Prov->result(SF, "top " + std::to_string(SR.UnsharedTopSpines) +
                           " of " + std::to_string(SR.ResultSpines) +
                           " result spine(s) unshared");
    }
    SR.Prov = SF;
  }
  return SR;
}

unsigned SharingAnalysis::unsharedTopSpines(
    const Expr *E,
    const std::unordered_map<uint32_t, unsigned> *Assumptions) const {
  unsigned Spines = spineCount(Program.typeOf(E));
  if (Spines == 0)
    return 0;
  switch (E->kind()) {
  case ExprKind::NilLit:
    return Spines; // the empty list shares nothing
  case ExprKind::Var: {
    if (!Assumptions)
      return 0;
    auto It = Assumptions->find(cast<VarExpr>(E)->name().id());
    return It != Assumptions->end() ? std::min(It->second, Spines) : 0;
  }
  case ExprKind::If: {
    const auto *If = cast<IfExpr>(E);
    return std::min(unsharedTopSpines(If->thenExpr(), Assumptions),
                    unsharedTopSpines(If->elseExpr(), Assumptions));
  }
  case ExprKind::Let:
    return unsharedTopSpines(cast<LetExpr>(E)->body(), Assumptions);
  case ExprKind::Letrec:
    return unsharedTopSpines(cast<LetrecExpr>(E)->body(), Assumptions);
  case ExprKind::App: {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(E, Args);
    // cons a b: the new cell is fresh; the top spine is unshared as far
    // as b's is, deeper spines as far as a's (shifted down one level).
    if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
      // The tail b contributes cells to the *same* spine levels as the
      // result; the head a contributes one level deeper.
      if (Prim->op() == PrimOp::Cons && Args.size() == 2)
        return std::min({unsharedTopSpines(Args[0], Assumptions) + 1,
                         unsharedTopSpines(Args[1], Assumptions), Spines});
      // car extracts an element: its top spine is the argument's second
      // spine, so the unshared prefix shifts up one level. cdr shares the
      // argument's spines at the same levels.
      if (Prim->op() == PrimOp::Car && Args.size() == 1) {
        unsigned U = unsharedTopSpines(Args[0], Assumptions);
        return U > 0 ? U - 1 : 0;
      }
      if (Prim->op() == PrimOp::Cdr && Args.size() == 1)
        return unsharedTopSpines(Args[0], Assumptions);
      return 0;
    }
    // A saturated call of a known top-level function: Theorem 2 clause 1
    // with recursively inferred argument sharing.
    if (const auto *Var = dyn_cast<VarExpr>(Callee)) {
      const FunctionEscape *FE = Report.find(Var->name());
      if (FE && FE->Arity == Args.size()) {
        std::vector<unsigned> ArgU;
        ArgU.reserve(Args.size());
        for (const Expr *Arg : Args)
          ArgU.push_back(unsharedTopSpines(Arg, Assumptions));
        if (auto SR = resultSharing(Var->name(), ArgU))
          return SR->UnsharedTopSpines;
      }
    }
    return 0;
  }
  default:
    return 0; // variables and anything else: possibly shared
  }
}

unsigned SharingAnalysis::reusableTopSpines(
    Symbol Fn, unsigned ParamIndex, const Expr *ArgExpr,
    const std::unordered_map<uint32_t, unsigned> *Assumptions) const {
  const FunctionEscape *FE = Report.find(Fn);
  if (!FE || ParamIndex >= FE->Arity)
    return 0;
  const ParamEscape &PE = FE->Params[ParamIndex];
  unsigned U = unsharedTopSpines(ArgExpr, Assumptions);
  unsigned Budget = std::min(U, PE.protectedTopSpines());
  if (Prov) {
    // The §6 reuse budget for this concrete argument expression.
    uint64_t Key = (static_cast<uint64_t>(ArgExpr->id()) << 32) |
                   (static_cast<uint64_t>(ParamIndex) << 8) |
                   (Fn.id() & 0xFFu);
    uint32_t BF = Prov->lookup(explain::FactKind::Sharing, ProvNs, Key);
    if (BF == explain::NoFact) {
      BF = Prov->create(explain::FactKind::Sharing, ProvNs, Key,
                        "reuse budget(" + std::string(Ast.spelling(Fn)) +
                            ", " + std::to_string(ParamIndex + 1) + ")",
                        "§6: min{u_i, d_i − esc_i}", ArgExpr->loc());
      Prov->depend(BF, PE.Prov);
      Prov->result(BF, "u=" + std::to_string(U) + ", protected=" +
                           std::to_string(PE.protectedTopSpines()) +
                           " → may reuse top " + std::to_string(Budget) +
                           " spine(s)");
    }
  }
  return Budget;
}

std::string eal::renderSharingReport(const AstContext &Ast,
                                     const TypedProgram &Program,
                                     const ProgramEscapeReport &Report) {
  SharingAnalysis SA(Ast, Program, Report);
  std::ostringstream OS;
  for (const FunctionEscape &FE : Report.Functions) {
    auto SR = SA.resultSharing(FE.Name);
    if (!SR)
      continue;
    OS << Ast.spelling(FE.Name) << ": result has " << SR->ResultSpines
       << " spine(s); top " << SR->UnsharedTopSpines
       << " unshared for any arguments\n";
  }
  return OS.str();
}

//===- SharingAnalysis.h - Sharing from escape info (§6) --------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 2: in a strict language, escape information yields sharing
/// information. For a call (f e1 ... en) where parameter i has d_i spines,
/// esc_i of them escape, and the argument e_i has u_i unshared top spines:
///
///  1. all cons cells in the top
///       d_f − max_i { min { esc_i, d_i − u_i } }
///     spines of the result are unshared;
///  2. with no argument information (u_i = 0), all cells in the top
///       d_f − max_i { esc_i }
///     spines of the result are unshared.
///
/// The module also infers u_i for argument expressions with simple
/// structural rules (fresh literals are fully unshared; calls use clause
/// 1/2 recursively; variables are unknown), and derives the in-place-reuse
/// budget of §6: f may reuse the top min{u_i, d_i − esc_i} spines of its
/// i-th argument.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SHARING_SHARINGANALYSIS_H
#define EAL_SHARING_SHARINGANALYSIS_H

#include "escape/EscapeAnalyzer.h"

#include <optional>
#include <span>
#include <string>
#include <unordered_map>

namespace eal {

/// Sharing facts about one function's result.
struct SharingResult {
  Symbol Function;
  /// d_f: spine count of the result type.
  unsigned ResultSpines = 0;
  /// How many top spines of the result are unshared.
  unsigned UnsharedTopSpines = 0;
  /// Why-provenance: the Sharing fact recorded for this derivation (cites
  /// the escape facts it consumed, per Theorem 2); explain::NoFact when
  /// no recorder is attached.
  uint32_t Prov = explain::NoFact;
};

/// Derives sharing facts from a program's global escape report.
class SharingAnalysis {
public:
  /// \p Report must come from an EscapeAnalyzer over the same program.
  SharingAnalysis(const AstContext &Ast, const TypedProgram &Program,
                  const ProgramEscapeReport &Report)
      : Ast(Ast), Program(Program), Report(Report) {}

  /// Attaches a why-provenance recorder: subsequent resultSharing()
  /// derivations record Sharing facts citing the ParamEscape facts they
  /// consumed (Theorem 2). The recorder must outlive the analysis.
  void attachProvenance(explain::ProvenanceRecorder *P) {
    Prov = P;
    if (P)
      ProvNs = P->allocNamespace();
  }

  /// Theorem 2 clause 2: unshared top spines of f's result for *any*
  /// arguments. Returns nullopt for unknown functions or non-list
  /// results.
  std::optional<SharingResult> resultSharing(Symbol Fn) const;

  /// Theorem 2 clause 1: unshared top spines of f's result given the
  /// unshared-top-spine counts \p ArgUnshared of the actual arguments
  /// (must have one entry per parameter).
  std::optional<SharingResult>
  resultSharing(Symbol Fn, std::span<const unsigned> ArgUnshared) const;

  /// Structurally infers the unshared top spines u of expression \p E:
  ///   u(nil)            = spines (vacuously fresh)
  ///   u(cons a b)       = min(u(a) + 1, u(b))   [fresh cell + b's spine]
  ///   u(car e)          = max(u(e) − 1, 0)      [levels shift up one]
  ///   u(cdr e)          = u(e)                  [same levels]
  ///   u(f e1...en)      = clause 1 with inferred argument sharing
  ///   u(if c t e)       = min(u(t), u(e))
  ///   u(let/letrec...)  = u(body)
  ///   u(anything else)  = 0 (unknown / possibly shared)
  ///
  /// \p Assumptions optionally supplies known u values for variables
  /// (keyed by Symbol id); the in-place-reuse transformation uses this to
  /// record that inside f' the reused parameter's top spine is unshared.
  unsigned unsharedTopSpines(
      const Expr *E,
      const std::unordered_map<uint32_t, unsigned> *Assumptions =
          nullptr) const;

  /// The §6 reuse budget: how many top spines of argument \p ArgExpr the
  /// callee \p Fn may destructively reuse in parameter \p ParamIndex
  /// (0-based): min{u_i, d_i − esc_i}.
  unsigned reusableTopSpines(Symbol Fn, unsigned ParamIndex,
                             const Expr *ArgExpr,
                             const std::unordered_map<uint32_t, unsigned>
                                 *Assumptions = nullptr) const;

private:
  /// The k of G(f,i) as the esc_i of Theorem 2 (0 when nothing escapes).
  static unsigned escapingSpines(const ParamEscape &PE) {
    return PE.Escape.isContained() ? PE.Escape.spines() : 0;
  }

  const AstContext &Ast;
  const TypedProgram &Program;
  const ProgramEscapeReport &Report;
  /// Why-provenance recorder (null: record nothing). The pointee is
  /// mutated from const query methods — recording observes, it does not
  /// change any analysis result.
  explain::ProvenanceRecorder *Prov = nullptr;
  uint32_t ProvNs = 0;
};

/// Renders clause-2 sharing facts for every function in \p Report
/// (Appendix A.2 style).
std::string renderSharingReport(const AstContext &Ast,
                                const TypedProgram &Program,
                                const ProgramEscapeReport &Report);

} // namespace eal

#endif // EAL_SHARING_SHARINGANALYSIS_H

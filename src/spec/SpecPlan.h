//===- SpecPlan.h - Speculative allocation plan -----------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data model of the speculative tier (docs/SPECULATION.md). A
/// SpecPlan is the conservative AllocationPlan plus zero or more
/// *speculations*: bets that a profile-cold if-branch never runs. Each
/// speculation prunes its cold branch, re-runs the escape analysis on
/// the pruned program, and back-maps the extra arena directives the
/// analysis then proves; those directives carry the speculation's index
/// in ArgArenaDirective::SpecIndex and are honored by the engines only
/// while the speculation's guard holds. Entering the pruned branch at
/// run time fires the guard and triggers the global deopt protocol
/// (spec::SpecRuntime).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SPEC_SPECPLAN_H
#define EAL_SPEC_SPECPLAN_H

#include "escape/EscapeAnalyzer.h"
#include "opt/AllocPlanner.h"
#include "types/TypeInference.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace eal {
namespace spec {

/// One guarded bet: "this if-branch never runs".
struct Speculation {
  /// Node id of the IfExpr whose branch was pruned.
  uint32_t IfExprId = 0;
  /// Node id of the pruned (assumed-cold) branch expression. Entering
  /// this branch is the guard-failure event: the tree-walker reports it
  /// via SpecHooks::branchEntered, the VM via a guard.spec instruction
  /// materialized at the top of the branch's code.
  uint32_t GuardBranchId = 0;
  SourceLoc IfLoc;
  SourceLoc GuardLoc;
  /// Profile evidence from the pre-run: entry counts of the kept (hot)
  /// and pruned (cold) branches.
  uint64_t HotEntries = 0;
  uint64_t ColdEntries = 0;
  /// Indices into SpecPlan::Merged.Directives of the speculative
  /// directives this guard protects.
  std::vector<uint32_t> DirectiveIndices;
  /// The FactKind::Speculation fact recorded for this bet (explain::
  /// NoFact when no recorder was attached).
  uint32_t ProvenanceRef = explain::NoFact;
};

/// The merged plan both engines execute.
struct SpecPlan {
  /// Conservative directives (SpecIndex == -1) followed by speculative
  /// ones (SpecIndex == index into Specs), indexed and ready for the
  /// compiler/interpreter.
  AllocationPlan Merged;
  std::vector<Speculation> Specs;
  /// Pruned-branch expression id -> speculation index. The interpreter
  /// consults this via SpecRuntime::branchEntered on every if; the
  /// compiler materializes a guard.spec at each key's code.
  std::unordered_map<uint32_t, uint32_t> GuardsByBranch;

  bool anySpeculation() const { return !Specs.empty(); }
};

/// Knobs for the speculative planner.
struct SpecPlannerOptions {
  /// A branch is prunable when its profile entry count is at most this
  /// (default: only never-entered branches).
  uint64_t ColdMaxEntries = 0;
  /// Profit filter: a speculation is kept only if some directive it
  /// enables covers a site with at least this many profiled heap
  /// allocations — no point guarding a site that never allocates.
  uint64_t HotMinAllocs = 8;
  /// At most this many guards per program (preorder over the AST).
  unsigned MaxGuards = 16;
  /// The pruned-clone re-analysis must match the conservative pipeline's
  /// configuration, or the back-mapped directives would compare apples
  /// to oranges.
  TypeInferenceMode Mode = TypeInferenceMode::Polymorphic;
  EscapeAnalysisMode Analysis = EscapeAnalysisMode::SpineAware;
  bool EnableStack = true;
  bool EnableRegion = true;
  /// Why-provenance recorder: when attached, every accepted speculation
  /// records a FactKind::Speculation fact citing its profile evidence.
  explain::ProvenanceRecorder *Prov = nullptr;
};

} // namespace spec
} // namespace eal

#endif // EAL_SPEC_SPECPLAN_H

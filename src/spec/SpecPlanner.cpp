//===- SpecPlanner.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "spec/SpecPlanner.h"

#include "lang/AstCloner.h"
#include "lang/AstUtils.h"
#include "prof/Profiler.h"
#include "support/Diagnostics.h"
#include "types/Type.h"

#include <sstream>

using namespace eal;
using namespace eal::spec;

namespace {

/// Clones the program with one if-branch pruned: the target If becomes
/// `let $spec = cond in kept` — the condition is still evaluated (so the
/// clone's heap behavior matches the real program up to the guard), but
/// only the kept branch's code exists for the analysis to reason about.
/// "$spec" starts with '$', which no nml identifier can, so the binding
/// cannot capture. Every clone node is mapped back to the original node
/// it was cloned from; the synthetic Let maps to the pruned If.
class PruneCloner : public AstCloner {
public:
  PruneCloner(AstContext &Ctx, const IfExpr *Target, const Expr *Kept,
              Symbol GuardSym,
              std::unordered_map<uint32_t, uint32_t> &CloneToOrig)
      : AstCloner(Ctx), Target(Target), Kept(Kept), GuardSym(GuardSym),
        Map(CloneToOrig) {}

protected:
  const Expr *rewrite(const Expr *E) override {
    const Expr *New;
    if (E == Target)
      New = Ctx.createLet(E->range(), GuardSym, clone(Target->cond()),
                          clone(Kept));
    else
      New = cloneDefault(E);
    Map.emplace(New->id(), E->id());
    return New;
  }

private:
  const IfExpr *Target;
  const Expr *Kept;
  Symbol GuardSym;
  std::unordered_map<uint32_t, uint32_t> &Map;
};

/// One prunable branch found by the profile scan.
struct Candidate {
  const IfExpr *If = nullptr;
  const Expr *Kept = nullptr;
  const Expr *Pruned = nullptr;
  uint64_t HotEntries = 0;
  uint64_t ColdEntries = 0;
};

uint64_t callArgKey(uint32_t CallAppId, unsigned ArgIndex) {
  return (static_cast<uint64_t>(CallAppId) << 32) | ArgIndex;
}

} // namespace

SpecPlan spec::planSpeculation(AstContext &Ast, const Expr *Root,
                               const AllocationPlan &Conservative,
                               const BranchProfile &Branches,
                               const prof::Profiler &Profile,
                               const SpecPlannerOptions &Options) {
  SpecPlan Plan;
  Plan.Merged.Directives = Conservative.Directives;

  // (call, argument) pairs already planned — conservatively or by an
  // earlier speculation. A speculative directive never displaces or
  // augments an existing one; it only fills holes the conservative
  // analysis had to leave.
  std::unordered_set<uint64_t> Occupied;
  for (const ArgArenaDirective &D : Conservative.Directives)
    Occupied.insert(callArgKey(D.CallAppId, D.ArgIndex));

  // Profile scan: ifs where exactly one branch is cold (at most
  // ColdMaxEntries entries) while the other actually ran. An if that
  // never executed at all has no evidence either way and is skipped.
  std::vector<Candidate> Candidates;
  forEachExpr(Root, [&](const Expr *E) {
    if (E->kind() != ExprKind::If)
      return;
    const auto *If = cast<IfExpr>(E);
    uint64_t ThenN = Branches.entries(If->thenExpr()->id());
    uint64_t ElseN = Branches.entries(If->elseExpr()->id());
    Candidate C;
    C.If = If;
    if (ElseN <= Options.ColdMaxEntries && ThenN > Options.ColdMaxEntries) {
      C.Kept = If->thenExpr();
      C.Pruned = If->elseExpr();
      C.HotEntries = ThenN;
      C.ColdEntries = ElseN;
    } else if (ThenN <= Options.ColdMaxEntries &&
               ElseN > Options.ColdMaxEntries) {
      C.Kept = If->elseExpr();
      C.Pruned = If->thenExpr();
      C.HotEntries = ElseN;
      C.ColdEntries = ThenN;
    } else {
      return;
    }
    Candidates.push_back(C);
  });

  Symbol GuardSym = Ast.intern("$spec");

  for (const Candidate &C : Candidates) {
    if (Plan.Specs.size() >= Options.MaxGuards)
      break;
    // A branch can appear under at most one guard (nested prunable ifs
    // share deopt behavior anyway — the protocol is global).
    if (Plan.GuardsByBranch.count(C.Pruned->id()))
      continue;

    // Re-analyze the branch-pruned clone with scratch contexts: the
    // original program's types and diagnostics are never touched.
    std::unordered_map<uint32_t, uint32_t> CloneToOrig;
    PruneCloner Cloner(Ast, C.If, C.Kept, GuardSym, CloneToOrig);
    const Expr *CloneRoot = Cloner.clone(Root);

    DiagnosticEngine ScratchDiags;
    TypeContext ScratchTypes;
    TypeInference Inference(Ast, ScratchTypes, ScratchDiags, Options.Mode);
    std::optional<TypedProgram> Typed = Inference.run(CloneRoot);
    if (!Typed || ScratchDiags.hasErrors())
      continue;

    EscapeAnalyzer Analyzer(Ast, *Typed, ScratchDiags, 512, Options.Analysis);
    AllocPlannerOptions PlannerOptions;
    PlannerOptions.EnableStack = Options.EnableStack;
    PlannerOptions.EnableRegion = Options.EnableRegion;
    AllocPlanner Planner(Ast, *Typed, Analyzer, PlannerOptions);
    AllocationPlan ClonePlan = Planner.run();

    // Back-map the clone's directives onto the original AST, keeping
    // only the genuinely new ones (a hole in the conservative plan) that
    // are worth guarding (some covered site allocated hot in the
    // profile pre-run).
    std::vector<ArgArenaDirective> Mapped;
    bool SawHotSite = false;
    for (const ArgArenaDirective &D : ClonePlan.Directives) {
      auto CallIt = CloneToOrig.find(D.CallAppId);
      if (CallIt == CloneToOrig.end())
        continue;
      if (Occupied.count(callArgKey(CallIt->second, D.ArgIndex)))
        continue;
      ArgArenaDirective M;
      M.CallAppId = CallIt->second;
      M.ArgIndex = D.ArgIndex;
      M.Callee = D.Callee;
      M.ProtectedSpines = D.ProtectedSpines;
      bool AllSitesMapped = true;
      for (const auto &[CloneSite, Class] : D.Sites) {
        auto SiteIt = CloneToOrig.find(CloneSite);
        if (SiteIt == CloneToOrig.end()) {
          AllSitesMapped = false;
          break;
        }
        M.Sites.emplace(SiteIt->second, Class);
        const prof::SiteCounters *SC = Profile.site(SiteIt->second);
        if (SC &&
            SC->Allocs[static_cast<unsigned>(prof::Storage::Heap)] >=
                Options.HotMinAllocs)
          SawHotSite = true;
      }
      if (!AllSitesMapped || M.Sites.empty())
        continue;
      Mapped.push_back(std::move(M));
    }
    if (Mapped.empty() || !SawHotSite)
      continue;

    // Accept: record the speculation, arm its directives.
    uint32_t SpecIdx = static_cast<uint32_t>(Plan.Specs.size());
    Speculation S;
    S.IfExprId = C.If->id();
    S.GuardBranchId = C.Pruned->id();
    S.IfLoc = C.If->loc();
    S.GuardLoc = C.Pruned->loc();
    S.HotEntries = C.HotEntries;
    S.ColdEntries = C.ColdEntries;

    if (Options.Prov) {
      std::ostringstream Label, Result;
      Label << "speculate(if@" << C.If->id() << ", prune "
            << (C.Pruned == C.If->elseExpr() ? "else" : "then")
            << ", hot=" << C.HotEntries << ", cold=" << C.ColdEntries << ')';
      Result << Mapped.size() << " guarded directive(s)";
      S.ProvenanceRef = Options.Prov->fresh(
          explain::FactKind::Speculation, Label.str(),
          "partial escape analysis with deoptimization "
          "(docs/SPECULATION.md)",
          C.If->loc());
      Options.Prov->result(S.ProvenanceRef, Result.str());
    }

    for (ArgArenaDirective &M : Mapped) {
      M.SpecIndex = static_cast<int32_t>(SpecIdx);
      M.ProvenanceRef = S.ProvenanceRef;
      Occupied.insert(callArgKey(M.CallAppId, M.ArgIndex));
      S.DirectiveIndices.push_back(
          static_cast<uint32_t>(Plan.Merged.Directives.size()));
      Plan.Merged.Directives.push_back(std::move(M));
    }
    Plan.GuardsByBranch.emplace(S.GuardBranchId, SpecIdx);
    Plan.Specs.push_back(std::move(S));
  }

  Plan.Merged.index();
  return Plan;
}

//===- SpecPlanner.h - Profile-guided speculative planning ------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided partial escape analysis (docs/SPECULATION.md).
/// Given the conservative plan and an if-branch entry profile from a
/// pre-run, the planner enumerates profile-cold branches, clones the
/// program with each candidate branch pruned (the condition is still
/// evaluated, for effect/step parity), re-runs type inference, the
/// escape analysis, and the allocation planner on the clone, and
/// back-maps any *new* directives onto the original AST as guarded
/// speculative directives. The analogy is partial escape analysis with
/// deoptimization (Stadler et al.; MoarVM's spesh): allocations that
/// escape only on a cold path are optimistically placed as if that path
/// did not exist, with a runtime guard to undo the bet.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SPEC_SPECPLANNER_H
#define EAL_SPEC_SPECPLANNER_H

#include "runtime/SpecHooks.h"
#include "spec/SpecPlan.h"

#include <cstdint>
#include <unordered_map>

namespace eal {

namespace prof {
class Profiler;
}

namespace spec {

/// Counts if-branch entries during the profiling pre-run. The
/// tree-walking interpreter reports every chosen branch through
/// SpecHooks::branchEntered; nml is deterministic with no input, so the
/// counts are exact for the real run, not a sample of it.
class BranchProfile : public SpecHooks {
public:
  void branchEntered(uint32_t BranchExprId) override {
    ++Entries[BranchExprId];
  }

  uint64_t entries(uint32_t BranchExprId) const {
    auto It = Entries.find(BranchExprId);
    return It == Entries.end() ? 0 : It->second;
  }

  size_t numBranchesSeen() const { return Entries.size(); }

private:
  std::unordered_map<uint32_t, uint64_t> Entries;
};

/// Plans speculations for \p Root (the optimized program the engines
/// will execute). \p Conservative is the plan the optimizer proved
/// without betting; \p Branches and \p Profile come from the profiling
/// pre-run of the same program. Clones are allocated into \p Ast and
/// analyzed with scratch type/diagnostic contexts; the original program
/// and its contexts are never mutated. The returned plan's Merged
/// directives are indexed and ready to execute.
SpecPlan planSpeculation(AstContext &Ast, const Expr *Root,
                         const AllocationPlan &Conservative,
                         const BranchProfile &Branches,
                         const prof::Profiler &Profile,
                         const SpecPlannerOptions &Options);

} // namespace spec
} // namespace eal

#endif // EAL_SPEC_SPECPLANNER_H

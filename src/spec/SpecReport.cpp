//===- SpecReport.cpp -----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "spec/SpecReport.h"

#include "lang/Ast.h"
#include "support/SourceManager.h"
#include "support/Trace.h"

#include <algorithm>
#include <sstream>

using namespace eal;
using namespace eal::spec;

namespace {

std::string locString(const SourceManager &SM, SourceLoc Loc) {
  std::ostringstream OS;
  if (Loc.isValid()) {
    LineColumn LC = SM.lineColumn(Loc);
    OS << SM.name() << ':' << LC.Line << ':' << LC.Column;
  } else {
    OS << SM.name() << ":?:?";
  }
  return OS.str();
}

/// Sites of a directive sorted by id, for deterministic output.
std::vector<std::pair<uint32_t, ArenaSiteClass>>
sortedSites(const ArgArenaDirective &D) {
  std::vector<std::pair<uint32_t, ArenaSiteClass>> Sites(D.Sites.begin(),
                                                         D.Sites.end());
  std::sort(Sites.begin(), Sites.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  return Sites;
}

const char *siteClassName(ArenaSiteClass C) {
  return C == ArenaSiteClass::Stack ? "stack" : "region";
}

size_t countConservative(const SpecPlan &Plan) {
  size_t N = 0;
  for (const ArgArenaDirective &D : Plan.Merged.Directives)
    if (D.SpecIndex < 0)
      ++N;
  return N;
}

} // namespace

std::string spec::renderSpecReport(const SpecPlan &Plan,
                                   const SpecRuntime *Runtime,
                                   const AstContext &Ast,
                                   const SourceManager &SM) {
  std::ostringstream OS;
  size_t NumSpecDirectives = Plan.Merged.Directives.size() -
                             countConservative(Plan);
  OS << "speculation plan: " << Plan.Specs.size() << " speculation(s), "
     << NumSpecDirectives << " speculative directive(s), "
     << countConservative(Plan) << " conservative directive(s)\n";
  for (size_t I = 0; I != Plan.Specs.size(); ++I) {
    const Speculation &S = Plan.Specs[I];
    OS << "spec #" << I << ": guarded branch at " << locString(SM, S.GuardLoc)
       << " (if at " << locString(SM, S.IfLoc) << "); profile hot="
       << S.HotEntries << " cold=" << S.ColdEntries << '\n';
    for (uint32_t DirIdx : S.DirectiveIndices) {
      const ArgArenaDirective &D = Plan.Merged.Directives[DirIdx];
      OS << "  call of " << Ast.spelling(D.Callee) << " (node "
         << D.CallAppId << "), argument " << (D.ArgIndex + 1) << ": top "
         << D.ProtectedSpines << " spine(s) protected; sites";
      bool First = true;
      for (const auto &[Site, Class] : sortedSites(D)) {
        OS << (First ? " " : ", ") << Site << " [" << siteClassName(Class)
           << ']';
        First = false;
      }
      OS << '\n';
    }
  }
  if (!Runtime) {
    OS << "status: planned (not executed)\n";
    return OS.str();
  }
  const SpecStats &St = Runtime->stats();
  if (Runtime->deopted())
    OS << "status: deopted (" << Runtime->deoptCause() << ")";
  else
    OS << "status: held";
  OS << " — " << St.GuardHits << " guard hit(s), " << St.Deopts
     << " deopt(s), " << St.CellsMigrated << " cell(s) migrated, "
     << St.ArenasOpened << " arena(s) opened\n";
  return OS.str();
}

std::string spec::specPlanToJson(const SpecPlan &Plan,
                                 const SpecRuntime *Runtime,
                                 const AstContext &Ast,
                                 const SourceManager &SM) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"schema\": \"eal-spec-v1\",\n"
     << "  \"program\": " << obs::jsonQuote(SM.name()) << ",\n";

  OS << "  \"speculations\": [";
  for (size_t I = 0; I != Plan.Specs.size(); ++I) {
    const Speculation &S = Plan.Specs[I];
    LineColumn IfLC = SM.lineColumn(S.IfLoc);
    LineColumn GuardLC = SM.lineColumn(S.GuardLoc);
    OS << (I ? ",\n" : "\n") << "    {\"index\": " << I
       << ", \"if\": {\"id\": " << S.IfExprId << ", \"line\": " << IfLC.Line
       << ", \"col\": " << IfLC.Column << "},\n     \"guard\": {\"branch_id\": "
       << S.GuardBranchId << ", \"line\": " << GuardLC.Line << ", \"col\": "
       << GuardLC.Column << "},\n     \"profile\": {\"hot_entries\": "
       << S.HotEntries << ", \"cold_entries\": " << S.ColdEntries << "},\n"
       << "     \"directives\": [";
    for (size_t J = 0; J != S.DirectiveIndices.size(); ++J) {
      const ArgArenaDirective &D = Plan.Merged.Directives[S.DirectiveIndices[J]];
      OS << (J ? ",\n       " : "\n       ") << "{\"call\": "
         << obs::jsonQuote(std::string(Ast.spelling(D.Callee)))
         << ", \"call_id\": " << D.CallAppId << ", \"arg\": " << D.ArgIndex
         << ", \"protected_spines\": " << D.ProtectedSpines
         << ", \"sites\": [";
      bool First = true;
      for (const auto &[Site, Class] : sortedSites(D)) {
        OS << (First ? "" : ", ") << "{\"id\": " << Site << ", \"class\": "
           << obs::jsonQuote(siteClassName(Class)) << '}';
        First = false;
      }
      OS << "]}";
    }
    OS << "\n     ]}";
  }
  OS << "\n  ],\n";

  OS << "  \"runtime\": ";
  if (!Runtime) {
    OS << "null\n";
  } else {
    const SpecStats &St = Runtime->stats();
    OS << "{\"deopted\": " << (Runtime->deopted() ? "true" : "false")
       << ", \"cause\": ";
    if (Runtime->deoptCause().empty())
      OS << "null";
    else
      OS << obs::jsonQuote(Runtime->deoptCause());
    OS << ", \"arenas_opened\": " << St.ArenasOpened << ", \"guard_hits\": "
       << St.GuardHits << ", \"deopts\": " << St.Deopts
       << ", \"injected_deopts\": " << St.InjectedDeopts
       << ", \"cells_migrated\": " << St.CellsMigrated << "}\n";
  }
  OS << "}\n";
  return OS.str();
}

//===- SpecReport.h - Speculation reporting ---------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text and JSON renderings of a speculation plan and its runtime
/// outcome: the `eal spec` report (golden-tested) and the `eal-spec-v1`
/// JSON document validated by tools/check_spec_json.py.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SPEC_SPECREPORT_H
#define EAL_SPEC_SPECREPORT_H

#include "spec/SpecPlan.h"
#include "spec/SpecRuntime.h"

#include <string>

namespace eal {

class AstContext;
class SourceManager;

namespace spec {

/// The `eal spec` report: every speculation with its profile evidence
/// and guarded directives, then the runtime outcome (held / deopted).
/// \p Runtime may be null when the program was planned but not run.
std::string renderSpecReport(const SpecPlan &Plan, const SpecRuntime *Runtime,
                             const AstContext &Ast, const SourceManager &SM);

/// The eal-spec-v1 JSON document for the same data.
std::string specPlanToJson(const SpecPlan &Plan, const SpecRuntime *Runtime,
                           const AstContext &Ast, const SourceManager &SM);

} // namespace spec
} // namespace eal

#endif // EAL_SPEC_SPECREPORT_H

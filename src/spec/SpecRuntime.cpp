//===- SpecRuntime.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "spec/SpecRuntime.h"

#include "obs/Recorder.h"
#include "runtime/Heap.h"
#include "support/Metrics.h"

#include <cassert>

using namespace eal;
using namespace eal::spec;

SpecRuntime::SpecRuntime(const SpecPlan &Plan, SpecInjection Inject)
    : Plan(Plan), Inject(Inject) {
  SpecSites.resize(Plan.Specs.size());
  for (size_t I = 0; I != Plan.Specs.size(); ++I)
    for (uint32_t DirIdx : Plan.Specs[I].DirectiveIndices)
      for (const auto &[Site, Class] : Plan.Merged.Directives[DirIdx].Sites)
        SpecSites[I].insert(Site);
}

void SpecRuntime::branchEntered(uint32_t BranchExprId) {
  auto It = Plan.GuardsByBranch.find(BranchExprId);
  if (It == Plan.GuardsByBranch.end())
    return;
  guardReached(It->second);
}

void SpecRuntime::guardReached(uint32_t GuardIndex) {
  (void)GuardIndex;
  assert(GuardIndex < Plan.Specs.size() && "guard index out of range");
  ++Stats.GuardHits;
  if (!Deopted)
    deopt(/*Injected=*/false);
}

void SpecRuntime::arenaOpened(int32_t SpecIndex, uint32_t Handle) {
  assert(!Deopted && "engines must not open speculative arenas after deopt");
  ++Stats.ArenasOpened;
  LiveArenas[Handle] = SpecIndex;
}

bool SpecRuntime::injectionCovers(int32_t SpecIndex) const {
  if (Inject.All)
    return true;
  if (Inject.Site == 0xFFFFFFFFu)
    return false;
  return SpecIndex >= 0 &&
         static_cast<size_t>(SpecIndex) < SpecSites.size() &&
         SpecSites[static_cast<size_t>(SpecIndex)].count(Inject.Site) != 0;
}

void SpecRuntime::arenaClosing(uint32_t Handle) {
  // Handles the runtime never registered (conservative arenas, arenas
  // opened for disarmed directives) are not ours.
  auto It = LiveArenas.find(Handle);
  if (It == LiveArenas.end())
    return;
  if (!Deopted && Inject.enabled() && injectionCovers(It->second) &&
      ++CoveringCloses >= Inject.AtClose) {
    // Fire before the free: this arena's cells migrate too, exactly as
    // if its guard had failed while the arena was still live.
    deopt(/*Injected=*/true);
    return; // deopt() cleared LiveArenas
  }
  LiveArenas.erase(It);
}

void SpecRuntime::deopt(bool Injected) {
  assert(TheHeap && "SpecRuntime::setHeap not called");
  Deopted = true;
  ++Stats.Deopts;
  if (Injected) {
    ++Stats.InjectedDeopts;
    Cause = "injected";
  } else {
    Cause = "guard";
  }
  uint64_t Migrated = 0;
  for (const auto &[Handle, SpecIdx] : LiveArenas)
    Migrated += TheHeap->migrateArenaToHeap(Handle);
  Stats.CellsMigrated += Migrated;
  LiveArenas.clear();
  // After the migration events so the dump's tail reads in causal
  // order; the deopt is also a dump trigger in its own right.
  obs::rec::emit(obs::rec::RecKind::SpecDeopt, obs::rec::internName(Cause),
                 Migrated,
                 Injected && Inject.Site != 0xFFFFFFFFu ? Inject.Site : 0);
  obs::rec::dumpNow("spec-deopt");
}

void SpecRuntime::exportTo(obs::MetricsRegistry &Reg) const {
  size_t SpecDirectives = 0;
  for (const ArgArenaDirective &D : Plan.Merged.Directives)
    if (D.SpecIndex >= 0)
      ++SpecDirectives;
  Reg.counter("spec.speculations").add(Plan.Specs.size());
  Reg.counter("spec.directives").add(SpecDirectives);
  Reg.counter("spec.arenas_opened").add(Stats.ArenasOpened);
  Reg.counter("spec.guard_hits").add(Stats.GuardHits);
  Reg.counter("spec.deopts").add(Stats.Deopts);
  Reg.counter("spec.injected_deopts").add(Stats.InjectedDeopts);
  Reg.counter("spec.cells_migrated").add(Stats.CellsMigrated);
}

//===- SpecRuntime.h - Guard tracking and the deopt protocol ----*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of the speculative tier (docs/SPECULATION.md): a
/// SpecHooks implementation both engines consult while executing a plan
/// with speculative directives. It arms the directives, tracks the live
/// speculative arenas, and runs the *global* deopt protocol when a guard
/// fires: every live speculative arena's cells migrate to the GC heap
/// (keeping their AllocSeq, so oracle and profiler attribution stay
/// exact) and every speculation disarms, falling the rest of the run
/// back to the conservative plan.
///
/// nml is deterministic and takes no input, so the profiling pre-run is
/// the real run and a guard can never fail naturally. The deopt path is
/// exercised through deterministic injection (--spec-inject-deopt):
/// the Nth close of a live speculative arena covering a chosen site is
/// treated as a guard failure *before* the arena frees, so the arena's
/// own cells are migrated too.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SPEC_SPECRUNTIME_H
#define EAL_SPEC_SPECRUNTIME_H

#include "runtime/SpecHooks.h"
#include "spec/SpecPlan.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace eal {

class Heap;

namespace obs {
class MetricsRegistry;
}

namespace spec {

/// Deterministic guard-failure injection (parsed from
/// --spec-inject-deopt=SITE[:N] | all).
struct SpecInjection {
  /// Treat the first close of any live speculative arena as a failure.
  bool All = false;
  /// Fail at a close of a live arena whose speculation covers this site
  /// (0xFFFFFFFF: no site-keyed injection).
  uint32_t Site = 0xFFFFFFFFu;
  /// 1-based: fire at the Nth covering close.
  uint64_t AtClose = 1;

  bool enabled() const { return All || Site != 0xFFFFFFFFu; }
};

/// Counters surfaced as spec.* metrics and in the spec report.
struct SpecStats {
  uint64_t ArenasOpened = 0;
  uint64_t GuardHits = 0;
  /// 0 or 1: the protocol is global, the first failure disarms all.
  uint64_t Deopts = 0;
  uint64_t InjectedDeopts = 0;
  uint64_t CellsMigrated = 0;
};

/// One run's speculative state. Attach to both engine option structs via
/// the SpecHooks pointer and hand it the engine's heap before running.
class SpecRuntime : public SpecHooks {
public:
  explicit SpecRuntime(const SpecPlan &Plan, SpecInjection Inject = {});

  /// The heap whose arenas migrate on deopt. Must be the executing
  /// engine's heap; set after engine construction, before run.
  void setHeap(Heap *H) { TheHeap = H; }

  //===--- SpecHooks ----------------------------------------------------==//

  void branchEntered(uint32_t BranchExprId) override;
  void guardReached(uint32_t GuardIndex) override;
  bool directiveArmed(int32_t SpecIndex) override {
    (void)SpecIndex;
    return !Deopted;
  }
  void arenaOpened(int32_t SpecIndex, uint32_t Handle) override;
  void arenaClosing(uint32_t Handle) override;

  //===--- Reporting ----------------------------------------------------==//

  bool deopted() const { return Deopted; }
  /// "guard" / "injected" / "" (no deopt).
  const std::string &deoptCause() const { return Cause; }
  const SpecStats &stats() const { return Stats; }

  /// Publishes spec.* counters (directives, arenas_opened, guard_hits,
  /// deopts, injected_deopts, cells_migrated).
  void exportTo(obs::MetricsRegistry &Reg) const;

private:
  /// The global deopt: migrate every live speculative arena's cells to
  /// the GC heap and disarm every speculation for the rest of the run.
  void deopt(bool Injected);

  /// Whether speculation \p SpecIndex covers the injection's site.
  bool injectionCovers(int32_t SpecIndex) const;

  const SpecPlan &Plan;
  SpecInjection Inject;
  Heap *TheHeap = nullptr;

  /// Live speculative arenas: handle -> speculation index. Handles are
  /// reused by the heap after frees, so entries are erased at close.
  std::unordered_map<uint32_t, int32_t> LiveArenas;
  /// Per-speculation set of covered base site ids (for injectionCovers).
  std::vector<std::unordered_set<uint32_t>> SpecSites;

  uint64_t CoveringCloses = 0;
  bool Deopted = false;
  std::string Cause;
  SpecStats Stats;
};

} // namespace spec
} // namespace eal

#endif // EAL_SPEC_SPECRUNTIME_H

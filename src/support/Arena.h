//===- Arena.h - Bump-pointer allocator -------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for AST nodes and other objects whose lifetime is
/// tied to a compilation. Objects allocated here are never individually
/// freed; trivially destructible types are assumed (asserted at compile
/// time by create()).
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_ARENA_H
#define EAL_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace eal {

/// A bump-pointer allocator. Allocation is a pointer increment; all memory
/// is released when the arena is destroyed.
class Arena {
public:
  explicit Arena(size_t SlabSize = 64 * 1024) : SlabSize(SlabSize) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
    size_t Adjust = Aligned - P;
    if (Adjust + Size > static_cast<size_t>(End - Cur)) {
      growSlab(Size + Align);
      return allocate(Size, Align);
    }
    Cur = reinterpret_cast<char *>(Aligned) + Size;
    BytesAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena. T must be trivially destructible, since
  /// destructors are never run.
  template <typename T, typename... ArgTs> T *create(ArgTs &&...Args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<ArgTs>(Args)...);
  }

  /// Copies the array [Data, Data + Count) into the arena and returns the
  /// copy. Used to give AST nodes stable child arrays.
  template <typename T> T *copyArray(const T *Data, size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    if (Count == 0)
      return nullptr;
    T *Mem = static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
    for (size_t I = 0; I != Count; ++I)
      new (Mem + I) T(Data[I]);
    return Mem;
  }

  /// Copies a string's bytes (plus NUL) into the arena.
  const char *copyString(const char *Str, size_t Len) {
    char *Mem = static_cast<char *>(allocate(Len + 1, 1));
    for (size_t I = 0; I != Len; ++I)
      Mem[I] = Str[I];
    Mem[Len] = '\0';
    return Mem;
  }

  size_t bytesAllocated() const { return BytesAllocated; }
  size_t slabCount() const { return Slabs.size(); }

private:
  void growSlab(size_t MinSize) {
    size_t Size = SlabSize;
    while (Size < MinSize)
      Size *= 2;
    Slabs.push_back(std::make_unique<char[]>(Size));
    Cur = Slabs.back().get();
    End = Cur + Size;
  }

  size_t SlabSize;
  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;
};

} // namespace eal

#endif // EAL_SUPPORT_ARENA_H

//===- Casting.h - isa/cast/dyn_cast ----------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style checked casting built on a static classof() predicate. Class
/// hierarchies opt in by providing `static bool classof(const Base *)` on
/// each derived class; no RTTI is used.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_CASTING_H
#define EAL_SUPPORT_CASTING_H

#include <cassert>

namespace eal {

/// Returns true if \p Val is an instance of To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> to incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null if \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace eal

#endif // EAL_SUPPORT_CASTING_H

//===- Diagnostics.cpp ----------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

#include <sstream>

using namespace eal;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render(const SourceManager &SM) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    LineColumn LC = SM.lineColumn(D.Loc);
    OS << SM.name() << ':' << LC.Line << ':' << LC.Column << ": "
       << severityName(D.Severity) << ": " << D.Message << '\n';
  }
  return OS.str();
}

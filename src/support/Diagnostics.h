//===- Diagnostics.h - Diagnostic engine ------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Library code never throws or prints directly;
/// it reports errors here, and tools decide how to render them. Messages
/// follow the LLVM style: lowercase first word, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_DIAGNOSTICS_H
#define EAL_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace eal {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagSeverity {
  Note,
  Warning,
  Error,
};

/// One reported diagnostic: severity, location, and message text.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by the front end and analyses.
///
/// The engine only stores diagnostics; rendering (with line/column, caret
/// lines, etc.) is a separate step so library clients can consume the
/// structured form.
class DiagnosticEngine {
public:
  void report(DiagSeverity Severity, SourceLoc Loc, std::string Message) {
    if (Severity == DiagSeverity::Error)
      ++NumErrors;
    Diags.push_back(Diagnostic{Severity, Loc, std::move(Message)});
  }

  void error(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagSeverity::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Renders all diagnostics as "name:line:col: severity: message" lines,
  /// one per diagnostic, using \p SM for location translation.
  std::string render(const SourceManager &SM) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace eal

#endif // EAL_SUPPORT_DIAGNOSTICS_H

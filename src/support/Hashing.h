//===- Hashing.h - Hash combination helpers ---------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash combination helpers used by the hash-consed type and escape-value
/// stores. The combiner is the 64-bit variant of boost::hash_combine.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_HASHING_H
#define EAL_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace eal {

/// Mixes \p Value into the running hash \p Seed.
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 12) + (Seed >> 4);
}

/// Hashes each argument and folds it into a single hash value.
template <typename... Ts> size_t hashValues(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>()(Values)), ...);
  return Seed;
}

} // namespace eal

#endif // EAL_SUPPORT_HASHING_H

//===- Metrics.cpp --------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/Trace.h"

#include <bit>
#include <sstream>

using namespace eal;
using namespace eal::obs;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

void Histogram::record(uint64_t Sample) {
  ++Count;
  Sum += Sample;
  if (Sample < Min)
    Min = Sample;
  if (Sample > Max)
    Max = Sample;
  // Bucket 0 = {0}; bucket i = [2^(i-1), 2^i).
  size_t Bucket = Sample == 0 ? 0 : 64 - std::countl_zero(Sample);
  ++Buckets[Bucket];
}

size_t Histogram::usedBuckets() const {
  size_t Used = 0;
  for (size_t I = 0; I != NumBuckets; ++I)
    if (Buckets[I])
      Used = I + 1;
  return Used;
}

std::string Histogram::toJson() const {
  std::ostringstream OS;
  OS << "{\"count\":" << count() << ",\"sum\":" << sum()
     << ",\"min\":" << min() << ",\"max\":" << max() << ",\"mean\":" << mean()
     << ",\"buckets\":[";
  size_t Used = usedBuckets();
  for (size_t I = 0; I != Used; ++I) {
    if (I)
      OS << ',';
    OS << Buckets[I];
  }
  OS << "]}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Counters[Name];
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  return Histograms[Name];
}

uint64_t MetricsRegistry::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second.value();
}

bool MetricsRegistry::hasCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.count(Name) != 0;
}

bool MetricsRegistry::hasHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  return Histograms.count(Name) != 0;
}

size_t MetricsRegistry::numCounters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.size();
}

size_t MetricsRegistry::numHistograms() const {
  std::lock_guard<std::mutex> Lock(M);
  return Histograms.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Counters.clear();
  Histograms.clear();
}

namespace {

/// Escapes \p S as a JSON string literal (metric names are plain ASCII,
/// but quote defensively).
std::string quoteKey(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  Out.push_back('"');
  return Out;
}

} // namespace

std::string MetricsRegistry::toJson(unsigned Indent) const {
  std::lock_guard<std::mutex> Lock(M);
  std::string Pad(Indent, ' ');
  std::string Pad2(Indent + 2, ' ');
  std::string Pad4(Indent + 4, ' ');
  std::ostringstream OS;
  OS << "{\n" << Pad2 << "\"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    OS << (First ? "\n" : ",\n") << Pad4 << quoteKey(Name) << ": "
       << C.value();
    First = false;
  }
  OS << (First ? "" : "\n" + Pad2) << "},\n" << Pad2 << "\"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    OS << (First ? "\n" : ",\n") << Pad4 << quoteKey(Name) << ": "
       << H.toJson();
    First = false;
  }
  OS << (First ? "" : "\n" + Pad2) << "}\n" << Pad << "}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Global registry and enable flag
//===----------------------------------------------------------------------===//

MetricsRegistry &obs::globalMetrics() {
  static MetricsRegistry Reg;
  return Reg;
}

std::atomic<bool> obs::detail::MetricsOn{false};

void obs::enableMetrics() {
  detail::MetricsOn = true;
  detail::refreshMaster();
}

void obs::disableMetrics() {
  detail::MetricsOn = false;
  detail::refreshMaster();
}

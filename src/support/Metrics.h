//===- Metrics.h - Counter/histogram registry with JSON export --*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the `eal::obs` observability subsystem (the
/// tracing half is Trace.h). A MetricsRegistry holds named monotone
/// counters and power-of-two-bucketed histograms, and renders itself as
/// JSON for `eal --stats-json` and the `BENCH_*.json` perf-trajectory
/// files.
///
/// The registry absorbs and supersedes the raw fields of RuntimeStats:
/// `RuntimeStats::exportTo()` maps every typed field to a namespaced
/// counter, and analysis/optimizer phases add their own counters
/// (fixpoint rounds, DCONS sites, plan directives) and histograms (GC
/// pause, arena sizes) that the flat struct never carried. RuntimeStats
/// itself remains the typed hot-path view: per-cell work keeps bumping
/// plain uint64 fields and is exported wholesale at phase boundaries.
///
/// Producer sites consult `obs::metricsEnabled()` (one global bool, same
/// discipline as tracing) so disabled builds pay one branch.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_METRICS_H
#define EAL_SUPPORT_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace eal::obs {

/// A monotone (or set/max-updated) uint64 counter.
class Counter {
public:
  void add(uint64_t Delta = 1) { V += Delta; }
  void set(uint64_t Value) { V = Value; }
  /// Keeps the running maximum of observed values.
  void max(uint64_t Value) {
    if (Value > V)
      V = Value;
  }
  uint64_t value() const { return V; }

private:
  uint64_t V = 0;
};

/// A histogram of uint64 samples in power-of-two buckets: bucket 0 holds
/// sample 0, bucket i (i >= 1) holds samples in [2^(i-1), 2^i).
class Histogram {
public:
  static constexpr size_t NumBuckets = 65;

  void record(uint64_t Sample);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? Min : 0; }
  uint64_t max() const { return Max; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0;
  }
  uint64_t bucket(size_t I) const { return Buckets[I]; }
  /// Index of the highest non-empty bucket + 1 (0 when empty).
  size_t usedBuckets() const;

  /// {"count":..,"sum":..,"min":..,"max":..,"mean":..,"buckets":[..]}
  /// with the bucket array truncated at the last non-empty bucket.
  std::string toJson() const;

private:
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = UINT64_MAX;
  uint64_t Max = 0;
  std::array<uint64_t, NumBuckets> Buckets{};
};

/// Named counters and histograms. Lookup (counter()/histogram()) is
/// mutex-guarded and creates on first use; the returned references stay
/// valid for the registry's lifetime, and updating them is the caller's
/// single-threaded fast path.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Value of counter \p Name, or 0 if it was never created.
  uint64_t counterValue(const std::string &Name) const;
  bool hasCounter(const std::string &Name) const;
  bool hasHistogram(const std::string &Name) const;
  size_t numCounters() const;
  size_t numHistograms() const;

  void clear();

  /// {"counters":{name:value,...},"histograms":{name:{...},...}} with
  /// keys in sorted order (the maps are ordered).
  std::string toJson(unsigned Indent = 0) const;

private:
  mutable std::mutex M;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Histogram> Histograms;
};

/// The process-wide registry that `eal --stats-json`, the benches, and
/// the instrumented phases all feed.
MetricsRegistry &globalMetrics();

namespace detail {
/// Atomic for the same reason as Trace.h's flags: producer sites load
/// it from the big-stack execution thread.
extern std::atomic<bool> MetricsOn;
} // namespace detail

/// Guard for metrics producer sites (same discipline as Trace.h's
/// enabled(): one inlined relaxed load when off).
inline bool metricsEnabled() {
  return detail::MetricsOn.load(std::memory_order_relaxed);
}
void enableMetrics();
void disableMetrics();

} // namespace eal::obs

#endif // EAL_SUPPORT_METRICS_H

//===- SourceLoc.h - Source locations and ranges ----------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source locations. A SourceLoc is a byte offset into the
/// buffer owned by a SourceManager; a SourceRange is a half-open pair of
/// offsets. Both are trivially copyable and cheap to store on AST nodes.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_SOURCELOC_H
#define EAL_SUPPORT_SOURCELOC_H

#include <cstdint>

namespace eal {

/// A position in a source buffer, identified by byte offset.
///
/// The invalid location (offset == ~0u) is used for synthesized nodes that
/// have no textual origin, such as transformed functions produced by the
/// optimizer.
class SourceLoc {
public:
  SourceLoc() = default;
  explicit SourceLoc(uint32_t Offset) : Offset(Offset) {}

  /// Returns the invalid (synthesized) location.
  static SourceLoc invalid() { return SourceLoc(); }

  bool isValid() const { return Offset != InvalidOffset; }
  uint32_t offset() const { return Offset; }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Offset == B.Offset;
  }
  friend bool operator!=(SourceLoc A, SourceLoc B) { return !(A == B); }
  friend bool operator<(SourceLoc A, SourceLoc B) {
    return A.Offset < B.Offset;
  }

private:
  static constexpr uint32_t InvalidOffset = ~0u;
  uint32_t Offset = InvalidOffset;
};

/// A half-open range [Begin, End) of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}
  explicit SourceRange(SourceLoc Point) : Begin(Point), End(Point) {}

  bool isValid() const { return Begin.isValid(); }
};

/// A human-readable line/column pair, both 1-based.
struct LineColumn {
  uint32_t Line = 0;
  uint32_t Column = 0;

  friend bool operator==(const LineColumn &A, const LineColumn &B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

} // namespace eal

#endif // EAL_SUPPORT_SOURCELOC_H

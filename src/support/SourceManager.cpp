//===- SourceManager.cpp --------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace eal;

void SourceManager::setBuffer(std::string NewText, std::string NewName) {
  Text = std::move(NewText);
  Name = std::move(NewName);
  LineStarts.clear();
  LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Text.size()); I != E; ++I)
    if (Text[I] == '\n')
      LineStarts.push_back(I + 1);
}

size_t SourceManager::lineIndexFor(uint32_t Offset) const {
  // upper_bound finds the first line starting strictly after Offset; the
  // line containing Offset is the one before it.
  auto It = std::upper_bound(LineStarts.begin(), LineStarts.end(), Offset);
  assert(It != LineStarts.begin() && "LineStarts always contains 0");
  return static_cast<size_t>(It - LineStarts.begin()) - 1;
}

LineColumn SourceManager::lineColumn(SourceLoc Loc) const {
  if (!Loc.isValid())
    return LineColumn();
  uint32_t Offset = std::min<uint32_t>(Loc.offset(),
                                       static_cast<uint32_t>(Text.size()));
  size_t Line = lineIndexFor(Offset);
  return LineColumn{static_cast<uint32_t>(Line + 1),
                    Offset - LineStarts[Line] + 1};
}

std::string_view SourceManager::lineText(SourceLoc Loc) const {
  if (!Loc.isValid())
    return {};
  uint32_t Offset = std::min<uint32_t>(Loc.offset(),
                                       static_cast<uint32_t>(Text.size()));
  size_t Line = lineIndexFor(Offset);
  uint32_t Begin = LineStarts[Line];
  uint32_t End = Line + 1 < LineStarts.size()
                     ? LineStarts[Line + 1] - 1
                     : static_cast<uint32_t>(Text.size());
  return std::string_view(Text).substr(Begin, End - Begin);
}

std::string_view SourceManager::text(SourceRange Range) const {
  if (!Range.isValid())
    return {};
  uint32_t Begin = std::min<uint32_t>(Range.Begin.offset(),
                                      static_cast<uint32_t>(Text.size()));
  uint32_t End = Range.End.isValid()
                     ? std::min<uint32_t>(Range.End.offset(),
                                          static_cast<uint32_t>(Text.size()))
                     : Begin;
  if (End < Begin)
    End = Begin;
  return std::string_view(Text).substr(Begin, End - Begin);
}

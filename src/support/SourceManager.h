//===- SourceManager.h - Ownership of source buffers ------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SourceManager owns the text of the program being analyzed and maps
/// SourceLoc byte offsets back to line/column pairs for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_SOURCEMANAGER_H
#define EAL_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace eal {

/// Owns a single source buffer and provides offset -> line/column mapping.
///
/// nml programs are small, self-contained texts, so a single buffer (with a
/// display name) is sufficient; there is no #include mechanism.
class SourceManager {
public:
  SourceManager() = default;

  /// Takes ownership of \p Text under the display name \p Name and indexes
  /// line starts for later lookups.
  void setBuffer(std::string Text, std::string Name = "<input>");

  std::string_view buffer() const { return Text; }
  const std::string &name() const { return Name; }

  /// Translates \p Loc to a 1-based line/column pair. Invalid locations map
  /// to {0, 0}.
  LineColumn lineColumn(SourceLoc Loc) const;

  /// Returns the full text of the line containing \p Loc (without the
  /// trailing newline), or an empty view for invalid locations.
  std::string_view lineText(SourceLoc Loc) const;

  /// Returns the source text covered by \p Range, clamped to the buffer.
  std::string_view text(SourceRange Range) const;

private:
  /// Index of the line (0-based) containing byte offset \p Offset.
  size_t lineIndexFor(uint32_t Offset) const;

  std::string Text;
  std::string Name = "<input>";
  /// Byte offsets at which each line begins; always contains 0.
  std::vector<uint32_t> LineStarts = {0};
};

} // namespace eal

#endif // EAL_SUPPORT_SOURCEMANAGER_H

//===- StringInterner.h - Identifier interning ------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier spellings to small integer Symbols so that
/// environments, free-variable sets, and caches can key on integers.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_STRINGINTERNER_H
#define EAL_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace eal {

/// An interned identifier. Symbols from the same interner compare equal
/// iff their spellings are equal.
class Symbol {
public:
  Symbol() = default;

  static Symbol invalid() { return Symbol(); }

  bool isValid() const { return Id != InvalidId; }
  uint32_t id() const {
    assert(isValid() && "querying invalid symbol");
    return Id;
  }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Id) : Id(Id) {}

  static constexpr uint32_t InvalidId = ~0u;
  uint32_t Id = InvalidId;
};

/// Maps identifier spellings to Symbols and back.
class StringInterner {
public:
  /// Returns the unique Symbol for \p Spelling, creating it if needed.
  Symbol intern(std::string_view Spelling) {
    auto It = Map.find(std::string(Spelling));
    if (It != Map.end())
      return Symbol(It->second);
    uint32_t Id = static_cast<uint32_t>(Spellings.size());
    Spellings.emplace_back(Spelling);
    Map.emplace(Spellings.back(), Id);
    return Symbol(Id);
  }

  /// Returns the spelling of \p Sym; Sym must come from this interner.
  std::string_view spelling(Symbol Sym) const {
    assert(Sym.isValid() && Sym.id() < Spellings.size() &&
           "symbol from a different interner");
    return Spellings[Sym.id()];
  }

  size_t size() const { return Spellings.size(); }

private:
  std::unordered_map<std::string, uint32_t> Map;
  std::vector<std::string> Spellings;
};

} // namespace eal

namespace std {
template <> struct hash<eal::Symbol> {
  size_t operator()(eal::Symbol Sym) const {
    return sym_hash(Sym.isValid() ? Sym.id() : ~0u);
  }

private:
  static size_t sym_hash(uint32_t V) { return std::hash<uint32_t>()(V); }
};
} // namespace std

#endif // EAL_SUPPORT_STRINGINTERNER_H

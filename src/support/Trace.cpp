//===- Trace.cpp ----------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace eal;
using namespace eal::obs;

//===----------------------------------------------------------------------===//
// Clock and thread ids
//===----------------------------------------------------------------------===//

int64_t obs::nowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               Epoch)
      .count();
}

namespace {

uint32_t threadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

thread_local unsigned SpanDepth = 0;

//===----------------------------------------------------------------------===//
// Global state
//===----------------------------------------------------------------------===//

struct TraceState {
  std::mutex M;
  std::vector<TraceEvent> Events;
  std::vector<EventSink *> Sinks;
  /// Spans alive right now (flushOpenSpans walks these). A span present
  /// here still owns its event; one flushed out of the list must not
  /// record again at destruction.
  std::vector<obs::Span *> OpenSpans;
};

TraceState &state() {
  static TraceState S;
  return S;
}

} // namespace

std::atomic<bool> obs::detail::Enabled{false};
std::atomic<bool> obs::detail::RecorderOn{false};
std::atomic<bool> obs::detail::StreamOn{false};

namespace {

/// Recomputes the derived flags; caller holds the lock. Stores are
/// relaxed: the lock orders the writers, and readers only need the
/// eventual flag value, not any payload published with it.
void refreshEnabled() {
  bool Stream = obs::detail::RecorderOn.load(std::memory_order_relaxed) ||
                !state().Sinks.empty();
  obs::detail::StreamOn.store(Stream, std::memory_order_relaxed);
  obs::detail::Enabled.store(
      Stream || obs::detail::MetricsOn.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

} // namespace

void obs::detail::refreshMaster() {
  std::lock_guard<std::mutex> Lock(state().M);
  refreshEnabled();
}

void obs::enableTracing() {
  std::lock_guard<std::mutex> Lock(state().M);
  detail::RecorderOn = true;
  refreshEnabled();
}

void obs::disableTracing() {
  std::lock_guard<std::mutex> Lock(state().M);
  detail::RecorderOn = false;
  refreshEnabled();
}

void obs::addSink(EventSink *S) {
  std::lock_guard<std::mutex> Lock(state().M);
  state().Sinks.push_back(S);
  refreshEnabled();
}

void obs::removeSink(EventSink *S) {
  std::lock_guard<std::mutex> Lock(state().M);
  auto &Sinks = state().Sinks;
  Sinks.erase(std::remove(Sinks.begin(), Sinks.end(), S), Sinks.end());
  refreshEnabled();
}

std::vector<TraceEvent> obs::snapshot() {
  std::lock_guard<std::mutex> Lock(state().M);
  return state().Events;
}

size_t obs::eventCount() {
  std::lock_guard<std::mutex> Lock(state().M);
  return state().Events.size();
}

void obs::clearTrace() {
  std::lock_guard<std::mutex> Lock(state().M);
  state().Events.clear();
}

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

namespace {

/// Caller holds state().M.
void recordLocked(TraceEvent E) {
  if (E.TimestampUs < 0)
    E.TimestampUs = nowMicros();
  for (EventSink *S : state().Sinks)
    S->onEvent(E);
  if (obs::detail::RecorderOn)
    state().Events.push_back(std::move(E));
}

} // namespace

void obs::record(TraceEvent E) {
  E.ThreadId = threadId();
  std::lock_guard<std::mutex> Lock(state().M);
  recordLocked(std::move(E));
}

void obs::instant(std::string Name, std::string Category,
                  std::vector<std::pair<std::string, std::string>> Args) {
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.Phase = 'i';
  E.Args = std::move(Args);
  record(std::move(E));
}

void obs::counter(std::string Name, int64_t Value) {
  TraceEvent E;
  E.Category = "counter";
  E.Phase = 'C';
  E.Args.emplace_back(Name, std::to_string(Value));
  E.Name = std::move(Name);
  record(std::move(E));
}

//===----------------------------------------------------------------------===//
// JSON export
//===----------------------------------------------------------------------===//

std::string obs::jsonQuote(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
  return Out;
}

namespace {

void renderEvent(std::ostringstream &OS, const TraceEvent &E) {
  OS << "{\"name\":" << jsonQuote(E.Name)
     << ",\"cat\":" << jsonQuote(E.Category) << ",\"ph\":\"" << E.Phase
     << "\",\"ts\":" << E.TimestampUs;
  if (E.Phase == 'X')
    OS << ",\"dur\":" << E.DurationUs;
  OS << ",\"pid\":1,\"tid\":" << E.ThreadId;
  // Chrome instant events want a scope; thread scope is the natural one.
  if (E.Phase == 'i')
    OS << ",\"s\":\"t\"";
  if (!E.Args.empty() || E.Depth != 0) {
    OS << ",\"args\":{";
    bool First = true;
    if (E.Depth != 0) {
      OS << "\"depth\":" << E.Depth;
      First = false;
    }
    for (const auto &[Key, Value] : E.Args) {
      if (!First)
        OS << ',';
      First = false;
      OS << jsonQuote(Key) << ':' << Value;
    }
    OS << '}';
  }
  OS << '}';
}

} // namespace

std::string obs::toChromeTraceJson() {
  std::vector<TraceEvent> Events = snapshot();
  std::stable_sort(Events.begin(), Events.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TimestampUs < B.TimestampUs;
                   });
  std::ostringstream OS;
  OS << "[\n";
  for (size_t I = 0; I != Events.size(); ++I) {
    renderEvent(OS, Events[I]);
    if (I + 1 != Events.size())
      OS << ',';
    OS << '\n';
  }
  OS << "]\n";
  return OS.str();
}

bool obs::writeChromeTrace(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toChromeTraceJson();
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// Span
//===----------------------------------------------------------------------===//

obs::Span::Span(const char *Name, const char *Category) {
  if (!streamEnabled())
    return;
  Active = true;
  StartUs = nowMicros();
  Ev.Name = Name;
  Ev.Category = Category;
  Ev.Phase = 'X';
  Ev.TimestampUs = StartUs;
  Ev.ThreadId = threadId();
  Ev.Depth = ++SpanDepth;
  std::lock_guard<std::mutex> Lock(state().M);
  state().OpenSpans.push_back(this);
}

obs::Span::~Span() {
  if (!Active)
    return;
  --SpanDepth;
  std::lock_guard<std::mutex> Lock(state().M);
  auto &Open = state().OpenSpans;
  auto It = std::find(Open.begin(), Open.end(), this);
  if (It == Open.end())
    return; // flushOpenSpans already recorded this span's event
  Open.erase(It);
  Ev.DurationUs = nowMicros() - StartUs;
  recordLocked(std::move(Ev));
}

// Args take the trace lock: flushOpenSpans copies a live span's event
// from the exporting thread, which must not race an arg append. Spans
// are only active while a trace consumer is attached, so this cost is
// confined to traced runs.
void obs::Span::arg(std::string Key, uint64_t Value) {
  if (!Active)
    return;
  std::lock_guard<std::mutex> Lock(state().M);
  Ev.Args.emplace_back(std::move(Key), std::to_string(Value));
}

void obs::Span::arg(std::string Key, int64_t Value) {
  if (!Active)
    return;
  std::lock_guard<std::mutex> Lock(state().M);
  Ev.Args.emplace_back(std::move(Key), std::to_string(Value));
}

void obs::Span::arg(std::string Key, std::string_view Value) {
  if (!Active)
    return;
  std::lock_guard<std::mutex> Lock(state().M);
  Ev.Args.emplace_back(std::move(Key), jsonQuote(Value));
}

size_t obs::flushOpenSpans() {
  size_t Flushed = 0;
  {
    std::lock_guard<std::mutex> Lock(state().M);
    auto &Open = state().OpenSpans;
    // Innermost first, so the trace keeps begin-order nesting when the
    // events are later sorted by timestamp (ties keep insert order).
    for (auto It = Open.rbegin(); It != Open.rend(); ++It) {
      obs::Span *S = *It;
      TraceEvent E = S->Ev;
      E.DurationUs = nowMicros() - S->StartUs;
      E.Args.emplace_back("flushed", "true");
      recordLocked(std::move(E));
      ++Flushed;
    }
    Open.clear();
  }
  if (Flushed && metricsEnabled())
    globalMetrics()
        .counter("obs.export.dropped_spans")
        .add(static_cast<uint64_t>(Flushed));
  return Flushed;
}

unsigned obs::Span::currentDepth() { return SpanDepth; }

//===----------------------------------------------------------------------===//
// PhaseTimer
//===----------------------------------------------------------------------===//

obs::PhaseTimer::PhaseTimer(PhaseTimes *Out, const char *Name,
                            const char *Category)
    : Out(Out), Name(Name), S(Name, Category), StartUs(nowMicros()) {}

obs::PhaseTimer::~PhaseTimer() {
  int64_t Micros = nowMicros() - StartUs;
  if (Out)
    Out->emplace_back(Name, Micros);
  if (metricsEnabled()) {
    MetricsRegistry &Reg = globalMetrics();
    Reg.counter(std::string("phase.") + Name + ".micros")
        .add(static_cast<uint64_t>(Micros));
    Reg.counter(std::string("phase.") + Name + ".runs").add(1);
  }
}

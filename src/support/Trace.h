//===- Trace.h - Structured tracing: spans, events, Chrome export -*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the `eal::obs` observability subsystem (the other
/// half, the counter/histogram registry, is Metrics.h). It provides:
///
///  * RAII phase timers (Span) that nest and record Chrome
///    `trace_event`-format complete events ('X');
///  * instant ('i') and counter ('C') events for point-in-time facts
///    (GC runs, arena frees, fixpoint iterates);
///  * an event-stream hook (EventSink) that external consumers attach to
///    receive every event as it is recorded;
///  * a JSON exporter producing files loadable by `chrome://tracing` and
///    Perfetto (see docs/OBSERVABILITY.md).
///
/// Cost model: every producer site is guarded by `obs::enabled()` — a
/// single inlined load of one global bool, no virtual dispatch, no
/// allocation. With no recorder and no sinks attached the flag is false
/// and the hot paths fall straight through; all strings, locks, and
/// clock reads happen only behind an enabled check.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_SUPPORT_TRACE_H
#define EAL_SUPPORT_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eal::obs {

/// Microseconds on the process-wide steady trace clock. Zero is the
/// first use in the process, so trace timestamps are small and stable.
int64_t nowMicros();

/// One recorded event, Chrome trace_event flavored.
struct TraceEvent {
  std::string Name;
  /// Grouping key ("pipeline", "gc", "arena", "fixpoint", ...).
  std::string Category;
  /// 'X' complete (has DurationUs), 'i' instant, 'C' counter.
  char Phase = 'i';
  /// Negative means "not stamped yet"; record() fills it in. (Zero is a
  /// real time: the trace clock's epoch is its first use.)
  int64_t TimestampUs = -1;
  int64_t DurationUs = 0;
  /// Small sequential id of the recording thread (not the OS tid).
  uint32_t ThreadId = 0;
  /// Span nesting depth on the recording thread (1 = outermost span);
  /// 0 for non-span events.
  uint32_t Depth = 0;
  /// Key -> already-rendered JSON value: numbers unquoted, strings
  /// quoted and escaped (use jsonQuote).
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Receives every event as it is recorded — the runtime event stream.
/// Sinks run under the trace lock; keep callbacks short.
class EventSink {
public:
  virtual ~EventSink() = default;
  virtual void onEvent(const TraceEvent &E) = 0;
};

namespace detail {
/// True iff any consumer is attached: the recorder, a sink, or the
/// metrics registry (Metrics.h). Atomic because producer sites check
/// these from the big-stack execution thread while the toggles run on
/// the spawning thread; relaxed loads keep the off-path to one plain
/// load on every target we build for.
extern std::atomic<bool> Enabled;
extern std::atomic<bool> RecorderOn;
/// True iff events have somewhere to go: recorder or at least one sink.
extern std::atomic<bool> StreamOn;
/// Recomputes the derived flags; called by every enable/disable entry.
void refreshMaster();
} // namespace detail

/// The master guard every producer site checks first.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}
/// True when events are being kept for later export.
inline bool tracingEnabled() {
  return detail::RecorderOn.load(std::memory_order_relaxed);
}
/// True when emitting an event reaches a consumer (recorder or sink);
/// gate event construction on this, metrics on metricsEnabled().
inline bool streamEnabled() {
  return detail::StreamOn.load(std::memory_order_relaxed);
}

/// Turns the in-memory recorder on/off. Enabling does not clear
/// previously recorded events; use clearTrace() for a fresh run.
void enableTracing();
void disableTracing();

/// Attaches/detaches an event-stream sink (not owned).
void addSink(EventSink *S);
void removeSink(EventSink *S);

/// Copy of everything recorded so far (thread-safe).
std::vector<TraceEvent> snapshot();
size_t eventCount();
void clearTrace();

/// Records every still-open Span as a complete ('X') event ending now
/// (args kept, "flushed":true added), so an export taken mid-phase — a
/// crash dump, a failed run — does not silently drop the in-flight
/// phases. Each flushed span bumps the `obs.export.dropped_spans`
/// metric counter; a flushed span records nothing further when it is
/// eventually destroyed. Returns the number flushed.
size_t flushOpenSpans();

/// Renders recorded events as a Chrome trace_event JSON array, oldest
/// first. Loadable by chrome://tracing and Perfetto.
std::string toChromeTraceJson();
/// Writes toChromeTraceJson() to \p Path; false on I/O failure.
bool writeChromeTrace(const std::string &Path);

/// Quotes and escapes \p S as a JSON string literal (with the quotes).
std::string jsonQuote(std::string_view S);

/// Records \p E (stamping timestamp/thread if unset) into the recorder
/// and all sinks. Call only behind enabled().
void record(TraceEvent E);

/// Records an instant event.
void instant(std::string Name, std::string Category,
             std::vector<std::pair<std::string, std::string>> Args = {});

/// Records a counter event (renders in tracing UIs as a value series).
void counter(std::string Name, int64_t Value);

/// RAII phase timer. While alive it contributes one level of nesting on
/// its thread; at destruction it records a complete ('X') event covering
/// its lifetime. Inactive (and free apart from one flag test) when the
/// subsystem is disabled at construction time.
class Span {
public:
  explicit Span(const char *Name, const char *Category = "pipeline");
  ~Span();
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches an argument to the event emitted at destruction.
  void arg(std::string Key, uint64_t Value);
  void arg(std::string Key, int64_t Value);
  void arg(std::string Key, std::string_view Value); ///< quoted for JSON

  bool active() const { return Active; }
  /// Wall time since construction (valid whether or not active).
  int64_t elapsedMicros() const { return nowMicros() - StartUs; }

  /// Number of active spans on the calling thread (testing aid).
  static unsigned currentDepth();

private:
  friend size_t flushOpenSpans(); // copies Ev/StartUs of live spans
  bool Active = false;
  int64_t StartUs = 0;
  TraceEvent Ev;
};

/// RAII phase timer for pipeline stages: always measures wall time
/// (independent of tracing) and appends {Name, micros} to \p Out at
/// destruction; additionally emits a Span event when tracing is enabled
/// and per-phase counters into the global metrics registry when metrics
/// are enabled (see Metrics.h).
class PhaseTimer {
public:
  using PhaseTimes = std::vector<std::pair<std::string, int64_t>>;

  PhaseTimer(PhaseTimes *Out, const char *Name,
             const char *Category = "pipeline");
  ~PhaseTimer();
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  Span &span() { return S; }

private:
  PhaseTimes *Out;
  const char *Name;
  Span S;
  int64_t StartUs;
};

} // namespace eal::obs

#endif // EAL_SUPPORT_TRACE_H

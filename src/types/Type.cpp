//===- Type.cpp -----------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "types/Type.h"

#include <cassert>
#include <sstream>

using namespace eal;

unsigned eal::spineCount(const Type *T) {
  assert(T && "spine count of a null type");
  unsigned Count = 0;
  while (const auto *List = dyn_cast<ListType>(T)) {
    ++Count;
    T = List->element();
  }
  return Count;
}

namespace {

void printType(std::ostringstream &OS, const Type *T, bool NeedParens) {
  switch (T->kind()) {
  case TypeKind::Int:
    OS << "int";
    return;
  case TypeKind::Bool:
    OS << "bool";
    return;
  case TypeKind::Var:
    OS << 't' << cast<TypeVar>(T)->id();
    return;
  case TypeKind::List: {
    const Type *Element = cast<ListType>(T)->element();
    // The list constructor is postfix and binds tighter than '->' and
    // '*', so function and pair element types need parentheses.
    printType(OS, Element,
              /*NeedParens=*/Element->isFun() || Element->isPair());
    OS << " list";
    return;
  }
  case TypeKind::Pair: {
    const auto *Pair = cast<PairType>(T);
    if (NeedParens)
      OS << '(';
    printType(OS, Pair->first(),
              /*NeedParens=*/Pair->first()->isFun() ||
                  Pair->first()->isPair());
    OS << " * ";
    printType(OS, Pair->second(),
              /*NeedParens=*/Pair->second()->isFun() ||
                  Pair->second()->isPair());
    if (NeedParens)
      OS << ')';
    return;
  }
  case TypeKind::Fun: {
    const auto *Fun = cast<FunType>(T);
    if (NeedParens)
      OS << '(';
    printType(OS, Fun->param(), /*NeedParens=*/Fun->param()->isFun());
    OS << " -> ";
    printType(OS, Fun->result(), /*NeedParens=*/false);
    if (NeedParens)
      OS << ')';
    return;
  }
  }
  assert(false && "unhandled type kind");
}

} // namespace

std::string eal::typeName(const Type *T) {
  assert(T && "printing a null type");
  std::ostringstream OS;
  printType(OS, T, /*NeedParens=*/false);
  return OS.str();
}

//===- Type.h - nml types ---------------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// nml types: int, bool, τ list, τ1 → τ2, plus unification variables used
/// during inference. Types are immutable and hash-consed by a TypeContext,
/// so pointer equality is type equality.
///
/// The central derived quantity is the *spine count* of a type
/// (Definition 1): spines(int) = spines(bool) = spines(τ1 → τ2) = 0 and
/// spines(τ list) = spines(τ) + 1. It bounds the basic escape domain and
/// annotates every occurrence of `car`.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_TYPES_TYPE_H
#define EAL_TYPES_TYPE_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace eal {

/// Discriminator for the Type hierarchy.
enum class TypeKind : uint8_t {
  Int,
  Bool,
  List,
  Fun,
  Pair,
  Var,
};

/// Base class of all nml types. Instances are unique within a TypeContext.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isList() const { return Kind == TypeKind::List; }
  bool isFun() const { return Kind == TypeKind::Fun; }
  bool isPair() const { return Kind == TypeKind::Pair; }
  bool isVar() const { return Kind == TypeKind::Var; }

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}

private:
  TypeKind Kind;
};

/// The type of integers.
class IntType : public Type {
public:
  IntType() : Type(TypeKind::Int) {}
  static bool classof(const Type *T) { return T->kind() == TypeKind::Int; }
};

/// The type of booleans.
class BoolType : public Type {
public:
  BoolType() : Type(TypeKind::Bool) {}
  static bool classof(const Type *T) { return T->kind() == TypeKind::Bool; }
};

/// `τ list`.
class ListType : public Type {
public:
  explicit ListType(const Type *Element)
      : Type(TypeKind::List), Element(Element) {}

  const Type *element() const { return Element; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::List; }

private:
  const Type *Element;
};

/// `τ1 → τ2`.
class FunType : public Type {
public:
  FunType(const Type *Param, const Type *Result)
      : Type(TypeKind::Fun), Param(Param), Result(Result) {}

  const Type *param() const { return Param; }
  const Type *result() const { return Result; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Fun; }

private:
  const Type *Param;
  const Type *Result;
};

/// `τ1 * τ2` — the product extension the paper sketches in §1 ("our
/// approach for lists could be applied to other data structures such as
/// tuples"). Pairs are spineless: for escape grading they are
/// indivisible objects, but their components flow precisely through the
/// abstract semantics.
class PairType : public Type {
public:
  PairType(const Type *First, const Type *Second)
      : Type(TypeKind::Pair), First(First), Second(Second) {}

  const Type *first() const { return First; }
  const Type *second() const { return Second; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Pair; }

private:
  const Type *First;
  const Type *Second;
};

/// A unification variable. Only appears during type inference; fully
/// inferred programs have none (leftover variables are defaulted).
class TypeVar : public Type {
public:
  explicit TypeVar(uint32_t Id) : Type(TypeKind::Var), Id(Id) {}

  uint32_t id() const { return Id; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Var; }

private:
  uint32_t Id;
};

/// Owns and uniques types. Pointer equality on types from the same context
/// is semantic equality.
class TypeContext {
public:
  TypeContext() = default;
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const IntType *getInt() { return &Int; }
  const BoolType *getBool() { return &Bool; }

  const ListType *getList(const Type *Element) {
    auto It = Lists.find(Element);
    if (It != Lists.end())
      return It->second.get();
    auto Owner = std::make_unique<ListType>(Element);
    const ListType *Result = Owner.get();
    Lists.emplace(Element, std::move(Owner));
    return Result;
  }

  const FunType *getFun(const Type *Param, const Type *Result) {
    auto Key = std::make_pair(Param, Result);
    auto It = Funs.find(Key);
    if (It != Funs.end())
      return It->second.get();
    auto Owner = std::make_unique<FunType>(Param, Result);
    const FunType *Ptr = Owner.get();
    Funs.emplace(Key, std::move(Owner));
    return Ptr;
  }

  const PairType *getPair(const Type *First, const Type *Second) {
    auto Key = std::make_pair(First, Second);
    auto It = Pairs.find(Key);
    if (It != Pairs.end())
      return It->second.get();
    auto Owner = std::make_unique<PairType>(First, Second);
    const PairType *Ptr = Owner.get();
    Pairs.emplace(Key, std::move(Owner));
    return Ptr;
  }

  /// Builds `τ1 → τ2 → ... → Result` (right associated).
  const Type *getFunChain(const std::vector<const Type *> &Params,
                          const Type *Result) {
    const Type *T = Result;
    for (auto It = Params.rbegin(); It != Params.rend(); ++It)
      T = getFun(*It, T);
    return T;
  }

  /// Creates a fresh unification variable.
  const TypeVar *freshVar() {
    Vars.push_back(std::make_unique<TypeVar>(NextVarId++));
    return Vars.back().get();
  }

  uint32_t numVars() const { return NextVarId; }

private:
  struct PairHash {
    size_t operator()(const std::pair<const Type *, const Type *> &P) const {
      return std::hash<const void *>()(P.first) * 31 ^
             std::hash<const void *>()(P.second);
    }
  };

  IntType Int;
  BoolType Bool;
  std::unordered_map<const Type *, std::unique_ptr<ListType>> Lists;
  std::unordered_map<std::pair<const Type *, const Type *>,
                     std::unique_ptr<FunType>, PairHash>
      Funs;
  std::unordered_map<std::pair<const Type *, const Type *>,
                     std::unique_ptr<PairType>, PairHash>
      Pairs;
  std::vector<std::unique_ptr<TypeVar>> Vars;
  uint32_t NextVarId = 0;
};

/// Returns the spine count of \p T (Definition 1). Unresolved type
/// variables count as spineless (they default to int).
unsigned spineCount(const Type *T);

/// Renders \p T in ML syntax, e.g. "int list list" or
/// "(int -> bool) -> int list".
std::string typeName(const Type *T);

} // namespace eal

#endif // EAL_TYPES_TYPE_H

//===- TypeInference.cpp --------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "types/TypeInference.h"

#include "lang/AstUtils.h"
#include "support/Diagnostics.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

using namespace eal;

namespace {

/// A type scheme ∀Vars. Body. Monomorphic bindings have empty Vars.
struct Scheme {
  std::vector<const TypeVar *> Vars;
  const Type *Body = nullptr;
};

} // namespace

class TypeInference::Impl {
public:
  Impl(AstContext &Ast, TypeContext &Types, DiagnosticEngine &Diags,
       TypeInferenceMode Mode)
      : Ast(Ast), Types(Types), Diags(Diags), Mode(Mode) {}

  std::optional<TypedProgram> run(const Expr *Root);

private:
  //===------------------------------------------------------------------===//
  // Substitution (union-find over type variables).
  //===------------------------------------------------------------------===//

  /// Follows variable bindings until reaching an unbound variable or a
  /// constructor, with path compression.
  const Type *prune(const Type *T) {
    while (const auto *Var = dyn_cast<TypeVar>(T)) {
      auto It = Subst.find(Var);
      if (It == Subst.end())
        break;
      It->second = prune(It->second);
      T = It->second;
    }
    return T;
  }

  bool occurs(const TypeVar *Var, const Type *T) {
    T = prune(T);
    if (T == Var)
      return true;
    if (const auto *List = dyn_cast<ListType>(T))
      return occurs(Var, List->element());
    if (const auto *Fun = dyn_cast<FunType>(T))
      return occurs(Var, Fun->param()) || occurs(Var, Fun->result());
    if (const auto *Pair = dyn_cast<PairType>(T))
      return occurs(Var, Pair->first()) || occurs(Var, Pair->second());
    return false;
  }

  bool unify(const Type *A, const Type *B, SourceLoc Loc) {
    A = prune(A);
    B = prune(B);
    if (A == B)
      return true;
    if (const auto *Var = dyn_cast<TypeVar>(A)) {
      if (occurs(Var, B)) {
        Diags.error(Loc, "cannot construct the infinite type " + typeName(A) +
                             " = " + typeName(B));
        return false;
      }
      Subst[Var] = B;
      return true;
    }
    if (isa<TypeVar>(B))
      return unify(B, A, Loc);
    if (const auto *ListA = dyn_cast<ListType>(A))
      if (const auto *ListB = dyn_cast<ListType>(B))
        return unify(ListA->element(), ListB->element(), Loc);
    if (const auto *FunA = dyn_cast<FunType>(A))
      if (const auto *FunB = dyn_cast<FunType>(B))
        return unify(FunA->param(), FunB->param(), Loc) &&
               unify(FunA->result(), FunB->result(), Loc);
    if (const auto *PairA = dyn_cast<PairType>(A))
      if (const auto *PairB = dyn_cast<PairType>(B))
        return unify(PairA->first(), PairB->first(), Loc) &&
               unify(PairA->second(), PairB->second(), Loc);
    Diags.error(Loc, "type mismatch: expected " + typeName(A) + ", found " +
                         typeName(B));
    return false;
  }

  /// Fully applies the substitution, replacing unbound variables with
  /// `int` (the simplest monotype instance; Theorem 1 justifies this
  /// defaulting for the analysis).
  const Type *zonk(const Type *T) {
    T = prune(T);
    switch (T->kind()) {
    case TypeKind::Int:
    case TypeKind::Bool:
      return T;
    case TypeKind::Var:
      return Types.getInt();
    case TypeKind::List:
      return Types.getList(zonk(cast<ListType>(T)->element()));
    case TypeKind::Fun: {
      const auto *Fun = cast<FunType>(T);
      return Types.getFun(zonk(Fun->param()), zonk(Fun->result()));
    }
    case TypeKind::Pair: {
      const auto *Pair = cast<PairType>(T);
      return Types.getPair(zonk(Pair->first()), zonk(Pair->second()));
    }
    }
    assert(false && "unhandled type kind");
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Schemes and the typing environment.
  //===------------------------------------------------------------------===//

  void collectFreeVars(const Type *T, std::vector<const TypeVar *> &Out) {
    T = prune(T);
    if (const auto *Var = dyn_cast<TypeVar>(T)) {
      if (std::find(Out.begin(), Out.end(), Var) == Out.end())
        Out.push_back(Var);
      return;
    }
    if (const auto *List = dyn_cast<ListType>(T)) {
      collectFreeVars(List->element(), Out);
      return;
    }
    if (const auto *Fun = dyn_cast<FunType>(T)) {
      collectFreeVars(Fun->param(), Out);
      collectFreeVars(Fun->result(), Out);
      return;
    }
    if (const auto *Pair = dyn_cast<PairType>(T)) {
      collectFreeVars(Pair->first(), Out);
      collectFreeVars(Pair->second(), Out);
    }
  }

  /// Generalizes \p T over variables not free in the environment.
  Scheme generalize(const Type *T) {
    Scheme S;
    S.Body = T;
    if (Mode == TypeInferenceMode::Monomorphic)
      return S;
    // A variable is free in the environment if it occurs in a scheme body
    // and is not quantified by that scheme.
    std::vector<const TypeVar *> EnvVars;
    for (const auto &Entry : Env) {
      std::vector<const TypeVar *> BodyVars;
      collectFreeVars(Entry.second.Body, BodyVars);
      for (const TypeVar *Var : BodyVars)
        if (std::find(Entry.second.Vars.begin(), Entry.second.Vars.end(),
                      Var) == Entry.second.Vars.end())
          EnvVars.push_back(Var);
    }
    std::vector<const TypeVar *> TypeVars;
    collectFreeVars(T, TypeVars);
    for (const TypeVar *Var : TypeVars)
      if (std::find(EnvVars.begin(), EnvVars.end(), Var) == EnvVars.end())
        S.Vars.push_back(Var);
    return S;
  }

  /// Instantiates \p S with fresh variables for its quantified variables.
  const Type *instantiate(const Scheme &S) {
    if (S.Vars.empty())
      return S.Body;
    std::unordered_map<const TypeVar *, const Type *> Fresh;
    for (const TypeVar *Var : S.Vars)
      Fresh[Var] = Types.freshVar();
    return substitute(S.Body, Fresh);
  }

  const Type *
  substitute(const Type *T,
             const std::unordered_map<const TypeVar *, const Type *> &Map) {
    T = prune(T);
    if (const auto *Var = dyn_cast<TypeVar>(T)) {
      auto It = Map.find(Var);
      return It != Map.end() ? It->second : T;
    }
    if (const auto *List = dyn_cast<ListType>(T))
      return Types.getList(substitute(List->element(), Map));
    if (const auto *Fun = dyn_cast<FunType>(T))
      return Types.getFun(substitute(Fun->param(), Map),
                          substitute(Fun->result(), Map));
    if (const auto *Pair = dyn_cast<PairType>(T))
      return Types.getPair(substitute(Pair->first(), Map),
                           substitute(Pair->second(), Map));
    return T;
  }

  const Scheme *lookup(Symbol Name) const {
    for (auto It = Env.rbegin(); It != Env.rend(); ++It)
      if (It->first == Name)
        return &It->second;
    return nullptr;
  }

  //===------------------------------------------------------------------===//
  // Inference proper.
  //===------------------------------------------------------------------===//

  /// The polymorphic type of primitive \p Op, instantiated fresh.
  const Type *primType(PrimOp Op) {
    const Type *IntTy = Types.getInt();
    const Type *BoolTy = Types.getBool();
    switch (Op) {
    case PrimOp::Add:
    case PrimOp::Sub:
    case PrimOp::Mul:
    case PrimOp::Div:
    case PrimOp::Mod:
      return Types.getFun(IntTy, Types.getFun(IntTy, IntTy));
    case PrimOp::Eq:
    case PrimOp::Ne:
    case PrimOp::Lt:
    case PrimOp::Le:
    case PrimOp::Gt:
    case PrimOp::Ge:
      return Types.getFun(IntTy, Types.getFun(IntTy, BoolTy));
    case PrimOp::Not:
      return Types.getFun(BoolTy, BoolTy);
    case PrimOp::Cons: {
      const Type *A = Types.freshVar();
      const Type *ListA = Types.getList(A);
      return Types.getFun(A, Types.getFun(ListA, ListA));
    }
    case PrimOp::Car: {
      const Type *A = Types.freshVar();
      return Types.getFun(Types.getList(A), A);
    }
    case PrimOp::Cdr: {
      const Type *ListA = Types.getList(Types.freshVar());
      return Types.getFun(ListA, ListA);
    }
    case PrimOp::Null:
      return Types.getFun(Types.getList(Types.freshVar()), BoolTy);
    case PrimOp::DCons: {
      // dcons reuseCell head tail: the reused cell comes from a list of
      // the result type.
      const Type *A = Types.freshVar();
      const Type *ListA = Types.getList(A);
      return Types.getFun(ListA, Types.getFun(A, Types.getFun(ListA, ListA)));
    }
    case PrimOp::MkPair: {
      const Type *A = Types.freshVar();
      const Type *B = Types.freshVar();
      return Types.getFun(A, Types.getFun(B, Types.getPair(A, B)));
    }
    case PrimOp::Fst: {
      const Type *A = Types.freshVar();
      const Type *B = Types.freshVar();
      return Types.getFun(Types.getPair(A, B), A);
    }
    case PrimOp::Snd: {
      const Type *A = Types.freshVar();
      const Type *B = Types.freshVar();
      return Types.getFun(Types.getPair(A, B), B);
    }
    }
    assert(false && "unhandled primitive");
    return nullptr;
  }

  /// Infers the type of \p E, recording it in the node-type table.
  /// Returns null after a diagnostic on error.
  const Type *infer(const Expr *E) {
    const Type *T = inferUncached(E);
    if (!T)
      return nullptr;
    if (RawNodeTypes.size() <= E->id())
      RawNodeTypes.resize(E->id() + 1, nullptr);
    RawNodeTypes[E->id()] = T;
    return T;
  }

  const Type *inferUncached(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Types.getInt();
    case ExprKind::BoolLit:
      return Types.getBool();
    case ExprKind::NilLit:
      return Types.getList(Types.freshVar());
    case ExprKind::Var: {
      const auto *Var = cast<VarExpr>(E);
      const Scheme *S = lookup(Var->name());
      if (!S) {
        Diags.error(E->loc(), "unbound identifier '" +
                                  std::string(Ast.spelling(Var->name())) +
                                  "'");
        return nullptr;
      }
      return instantiate(*S);
    }
    case ExprKind::Prim:
      return primType(cast<PrimExpr>(E)->op());
    case ExprKind::App: {
      const auto *App = cast<AppExpr>(E);
      const Type *FnTy = infer(App->fn());
      const Type *ArgTy = infer(App->arg());
      if (!FnTy || !ArgTy)
        return nullptr;
      const Type *ResultTy = Types.freshVar();
      if (!unify(FnTy, Types.getFun(ArgTy, ResultTy), App->loc()))
        return nullptr;
      return ResultTy;
    }
    case ExprKind::Lambda: {
      const auto *Lambda = cast<LambdaExpr>(E);
      const Type *ParamTy = Types.freshVar();
      Env.emplace_back(Lambda->param(), Scheme{{}, ParamTy});
      const Type *BodyTy = infer(Lambda->body());
      Env.pop_back();
      if (!BodyTy)
        return nullptr;
      return Types.getFun(ParamTy, BodyTy);
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      const Type *CondTy = infer(If->cond());
      if (!CondTy || !unify(CondTy, Types.getBool(), If->cond()->loc()))
        return nullptr;
      const Type *ThenTy = infer(If->thenExpr());
      const Type *ElseTy = infer(If->elseExpr());
      if (!ThenTy || !ElseTy ||
          !unify(ThenTy, ElseTy, If->elseExpr()->loc()))
        return nullptr;
      return ThenTy;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      const Type *ValueTy = infer(Let->value());
      if (!ValueTy)
        return nullptr;
      Env.emplace_back(Let->name(), generalize(ValueTy));
      const Type *BodyTy = infer(Let->body());
      Env.pop_back();
      return BodyTy;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      size_t Mark = Env.size();
      // Bind every name to a fresh monomorphic variable first: all
      // bindings are mutually in scope, monomorphically (standard HM;
      // no polymorphic recursion).
      std::vector<const Type *> BindingTys;
      for (const LetrecBinding &B : Letrec->bindings()) {
        const Type *Var = Types.freshVar();
        BindingTys.push_back(Var);
        Env.emplace_back(B.Name, Scheme{{}, Var});
      }
      auto Bindings = Letrec->bindings();
      for (size_t I = 0; I != Bindings.size(); ++I) {
        const Type *ValueTy = infer(Bindings[I].Value);
        if (!ValueTy ||
            !unify(BindingTys[I], ValueTy, Bindings[I].NameLoc)) {
          Env.resize(Mark);
          return nullptr;
        }
      }
      // Re-bind generalized for the body.
      Env.resize(Mark);
      for (size_t I = 0; I != Bindings.size(); ++I)
        Env.emplace_back(Bindings[I].Name, generalize(BindingTys[I]));
      const Type *BodyTy = infer(Letrec->body());
      Env.resize(Mark);
      return BodyTy;
    }
    }
    assert(false && "unhandled expression kind");
    return nullptr;
  }

  AstContext &Ast;
  TypeContext &Types;
  DiagnosticEngine &Diags;
  TypeInferenceMode Mode;
  std::unordered_map<const TypeVar *, const Type *> Subst;
  std::vector<std::pair<Symbol, Scheme>> Env;
  std::vector<const Type *> RawNodeTypes;
};

std::optional<TypedProgram> TypeInference::Impl::run(const Expr *Root) {
  RawNodeTypes.assign(Ast.numNodes(), nullptr);
  if (!infer(Root))
    return std::nullopt;

  TypedProgram Result;
  Result.Root = Root;
  Result.NodeTypes.assign(RawNodeTypes.size(), nullptr);
  Result.CarSpines.assign(RawNodeTypes.size(), 0);
  unsigned SpineBound = 0;
  for (size_t I = 0; I != RawNodeTypes.size(); ++I) {
    if (!RawNodeTypes[I])
      continue; // node belongs to another program in this context
    const Type *T = zonk(RawNodeTypes[I]);
    Result.NodeTypes[I] = T;
    // The bound must cover every type reachable in the program, including
    // components of function types (arguments may be deep lists).
    unsigned Deep = 0;
    std::vector<const Type *> Work = {T};
    while (!Work.empty()) {
      const Type *Cur = Work.back();
      Work.pop_back();
      Deep = std::max(Deep, spineCount(Cur));
      if (const auto *List = dyn_cast<ListType>(Cur)) {
        Work.push_back(List->element());
      } else if (const auto *Fun = dyn_cast<FunType>(Cur)) {
        Work.push_back(Fun->param());
        Work.push_back(Fun->result());
      } else if (const auto *Pair = dyn_cast<PairType>(Cur)) {
        Work.push_back(Pair->first());
        Work.push_back(Pair->second());
      }
    }
    SpineBound = std::max(SpineBound, Deep);
  }
  Result.SpineBound = SpineBound;

  // Annotate car occurrences with the spine count of their argument
  // (car^s in §3.4): car : τ list → τ, so s = spines(τ list).
  forEachExpr(Root, [&Result](const Expr *E) {
    const auto *Prim = dyn_cast<PrimExpr>(E);
    if (!Prim || Prim->op() != PrimOp::Car)
      return;
    const auto *Fun = cast<FunType>(Result.NodeTypes[E->id()]);
    Result.CarSpines[E->id()] = spineCount(Fun->param());
  });
  return Result;
}

TypeInference::TypeInference(AstContext &Ast, TypeContext &Types,
                             DiagnosticEngine &Diags, TypeInferenceMode Mode)
    : TheImpl(std::make_unique<Impl>(Ast, Types, Diags, Mode)) {}

TypeInference::~TypeInference() = default;

std::optional<TypedProgram> TypeInference::run(const Expr *Root) {
  return TheImpl->run(Root);
}

//===- TypeInference.h - Hindley-Milner inference for nml -------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type inference for nml. The paper assumes monomorphic type inference
/// has already been performed (§3.1) and later lifts the restriction via
/// polymorphic invariance (§5, Theorem 1). Both stances are supported:
///
/// * Monomorphic mode: `let`/`letrec` bindings are not generalized; each
///   function gets the single monotype its uses force, exactly like the
///   paper's base language. Using one function at two incompatible types
///   is a type error.
/// * Polymorphic mode (default): classic Algorithm W with generalization
///   at bindings. Residual type variables are defaulted to `int`, so the
///   analysis sees the *simplest monotyped instance* of each function —
///   the instance Theorem 1 says suffices.
///
/// Besides per-node types, inference produces the `car^s` annotation the
/// abstract semantics needs (§3.4): for every occurrence of `car`, the
/// spine count `s` of its list argument, statically determined by type.
/// It also computes the program's spine bound `d`, which caps the basic
/// escape domain B_e.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_TYPES_TYPEINFERENCE_H
#define EAL_TYPES_TYPEINFERENCE_H

#include "lang/Ast.h"
#include "types/Type.h"

#include <cassert>
#include <optional>
#include <vector>

namespace eal {

class DiagnosticEngine;

/// Whether bindings are generalized (see file comment).
enum class TypeInferenceMode {
  Monomorphic,
  Polymorphic,
};

/// The result of type inference: resolved per-node types plus the derived
/// escape-analysis annotations.
class TypedProgram {
public:
  const Expr *root() const { return Root; }

  /// The fully resolved (variable-free) type of \p E.
  const Type *typeOf(const Expr *E) const {
    assert(E->id() < NodeTypes.size() && "expression from a later context");
    const Type *T = NodeTypes[E->id()];
    assert(T && "expression was not visited by inference");
    return T;
  }

  /// The spine count `s` annotated on a `car` primitive occurrence.
  unsigned carSpine(const Expr *CarPrim) const {
    assert(CarPrim->id() < CarSpines.size() && CarSpines[CarPrim->id()] != 0 &&
           "not an analyzed car occurrence");
    return CarSpines[CarPrim->id()];
  }

  /// The program's spine bound `d`: the maximum spine count of any type
  /// occurring in the program. The basic escape domain is
  /// {⟨0,0⟩, ⟨1,0⟩, ..., ⟨1,d⟩}.
  unsigned spineBound() const { return SpineBound; }

private:
  friend class TypeInference;
  const Expr *Root = nullptr;
  std::vector<const Type *> NodeTypes;
  std::vector<unsigned> CarSpines; // 0 = not a car occurrence
  unsigned SpineBound = 0;
};

/// Runs type inference over one program.
class TypeInference {
public:
  TypeInference(AstContext &Ast, TypeContext &Types, DiagnosticEngine &Diags,
                TypeInferenceMode Mode = TypeInferenceMode::Polymorphic);
  ~TypeInference();

  /// Infers types for \p Root. Returns nullopt after reporting
  /// diagnostics if the program is ill-typed.
  std::optional<TypedProgram> run(const Expr *Root);

private:
  class Impl;
  std::unique_ptr<Impl> TheImpl;
};

} // namespace eal

#endif // EAL_TYPES_TYPEINFERENCE_H

//===- Bytecode.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <sstream>

using namespace eal;

const char *eal::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::PushInt:
    return "push.int";
  case Opcode::PushBool:
    return "push.bool";
  case Opcode::PushNil:
    return "push.nil";
  case Opcode::PushPrim:
    return "push.prim";
  case Opcode::LoadSlot:
    return "load";
  case Opcode::MakeClosure:
    return "closure";
  case Opcode::Call:
    return "call";
  case Opcode::Return:
    return "ret";
  case Opcode::Jump:
    return "jmp";
  case Opcode::JumpIfFalse:
    return "jmp.false";
  case Opcode::Prim:
    return "prim";
  case Opcode::EnterScope:
    return "enter";
  case Opcode::StoreSlot:
    return "store";
  case Opcode::LeaveScope:
    return "leave";
  case Opcode::BeginArena:
    return "arena.begin";
  case Opcode::StashArena:
    return "arena.stash";
  case Opcode::LoadLocal:
    return "load.l";
  case Opcode::Slide:
    return "slide";
  case Opcode::TailCall:
    return "call.tail";
  case Opcode::PushIntPrim:
    return "prim.i";
  case Opcode::LocalPrim:
    return "prim.l";
  case Opcode::LocalLocalPrim:
    return "prim.ll";
  case Opcode::GuardSpec:
    return "guard.spec";
  }
  return "???";
}

std::string eal::disassemble(const Chunk &C) {
  std::ostringstream OS;
  for (size_t PI = 0; PI != C.Protos.size(); ++PI) {
    const Proto &P = C.Protos[PI];
    OS << "proto " << PI << " '" << P.Name << "' arity " << P.Arity
       << (P.FlatFrame ? " flat" : "")
       << (PI == C.Entry ? " (entry)" : "");
    if (!P.SpecGuards.empty()) {
      OS << " guards=[";
      for (size_t G = 0; G != P.SpecGuards.size(); ++G)
        OS << (G ? "," : "") << P.SpecGuards[G];
      OS << ']';
    }
    OS << ":\n";
    for (size_t I = 0; I != P.Code.size(); ++I) {
      const Instr &In = P.Code[I];
      OS << "  " << I << ": " << opcodeName(In.Op);
      switch (In.Op) {
      case Opcode::PushInt:
        OS << ' ' << In.Imm;
        break;
      case Opcode::PushBool:
        OS << ' ' << (In.A ? "true" : "false");
        break;
      case Opcode::PushPrim: {
        const Chunk::PrimRef &Ref = C.PrimRefs[static_cast<size_t>(In.A)];
        OS << ' ' << primOpName(Ref.Op);
        if (Ref.Site)
          OS << " @site" << Ref.Site;
        OS << " (#" << In.A << ')';
        break;
      }
      case Opcode::Prim:
        OS << ' ' << primOpName(static_cast<PrimOp>(In.A));
        if (In.B)
          OS << " @site" << In.B;
        break;
      case Opcode::PushIntPrim:
        OS << ' ' << primOpName(static_cast<PrimOp>(In.A))
           << " imm=" << In.Imm;
        if (In.B)
          OS << " @site" << In.B;
        break;
      case Opcode::LocalPrim:
        OS << ' ' << primOpName(static_cast<PrimOp>(In.Imm))
           << " slot=" << In.A;
        if (In.B)
          OS << " @site" << In.B;
        break;
      case Opcode::LocalLocalPrim:
        OS << ' ' << primOpName(static_cast<PrimOp>(In.Imm))
           << " slots=" << (In.A >> 16) << ',' << (In.A & 0xFFFF);
        if (In.B)
          OS << " @site" << In.B;
        break;
      case Opcode::LoadSlot:
        OS << " depth=" << In.A << " slot=" << In.B;
        break;
      case Opcode::LoadLocal:
        OS << " slot=" << In.A;
        break;
      case Opcode::Slide:
        OS << " n=" << In.A;
        break;
      case Opcode::MakeClosure:
        OS << " proto=" << In.A;
        break;
      case Opcode::Call:
      case Opcode::TailCall:
        OS << " nargs=" << In.A;
        if (In.B)
          OS << " arenas=" << In.B;
        break;
      case Opcode::Jump:
      case Opcode::JumpIfFalse:
        OS << " -> " << (static_cast<int64_t>(I) + 1 + In.A);
        break;
      case Opcode::EnterScope:
        OS << " slots=" << In.A << (In.B ? " rec" : "");
        break;
      case Opcode::StoreSlot:
        OS << " slot=" << In.A;
        break;
      case Opcode::BeginArena:
        OS << " directive=" << In.A;
        break;
      case Opcode::GuardSpec:
        OS << " guard=" << In.A;
        break;
      default:
        break;
      }
      OS << '\n';
    }
  }
  return OS.str();
}

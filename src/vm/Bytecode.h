//===- Bytecode.h - nml bytecode --------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack-machine bytecode for nml, the second execution engine
/// beside the tree-walking interpreter. The compiler resolves variables
/// to (frame depth, slot) pairs at compile time and turns lambda chains
/// into n-ary protos; the VM runs an iterative dispatch loop, so nml
/// recursion depth is bounded by memory, not by the C++ stack.
///
/// Allocation-plan integration mirrors the interpreter: cons/pair
/// instructions carry their static site id, and argument evaluation for
/// calls with arena directives is bracketed by BeginArena/StashArena so
/// the arenas attach to the callee's activation.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_VM_BYTECODE_H
#define EAL_VM_BYTECODE_H

#include "lang/Ast.h"
#include "opt/AllocPlanner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eal {

/// VM instruction set.
enum class Opcode : uint8_t {
  PushInt,     ///< push Imm
  PushBool,    ///< push A != 0
  PushNil,     ///< push nil
  PushPrim,    ///< push a primitive closure; A = PrimOp, B = site id
  LoadSlot,    ///< push env[depth A][slot B]
  MakeClosure, ///< push closure of proto A capturing the current frame
  Call,        ///< call with A args; B pending arenas attach to the callee
  Return,      ///< return top of stack from the current frame
  Jump,        ///< ip += A (relative to the next instruction)
  JumpIfFalse, ///< pop condition; jump if false
  Prim,        ///< saturated primitive A (pops arity args); B = site id
  EnterScope,  ///< push an env frame with A empty slots; B = 1 if letrec
  StoreSlot,   ///< pop into slot A of the current frame
  LeaveScope,  ///< pop the current env frame
  BeginArena,  ///< activate a fresh arena for plan directive A
  StashArena,  ///< deactivate the innermost arena, pending for next Call
};

/// Returns the mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// One instruction. A/B are operands; Imm carries integer literals.
struct Instr {
  Opcode Op;
  int32_t A = 0;
  uint32_t B = 0;
  int64_t Imm = 0;
};

/// One compiled function (a whole lambda chain): binds Arity parameters
/// at once into a fresh frame, then runs Code until Return.
struct Proto {
  unsigned Arity = 0;
  std::vector<Instr> Code;
  std::string Name; ///< for disassembly and diagnostics
};

/// A compiled program.
struct Chunk {
  std::vector<Proto> Protos;
  /// Index of the entry proto (arity 0; the program body).
  unsigned Entry = 0;
  /// Directive table referenced by BeginArena operands.
  std::vector<const ArgArenaDirective *> Directives;

  /// Total instruction count (a size metric).
  size_t instructionCount() const {
    size_t N = 0;
    for (const Proto &P : Protos)
      N += P.Code.size();
    return N;
  }
};

/// Renders \p C as human-readable assembly.
std::string disassemble(const Chunk &C);

} // namespace eal

#endif // EAL_VM_BYTECODE_H

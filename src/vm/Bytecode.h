//===- Bytecode.h - nml bytecode --------------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact stack-machine bytecode for nml, the second execution engine
/// beside the tree-walking interpreter. The compiler resolves variables
/// to (frame depth, slot) pairs at compile time and turns lambda chains
/// into n-ary protos; the VM runs an iterative dispatch loop, so nml
/// recursion depth is bounded by memory, not by the C++ stack.
///
/// Allocation-plan integration mirrors the interpreter: cons/pair
/// instructions carry their static site id, and argument evaluation for
/// calls with arena directives is bracketed by BeginArena/StashArena so
/// the arenas attach to the callee's activation.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_VM_BYTECODE_H
#define EAL_VM_BYTECODE_H

#include "lang/Ast.h"
#include "opt/AllocPlanner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace eal {

/// VM instruction set.
enum class Opcode : uint8_t {
  PushInt,     ///< push Imm
  PushBool,    ///< push A != 0
  PushNil,     ///< push nil
  PushPrim,    ///< push the interned primitive closure PrimRefs[A]
  LoadSlot,    ///< push env[depth A][slot B]
  MakeClosure, ///< push closure of proto A capturing the current frame
  Call,        ///< call with A args; B pending arenas attach to the callee
  Return,      ///< return top of stack from the current frame
  Jump,        ///< ip += A (relative to the next instruction)
  JumpIfFalse, ///< pop condition; jump if false
  Prim,        ///< saturated primitive A (pops arity args); B = site id
  EnterScope,  ///< push an env frame with A empty slots; B = 1 if letrec
  StoreSlot,   ///< pop into slot A of the current frame
  LeaveScope,  ///< pop the current env frame
  BeginArena,  ///< activate a fresh arena for plan directive A
  StashArena,  ///< deactivate the innermost arena, pending for next Call

  // Escape-directed frame flattening: bindings the frame-escape
  // analysis proves uncaptured live as value-stack slots.
  LoadLocal, ///< push stack[frame base + A] (a flattened binding)
  Slide,     ///< pop the result, drop A values beneath it, push it back
  TailCall,  ///< like Call with A args / B arenas, but replaces the frame

  // Peephole superinstructions (hot shapes; see Compiler.cpp).
  PushIntPrim,    ///< push Imm, then saturated prim A; B = site id
  LocalPrim,      ///< push local A, then saturated prim Imm; B = site id
  LocalLocalPrim, ///< push locals A>>16 and A&0xffff, then prim Imm @ B

  /// Speculative-tier deopt guard (src/spec, docs/SPECULATION.md):
  /// control reached a branch the speculation assumed cold. Reports
  /// guard A to SpecHooks::guardReached, which runs the deopt protocol;
  /// with no hooks attached it is a no-op. Materialized at the top of
  /// the guarded branch's code, so it also bars superinstruction fusion
  /// across the branch entry.
  GuardSpec,
};

/// One past the last opcode (size of dispatch tables).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::GuardSpec) + 1;

/// Returns the mnemonic of \p Op.
const char *opcodeName(Opcode Op);

/// One instruction. A/B are operands; Imm carries integer literals.
struct Instr {
  Opcode Op;
  int32_t A = 0;
  uint32_t B = 0;
  int64_t Imm = 0;
};

/// One compiled function (a whole lambda chain): binds Arity parameters
/// at once, then runs Code until Return.
struct Proto {
  unsigned Arity = 0;
  std::vector<Instr> Code;
  std::string Name; ///< for disassembly and diagnostics
  /// Frame flattening: the frame-escape analysis proved no binding of
  /// this proto is captured by a nested closure, so parameters live as
  /// value-stack slots (LoadLocal) and calls allocate no EnvFrame.
  bool FlatFrame = false;
  /// Speculation guards materialized in this proto's code (guard
  /// indices, in emission order) — the per-proto materialization map the
  /// spec report and disassembly show (docs/SPECULATION.md). Empty in
  /// non-speculative compiles.
  std::vector<uint32_t> SpecGuards;
};

/// A compiled program.
struct Chunk {
  std::vector<Proto> Protos;
  /// Index of the entry proto (arity 0; the program body).
  unsigned Entry = 0;
  /// Directive table referenced by BeginArena operands.
  std::vector<const ArgArenaDirective *> Directives;
  /// One entry per distinct primitive-as-value site; PushPrim pushes the
  /// VM's interned closure for PrimRefs[A] instead of allocating one.
  struct PrimRef {
    PrimOp Op;
    uint32_t Site;
  };
  std::vector<PrimRef> PrimRefs;

  /// Total instruction count (a size metric).
  size_t instructionCount() const {
    size_t N = 0;
    for (const Proto &P : Protos)
      N += P.Code.size();
    return N;
  }
};

/// Renders \p C as human-readable assembly.
std::string disassemble(const Chunk &C);

} // namespace eal

#endif // EAL_VM_BYTECODE_H

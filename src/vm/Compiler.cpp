//===- Compiler.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "lang/AstUtils.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <unordered_map>

using namespace eal;

namespace {

class CompilerImpl {
public:
  CompilerImpl(const AstContext &Ast, const AllocationPlan *Plan,
               DiagnosticEngine &Diags)
      : Ast(Ast), Plan(Plan), Diags(Diags) {}

  std::optional<Chunk> run(const Expr *Root) {
    // The entry proto runs under one (empty) frame.
    Out.Protos.emplace_back();
    Out.Protos[0].Arity = 0;
    Out.Protos[0].Name = "<entry>";
    Out.Entry = 0;
    Scopes.push_back({});
    std::vector<Instr> Code;
    if (!compileExpr(Root, Code))
      return std::nullopt;
    Code.push_back({Opcode::Return, 0, 0, 0});
    Out.Protos[0].Code = std::move(Code);
    Scopes.pop_back();
    return std::move(Out);
  }

private:
  //===--- Scope handling --------------------------------------------------==//

  bool resolve(Symbol Name, SourceLoc Loc, int32_t &Depth, uint32_t &Slot) {
    for (size_t D = 0; D != Scopes.size(); ++D) {
      const std::vector<Symbol> &Scope = Scopes[Scopes.size() - 1 - D];
      for (size_t I = 0; I != Scope.size(); ++I)
        if (Scope[I] == Name) {
          Depth = static_cast<int32_t>(D);
          Slot = static_cast<uint32_t>(I);
          return true;
        }
    }
    Diags.error(Loc, "bytecode compiler: unbound identifier '" +
                         std::string(Ast.spelling(Name)) + "'");
    return false;
  }

  //===--- Expression compilation -------------------------------------------==//

  bool compileExpr(const Expr *E, std::vector<Instr> &Code) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      Code.push_back(
          {Opcode::PushInt, 0, 0, cast<IntLitExpr>(E)->value()});
      return true;
    case ExprKind::BoolLit:
      Code.push_back(
          {Opcode::PushBool, cast<BoolLitExpr>(E)->value() ? 1 : 0, 0, 0});
      return true;
    case ExprKind::NilLit:
      Code.push_back({Opcode::PushNil, 0, 0, 0});
      return true;
    case ExprKind::Var: {
      int32_t Depth = 0;
      uint32_t Slot = 0;
      if (!resolve(cast<VarExpr>(E)->name(), E->loc(), Depth, Slot))
        return false;
      Code.push_back({Opcode::LoadSlot, Depth, Slot, 0});
      return true;
    }
    case ExprKind::Prim: {
      const auto *Prim = cast<PrimExpr>(E);
      Code.push_back({Opcode::PushPrim,
                      static_cast<int32_t>(Prim->op()), E->id(), 0});
      return true;
    }
    case ExprKind::App:
      return compileCallSpine(cast<AppExpr>(E), Code);
    case ExprKind::Lambda: {
      std::optional<unsigned> ProtoIdx =
          compileLambdaChain(E, "<lambda>");
      if (!ProtoIdx)
        return false;
      Code.push_back(
          {Opcode::MakeClosure, static_cast<int32_t>(*ProtoIdx), 0, 0});
      return true;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      if (!compileExpr(If->cond(), Code))
        return false;
      size_t JumpToElse = Code.size();
      Code.push_back({Opcode::JumpIfFalse, 0, 0, 0});
      if (!compileExpr(If->thenExpr(), Code))
        return false;
      size_t JumpToEnd = Code.size();
      Code.push_back({Opcode::Jump, 0, 0, 0});
      Code[JumpToElse].A =
          static_cast<int32_t>(Code.size() - (JumpToElse + 1));
      if (!compileExpr(If->elseExpr(), Code))
        return false;
      Code[JumpToEnd].A =
          static_cast<int32_t>(Code.size() - (JumpToEnd + 1));
      return true;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      if (!compileExpr(Let->value(), Code))
        return false;
      Code.push_back({Opcode::EnterScope, 1, 0, 0});
      Code.push_back({Opcode::StoreSlot, 0, 0, 0});
      Scopes.push_back({Let->name()});
      bool Ok = compileExpr(Let->body(), Code);
      Scopes.pop_back();
      if (!Ok)
        return false;
      Code.push_back({Opcode::LeaveScope, 0, 0, 0});
      return true;
    }
    case ExprKind::Letrec: {
      const auto *Letrec = cast<LetrecExpr>(E);
      auto Bindings = Letrec->bindings();
      Code.push_back({Opcode::EnterScope,
                      static_cast<int32_t>(Bindings.size()), 1, 0});
      std::vector<Symbol> Scope;
      for (const LetrecBinding &B : Bindings)
        Scope.push_back(B.Name);
      Scopes.push_back(std::move(Scope));
      bool Ok = true;
      for (size_t I = 0; Ok && I != Bindings.size(); ++I) {
        // Name function bindings' protos after the binding.
        if (isa<LambdaExpr>(Bindings[I].Value)) {
          std::optional<unsigned> ProtoIdx = compileLambdaChain(
              Bindings[I].Value, std::string(Ast.spelling(Bindings[I].Name)));
          if (!ProtoIdx) {
            Ok = false;
            break;
          }
          Code.push_back(
              {Opcode::MakeClosure, static_cast<int32_t>(*ProtoIdx), 0, 0});
        } else {
          Ok = compileExpr(Bindings[I].Value, Code);
        }
        Code.push_back({Opcode::StoreSlot, static_cast<int32_t>(I), 0, 0});
      }
      Ok = Ok && compileExpr(Letrec->body(), Code);
      Scopes.pop_back();
      if (!Ok)
        return false;
      Code.push_back({Opcode::LeaveScope, 0, 0, 0});
      return true;
    }
    }
    assert(false && "unhandled expression kind");
    return false;
  }

  bool compileCallSpine(const AppExpr *Call, std::vector<Instr> &Code) {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(Call, Args);

    // Saturated direct primitive: one instruction, no closure.
    if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
      if (Args.size() == primOpArity(Prim->op())) {
        for (const Expr *Arg : Args)
          if (!compileExpr(Arg, Code))
            return false;
        Code.push_back({Opcode::Prim, static_cast<int32_t>(Prim->op()),
                        Call->id(), 0});
        return true;
      }
    }

    if (!compileExpr(Callee, Code))
      return false;

    const std::vector<const ArgArenaDirective *> *Directives = nullptr;
    if (Plan) {
      auto It = Plan->ByCall.find(Call->id());
      if (It != Plan->ByCall.end())
        Directives = &It->second;
    }

    uint32_t NumPending = 0;
    for (size_t I = 0; I != Args.size(); ++I) {
      const ArgArenaDirective *D = nullptr;
      if (Directives)
        for (const ArgArenaDirective *Cand : *Directives)
          if (Cand->ArgIndex == I) {
            D = Cand;
            break;
          }
      if (D) {
        Code.push_back(
            {Opcode::BeginArena, static_cast<int32_t>(directiveIndex(D)),
             0, 0});
      }
      if (!compileExpr(Args[I], Code))
        return false;
      if (D) {
        Code.push_back({Opcode::StashArena, 0, 0, 0});
        ++NumPending;
      }
    }
    Code.push_back({Opcode::Call, static_cast<int32_t>(Args.size()),
                    NumPending, 0});
    return true;
  }

  std::optional<unsigned> compileLambdaChain(const Expr *E,
                                             std::string Name) {
    std::vector<Symbol> Params;
    const Expr *Body = E;
    while (const auto *Lambda = dyn_cast<LambdaExpr>(Body)) {
      Params.push_back(Lambda->param());
      Body = Lambda->body();
    }
    unsigned ProtoIdx = static_cast<unsigned>(Out.Protos.size());
    Out.Protos.emplace_back();
    Out.Protos[ProtoIdx].Arity = static_cast<unsigned>(Params.size());
    Out.Protos[ProtoIdx].Name = std::move(Name);

    Scopes.push_back(std::move(Params));
    std::vector<Instr> Code;
    bool Ok = compileExpr(Body, Code);
    Scopes.pop_back();
    if (!Ok)
      return std::nullopt;
    Code.push_back({Opcode::Return, 0, 0, 0});
    Out.Protos[ProtoIdx].Code = std::move(Code);
    return ProtoIdx;
  }

  size_t directiveIndex(const ArgArenaDirective *D) {
    auto It = DirectiveIndices.find(D);
    if (It != DirectiveIndices.end())
      return It->second;
    size_t Index = Out.Directives.size();
    Out.Directives.push_back(D);
    DirectiveIndices.emplace(D, Index);
    return Index;
  }

  const AstContext &Ast;
  const AllocationPlan *Plan;
  DiagnosticEngine &Diags;
  Chunk Out;
  std::vector<std::vector<Symbol>> Scopes;
  std::unordered_map<const ArgArenaDirective *, size_t> DirectiveIndices;
};

} // namespace

std::optional<Chunk> eal::compileToBytecode(const AstContext &Ast,
                                            const Expr *Root,
                                            const AllocationPlan *Plan,
                                            DiagnosticEngine &Diags) {
  CompilerImpl Impl(Ast, Plan, Diags);
  return Impl.run(Root);
}

//===- Compiler.cpp -------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Beyond the straightforward AST-to-stack-code translation, three code
// quality passes run at emit time:
//
//  * Frame flattening (escape/FrameEscape.h): binders whose frame the
//    analysis proves uncaptured keep their bindings on the value stack
//    (LoadLocal against the frame base) instead of heap EnvFrames. The
//    compile-time operand-stack depth `Depth` assigns the slots; every
//    expression nets exactly one value, so the depth is static.
//
//  * Tail calls: an application in tail position compiles to TailCall,
//    which replaces the caller's frame. Scope cleanup (Slide/LeaveScope)
//    is skipped in tail position — Return truncates to the frame base
//    anyway — so the callee really is the activation's last word.
//
//  * Peephole superinstructions: a saturated primitive fuses with the
//    instructions that feed it (LoadLocal+LoadLocal+Prim, PushInt+Prim,
//    LoadLocal+Prim). Fusion never crosses a jump target: binding a
//    label raises the buffer's barrier.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "escape/FrameEscape.h"
#include "lang/AstUtils.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <unordered_map>

using namespace eal;

namespace {

/// A proto's code under construction. Barrier marks the earliest
/// instruction peephole fusion may consume (jump targets land here).
struct CodeBuf {
  std::vector<Instr> Code;
  size_t Barrier = 0;
};

class CompilerImpl {
public:
  CompilerImpl(const AstContext &Ast, const AllocationPlan *Plan,
               DiagnosticEngine &Diags,
               const std::unordered_map<uint32_t, uint32_t> *SpecGuards)
      : Ast(Ast), Plan(Plan), Diags(Diags), SpecGuards(SpecGuards) {}

  std::optional<Chunk> run(const Expr *Root) {
    Escapes = analyzeFrameEscapes(Ast, Root);
    // The entry proto runs under one (empty) frame.
    Out.Protos.emplace_back();
    Out.Protos[0].Arity = 0;
    Out.Protos[0].Name = "<entry>";
    Out.Entry = 0;
    Scopes.push_back({Scope::Frame, {}, {}, 0});
    CodeBuf B;
    if (!compileExpr(Root, B, /*Tail=*/true))
      return std::nullopt;
    emit(B, {Opcode::Return, 0, 0, 0}, -1);
    Out.Protos[0].Code = std::move(B.Code);
    Scopes.pop_back();
    return std::move(Out);
  }

private:
  //===--- Scope handling --------------------------------------------------==//

  struct Scope {
    enum Kind { Frame, Stack };
    Kind K;
    std::vector<Symbol> Names;
    /// Stack scopes only: frame-base-relative slot per name.
    std::vector<uint32_t> Slots;
    /// Owning proto; Stack slots are only addressable from it.
    unsigned ProtoIdx;
  };

  bool resolve(Symbol Name, SourceLoc Loc, CodeBuf &B) {
    int32_t FrameDepth = 0;
    for (size_t D = 0; D != Scopes.size(); ++D) {
      const Scope &S = Scopes[Scopes.size() - 1 - D];
      for (size_t I = 0; I != S.Names.size(); ++I)
        if (S.Names[I] == Name) {
          if (S.K == Scope::Stack) {
            // The frame-escape analysis guarantees stack bindings are
            // never referenced across a closure boundary.
            if (S.ProtoIdx != CurProto) {
              Diags.error(Loc, "bytecode compiler: internal error: "
                               "flattened binding referenced across a "
                               "closure boundary");
              return false;
            }
            emit(B, {Opcode::LoadLocal,
                     static_cast<int32_t>(S.Slots[I]), 0, 0}, +1);
            return true;
          }
          emit(B, {Opcode::LoadSlot, FrameDepth,
                   static_cast<uint32_t>(I), 0}, +1);
          return true;
        }
      if (S.K == Scope::Frame)
        ++FrameDepth;
    }
    Diags.error(Loc, "bytecode compiler: unbound identifier '" +
                         std::string(Ast.spelling(Name)) + "'");
    return false;
  }

  //===--- Emission --------------------------------------------------------==//

  void emit(CodeBuf &B, Instr I, int StackDelta) {
    B.Code.push_back(I);
    Depth += StackDelta;
    assert(Depth >= 0 && "operand stack underflow at compile time");
  }

  /// Points the jump at \p At to the current end of code and bars
  /// fusion across the landing site.
  void bindJump(CodeBuf &B, size_t At) {
    B.Code[At].A = static_cast<int32_t>(B.Code.size() - (At + 1));
    B.Barrier = B.Code.size();
  }

  /// Emits a saturated primitive, fusing it with the instruction(s) that
  /// feed its trailing arguments when they are simple pushes.
  void emitPrim(CodeBuf &B, PrimOp Op, uint32_t Site) {
    unsigned Arity = primOpArity(Op);
    int Delta = 1 - static_cast<int>(Arity);
    std::vector<Instr> &Code = B.Code;
    size_t N = Code.size();
    if (Arity == 2 && N >= 2 && N - 2 >= B.Barrier &&
        Code[N - 2].Op == Opcode::LoadLocal &&
        Code[N - 1].Op == Opcode::LoadLocal && Code[N - 2].A <= 0xFFFF &&
        Code[N - 1].A <= 0xFFFF) {
      int32_t Packed = (Code[N - 2].A << 16) | Code[N - 1].A;
      Code.resize(N - 2);
      emit(B, {Opcode::LocalLocalPrim, Packed, Site,
               static_cast<int64_t>(Op)}, Delta);
      return;
    }
    if (Arity >= 1 && N >= 1 && N - 1 >= B.Barrier) {
      if (Code[N - 1].Op == Opcode::PushInt) {
        int64_t Lit = Code[N - 1].Imm;
        Code.resize(N - 1);
        emit(B, {Opcode::PushIntPrim, static_cast<int32_t>(Op), Site, Lit},
             Delta);
        return;
      }
      if (Code[N - 1].Op == Opcode::LoadLocal) {
        int32_t Slot = Code[N - 1].A;
        Code.resize(N - 1);
        emit(B, {Opcode::LocalPrim, Slot, Site, static_cast<int64_t>(Op)},
             Delta);
        return;
      }
    }
    emit(B, {Opcode::Prim, static_cast<int32_t>(Op), Site, 0}, Delta);
  }

  uint32_t primRefIndex(PrimOp Op, uint32_t Site) {
    uint64_t Key = (static_cast<uint64_t>(Site) << 8) |
                   static_cast<uint8_t>(Op);
    auto It = PrimRefIndices.find(Key);
    if (It != PrimRefIndices.end())
      return It->second;
    uint32_t Index = static_cast<uint32_t>(Out.PrimRefs.size());
    Out.PrimRefs.push_back({Op, Site});
    PrimRefIndices.emplace(Key, Index);
    return Index;
  }

  //===--- Expression compilation -------------------------------------------==//

  bool compileExpr(const Expr *E, CodeBuf &B, bool Tail) {
    // A guarded branch materializes its deopt guard before anything
    // else runs in it; the barrier keeps fusion from reaching past the
    // branch entry (the guard must fire before any allocation in the
    // branch).
    if (SpecGuards) [[unlikely]] {
      auto GuardIt = SpecGuards->find(E->id());
      if (GuardIt != SpecGuards->end()) {
        emit(B, {Opcode::GuardSpec,
                 static_cast<int32_t>(GuardIt->second), 0, 0}, 0);
        B.Barrier = B.Code.size();
        Out.Protos[CurProto].SpecGuards.push_back(GuardIt->second);
      }
    }
    switch (E->kind()) {
    case ExprKind::IntLit:
      emit(B, {Opcode::PushInt, 0, 0, cast<IntLitExpr>(E)->value()}, +1);
      return true;
    case ExprKind::BoolLit:
      emit(B, {Opcode::PushBool, cast<BoolLitExpr>(E)->value() ? 1 : 0,
               0, 0}, +1);
      return true;
    case ExprKind::NilLit:
      emit(B, {Opcode::PushNil, 0, 0, 0}, +1);
      return true;
    case ExprKind::Var:
      return resolve(cast<VarExpr>(E)->name(), E->loc(), B);
    case ExprKind::Prim: {
      const auto *Prim = cast<PrimExpr>(E);
      uint32_t Index = primRefIndex(Prim->op(), E->id());
      emit(B, {Opcode::PushPrim, static_cast<int32_t>(Index), 0, 0}, +1);
      return true;
    }
    case ExprKind::App:
      return compileCallSpine(cast<AppExpr>(E), B, Tail);
    case ExprKind::Lambda: {
      std::optional<unsigned> ProtoIdx = compileLambdaChain(E, "<lambda>");
      if (!ProtoIdx)
        return false;
      emit(B, {Opcode::MakeClosure, static_cast<int32_t>(*ProtoIdx), 0, 0},
           +1);
      return true;
    }
    case ExprKind::If: {
      const auto *If = cast<IfExpr>(E);
      if (!compileExpr(If->cond(), B, /*Tail=*/false))
        return false;
      size_t JumpToElse = B.Code.size();
      emit(B, {Opcode::JumpIfFalse, 0, 0, 0}, -1);
      // Both branches net one value from here; in tail position their
      // internal depths may differ (cleanup is skipped), which is fine
      // because only Return follows the join.
      int DepthAtBranch = Depth;
      if (!compileExpr(If->thenExpr(), B, Tail))
        return false;
      size_t JumpToEnd = B.Code.size();
      emit(B, {Opcode::Jump, 0, 0, 0}, 0);
      bindJump(B, JumpToElse);
      Depth = DepthAtBranch;
      if (!compileExpr(If->elseExpr(), B, Tail))
        return false;
      bindJump(B, JumpToEnd);
      return true;
    }
    case ExprKind::Let: {
      const auto *Let = cast<LetExpr>(E);
      if (!compileExpr(Let->value(), B, /*Tail=*/false))
        return false;
      if (!Escapes.frameEscapes(E)) {
        // Flattened: the value stays put as a stack slot.
        Scopes.push_back({Scope::Stack,
                          {Let->name()},
                          {static_cast<uint32_t>(Depth - 1)},
                          CurProto});
        bool Ok = compileExpr(Let->body(), B, Tail);
        Scopes.pop_back();
        if (!Ok)
          return false;
        if (!Tail)
          emit(B, {Opcode::Slide, 1, 0, 0}, -1);
        return true;
      }
      emit(B, {Opcode::EnterScope, 1, 0, 0}, 0);
      emit(B, {Opcode::StoreSlot, 0, 0, 0}, -1);
      Scopes.push_back({Scope::Frame, {Let->name()}, {}, CurProto});
      bool Ok = compileExpr(Let->body(), B, Tail);
      Scopes.pop_back();
      if (!Ok)
        return false;
      if (!Tail)
        emit(B, {Opcode::LeaveScope, 0, 0, 0}, 0);
      return true;
    }
    case ExprKind::Letrec: {
      // Letrec frames are always heap frames: the bindings' closures
      // capture the frame to reach their siblings and themselves.
      const auto *Letrec = cast<LetrecExpr>(E);
      auto Bindings = Letrec->bindings();
      emit(B, {Opcode::EnterScope,
               static_cast<int32_t>(Bindings.size()), 1, 0}, 0);
      Scope S{Scope::Frame, {}, {}, CurProto};
      for (const LetrecBinding &Binding : Bindings)
        S.Names.push_back(Binding.Name);
      Scopes.push_back(std::move(S));
      bool Ok = true;
      for (size_t I = 0; Ok && I != Bindings.size(); ++I) {
        // Name function bindings' protos after the binding.
        if (isa<LambdaExpr>(Bindings[I].Value)) {
          std::optional<unsigned> ProtoIdx = compileLambdaChain(
              Bindings[I].Value, std::string(Ast.spelling(Bindings[I].Name)));
          if (!ProtoIdx) {
            Ok = false;
            break;
          }
          emit(B, {Opcode::MakeClosure,
                   static_cast<int32_t>(*ProtoIdx), 0, 0}, +1);
        } else {
          Ok = compileExpr(Bindings[I].Value, B, /*Tail=*/false);
        }
        emit(B, {Opcode::StoreSlot, static_cast<int32_t>(I), 0, 0}, -1);
      }
      Ok = Ok && compileExpr(Letrec->body(), B, Tail);
      Scopes.pop_back();
      if (!Ok)
        return false;
      if (!Tail)
        emit(B, {Opcode::LeaveScope, 0, 0, 0}, 0);
      return true;
    }
    }
    assert(false && "unhandled expression kind");
    return false;
  }

  bool compileCallSpine(const AppExpr *Call, CodeBuf &B, bool Tail) {
    std::vector<const Expr *> Args;
    const Expr *Callee = uncurryCall(Call, Args);

    // Saturated direct primitive: one instruction, no closure.
    if (const auto *Prim = dyn_cast<PrimExpr>(Callee)) {
      if (Args.size() == primOpArity(Prim->op())) {
        for (const Expr *Arg : Args)
          if (!compileExpr(Arg, B, /*Tail=*/false))
            return false;
        emitPrim(B, Prim->op(), Call->id());
        return true;
      }
    }

    if (!compileExpr(Callee, B, /*Tail=*/false))
      return false;

    const std::vector<const ArgArenaDirective *> *Directives = nullptr;
    if (Plan) {
      auto It = Plan->ByCall.find(Call->id());
      if (It != Plan->ByCall.end())
        Directives = &It->second;
    }

    uint32_t NumPending = 0;
    for (size_t I = 0; I != Args.size(); ++I) {
      const ArgArenaDirective *D = nullptr;
      if (Directives)
        for (const ArgArenaDirective *Cand : *Directives)
          if (Cand->ArgIndex == I) {
            D = Cand;
            break;
          }
      if (D) {
        emit(B, {Opcode::BeginArena,
                 static_cast<int32_t>(directiveIndex(D)), 0, 0}, 0);
      }
      if (!compileExpr(Args[I], B, /*Tail=*/false))
        return false;
      if (D) {
        emit(B, {Opcode::StashArena, 0, 0, 0}, 0);
        ++NumPending;
      }
    }
    emit(B, {Tail ? Opcode::TailCall : Opcode::Call,
             static_cast<int32_t>(Args.size()), NumPending, 0},
         -static_cast<int>(Args.size()));
    return true;
  }

  std::optional<unsigned> compileLambdaChain(const Expr *E,
                                             std::string Name) {
    std::vector<Symbol> Params;
    const Expr *Body = E;
    while (const auto *Lambda = dyn_cast<LambdaExpr>(Body)) {
      Params.push_back(Lambda->param());
      Body = Lambda->body();
    }
    unsigned ProtoIdx = static_cast<unsigned>(Out.Protos.size());
    bool Flat = !Escapes.frameEscapes(E);
    Out.Protos.emplace_back();
    Out.Protos[ProtoIdx].Arity = static_cast<unsigned>(Params.size());
    Out.Protos[ProtoIdx].Name = std::move(Name);
    Out.Protos[ProtoIdx].FlatFrame = Flat;

    unsigned SavedProto = CurProto;
    int SavedDepth = Depth;
    CurProto = ProtoIdx;
    Scope S{Flat ? Scope::Stack : Scope::Frame, {}, {}, ProtoIdx};
    S.Names = std::move(Params);
    if (Flat) {
      // Parameters occupy the first frame-base slots.
      Depth = static_cast<int>(S.Names.size());
      for (uint32_t I = 0; I != S.Names.size(); ++I)
        S.Slots.push_back(I);
    } else {
      Depth = 0;
    }
    Scopes.push_back(std::move(S));
    CodeBuf B;
    bool Ok = compileExpr(Body, B, /*Tail=*/true);
    if (Ok)
      emit(B, {Opcode::Return, 0, 0, 0}, -1);
    Scopes.pop_back();
    CurProto = SavedProto;
    Depth = SavedDepth;
    if (!Ok)
      return std::nullopt;
    Out.Protos[ProtoIdx].Code = std::move(B.Code);
    return ProtoIdx;
  }

  size_t directiveIndex(const ArgArenaDirective *D) {
    auto It = DirectiveIndices.find(D);
    if (It != DirectiveIndices.end())
      return It->second;
    size_t Index = Out.Directives.size();
    Out.Directives.push_back(D);
    DirectiveIndices.emplace(D, Index);
    return Index;
  }

  const AstContext &Ast;
  const AllocationPlan *Plan;
  DiagnosticEngine &Diags;
  /// Guarded branch expr id -> guard index (null: no speculation).
  const std::unordered_map<uint32_t, uint32_t> *SpecGuards;
  Chunk Out;
  FrameEscapeInfo Escapes;
  std::vector<Scope> Scopes;
  /// Proto currently being compiled; guards Stack-slot locality.
  unsigned CurProto = 0;
  /// Compile-time operand-stack depth of the current proto, relative to
  /// its frame base. Assigns flattened bindings their slots.
  int Depth = 0;
  std::unordered_map<const ArgArenaDirective *, size_t> DirectiveIndices;
  std::unordered_map<uint64_t, uint32_t> PrimRefIndices;
};

} // namespace

std::optional<Chunk> eal::compileToBytecode(
    const AstContext &Ast, const Expr *Root, const AllocationPlan *Plan,
    DiagnosticEngine &Diags,
    const std::unordered_map<uint32_t, uint32_t> *SpecGuards) {
  CompilerImpl Impl(Ast, Plan, Diags, SpecGuards);
  return Impl.run(Root);
}

//===- Compiler.h - AST to bytecode -----------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles nml ASTs to the VM bytecode of Bytecode.h. Lambda chains
/// become n-ary protos; variables resolve to (depth, slot) lexical
/// addresses; saturated primitive applications compile to single Prim
/// instructions carrying their allocation-site ids; calls with arena
/// directives bracket the relevant argument's code with
/// BeginArena/StashArena.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_VM_COMPILER_H
#define EAL_VM_COMPILER_H

#include "vm/Bytecode.h"

#include <optional>
#include <unordered_map>

namespace eal {

class DiagnosticEngine;

/// Compiles \p Root into a chunk. \p Plan may be null (no arena
/// bracketing). \p SpecGuards maps a guarded branch expression's node id
/// to its guard index (docs/SPECULATION.md): a guard.spec instruction is
/// materialized at the top of that branch's code and recorded in the
/// owning Proto's SpecGuards. Null (the default) compiles no guards.
/// Returns nullopt after a diagnostic on unbound variables.
std::optional<Chunk>
compileToBytecode(const AstContext &Ast, const Expr *Root,
                  const AllocationPlan *Plan, DiagnosticEngine &Diags,
                  const std::unordered_map<uint32_t, uint32_t> *SpecGuards =
                      nullptr);

} // namespace eal

#endif // EAL_VM_COMPILER_H

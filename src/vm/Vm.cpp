//===- Vm.cpp -------------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop is direct-threaded when the toolchain supports
// computed goto (GCC/Clang label addresses) and EAL_COMPUTED_GOTO is on;
// otherwise it falls back to a portable switch. Both variants share the
// same handler bodies through the VM_OP/VM_NEXT macros, so there is one
// semantics and two dispatch mechanisms.
//
// Calls have a fast path for the common shape (user closure, no partial
// application, exact arity): flat-frame protos bind their parameters in
// place on the operand stack — the callee slot is squeezed out and no
// EnvFrame is allocated — and TailCall additionally reuses the caller's
// CallFrame, transferring its arenas so frees happen at exactly the
// execution point the unfused Call+Return would have freed them.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "obs/Recorder.h"
#include "prof/Profiler.h"
#include "runtime/SpecHooks.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace eal;

#if defined(EAL_COMPUTED_GOTO) && (defined(__GNUC__) || defined(__clang__))
#define EAL_VM_THREADED 1
#else
#define EAL_VM_THREADED 0
#endif

Vm::Vm(const Chunk &C, DiagnosticEngine &Diags) : Vm(C, Diags, Options()) {}

Vm::Vm(const Chunk &C, DiagnosticEngine &Diags, Options Opts)
    : C(C), Diags(Diags), Opts(Opts),
      TheHeap(Stats, Heap::Options{Opts.HeapCapacity, Opts.AllowHeapGrowth,
                                   0.2}) {
  TheHeap.setRootScanner([this](Marker &M) {
    ++MarkEpoch;
    for (RtValue V : Stack)
      M.value(V);
    auto MarkFrameChain = [&](EnvFrame *F) {
      for (; F && F->MarkEpoch != MarkEpoch; F = F->Parent.get()) {
        F->MarkEpoch = MarkEpoch;
        for (auto &Slot : F->Slots)
          M.value(Slot.second);
      }
    };
    for (CallFrame &Frame : Frames) {
      MarkFrameChain(Frame.Env.get());
      for (RtValue V : Frame.Pending)
        M.value(V);
    }
  });
  TheHeap.setClosureTracer([this](const RtClosure *Closure, Marker &M) {
    for (RtValue V : Closure->Partial)
      M.value(V);
    for (EnvFrame *F = Closure->Env.get();
         F && F->MarkEpoch != MarkEpoch; F = F->Parent.get()) {
      F->MarkEpoch = MarkEpoch;
      for (auto &Slot : F->Slots)
        M.value(Slot.second);
    }
  });
  Hooks.AllocateCell = [this](uint32_t Site) { return allocateCell(Site); };
  Hooks.Error = [this](const std::string &Message) { error(Message); };
  Hooks.Stats = &Stats;
  Prof = Opts.Profiler;
  Spec = Opts.Spec;
  TheHeap.setProfiler(Prof);
  if (Prof) {
    Prof->beginVm(C.Protos.size(), NumOpcodes);
    // DCONS through the shared evaluator (the slow path; the doPrim fast
    // path reports inline).
    Hooks.CellReused = [this](const ConsCell *Cell, uint32_t Site) {
      Prof->siteReuse(Site, baseSiteId(Cell->SiteId),
                      TheHeap.allocSeq() - Cell->AllocSeq);
    };
    Hooks.CellTouched = [this](ConsCell *Cell) {
      if (!Cell->Touched) {
        Cell->Touched = true;
        Prof->siteFirstTouch(baseSiteId(Cell->SiteId));
        if (obs::rec::cells()) [[unlikely]]
          obs::rec::emit(obs::rec::RecKind::CellTouch, Cell->AllocSeq,
                         Cell->SiteId);
      }
    };
  }
  // Intern one closure per primitive-as-value site up front; PushPrim
  // is then a plain push, never an allocation.
  InternedPrims.reserve(C.PrimRefs.size());
  for (const Chunk::PrimRef &Ref : C.PrimRefs) {
    RtClosure *Closure = newClosure();
    Closure->IsPrim = true;
    Closure->Op = Ref.Op;
    Closure->PrimNodeId = Ref.Site;
    InternedPrims.push_back(Closure);
  }
}

Vm::~Vm() {
  for (const EnvPtr &Frame : RecFrames)
    Frame->Slots.clear();
  for (const std::unique_ptr<RtClosure> &Closure : Closures)
    Closure->Env.reset();
}

bool Vm::error(const std::string &Message) {
  if (!Failed)
    Diags.error(SourceLoc::invalid(), "vm: " + Message);
  Failed = true;
  return false;
}

RtClosure *Vm::newClosure() {
  Closures.push_back(std::make_unique<RtClosure>());
  ++Stats.ClosuresCreated;
  return Closures.back().get();
}

ConsCell *Vm::allocateCell(uint32_t SiteId) {
  for (auto It = ArenaStack.rbegin(); It != ArenaStack.rend(); ++It) {
    if (!It->Enabled) [[unlikely]]
      continue; // deopted speculative directive: heap like conservative
    auto SiteIt = It->Directive->Sites.find(SiteId);
    if (SiteIt == It->Directive->Sites.end())
      continue;
    CellClass Class = SiteIt->second == ArenaSiteClass::Stack
                          ? CellClass::Stack
                          : CellClass::Region;
    return TheHeap.allocateInArena(It->Handle, Class, SiteId,
                                   It->Directive->SpecIndex >= 0);
  }
  return TheHeap.allocateHeap(SiteId);
}

bool Vm::freeArenas(std::vector<size_t> &Arenas, const RtValue *Result) {
  if (Arenas.empty())
    return true;
  if (Result)
    Stack.push_back(*Result); // root during validation
  bool Ok = true;
  for (size_t Handle : Arenas) {
    // The spec runtime sees every close first: injected guard failures
    // fire here, migrating the speculative cells out before the
    // (then-empty) arena is spliced away.
    if (Spec) [[unlikely]]
      Spec->arenaClosing(static_cast<uint32_t>(Handle));
    if (Opts.ValidateArenaFrees && TheHeap.arenaIsReachable(Handle)) {
      Ok = error("allocation plan error: arena cell still reachable when "
                 "its activation returned");
      break;
    }
    TheHeap.freeArena(Handle);
  }
  if (Result)
    Stack.pop_back();
  Arenas.clear();
  return Ok;
}

void Vm::takePendingArenas(uint32_t N, std::vector<size_t> &Arenas) {
  if (!N)
    return;
  Arenas.assign(PendingArenas.end() - N, PendingArenas.end());
  PendingArenas.resize(PendingArenas.size() - N);
}

bool Vm::applyValue(RtValue Callee, std::vector<RtValue> Args,
                    std::vector<size_t> Arenas) {
  // Root the in-flight values while primitive steps may allocate.
  for (;;) {
    if (!Callee.isClosure()) {
      freeArenas(Arenas, nullptr);
      return error("applied a non-function value");
    }
    RtClosure *Closure = Callee.closure();
    ++Stats.Applications;

    if (Closure->IsPrim) {
      unsigned Arity = primOpArity(Closure->Op);
      size_t Have = Closure->Partial.size();
      if (Have + Args.size() < Arity) {
        RtClosure *Next = newClosure();
        Next->IsPrim = true;
        Next->Op = Closure->Op;
        Next->PrimNodeId = Closure->PrimNodeId;
        Next->Partial = Closure->Partial;
        Next->Partial.insert(Next->Partial.end(), Args.begin(), Args.end());
        Stack.push_back(RtValue::makeClosure(Next));
        // A partial application cannot own arenas safely; keep them to
        // the end of the run (planner only marks saturated calls).
        OrphanArenas.insert(OrphanArenas.end(), Arenas.begin(),
                            Arenas.end());
        return true;
      }
      size_t Need = Arity - Have;
      std::vector<RtValue> Full = Closure->Partial;
      Full.insert(Full.end(), Args.begin(), Args.begin() + Need);
      // Root the leftovers across the (possibly allocating) primitive.
      size_t Mark = Stack.size();
      for (size_t I = Need; I != Args.size(); ++I)
        Stack.push_back(Args[I]);
      for (RtValue V : Full)
        Stack.push_back(V);
      std::optional<RtValue> R =
          evalSaturatedPrim(Closure->Op, Closure->PrimNodeId, Full, Hooks);
      Stack.resize(Mark);
      if (!R) {
        freeArenas(Arenas, nullptr);
        return false;
      }
      Args.erase(Args.begin(), Args.begin() + Need);
      if (Args.empty()) {
        if (!freeArenas(Arenas, &*R))
          return false;
        Stack.push_back(*R);
        return true;
      }
      Callee = *R;
      continue;
    }

    // User closure.
    assert(Closure->ProtoIdx >= 0 && "interpreter closure inside the VM");
    const Proto &P = C.Protos[Closure->ProtoIdx];
    size_t Have = Closure->Partial.size();
    if (Have + Args.size() < P.Arity) {
      RtClosure *Next = newClosure();
      Next->ProtoIdx = Closure->ProtoIdx;
      Next->Env = Closure->Env;
      Next->Partial = Closure->Partial;
      Next->Partial.insert(Next->Partial.end(), Args.begin(), Args.end());
      Stack.push_back(RtValue::makeClosure(Next));
      OrphanArenas.insert(OrphanArenas.end(), Arenas.begin(), Arenas.end());
      return true;
    }

    size_t Need = P.Arity - Have;
    CallFrame CF;
    CF.P = &P;
    CF.Ip = 0;
    CF.Arenas = std::move(Arenas);
    CF.Pending.assign(Args.begin() + Need, Args.end());
    if (P.FlatFrame) {
      // Parameters live on the operand stack from the frame base.
      CF.StackBase = Stack.size();
      for (RtValue V : Closure->Partial)
        Stack.push_back(V);
      for (size_t I = 0; I != Need; ++I)
        Stack.push_back(Args[I]);
      CF.Env = Closure->Env;
    } else {
      EnvPtr Frame = std::make_shared<EnvFrame>();
      Frame->Parent = Closure->Env;
      Frame->Slots.reserve(P.Arity);
      for (RtValue V : Closure->Partial)
        Frame->Slots.emplace_back(Symbol::invalid(), V);
      for (size_t I = 0; I != Need; ++I)
        Frame->Slots.emplace_back(Symbol::invalid(), Args[I]);
      CF.Env = std::move(Frame);
      CF.StackBase = Stack.size();
    }
    Frames.push_back(std::move(CF));
    if (Frames.size() > Stats.PeakCallFrames)
      Stats.PeakCallFrames = Frames.size();
    if (Prof) [[unlikely]]
      Prof->framePushed(static_cast<uint32_t>(Closure->ProtoIdx));
    return true;
  }
}

bool Vm::doPrim(PrimOp Op, uint32_t Site) {
  // Fast paths for the common shapes, operating on the stack in place.
  // Anything unusual (runtime type errors, division by zero) falls
  // through to the shared evaluator so diagnostics match the
  // interpreter's exactly.
  size_t Size = Stack.size();
  switch (Op) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul: {
    RtValue &A = Stack[Size - 2], &B = Stack[Size - 1];
    if (A.isInt() && B.isInt()) {
      int64_t X = A.intValue(), Y = B.intValue();
      A = RtValue::makeInt(Op == PrimOp::Add   ? X + Y
                           : Op == PrimOp::Sub ? X - Y
                                               : X * Y);
      Stack.pop_back();
      return true;
    }
    break;
  }
  case PrimOp::Eq:
  case PrimOp::Ne:
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge: {
    RtValue &A = Stack[Size - 2], &B = Stack[Size - 1];
    if (A.isInt() && B.isInt()) {
      int64_t X = A.intValue(), Y = B.intValue();
      bool R = false;
      switch (Op) {
      case PrimOp::Eq: R = X == Y; break;
      case PrimOp::Ne: R = X != Y; break;
      case PrimOp::Lt: R = X < Y; break;
      case PrimOp::Le: R = X <= Y; break;
      case PrimOp::Gt: R = X > Y; break;
      default: R = X >= Y; break;
      }
      A = RtValue::makeBool(R);
      Stack.pop_back();
      return true;
    }
    break;
  }
  case PrimOp::Null: {
    RtValue &A = Stack[Size - 1];
    if (A.isNil()) {
      A = RtValue::makeBool(true);
      return true;
    }
    if (A.isCons()) {
      A = RtValue::makeBool(false);
      return true;
    }
    break;
  }
  case PrimOp::Car:
  case PrimOp::Cdr: {
    RtValue &A = Stack[Size - 1];
    if (A.isCons()) {
      ConsCell *Cell = A.cell();
      // Touched first: after a cell's first touch this is one flag test.
      if (!Cell->Touched && (Prof || obs::rec::cells())) [[unlikely]] {
        Cell->Touched = true;
        if (Prof)
          Prof->siteFirstTouch(baseSiteId(Cell->SiteId));
        if (obs::rec::cells())
          obs::rec::emit(obs::rec::RecKind::CellTouch, Cell->AllocSeq,
                         Cell->SiteId);
      }
      A = Op == PrimOp::Car ? Cell->Car : Cell->Cdr;
      return true;
    }
    break;
  }
  case PrimOp::Fst:
  case PrimOp::Snd: {
    RtValue &A = Stack[Size - 1];
    if (A.isPair()) {
      ConsCell *Cell = A.cell();
      if (!Cell->Touched && (Prof || obs::rec::cells())) [[unlikely]] {
        Cell->Touched = true;
        if (Prof)
          Prof->siteFirstTouch(baseSiteId(Cell->SiteId));
        if (obs::rec::cells())
          obs::rec::emit(obs::rec::RecKind::CellTouch, Cell->AllocSeq,
                         Cell->SiteId);
      }
      A = Op == PrimOp::Fst ? Cell->Car : Cell->Cdr;
      return true;
    }
    break;
  }
  case PrimOp::Cons:
  case PrimOp::MkPair: {
    // The arguments stay rooted on the stack across a possible GC.
    ConsCell *Cell = allocateCell(Site);
    if (!Cell)
      return error("out of heap cells");
    Cell->Car = Stack[Size - 2];
    Cell->Cdr = Stack[Size - 1];
    Stack[Size - 2] = Op == PrimOp::Cons ? RtValue::makeCons(Cell)
                                         : RtValue::makePair(Cell);
    Stack.pop_back();
    return true;
  }
  case PrimOp::DCons: {
    RtValue &P = Stack[Size - 3];
    if (P.isCons()) {
      ConsCell *Cell = P.cell();
      if (Prof) [[unlikely]]
        Prof->siteReuse(Site, baseSiteId(Cell->SiteId),
                        TheHeap.allocSeq() - Cell->AllocSeq);
      if (obs::rec::cells()) [[unlikely]] // before the re-tag: C = old site
        obs::rec::emit(obs::rec::RecKind::CellDcons, Cell->AllocSeq, Site,
                       Cell->SiteId);
      // Re-tag unconditionally (mirrors the shared evaluator): touch
      // attribution follows the dcons site from here on, while AllocSeq
      // keeps identifying the original allocation.
      Cell->SiteId = Site;
      Cell->Touched = false;
      Cell->Car = Stack[Size - 2];
      Cell->Cdr = Stack[Size - 1];
      P = RtValue::makeCons(Cell);
      ++Stats.DconsReuses;
      Stack.resize(Size - 2);
      return true;
    }
    break;
  }
  default:
    break;
  }

  unsigned Arity = primOpArity(Op);
  assert(Size >= Arity && "prim stack underflow");
  std::span<const RtValue> Args(Stack.data() + Size - Arity, Arity);
  std::optional<RtValue> R = evalSaturatedPrim(Op, Site, Args, Hooks);
  if (!R)
    return false;
  Stack.resize(Size - Arity);
  Stack.push_back(*R);
  return true;
}

bool Vm::doCall(size_t N, uint32_t NumPending) {
  assert(Stack.size() >= Frames.back().StackBase + N + 1 &&
         "stack underflow");
  RtValue Callee = Stack[Stack.size() - N - 1];
  std::vector<size_t> Arenas;
  takePendingArenas(NumPending, Arenas);

  if (Callee.isClosure()) {
    RtClosure *Closure = Callee.closure();
    if (!Closure->IsPrim && Closure->Partial.empty()) {
      assert(Closure->ProtoIdx >= 0 && "interpreter closure inside the VM");
      const Proto &P = C.Protos[Closure->ProtoIdx];
      if (P.Arity == N) {
        ++Stats.Applications;
        CallFrame CF;
        CF.P = &P;
        CF.Ip = 0;
        CF.Arenas = std::move(Arenas);
        if (P.FlatFrame) {
          // Squeeze the callee out from under its arguments: the args
          // become the new frame's base slots in place.
          std::move(Stack.end() - N, Stack.end(), Stack.end() - N - 1);
          Stack.pop_back();
          CF.StackBase = Stack.size() - N;
          CF.Env = Closure->Env;
        } else {
          EnvPtr Frame = std::make_shared<EnvFrame>();
          Frame->Parent = Closure->Env;
          Frame->Slots.reserve(N);
          for (size_t I = Stack.size() - N; I != Stack.size(); ++I)
            Frame->Slots.emplace_back(Symbol::invalid(), Stack[I]);
          Stack.resize(Stack.size() - N - 1);
          CF.Env = std::move(Frame);
          CF.StackBase = Stack.size();
        }
        Frames.push_back(std::move(CF));
        if (Frames.size() > Stats.PeakCallFrames)
          Stats.PeakCallFrames = Frames.size();
        if (Prof) [[unlikely]]
          Prof->framePushed(static_cast<uint32_t>(Closure->ProtoIdx));
        return true;
      }
    }
  }

  std::vector<RtValue> Args(Stack.end() - N, Stack.end());
  Stack.resize(Stack.size() - N - 1);
  return applyValue(Callee, std::move(Args), std::move(Arenas));
}

bool Vm::doTailCall(size_t N, uint32_t NumPending) {
  CallFrame &Frame = Frames.back();
  // An over-application continuation is pinned to this frame; the code
  // after the TailCall (cleanup + Return) is exactly the unfused
  // sequence, so behave like a plain call.
  if (!Frame.Pending.empty())
    return doCall(N, NumPending);

  assert(Stack.size() >= Frame.StackBase + N + 1 && "stack underflow");
  std::vector<size_t> Arenas;
  takePendingArenas(NumPending, Arenas);
  // The replaced frame's arenas transfer to the callee: they are freed
  // when it returns — the same execution point at which the unfused
  // Call+Return pair would have freed them.
  Arenas.insert(Arenas.end(), Frame.Arenas.begin(), Frame.Arenas.end());
  Frame.Arenas.clear();

  RtValue Callee = Stack[Stack.size() - N - 1];
  size_t Base = Frame.StackBase;

  if (Callee.isClosure()) {
    RtClosure *Closure = Callee.closure();
    if (!Closure->IsPrim && Closure->Partial.empty()) {
      assert(Closure->ProtoIdx >= 0 && "interpreter closure inside the VM");
      const Proto &P = C.Protos[Closure->ProtoIdx];
      if (P.Arity == N) {
        // Reuse the frame in place: deep tail recursion runs in O(1)
        // call frames.
        ++Stats.Applications;
        if (P.FlatFrame) {
          std::move(Stack.end() - N, Stack.end(), Stack.begin() + Base);
          Stack.resize(Base + N);
          Frame.Env = Closure->Env;
        } else {
          EnvPtr NewEnv = std::make_shared<EnvFrame>();
          NewEnv->Parent = Closure->Env;
          NewEnv->Slots.reserve(N);
          for (size_t I = Stack.size() - N; I != Stack.size(); ++I)
            NewEnv->Slots.emplace_back(Symbol::invalid(), Stack[I]);
          Stack.resize(Base);
          Frame.Env = std::move(NewEnv);
        }
        Frame.P = &P;
        Frame.Ip = 0;
        Frame.Arenas = std::move(Arenas);
        if (Prof) [[unlikely]]
          Prof->frameReplaced(static_cast<uint32_t>(Closure->ProtoIdx));
        return true;
      }
    }
  }

  std::vector<RtValue> Args(Stack.end() - N, Stack.end());
  Frames.pop_back();
  Stack.resize(Base);
  if (Prof) [[unlikely]]
    Prof->framePopped();
  return applyValue(Callee, std::move(Args), std::move(Arenas));
}

bool Vm::doReturn() {
  assert(!Stack.empty() && "return without a value");
  RtValue Result = Stack.back();
  CallFrame Finished = std::move(Frames.back());
  Frames.pop_back();
  if (Prof) [[unlikely]]
    Prof->framePopped();
  Stack.resize(Finished.StackBase);
  if (!freeArenas(Finished.Arenas, &Result))
    return false;
  if (!Finished.Pending.empty())
    return applyValue(Result, std::move(Finished.Pending), {});
  Stack.push_back(Result);
  return true;
}

std::optional<RtValue> Vm::run() {
  obs::Span S("vm.run", "runtime");
  Failed = false;

  // Enter the entry proto.
  {
    CallFrame CF;
    CF.P = &C.Protos[C.Entry];
    CF.Env = std::make_shared<EnvFrame>();
    CF.StackBase = 0;
    Frames.push_back(std::move(CF));
    Stats.PeakCallFrames = std::max<uint64_t>(Stats.PeakCallFrames, 1);
    if (Prof)
      Prof->framePushed(C.Entry);
  }
  Frames.reserve(64);
  Stack.reserve(256);

  uint64_t Steps = 0;
  CallFrame *F = nullptr;
  const Instr *CodeBase = nullptr; // current proto's code
  const Instr *IP = nullptr;       // next instruction
  const Instr *In = nullptr;
  // Profiling state, hoisted so the per-instruction hook is one
  // predictable branch when profiling is off.
  const bool ProfOn = Prof != nullptr;
  const Proto *ProtoBase = C.Protos.data();

  // One handler body per opcode, two dispatch mechanisms. The hot state
  // (frame pointer, instruction pointer) lives in locals: handlers that
  // cannot touch the frame stack re-dispatch with VM_NEXT_FAST, while
  // Call/TailCall/Return write the suspended ip back (VM_SAVE) and
  // reload everything (VM_NEXT) because the frame vector may have
  // grown, shrunk, or reallocated.
#define VM_RELOAD()                                                          \
  do {                                                                       \
    F = &Frames.back();                                                      \
    CodeBase = F->P->Code.data();                                            \
    IP = CodeBase + F->Ip;                                                   \
  } while (0)
#define VM_SAVE() (F->Ip = static_cast<size_t>(IP - CodeBase))

#if EAL_VM_THREADED
  static const void *Targets[NumOpcodes] = {
      &&op_PushInt,     &&op_PushBool,    &&op_PushNil,
      &&op_PushPrim,    &&op_LoadSlot,    &&op_MakeClosure,
      &&op_Call,        &&op_Return,      &&op_Jump,
      &&op_JumpIfFalse, &&op_Prim,        &&op_EnterScope,
      &&op_StoreSlot,   &&op_LeaveScope,  &&op_BeginArena,
      &&op_StashArena,  &&op_LoadLocal,   &&op_Slide,
      &&op_TailCall,    &&op_PushIntPrim, &&op_LocalPrim,
      &&op_LocalLocalPrim, &&op_GuardSpec};
#define VM_OP(name) op_##name:
#define VM_NEXT_FAST()                                                       \
  do {                                                                       \
    if (++Steps > Opts.MaxSteps) {                                           \
      error("execution exceeded the step budget");                           \
      goto run_done;                                                         \
    }                                                                        \
    In = IP++;                                                               \
    if (ProfOn) [[unlikely]]                                                 \
      Prof->countVmStep(static_cast<uint8_t>(In->Op),                        \
                        static_cast<uint32_t>(F->P - ProtoBase));            \
    goto *Targets[static_cast<uint8_t>(In->Op)];                             \
  } while (0)
#define VM_NEXT()                                                            \
  do {                                                                       \
    if (Frames.empty())                                                      \
      goto run_done;                                                         \
    VM_RELOAD();                                                             \
    VM_NEXT_FAST();                                                          \
  } while (0)
#define VM_FAIL() goto run_done

  VM_NEXT();
#else
#define VM_OP(name) case Opcode::name:
#define VM_NEXT_FAST() continue
// Not do{}while(0): `continue` must re-enter the dispatch loop, and
// inside a do-while it would bind to that statement instead, falling
// through into the next case label.
#define VM_NEXT()                                                            \
  {                                                                          \
    if (Frames.empty())                                                      \
      goto run_done;                                                         \
    VM_RELOAD();                                                             \
    continue;                                                                \
  }
#define VM_FAIL() goto run_done

  VM_RELOAD();
  for (;;) {
    if (++Steps > Opts.MaxSteps) {
      error("execution exceeded the step budget");
      break;
    }
    In = IP++;
    if (ProfOn) [[unlikely]]
      Prof->countVmStep(static_cast<uint8_t>(In->Op),
                        static_cast<uint32_t>(F->P - ProtoBase));
    switch (In->Op) {
#endif

  VM_OP(PushInt) {
    Stack.push_back(RtValue::makeInt(In->Imm));
    VM_NEXT_FAST();
  }
  VM_OP(PushBool) {
    Stack.push_back(RtValue::makeBool(In->A != 0));
    VM_NEXT_FAST();
  }
  VM_OP(PushNil) {
    Stack.push_back(RtValue::makeNil());
    VM_NEXT_FAST();
  }
  VM_OP(PushPrim) {
    Stack.push_back(
        RtValue::makeClosure(InternedPrims[static_cast<size_t>(In->A)]));
    VM_NEXT_FAST();
  }
  VM_OP(LoadSlot) {
    EnvFrame *Env = F->Env.get();
    for (int32_t D = 0; D != In->A; ++D)
      Env = Env->Parent.get();
    assert(Env && In->B < Env->Slots.size() && "bad lexical address");
    Stack.push_back(Env->Slots[In->B].second);
    VM_NEXT_FAST();
  }
  VM_OP(LoadLocal) {
    assert(F->StackBase + static_cast<size_t>(In->A) < Stack.size() &&
           "bad local slot");
    Stack.push_back(Stack[F->StackBase + static_cast<size_t>(In->A)]);
    VM_NEXT_FAST();
  }
  VM_OP(MakeClosure) {
    RtClosure *Closure = newClosure();
    Closure->ProtoIdx = In->A;
    Closure->Env = F->Env;
    Stack.push_back(RtValue::makeClosure(Closure));
    VM_NEXT_FAST();
  }
  VM_OP(Call) {
    VM_SAVE(); // the callee's Return resumes the caller here
    if (!doCall(static_cast<size_t>(In->A), In->B))
      VM_FAIL();
    VM_NEXT();
  }
  VM_OP(TailCall) {
    VM_SAVE(); // doTailCall falls back to a plain call when pendings exist
    if (!doTailCall(static_cast<size_t>(In->A), In->B))
      VM_FAIL();
    VM_NEXT();
  }
  VM_OP(Return) {
    if (!doReturn())
      VM_FAIL();
    VM_NEXT();
  }
  VM_OP(Jump) {
    IP += In->A;
    VM_NEXT_FAST();
  }
  VM_OP(JumpIfFalse) {
    RtValue Cond = Stack.back();
    Stack.pop_back();
    if (!Cond.isBool()) {
      error("if condition is not a boolean");
      VM_FAIL();
    }
    if (!Cond.boolValue())
      IP += In->A;
    VM_NEXT_FAST();
  }
  VM_OP(Prim) {
    if (!doPrim(static_cast<PrimOp>(In->A), In->B))
      VM_FAIL();
    VM_NEXT_FAST();
  }
  VM_OP(PushIntPrim) {
    Stack.push_back(RtValue::makeInt(In->Imm));
    if (!doPrim(static_cast<PrimOp>(In->A), In->B))
      VM_FAIL();
    VM_NEXT_FAST();
  }
  VM_OP(LocalPrim) {
    assert(F->StackBase + static_cast<size_t>(In->A) < Stack.size() &&
           "bad local slot");
    Stack.push_back(Stack[F->StackBase + static_cast<size_t>(In->A)]);
    if (!doPrim(static_cast<PrimOp>(In->Imm), In->B))
      VM_FAIL();
    VM_NEXT_FAST();
  }
  VM_OP(LocalLocalPrim) {
    size_t Base = F->StackBase;
    assert(Base + static_cast<size_t>(In->A >> 16) < Stack.size() &&
           Base + static_cast<size_t>(In->A & 0xFFFF) < Stack.size() &&
           "bad local slot");
    Stack.push_back(Stack[Base + static_cast<size_t>(In->A >> 16)]);
    Stack.push_back(Stack[Base + static_cast<size_t>(In->A & 0xFFFF)]);
    if (!doPrim(static_cast<PrimOp>(In->Imm), In->B))
      VM_FAIL();
    VM_NEXT_FAST();
  }
  VM_OP(EnterScope) {
    EnvPtr Child = std::make_shared<EnvFrame>();
    Child->Parent = F->Env;
    Child->Slots.assign(static_cast<size_t>(In->A),
                        {Symbol::invalid(), RtValue::makeNil()});
    if (In->B)
      RecFrames.push_back(Child);
    F->Env = std::move(Child);
    VM_NEXT_FAST();
  }
  VM_OP(StoreSlot) {
    assert(!Stack.empty() && "store without a value");
    F->Env->Slots[static_cast<size_t>(In->A)].second = Stack.back();
    Stack.pop_back();
    VM_NEXT_FAST();
  }
  VM_OP(LeaveScope) {
    F->Env = F->Env->Parent;
    VM_NEXT_FAST();
  }
  VM_OP(Slide) {
    size_t NewTop = Stack.size() - 1 - static_cast<size_t>(In->A);
    Stack[NewTop] = Stack.back();
    Stack.resize(NewTop + 1);
    VM_NEXT_FAST();
  }
  VM_OP(BeginArena) {
    const ArgArenaDirective *D = C.Directives[static_cast<size_t>(In->A)];
    size_t Handle = TheHeap.createArena();
    bool Enabled = true;
    if (D->SpecIndex >= 0) [[unlikely]] {
      // A speculative directive is honored only while its guard holds;
      // after a deopt the arena still exists (uniform bookkeeping) but
      // stays empty, so allocation matches the conservative plan.
      Enabled = Spec && Spec->directiveArmed(D->SpecIndex);
      if (Enabled)
        Spec->arenaOpened(D->SpecIndex, static_cast<uint32_t>(Handle));
    }
    ArenaStack.push_back(ActiveArena{D, Handle, Enabled});
    VM_NEXT_FAST();
  }
  VM_OP(GuardSpec) {
    if (Spec) [[unlikely]]
      Spec->guardReached(static_cast<uint32_t>(In->A));
    VM_NEXT_FAST();
  }
  VM_OP(StashArena) {
    assert(!ArenaStack.empty() && "stash without an active arena");
    PendingArenas.push_back(ArenaStack.back().Handle);
    ArenaStack.pop_back();
    VM_NEXT_FAST();
  }

#if !EAL_VM_THREADED
    } // switch: every handler re-enters the loop via VM_NEXT
  }
#endif
#undef VM_OP
#undef VM_NEXT
#undef VM_NEXT_FAST
#undef VM_SAVE
#undef VM_RELOAD
#undef VM_FAIL

run_done:
  Stats.Steps = Steps;
  if (Prof)
    Prof->finish();
  for (size_t Handle : OrphanArenas) {
    if (Spec) [[unlikely]]
      Spec->arenaClosing(static_cast<uint32_t>(Handle));
    TheHeap.freeArena(Handle);
  }
  OrphanArenas.clear();
  if (S.active()) {
    S.arg("steps", Stats.Steps);
    S.arg("heap_cells", Stats.HeapCellsAllocated);
  }
  if (Failed || Stack.empty())
    return std::nullopt;
  RtValue Result = Stack.back();
  Stack.clear();
  Frames.clear();
  return Result;
}

//===- Vm.cpp -------------------------------------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "runtime/PrimOps.h"
#include "support/Diagnostics.h"
#include "support/Trace.h"

#include <cassert>

using namespace eal;

Vm::Vm(const Chunk &C, DiagnosticEngine &Diags) : Vm(C, Diags, Options()) {}

Vm::Vm(const Chunk &C, DiagnosticEngine &Diags, Options Opts)
    : C(C), Diags(Diags), Opts(Opts),
      TheHeap(Stats, Heap::Options{Opts.HeapCapacity, Opts.AllowHeapGrowth,
                                   0.2}) {
  TheHeap.setRootScanner([this](Marker &M) {
    ++MarkEpoch;
    for (RtValue V : Stack)
      M.value(V);
    auto MarkFrameChain = [&](EnvFrame *F) {
      for (; F && F->MarkEpoch != MarkEpoch; F = F->Parent.get()) {
        F->MarkEpoch = MarkEpoch;
        for (auto &Slot : F->Slots)
          M.value(Slot.second);
      }
    };
    for (CallFrame &Frame : Frames) {
      MarkFrameChain(Frame.Env.get());
      for (RtValue V : Frame.Pending)
        M.value(V);
    }
  });
  TheHeap.setClosureTracer([this](const RtClosure *Closure, Marker &M) {
    for (RtValue V : Closure->Partial)
      M.value(V);
    for (EnvFrame *F = Closure->Env.get();
         F && F->MarkEpoch != MarkEpoch; F = F->Parent.get()) {
      F->MarkEpoch = MarkEpoch;
      for (auto &Slot : F->Slots)
        M.value(Slot.second);
    }
  });
}

Vm::~Vm() {
  for (const EnvPtr &Frame : RecFrames)
    Frame->Slots.clear();
  for (const std::unique_ptr<RtClosure> &Closure : Closures)
    Closure->Env.reset();
}

bool Vm::error(const std::string &Message) {
  if (!Failed)
    Diags.error(SourceLoc::invalid(), "vm: " + Message);
  Failed = true;
  return false;
}

RtClosure *Vm::newClosure() {
  Closures.push_back(std::make_unique<RtClosure>());
  ++Stats.ClosuresCreated;
  return Closures.back().get();
}

ConsCell *Vm::allocateCell(uint32_t SiteId) {
  for (auto It = ArenaStack.rbegin(); It != ArenaStack.rend(); ++It) {
    auto SiteIt = It->Directive->Sites.find(SiteId);
    if (SiteIt == It->Directive->Sites.end())
      continue;
    CellClass Class = SiteIt->second == ArenaSiteClass::Stack
                          ? CellClass::Stack
                          : CellClass::Region;
    return TheHeap.allocateInArena(It->Handle, Class);
  }
  return TheHeap.allocateHeap();
}

bool Vm::freeArenas(std::vector<size_t> &Arenas, const RtValue *Result) {
  if (Arenas.empty())
    return true;
  if (Result)
    Stack.push_back(*Result); // root during validation
  bool Ok = true;
  for (size_t Handle : Arenas) {
    if (Opts.ValidateArenaFrees && TheHeap.arenaIsReachable(Handle)) {
      Ok = error("allocation plan error: arena cell still reachable when "
                 "its activation returned");
      break;
    }
    TheHeap.freeArena(Handle);
  }
  if (Result)
    Stack.pop_back();
  Arenas.clear();
  return Ok;
}

bool Vm::applyValue(RtValue Callee, std::vector<RtValue> Args,
                    std::vector<size_t> Arenas) {
  // Root the in-flight values while primitive steps may allocate.
  for (;;) {
    if (!Callee.isClosure()) {
      freeArenas(Arenas, nullptr);
      return error("applied a non-function value");
    }
    RtClosure *Closure = Callee.closure();
    ++Stats.Applications;

    if (Closure->IsPrim) {
      unsigned Arity = primOpArity(Closure->Op);
      size_t Have = Closure->Partial.size();
      if (Have + Args.size() < Arity) {
        RtClosure *Next = newClosure();
        Next->IsPrim = true;
        Next->Op = Closure->Op;
        Next->PrimNodeId = Closure->PrimNodeId;
        Next->Partial = Closure->Partial;
        Next->Partial.insert(Next->Partial.end(), Args.begin(), Args.end());
        Stack.push_back(RtValue::makeClosure(Next));
        // A partial application cannot own arenas safely; keep them to
        // the end of the run (planner only marks saturated calls).
        OrphanArenas.insert(OrphanArenas.end(), Arenas.begin(),
                            Arenas.end());
        return true;
      }
      size_t Need = Arity - Have;
      std::vector<RtValue> Full = Closure->Partial;
      Full.insert(Full.end(), Args.begin(), Args.begin() + Need);
      // Root the leftovers across the (possibly allocating) primitive.
      size_t Mark = Stack.size();
      for (size_t I = Need; I != Args.size(); ++I)
        Stack.push_back(Args[I]);
      for (RtValue V : Full)
        Stack.push_back(V);
      PrimOpsHooks Hooks;
      Hooks.AllocateCell = [this](uint32_t Site) {
        return allocateCell(Site);
      };
      Hooks.Error = [this](const std::string &Message) { error(Message); };
      Hooks.Stats = &Stats;
      std::optional<RtValue> R =
          evalSaturatedPrim(Closure->Op, Closure->PrimNodeId, Full, Hooks);
      Stack.resize(Mark);
      if (!R) {
        freeArenas(Arenas, nullptr);
        return false;
      }
      Args.erase(Args.begin(), Args.begin() + Need);
      if (Args.empty()) {
        if (!freeArenas(Arenas, &*R))
          return false;
        Stack.push_back(*R);
        return true;
      }
      Callee = *R;
      continue;
    }

    // User closure.
    assert(Closure->ProtoIdx >= 0 && "interpreter closure inside the VM");
    const Proto &P = C.Protos[Closure->ProtoIdx];
    size_t Have = Closure->Partial.size();
    if (Have + Args.size() < P.Arity) {
      RtClosure *Next = newClosure();
      Next->ProtoIdx = Closure->ProtoIdx;
      Next->Env = Closure->Env;
      Next->Partial = Closure->Partial;
      Next->Partial.insert(Next->Partial.end(), Args.begin(), Args.end());
      Stack.push_back(RtValue::makeClosure(Next));
      OrphanArenas.insert(OrphanArenas.end(), Arenas.begin(), Arenas.end());
      return true;
    }

    size_t Need = P.Arity - Have;
    EnvPtr Frame = std::make_shared<EnvFrame>();
    Frame->Parent = Closure->Env;
    Frame->Slots.reserve(P.Arity);
    for (RtValue V : Closure->Partial)
      Frame->Slots.emplace_back(Symbol::invalid(), V);
    for (size_t I = 0; I != Need; ++I)
      Frame->Slots.emplace_back(Symbol::invalid(), Args[I]);

    CallFrame CF;
    CF.P = &P;
    CF.Ip = 0;
    CF.Env = std::move(Frame);
    CF.StackBase = Stack.size();
    CF.Arenas = std::move(Arenas);
    CF.Pending.assign(Args.begin() + Need, Args.end());
    Frames.push_back(std::move(CF));
    return true;
  }
}

std::optional<RtValue> Vm::run() {
  obs::Span S("vm.run", "runtime");
  Failed = false;

  // Enter the entry proto.
  {
    CallFrame CF;
    CF.P = &C.Protos[C.Entry];
    CF.Env = std::make_shared<EnvFrame>();
    CF.StackBase = 0;
    Frames.push_back(std::move(CF));
  }

  uint64_t Steps = 0;
  while (!Frames.empty()) {
    CallFrame &Frame = Frames.back();
    if (++Steps > Opts.MaxSteps) {
      error("execution exceeded the step budget");
      break;
    }
    assert(Frame.Ip < Frame.P->Code.size() && "fell off proto code");
    const Instr &In = Frame.P->Code[Frame.Ip++];

    switch (In.Op) {
    case Opcode::PushInt:
      Stack.push_back(RtValue::makeInt(In.Imm));
      break;
    case Opcode::PushBool:
      Stack.push_back(RtValue::makeBool(In.A != 0));
      break;
    case Opcode::PushNil:
      Stack.push_back(RtValue::makeNil());
      break;
    case Opcode::PushPrim: {
      RtClosure *Closure = newClosure();
      Closure->IsPrim = true;
      Closure->Op = static_cast<PrimOp>(In.A);
      Closure->PrimNodeId = In.B;
      Stack.push_back(RtValue::makeClosure(Closure));
      break;
    }
    case Opcode::LoadSlot: {
      EnvFrame *F = Frame.Env.get();
      for (int32_t D = 0; D != In.A; ++D)
        F = F->Parent.get();
      assert(F && In.B < F->Slots.size() && "bad lexical address");
      Stack.push_back(F->Slots[In.B].second);
      break;
    }
    case Opcode::MakeClosure: {
      RtClosure *Closure = newClosure();
      Closure->ProtoIdx = In.A;
      Closure->Env = Frame.Env;
      Stack.push_back(RtValue::makeClosure(Closure));
      break;
    }
    case Opcode::Call: {
      size_t N = static_cast<size_t>(In.A);
      assert(Stack.size() >= Frame.StackBase + N + 1 && "stack underflow");
      std::vector<RtValue> Args(Stack.end() - N, Stack.end());
      RtValue Callee = Stack[Stack.size() - N - 1];
      Stack.resize(Stack.size() - N - 1);
      std::vector<size_t> Arenas;
      for (uint32_t I = 0; I != In.B; ++I) {
        Arenas.insert(Arenas.begin(), PendingArenas.back());
        PendingArenas.pop_back();
      }
      if (!applyValue(Callee, std::move(Args), std::move(Arenas)))
        goto done;
      break;
    }
    case Opcode::Return: {
      assert(!Stack.empty() && "return without a value");
      RtValue Result = Stack.back();
      CallFrame Finished = std::move(Frames.back());
      Frames.pop_back();
      Stack.resize(Finished.StackBase);
      if (!freeArenas(Finished.Arenas, &Result))
        goto done;
      if (!Finished.Pending.empty()) {
        if (!applyValue(Result, std::move(Finished.Pending), {}))
          goto done;
      } else {
        Stack.push_back(Result);
      }
      break;
    }
    case Opcode::Jump:
      Frame.Ip = static_cast<size_t>(
          static_cast<int64_t>(Frame.Ip) + In.A);
      break;
    case Opcode::JumpIfFalse: {
      RtValue Cond = Stack.back();
      Stack.pop_back();
      if (!Cond.isBool()) {
        error("if condition is not a boolean");
        goto done;
      }
      if (!Cond.boolValue())
        Frame.Ip = static_cast<size_t>(
            static_cast<int64_t>(Frame.Ip) + In.A);
      break;
    }
    case Opcode::Prim: {
      PrimOp Op = static_cast<PrimOp>(In.A);
      unsigned Arity = primOpArity(Op);
      assert(Stack.size() >= Arity && "prim stack underflow");
      PrimOpsHooks Hooks;
      Hooks.AllocateCell = [this](uint32_t Site) {
        return allocateCell(Site);
      };
      Hooks.Error = [this](const std::string &Message) { error(Message); };
      Hooks.Stats = &Stats;
      std::span<const RtValue> Args(Stack.data() + Stack.size() - Arity,
                                    Arity);
      std::optional<RtValue> R = evalSaturatedPrim(Op, In.B, Args, Hooks);
      if (!R)
        goto done;
      Stack.resize(Stack.size() - Arity);
      Stack.push_back(*R);
      break;
    }
    case Opcode::EnterScope: {
      EnvPtr Child = std::make_shared<EnvFrame>();
      Child->Parent = Frame.Env;
      Child->Slots.assign(static_cast<size_t>(In.A),
                          {Symbol::invalid(), RtValue::makeNil()});
      if (In.B)
        RecFrames.push_back(Child);
      Frame.Env = std::move(Child);
      break;
    }
    case Opcode::StoreSlot: {
      assert(!Stack.empty() && "store without a value");
      Frame.Env->Slots[static_cast<size_t>(In.A)].second = Stack.back();
      Stack.pop_back();
      break;
    }
    case Opcode::LeaveScope:
      Frame.Env = Frame.Env->Parent;
      break;
    case Opcode::BeginArena: {
      const ArgArenaDirective *D =
          C.Directives[static_cast<size_t>(In.A)];
      ArenaStack.push_back(ActiveArena{D, TheHeap.createArena()});
      break;
    }
    case Opcode::StashArena:
      assert(!ArenaStack.empty() && "stash without an active arena");
      PendingArenas.push_back(ArenaStack.back().Handle);
      ArenaStack.pop_back();
      break;
    }
    Stats.Steps = Steps;
  }

done:
  for (size_t Handle : OrphanArenas)
    TheHeap.freeArena(Handle);
  OrphanArenas.clear();
  if (S.active()) {
    S.arg("steps", Stats.Steps);
    S.arg("heap_cells", Stats.HeapCellsAllocated);
  }
  if (Failed || Stack.empty())
    return std::nullopt;
  RtValue Result = Stack.back();
  Stack.clear();
  Frames.clear();
  return Result;
}

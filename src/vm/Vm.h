//===- Vm.h - the bytecode virtual machine ----------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An iterative stack VM over the same managed heap as the interpreter:
/// explicit operand stack and call frames, so nml recursion depth is
/// bounded by memory rather than the C++ stack, and GC roots are exactly
/// the VM's own structures. Executes the same optimizations (arena
/// directives at calls, DCONS) with the same statistics.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_VM_VM_H
#define EAL_VM_VM_H

#include "runtime/Frame.h"
#include "runtime/Heap.h"
#include "runtime/PrimOps.h"
#include "runtime/RuntimeStats.h"
#include "vm/Bytecode.h"

#include <memory>
#include <optional>
#include <vector>

namespace eal {

class DiagnosticEngine;
class SpecHooks;

/// Executes one compiled chunk.
class Vm {
public:
  struct Options {
    size_t HeapCapacity = 1 << 14;
    bool AllowHeapGrowth = true;
    /// Instruction budget.
    uint64_t MaxSteps = 2'000'000'000;
    /// Verify at every arena free that no arena cell is still reachable.
    bool ValidateArenaFrees = false;
    /// Allocation-site & hot-path profiler (prof/Profiler.h), not owned.
    /// Null disables profiling. When set, every dispatched instruction
    /// is counted per opcode and per proto, and frame transitions feed
    /// the calling-context tree.
    prof::Profiler *Profiler = nullptr;
    /// Speculative-tier hooks (runtime/SpecHooks.h), not owned. While
    /// set, guard.spec instructions report to guardReached, speculative
    /// directives (SpecIndex >= 0) are honored only while directiveArmed
    /// says so, and arena opens/closes are announced so the spec runtime
    /// can run the deopt protocol. Null disables the tier.
    SpecHooks *Spec = nullptr;
  };

  Vm(const Chunk &C, DiagnosticEngine &Diags);
  Vm(const Chunk &C, DiagnosticEngine &Diags, Options Opts);
  ~Vm();

  /// Runs the chunk's entry proto. Returns nullopt after a diagnostic on
  /// runtime errors.
  std::optional<RtValue> run();

  const RuntimeStats &stats() const { return Stats; }
  Heap &heap() { return TheHeap; }

private:
  struct CallFrame {
    const Proto *P = nullptr;
    size_t Ip = 0;
    EnvPtr Env;
    /// Operand-stack height at entry; Return truncates back to it.
    size_t StackBase = 0;
    /// Arenas owned by this activation (freed at Return).
    std::vector<size_t> Arenas;
    /// Over-application continuation: args to apply to the result.
    std::vector<RtValue> Pending;
  };

  /// Applies \p Callee to \p Args, either computing inline (primitives,
  /// partial applications) and pushing the result, or pushing a call
  /// frame. \p Arenas attach to the first full activation.
  bool applyValue(RtValue Callee, std::vector<RtValue> Args,
                  std::vector<size_t> Arenas);

  /// Call with \p N stack arguments below the callee; fast-paths exact-
  /// arity user closures (flat frames bind in place, no EnvFrame).
  bool doCall(size_t N, uint32_t NumPending);
  /// TailCall: like doCall but replaces the current frame, inheriting
  /// its arenas (freed at the same execution point as the unfused
  /// Call+Return). Falls back to a plain call when the frame still has
  /// an over-application continuation pending.
  bool doTailCall(size_t N, uint32_t NumPending);
  /// Return: pops the frame, frees its arenas, resumes the caller.
  bool doReturn();
  /// Runs saturated primitive \p Op over the stack top in place.
  bool doPrim(PrimOp Op, uint32_t Site);
  /// Moves the innermost \p N stashed arenas into \p Arenas.
  void takePendingArenas(uint32_t N, std::vector<size_t> &Arenas);

  /// Frees \p Arenas (with optional validation); \p Result is rooted
  /// during validation when non-null.
  bool freeArenas(std::vector<size_t> &Arenas, const RtValue *Result);

  ConsCell *allocateCell(uint32_t SiteId);
  RtClosure *newClosure();
  bool error(const std::string &Message);

  const Chunk &C;
  DiagnosticEngine &Diags;
  Options Opts;
  RuntimeStats Stats;
  Heap TheHeap;

  std::vector<RtValue> Stack;
  std::vector<CallFrame> Frames;

  struct ActiveArena {
    const ArgArenaDirective *Directive;
    size_t Handle;
    /// False for a speculative directive whose guard already failed:
    /// the arena exists (so Stash/free bookkeeping is uniform) but
    /// allocateCell skips it, and freeing the empty chain is O(1) and
    /// bumps no counters.
    bool Enabled = true;
  };
  std::vector<ActiveArena> ArenaStack;
  std::vector<size_t> PendingArenas;
  /// Arenas whose owning call turned out partial; freed at the end.
  std::vector<size_t> OrphanArenas;

  std::vector<std::unique_ptr<RtClosure>> Closures;
  /// One closure per Chunk::PrimRefs entry, created once at
  /// construction; PushPrim pushes these instead of allocating.
  std::vector<RtClosure *> InternedPrims;
  /// Recursive (letrec) frames: cycles broken at destruction.
  std::vector<EnvPtr> RecFrames;

  /// Primitive-evaluation hooks, built once (not per instruction).
  PrimOpsHooks Hooks;

  /// Profiler (Opts.Profiler, cached; null when profiling is off).
  prof::Profiler *Prof = nullptr;
  /// Spec hooks (Opts.Spec, cached; null when the tier is off).
  SpecHooks *Spec = nullptr;

  uint64_t MarkEpoch = 0;
  bool Failed = false;
};

} // namespace eal

#endif // EAL_VM_VM_H

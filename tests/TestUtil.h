//===- TestUtil.h - Shared test fixtures ------------------------*- C++ -*-==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small front-end harness for tests: source text in, typed program out.
///
//===----------------------------------------------------------------------===//

#ifndef EAL_TESTS_TESTUTIL_H
#define EAL_TESTS_TESTUTIL_H

#include "lang/Ast.h"
#include "lang/Parser.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "types/TypeInference.h"

#include <optional>
#include <string>

namespace eal::test {

/// Parses and (optionally) type-checks nml source for a test.
struct Frontend {
  SourceManager SM;
  DiagnosticEngine Diags;
  AstContext Ast;
  TypeContext Types;
  const Expr *Root = nullptr;
  std::optional<TypedProgram> Typed;

  /// Parses \p Source; returns the root or null (diagnostics retained).
  const Expr *parse(const std::string &Source) {
    SM.setBuffer(Source);
    Parser P(SM.buffer(), Ast, Diags);
    Root = P.parseProgram();
    return Root;
  }

  /// Parses and type-checks \p Source; true on success.
  bool parseAndType(
      const std::string &Source,
      TypeInferenceMode Mode = TypeInferenceMode::Polymorphic) {
    if (!parse(Source))
      return false;
    TypeInference TI(Ast, Types, Diags, Mode);
    Typed = TI.run(Root);
    return Typed.has_value();
  }

  /// Renders collected diagnostics (for failure messages).
  std::string diagText() const { return Diags.render(SM); }
};

/// The partition sort program of Appendix A, written so it also runs
/// (split recurses on cdr and the pivot is re-inserted between halves).
inline const char *partitionSortSource() {
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))))
in ps [5, 2, 7, 1, 3, 4]
)";
}

/// The §1 example: pair and map.
inline const char *mapPairSource() {
  return R"(
letrec
  pair x = if (null x) then nil
           else cons (car x) (cons (car x) nil);
  map f l = if (null l) then nil
            else cons (f (car l)) (map f (cdr l))
in map pair [[1, 2], [3, 4], [5, 6]]
)";
}

/// Naive reverse (A.3.2).
inline const char *reverseSource() {
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  rev l = if (null l) then nil
          else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3, 4, 5]
)";
}

} // namespace eal::test

#endif // EAL_TESTS_TESTUTIL_H

//===- LinterTest.cpp - eal::check lints and explanations ------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace eal;

namespace {

PipelineResult lint(const std::string &Source, bool Stdlib = false,
                    OptimizerConfig Opt = OptimizerConfig()) {
  PipelineOptions Options;
  Options.RunLint = true;
  Options.RunProgram = false;
  Options.IncludeStdlib = Stdlib;
  Options.Optimize = Opt;
  return runPipeline(Source, Options);
}

std::vector<std::string> codes(const PipelineResult &R) {
  std::vector<std::string> Out;
  if (R.Check)
    for (const check::Finding &F : R.Check->Findings)
      Out.push_back(F.Code);
  return Out;
}

size_t countCode(const PipelineResult &R, const std::string &Code) {
  auto Cs = codes(R);
  return std::count(Cs.begin(), Cs.end(), Code);
}

TEST(Linter, UnusedBindings) {
  PipelineResult R = lint("letrec\n"
                          "  f x = let y = 3 in x;\n"
                          "  g z = z\n"
                          "in f 1");
  ASSERT_TRUE(R.Check.has_value());
  EXPECT_EQ(countCode(R, "EAL-L001"), 2u) << R.Check->render(*R.SM);
  // The unused let binding y and the unused letrec binding g; the used
  // parameter x draws no finding.
  EXPECT_EQ(R.Check->count(check::FindingSeverity::Error), 0u);
}

TEST(Linter, SelfRecursiveOnlyBindingIsUnused) {
  PipelineResult R = lint("letrec\n"
                          "  loop x = loop x;\n"
                          "  f y = y\n"
                          "in f 1");
  EXPECT_EQ(countCode(R, "EAL-L001"), 1u) << R.Check->render(*R.SM);
}

TEST(Linter, ShadowedBinding) {
  PipelineResult R = lint("letrec\n"
                          "  f x = let x = 3 in x\n"
                          "in f 1");
  EXPECT_EQ(countCode(R, "EAL-L002"), 1u) << R.Check->render(*R.SM);
}

TEST(Linter, BooleanLiteralCondition) {
  PipelineResult R = lint("letrec f x = if true then x else 0 - x\n"
                          "in if false then 1 else f 2");
  EXPECT_EQ(countCode(R, "EAL-L003"), 2u) << R.Check->render(*R.SM);
}

TEST(Linter, OverApplication) {
  PipelineResult R = lint("letrec add a b = a + b in add 1 2 3");
  EXPECT_EQ(countCode(R, "EAL-L004"), 1u) << R.Check->render(*R.SM);
}

TEST(Linter, CleanProgramHasNoSourceLints) {
  PipelineResult R = lint("letrec f x = if (null x) then 0 else car x\n"
                          "in f [1, 2]");
  EXPECT_EQ(countCode(R, "EAL-L001"), 0u) << R.Check->render(*R.SM);
  EXPECT_EQ(countCode(R, "EAL-L002"), 0u);
  EXPECT_EQ(countCode(R, "EAL-L003"), 0u);
  EXPECT_EQ(countCode(R, "EAL-L004"), 0u);
}

TEST(Linter, StdlibBindingsExemptFromUnused) {
  // The prelude splices ~24 bindings; using just one of them must not
  // flag the other 23 (or allow user shadowing warnings against them).
  PipelineResult R = lint("sum [1, 2, 3]", /*Stdlib=*/true);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(countCode(R, "EAL-L001"), 0u) << R.Check->render(*R.SM);
  EXPECT_EQ(countCode(R, "EAL-L002"), 0u);
}

//===----------------------------------------------------------------------===//
// Optimization-blocked explanations
//===----------------------------------------------------------------------===//

TEST(Explain, ArgumentEscapesViaResult) {
  // append's second argument escapes into the result, so the [9] literal
  // feeding it has to stay on the GC heap.
  PipelineResult R = lint("letrec\n"
                          "  append x y = if (null x) then y\n"
                          "               else cons (car x) (append (cdr x) y)\n"
                          "in append [1, 2] [9]");
  EXPECT_GE(countCode(R, "EAL-O001"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, ProtectedButNoDirective) {
  // length's argument is fully protected, but with stack and region
  // allocation disabled no directive spends the protection: the cells
  // stay on the GC heap and the explanation must say why.
  OptimizerConfig Opt;
  Opt.EnableStack = false;
  Opt.EnableRegion = false;
  PipelineResult R = lint("letrec\n"
                          "  length x = if (null x) then 0\n"
                          "             else 1 + length (cdr x)\n"
                          "in length [1, 2, 3]",
                          /*Stdlib=*/false, Opt);
  EXPECT_GE(countCode(R, "EAL-O002"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, ElementPositionOffTheSpine) {
  // The inner cons sits under a car inside a protected argument: it is
  // an element, not spine, so the analysis never grades it.
  PipelineResult R = lint("letrec\n"
                          "  length x = if (null x) then 0\n"
                          "             else 1 + length (cdr x)\n"
                          "in length (cons (car (cons 9 nil)) nil)");
  EXPECT_GE(countCode(R, "EAL-O002"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, UnknownCallee) {
  PipelineResult R = lint("(lambda(x). 0) (cons 1 nil)");
  EXPECT_GE(countCode(R, "EAL-O003"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, NoProtectingCallSite) {
  PipelineResult R = lint("cons 1 nil");
  EXPECT_EQ(countCode(R, "EAL-O004"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, ReuseBlockedNoDconsSite) {
  // length's parameter is fully protected but its body never conses, so
  // no DCONS version exists to spend the protection on.
  PipelineResult R = lint("letrec\n"
                          "  length x = if (null x) then 0\n"
                          "             else 1 + length (cdr x)\n"
                          "in length [1, 2, 3]");
  EXPECT_GE(countCode(R, "EAL-O005"), 1u) << R.Check->render(*R.SM);
}

TEST(Explain, PlannedSitesDrawNoNotes) {
  // With default optimizations the argument literal of a protecting call
  // is stack-allocated (planned), so it must NOT be explained away.
  PipelineResult R = lint("letrec\n"
                          "  length x = if (null x) then 0\n"
                          "             else 1 + length (cdr x)\n"
                          "in length [1, 2, 3]");
  ASSERT_TRUE(R.Check.has_value());
  for (const check::Finding &F : R.Check->Findings)
    EXPECT_NE(F.Code, std::string("EAL-O002")) << R.Check->render(*R.SM);
}

//===----------------------------------------------------------------------===//
// Report plumbing
//===----------------------------------------------------------------------===//

TEST(CheckReport, JsonCarriesSchemaAndFindings) {
  PipelineResult R = lint("letrec f x = let y = 1 in x in f 2");
  ASSERT_TRUE(R.Check.has_value());
  std::string Json = R.Check->toJson(*R.SM, "check", R.Success);
  EXPECT_NE(Json.find("\"schema\": \"eal-check-v1\""), std::string::npos);
  EXPECT_NE(Json.find("EAL-L001"), std::string::npos);
  EXPECT_NE(Json.find("\"severity\": \"warning\""), std::string::npos);
}

TEST(CheckReport, RenderCountsBySeverity) {
  PipelineResult R = lint("letrec f x = let y = 1 in x in f 2");
  ASSERT_TRUE(R.Check.has_value());
  std::string Text = R.Check->render(*R.SM);
  EXPECT_NE(Text.find("1 warning(s)"), std::string::npos) << Text;
}

} // namespace

//===- LiveOracleTest.cpp - the liveness oracle must actually fire ---------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Three obligations of the dynamic liveness oracle (docs/LIVENESS.md):
// claims keep their identity when DCONS re-tags a reused cell (touch
// attribution follows the *current* SiteId, births keep their AllocSeq),
// a planted false claim is detected ("injected-claim"), and a genuinely
// dead allocation sails through with zero violations while the
// imprecision counter stays honest.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "check/LiveOracle.h"
#include "driver/Pipeline.h"
#include "runtime/RtValue.h"

#include <gtest/gtest.h>
#include <unordered_map>

using namespace eal;

namespace {

/// Records every cell's birth (site, AllocSeq) and checks both at every
/// touch: the stamp must never change, the site may (DCONS re-tagging).
struct BirthRecorder final : public ExecutionObserver {
  struct Birth {
    uint32_t SiteId;
    uint64_t AllocSeq;
  };
  std::unordered_map<const ConsCell *, Birth> Births;
  unsigned RetaggedTouches = 0;
  unsigned SeqDrift = 0;

  void cellAllocated(const ConsCell *Cell, uint32_t SiteId) override {
    Births[Cell] = {SiteId, Cell->AllocSeq};
  }
  void cellTouched(const ConsCell *Cell, uint64_t) override {
    auto It = Births.find(Cell);
    if (It == Births.end())
      return;
    if (Cell->AllocSeq != It->second.AllocSeq)
      ++SeqDrift;
    if (Cell->SiteId != It->second.SiteId)
      ++RetaggedTouches;
  }
};

TEST(LiveOracle, DconsRetagKeepsClaimIdentity) {
  // Reverse under the default optimizer reuses append's first-argument
  // cells through DCONS: the same physical cell is born at one cons
  // site and touched under the dcons site's id. The oracle keys its
  // dead-site claims on the touch-time SiteId, so the re-tag must be
  // visible to observers while the birth stamp survives.
  BirthRecorder Rec;
  PipelineOptions Options;
  Options.Run.Observer = &Rec;
  PipelineResult R = runPipeline(test::reverseSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_GT(Rec.RetaggedTouches, 0u)
      << "no touch ever saw a DCONS-re-tagged site id";
  EXPECT_EQ(Rec.SeqDrift, 0u)
      << "a reuse must keep the cell's birth AllocSeq";
}

TEST(LiveOracle, InjectedClaimFires) {
  // Pass 1: static analysis only, to pick a site that is genuinely
  // live (demanded, in reached code). Site ids are AST node ids, so
  // they are stable across pipeline runs of the same source.
  uint32_t LiveSite = 0;
  {
    PipelineOptions Options;
    Options.RunLive = true;
    Options.RunProgram = false;
    PipelineResult R = runPipeline(test::reverseSource(), Options);
    ASSERT_TRUE(R.Success) << R.diagnostics();
    ASSERT_TRUE(R.Live.has_value());
    for (const live::SiteLive &S : R.Live->Sites)
      if (!S.Dem.isBottom() && !S.Unreached) {
        LiveSite = S.Site->id();
        break;
      }
    ASSERT_NE(LiveSite, 0u) << "no live site found to plant a claim on";
  }

  // Pass 2: plant "that site is dead" and run. The oracle does not
  // abort (liveness violations are advisory), so the program completes
  // and the refutation lands in the report.
  check::LivenessOracle Oracle{check::LiveClaims{}};
  Oracle.injectDeadClaim(LiveSite);
  PipelineOptions Options;
  Options.Run.Observer = &Oracle;
  PipelineResult R = runPipeline(test::reverseSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  Oracle.finalize(R.Value ? &*R.Value : nullptr);

  const check::LiveOracleReport &Rep = Oracle.report();
  ASSERT_GE(Rep.Violations.size(), 1u)
      << "a false dead claim must be refuted";
  bool SawInjected = false;
  for (const check::LiveViolation &V : Rep.Violations) {
    EXPECT_EQ(V.SiteId, LiveSite);
    if (V.Kind == "injected-claim")
      SawInjected = true;
  }
  EXPECT_TRUE(SawInjected)
      << "planted claims must be distinguishable from analysis claims";
}

TEST(LiveOracle, DeadDataPassesWithZeroViolations) {
  // The end-to-end path the CLI exercises: analysis claims the two
  // cells of `dead` are dead data, the run allocates them, nothing
  // touches them, the result does not reach them.
  static const char *Source = R"(
letrec
  sum l = if (null l) then 0 else (car l) + sum (cdr l)
in let dead = cons 1 (cons 2 nil) in
   sum [1, 2, 3]
)";
  PipelineOptions Options;
  Options.RunLiveOracle = true;
  PipelineResult R = runPipeline(Source, Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_NE(R.LiveOracle, nullptr);
  const check::LiveOracleReport &Rep = R.LiveOracle->report();
  EXPECT_TRUE(Rep.Violations.empty());
  EXPECT_EQ(Rep.DeadSitesClaimed, 2u);
  EXPECT_EQ(Rep.DeadCellsAllocated, 2u);
  EXPECT_GT(Rep.Touches, 0u) << "the summed list is walked";
}

TEST(LiveOracle, UntouchedLiveSiteCountsAsImprecision) {
  // `car p` sits in a branch the run never takes: statically p is
  // demanded (the analysis cannot claim it dead), dynamically no field
  // of it is ever read. That is imprecision, not a violation.
  static const char *Source = R"(
let p = cons 1 nil in
if (null p) then car p else 5
)";
  PipelineOptions Options;
  Options.RunLiveOracle = true;
  PipelineResult R = runPipeline(Source, Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_NE(R.LiveOracle, nullptr);
  const check::LiveOracleReport &Rep = R.LiveOracle->report();
  EXPECT_TRUE(Rep.Violations.empty());
  EXPECT_EQ(Rep.DeadSitesClaimed, 0u);
  EXPECT_GE(Rep.UntouchedLiveSites, 1u)
      << "the never-read pair is dynamic dead data the analysis missed";
}

} // namespace

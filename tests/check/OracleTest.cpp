//===- OracleTest.cpp - dynamic escape oracle soundness runs ---------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Every Appendix A case study, under every optimizer configuration, must
// execute with zero refuted claims: the static analysis' "does not
// escape" verdicts hold on the concrete heap. The reverse direction
// (dynamically local cells the analysis could not prove local) is
// counted as imprecision, never as failure.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Metrics.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

struct Config {
  const char *Name;
  bool Reuse, Stack, Region;
  EscapeAnalysisMode Analysis = EscapeAnalysisMode::SpineAware;
  TypeInferenceMode Mode = TypeInferenceMode::Polymorphic;
};

const Config Configs[] = {
    {"default", true, true, true},
    {"no-reuse", false, true, true},
    {"gc-only", false, false, false},
    {"whole-object", true, true, true, EscapeAnalysisMode::WholeObject},
    {"mono", true, true, true, EscapeAnalysisMode::SpineAware,
     TypeInferenceMode::Monomorphic},
};

PipelineResult runOracle(const std::string &Source, const Config &C) {
  PipelineOptions Options;
  Options.RunOracle = true;
  Options.Mode = C.Mode;
  Options.Optimize.EnableReuse = C.Reuse;
  Options.Optimize.EnableStack = C.Stack;
  Options.Optimize.EnableRegion = C.Region;
  Options.Optimize.Analysis = C.Analysis;
  return runPipeline(Source, Options);
}

void expectSound(const std::string &Source, const Config &C,
                 const char *Label) {
  PipelineResult R = runOracle(Source, C);
  ASSERT_TRUE(R.Success) << Label << " [" << C.Name << "]: "
                         << R.diagnostics();
  ASSERT_TRUE(R.Check && R.Check->Oracle);
  const check::OracleReport &O = *R.Check->Oracle;
  EXPECT_EQ(O.Violations.size(), 0u)
      << Label << " [" << C.Name << "]: " << R.Check->render(*R.SM);
  EXPECT_GT(O.Activations, 0u);
  EXPECT_GT(O.CellsTracked, 0u);
}

TEST(Oracle, PartitionSortSoundInEveryConfig) {
  for (const Config &C : Configs)
    expectSound(test::partitionSortSource(), C, "partition_sort");
}

TEST(Oracle, MapPairSoundInEveryConfig) {
  for (const Config &C : Configs)
    expectSound(test::mapPairSource(), C, "map_pair");
}

TEST(Oracle, ReverseSoundInEveryConfig) {
  for (const Config &C : Configs)
    expectSound(test::reverseSource(), C, "reverse");
}

TEST(Oracle, PartitionSortChecksClaims) {
  PipelineResult R = runOracle(test::partitionSortSource(), Configs[0]);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  // The analysis promises protected spines at split/append/ps call
  // sites; a run that checked nothing would prove nothing.
  EXPECT_GT(R.Check->Oracle->ClaimsChecked, 0u)
      << R.Check->render(*R.SM);
}

TEST(Oracle, CountsImprecisionNotViolation) {
  // Statically car x escapes (so only the top spine of x is protected);
  // dynamically y is false, the else branch runs, and nothing escapes.
  // The probe level (one past the protected prefix) stays local -> the
  // claim is counted imprecise, and the heap cells that died with their
  // activation land in heap_cells_unescaped.
  const char *Source = "letrec f x y = if y then car x else nil\n"
                       "in f [[1], [2]] false";
  PipelineResult R = runOracle(Source, Configs[0]);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  const check::OracleReport &O = *R.Check->Oracle;
  EXPECT_EQ(O.Violations.size(), 0u) << R.Check->render(*R.SM);
  EXPECT_GT(O.ClaimsChecked, 0u);
  EXPECT_GT(O.ImpreciseClaims, 0u) << R.Check->render(*R.SM);
}

TEST(Oracle, AliasedArgumentRolesAreExemptNotRefuted) {
  // One list routed into BOTH roles of append: its cells legitimately
  // escape through the second role (which the analysis lets escape), so
  // charging them against the first role's protected prefix would be a
  // false refutation. The oracle's per-role exemption must fire — the
  // run stays violation-free and AliasExemptions counts the shared
  // cells it excused.
  const char *Source =
      "letrec\n"
      "  append x y = if (null x) then y\n"
      "               else cons (car x) (append (cdr x) y);\n"
      "  suml l = if (null l) then 0 else (car l) + (suml (cdr l))\n"
      "in let aa = cons 1 (cons 2 (cons 3 nil))\n"
      "   in (suml (append aa aa)) + (suml aa)\n";
  PipelineResult R = runOracle(Source, Configs[0]);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  ASSERT_TRUE(R.Check && R.Check->Oracle);
  const check::OracleReport &O = *R.Check->Oracle;
  EXPECT_EQ(O.Violations.size(), 0u) << R.Check->render(*R.SM);
  EXPECT_GT(O.AliasExemptions, 0u)
      << "the aliased call should exercise the per-role exemption:\n"
      << R.Check->render(*R.SM);
}

TEST(Oracle, DconsVersionsStaySound) {
  // In-place reuse rewrites append into append' (DCONS); the oracle must
  // agree that the rewrite never let a protected spine escape.
  PipelineResult R = runOracle(test::reverseSource(), Configs[0]);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_GT(R.Stats.DconsReuses, 0u)
      << "reverse should exercise DCONS under the default config";
  EXPECT_EQ(R.Check->Oracle->Violations.size(), 0u)
      << R.Check->render(*R.SM);
}

TEST(Oracle, ExportsMetricsCounters) {
  PipelineResult R = runOracle(test::partitionSortSource(), Configs[0]);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  obs::MetricsRegistry Reg;
  R.Check->Oracle->exportTo(Reg);
  EXPECT_TRUE(Reg.hasCounter("check.oracle.claims_checked"));
  EXPECT_TRUE(Reg.hasCounter("check.oracle.violations"));
  EXPECT_TRUE(Reg.hasCounter("check.oracle.imprecise_claims"));
  EXPECT_EQ(Reg.counter("check.oracle.violations").value(), 0u);
  EXPECT_EQ(Reg.counter("check.oracle.claims_checked").value(),
            R.Check->Oracle->ClaimsChecked);
}

TEST(Oracle, ForcesTreeWalkerEngine) {
  // The observer hooks live in the interpreter; asking for the VM with
  // --oracle must still produce an oracle report (and a correct value).
  PipelineOptions Options;
  Options.RunOracle = true;
  Options.Engine = ExecutionEngine::Bytecode;
  PipelineResult R = runPipeline(test::partitionSortSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "[1, 2, 3, 4, 5, 7]");
  ASSERT_TRUE(R.Check && R.Check->Oracle);
  EXPECT_GT(R.Check->Oracle->CellsTracked, 0u);
}

} // namespace

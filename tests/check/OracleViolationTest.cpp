//===- OracleViolationTest.cpp - the oracle must actually fire -------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// A soundness oracle that never fires proves nothing. This test plants a
// claim the analysis would never make -- "append's second argument does
// not escape" (it does: it becomes the result's tail) -- via the
// test-only injectClaim hook and demands the run abort with a violation.
//
//===----------------------------------------------------------------------===//

#include "check/Oracle.h"
#include "lang/AstUtils.h"
#include "opt/Optimizer.h"
#include "runtime/Interpreter.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

const char *AppendProgram = "letrec\n"
                            "  append x y = if (null x) then y\n"
                            "               else cons (car x) (append (cdr x) y)\n"
                            "in append [1, 2] [8, 9]";

struct OracleRun {
  test::Frontend F;
  std::optional<OptimizedProgram> Opt;
  std::unique_ptr<check::EscapeOracle> Oracle;
  std::unique_ptr<Interpreter> Interp;
  std::optional<RtValue> Value;
};

/// Optimizes AppendProgram, injects \p Planted (if any call-site id is
/// resolved by \p PickCall), and runs under the oracle.
void runWithPlantedClaim(OracleRun &R, unsigned ArgIndex) {
  ASSERT_TRUE(R.F.parseAndType(AppendProgram)) << R.F.diagText();
  // Reuse stays off: a DCONS-rewritten append deliberately consumes its
  // first argument, which would make even the "true" claim false.
  OptimizerConfig Opt;
  Opt.EnableReuse = false;
  R.Opt = optimizeProgram(R.F.Ast, R.F.Types, *R.F.Typed, R.F.Diags, Opt);
  ASSERT_TRUE(R.Opt.has_value()) << R.F.diagText();

  EscapeAnalyzer Analyzer(R.F.Ast, R.Opt->Typed, R.F.Diags);
  check::ClaimTable Table =
      check::buildClaimTable(R.F.Ast, R.Opt->Typed, Analyzer);
  R.Oracle = std::make_unique<check::EscapeOracle>(R.F.Ast, std::move(Table));

  // The outermost application of the letrec body is the append call.
  const auto *Letrec = dyn_cast<LetrecExpr>(R.Opt->Root);
  ASSERT_NE(Letrec, nullptr);
  const Expr *Call = Letrec->body();
  std::vector<const Expr *> Args;
  uncurryCall(Call, Args);
  ASSERT_EQ(Args.size(), 2u);

  check::CallClaim Planted;
  Planted.CallAppId = Call->id();
  Planted.ArgIndex = ArgIndex;
  Planted.ProtectedSpines = 1;
  Planted.ParamSpines = 1;
  Planted.Callee = R.F.Ast.intern("append");
  Planted.CalleeLambda = nullptr; // match whichever closure answers
  Planted.CallLoc = Call->loc();
  R.Oracle->injectClaim(Planted);

  Interpreter::Options RO;
  RO.ValidateArenaFrees = true;
  RO.Observer = R.Oracle.get();
  R.Interp = std::make_unique<Interpreter>(R.F.Ast, R.Opt->Typed,
                                           &R.Opt->Plan, R.F.Diags, RO);
  R.Value = R.Interp->runOnLargeStack();
  if (R.Oracle)
    R.Oracle->finalize(R.Value ? &*R.Value : nullptr);
}

TEST(OracleViolation, PlantedFalseClaimAbortsTheRun) {
  OracleRun R;
  // Argument 2 (index 1) escapes: append returns it as the result tail.
  runWithPlantedClaim(R, 1);
  EXPECT_FALSE(R.Value.has_value())
      << "a refuted claim must abort execution";
  EXPECT_TRUE(R.F.Diags.hasErrors());
  EXPECT_NE(R.F.diagText().find("escape oracle"), std::string::npos)
      << R.F.diagText();

  const check::OracleReport &O = R.Oracle->report();
  ASSERT_GE(O.Violations.size(), 1u);
  const check::OracleViolation &V = O.Violations.front();
  EXPECT_EQ(V.Kind, "injected-claim");
  EXPECT_EQ(V.Function, "append");
  EXPECT_EQ(V.ArgIndex, 1u);
  EXPECT_EQ(V.SpineLevel, 1u);
  EXPECT_TRUE(V.AllocLoc.isValid())
      << "the violation must name the allocation site";
}

TEST(OracleViolation, TrueClaimOnSameCallPasses) {
  OracleRun R;
  // Argument 1 (index 0) genuinely does not escape append: the same
  // planted-claim machinery must stay quiet, isolating the detection to
  // the false claim rather than the injection path.
  runWithPlantedClaim(R, 0);
  ASSERT_TRUE(R.Value.has_value()) << R.F.diagText();
  EXPECT_EQ(R.Oracle->report().Violations.size(), 0u);
  EXPECT_FALSE(R.F.Diags.hasErrors()) << R.F.diagText();
}

} // namespace

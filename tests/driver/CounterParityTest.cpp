//===- CounterParityTest.cpp - engines agree on counters + traces -----------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The two execution engines (tree-walking Interpreter, bytecode Vm)
// share the Heap, the arenas, and the DCONS machinery, so the storage
// counters the paper's experiments are built on must not depend on which
// engine ran the program. These tests pin that down, and check the
// pipeline's trace instrumentation end to end: one run under tracing
// must produce all seven phase spans.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace eal;

namespace {

/// Partition sort over a 24-element literal: exercises reuse, stack, and
/// region planning depending on the configuration.
const char *sortProgram() {
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))))
in ps [5, 2, 7, 1, 3, 4, 9, 8, 6, 0, 11, 10, 13, 12, 15, 14,
       17, 16, 19, 18, 21, 20, 23, 22]
)";
}

PipelineOptions engineOptions(ExecutionEngine Engine, bool Reuse) {
  PipelineOptions Options;
  Options.Engine = Engine;
  Options.Optimize.EnableReuse = Reuse;
  Options.Run.HeapCapacity = 512; // small enough to force collections
  return Options;
}

/// Runs the program under both engines and asserts that every counter
/// the optimizations are measured by agrees.
void expectParity(bool Reuse) {
  PipelineResult Tree =
      runPipeline(sortProgram(),
                  engineOptions(ExecutionEngine::TreeWalker, Reuse));
  PipelineResult Byte =
      runPipeline(sortProgram(),
                  engineOptions(ExecutionEngine::Bytecode, Reuse));
  ASSERT_TRUE(Tree.Success) << Tree.diagnostics();
  ASSERT_TRUE(Byte.Success) << Byte.diagnostics();
  EXPECT_EQ(Tree.RenderedValue, Byte.RenderedValue);

  // Allocation, reuse, and arena reclamation are plan-driven and must be
  // engine-independent. (GC timing/mark work may differ: the engines
  // have different root sets.)
  EXPECT_EQ(Tree.Stats.HeapCellsAllocated, Byte.Stats.HeapCellsAllocated);
  EXPECT_EQ(Tree.Stats.StackCellsAllocated, Byte.Stats.StackCellsAllocated);
  EXPECT_EQ(Tree.Stats.RegionCellsAllocated,
            Byte.Stats.RegionCellsAllocated);
  EXPECT_EQ(Tree.Stats.totalCellsAllocated(),
            Byte.Stats.totalCellsAllocated());
  EXPECT_EQ(Tree.Stats.DconsReuses, Byte.Stats.DconsReuses);
  EXPECT_EQ(Tree.Stats.StackArenaFrees, Byte.Stats.StackArenaFrees);
  EXPECT_EQ(Tree.Stats.StackCellsFreed, Byte.Stats.StackCellsFreed);
  EXPECT_EQ(Tree.Stats.RegionBulkFrees, Byte.Stats.RegionBulkFrees);
  EXPECT_EQ(Tree.Stats.RegionCellsFreed, Byte.Stats.RegionCellsFreed);
}

TEST(CounterParityTest, EnginesAgreeWithReuse) { expectParity(true); }

TEST(CounterParityTest, EnginesAgreeWithoutReuse) { expectParity(false); }

TEST(CounterParityTest, RenderedCountersMatch) {
  PipelineResult Tree = runPipeline(
      sortProgram(), engineOptions(ExecutionEngine::TreeWalker, true));
  PipelineResult Byte = runPipeline(
      sortProgram(), engineOptions(ExecutionEngine::Bytecode, true));
  ASSERT_TRUE(Tree.Success && Byte.Success);
  // The human-readable renders agree line for line on everything that is
  // engine-independent; compare the allocation block (it precedes the
  // GC block in forEachField order).
  std::string TreeStr = Tree.Stats.str();
  std::string ByteStr = Byte.Stats.str();
  std::string Key = "total cells allocated";
  ASSERT_NE(TreeStr.find(Key), std::string::npos);
  EXPECT_EQ(TreeStr.substr(0, TreeStr.find("gc runs")),
            ByteStr.substr(0, ByteStr.find("gc runs")));
}

//===----------------------------------------------------------------------===//
// Pipeline trace integration
//===----------------------------------------------------------------------===//

class PipelineTraceTest : public ::testing::Test {
protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::disableTracing();
    obs::disableMetrics();
    obs::clearTrace();
    obs::globalMetrics().clear();
  }
};

TEST_F(PipelineTraceTest, TracedRunEmitsAllSevenPhaseSpans) {
  obs::enableTracing();
  PipelineResult R = runPipeline(
      sortProgram(), engineOptions(ExecutionEngine::TreeWalker, true));
  ASSERT_TRUE(R.Success) << R.diagnostics();

  std::set<std::string> SpanNames;
  for (const obs::TraceEvent &E : obs::snapshot())
    if (E.Phase == 'X')
      SpanNames.insert(E.Name);
  for (const char *Phase : {"lex", "parse", "type-inference", "escape",
                            "sharing", "optimize", "execute"})
    EXPECT_TRUE(SpanNames.count(Phase)) << "missing phase span: " << Phase;

  // The wall-clock ledger saw the same phases (escape/sharing nest
  // inside optimize; lex exists because tracing was on).
  std::set<std::string> Ledger;
  for (const auto &[Name, Micros] : R.PhaseMicros)
    Ledger.insert(Name);
  for (const char *Phase : {"lex", "parse", "type-inference", "escape",
                            "sharing", "optimize", "execute"})
    EXPECT_TRUE(Ledger.count(Phase)) << "missing phase time: " << Phase;
}

TEST_F(PipelineTraceTest, UntracedRunRecordsNothing) {
  PipelineResult R = runPipeline(
      sortProgram(), engineOptions(ExecutionEngine::TreeWalker, true));
  ASSERT_TRUE(R.Success);
  EXPECT_EQ(obs::eventCount(), 0u);
  // Phase wall times are still measured (no "lex": that pre-pass only
  // runs under tracing).
  std::set<std::string> Ledger;
  for (const auto &[Name, Micros] : R.PhaseMicros)
    Ledger.insert(Name);
  EXPECT_TRUE(Ledger.count("parse"));
  EXPECT_TRUE(Ledger.count("execute"));
  EXPECT_FALSE(Ledger.count("lex"));
}

TEST_F(PipelineTraceTest, MetricsRunExportsRuntimeCounters) {
  obs::enableMetrics();
  PipelineResult R = runPipeline(
      sortProgram(), engineOptions(ExecutionEngine::TreeWalker, true));
  ASSERT_TRUE(R.Success);
  obs::MetricsRegistry &Reg = obs::globalMetrics();
  EXPECT_EQ(Reg.counterValue("runtime.heap_cells_allocated"),
            R.Stats.HeapCellsAllocated);
  EXPECT_EQ(Reg.counterValue("runtime.dcons_reuses"), R.Stats.DconsReuses);
  EXPECT_TRUE(Reg.hasCounter("phase.parse.micros"));
  EXPECT_TRUE(Reg.hasCounter("escape.queries"));
}

} // namespace

//===- EndToEndTest.cpp - public report content ------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Locks the user-visible report surfaces: the strings a downstream user
// (or the CLI) sees for the paper's case study must carry the paper's
// facts verbatim.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Pipeline.h"
#include "escape/EscapeAnalyzer.h"
#include "lang/AstPrinter.h"
#include "opt/AllocPlanner.h"
#include "sharing/SharingAnalysis.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class EndToEndTest : public ::testing::Test {
protected:
  PipelineResult R;

  void analyzeSort() {
    PipelineOptions Options;
    R = runPipeline(partitionSortSource(), Options);
    ASSERT_TRUE(R.Success) << R.diagnostics();
  }
};

TEST_F(EndToEndTest, EscapeReportCarriesTheA1Table) {
  analyzeSort();
  std::string Text = renderEscapeReport(*R.Ast, R.Optimized->BaseEscape);
  for (const char *Expected :
       {"append : int list -> int list -> int list",
        "G(append, 1) = <1,0>", "G(append, 2) = <1,1>",
        "G(split, 1) = <0,0>", "G(split, 2) = <1,0>",
        "G(split, 3) = <1,1>", "G(split, 4) = <1,1>",
        "G(ps, 1) = <1,0>",
        "top 1 spine(s) never escape"})
    EXPECT_NE(Text.find(Expected), std::string::npos)
        << "missing: " << Expected << "\nin:\n" << Text;
}

TEST_F(EndToEndTest, SharingReportCarriesA2) {
  analyzeSort();
  std::string Text =
      renderSharingReport(*R.Ast, *R.Typed, R.Optimized->BaseEscape);
  EXPECT_NE(Text.find("ps: result has 1 spine(s); top 1 unshared"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("split: result has 2 spine(s); top 1 unshared"),
            std::string::npos)
      << Text;
}

TEST_F(EndToEndTest, ReuseReportNamesThePrimedVersions) {
  analyzeSort();
  std::string Text = renderReuseReport(*R.Ast, R.Optimized->Reuse);
  for (const char *Expected :
       {"version append': reuses parameter 1 of append",
        "version ps': reuses parameter 1 of ps",
        "call retarget: append -> append'"})
    EXPECT_NE(Text.find(Expected), std::string::npos)
        << "missing: " << Expected << "\nin:\n" << Text;
}

TEST_F(EndToEndTest, TransformedProgramPrintsThePaperShapes) {
  analyzeSort();
  std::string Text = printExpr(*R.Ast, R.Optimized->Root);
  EXPECT_NE(Text.find("dcons x (car x) (append' (cdr x) y)"),
            std::string::npos)
      << Text;
}

TEST_F(EndToEndTest, AllocationPlanRenderedForStackConfig) {
  PipelineOptions Options;
  Options.Optimize.EnableReuse = false; // reuse consumes the literal
  R = runPipeline(partitionSortSource(), Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  std::string Text = renderAllocationPlan(*R.Ast, R.Optimized->Plan);
  EXPECT_NE(Text.find("call of ps"), std::string::npos) << Text;
  EXPECT_NE(Text.find("top 1 spine(s) protected"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("6 stack site(s)"), std::string::npos) << Text;
}

TEST_F(EndToEndTest, StatsRenderContainsEveryCounter) {
  analyzeSort();
  std::string Text = R.Stats.str();
  for (const char *Line :
       {"heap cells allocated", "dcons reuses", "gc runs",
        "region bulk frees", "stack arena frees", "peak live heap cells"})
    EXPECT_NE(Text.find(Line), std::string::npos) << Text;
}

} // namespace

//===- OptionsMatrixTest.cpp - pipeline flag combinations --------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Sweeps engine × typing mode × analysis mode × stdlib across the paper
// programs: every combination must succeed and agree on the value.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace eal;
using namespace eal::test;

namespace {

using Params = std::tuple<int /*engine*/, int /*typing*/, int /*analysis*/,
                          bool /*stdlib*/>;

class OptionsMatrixTest : public ::testing::TestWithParam<Params> {};

TEST_P(OptionsMatrixTest, AllCombinationsAgree) {
  auto [Engine, Typing, Analysis, Stdlib] = GetParam();
  PipelineOptions Options;
  Options.Engine = Engine ? ExecutionEngine::Bytecode
                          : ExecutionEngine::TreeWalker;
  Options.Mode = Typing ? TypeInferenceMode::Monomorphic
                        : TypeInferenceMode::Polymorphic;
  Options.Optimize.Analysis = Analysis ? EscapeAnalysisMode::WholeObject
                                       : EscapeAnalysisMode::SpineAware;
  Options.IncludeStdlib = Stdlib;
  Options.Run.ValidateArenaFrees = true;

  struct Program {
    const char *Source;
    const char *Expected;
  };
  const Program Programs[] = {
      {partitionSortSource(), "[1, 2, 3, 4, 5, 7]"},
      {reverseSource(), "[5, 4, 3, 2, 1]"},
      {"let n = 6 in (n, [n - 1, n + 1])", "(6, [5, 7])"},
  };
  for (const Program &P : Programs) {
    PipelineResult R = runPipeline(P.Source, Options);
    ASSERT_TRUE(R.Success) << P.Source << "\n" << R.diagnostics();
    EXPECT_EQ(R.RenderedValue, P.Expected);
  }
}

std::string matrixName(const ::testing::TestParamInfo<Params> &Info) {
  auto [Engine, Typing, Analysis, Stdlib] = Info.param;
  std::string Name;
  Name += Engine ? "Vm" : "Tree";
  Name += Typing ? "Mono" : "Poly";
  Name += Analysis ? "Whole" : "Spine";
  Name += Stdlib ? "Std" : "Bare";
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Matrix, OptionsMatrixTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1),
                                            ::testing::Values(0, 1),
                                            ::testing::Bool()),
                         matrixName);

} // namespace

//===- PipelineTest.cpp - End-to-end optimization correctness --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// The decisive integration property: every optimization configuration
// computes exactly the same value as the unoptimized program, while the
// runtime counters show the optimization actually happened — and arena
// frees are validated cell-by-cell.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

PipelineOptions configFor(bool Reuse, bool Stack, bool Region,
                          bool Validate = true) {
  PipelineOptions Options;
  Options.Optimize.EnableReuse = Reuse;
  Options.Optimize.EnableStack = Stack;
  Options.Optimize.EnableRegion = Region;
  Options.Run.ValidateArenaFrees = Validate;
  return Options;
}

/// Runs \p Source under a configuration and returns the result;
/// EXPECT-fails on any pipeline error.
PipelineResult runConfig(const std::string &Source, bool Reuse, bool Stack,
                         bool Region) {
  PipelineResult R = runPipeline(Source, configFor(Reuse, Stack, Region));
  EXPECT_TRUE(R.Success) << R.diagnostics();
  return R;
}

const char *createListSource() {
  // A.3.3: the argument of ps is produced by a function call, so its
  // spine cannot be built in ps's activation record; it goes to a block.
  return R"(
letrec
  append x y = if (null x) then y
               else cons (car x) (append (cdr x) y);
  split p x l h = if (null x) then cons l (cons h nil)
                  else if (car x) <= p
                       then split p (cdr x) (cons (car x) l) h
                       else split p (cdr x) l (cons (car x) h);
  ps x = if (null x) then nil
         else append (ps (car (split (car x) (cdr x) nil nil)))
                     (cons (car x)
                           (ps (car (cdr (split (car x) (cdr x) nil nil)))));
  create_list i = if i = 0 then nil
                  else cons (i * 37 mod 101) (create_list (i - 1))
in ps (create_list 50)
)";
}

//===----------------------------------------------------------------------===//
// Semantic preservation across all configurations.
//===----------------------------------------------------------------------===//

class PipelineConfigTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(PipelineConfigTest, PartitionSortValuePreserved) {
  auto [Reuse, Stack, Region] = GetParam();
  PipelineResult Base = runConfig(partitionSortSource(), false, false, false);
  PipelineResult Opt = runConfig(partitionSortSource(), Reuse, Stack, Region);
  EXPECT_EQ(Base.RenderedValue, "[1, 2, 3, 4, 5, 7]");
  EXPECT_EQ(Opt.RenderedValue, Base.RenderedValue);
}

TEST_P(PipelineConfigTest, ReverseValuePreserved) {
  auto [Reuse, Stack, Region] = GetParam();
  PipelineResult Base = runConfig(reverseSource(), false, false, false);
  PipelineResult Opt = runConfig(reverseSource(), Reuse, Stack, Region);
  EXPECT_EQ(Base.RenderedValue, "[5, 4, 3, 2, 1]");
  EXPECT_EQ(Opt.RenderedValue, Base.RenderedValue);
}

TEST_P(PipelineConfigTest, MapPairValuePreserved) {
  auto [Reuse, Stack, Region] = GetParam();
  PipelineResult Base = runConfig(mapPairSource(), false, false, false);
  PipelineResult Opt = runConfig(mapPairSource(), Reuse, Stack, Region);
  EXPECT_EQ(Opt.RenderedValue, Base.RenderedValue);
}

TEST_P(PipelineConfigTest, CreateListValuePreserved) {
  auto [Reuse, Stack, Region] = GetParam();
  PipelineResult Base = runConfig(createListSource(), false, false, false);
  PipelineResult Opt = runConfig(createListSource(), Reuse, Stack, Region);
  EXPECT_EQ(Opt.RenderedValue, Base.RenderedValue);
}

std::string configName(
    const ::testing::TestParamInfo<std::tuple<bool, bool, bool>> &Info) {
  std::string Name;
  Name += std::get<0>(Info.param) ? "Reuse" : "NoReuse";
  Name += std::get<1>(Info.param) ? "Stack" : "NoStack";
  Name += std::get<2>(Info.param) ? "Region" : "NoRegion";
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, PipelineConfigTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()),
                         configName);

//===----------------------------------------------------------------------===//
// The optimizations demonstrably fire.
//===----------------------------------------------------------------------===//

TEST(PipelineEffectsTest, ReuseEliminatesAllocations) {
  PipelineResult Base = runConfig(partitionSortSource(), false, false, false);
  PipelineResult Reuse = runConfig(partitionSortSource(), true, false, false);
  EXPECT_EQ(Reuse.Stats.DconsReuses, 0u + Reuse.Stats.DconsReuses);
  EXPECT_GT(Reuse.Stats.DconsReuses, 0u);
  EXPECT_LT(Reuse.Stats.HeapCellsAllocated, Base.Stats.HeapCellsAllocated);
}

TEST(PipelineEffectsTest, StackAllocationMovesLiteralSpine) {
  PipelineResult R = runConfig(partitionSortSource(), false, true, false);
  // The [5,2,7,1,3,4] literal spine (6 cells) goes to ps's activation.
  EXPECT_GE(R.Stats.StackCellsAllocated, 6u);
  EXPECT_GE(R.Stats.StackArenaFrees, 1u);
  EXPECT_EQ(R.Stats.StackCellsAllocated, R.Stats.StackCellsFreed);
}

TEST(PipelineEffectsTest, RegionAllocationCapturesProducerSpine) {
  PipelineResult R = runConfig(createListSource(), false, false, true);
  // create_list builds 50 spine cells; they go to the block owned by
  // ps's activation and are bulk-freed.
  EXPECT_GE(R.Stats.RegionCellsAllocated, 50u);
  EXPECT_GE(R.Stats.RegionBulkFrees, 1u);
  EXPECT_EQ(R.Stats.RegionCellsAllocated, R.Stats.RegionCellsFreed);
}

TEST(PipelineEffectsTest, ReverseReusePreservesAllocationCount) {
  // REV'/APPEND' recycle every spine cell of the intermediate lists:
  // with reuse the total fresh allocations drop dramatically (naive
  // reverse is quadratic in allocations, reuse makes it linear).
  PipelineResult Base = runConfig(reverseSource(), false, false, false);
  PipelineResult Reuse = runConfig(reverseSource(), true, false, false);
  EXPECT_GT(Reuse.Stats.DconsReuses, 0u);
  EXPECT_LT(Reuse.Stats.HeapCellsAllocated, Base.Stats.HeapCellsAllocated);
}

TEST(PipelineEffectsTest, AnalysisOnlyModeSkipsExecution) {
  PipelineOptions Options;
  Options.RunProgram = false;
  PipelineResult R = runPipeline(partitionSortSource(), Options);
  EXPECT_TRUE(R.Success) << R.diagnostics();
  EXPECT_FALSE(R.Value.has_value());
  EXPECT_FALSE(R.Optimized->BaseEscape.Functions.empty());
}

TEST(PipelineEffectsTest, ParseErrorsPropagate) {
  PipelineResult R = runPipeline("letrec f x = in f 1");
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.diagnostics().empty());
}

TEST(PipelineEffectsTest, TypeErrorsPropagate) {
  PipelineResult R = runPipeline("1 + nil");
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R.diagnostics().empty());
}

} // namespace

//===- StdlibTest.cpp - the standard prelude ---------------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "driver/Stdlib.h"

#include "driver/Pipeline.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

PipelineResult runWithStdlib(const std::string &Source) {
  PipelineOptions Options;
  Options.IncludeStdlib = true;
  return runPipeline(Source, Options);
}

TEST(StdlibTest, PreludeItselfTypechecksAndAnalyzes) {
  PipelineOptions Options;
  Options.IncludeStdlib = true;
  Options.RunProgram = false;
  PipelineResult R = runPipeline("0", Options);
  ASSERT_TRUE(R.Success) << R.diagnostics();
  // Every prelude function gets an escape report entry.
  EXPECT_GE(R.Optimized->BaseEscape.Functions.size(), 20u);
}

TEST(StdlibTest, CoreFunctionsCompute) {
  struct Row {
    const char *Source;
    const char *Expected;
  };
  const Row Rows[] = {
      {"append [1, 2] [3]", "[1, 2, 3]"},
      {"map (lambda(v). v + 1) [1, 2, 3]", "[2, 3, 4]"},
      {"filter (lambda(v). v < 3) [1, 4, 2, 5]", "[1, 2]"},
      {"foldr (lambda(a b). a + b) 0 [1, 2, 3, 4]", "10"},
      {"foldl (lambda(z a). z * 10 + a) 0 [1, 2, 3]", "123"},
      {"length [5, 5, 5]", "3"},
      {"sum [1, 2, 3, 4, 5]", "15"},
      {"reverse [1, 2, 3]", "[3, 2, 1]"},
      {"take 2 [7, 8, 9]", "[7, 8]"},
      {"drop 2 [7, 8, 9]", "[9]"},
      {"nth 1 [7, 8, 9]", "8"},
      {"last [7, 8, 9]", "9"},
      {"snoc [1, 2] 3", "[1, 2, 3]"},
      {"zip [1, 2] [10, 20, 30]", "[(1, 10), (2, 20)]"},
      {"unzipfst (zip [1, 2] [10, 20])", "[1, 2]"},
      {"unzipsnd (zip [1, 2] [10, 20])", "[10, 20]"},
      {"range 2 6", "[2, 3, 4, 5]"},
      {"repeatv 3 9", "[9, 9, 9]"},
      {"if all (lambda(v). v < 9) [1, 2] then 1 else 0", "1"},
      {"if any (lambda(v). v = 2) [1, 2] then 1 else 0", "1"},
      {"if member 2 [1, 2, 3] then 1 else 0", "1"},
      {"isort [5, 2, 7, 1, 3, 4]", "[1, 2, 3, 4, 5, 7]"},
      {"maximum [3, 9, 4]", "9"},
  };
  for (const Row &Row : Rows) {
    PipelineResult R = runWithStdlib(Row.Source);
    ASSERT_TRUE(R.Success) << Row.Source << "\n" << R.diagnostics();
    EXPECT_EQ(R.RenderedValue, Row.Expected) << Row.Source;
  }
}

TEST(StdlibTest, UserBindingsShadowPrelude) {
  // A user-defined map replaces the stdlib one (no duplicate-binding
  // error, and the user semantics win).
  PipelineResult R = runWithStdlib(
      "letrec map f l = [42] in map (lambda(v). v) [1, 2, 3]");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "[42]");
}

TEST(StdlibTest, UserLetrecBodyStillWorks) {
  PipelineResult R = runWithStdlib(
      "letrec double l = map (lambda(v). v * 2) l in sum (double [1, 2])");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "6");
}

TEST(StdlibTest, PreludeGetsOptimizedToo) {
  // isort's insertsorted rebuilds a prefix and shares the tail (like the
  // assoc-map insert), but reverse/append-style spine rebuilds in the
  // prelude are reuse targets; at minimum append' must exist when the
  // program makes fresh arguments flow into append.
  PipelineResult R = runWithStdlib("append (reverse [1, 2, 3]) [4]");
  ASSERT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "[3, 2, 1, 4]");
  EXPECT_GT(R.Stats.DconsReuses + R.Stats.HeapCellsAllocated, 0u);
}

TEST(StdlibTest, WithStdlibIsIdempotentOnNames) {
  // Splicing twice must not create duplicate bindings.
  std::string Once = withStdlib("sum [1]");
  std::string Twice = withStdlib(Once);
  PipelineOptions Options;
  PipelineResult R = runPipeline(Twice, Options);
  EXPECT_TRUE(R.Success) << R.diagnostics();
  EXPECT_EQ(R.RenderedValue, "1");
}

} // namespace

//===- BasicEscapeTest.cpp - B_e lattice laws (property tests) --------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// B_e is the chain <0,0> ⊑ <1,0> ⊑ ... ⊑ <1,d> (§3.2). These
// parameterized tests sweep every element (and pair, and triple) up to a
// bound and check the lattice laws and the sub^s (car^s) properties the
// analysis relies on for soundness and termination.
//
//===----------------------------------------------------------------------===//

#include "escape/BasicEscape.h"

#include <gtest/gtest.h>

#include <vector>

using namespace eal;

namespace {

constexpr unsigned MaxSpines = 6;

std::vector<BasicEscape> allElements() {
  std::vector<BasicEscape> Out;
  Out.push_back(BasicEscape::none());
  for (unsigned I = 0; I <= MaxSpines; ++I)
    Out.push_back(BasicEscape::contained(I));
  return Out;
}

class BasicEscapePairTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {
protected:
  BasicEscape elem(unsigned Index) { return allElements()[Index]; }
};

TEST_P(BasicEscapePairTest, JoinIsCommutative) {
  auto [I, J] = GetParam();
  EXPECT_EQ(join(elem(I), elem(J)), join(elem(J), elem(I)));
}

TEST_P(BasicEscapePairTest, JoinIsUpperBound) {
  auto [I, J] = GetParam();
  BasicEscape L = join(elem(I), elem(J));
  EXPECT_TRUE(elem(I) <= L);
  EXPECT_TRUE(elem(J) <= L);
}

TEST_P(BasicEscapePairTest, JoinIsLeastUpperBound) {
  auto [I, J] = GetParam();
  BasicEscape L = join(elem(I), elem(J));
  for (BasicEscape U : allElements())
    if (elem(I) <= U && elem(J) <= U) {
      EXPECT_TRUE(L <= U);
    }
}

TEST_P(BasicEscapePairTest, OrderIsTotalOnTheChain) {
  auto [I, J] = GetParam();
  EXPECT_TRUE(elem(I) <= elem(J) || elem(J) <= elem(I));
}

TEST_P(BasicEscapePairTest, SubIsMonotone) {
  auto [I, J] = GetParam();
  if (!(elem(I) <= elem(J)))
    return;
  for (unsigned S = 1; S <= MaxSpines; ++S)
    EXPECT_TRUE(elem(I).sub(S) <= elem(J).sub(S))
        << elem(I).str() << " sub " << S;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, BasicEscapePairTest,
    ::testing::Combine(::testing::Range(0u, MaxSpines + 2),
                       ::testing::Range(0u, MaxSpines + 2)));

TEST(BasicEscapeTest, JoinIsAssociativeAndIdempotent) {
  auto Elements = allElements();
  for (BasicEscape A : Elements) {
    EXPECT_EQ(join(A, A), A);
    for (BasicEscape B : Elements)
      for (BasicEscape C : Elements)
        EXPECT_EQ(join(join(A, B), C), join(A, join(B, C)));
  }
}

TEST(BasicEscapeTest, BottomIsIdentity) {
  for (BasicEscape A : allElements()) {
    EXPECT_EQ(join(A, BasicEscape::none()), A);
    EXPECT_TRUE(BasicEscape::none() <= A);
  }
}

TEST(BasicEscapeTest, SubSemantics) {
  // sub^s strips one spine exactly when the value is <1,s>.
  EXPECT_EQ(BasicEscape::contained(2).sub(2), BasicEscape::contained(1));
  EXPECT_EQ(BasicEscape::contained(1).sub(2), BasicEscape::contained(1));
  EXPECT_EQ(BasicEscape::contained(0).sub(1), BasicEscape::contained(0));
  EXPECT_EQ(BasicEscape::none().sub(3), BasicEscape::none());
  // Chains of cars peel spines one at a time.
  EXPECT_EQ(BasicEscape::contained(2).sub(2).sub(1),
            BasicEscape::contained(0));
}

TEST(BasicEscapeTest, SubNeverIncreases) {
  for (BasicEscape A : allElements())
    for (unsigned S = 1; S <= MaxSpines; ++S)
      EXPECT_TRUE(A.sub(S) <= A);
}

TEST(BasicEscapeTest, EncodingIsInjective) {
  auto Elements = allElements();
  for (size_t I = 0; I != Elements.size(); ++I)
    for (size_t J = 0; J != Elements.size(); ++J)
      EXPECT_EQ(Elements[I].encoding() == Elements[J].encoding(), I == J);
}

TEST(BasicEscapeTest, Rendering) {
  EXPECT_EQ(BasicEscape::none().str(), "<0,0>");
  EXPECT_EQ(BasicEscape::contained(0).str(), "<1,0>");
  EXPECT_EQ(BasicEscape::contained(3).str(), "<1,3>");
}

} // namespace

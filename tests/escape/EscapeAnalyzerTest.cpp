//===- EscapeAnalyzerTest.cpp - analyzer behaviour beyond the paper ---------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// Exercises the abstract interpreter on shapes the appendix does not
// cover: higher-order escape through closures, nested letrec, lets,
// partial application, local-test precision, and evaluation of arbitrary
// expressions.
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeAnalyzer.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class EscapeAnalyzerTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  bool setup(const std::string &Source,
             TypeInferenceMode Mode = TypeInferenceMode::Polymorphic) {
    if (!FE.parseAndType(Source, Mode))
      return false;
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    return true;
  }

  BasicEscape global(const char *Fn, unsigned OneBased) {
    auto PE = Analyzer->globalEscape(FE.Ast.intern(Fn), OneBased - 1);
    EXPECT_TRUE(PE.has_value());
    return PE ? PE->Escape : BasicEscape::none();
  }
};

//===----------------------------------------------------------------------===//
// Scalars, identity, and selection.
//===----------------------------------------------------------------------===//

TEST_F(EscapeAnalyzerTest, IdentityReturnsItsArgument) {
  // Monomorphic: the instance at int list (polymorphic mode would analyze
  // the simplest instance per Theorem 1).
  ASSERT_TRUE(setup("letrec id x = x in id [1]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("id", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, ScalarComputationEscapesNothing) {
  ASSERT_TRUE(setup("letrec len l = if (null l) then 0 "
                    "else 1 + len (cdr l) in len [1, 2]"))
      << FE.diagText();
  EXPECT_EQ(global("len", 1), BasicEscape::none());
}

TEST_F(EscapeAnalyzerTest, SelectionStripsOneSpine) {
  ASSERT_TRUE(setup("letrec hd x = car x in hd [[1], [2]]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  // hd : int list list -> int list; the inner spine escapes.
  EXPECT_EQ(global("hd", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, DoubleSelection) {
  ASSERT_TRUE(setup("letrec hd2 x = car (car x) in hd2 [[[1]]]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  // x has 3 spines; two cars strip two: <1,1>.
  EXPECT_EQ(global("hd2", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, CdrKeepsEverything) {
  ASSERT_TRUE(setup("letrec tl x = cdr x in tl [1, 2]")) << FE.diagText();
  // The abstract cdr is the identity: the whole list may escape.
  EXPECT_EQ(global("tl", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, ConditionDoesNotEscape) {
  ASSERT_TRUE(setup("letrec pick c a b = if (null c) then a else b "
                    "in pick [9] [1] [2]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("pick", 1), BasicEscape::none());
  EXPECT_EQ(global("pick", 2), BasicEscape::contained(1));
  EXPECT_EQ(global("pick", 3), BasicEscape::contained(1));
}

//===----------------------------------------------------------------------===//
// Higher-order escape: through closures and unknown functions.
//===----------------------------------------------------------------------===//

TEST_F(EscapeAnalyzerTest, EscapeThroughReturnedClosure) {
  // make returns a closure capturing x; calling it later releases x.
  // The closure value must carry x's escape (the V of §3.4).
  ASSERT_TRUE(setup("letrec make x = lambda(u). x in (make [1]) 0",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("make", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, ClosureThatIgnoresCaptureStillMarksIt) {
  // Conservative: the closure contains x even if the body never returns
  // it; G must report the capture (the closure object itself holds x).
  ASSERT_TRUE(setup("letrec make x = lambda(u). u in (make [1]) 0"))
      << FE.diagText();
  // The closure's ground includes x, but applying it returns only u;
  // with u = <0,0> the application result drops x. The paper's V rule
  // puts x in the *closure value*; the global test applies it, so the
  // final answer depends on the application result: <0,0>.
  EXPECT_EQ(global("make", 1), BasicEscape::none());
}

TEST_F(EscapeAnalyzerTest, UnknownFunctionWorstCase) {
  // apply f x = f x: with W for f, x escapes entirely.
  ASSERT_TRUE(setup("letrec app f x = f x in app (lambda(v). v) [1]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("app", 2), BasicEscape::contained(1));
  // The function value itself cannot be part of an int list result;
  // Definition 2's W propagates only argument grounds, so G(app,1) is
  // precise: nothing of f is in the result.
  EXPECT_EQ(global("app", 1), BasicEscape::none());
}

TEST_F(EscapeAnalyzerTest, MapElementsEscapeOnlyThroughF) {
  ASSERT_TRUE(setup(mapPairSource(), TypeInferenceMode::Monomorphic))
      << FE.diagText();
  // Global: worst-case f releases what it is given: elements escape.
  EXPECT_EQ(global("map", 2), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, LocalTestIsMorePreciseThanGlobal) {
  ASSERT_TRUE(setup(mapPairSource(), TypeInferenceMode::Monomorphic))
      << FE.diagText();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  auto Local = Analyzer->localEscape(Letrec->body(), 1);
  auto Global = Analyzer->globalEscape(FE.Ast.intern("map"), 1);
  ASSERT_TRUE(Local && Global);
  EXPECT_TRUE(Local->Escape <= Global->Escape);
  EXPECT_LT(Local->Escape.spines(), Global->Escape.spines());
}

TEST_F(EscapeAnalyzerTest, PartialApplicationCapturesArgument) {
  // pairUp x = cons x: the partial application of cons holds x.
  ASSERT_TRUE(
      setup("letrec mk x = cons x; use g = g nil in use (mk [1])",
            TypeInferenceMode::Monomorphic))
      << FE.diagText();
  // mk's result is a function value containing x: <1,...> ground.
  EXPECT_TRUE(global("mk", 1).isContained());
}

//===----------------------------------------------------------------------===//
// Binder forms.
//===----------------------------------------------------------------------===//

TEST_F(EscapeAnalyzerTest, LetBoundValueFlows) {
  ASSERT_TRUE(setup("letrec f x = let y = cdr x in y in f [1, 2]",
                    TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("f", 1), BasicEscape::contained(1));
}

TEST_F(EscapeAnalyzerTest, NestedLetrecHelper) {
  const char *Source = R"(
letrec outer x =
  letrec walk l = if (null l) then 0 else 1 + walk (cdr l)
  in walk x + 0
in outer [1, 2, 3]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  EXPECT_EQ(global("outer", 1), BasicEscape::none());
}

TEST_F(EscapeAnalyzerTest, NestedLetrecReturningSpine) {
  const char *Source = R"(
letrec outer x =
  letrec keep l = if (null l) then nil else cons (car l) (keep (cdr l))
  in keep x
in outer [1, 2, 3]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  // keep rebuilds the spine: elements escape, spine does not.
  EXPECT_EQ(global("outer", 1), BasicEscape::contained(0));
}

TEST_F(EscapeAnalyzerTest, MutualRecursionConverges) {
  const char *Source = R"(
letrec
  evens l = if (null l) then nil else cons (car l) (odds (cdr l));
  odds l = if (null l) then nil else evens (cdr l)
in evens [1, 2, 3, 4]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  EXPECT_EQ(global("evens", 1), BasicEscape::contained(0));
  EXPECT_EQ(global("odds", 1), BasicEscape::contained(0));
  EXPECT_FALSE(Analyzer->hitIterationLimit());
}

TEST_F(EscapeAnalyzerTest, GrowingClosureChainIsWidenedNotDiverging) {
  // g rebuilds its function argument at every recursive call, so each
  // application of g's closure carries a strictly larger abstract
  // closure — a fresh apply-cache key every time, which defeats the
  // ⊥-seeded cycle brake and, without the depth widening, recurses
  // without bound. The analysis must terminate, widen at least once,
  // and answer conservatively: once f is worst-cased, the argument it
  // is applied to (car l) escapes into the result, so the verdict for
  // l degrades from the exact ⟨0,0⟩ to ⟨1,0⟩ — sound, not precise.
  const char *Source = R"(
letrec
  compose f h = lambda(x). f (h x);
  g l f = if (null l) then f (car l)
          else (car l + (g (cdr l) (compose f (lambda(w). w + 1))))
in g [1, 2] (lambda(w). w + 3)
)";
  ASSERT_TRUE(setup(Source, TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("g", 1), BasicEscape::contained(0));
  EXPECT_GT(Analyzer->wideningCount(), 0u);
  EXPECT_FALSE(Analyzer->hitIterationLimit());
}

TEST_F(EscapeAnalyzerTest, WideningIsNeverNeededOnBoundedClosures) {
  // The same compose shape without the recursive rebuild: closures are
  // finitely many, so the budget is never reached and the analysis is
  // exact (g's list parameter feeds only a scalar fold).
  const char *Source = R"(
letrec
  compose f h = lambda(x). f (h x);
  g l f = if (null l) then f 0 else (car l + (g (cdr l) f))
in g [1, 2] (compose (lambda(w). w + 3) (lambda(w). w + 1))
)";
  ASSERT_TRUE(setup(Source, TypeInferenceMode::Monomorphic))
      << FE.diagText();
  EXPECT_EQ(global("g", 1), BasicEscape::none());
  EXPECT_EQ(Analyzer->wideningCount(), 0u);
}

//===----------------------------------------------------------------------===//
// Query mechanics.
//===----------------------------------------------------------------------===//

TEST_F(EscapeAnalyzerTest, UnknownFunctionNameReturnsNullopt) {
  ASSERT_TRUE(setup("letrec f x = x in f 1")) << FE.diagText();
  EXPECT_FALSE(Analyzer->globalEscape(FE.Ast.intern("nope"), 0).has_value());
  EXPECT_FALSE(Analyzer->globalEscape(FE.Ast.intern("f"), 5).has_value());
}

TEST_F(EscapeAnalyzerTest, NonFunctionBindingSkippedInProgramReport) {
  ASSERT_TRUE(setup("letrec xs = cons 1 nil; f y = y in f xs"))
      << FE.diagText();
  ProgramEscapeReport Report = Analyzer->analyzeProgram();
  EXPECT_EQ(Report.Functions.size(), 1u);
  EXPECT_EQ(Report.Functions[0].Name, FE.Ast.intern("f"));
}

TEST_F(EscapeAnalyzerTest, EvaluateExposesAbstractValues) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  ValueId V = Analyzer->evaluate(Letrec->body());
  // Evaluating the body with no interesting object yields <0,0>.
  EXPECT_EQ(Analyzer->store().ground(V), BasicEscape::none());
}

TEST_F(EscapeAnalyzerTest, ReportRendering) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  ProgramEscapeReport Report = Analyzer->analyzeProgram();
  std::string Text = renderEscapeReport(FE.Ast, Report);
  EXPECT_NE(Text.find("G(append, 1) = <1,0>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("G(split, 1) = <0,0>"), std::string::npos) << Text;
  EXPECT_NE(Text.find("no part of parameter 1 escapes"), std::string::npos);
}

TEST_F(EscapeAnalyzerTest, ResultsAreDeterministicAcrossAnalyzers) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  ProgramEscapeReport First = Analyzer->analyzeProgram();
  EscapeAnalyzer Second(FE.Ast, *FE.Typed, FE.Diags);
  ProgramEscapeReport Again = Second.analyzeProgram();
  ASSERT_EQ(First.Functions.size(), Again.Functions.size());
  for (size_t I = 0; I != First.Functions.size(); ++I)
    for (size_t P = 0; P != First.Functions[I].Params.size(); ++P)
      EXPECT_EQ(First.Functions[I].Params[P].Escape,
                Again.Functions[I].Params[P].Escape);
}

} // namespace

//===----------------------------------------------------------------------===//
// Fixpoint iterate tracing (the append^(k) tables of A.1).
//===----------------------------------------------------------------------===//

TEST(FixpointTraceTest, RecordsIteratesAndStabilizes) {
  eal::test::Frontend FE;
  ASSERT_TRUE(FE.parseAndType(eal::test::partitionSortSource()))
      << FE.diagText();
  eal::EscapeAnalyzer Analyzer(FE.Ast, *FE.Typed, FE.Diags);
  Analyzer.enableTracing();
  (void)Analyzer.globalEscape(FE.Ast.intern("append"), 0);
  const auto &Trace = Analyzer.trace();
  ASSERT_FALSE(Trace.empty());
  // The last recorded iterate of every binding must be stable, and the
  // rounds must not exceed the analyzer's count.
  eal::Symbol Append = FE.Ast.intern("append");
  bool SawAppend = false;
  for (auto It = Trace.rbegin(); It != Trace.rend(); ++It)
    if (It->Binding == Append) {
      EXPECT_FALSE(It->Changed) << "last iterate not stable";
      SawAppend = true;
      break;
    }
  EXPECT_TRUE(SawAppend);
  std::string Rendered = Analyzer.renderTrace();
  EXPECT_NE(Rendered.find("append^("), std::string::npos) << Rendered;
}

//===- EscapeValueTest.cpp - ValueStore invariants ---------------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeValue.h"

#include "types/Type.h"

#include <gtest/gtest.h>

using namespace eal;

namespace {

TEST(ValueStoreTest, BottomIsCanonical) {
  ValueStore VS;
  EXPECT_EQ(VS.bottom(), VS.makeGround(BasicEscape::none()));
  EXPECT_EQ(VS.ground(VS.bottom()), BasicEscape::none());
  EXPECT_TRUE(VS.value(VS.bottom()).Fns.empty());
}

TEST(ValueStoreTest, HashConsingGivesEqualIds) {
  ValueStore VS;
  ValueId A = VS.makeGround(BasicEscape::contained(2));
  ValueId B = VS.makeGround(BasicEscape::contained(2));
  ValueId C = VS.makeGround(BasicEscape::contained(1));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST(ValueStoreTest, JoinLaws) {
  ValueStore VS;
  ValueId G0 = VS.makeGround(BasicEscape::none());
  ValueId G1 = VS.makeGround(BasicEscape::contained(1));
  ValueId P1 = VS.makePrim(PrimOp::Cons);
  ValueId P2 = VS.makePrim(PrimOp::Car, 2);
  ValueId Values[] = {G0, G1, P1, P2, VS.joinValues(G1, P1)};
  for (ValueId A : Values) {
    EXPECT_EQ(VS.joinValues(A, A), A) << "idempotence";
    EXPECT_EQ(VS.joinValues(A, VS.bottom()), A) << "bottom is identity";
    for (ValueId B : Values) {
      EXPECT_EQ(VS.joinValues(A, B), VS.joinValues(B, A)) << "commutativity";
      for (ValueId C : Values)
        EXPECT_EQ(VS.joinValues(VS.joinValues(A, B), C),
                  VS.joinValues(A, VS.joinValues(B, C)))
            << "associativity";
    }
  }
}

TEST(ValueStoreTest, JoinMergesGroundsAndAtomSets) {
  ValueStore VS;
  ValueId A = VS.makeGround(BasicEscape::contained(1));
  ValueId B = VS.makePrim(PrimOp::Cons);
  ValueId J = VS.joinValues(A, B);
  EXPECT_EQ(VS.ground(J), BasicEscape::contained(1));
  EXPECT_EQ(VS.value(J).Fns.size(), 1u);
  // Joining again with either operand is absorbed.
  EXPECT_EQ(VS.joinValues(J, A), J);
  EXPECT_EQ(VS.joinValues(J, B), J);
}

TEST(ValueStoreTest, WithGroundKeepsAtoms) {
  ValueStore VS;
  ValueId P = VS.makePrim(PrimOp::Cons);
  ValueId R = VS.withGround(P, BasicEscape::contained(2));
  EXPECT_EQ(VS.ground(R), BasicEscape::contained(2));
  EXPECT_EQ(VS.value(R).Fns, VS.value(P).Fns);
  // Regrounding to the same value is the identity.
  EXPECT_EQ(VS.withGround(P, VS.ground(P)), P);
}

TEST(ValueStoreTest, WorstIsErrForGroundTypes) {
  ValueStore VS;
  TypeContext TC;
  // W^int and W^{int list} have no function component (m = 0).
  ValueId WInt = VS.makeWorst(BasicEscape::contained(0), TC.getInt());
  EXPECT_TRUE(VS.value(WInt).Fns.empty());
  ValueId WList =
      VS.makeWorst(BasicEscape::contained(1), TC.getList(TC.getInt()));
  EXPECT_TRUE(VS.value(WList).Fns.empty());
}

TEST(ValueStoreTest, WorstStripsListsToFunctionCore) {
  ValueStore VS;
  TypeContext TC;
  // W^{(int -> int) list} = W^{int -> int} (Definition 2).
  const Type *FnTy = TC.getFun(TC.getInt(), TC.getInt());
  ValueId A = VS.makeWorst(BasicEscape::none(), TC.getList(FnTy));
  ValueId B = VS.makeWorst(BasicEscape::none(), FnTy);
  EXPECT_EQ(A, B);
  EXPECT_EQ(VS.value(A).Fns.size(), 1u);
  EXPECT_EQ(VS.atom(VS.value(A).Fns[0]).Kind, FnAtomKind::Worst);
}

TEST(ValueStoreTest, EnvironmentsAreCanonicalAndOrdered) {
  ValueStore VS;
  StringInterner SI;
  Symbol X = SI.intern("x"), Y = SI.intern("y");
  EnvBinding BX{X, EnvBindingKind::Value, VS.bottom(), 0, 0};
  EnvBinding BY{Y, EnvBindingKind::Value, VS.makeGround(
                    BasicEscape::contained(1)), 0, 0};
  // Extension order does not matter: environments are sorted by symbol.
  EnvId E1 = VS.extend(VS.extend(VS.emptyEnv(), BX), BY);
  EnvId E2 = VS.extend(VS.extend(VS.emptyEnv(), BY), BX);
  EXPECT_EQ(E1, E2);
  EXPECT_EQ(VS.lookup(E1, X)->Val, VS.bottom());
  EXPECT_EQ(VS.lookup(E1, Y)->Val, BY.Val);
  EXPECT_EQ(VS.lookup(E1, SI.intern("z")), nullptr);
}

TEST(ValueStoreTest, ExtensionShadows) {
  ValueStore VS;
  StringInterner SI;
  Symbol X = SI.intern("x");
  EnvBinding B1{X, EnvBindingKind::Value, VS.bottom(), 0, 0};
  EnvBinding B2{X, EnvBindingKind::Value,
                VS.makeGround(BasicEscape::contained(1)), 0, 0};
  EnvId E = VS.extend(VS.extend(VS.emptyEnv(), B1), B2);
  EXPECT_EQ(VS.lookup(E, X)->Val, B2.Val);
  EXPECT_EQ(VS.env(E).Bindings.size(), 1u);
}

TEST(ValueStoreTest, RestrictionDropsOthers) {
  ValueStore VS;
  StringInterner SI;
  Symbol X = SI.intern("x"), Y = SI.intern("y");
  EnvId E = VS.extend(
      VS.extend(VS.emptyEnv(),
                EnvBinding{X, EnvBindingKind::Value, VS.bottom(), 0, 0}),
      EnvBinding{Y, EnvBindingKind::Value, VS.bottom(), 0, 0});
  Symbol Keep[] = {X};
  EnvId R = VS.restrict(E, Keep);
  EXPECT_NE(VS.lookup(R, X), nullptr);
  EXPECT_EQ(VS.lookup(R, Y), nullptr);
  // Restricting to nothing gives the canonical empty environment.
  EXPECT_EQ(VS.restrict(E, std::span<const Symbol>()), VS.emptyEnv());
}

TEST(ValueStoreTest, StrRendersGroundAndMarksFunctions) {
  ValueStore VS;
  EXPECT_EQ(VS.str(VS.bottom()), "<0,0>");
  EXPECT_EQ(VS.str(VS.makeGround(BasicEscape::contained(2))), "<1,2>");
  EXPECT_EQ(VS.str(VS.makePrim(PrimOp::Cons)), "<0,0>+fn(1)");
}

} // namespace

//===- LocalContextTest.cpp - the in-context local test ----------------------==//
//
// Part of eal, a reproduction of "Escape Analysis on Lists"
// (Park & Goldberg, PLDI 1992).
//
// localEscapeInContext runs the §4.2 local test at call sites inside
// function bodies by binding enclosing variables to worst-case values of
// their types. These tests check soundness (never better than runtime
// reality allows), precision (at least matches the global test where
// comparable), and the bail-outs.
//
//===----------------------------------------------------------------------===//

#include "escape/EscapeAnalyzer.h"

#include "TestUtil.h"
#include "lang/AstUtils.h"

#include <gtest/gtest.h>

using namespace eal;
using namespace eal::test;

namespace {

class LocalContextTest : public ::testing::Test {
protected:
  Frontend FE;
  std::unique_ptr<EscapeAnalyzer> Analyzer;

  bool setup(const std::string &Source) {
    if (!FE.parseAndType(Source, TypeInferenceMode::Monomorphic))
      return false;
    Analyzer = std::make_unique<EscapeAnalyzer>(FE.Ast, *FE.Typed, FE.Diags);
    return true;
  }

  /// Finds the first saturated call of \p Callee anywhere in the program.
  const Expr *findCall(const char *Callee) {
    Symbol Name = FE.Ast.intern(Callee);
    const Expr *Found = nullptr;
    forEachExpr(FE.Root, [&](const Expr *E) {
      if (Found)
        return;
      std::vector<const Expr *> Args;
      const Expr *Fn = uncurryCall(E, Args);
      const auto *Var = dyn_cast<VarExpr>(Fn);
      if (Var && Var->name() == Name && !Args.empty())
        Found = E;
    });
    return Found;
  }
};

TEST_F(LocalContextTest, InteriorCallWithEnclosingParam) {
  // Inside wrapper, the call `keep (cdr x)` references the enclosing
  // parameter x. The in-context test must still conclude that keep's
  // argument spine does not escape keep.
  const char *Source = R"(
letrec
  keep l = if (null l) then nil else cons (car l) (keep (cdr l));
  wrapper x = keep (cdr x)
in wrapper [1, 2, 3]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  const Expr *Call = findCall("keep");
  ASSERT_NE(Call, nullptr);
  auto PE = Analyzer->localEscapeInContext(Call, 0);
  ASSERT_TRUE(PE.has_value());
  EXPECT_EQ(PE->Escape, BasicEscape::contained(0)) << PE->Escape.str();
  EXPECT_EQ(PE->protectedTopSpines(), 1u);
}

TEST_F(LocalContextTest, MatchesPlainLocalTestAtTopLevel) {
  ASSERT_TRUE(setup(partitionSortSource())) << FE.diagText();
  const auto *Letrec = cast<LetrecExpr>(FE.Root);
  auto Plain = Analyzer->localEscape(Letrec->body(), 0);
  auto InContext = Analyzer->localEscapeInContext(Letrec->body(), 0);
  ASSERT_TRUE(Plain && InContext);
  EXPECT_EQ(Plain->Escape, InContext->Escape);
}

TEST_F(LocalContextTest, WorstCaseFunctionVariableStaysConservative) {
  // h is an enclosing *function* parameter used as the callee's argument
  // builder: the worst-case binding must let it release what it is
  // given.
  const char *Source = R"(
letrec
  keep l = if (null l) then nil else cons (car l) (keep (cdr l));
  use h x = keep (h x)
in use (lambda(v). v) [1, 2]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  const Expr *Call = findCall("keep");
  ASSERT_NE(Call, nullptr);
  auto PE = Analyzer->localEscapeInContext(Call, 0);
  ASSERT_TRUE(PE.has_value());
  // keep still protects its argument's top spine regardless of h.
  EXPECT_EQ(PE->protectedTopSpines(), 1u);
}

TEST_F(LocalContextTest, EscapingCalleeStillReportsEscape) {
  const char *Source = R"(
letrec
  id l = l;
  wrapper x = id (cdr x)
in wrapper [1, 2, 3]
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  const Expr *Call = findCall("id");
  ASSERT_NE(Call, nullptr);
  auto PE = Analyzer->localEscapeInContext(Call, 0);
  ASSERT_TRUE(PE.has_value());
  EXPECT_EQ(PE->Escape, BasicEscape::contained(1));
  EXPECT_EQ(PE->protectedTopSpines(), 0u);
}

TEST_F(LocalContextTest, ReboundNameInsideCallBailsOut) {
  // The call contains a lambda rebinding the free name g; the context
  // test gives up rather than guess the type.
  const char *Source = R"(
letrec
  apply f l = f l;
  outer g = apply (lambda(g). g) (g 1)
in outer (lambda(n). [n])
)";
  ASSERT_TRUE(setup(Source)) << FE.diagText();
  const Expr *Call = findCall("apply");
  ASSERT_NE(Call, nullptr);
  EXPECT_FALSE(Analyzer->localEscapeInContext(Call, 1).has_value());
}

} // namespace
